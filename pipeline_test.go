package mantra_test

// Equivalence tests for the cycle engine: the pipelined and barrier
// schedules must produce artifacts identical to the serial path — same
// series, same anomalies, same health ledger, same delta log, same
// archive WAL bytes — for the same fault-injected scenario. The reorder
// buffer is what makes this hold; these tests are what keep it honest.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	mantra "repro"
	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/router"
	"repro/internal/sim"
)

// archiveEquivCfg disables checkpoints (their gob-encoded maps are not
// byte-deterministic) and fsyncs every append, so the WAL segments on
// disk are the complete, comparable archive of the run.
func archiveEquivCfg(dir string) mantra.ArchiveConfig {
	return mantra.ArchiveConfig{
		Dir:             dir,
		CheckpointEvery: 1 << 30,
		SyncEveryAppend: true,
	}
}

// walBytes concatenates a run's WAL segments in name order.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	if len(segs) == 0 {
		t.Fatalf("no WAL segments under %s", dir)
	}
	var out []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// TestPipelinedCycleMatchesSerial is the engine's golden equivalence
// test: the same fault-injected two-router scenario run serially,
// pipelined and under the barrier schedule must agree on every artifact
// the monitor produces.
func TestPipelinedCycleMatchesSerial(t *testing.T) {
	profile := router.FaultProfile{
		RefuseConn:  0.08,
		RejectLogin: 0.06,
		Truncate:    0.06,
		Garble:      0.06,
		Drop:        0.05,
	}
	policy := collect.Policy{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  90 * time.Minute,
		Sleep:            func(time.Duration) {},
	}

	type run struct {
		name  string
		cycle func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error)
	}
	runs := []run{
		{"serial", func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) { return m.RunCycle(now) }},
		{"pipelined", func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) { return m.RunCycleConcurrent(now) }},
		{"barrier", func(m *mantra.Monitor, now time.Time) ([]mantra.CycleStats, error) { return m.RunCycleBarrier(now) }},
	}

	const cycles = 60
	type outcome struct {
		dir     string
		mon     *mantra.Monitor
		stats   [][]mantra.CycleStats
		results [][]mantra.CollectResult
	}
	outcomes := make([]outcome, len(runs))
	for ri, r := range runs {
		// Identically seeded networks produce identical fault sequences,
		// so every run faces the same scenario.
		n, m, _ := chaosMonitor(t, profile, policy)
		m.SetConcurrency(2)
		dir := t.TempDir()
		if _, err := m.EnableArchive(archiveEquivCfg(dir)); err != nil {
			t.Fatal(err)
		}
		o := outcome{dir: dir, mon: m}
		for i := 0; i < cycles; i++ {
			n.Step()
			st, _ := r.cycle(m, n.Now())
			o.stats = append(o.stats, st)
			o.results = append(o.results, m.LastResults())
		}
		outcomes[ri] = o
	}

	ref := outcomes[0]
	for ri := 1; ri < len(outcomes); ri++ {
		name, o := runs[ri].name, outcomes[ri]

		// Per-cycle statistics and per-target outcomes, cycle by cycle.
		for i := 0; i < cycles; i++ {
			if !reflect.DeepEqual(ref.stats[i], o.stats[i]) {
				t.Fatalf("%s: cycle %d stats diverge:\nserial: %+v\n%s: %+v",
					name, i, ref.stats[i], name, o.stats[i])
			}
			if !resultsEqual(ref.results[i], o.results[i]) {
				t.Fatalf("%s: cycle %d results diverge:\nserial: %+v\n%s: %+v",
					name, i, ref.results[i], name, o.results[i])
			}
		}

		// Every series, point for point, gap for gap.
		for _, target := range []string{"fixw", "ucsb-r1"} {
			for _, metric := range process.AllMetrics {
				a := ref.mon.Series(target, metric)
				b := o.mon.Series(target, metric)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: series %s/%s diverges", name, target, metric)
				}
			}
		}

		// Anomaly feed, health ledger, delta log shape.
		if !reflect.DeepEqual(ref.mon.Anomalies(), o.mon.Anomalies()) {
			t.Errorf("%s: anomaly feeds diverge", name)
		}
		if !reflect.DeepEqual(ref.mon.Health(), o.mon.Health()) {
			t.Errorf("%s: health ledgers diverge:\nserial: %+v\n%s: %+v",
				name, ref.mon.Health(), name, o.mon.Health())
		}
		for _, target := range []string{"fixw", "ucsb-r1"} {
			if a, b := ref.mon.Log().Cycles(target), o.mon.Log().Cycles(target); a != b {
				t.Errorf("%s: %s logged cycles %d != %d", name, target, b, a)
			}
		}

		// The durable archive: byte-identical WAL segments.
		if a, b := walBytes(t, ref.dir), walBytes(t, o.dir); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: archive WAL bytes diverge (%d vs %d bytes)", name, len(a), len(b))
		}

		// Route-stability trackers observed the same history.
		a, b := ref.mon.RouteStability("ucsb-r1"), o.mon.RouteStability("ucsb-r1")
		if a == nil || b == nil || a.Cycles() != b.Cycles() || !reflect.DeepEqual(a.Summary(), b.Summary()) {
			t.Errorf("%s: stability trackers diverge", name)
		}
	}
}

// resultsEqual compares CollectResult slices, matching errors by string
// (errors.Is identity differs across monitors by construction).
func resultsEqual(a, b []mantra.CollectResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].Status != b[i].Status || a[i].Attempts != b[i].Attempts {
			return false
		}
		ae, be := "", ""
		if a[i].Err != nil {
			ae = a[i].Err.Error()
		}
		if b[i].Err != nil {
			be = b[i].Err.Error()
		}
		if ae != be {
			return false
		}
		if (a[i].Stats == nil) != (b[i].Stats == nil) {
			return false
		}
		if a[i].Stats != nil && *a[i].Stats != *b[i].Stats {
			return false
		}
	}
	return true
}

// downDialer always fails to connect.
type downDialer struct{}

func (downDialer) Dial() (io.ReadWriteCloser, error) {
	return nil, errors.New("connection refused")
}

// TestSetCollectPolicyCarriesState is the regression test for the
// mid-run policy change: swapping the policy used to silently discard
// the per-target health ledger and breaker positions; it must carry
// them into the new collector. ResetCollectState keeps the old wipe as
// an explicit operation.
func TestSetCollectPolicyCarriesState(t *testing.T) {
	m := mantra.New()
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Sleep:            func(time.Duration) {},
	})
	m.AddTarget(mantra.Target{
		Name:    "dead",
		Dialer:  downDialer{},
		Prompt:  "dead> ",
		Timeout: 50 * time.Millisecond,
	})

	now := sim.Epoch
	for i := 0; i < 3; i++ {
		now = now.Add(time.Minute)
		if _, err := m.RunCycle(now); err == nil {
			t.Fatal("all-failed cycle did not err")
		}
	}
	before := m.Health()[0]
	if before.Breaker != collect.BreakerOpen || before.ConsecutiveFailures != 3 {
		t.Fatalf("setup: health = %+v, want open breaker with 3 consecutive failures", before)
	}

	// The mid-run policy change: new thresholds, same history.
	m.SetCollectPolicy(collect.Policy{
		MaxAttempts:      2,
		BreakerThreshold: 10,
		BreakerCooldown:  time.Hour,
		Sleep:            func(time.Duration) {},
	})
	after := m.Health()[0]
	if after.Breaker != collect.BreakerOpen {
		t.Errorf("policy change dropped the open breaker: %+v", after)
	}
	if after.ConsecutiveFailures != before.ConsecutiveFailures ||
		after.TotalFailures != before.TotalFailures ||
		after.LastError != before.LastError {
		t.Errorf("policy change discarded the health ledger:\nbefore: %+v\nafter:  %+v", before, after)
	}

	// The carried breaker keeps cooling down under the new policy: the
	// next cycle inside the cooldown must still be skipped unprobed.
	now = now.Add(time.Minute)
	if _, err := m.RunCycle(now); err == nil {
		t.Fatal("all-failed cycle did not err")
	}
	if res := m.LastResults()[0]; res.Status != collect.StatusBreakerOpen || res.Attempts != 0 {
		t.Errorf("carried breaker did not skip: %+v", res)
	}

	// The deliberate wipe is still available, as an explicit call.
	m.ResetCollectState()
	wiped := m.Health()[0]
	if wiped.Breaker != collect.BreakerClosed || wiped.ConsecutiveFailures != 0 || wiped.TotalFailures != 0 {
		t.Errorf("ResetCollectState did not wipe: %+v", wiped)
	}
}

// TestEngineStatsExposed: the /stats instrumentation reflects the
// cycles run and carries per-stage observations for every target.
func TestEngineStatsExposed(t *testing.T) {
	n, m := newMonitoredNetwork(t)
	const cycles = 4
	for i := 0; i < cycles; i++ {
		n.Step()
		if _, err := m.RunCycleConcurrent(n.Now()); err != nil {
			t.Fatal(err)
		}
	}
	st := m.EngineStats()
	if st.Cycles != cycles {
		t.Errorf("stats cycles = %d", st.Cycles)
	}
	if st.Concurrency != 2 {
		t.Errorf("stats concurrency = %d, want min(8, 2 targets)", st.Concurrency)
	}
	if len(st.Targets) != 2 {
		t.Fatalf("stats targets = %d", len(st.Targets))
	}
	for _, ts := range st.Targets {
		if ts.Cycles != cycles || ts.Successes != cycles {
			t.Errorf("%s: %+v", ts.Target, ts)
		}
	}
	rep := m.LastCycleReport()
	if rep == nil || rep.Cycle != cycles || rep.Targets != 2 || rep.Failed != 0 {
		t.Fatalf("last report = %+v", rep)
	}
	if rep.Stages == nil || rep.Stages["collect"].Count != 2 {
		t.Errorf("last report stages = %+v", rep.Stages)
	}
}
