// Package addr provides compact IPv4 address and prefix types used
// throughout the simulated multicast infrastructure.
//
// Addresses are value types backed by uint32 so they are cheap to copy,
// hashable as map keys, and totally ordered. The package also provides
// multicast-specific predicates (group ranges, administrative scoping)
// and prefix aggregation used by the routing protocol implementations.
package addr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// IP is an IPv4 address stored in host byte order.
// The zero value is the unspecified address 0.0.0.0.
type IP uint32

// Well-known addresses and range bounds.
const (
	// Unspecified is 0.0.0.0.
	Unspecified IP = 0
	// MulticastBase is 224.0.0.0, the lowest class-D address.
	MulticastBase IP = 0xE0000000
	// MulticastMax is 239.255.255.255, the highest class-D address.
	MulticastMax IP = 0xEFFFFFFF
	// LinkLocalMulticastMax is 224.0.0.255; groups at or below this are
	// never forwarded off the local link.
	LinkLocalMulticastMax IP = 0xE00000FF
	// AdminScopedBase is 239.0.0.0, the start of administratively
	// scoped multicast space (RFC 2365).
	AdminScopedBase IP = 0xEF000000
	// AllSystems is 224.0.0.1 (all systems on this subnet).
	AllSystems IP = 0xE0000001
	// AllRouters is 224.0.0.2 (all routers on this subnet).
	AllRouters IP = 0xE0000002
	// DVMRPRouters is 224.0.0.4 (all DVMRP routers).
	DVMRPRouters IP = 0xE0000004
	// PIMRouters is 224.0.0.13 (all PIM routers).
	PIMRouters IP = 0xE000000D
)

// V4 builds an IP from four dotted-quad octets.
func V4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Parse parses a dotted-quad IPv4 address such as "192.168.1.7".
//
//mantra:hotpath budget=2
func Parse(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not a dotted-quad IPv4 address", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("addr: invalid octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// MustParse is like Parse but panics on malformed input.
// It is intended for constants in tests and topology builders.
func MustParse(s string) IP {
	ip, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(ip>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip>>16&0xFF), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip>>8&0xFF), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip&0xFF), 10)
	return string(buf)
}

// Octets returns the four dotted-quad octets of the address.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// IsMulticast reports whether the address lies in 224.0.0.0/4.
func (ip IP) IsMulticast() bool {
	return ip >= MulticastBase && ip <= MulticastMax
}

// IsLinkLocalMulticast reports whether the address lies in 224.0.0.0/24,
// the range reserved for local-wire control traffic.
func (ip IP) IsLinkLocalMulticast() bool {
	return ip >= MulticastBase && ip <= LinkLocalMulticastMax
}

// IsAdminScopedMulticast reports whether the address lies in 239.0.0.0/8.
func (ip IP) IsAdminScopedMulticast() bool {
	return ip >= AdminScopedBase && ip <= MulticastMax
}

// IsUnspecified reports whether the address is 0.0.0.0.
func (ip IP) IsUnspecified() bool { return ip == 0 }

// Next returns the numerically next address; it wraps at 255.255.255.255.
func (ip IP) Next() IP { return ip + 1 }

// Prefix is an IPv4 CIDR prefix. The zero value is 0.0.0.0/0.
type Prefix struct {
	// Addr is the network address; bits below Len are kept zero by the
	// constructors in this package.
	Addr IP
	// Len is the mask length, 0..32.
	Len int
}

// PrefixFrom masks ip down to length bits and returns the prefix.
// It panics if bits is outside [0, 32].
func PrefixFrom(ip IP, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("addr: prefix length %d out of range", bits))
	}
	return Prefix{Addr: ip & maskFor(bits), Len: bits}
}

// ParsePrefix parses CIDR notation such as "128.111.0.0/16".
//
//mantra:hotpath budget=3
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("addr: %q is not CIDR notation", s)
	}
	ip, err := Parse(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("addr: invalid prefix length in %q", s)
	}
	if ip&maskFor(bits) != ip {
		return Prefix{}, fmt.Errorf("addr: %q has host bits set", s)
	}
	return Prefix{Addr: ip, Len: bits}, nil
}

// MustParsePrefix is like ParsePrefix but panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) IP {
	if bits == 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - bits))
}

// Mask returns the netmask of the prefix as an address,
// e.g. 255.255.0.0 for a /16.
func (p Prefix) Mask() IP { return maskFor(p.Len) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Len)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&maskFor(p.Len) == p.Addr
}

// ContainsPrefix reports whether q is entirely inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the lowest address in the prefix (the network address).
func (p Prefix) First() IP { return p.Addr }

// Last returns the highest address in the prefix (the broadcast address).
func (p Prefix) Last() IP {
	return p.Addr | ^maskFor(p.Len)
}

// NumAddresses returns the number of addresses covered by the prefix.
func (p Prefix) NumAddresses() uint64 {
	return uint64(1) << (32 - p.Len)
}

// Sibling returns the prefix that shares p's parent: the same prefix with
// the lowest significant bit flipped. It panics for /0.
func (p Prefix) Sibling() Prefix {
	if p.Len == 0 {
		panic("addr: /0 has no sibling")
	}
	bit := IP(1) << (32 - p.Len)
	return Prefix{Addr: p.Addr ^ bit, Len: p.Len}
}

// Parent returns the enclosing prefix one bit shorter. It panics for /0.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		panic("addr: /0 has no parent")
	}
	return PrefixFrom(p.Addr, p.Len-1)
}

// Compare orders prefixes first by address then by length (shorter first).
// It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.Addr < q.Addr:
		return -1
	case p.Addr > q.Addr:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}

// SortPrefixes sorts prefixes in place by (address, length).
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// Aggregate merges a set of prefixes into the minimal covering set:
// duplicates and prefixes contained in others are dropped, and sibling
// pairs are repeatedly merged into their parent. The input is not modified.
//
// Routing daemons differ in whether they aggregate before advertising;
// that very inconsistency is one of the route-table divergence sources
// the paper observes, so the routing code calls this selectively.
func Aggregate(ps []Prefix) []Prefix {
	if len(ps) == 0 {
		return nil
	}
	work := make([]Prefix, len(ps))
	copy(work, ps)
	for {
		SortPrefixes(work)
		// Drop duplicates and contained prefixes.
		out := work[:0]
		for _, p := range work {
			if len(out) > 0 && out[len(out)-1].ContainsPrefix(p) {
				continue
			}
			out = append(out, p)
		}
		// Merge adjacent siblings.
		merged := false
		res := out[:0]
		for i := 0; i < len(out); i++ {
			if i+1 < len(out) && out[i].Len == out[i+1].Len && out[i].Len > 0 &&
				out[i].Sibling() == out[i+1] {
				res = append(res, out[i].Parent())
				merged = true
				i++
				continue
			}
			res = append(res, out[i])
		}
		work = res
		if !merged {
			final := make([]Prefix, len(work))
			copy(final, work)
			return final
		}
	}
}

// LongestMatch returns the index of the longest prefix in ps containing ip,
// or -1 if none contains it. ps need not be sorted.
func LongestMatch(ps []Prefix, ip IP) int {
	best, bestLen := -1, -1
	for i, p := range ps {
		if p.Contains(ip) && p.Len > bestLen {
			best, bestLen = i, p.Len
		}
	}
	return best
}
