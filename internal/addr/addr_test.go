package addr

import (
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want IP
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xFFFFFFFF},
		{"224.0.0.1", AllSystems},
		{"128.111.41.2", V4(128, 111, 41, 2)},
		{"10.0.0.1", V4(10, 0, 0, 1)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := Parse(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOctets(t *testing.T) {
	a, b, c, d := V4(128, 111, 41, 2).Octets()
	if a != 128 || b != 111 || c != 41 || d != 2 {
		t.Errorf("Octets = %d.%d.%d.%d, want 128.111.41.2", a, b, c, d)
	}
}

func TestMulticastPredicates(t *testing.T) {
	cases := []struct {
		ip                       IP
		mcast, linkLocal, scoped bool
	}{
		{V4(223, 255, 255, 255), false, false, false},
		{V4(224, 0, 0, 0), true, true, false},
		{V4(224, 0, 0, 255), true, true, false},
		{V4(224, 0, 1, 0), true, false, false},
		{V4(239, 0, 0, 0), true, false, true},
		{V4(239, 255, 255, 255), true, false, true},
		{V4(240, 0, 0, 0), false, false, false},
		{V4(128, 111, 1, 1), false, false, false},
	}
	for _, c := range cases {
		if got := c.ip.IsMulticast(); got != c.mcast {
			t.Errorf("%v.IsMulticast() = %v, want %v", c.ip, got, c.mcast)
		}
		if got := c.ip.IsLinkLocalMulticast(); got != c.linkLocal {
			t.Errorf("%v.IsLinkLocalMulticast() = %v, want %v", c.ip, got, c.linkLocal)
		}
		if got := c.ip.IsAdminScopedMulticast(); got != c.scoped {
			t.Errorf("%v.IsAdminScopedMulticast() = %v, want %v", c.ip, got, c.scoped)
		}
	}
}

func TestPrefixParse(t *testing.T) {
	p := MustParsePrefix("128.111.0.0/16")
	if p.Addr != V4(128, 111, 0, 0) || p.Len != 16 {
		t.Fatalf("unexpected prefix %v", p)
	}
	if got := p.String(); got != "128.111.0.0/16" {
		t.Errorf("String = %q", got)
	}
	if p.Mask() != V4(255, 255, 0, 0) {
		t.Errorf("Mask = %v", p.Mask())
	}
}

func TestPrefixParseInvalid(t *testing.T) {
	for _, in := range []string{"128.111.0.0", "128.111.0.0/33", "128.111.0.0/-1", "128.111.0.1/16", "x/8"} {
		if _, err := ParsePrefix(in); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", in)
		}
	}
}

func TestPrefixFromMasks(t *testing.T) {
	p := PrefixFrom(V4(128, 111, 41, 77), 16)
	if p.Addr != V4(128, 111, 0, 0) {
		t.Errorf("PrefixFrom did not mask host bits: %v", p)
	}
	if PrefixFrom(V4(1, 2, 3, 4), 0).Addr != 0 {
		t.Error("PrefixFrom /0 should zero the address")
	}
	if PrefixFrom(V4(1, 2, 3, 4), 32).Addr != V4(1, 2, 3, 4) {
		t.Error("/32 should keep all bits")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(V4(10, 1, 255, 255)) || p.Contains(V4(10, 2, 0, 0)) {
		t.Error("Contains boundary wrong")
	}
	if !MustParsePrefix("0.0.0.0/0").Contains(V4(200, 1, 2, 3)) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixContainment(t *testing.T) {
	outer := MustParsePrefix("10.0.0.0/8")
	inner := MustParsePrefix("10.5.0.0/16")
	other := MustParsePrefix("11.0.0.0/8")
	if !outer.ContainsPrefix(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsPrefix(outer) {
		t.Error("inner must not contain outer")
	}
	if !outer.Overlaps(inner) || !inner.Overlaps(outer) {
		t.Error("overlap symmetric failure")
	}
	if outer.Overlaps(other) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("192.168.4.0/22")
	if p.First() != V4(192, 168, 4, 0) {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != V4(192, 168, 7, 255) {
		t.Errorf("Last = %v", p.Last())
	}
	if p.NumAddresses() != 1024 {
		t.Errorf("NumAddresses = %d", p.NumAddresses())
	}
}

func TestSiblingParent(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/9")
	sib := p.Sibling()
	if sib != MustParsePrefix("10.128.0.0/9") {
		t.Errorf("Sibling = %v", sib)
	}
	if sib.Sibling() != p {
		t.Error("Sibling is not an involution")
	}
	if p.Parent() != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Parent = %v", p.Parent())
	}
}

func TestSiblingPanicsOnSlashZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sibling of /0 should panic")
		}
	}()
	Prefix{}.Sibling()
}

func TestCompareOrdering(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should order first at same address")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("address ordering wrong")
	}
}

func TestAggregateSiblings(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/9"),
		MustParsePrefix("10.128.0.0/9"),
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0] != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Aggregate = %v", out)
	}
}

func TestAggregateContainedAndDuplicates(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.5.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("192.168.0.0/16"),
	}
	out := Aggregate(in)
	if len(out) != 2 {
		t.Fatalf("Aggregate = %v", out)
	}
	if out[0] != MustParsePrefix("10.0.0.0/8") || out[1] != MustParsePrefix("192.168.0.0/16") {
		t.Errorf("Aggregate = %v", out)
	}
}

func TestAggregateCascades(t *testing.T) {
	// Four /10s collapse all the way to a /8.
	in := []Prefix{
		MustParsePrefix("10.0.0.0/10"),
		MustParsePrefix("10.64.0.0/10"),
		MustParsePrefix("10.128.0.0/10"),
		MustParsePrefix("10.192.0.0/10"),
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0] != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Aggregate = %v", out)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if out := Aggregate(nil); out != nil {
		t.Errorf("Aggregate(nil) = %v", out)
	}
}

func TestAggregatePreservesCoverageProperty(t *testing.T) {
	// Property: every input address is still covered, and no sibling pair
	// remains unmerged.
	f := func(seeds []uint32) bool {
		var in []Prefix
		for _, s := range seeds {
			in = append(in, PrefixFrom(IP(s), 8+int(s%17)))
		}
		out := Aggregate(in)
		for _, p := range in {
			found := false
			for _, q := range out {
				if q.ContainsPrefix(p) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		for i := 0; i+1 < len(out); i++ {
			if out[i].Len == out[i+1].Len && out[i].Len > 0 && out[i].Sibling() == out[i+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLongestMatch(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.5.0.0/16"),
	}
	if i := LongestMatch(ps, V4(10, 5, 1, 1)); i != 2 {
		t.Errorf("LongestMatch = %d, want 2", i)
	}
	if i := LongestMatch(ps, V4(10, 6, 1, 1)); i != 1 {
		t.Errorf("LongestMatch = %d, want 1", i)
	}
	if i := LongestMatch(ps, V4(11, 0, 0, 1)); i != 0 {
		t.Errorf("LongestMatch = %d, want 0", i)
	}
	if i := LongestMatch(ps[1:], V4(11, 0, 0, 1)); i != -1 {
		t.Errorf("LongestMatch no match = %d, want -1", i)
	}
}

func TestAllocatorSequential(t *testing.T) {
	a := NewAllocator(MustParsePrefix("192.168.1.0/30"))
	first := a.MustNext()
	second := a.MustNext()
	if first != V4(192, 168, 1, 1) || second != V4(192, 168, 1, 2) {
		t.Errorf("got %v, %v", first, second)
	}
	if _, err := a.Next(); err == nil {
		t.Error("pool should be exhausted (network/broadcast reserved)")
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d", a.Remaining())
	}
}

func TestAllocatorRemaining(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	if a.Remaining() != 254 {
		t.Errorf("Remaining = %d, want 254", a.Remaining())
	}
	a.MustNext()
	if a.Remaining() != 253 {
		t.Errorf("Remaining after one = %d, want 253", a.Remaining())
	}
}

func TestGroupAllocatorSkipsLinkLocal(t *testing.T) {
	g := NewGroupAllocator(MustParsePrefix("224.0.0.0/16"))
	first := g.MustNext()
	if first != V4(224, 0, 1, 0) {
		t.Errorf("first group = %v, want 224.0.1.0", first)
	}
	if !first.IsMulticast() {
		t.Error("allocated group not multicast")
	}
}

func TestGroupAllocatorExhaustion(t *testing.T) {
	g := NewGroupAllocator(MustParsePrefix("239.1.2.0/30"))
	for i := 0; i < 4; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := g.Next(); err == nil {
		t.Error("expected exhaustion")
	}
}

func TestGroupAllocatorPanicsOnUnicast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unicast block")
		}
	}()
	NewGroupAllocator(MustParsePrefix("10.0.0.0/8"))
}
