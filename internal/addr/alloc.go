package addr

import "fmt"

// Allocator hands out host addresses sequentially from a prefix.
// It is used by topology builders to assign interface and host addresses
// deterministically. Allocator is not safe for concurrent use.
type Allocator struct {
	prefix Prefix
	next   IP
}

// NewAllocator returns an allocator over p. The network and broadcast
// addresses of p are never handed out.
func NewAllocator(p Prefix) *Allocator {
	return &Allocator{prefix: p, next: p.First() + 1}
}

// Prefix returns the pool the allocator draws from.
func (a *Allocator) Prefix() Prefix { return a.prefix }

// Next allocates the next free address. It returns an error when the pool
// is exhausted.
func (a *Allocator) Next() (IP, error) {
	if a.next >= a.prefix.Last() {
		return 0, fmt.Errorf("addr: pool %s exhausted", a.prefix)
	}
	ip := a.next
	a.next++
	return ip, nil
}

// MustNext is like Next but panics on exhaustion; topology builders use it
// with pools sized generously.
func (a *Allocator) MustNext() IP {
	ip, err := a.Next()
	if err != nil {
		panic(err)
	}
	return ip
}

// Remaining reports how many addresses are still available.
func (a *Allocator) Remaining() uint64 {
	if a.next >= a.prefix.Last() {
		return 0
	}
	return uint64(a.prefix.Last() - a.next)
}

// GroupAllocator hands out multicast group addresses sequentially from a
// class-D block, skipping the link-local control range.
type GroupAllocator struct {
	next IP
	max  IP
}

// NewGroupAllocator returns an allocator over the given multicast block.
// It panics if the block is not multicast space.
func NewGroupAllocator(block Prefix) *GroupAllocator {
	if !block.Addr.IsMulticast() {
		panic(fmt.Sprintf("addr: %s is not multicast space", block))
	}
	next := block.First()
	if next <= LinkLocalMulticastMax {
		next = LinkLocalMulticastMax + 1
	}
	return &GroupAllocator{next: next, max: block.Last()}
}

// Next allocates the next group address.
func (g *GroupAllocator) Next() (IP, error) {
	if g.next > g.max {
		return 0, fmt.Errorf("addr: multicast pool exhausted")
	}
	ip := g.next
	g.next++
	return ip, nil
}

// MustNext is like Next but panics on exhaustion.
func (g *GroupAllocator) MustNext() IP {
	ip, err := g.Next()
	if err != nil {
		panic(err)
	}
	return ip
}
