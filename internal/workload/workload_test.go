package workload

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

const cycle = 30 * time.Minute

func testTopo() *topo.Topology {
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 8
	return topo.BuildInternet(cfg).Topo
}

func advanceDays(g *Generator, start time.Time, days int) time.Time {
	now := start
	steps := days * 48
	for i := 0; i < steps; i++ {
		now = now.Add(cycle)
		g.Advance(now, cycle)
	}
	return now
}

func TestSessionsAppearAndChurn(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	now := advanceDays(g, sim.Epoch, 3)
	if g.SessionCount() == 0 {
		t.Fatal("no sessions after 3 days")
	}
	st := g.Stats()
	if st.SessionsCreated == 0 || st.SessionsEnded == 0 {
		t.Errorf("no churn: %+v", st)
	}
	if st.JoinEvents == 0 || st.LeaveEvents == 0 {
		t.Errorf("no member churn: %+v", st)
	}
	_ = now
}

func TestSessionsExpire(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	now := advanceDays(g, sim.Epoch, 2)
	// Stop all arrivals and advance far past the idle-session lifetime
	// tail: everything must drain.
	g.cfg = Config{Seed: 1}
	for i := 0; i < 48*15; i++ {
		now = now.Add(cycle)
		g.Advance(now, cycle)
	}
	if g.SessionCount() != 0 {
		t.Errorf("%d sessions survived with no arrivals", g.SessionCount())
	}
}

func TestMembersBelongToLeafSubnets(t *testing.T) {
	tp := testTopo()
	g := New(DefaultConfig(), tp)
	advanceDays(g, sim.Epoch, 2)
	for _, s := range g.Sessions() {
		for _, m := range s.MemberList() {
			edge := tp.Router(m.Edge)
			if edge == nil {
				t.Fatalf("member edge %d unknown", m.Edge)
			}
			found := false
			for _, p := range edge.LeafPrefixes {
				if p.Contains(m.Host) {
					found = true
				}
			}
			if !found {
				t.Fatalf("host %v not in any leaf prefix of %s", m.Host, edge.Name)
			}
		}
	}
}

func TestControlRatesBelowThresholdContentAbove(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	advanceDays(g, sim.Epoch, 3)
	for _, s := range g.Sessions() {
		for _, m := range s.MemberList() {
			if m.CtrlKbps <= 0 || m.CtrlKbps >= 4 {
				t.Fatalf("control rate %f outside (0,4)", m.CtrlKbps)
			}
			if m.ContentKbps != 0 && m.ContentKbps < 4 {
				t.Fatalf("content rate %f below sender threshold", m.ContentKbps)
			}
		}
	}
}

func TestGroupsAreMulticastAndUnique(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	advanceDays(g, sim.Epoch, 2)
	seen := make(map[addr.IP]bool)
	for _, s := range g.Sessions() {
		if !s.Group.IsMulticast() {
			t.Fatalf("group %v not multicast", s.Group)
		}
		if seen[s.Group] {
			t.Fatalf("group %v duplicated", s.Group)
		}
		seen[s.Group] = true
	}
}

func TestDensityDistributionMatchesPaper(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	now := sim.Epoch
	// Sample over 10 days and check the paper's distribution claims on
	// time-averaged statistics.
	lowDensityOK, samples := 0, 0
	for i := 0; i < 48*10; i++ {
		now = now.Add(cycle)
		g.Advance(now, cycle)
		if i < 48 {
			continue // warm-up
		}
		sessions := g.Sessions()
		if len(sessions) < 20 {
			continue
		}
		samples++
		twoOrLess := 0
		for _, s := range sessions {
			if len(s.Members) <= 2 {
				twoOrLess++
			}
		}
		if float64(twoOrLess) >= 0.65*float64(len(sessions)) {
			lowDensityOK++
		}
	}
	if samples == 0 {
		t.Fatal("no samples")
	}
	if float64(lowDensityOK) < 0.8*float64(samples) {
		t.Errorf("≤2-member share below 65%% in %d/%d samples", samples-lowDensityOK, samples)
	}
}

func TestBurstsAreSingleMemberDominated(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	now := sim.Epoch
	found := false
	for i := 0; i < 48*20 && !found; i++ {
		now = now.Add(cycle)
		g.Advance(now, cycle)
		sn := g.Snapshot()
		if sn.Sessions > 500 {
			found = true
			if float64(sn.SingleMember) < 0.85*float64(sn.Sessions) {
				t.Errorf("burst instant: %d/%d single-member (<85%%)", sn.SingleMember, sn.Sessions)
			}
		}
	}
	if !found {
		t.Skip("no >500-session burst in 20 days at this seed")
	}
}

func TestHeavyTailConcentration(t *testing.T) {
	// A small fraction of sessions should hold a large share of
	// participant slots at typical instants (the broadcast tail).
	// Averaged over daily snapshots to dampen single-instant noise.
	g := New(DefaultConfig(), testTopo())
	now := advanceDays(g, sim.Epoch, 3)
	shareSum, samples := 0.0, 0
	for day := 0; day < 6; day++ {
		now = advanceDays(g, now, 1)
		sessions := g.Sessions()
		if len(sessions) < 30 {
			continue
		}
		sizes := make([]int, 0, len(sessions))
		total := 0
		for _, s := range sessions {
			sizes = append(sizes, len(s.Members))
			total += len(s.Members)
		}
		for i := 0; i < len(sizes); i++ {
			for j := i + 1; j < len(sizes); j++ {
				if sizes[j] > sizes[i] {
					sizes[i], sizes[j] = sizes[j], sizes[i]
				}
			}
		}
		top := len(sizes) * 6 / 100
		if top < 1 {
			top = 1
		}
		sum := 0
		for _, v := range sizes[:top] {
			sum += v
		}
		shareSum += float64(sum) / float64(total)
		samples++
	}
	if samples == 0 {
		t.Skip("too few sessions at this seed")
	}
	if mean := shareSum / float64(samples); mean < 0.33 {
		t.Errorf("top 6%% sessions hold only %.0f%% of member slots on average", mean*100)
	}
}

func TestSpawnEvent(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	now := sim.Epoch
	g.SpawnEvent(now, 4, 120, 8*time.Hour)
	if g.SessionCount() != 4 {
		t.Fatalf("sessions = %d", g.SessionCount())
	}
	sn := g.Snapshot()
	if sn.Participants < 200 {
		t.Errorf("event participants = %d", sn.Participants)
	}
	if sn.Senders < 4 {
		t.Errorf("event senders = %d", sn.Senders)
	}
}

func TestScheduledEventFires(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	fired := false
	g.At(sim.Epoch.Add(24*time.Hour), func(g *Generator, now time.Time) { fired = true })
	now := sim.Epoch
	for i := 0; i < 47; i++ {
		now = now.Add(cycle)
		g.Advance(now, cycle)
	}
	if fired {
		t.Fatal("event fired early")
	}
	now = now.Add(cycle)
	g.Advance(now, cycle)
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Snapshot {
		g := New(DefaultConfig(), testTopo())
		advanceDays(g, sim.Epoch, 3)
		return g.Snapshot()
	}
	if run() != run() {
		t.Error("same seed produced different workloads")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassExperimental: "experimental", ClassConference: "conference",
		ClassBroadcast: "broadcast", ClassIdle: "idle", Class(9): "unknown",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	g := New(DefaultConfig(), testTopo())
	peak := g.diurnal(time.Date(1998, 11, 3, 14, 0, 0, 0, time.UTC))
	trough := g.diurnal(time.Date(1998, 11, 3, 2, 0, 0, 0, time.UTC))
	if peak <= trough {
		t.Errorf("peak %f <= trough %f", peak, trough)
	}
}
