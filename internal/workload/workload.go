// Package workload generates the multicast usage the monitored routers
// see: sessions, their participant hosts, and the traffic each
// participant sources.
//
// Every participant sources *something*: at minimum RTCP-style feedback at
// well under 4 kbps. That detail is what makes the paper's methodology
// work — network-layer monitoring counts participants by the (S,G)
// forwarding state their control traffic creates, and classifies
// "senders" as participants exceeding the 4 kbps content threshold.
//
// The generator's session classes are calibrated to the distributional
// facts the paper reports for Nov 1998 – Apr 1999:
//
//   - bursts of experimental sessions: when the session count spikes past
//     500, more than 85 % of sessions have a single member;
//   - at typical instants ≥65 % of sessions have at most two members,
//     while <6 % of sessions hold ~80 % of all participants;
//   - aggregate content bandwidth through the exchange averages ≈4 Mbps
//     with high variance (σ ≈ 2.2 Mbps around a 2.9 Mbps median).
package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Class categorizes a session's behaviour.
type Class int

// Session classes.
const (
	// ClassExperimental sessions arrive in bursts from a single host
	// (an mrouted test run, an sdr experiment): one member, short life.
	ClassExperimental Class = iota
	// ClassConference is a small interactive group: a few members,
	// one or two audio senders.
	ClassConference
	// ClassBroadcast is a seminar/IETF-style channel: many passive
	// members, one video/audio sender.
	ClassBroadcast
	// ClassIdle sessions have members but never a content sender
	// (announced sessions nobody transmits on).
	ClassIdle
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassExperimental:
		return "experimental"
	case ClassConference:
		return "conference"
	case ClassBroadcast:
		return "broadcast"
	case ClassIdle:
		return "idle"
	}
	return "unknown"
}

// Member is one participant host of a session.
type Member struct {
	Host addr.IP
	// Edge is the router whose leaf subnet the host sits on.
	Edge topo.NodeID
	// CtrlKbps is the control-traffic rate the member always sources.
	CtrlKbps float64
	// ContentKbps is the content rate if the member is a sender, else 0.
	ContentKbps float64
	Joined      time.Time
	// Leaves is when the member departs.
	Leaves time.Time
}

// Rate returns the member's total sourcing rate in kbps.
func (m *Member) Rate() float64 { return m.CtrlKbps + m.ContentKbps }

// Session is one active multicast session.
type Session struct {
	Group   addr.IP
	Class   Class
	Created time.Time
	// Ends is when the session terminates regardless of members.
	Ends    time.Time
	Members map[addr.IP]*Member
}

// MemberList returns the members sorted by host address.
func (s *Session) MemberList() []*Member {
	out := make([]*Member, 0, len(s.Members))
	for _, m := range s.Members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// Senders returns members whose content rate is non-zero.
func (s *Session) Senders() []*Member {
	var out []*Member
	for _, m := range s.MemberList() {
		if m.ContentKbps > 0 {
			out = append(out, m)
		}
	}
	return out
}

// Config holds arrival rates (per day) and size parameters per class.
type Config struct {
	// ExperimentalBurstsPerDay is the arrival rate of burst events, each
	// spawning BurstMin..BurstMax single-member sessions.
	ExperimentalBurstsPerDay float64
	BurstMin, BurstMax       int
	// ConferencesPerDay, BroadcastsPerDay, IdlePerDay are session
	// arrival rates.
	ConferencesPerDay, BroadcastsPerDay, IdlePerDay float64
	// DiurnalAmplitude in [0,1) scales arrivals by time of day.
	DiurnalAmplitude float64
	// Seed drives the generator's private random stream.
	Seed int64
}

// DefaultConfig returns rates calibrated to the paper's reported
// magnitudes (hundreds of sessions, spikes past 500, ≈4 Mbps at the
// exchange).
func DefaultConfig() Config {
	return Config{
		ExperimentalBurstsPerDay: 1.1,
		BurstMin:                 60,
		BurstMax:                 520,
		ConferencesPerDay:        40,
		BroadcastsPerDay:         14,
		IdlePerDay:               150,
		DiurnalAmplitude:         0.35,
		Seed:                     407,
	}
}

// Generator produces and ages sessions over a topology.
type Generator struct {
	cfg    Config
	topo   *topo.Topology
	rng    *sim.RNG
	groups *addr.GroupAllocator
	// hostPools caches per-domain host allocation cursors.
	hostCursor map[string]int
	sessions   map[addr.IP]*Session
	// domains is the stable domain list for weighted selection.
	domains []*topo.Domain
	// popul holds Zipf popularity weights per domain index.
	popul []float64
	// scheduled one-shot events.
	events []*scheduledEvent
	stats  Stats
}

// Stats counts generator activity.
type Stats struct {
	SessionsCreated, SessionsEnded uint64
	JoinEvents, LeaveEvents        uint64
}

type scheduledEvent struct {
	at    time.Time
	fired bool
	fn    func(g *Generator, now time.Time)
}

// New returns a generator over t.
func New(cfg Config, t *topo.Topology) *Generator {
	g := &Generator{
		cfg:        cfg,
		topo:       t,
		rng:        sim.NewRNG(cfg.Seed),
		groups:     addr.NewGroupAllocator(addr.MustParsePrefix("224.2.0.0/15")),
		hostCursor: make(map[string]int),
		sessions:   make(map[addr.IP]*Session),
	}
	for _, d := range t.Domains() {
		g.domains = append(g.domains, d)
	}
	// Zipf-like popularity: early domains host most participants. The
	// UCSB campus gets second-rank weight — universities were among the
	// heaviest MBone participants, and receivers there are what keeps
	// cross-world flows traversing the FIXW border after the transition.
	for i, d := range g.domains {
		w := 1 / float64(i+1)
		if d.Name == "ucsb" {
			w = 0.5
		}
		g.popul = append(g.popul, w)
	}
	return g
}

// Stats returns a copy of the counters.
func (g *Generator) Stats() Stats { return g.stats }

// Sessions returns the active sessions sorted by group.
func (g *Generator) Sessions() []*Session {
	out := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// SessionCount returns the number of active sessions.
func (g *Generator) SessionCount() int { return len(g.sessions) }

// At schedules fn to run during the first Advance whose window covers t.
func (g *Generator) At(t time.Time, fn func(g *Generator, now time.Time)) {
	g.events = append(g.events, &scheduledEvent{at: t, fn: fn})
}

// pickHost allocates a host in the given domain, round-robin across the
// domain's leaf subnets.
func (g *Generator) pickHost(d *topo.Domain) (addr.IP, topo.NodeID, bool) {
	// Collect leaf-bearing routers once per call; domains are small.
	type leaf struct {
		r *topo.Router
		p addr.Prefix
	}
	var leaves []leaf
	for _, id := range d.Routers {
		r := g.topo.Router(id)
		for _, p := range r.LeafPrefixes {
			leaves = append(leaves, leaf{r: r, p: p})
		}
	}
	if len(leaves) == 0 {
		return 0, 0, false
	}
	cur := g.hostCursor[d.Name]
	g.hostCursor[d.Name] = cur + 1
	l := leaves[cur%len(leaves)]
	host := l.p.First() + addr.IP(10+cur%200)
	return host, l.r.ID, true
}

// pickDomain selects a domain weighted by popularity.
func (g *Generator) pickDomain() *topo.Domain {
	if len(g.domains) == 0 {
		return nil
	}
	return g.domains[g.rng.Pick(g.popul)]
}

// diurnal returns the arrival-rate multiplier for the hour of day.
func (g *Generator) diurnal(now time.Time) float64 {
	h := float64(now.Hour()) + float64(now.Minute())/60
	// Peak around 14:00 UTC (US working hours dominated the MBone).
	phase := (h - 14) / 24 * 2 * 3.14159265
	return 1 + g.cfg.DiurnalAmplitude*cosApprox(phase)
}

// cosApprox avoids importing math for one cosine; accuracy is irrelevant
// for a rate modulator. It wraps the argument and uses a parabola fit.
func cosApprox(x float64) float64 {
	const pi = 3.14159265358979
	for x > pi {
		x -= 2 * pi
	}
	for x < -pi {
		x += 2 * pi
	}
	// Bhaskara-style approximation, adequate within ±0.002.
	x2 := x * x
	return (pi*pi - 4*x2) / (pi*pi + x2)
}

// arrivals draws a Poisson count for a per-day rate over window dt.
func (g *Generator) arrivals(perDay float64, dt time.Duration, now time.Time) int {
	lambda := perDay * dt.Hours() / 24 * g.diurnal(now)
	return g.rng.Poisson(lambda)
}

func (g *Generator) newGroup() (addr.IP, bool) {
	grp, err := g.groups.Next()
	if err != nil {
		return 0, false
	}
	return grp, true
}

// ctrlRate draws an RTCP-like control rate, always below 4 kbps.
func (g *Generator) ctrlRate() float64 { return g.rng.Range(0.3, 3.2) }

// addMember attaches a new member to s.
func (g *Generator) addMember(s *Session, d *topo.Domain, contentKbps float64, now, leaves time.Time) *Member {
	host, edge, ok := g.pickHost(d)
	if !ok {
		return nil
	}
	if _, dup := s.Members[host]; dup {
		// Same host re-joining is a refresh.
		s.Members[host].Leaves = leaves
		return s.Members[host]
	}
	m := &Member{
		Host: host, Edge: edge,
		CtrlKbps: g.ctrlRate(), ContentKbps: contentKbps,
		Joined: now, Leaves: leaves,
	}
	s.Members[host] = m
	g.stats.JoinEvents++
	return m
}

func (g *Generator) createSession(class Class, now time.Time, life time.Duration) *Session {
	grp, ok := g.newGroup()
	if !ok {
		return nil
	}
	s := &Session{
		Group: grp, Class: class, Created: now,
		Ends:    now.Add(life),
		Members: make(map[addr.IP]*Member),
	}
	g.sessions[grp] = s
	g.stats.SessionsCreated++
	return s
}

// pickBurstDomain selects a domain for an experimental burst: uniform
// over the leaf domains, never the campus (experimental mrouted runs came
// from many scattered sites; keeping them off the campus also keeps the
// monitored vantages' instability sources distinct).
func (g *Generator) pickBurstDomain() *topo.Domain {
	var candidates []*topo.Domain
	for _, d := range g.domains {
		if d.Name != "ucsb" {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		if len(g.domains) == 0 {
			return nil
		}
		return g.domains[0]
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// spawnExperimentalBurst creates many single-member sessions from one host.
func (g *Generator) spawnExperimentalBurst(now time.Time) {
	d := g.pickBurstDomain()
	if d == nil {
		return
	}
	n := g.cfg.BurstMin
	if g.cfg.BurstMax > g.cfg.BurstMin {
		n += g.rng.Intn(g.cfg.BurstMax - g.cfg.BurstMin)
	}
	host, edge, ok := g.pickHost(d)
	if !ok {
		return
	}
	for i := 0; i < n; i++ {
		life := time.Duration(g.rng.Range(0.4, 4) * float64(time.Hour))
		s := g.createSession(ClassExperimental, now, life)
		if s == nil {
			return
		}
		m := &Member{
			Host: host, Edge: edge,
			CtrlKbps: g.ctrlRate(), Joined: now, Leaves: s.Ends,
		}
		s.Members[host] = m
		g.stats.JoinEvents++
	}
}

func (g *Generator) spawnConference(now time.Time) {
	life := time.Duration(g.rng.LogNormal(0.5, 0.7) * float64(time.Hour))
	s := g.createSession(ClassConference, now, life)
	if s == nil {
		return
	}
	n := 2 + g.rng.Intn(6)
	senders := 1 + g.rng.Intn(2)
	// Conferences were largely a research-community affair; most include
	// a campus participant, which is also what keeps conference flows
	// crossing the FIXW border after the transition (the paper's
	// "senders remained almost the same").
	campus := g.domainByName("ucsb")
	for i := 0; i < n; i++ {
		var content float64
		if i < senders {
			content = g.rng.Range(12, 72) // audio
		}
		stay := time.Duration(g.rng.Range(0.3, 1) * float64(life))
		d := g.pickDomain()
		if i == n-1 && campus != nil && g.rng.Bool(0.7) {
			d = campus
		}
		g.addMember(s, d, content, now, now.Add(stay))
	}
}

// domainByName returns the named domain, or nil.
func (g *Generator) domainByName(name string) *topo.Domain {
	for _, d := range g.domains {
		if d.Name == name {
			return d
		}
	}
	return nil
}

func (g *Generator) spawnBroadcast(now time.Time) {
	life := time.Duration(g.rng.Range(2, 10) * float64(time.Hour))
	s := g.createSession(ClassBroadcast, now, life)
	if s == nil {
		return
	}
	// One video sender plus a long-tailed audience across many domains.
	g.addMember(s, g.pickDomain(), g.rng.Range(256, 2048), now, s.Ends)
	audience := int(g.rng.Pareto(25, 1.15))
	if audience > 350 {
		audience = 350
	}
	for i := 0; i < audience; i++ {
		stay := time.Duration(g.rng.Range(0.2, 1) * float64(life))
		g.addMember(s, g.pickDomain(), 0, now, now.Add(stay))
	}
}

func (g *Generator) spawnIdle(now time.Time) {
	// Announced-but-idle sessions linger for many hours to days: the
	// persistent base of the session count.
	life := time.Duration(g.rng.LogNormal(2.8, 0.8) * float64(time.Hour))
	s := g.createSession(ClassIdle, now, life)
	if s == nil {
		return
	}
	// Mostly one or two members, keeping the paper's ≥65 % share of
	// sessions with at most two participants.
	n := 1 + g.rng.Pick([]float64{0.45, 0.35, 0.2})
	for i := 0; i < n; i++ {
		g.addMember(s, g.pickDomain(), 0, now, s.Ends)
	}
}

// SpawnEvent creates a large scheduled broadcast (the IETF-43 pattern):
// a handful of channels with big audiences and solid senders, lasting for
// the given duration. Exported so experiments can script it.
func (g *Generator) SpawnEvent(now time.Time, channels, audiencePerChannel int, d time.Duration) {
	for c := 0; c < channels; c++ {
		s := g.createSession(ClassBroadcast, now, d)
		if s == nil {
			return
		}
		g.addMember(s, g.pickDomain(), g.rng.Range(200, 900), now, s.Ends) // video
		g.addMember(s, g.pickDomain(), g.rng.Range(32, 80), now, s.Ends)   // audio
		for i := 0; i < audiencePerChannel; i++ {
			stay := time.Duration(g.rng.Range(0.3, 1) * float64(d))
			g.addMember(s, g.pickDomain(), 0, now, now.Add(stay))
		}
	}
}

// Advance moves the workload forward across the window (now-dt, now]:
// scheduled events fire, new sessions arrive, members churn, and expired
// members/sessions are removed.
func (g *Generator) Advance(now time.Time, dt time.Duration) {
	for _, ev := range g.events {
		if !ev.fired && !ev.at.After(now) {
			ev.fired = true
			ev.fn(g, now)
		}
	}

	for i := 0; i < g.arrivals(g.cfg.ExperimentalBurstsPerDay, dt, now); i++ {
		g.spawnExperimentalBurst(now)
	}
	for i := 0; i < g.arrivals(g.cfg.ConferencesPerDay, dt, now); i++ {
		g.spawnConference(now)
	}
	for i := 0; i < g.arrivals(g.cfg.BroadcastsPerDay, dt, now); i++ {
		g.spawnBroadcast(now)
	}
	for i := 0; i < g.arrivals(g.cfg.IdlePerDay, dt, now); i++ {
		g.spawnIdle(now)
	}

	// Late joins to existing broadcast sessions: new participants prefer
	// the already-popular groups (the density-spike correlation of Fig 4).
	lateJoins := g.arrivals(60, dt, now)
	var broadcasts []*Session
	for _, s := range g.sessions {
		if s.Class == ClassBroadcast {
			broadcasts = append(broadcasts, s)
		}
	}
	sort.Slice(broadcasts, func(i, j int) bool { return broadcasts[i].Group < broadcasts[j].Group })
	for i := 0; i < lateJoins && len(broadcasts) > 0; i++ {
		s := broadcasts[g.rng.Zipf(1.4, len(broadcasts))]
		stay := time.Duration(g.rng.Range(0.5, 3) * float64(time.Hour))
		g.addMember(s, g.pickDomain(), 0, now, now.Add(stay))
	}

	// Expire members and sessions.
	for grp, s := range g.sessions {
		for h, m := range s.Members {
			if !m.Leaves.After(now) {
				delete(s.Members, h)
				g.stats.LeaveEvents++
			}
		}
		if !s.Ends.After(now) || len(s.Members) == 0 {
			delete(g.sessions, grp)
			g.stats.SessionsEnded++
		}
	}
}

// Snapshot summarizes the current workload for tests and logging.
type Snapshot struct {
	Sessions, Participants, Senders int
	SingleMember                    int
	TotalContentKbps                float64
}

// Snapshot computes aggregate facts about the live workload.
func (g *Generator) Snapshot() Snapshot {
	var sn Snapshot
	sn.Sessions = len(g.sessions)
	seenHosts := make(map[addr.IP]bool)
	senders := make(map[addr.IP]bool)
	// Iterate in sorted order so the float sum is deterministic.
	for _, s := range g.Sessions() {
		if len(s.Members) == 1 {
			sn.SingleMember++
		}
		for _, m := range s.MemberList() {
			seenHosts[m.Host] = true
			if m.ContentKbps > 0 {
				senders[m.Host] = true
				sn.TotalContentKbps += m.ContentKbps
			}
		}
	}
	sn.Participants = len(seenHosts)
	sn.Senders = len(senders)
	return sn
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("sessions=%d participants=%d senders=%d single=%d content=%.0fkbps",
		s.Sessions, s.Participants, s.Senders, s.SingleMember, s.TotalContentKbps)
}
