package netsim

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/forwarding"
	"repro/internal/topo"
)

// TraceHop is one router on an mtrace path, reported receiver-to-source
// as the real tool prints it.
type TraceHop struct {
	Router string
	// Mode is the routing protocol at this hop.
	Mode topo.Mode
	// HasState reports whether the router currently holds (S,G)
	// forwarding state (only known at tracked routers; untracked hops
	// report false with StateUnknown set).
	HasState     bool
	StateUnknown bool
	// RateKbps and Packets come from the forwarding entry when present.
	RateKbps float64
	Packets  uint64
}

// MulticastPath returns the router sequence from a receiver's edge toward
// a source's edge over whichever clouds deliver multicast between them:
// the DVMRP cloud, the native mesh, or both pivoting at the FIXW border.
// It returns nil when no multicast delivery path exists — the reachability
// predicate behind both mtrace and the application-layer baseline.
func (n *Network) MulticastPath(rcvEdge, srcEdge topo.NodeID) []topo.NodeID {
	src := n.Topo.Router(srcEdge)
	rcv := n.Topo.Router(rcvEdge)
	if src == nil || rcv == nil {
		return nil
	}
	switch {
	case denseMode(src.Mode):
		if denseMode(rcv.Mode) {
			return n.Topo.Path(rcvEdge, srcEdge, n.Topo.DenseLinks())
		}
		if n.Inet != nil && n.Inet.FIXW.Mode == topo.ModeBorder {
			native := n.Topo.Path(rcvEdge, n.Inet.FIXW.ID, n.Topo.NativeLinks())
			dense := n.Topo.Path(n.Inet.FIXW.ID, srcEdge, n.Topo.DenseLinks())
			if native != nil && dense != nil {
				return append(native, dense[1:]...)
			}
		}
	case src.Mode == topo.ModePIMSM:
		if rcv.Mode == topo.ModePIMSM {
			return n.Topo.Path(rcvEdge, srcEdge, n.Topo.NativeLinks())
		}
		if n.Inet != nil && n.Inet.FIXW.Mode == topo.ModeBorder {
			dense := n.Topo.Path(rcvEdge, n.Inet.FIXW.ID, n.Topo.DenseLinks())
			native := n.Topo.Path(n.Inet.FIXW.ID, srcEdge, n.Topo.NativeLinks())
			if dense != nil && native != nil {
				return append(dense, native[1:]...)
			}
		}
	}
	return nil
}

// Mtrace walks the reverse path from the receiver host toward the source
// host for the given group — the paper's mtrace: hop-by-hop forwarding
// state and packet statistics along the distribution tree. It returns
// the hops receiver-first, or an error if no multicast path exists.
func (n *Network) Mtrace(source, group, receiver addr.IP) ([]TraceHop, error) {
	if !group.IsMulticast() {
		return nil, fmt.Errorf("netsim: %v is not a multicast group", group)
	}
	srcEdge := n.Topo.EdgeRouterFor(source)
	rcvEdge := n.Topo.EdgeRouterFor(receiver)
	if srcEdge == nil {
		return nil, fmt.Errorf("netsim: no edge router for source %v", source)
	}
	if rcvEdge == nil {
		return nil, fmt.Errorf("netsim: no edge router for receiver %v", receiver)
	}

	path := n.MulticastPath(rcvEdge.ID, srcEdge.ID)
	if path == nil {
		return nil, fmt.Errorf("netsim: no multicast path from %v to %v", receiver, source)
	}

	key := forwarding.Key{Source: source, Group: group}
	hops := make([]TraceHop, 0, len(path))
	for _, id := range path {
		spec := n.Topo.Router(id)
		hop := TraceHop{Router: spec.Name, Mode: spec.Mode}
		if n.tracked[id] {
			if e := n.routers[id].FWD.Get(key); e != nil {
				hop.HasState = true
				hop.RateKbps = e.RateKbps
				hop.Packets = e.Packets
			}
		} else {
			hop.StateUnknown = true
		}
		hops = append(hops, hop)
	}
	return hops, nil
}

// FormatTrace renders hops the way mtrace prints them.
func FormatTrace(source, group addr.IP, hops []TraceHop) string {
	out := fmt.Sprintf("mtrace from source %v for group %v, %d hops (receiver first):\n", source, group, len(hops))
	for i, h := range hops {
		state := "no (S,G) state"
		switch {
		case h.StateUnknown:
			state = "state unknown (untracked)"
		case h.HasState:
			state = fmt.Sprintf("(S,G) %.1f kbps, %d pkts", h.RateKbps, h.Packets)
		}
		out += fmt.Sprintf("  -%d  %-12s [%s]  %s\n", i, h.Router, h.Mode, state)
	}
	return out
}
