package netsim

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/forwarding"
	"repro/internal/packet"
	"repro/internal/topo"
	"repro/internal/workload"
)

// entryDraft accumulates the interface state of one (source, group) at one
// tracked router during a rebuild.
type entryDraft struct {
	iif    int
	oifs   map[int]bool
	onPath bool
	atRoot bool
}

// draftSet collects entry drafts at tracked routers only.
type draftSet struct {
	n *Network
	m map[topo.NodeID]*entryDraft
}

func (n *Network) newDraftSet() *draftSet {
	return &draftSet{n: n, m: make(map[topo.NodeID]*entryDraft)}
}

func (d *draftSet) get(id topo.NodeID) *entryDraft {
	e := d.m[id]
	if e == nil {
		e = &entryDraft{iif: -1, oifs: make(map[int]bool)}
		d.m[id] = e
	}
	return e
}

// touch records one hop visit at a tracked router. uplink is the link
// toward the tree root (the traffic source side), downlink toward the
// leaf being walked from.
func (d *draftSet) touch(id topo.NodeID, uplink, downlink *topo.Link, onPath bool) {
	if !d.n.tracked[id] {
		return
	}
	e := d.get(id)
	if uplink != nil {
		e.iif = uplink.ID
	} else {
		e.atRoot = true
		e.iif = -1
	}
	if downlink != nil {
		e.oifs[downlink.ID] = true
	}
	if onPath {
		e.onPath = true
	}
}

// walkUp visits the path from leaf to the root of tree. visit receives
// each node with its uplink (toward root, nil at the root) and downlink
// (toward the leaf, nil at the leaf). It returns false when the leaf has
// no path to the root.
func walkUp(tree map[topo.NodeID]*topo.Link, leaf topo.NodeID, visit func(node topo.NodeID, uplink, downlink *topo.Link)) bool {
	if _, ok := tree[leaf]; !ok {
		return false
	}
	var downlink *topo.Link
	cur := leaf
	for i := 0; i < 1024; i++ {
		uplink := tree[cur]
		visit(cur, uplink, downlink)
		if uplink == nil {
			return true
		}
		downlink = uplink
		cur = uplink.Other(cur).Router
	}
	return false
}

// rebuild reconstructs distribution state and accounts one cycle of
// traffic at the tracked routers.
func (n *Network) rebuild(now time.Time) {
	comp := n.comp()
	for _, s := range n.Workload.Sessions() {
		members := s.MemberList()

		// Classify member edges and feed IGMP at tracked edges.
		denseEdges := make(map[topo.NodeID]bool)
		sparseDomains := make(map[string][]topo.NodeID)
		sparseSeen := make(map[topo.NodeID]bool)
		for _, m := range members {
			edge := n.Topo.Router(m.Edge)
			if edge == nil {
				continue
			}
			if n.tracked[m.Edge] {
				n.deliverIGMPReport(m.Host, s.Group, now)
			}
			switch edge.Mode {
			case topo.ModeDVMRP, topo.ModePIMDM:
				denseEdges[m.Edge] = true
			case topo.ModePIMSM:
				if !sparseSeen[m.Edge] {
					sparseSeen[m.Edge] = true
					sparseDomains[edge.Domain] = append(sparseDomains[edge.Domain], m.Edge)
				}
			}
		}

		// Shared (*,G) trees in sparse domains with members.
		for domain, edges := range sparseDomains {
			rp, ok := n.RPs.For(domain)
			if !ok {
				continue
			}
			n.refreshSharedTree(s.Group, rp, edges, now)
		}

		for _, m := range members {
			n.placeSource(s, m, comp, denseEdges, sparseDomains, now)
		}
	}
}

// refreshSharedTree installs (*,G) state at tracked routers along the
// shared tree from the RP to the member edges.
func (n *Network) refreshSharedTree(group addr.IP, rp topo.NodeID, edges []topo.NodeID, now time.Time) {
	tree := n.nativeTree(rp)
	type starDraft struct {
		iif   int
		oifs  map[int]bool
		local bool
	}
	drafts := make(map[topo.NodeID]*starDraft)
	touch := func(id topo.NodeID, uplink, downlink *topo.Link, local bool) {
		if !n.tracked[id] {
			return
		}
		d := drafts[id]
		if d == nil {
			d = &starDraft{iif: -1, oifs: make(map[int]bool)}
			drafts[id] = d
		}
		if uplink != nil {
			d.iif = uplink.ID
		}
		if downlink != nil {
			d.oifs[downlink.ID] = true
		}
		if local {
			d.local = true
		}
	}
	for _, e := range edges {
		leaf := e
		walkUp(tree, e, func(id topo.NodeID, uplink, downlink *topo.Link) {
			touch(id, uplink, downlink, id == leaf)
		})
	}
	for id, d := range drafts {
		oifs := sortedInts(d.oifs)
		n.routers[id].PIM.RefreshStar(group, rp, d.iif, oifs, d.local, now)
	}
}

// placeSource installs (S,G) state and accounts traffic for one member's
// sourcing (control traffic at minimum, content when it is a sender).
func (n *Network) placeSource(s *workload.Session, m *workload.Member, comp map[topo.NodeID]int, denseEdges map[topo.NodeID]bool, sparseDomains map[string][]topo.NodeID, now time.Time) {
	srcSpec := n.Topo.Router(m.Edge)
	if srcSpec == nil {
		return
	}
	rate := m.Rate()
	drafts := n.newDraftSet()
	spt := n.policy.SwitchToSPT(rate)

	switch srcSpec.Mode {
	case topo.ModeDVMRP, topo.ModePIMDM:
		n.placeDenseSource(s, m, comp, denseEdges, sparseDomains, drafts, spt)
	case topo.ModePIMSM:
		n.placeSparseSource(s, m, comp, denseEdges, sparseDomains, drafts, spt)
	default:
		return
	}

	n.materialize(s.Group, m, srcSpec, drafts, rate, spt, now)
}

// placeDenseSource handles a source whose first-hop router floods via
// DVMRP: state everywhere in the dense component, traffic along member
// paths, and injection into the native world through the FIXW border.
func (n *Network) placeDenseSource(s *workload.Session, m *workload.Member, comp map[topo.NodeID]int, denseEdges map[topo.NodeID]bool, sparseDomains map[string][]topo.NodeID, drafts *draftSet, spt bool) {
	tree := n.denseTree(m.Edge)
	srcComp := comp[m.Edge]

	// Flood state: every tracked dense router in the component holds the
	// (S,G), pruned unless a member path crosses it.
	for id := range n.tracked {
		spec := n.Topo.Router(id)
		if spec == nil || !denseMode(spec.Mode) {
			continue
		}
		if comp[id] != srcComp {
			continue
		}
		if uplink, ok := tree[id]; ok {
			e := drafts.get(id)
			if uplink != nil {
				e.iif = uplink.ID
			} else {
				e.atRoot = true
			}
		}
	}

	// Member delivery paths through the dense cloud.
	for e := range denseEdges {
		if e == m.Edge {
			drafts.touch(e, nil, nil, true)
			continue
		}
		walkUp(tree, e, func(id topo.NodeID, uplink, downlink *topo.Link) {
			drafts.touch(id, uplink, downlink, true)
		})
	}

	// Injection into the native world for sparse receivers: the path runs
	// through the FIXW border, which originated an SA for this source.
	if len(sparseDomains) == 0 || n.Inet == nil || n.Inet.FIXW.Mode != topo.ModeBorder {
		return
	}
	fixw := n.Inet.FIXW.ID
	if comp[fixw] != srcComp {
		return
	}
	crossed := false
	nativeFromFixw := n.nativeTree(fixw)
	for domain, edges := range sparseDomains {
		rp, ok := n.RPs.For(domain)
		if !ok || !n.MSDP.HasSA(rp, m.Host, s.Group) {
			continue
		}
		targets := []topo.NodeID{rp}
		if spt {
			targets = edges
		}
		for _, tgt := range targets {
			if walkUp(nativeFromFixw, tgt, func(id topo.NodeID, uplink, downlink *topo.Link) {
				drafts.touch(id, uplink, downlink, true)
			}) {
				crossed = true
			}
		}
	}
	if crossed {
		// Dense-side path from FIXW back to the source.
		walkUp(tree, fixw, func(id topo.NodeID, uplink, downlink *topo.Link) {
			drafts.touch(id, uplink, downlink, true)
		})
	}
}

// placeSparseSource handles a source in a PIM-SM domain: register state at
// the DR, SPT joins from receiver RPs or last-hop routers, and delivery
// into the dense world through FIXW.
func (n *Network) placeSparseSource(s *workload.Session, m *workload.Member, comp map[topo.NodeID]int, denseEdges map[topo.NodeID]bool, sparseDomains map[string][]topo.NodeID, drafts *draftSet, spt bool) {
	tree := n.nativeTree(m.Edge)
	srcDomain := n.Topo.Router(m.Edge).Domain

	// DR register state always exists at the first-hop router.
	drafts.touch(m.Edge, nil, nil, true)

	// The source domain's RP pulls the flow (register, then SPT join).
	if srcRP, ok := n.RPs.For(srcDomain); ok {
		walkUp(tree, srcRP, func(id topo.NodeID, uplink, downlink *topo.Link) {
			drafts.touch(id, uplink, downlink, true)
		})
	}

	// Receiver domains join toward the source across the native mesh.
	for domain, edges := range sparseDomains {
		rp, ok := n.RPs.For(domain)
		if !ok {
			continue
		}
		if domain != srcDomain && !n.MSDP.HasSA(rp, m.Host, s.Group) {
			continue
		}
		targets := []topo.NodeID{rp}
		if spt {
			targets = edges
		}
		for _, tgt := range targets {
			if tgt == m.Edge {
				continue
			}
			walkUp(tree, tgt, func(id topo.NodeID, uplink, downlink *topo.Link) {
				drafts.touch(id, uplink, downlink, true)
			})
		}
	}

	// Dense-world receivers reach the flow through the FIXW border: FIXW
	// joins the SPT and re-floods on its DVMRP side.
	if len(denseEdges) == 0 || n.Inet == nil || n.Inet.FIXW.Mode != topo.ModeBorder {
		return
	}
	fixw := n.Inet.FIXW.ID
	if !n.MSDP.HasSA(fixw, m.Host, s.Group) {
		return
	}
	if !walkUp(tree, fixw, func(id topo.NodeID, uplink, downlink *topo.Link) {
		drafts.touch(id, uplink, downlink, true)
	}) {
		return
	}
	denseFromFixw := n.denseTree(fixw)
	fixwComp := comp[fixw]
	// Flood state in FIXW's dense component.
	for id := range n.tracked {
		spec := n.Topo.Router(id)
		if spec == nil || (spec.Mode != topo.ModeDVMRP && spec.Mode != topo.ModePIMDM) {
			continue
		}
		if comp[id] != fixwComp {
			continue
		}
		if uplink, ok := denseFromFixw[id]; ok && uplink != nil {
			e := drafts.get(id)
			e.iif = uplink.ID
		}
	}
	for e := range denseEdges {
		walkUp(denseFromFixw, e, func(id topo.NodeID, uplink, downlink *topo.Link) {
			drafts.touch(id, uplink, downlink, true)
		})
	}
}

// materialize turns drafts into forwarding entries and traffic accounting.
func (n *Network) materialize(group addr.IP, m *workload.Member, srcSpec *topo.Router, drafts *draftSet, rateKbps float64, spt bool, now time.Time) {
	key := forwarding.Key{Source: m.Host, Group: group}
	bytes := uint64(rateKbps * 1000 / 8 * n.cfg.Cycle.Seconds())
	ids := make([]topo.NodeID, 0, len(drafts.m))
	for id := range drafts.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := drafts.m[id]
		spec := n.Topo.Router(id)
		var flags forwarding.Flag
		denseSide := denseMode(srcSpec.Mode) && denseMode(spec.Mode)
		if spec.Mode == topo.ModeDVMRP || spec.Mode == topo.ModePIMDM || denseSide {
			flags = forwarding.FlagDense
			if !d.onPath {
				flags |= forwarding.FlagPruned
			}
		} else {
			flags = forwarding.FlagSparse
			if spt {
				flags |= forwarding.FlagSPT
			}
			if id == m.Edge {
				flags |= forwarding.FlagRegister
			}
		}
		fwd := n.routers[id].FWD
		fwd.Upsert(key, d.iif, sortedInts(d.oifs), flags, now)
		if d.onPath && bytes > 0 {
			fwd.Account(key, bytes, n.cfg.Cycle, now)
		}
	}
}

// deliverIGMPReport carries a host's membership report over the wire
// encoding: the report is marshalled as an IGMPv2 packet and decoded at
// the router, exactly as on a real subnet. Malformed or corrupted
// packets would be dropped here the way a querier drops them.
func (n *Network) deliverIGMPReport(host, group addr.IP, now time.Time) {
	edge := n.Topo.EdgeRouterFor(host)
	if edge == nil {
		return
	}
	wire := (&packet.IGMP{Kind: packet.IGMPReport, Group: group}).Marshal()
	msg, err := packet.UnmarshalIGMP(wire)
	if err != nil || msg.Kind != packet.IGMPReport {
		return
	}
	n.routers[edge.ID].IGMP.Report(host, msg.Group, now)
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
