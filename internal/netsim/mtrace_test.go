package netsim

import (
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/topo"
)

// tracedNetwork builds a network and finds a live (sender, group,
// receiver) triple with the receiver in a different domain.
func tracedNetwork(t *testing.T, transitioned bool) (*Network, addr.IP, addr.IP, addr.IP) {
	t.Helper()
	n := buildNet(t, 6)
	steps(n, 6)
	if transitioned {
		for _, d := range n.Topo.Domains() {
			if d.Name != "ucsb" {
				n.TransitionDomain(d.Name)
			}
		}
		steps(n, 6)
	}
	for _, s := range n.Workload.Sessions() {
		for _, snd := range s.Senders() {
			for _, m := range s.MemberList() {
				if m.Host == snd.Host {
					continue
				}
				srcDom := n.Topo.Router(snd.Edge).Domain
				rcvDom := n.Topo.Router(m.Edge).Domain
				if srcDom != rcvDom {
					return n, snd.Host, s.Group, m.Host
				}
			}
		}
	}
	t.Skip("no cross-domain sender/receiver pair at this seed")
	return nil, 0, 0, 0
}

func TestMtraceDenseWorld(t *testing.T) {
	n, src, grp, rcv := tracedNetwork(t, false)
	hops, err := n.Mtrace(src, grp, rcv)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 3 {
		t.Fatalf("hops = %d", len(hops))
	}
	// Pre-transition the path crosses FIXW, which is tracked and must
	// hold (S,G) state for an active sender.
	sawFixw := false
	for _, h := range hops {
		if h.Router == "fixw" {
			sawFixw = true
			if !h.HasState {
				t.Error("FIXW has no (S,G) state for an active flow")
			}
			if h.RateKbps <= 0 {
				t.Error("FIXW state carries no rate")
			}
		}
	}
	if !sawFixw {
		t.Error("trace did not cross FIXW in the tunnel world")
	}
	out := FormatTrace(src, grp, hops)
	if !strings.Contains(out, "receiver first") || !strings.Contains(out, "-0") {
		t.Errorf("format:\n%s", out)
	}
}

func TestMtraceRejectsBadInput(t *testing.T) {
	n := buildNet(t, 4)
	steps(n, 2)
	if _, err := n.Mtrace(addr.MustParse("10.0.0.1"), addr.MustParse("10.0.0.2"), addr.MustParse("10.0.0.3")); err == nil {
		t.Error("non-multicast group accepted")
	}
	if _, err := n.Mtrace(addr.MustParse("1.2.3.4"), addr.MustParse("224.1.1.1"), addr.MustParse("5.6.7.8")); err == nil {
		t.Error("unknown hosts accepted")
	}
}

func TestMtraceCrossWorld(t *testing.T) {
	n, src, grp, rcv := tracedNetwork(t, true)
	srcEdge := n.Topo.EdgeRouterFor(src)
	rcvEdge := n.Topo.EdgeRouterFor(rcv)
	// Only meaningful when the endpoints ended up in different worlds.
	if srcEdge.Mode == rcvEdge.Mode {
		t.Skip("sender and receiver in the same world at this seed")
	}
	hops, err := n.Mtrace(src, grp, rcv)
	if err != nil {
		t.Fatal(err)
	}
	modes := map[topo.Mode]bool{}
	for _, h := range hops {
		modes[h.Mode] = true
	}
	if len(modes) < 2 {
		t.Errorf("cross-world trace saw modes %v", modes)
	}
}

func TestMtraceFindsReceiverFirstOrder(t *testing.T) {
	n, src, grp, rcv := tracedNetwork(t, false)
	hops, err := n.Mtrace(src, grp, rcv)
	if err != nil {
		t.Fatal(err)
	}
	first := n.Topo.RouterByName(hops[0].Router)
	last := n.Topo.RouterByName(hops[len(hops)-1].Router)
	if n.Topo.EdgeRouterFor(rcv).ID != first.ID {
		t.Errorf("first hop %s is not the receiver edge", hops[0].Router)
	}
	if n.Topo.EdgeRouterFor(src).ID != last.ID {
		t.Errorf("last hop %s is not the source edge", hops[len(hops)-1].Router)
	}
}
