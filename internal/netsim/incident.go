// Scripted protocol-level incidents: the fault library behind the
// paper's §V anomaly findings. Where the session-fault layer
// (router.FaultyRouter) degrades *collection*, an Incident degrades the
// *network itself* — an RP dies, a speaker leaks unicast routes into
// MBGP, a border flaps prefixes cycle after cycle — so detectors can be
// exercised end to end, including under simultaneously degraded
// collection.
//
// Incidents are scheduled on the virtual clock (ScheduleScenario), are
// reversible (End restores the pre-incident configuration), and are
// deterministic: every address they fabricate is a pure function of the
// incident parameters, so two same-seed networks running the same
// scenario stay byte-identical. Scheduler events run at the cycle
// boundary before the cycle's protocol ticks, so an incident beginning
// at cycle k is visible in cycle k's collected dumps.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Incident is one scripted, reversible protocol-level fault. Begin
// applies it, Tick maintains it at each subsequent cycle boundary while
// active, End reverses it. Incidents carry per-run state (saved
// peerings, leaked prefixes) and are therefore single-use: build a
// fresh value per scheduled occurrence.
type Incident interface {
	// Name labels the incident's scheduler events.
	Name() string
	// Validate checks the incident against the network before it is
	// scheduled — unknown routers or domains fail here, not mid-run.
	Validate(n *Network) error
	Begin(n *Network, now time.Time)
	Tick(n *Network, now time.Time)
	End(n *Network, now time.Time)
}

// ScheduledIncident places one incident on a scenario's cycle timeline.
type ScheduledIncident struct {
	Incident Incident
	// StartCycle is the cycle offset (from scheduling time) at which
	// Begin fires; DurationCycles how many cycles the incident holds
	// before End (minimum 1).
	StartCycle     int
	DurationCycles int
}

// Scenario is a named incident script plus the detection contract the
// chaos proofs hold Mantra to.
type Scenario struct {
	Name string
	// Watch lists the routers whose dumps exhibit the incidents'
	// signatures — the recommended monitoring set, primary first.
	Watch []string
	// DetectKind is the process anomaly kind the scenario must raise
	// (mirrors the process.Kind* constants).
	DetectKind string
	// MaxDetectCycles bounds the cycles from an incident's Begin to the
	// anomaly opening on the primary watch target (clean collection; a
	// degraded collector adds one cycle per missed collection).
	// MaxResolveCycles bounds the cycles from End to the anomaly
	// resolving — SA-backed incidents drain over the MSDP lifetime.
	MaxDetectCycles  int
	MaxResolveCycles int
	Events           []ScheduledIncident
}

// ScheduleScenario validates every event and arranges the scenario's
// begin/tick/end callbacks on the virtual clock, relative to now.
func (n *Network) ScheduleScenario(sc Scenario) error {
	for _, ev := range sc.Events {
		if ev.Incident == nil {
			return fmt.Errorf("netsim: scenario %q: nil incident", sc.Name)
		}
		if err := ev.Incident.Validate(n); err != nil {
			return fmt.Errorf("netsim: scenario %q: %w", sc.Name, err)
		}
	}
	now := n.Clock.Now()
	for _, ev := range sc.Events {
		inc := ev.Incident
		dur := ev.DurationCycles
		if dur < 1 {
			dur = 1
		}
		start := now.Add(time.Duration(ev.StartCycle) * n.cfg.Cycle)
		n.Sched.At(start, inc.Name()+"-begin", func(*sim.Scheduler) {
			inc.Begin(n, n.Clock.Now())
		})
		for i := 1; i < dur; i++ {
			n.Sched.At(start.Add(time.Duration(i)*n.cfg.Cycle), inc.Name()+"-tick", func(*sim.Scheduler) {
				inc.Tick(n, n.Clock.Now())
			})
		}
		n.Sched.At(start.Add(time.Duration(dur)*n.cfg.Cycle), inc.Name()+"-end", func(*sim.Scheduler) {
			inc.End(n, n.Clock.Now())
		})
	}
	return nil
}

// RPFailure kills a transitioned domain's rendezvous point: the RP
// leaves the MSDP mesh (its SA cache empties instantly, the shared tree
// loses its root) and, optionally, a core RP is assigned as interim
// failover for the domain's sources. End restores the original RP, its
// peerings, and the domain assignment.
type RPFailure struct {
	Domain string
	// Failover optionally names a core RP that assumes the domain's
	// source registrations while the RP is down.
	Failover string

	rp     topo.NodeID
	peers  []topo.NodeID
	active bool
}

func (f *RPFailure) Name() string {
	if f.Failover != "" {
		return "rp-failover"
	}
	return "rp-failure"
}

func (f *RPFailure) Validate(n *Network) error {
	if n.Topo.Domain(f.Domain) == nil {
		return fmt.Errorf("rp-failure: unknown domain %q", f.Domain)
	}
	if f.Failover != "" {
		r := n.Topo.RouterByName(f.Failover)
		if r == nil {
			return fmt.Errorf("rp-failure: unknown failover router %q", f.Failover)
		}
		if !n.MSDP.HasRP(r.ID) {
			return fmt.Errorf("rp-failure: failover router %q is not an MSDP RP", f.Failover)
		}
	}
	return nil
}

func (f *RPFailure) Begin(n *Network, now time.Time) {
	rp, ok := n.RPs.For(f.Domain)
	if !ok || !n.MSDP.HasRP(rp) {
		return // domain not transitioned yet: nothing to kill
	}
	f.rp = rp
	f.peers = n.MSDP.Peers(rp)
	f.active = true
	n.MSDP.RemoveRP(rp)
	if f.Failover != "" {
		n.RPs.Assign(f.Domain, n.Topo.RouterByName(f.Failover).ID)
	}
}

func (f *RPFailure) Tick(*Network, time.Time) {}

func (f *RPFailure) End(n *Network, now time.Time) {
	if !f.active {
		return
	}
	f.active = false
	n.MSDP.EnsureRP(f.rp)
	for _, p := range f.peers {
		if n.MSDP.HasRP(p) {
			n.MSDP.Peer(f.rp, p)
		}
	}
	n.RPs.Assign(f.Domain, f.rp)
}

// SAStorm floods the MSDP mesh with fabricated (source, group)
// originations at one RP — the 2001-style storm in which bogus SA state
// balloons every cache in the mesh. Originations are refreshed each
// cycle while active; after End the state drains over the SA lifetime.
type SAStorm struct {
	Router string // an MSDP RP
	Count  int

	id topo.NodeID
}

func (s *SAStorm) Name() string { return "sa-storm" }

func (s *SAStorm) Validate(n *Network) error {
	r := n.Topo.RouterByName(s.Router)
	if r == nil {
		return fmt.Errorf("sa-storm: unknown router %q", s.Router)
	}
	s.id = r.ID
	return nil
}

// pair returns the i-th fabricated (source, group); a pure function of
// i so reruns and twin networks originate identical state.
func (s *SAStorm) pair(i int) (source, group addr.IP) {
	return addr.V4(199, byte(50+i/250), byte(i%250), 9),
		addr.V4(239, 200, byte(i/250), byte(i%250))
}

func (s *SAStorm) originate(n *Network, now time.Time) {
	if !n.MSDP.HasRP(s.id) {
		return
	}
	for i := 0; i < s.Count; i++ {
		src, grp := s.pair(i)
		n.MSDP.Originate(s.id, src, grp, now)
	}
}

func (s *SAStorm) Begin(n *Network, now time.Time) { s.originate(n, now) }
func (s *SAStorm) Tick(n *Network, now time.Time)  { s.originate(n, now) }

func (s *SAStorm) End(n *Network, now time.Time) {
	for i := 0; i < s.Count; i++ {
		src, grp := s.pair(i)
		n.MSDP.StopOriginating(s.id, src, grp)
	}
}

// RouteLeak originates a block of foreign unicast prefixes at an MBGP
// speaker — a full-table leak in miniature, flooding every RIB in the
// mesh within a cycle. End withdraws the block.
type RouteLeak struct {
	Speaker string
	Count   int

	id     topo.NodeID
	leaked []addr.Prefix
}

func (l *RouteLeak) Name() string { return "route-leak" }

func (l *RouteLeak) Validate(n *Network) error {
	r := n.Topo.RouterByName(l.Speaker)
	if r == nil {
		return fmt.Errorf("route-leak: unknown router %q", l.Speaker)
	}
	l.id = r.ID
	return nil
}

func (l *RouteLeak) Begin(n *Network, now time.Time) {
	if !n.MBGP.HasSpeaker(l.id) {
		return
	}
	base := addr.MustParse("66.0.0.0")
	l.leaked = l.leaked[:0]
	for i := 0; i < l.Count; i++ {
		l.leaked = append(l.leaked, addr.PrefixFrom(base+addr.IP(i<<8), 24))
	}
	n.MBGP.Originate(l.id, now, l.leaked...)
}

func (l *RouteLeak) Tick(*Network, time.Time) {}

func (l *RouteLeak) End(n *Network, now time.Time) {
	if len(l.leaked) > 0 {
		n.MBGP.Withdraw(l.id, now, l.leaked...)
	}
}

// UnicastInjection reproduces the October 14 1998 Abilene incident:
// unicast prefixes leak into a router's DVMRP table and propagate
// through the cloud until withdrawn.
type UnicastInjection struct {
	Router string
	Count  int

	id     topo.NodeID
	leaked []addr.Prefix
}

func (u *UnicastInjection) Name() string { return "unicast-injection" }

func (u *UnicastInjection) Validate(n *Network) error {
	r := n.Topo.RouterByName(u.Router)
	if r == nil {
		return fmt.Errorf("unicast-injection: unknown router %q", u.Router)
	}
	u.id = r.ID
	return nil
}

func (u *UnicastInjection) Begin(n *Network, now time.Time) {
	base := addr.MustParse("24.0.0.0")
	u.leaked = u.leaked[:0]
	for i := 0; i < u.Count; i++ {
		u.leaked = append(u.leaked, addr.PrefixFrom(base+addr.IP(i<<8), 24))
	}
	n.DVMRP.Originate(u.id, now, 1, u.leaked...)
}

func (u *UnicastInjection) Tick(*Network, time.Time) {}

func (u *UnicastInjection) End(n *Network, now time.Time) {
	if len(u.leaked) > 0 {
		n.DVMRP.Withdraw(u.id, now, u.leaked...)
	}
}

// PruneStorm flaps a block of prefixes at a DVMRP router every cycle —
// present one cycle, withdrawn the next — the route-churn signature of
// a prune/graft storm. End withdraws whatever phase left behind.
type PruneStorm struct {
	Router string
	Count  int

	id       topo.NodeID
	prefixes []addr.Prefix
	present  bool
}

func (p *PruneStorm) Name() string { return "prune-storm" }

func (p *PruneStorm) Validate(n *Network) error {
	r := n.Topo.RouterByName(p.Router)
	if r == nil {
		return fmt.Errorf("prune-storm: unknown router %q", p.Router)
	}
	p.id = r.ID
	return nil
}

func (p *PruneStorm) Begin(n *Network, now time.Time) {
	base := addr.MustParse("39.0.0.0")
	p.prefixes = p.prefixes[:0]
	for i := 0; i < p.Count; i++ {
		p.prefixes = append(p.prefixes, addr.PrefixFrom(base+addr.IP(i<<8), 24))
	}
	n.DVMRP.Originate(p.id, now, 1, p.prefixes...)
	p.present = true
}

func (p *PruneStorm) Tick(n *Network, now time.Time) {
	if p.present {
		n.DVMRP.Withdraw(p.id, now, p.prefixes...)
	} else {
		n.DVMRP.Originate(p.id, now, 1, p.prefixes...)
	}
	p.present = !p.present
}

func (p *PruneStorm) End(n *Network, now time.Time) {
	if p.present {
		n.DVMRP.Withdraw(p.id, now, p.prefixes...)
		p.present = false
	}
}

// libraryBuilders maps scenario names to constructors against the
// paper's internet topology (BuildInternet names). The rp-failure,
// rp-failover, sa-storm and route-leak scenarios assume dom00 has
// transitioned to native sparse mode (making fixw a border RP/speaker
// and dom00-gw the domain RP) before the scenario begins.
var libraryBuilders = map[string]func(start, duration int) Scenario{
	"rp-failure": func(start, duration int) Scenario {
		return Scenario{
			Name:             "rp-failure",
			Watch:            []string{"dom00-gw"},
			DetectKind:       "rp-loss",
			MaxDetectCycles:  2,
			MaxResolveCycles: 3,
			Events: []ScheduledIncident{{
				Incident:   &RPFailure{Domain: "dom00"},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
	"rp-failover": func(start, duration int) Scenario {
		return Scenario{
			Name:             "rp-failover",
			Watch:            []string{"dom00-gw"},
			DetectKind:       "rp-loss",
			MaxDetectCycles:  2,
			MaxResolveCycles: 3,
			Events: []ScheduledIncident{{
				Incident:   &RPFailure{Domain: "dom00", Failover: "nexch1"},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
	"sa-storm": func(start, duration int) Scenario {
		return Scenario{
			Name:             "sa-storm",
			Watch:            []string{"fixw", "dom00-gw"},
			DetectKind:       "sa-storm",
			MaxDetectCycles:  2,
			MaxResolveCycles: 5, // drains over the 3-cycle SA lifetime
			Events: []ScheduledIncident{{
				Incident:   &SAStorm{Router: "fixw", Count: 200},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
	"route-leak": func(start, duration int) Scenario {
		return Scenario{
			Name:             "route-leak",
			Watch:            []string{"fixw", "dom00-gw"},
			DetectKind:       "route-leak",
			MaxDetectCycles:  2,
			MaxResolveCycles: 2,
			Events: []ScheduledIncident{{
				Incident:   &RouteLeak{Speaker: "fixw", Count: 400},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
	"unicast-injection": func(start, duration int) Scenario {
		return Scenario{
			Name:             "unicast-injection",
			Watch:            []string{"ucsb-r1", "fixw"},
			DetectKind:       "route-injection",
			MaxDetectCycles:  2,
			MaxResolveCycles: 2,
			Events: []ScheduledIncident{{
				Incident:   &UnicastInjection{Router: "ucsb-gw", Count: 3000},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
	"prune-storm": func(start, duration int) Scenario {
		return Scenario{
			Name:             "prune-storm",
			Watch:            []string{"ucsb-r1", "fixw"},
			DetectKind:       "route-flap",
			MaxDetectCycles:  4, // churn must sustain 3 consecutive cycles
			MaxResolveCycles: 2,
			Events: []ScheduledIncident{{
				Incident:   &PruneStorm{Router: "ucsb-gw", Count: 120},
				StartCycle: start, DurationCycles: duration,
			}},
		}
	},
}

// LibraryScenarios lists the built-in scenario names, sorted.
func LibraryScenarios() []string {
	out := make([]string, 0, len(libraryBuilders))
	for name := range libraryBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LibraryScenario builds a built-in scenario beginning start cycles
// from scheduling time and holding for duration cycles.
func LibraryScenario(name string, start, duration int) (Scenario, error) {
	b, ok := libraryBuilders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("netsim: unknown scenario %q (have %v)", name, LibraryScenarios())
	}
	return b(start, duration), nil
}
