package netsim

import (
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/workload"
)

// buildIncidentNet constructs a small internet with dom00 transitioned
// to native sparse mode — the precondition of the RP/MSDP/MBGP library
// scenarios — and a few warmup cycles behind it.
func buildIncidentNet(t *testing.T) *Network {
	t.Helper()
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 4
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	cfg := DefaultConfig()
	// Deterministic background: the chaos proofs script their own faults.
	cfg.FlapPerDomainPerCycle = 0
	cfg.RestartPerCycle = 0
	n := New(inet, wl, cfg)
	if err := n.Track("fixw", "ucsb-r1", "dom00-gw"); err != nil {
		t.Fatal(err)
	}
	steps(n, 2)
	n.TransitionDomain("dom00")
	steps(n, 6)
	return n
}

func TestRPFailureReversible(t *testing.T) {
	n := buildIncidentNet(t)
	rp, ok := n.RPs.For("dom00")
	if !ok {
		t.Fatal("dom00 has no RP")
	}
	prePeers := n.MSDP.Peers(rp)
	if len(prePeers) == 0 {
		t.Fatal("RP has no peers to save")
	}
	if n.MSDP.CacheSize(rp) == 0 {
		t.Fatal("RP cache empty before failure")
	}

	inc := &RPFailure{Domain: "dom00"}
	if err := inc.Validate(n); err != nil {
		t.Fatal(err)
	}
	inc.Begin(n, n.Now())
	steps(n, 2)
	if n.MSDP.HasRP(rp) {
		t.Fatal("RP still in mesh after failure")
	}
	if n.MSDP.CacheSize(rp) != 0 {
		t.Error("dead RP still holds SA cache")
	}

	inc.End(n, n.Now())
	steps(n, 2)
	if !n.MSDP.HasRP(rp) {
		t.Fatal("RP not restored")
	}
	if got := n.MSDP.Peers(rp); len(got) != len(prePeers) {
		t.Errorf("peers after restore = %v, want %v", got, prePeers)
	}
	if back, ok := n.RPs.For("dom00"); !ok || back != rp {
		t.Error("RP assignment not restored")
	}
	if n.MSDP.CacheSize(rp) == 0 {
		t.Error("restored RP cache did not repopulate")
	}
}

func TestRPFailoverReassignsSources(t *testing.T) {
	n := buildIncidentNet(t)
	rp, _ := n.RPs.For("dom00")
	inc := &RPFailure{Domain: "dom00", Failover: "nexch1"}
	if err := inc.Validate(n); err != nil {
		t.Fatal(err)
	}
	inc.Begin(n, n.Now())
	nexch1 := n.Topo.RouterByName("nexch1").ID
	if got, _ := n.RPs.For("dom00"); got != nexch1 {
		t.Fatalf("failover RP = %v, want nexch1", got)
	}
	steps(n, 2)
	inc.End(n, n.Now())
	if got, _ := n.RPs.For("dom00"); got != rp {
		t.Error("original RP not reinstated")
	}
}

func TestSAStormBalloonsAndDrains(t *testing.T) {
	n := buildIncidentNet(t)
	fixw := n.Inet.FIXW.ID
	dom00 := n.Topo.Domain("dom00").Border()
	// Count only the storm's fabricated entries (sources in 199/8): the
	// background workload churns a few real SAs per cycle.
	stormSAs := func(rp topo.NodeID) int {
		count := 0
		for _, e := range n.MSDP.Cache(rp) {
			if byte(e.Source>>24) == 199 {
				count++
			}
		}
		return count
	}

	inc := &SAStorm{Router: "fixw", Count: 200}
	if err := inc.Validate(n); err != nil {
		t.Fatal(err)
	}
	inc.Begin(n, n.Now())
	n.Step()
	// The storm floods mesh-wide within a cycle: visible at the origin
	// AND at the transitioned domain's RP (the cross-target signature).
	if got := stormSAs(fixw); got != 200 {
		t.Errorf("fixw storm SAs = %d, want 200", got)
	}
	if got := stormSAs(dom00); got != 200 {
		t.Errorf("dom00-gw storm SAs = %d, want 200", got)
	}

	inc.End(n, n.Now())
	steps(n, 5) // SA lifetime is 3 cycles
	if got := stormSAs(fixw); got != 0 {
		t.Errorf("storm state did not drain: %d", got)
	}
}

func TestRouteLeakFloodsMesh(t *testing.T) {
	n := buildIncidentNet(t)
	fixw := n.Inet.FIXW.ID
	dom00 := n.Topo.Domain("dom00").Border()
	preFixw := n.MBGP.RouteCount(fixw)
	preDom := n.MBGP.RouteCount(dom00)

	inc := &RouteLeak{Speaker: "fixw", Count: 400}
	if err := inc.Validate(n); err != nil {
		t.Fatal(err)
	}
	inc.Begin(n, n.Now())
	n.Step()
	if got := n.MBGP.RouteCount(fixw); got < preFixw+400 {
		t.Errorf("fixw RIB = %d, want >= %d", got, preFixw+400)
	}
	if got := n.MBGP.RouteCount(dom00); got < preDom+400 {
		t.Errorf("dom00-gw RIB = %d, want >= %d", got, preDom+400)
	}

	inc.End(n, n.Now())
	steps(n, 2)
	if got := n.MBGP.RouteCount(fixw); got != preFixw {
		t.Errorf("RIB after withdraw = %d, want %d", got, preFixw)
	}
}

func TestPruneStormFlapsEveryCycle(t *testing.T) {
	n := buildIncidentNet(t)
	ucsb := n.Topo.RouterByName("ucsb-r1").ID
	base := n.DVMRP.RouteCount(ucsb)

	inc := &PruneStorm{Router: "ucsb-gw", Count: 120}
	if err := inc.Validate(n); err != nil {
		t.Fatal(err)
	}
	inc.Begin(n, n.Now())
	n.Step()
	if got := n.DVMRP.RouteCount(ucsb); got < base+120 {
		t.Fatalf("flapped prefixes not visible: %d", got)
	}
	inc.Tick(n, n.Now())
	n.Step()
	if got := n.DVMRP.RouteCount(ucsb); got >= base+120 {
		t.Fatalf("withdraw phase did not land: %d", got)
	}
	inc.Tick(n, n.Now())
	n.Step()
	if got := n.DVMRP.RouteCount(ucsb); got < base+120 {
		t.Fatalf("restore phase did not land: %d", got)
	}
	inc.End(n, n.Now())
	n.Step()
	if got := n.DVMRP.RouteCount(ucsb); got != base {
		t.Errorf("routes after end = %d, want %d", got, base)
	}
}

func TestScheduleScenarioLibrary(t *testing.T) {
	n := buildIncidentNet(t)
	for _, name := range LibraryScenarios() {
		sc, err := LibraryScenario(name, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if sc.DetectKind == "" || len(sc.Watch) == 0 || sc.MaxDetectCycles <= 0 {
			t.Errorf("%s: incomplete detection contract: %+v", name, sc)
		}
		for _, w := range sc.Watch {
			if n.Topo.RouterByName(w) == nil {
				t.Errorf("%s: watch router %q missing from topology", name, w)
			}
		}
	}
	sc, err := LibraryScenario("unicast-injection", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ScheduleScenario(sc); err != nil {
		t.Fatal(err)
	}
	ucsb := n.Topo.RouterByName("ucsb-r1").ID
	base := n.DVMRP.RouteCount(ucsb)
	steps(n, 2) // cycle 1: begin fires, injection visible
	if got := n.DVMRP.RouteCount(ucsb); got < base+3000 {
		t.Fatalf("scenario injection not visible: %d vs base %d", got, base)
	}
	steps(n, 2) // end fires, withdraw converges
	if got := n.DVMRP.RouteCount(ucsb); got >= base+3000 {
		t.Fatalf("scenario did not end: %d", got)
	}
	if _, err := LibraryScenario("no-such", 0, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScheduleScenarioValidates(t *testing.T) {
	n := buildIncidentNet(t)
	err := n.ScheduleScenario(Scenario{
		Name: "bad",
		Events: []ScheduledIncident{{
			Incident: &UnicastInjection{Router: "nope", Count: 10},
		}},
	})
	if err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestIncidentDeterminism(t *testing.T) {
	// Two same-seed networks running the same scenario stay identical.
	run := func() (int, int, time.Time) {
		n := buildIncidentNet(t)
		sc, err := LibraryScenario("sa-storm", 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.ScheduleScenario(sc); err != nil {
			t.Fatal(err)
		}
		steps(n, 6)
		fixw := n.Inet.FIXW.ID
		return n.MSDP.CacheSize(fixw), n.DVMRP.RouteCount(n.Inet.FIXW.ID), n.Now()
	}
	c1, r1, t1 := run()
	c2, r2, t2 := run()
	if c1 != c2 || r1 != r2 || !t1.Equal(t2) {
		t.Errorf("runs diverged: (%d,%d,%v) vs (%d,%d,%v)", c1, r1, t1, c2, r2, t2)
	}
}
