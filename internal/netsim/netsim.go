// Package netsim drives the simulated multicast internetwork: each Step()
// advances one monitoring cycle, during which the workload churns,
// routing protocols exchange state, distribution trees are maintained,
// and traffic is accounted on the routers' forwarding caches.
//
// The construction replaces the paper's substrate — the live 1998–1999
// multicast Internet — with a deterministic model that produces the same
// observable router state Mantra scraped: DVMRP route tables that flap
// and diverge, dense-mode forwarding caches holding state for every
// active source, and sparse-mode state that exists only where downstream
// receivers are.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/dvmrp"
	"repro/internal/forwarding"
	"repro/internal/igmp"
	"repro/internal/mbgp"
	"repro/internal/msdp"
	"repro/internal/pim"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Config parameterizes a Network.
type Config struct {
	// Cycle is the monitoring interval Step() advances by.
	Cycle time.Duration
	// Seed drives the fault model's random stream.
	Seed int64
	// FlapPerDomainPerCycle is the probability a DVMRP domain flaps a
	// chunk of its prefixes in a given cycle.
	FlapPerDomainPerCycle float64
	// RestartPerCycle is the probability some DVMRP router restarts in
	// a given cycle.
	RestartPerCycle float64
	// SPTThresholdKbps is the sparse-mode shortest-path-tree switchover
	// threshold.
	SPTThresholdKbps float64
	// PruneLifetime is the dense-mode forwarding-state idle timeout.
	PruneLifetime time.Duration
}

// DefaultConfig returns the configuration the paper-scale experiments use.
func DefaultConfig() Config {
	return Config{
		Cycle:                 30 * time.Minute,
		Seed:                  77,
		FlapPerDomainPerCycle: 0.05,
		RestartPerCycle:       0.015,
		SPTThresholdKbps:      4,
		PruneLifetime:         2 * time.Hour,
	}
}

// Network is the running internetwork.
type Network struct {
	Topo  *topo.Topology
	Inet  *topo.Internet // nil for standalone topologies
	Clock *sim.Clock
	Sched *sim.Scheduler

	DVMRP *dvmrp.Cloud
	MBGP  *mbgp.Mesh
	MSDP  *msdp.Mesh
	RPs   *pim.RPMap

	Workload *workload.Generator

	cfg     Config
	rng     *sim.RNG
	routers map[topo.NodeID]*router.Router
	// tracked routers materialize forwarding/IGMP/PIM state.
	tracked map[topo.NodeID]bool
	policy  pim.Policy

	// per-cycle caches
	denseTrees  map[topo.NodeID]map[topo.NodeID]*topo.Link
	nativeTrees map[topo.NodeID]map[topo.NodeID]*topo.Link
	denseComp   map[topo.NodeID]int

	cycles uint64
}

// New builds a network over a pre-built internet topology and workload.
// wl may be nil for route-monitoring-only experiments.
func New(inet *topo.Internet, wl *workload.Generator, cfg Config) *Network {
	n := newCommon(inet.Topo, cfg)
	n.Inet = inet
	n.Workload = wl
	n.bootstrapOrigins()
	return n
}

// NewStandalone builds a network over a plain topology (e.g. a campus).
func NewStandalone(t *topo.Topology, wl *workload.Generator, cfg Config) *Network {
	n := newCommon(t, cfg)
	n.Workload = wl
	n.bootstrapOrigins()
	return n
}

func newCommon(t *topo.Topology, cfg Config) *Network {
	if cfg.Cycle <= 0 {
		cfg.Cycle = 30 * time.Minute
	}
	if cfg.PruneLifetime <= 0 {
		cfg.PruneLifetime = 2 * time.Hour
	}
	clock := sim.NewEpochClock()
	n := &Network{
		Topo:        t,
		Clock:       clock,
		Sched:       sim.NewScheduler(clock),
		DVMRP:       dvmrp.NewCloud(t, sim.NewRNG(cfg.Seed+1), cfg.Cycle),
		MBGP:        mbgp.NewMesh(t),
		MSDP:        msdp.NewMesh(3 * cfg.Cycle),
		RPs:         pim.NewRPMap(),
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed),
		routers:     make(map[topo.NodeID]*router.Router),
		tracked:     make(map[topo.NodeID]bool),
		policy:      pim.Policy{SPTThresholdKbps: cfg.SPTThresholdKbps},
		denseTrees:  make(map[topo.NodeID]map[topo.NodeID]*topo.Link),
		nativeTrees: make(map[topo.NodeID]map[topo.NodeID]*topo.Link),
	}
	for _, r := range t.Routers() {
		n.routers[r.ID] = &router.Router{
			Spec:  r,
			Topo:  t,
			Clock: clock,
			DVMRP: n.DVMRP,
			MBGP:  n.MBGP,
			MSDP:  n.MSDP,
			IGMP:  igmp.NewRouter(r.ID, 0),
			PIM:   pim.NewRouter(r.ID, 0),
			FWD:   forwarding.NewTable(r.ID, cfg.PruneLifetime),
		}
		if r.Mode == topo.ModeDVMRP || r.Mode == topo.ModeBorder {
			n.DVMRP.EnsureRouter(r.ID)
		}
	}
	return n
}

// bootstrapOrigins injects each domain's prefixes into DVMRP: every router
// originates its leaf subnets, and the border originates the rest of the
// domain's space (aggregated per the domain's policy).
func (n *Network) bootstrapOrigins() {
	now := n.Clock.Now()
	for _, d := range n.Topo.Domains() {
		if d.Mode != topo.ModeDVMRP {
			continue
		}
		owned := make(map[addr.Prefix]bool)
		for _, id := range d.Routers {
			r := n.Topo.Router(id)
			if n.DVMRP.HasRouter(id) {
				// PIM-DM interior routers are not in the cloud; the
				// border originates their subnets below.
				n.DVMRP.Originate(id, now, 0, r.LeafPrefixes...)
				for _, p := range r.LeafPrefixes {
					owned[p] = true
				}
			}
		}
		var rest []addr.Prefix
		for _, p := range d.Prefixes {
			if !owned[p] {
				rest = append(rest, p)
			}
		}
		if d.Aggregate {
			rest = addr.Aggregate(d.Prefixes)
		}
		n.DVMRP.Originate(d.Border(), now, 1, rest...)
	}
	// Native cores speak MBGP and host MSDP from the start, idle until
	// domains transition onto them.
	for _, r := range n.Topo.Routers() {
		if r.Core && r.Mode == topo.ModePIMSM {
			n.MBGP.EnsureSpeaker(r.ID, uint16(64000+int(r.ID)))
			n.MSDP.EnsureRP(r.ID)
		}
	}
	n.peerCoreMSDP()
}

// peerCoreMSDP (re)establishes MSDP peerings between core RPs.
func (n *Network) peerCoreMSDP() {
	var cores []topo.NodeID
	for _, r := range n.Topo.Routers() {
		if r.Core && n.MSDP.HasRP(r.ID) {
			cores = append(cores, r.ID)
		}
	}
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			n.MSDP.Peer(cores[i], cores[j])
		}
	}
}

// Track materializes forwarding, IGMP and PIM state at the named routers.
// Only tracked routers can be meaningfully monitored; tracking is how the
// simulation keeps per-cycle cost proportional to the monitored set.
func (n *Network) Track(names ...string) error {
	for _, name := range names {
		r := n.Topo.RouterByName(name)
		if r == nil {
			return fmt.Errorf("netsim: unknown router %q", name)
		}
		n.tracked[r.ID] = true
	}
	return nil
}

// TrackIDs is Track by node ID.
func (n *Network) TrackIDs(ids ...topo.NodeID) {
	for _, id := range ids {
		if _, ok := n.routers[id]; ok {
			n.tracked[id] = true
		}
	}
}

// Router returns the named router handle, or nil.
func (n *Network) Router(name string) *router.Router {
	r := n.Topo.RouterByName(name)
	if r == nil {
		return nil
	}
	return n.routers[r.ID]
}

// RouterByID returns a router handle by node ID, or nil.
func (n *Network) RouterByID(id topo.NodeID) *router.Router { return n.routers[id] }

// FaultyRouter wraps the named router's CLI in the session-fault layer,
// drawing faults from an independent stream forked off the sim RNG so
// chaos experiments reproduce exactly per seed. Returns nil for unknown
// routers. The wrapper implements the collector's SessionHandler contract
// and plugs straight into collect.PipeDialer.
func (n *Network) FaultyRouter(name string, profile router.FaultProfile) *router.FaultyRouter {
	r := n.Router(name)
	if r == nil {
		return nil
	}
	return router.NewFaultyRouter(r, profile, n.rng.Fork())
}

// Cycles returns how many Steps have run.
func (n *Network) Cycles() uint64 { return n.cycles }

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.Clock.Now() }

// TransitionDomain migrates a DVMRP domain to native sparse mode,
// reconfiguring every affected protocol: the domain leaves the DVMRP
// cloud, its border becomes an MBGP speaker and MSDP RP, and FIXW assumes
// the border role on first use.
func (n *Network) TransitionDomain(name string) {
	if n.Inet == nil {
		return
	}
	d := n.Topo.Domain(name)
	if d == nil || d.Mode != topo.ModeDVMRP {
		return
	}
	now := n.Clock.Now()
	wasBorderless := n.Inet.FIXW.Mode != topo.ModeBorder
	n.Inet.TransitionDomain(name)

	for _, id := range d.Routers {
		n.DVMRP.RemoveRouter(id, now)
	}
	border := d.Border()
	n.MBGP.EnsureSpeaker(border, d.ASN)
	n.MBGP.Originate(border, now, addr.Aggregate(d.Prefixes)...)
	n.MSDP.EnsureRP(border)
	n.RPs.Assign(name, border)
	// Peer the new RP with the cores its native links reach.
	for _, l := range n.Inet.NativeLinks[name] {
		other := l.Other(border).Router
		if n.MSDP.HasRP(other) {
			n.MSDP.Peer(border, other)
		}
	}
	if wasBorderless && n.Inet.FIXW.Mode == topo.ModeBorder {
		// FIXW now borders both worlds: MBGP speaker, and RP proxy for
		// the remaining DVMRP cloud.
		n.MBGP.EnsureSpeaker(n.Inet.FIXW.ID, 5459)
		n.MSDP.EnsureRP(n.Inet.FIXW.ID)
		n.peerCoreMSDP()
	}
	if n.MBGP.HasSpeaker(n.Inet.FIXW.ID) {
		// FIXW stops proxying the transitioned domain's space and
		// advertises what remains of the DVMRP world into MBGP.
		n.MBGP.Withdraw(n.Inet.FIXW.ID, now, addr.Aggregate(d.Prefixes)...)
		var denseSpace []addr.Prefix
		for _, dd := range n.Topo.Domains() {
			if dd.Mode == topo.ModeDVMRP {
				denseSpace = append(denseSpace, addr.Aggregate(dd.Prefixes)...)
			}
		}
		n.MBGP.Originate(n.Inet.FIXW.ID, now, denseSpace...)
	}
}

// ScheduleTransition arranges TransitionDomain(name) at time at.
func (n *Network) ScheduleTransition(name string, at time.Time) {
	n.Sched.At(at, "transition "+name, func(*sim.Scheduler) {
		n.TransitionDomain(name)
	})
}

// InjectUnicastRoutes reproduces the October 14 1998 incident: unicast
// prefixes leak into a router's DVMRP table for the given duration. It
// is the time-based form of scheduling a UnicastInjection incident.
func (n *Network) InjectUnicastRoutes(routerName string, count int, at time.Time, d time.Duration) error {
	inc := &UnicastInjection{Router: routerName, Count: count}
	if err := inc.Validate(n); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	n.Sched.At(at, "unicast-injection", func(*sim.Scheduler) {
		inc.Begin(n, n.Clock.Now())
	})
	n.Sched.At(at.Add(d), "unicast-injection-clear", func(*sim.Scheduler) {
		inc.End(n, n.Clock.Now())
	})
	return nil
}

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	next := n.Clock.Now().Add(n.cfg.Cycle)
	n.Sched.RunUntil(next)
	now := n.Clock.Now()

	if n.Workload != nil {
		n.Workload.Advance(now, n.cfg.Cycle)
	}
	n.faults(now)
	n.DVMRP.Tick(now)
	n.MBGP.Tick(now)
	n.invalidateTrees()
	if n.Workload != nil {
		n.originateSAs(now)
		n.MSDP.Tick(now)
		n.rebuild(now)
	}
	n.expire(now)
	n.cycles++
}

// faults applies the stochastic fault model: origination flaps and router
// restarts in the DVMRP cloud.
func (n *Network) faults(now time.Time) {
	for _, d := range n.Topo.Domains() {
		if d.Mode != topo.ModeDVMRP {
			continue
		}
		if !n.rng.Bool(n.cfg.FlapPerDomainPerCycle) {
			continue
		}
		// Withdraw a contiguous chunk of the domain's prefixes and
		// restore it one to three cycles later.
		if len(d.Prefixes) < 4 {
			continue
		}
		chunk := 1 + n.rng.Intn(len(d.Prefixes)/4)
		start := n.rng.Intn(len(d.Prefixes) - chunk)
		flapped := append([]addr.Prefix(nil), d.Prefixes[start:start+chunk]...)
		border := d.Border()
		n.DVMRP.Withdraw(border, now, flapped...)
		back := now.Add(time.Duration(1+n.rng.Intn(3)) * n.cfg.Cycle)
		n.Sched.At(back, "flap-restore "+d.Name, func(*sim.Scheduler) {
			if n.Topo.Domain(d.Name).Mode == topo.ModeDVMRP {
				n.DVMRP.Originate(border, n.Clock.Now(), 1, flapped...)
			}
		})
	}
	if n.rng.Bool(n.cfg.RestartPerCycle) {
		// Restart a random DVMRP border.
		var candidates []topo.NodeID
		for _, d := range n.Topo.Domains() {
			if d.Mode == topo.ModeDVMRP {
				candidates = append(candidates, d.Border())
			}
		}
		if len(candidates) > 0 {
			id := candidates[n.rng.Intn(len(candidates))]
			n.DVMRP.Restart(id, now)
			// Restore the restarted router's originations.
			d := n.Topo.DomainOf(id)
			if d != nil {
				n.reoriginate(d, now)
			}
		}
	}
}

// reoriginate reinstalls a domain's originations after a restart.
func (n *Network) reoriginate(d *topo.Domain, now time.Time) {
	owned := make(map[addr.Prefix]bool)
	for _, id := range d.Routers {
		r := n.Topo.Router(id)
		if n.DVMRP.HasRouter(id) {
			n.DVMRP.Originate(id, now, 0, r.LeafPrefixes...)
			for _, p := range r.LeafPrefixes {
				owned[p] = true
			}
		}
	}
	var rest []addr.Prefix
	for _, p := range d.Prefixes {
		if !owned[p] {
			rest = append(rest, p)
		}
	}
	if d.Aggregate {
		rest = addr.Aggregate(d.Prefixes)
	}
	n.DVMRP.Originate(d.Border(), now, 1, rest...)
}

// originateSAs registers every active native-world source at its domain
// RP, and every dense-world source at FIXW when FIXW is a border RP.
func (n *Network) originateSAs(now time.Time) {
	fixwRP := topo.NodeID(-1)
	if n.Inet != nil && n.MSDP.HasRP(n.Inet.FIXW.ID) {
		fixwRP = n.Inet.FIXW.ID
	}
	for _, s := range n.Workload.Sessions() {
		for _, m := range s.MemberList() {
			edge := n.Topo.Router(m.Edge)
			if edge == nil {
				continue
			}
			switch edge.Mode {
			case topo.ModePIMSM:
				if rp, ok := n.RPs.For(edge.Domain); ok {
					n.MSDP.Originate(rp, m.Host, s.Group, now)
				}
			case topo.ModeDVMRP, topo.ModePIMDM:
				if fixwRP >= 0 {
					n.MSDP.Originate(fixwRP, m.Host, s.Group, now)
				}
			}
		}
	}
}

// expire ages out stale state at tracked routers.
func (n *Network) expire(now time.Time) {
	for id, tracked := range n.tracked {
		if !tracked {
			continue
		}
		r := n.routers[id]
		r.IGMP.Expire(now)
		r.PIM.ExpireStale(now)
		r.FWD.DecayIdle(now, n.cfg.Cycle)
		// Sparse entries live exactly as long as their joins: anything
		// not refreshed during this cycle's rebuild is gone.
		r.FWD.RemoveIf(func(e *forwarding.Entry) bool {
			return e.Flags.Has(forwarding.FlagSparse) && e.LastRefresh.Before(now)
		})
	}
}

func (n *Network) invalidateTrees() {
	n.denseTrees = make(map[topo.NodeID]map[topo.NodeID]*topo.Link)
	n.nativeTrees = make(map[topo.NodeID]map[topo.NodeID]*topo.Link)
	n.denseComp = nil
}

// denseTree returns (cached) the RPF spanning tree rooted at src over
// DVMRP links.
func (n *Network) denseTree(src topo.NodeID) map[topo.NodeID]*topo.Link {
	t, ok := n.denseTrees[src]
	if !ok {
		t = n.Topo.SpanningTree(src, n.Topo.DenseLinks())
		n.denseTrees[src] = t
	}
	return t
}

// nativeTree returns (cached) the spanning tree rooted at src over native
// links.
func (n *Network) nativeTree(src topo.NodeID) map[topo.NodeID]*topo.Link {
	t, ok := n.nativeTrees[src]
	if !ok {
		t = n.Topo.SpanningTree(src, n.Topo.NativeLinks())
		n.nativeTrees[src] = t
	}
	return t
}

// comp returns the dense component labelling, computed lazily per cycle.
func (n *Network) comp() map[topo.NodeID]int {
	if n.denseComp != nil {
		return n.denseComp
	}
	n.denseComp = make(map[topo.NodeID]int)
	label := 0
	filter := n.Topo.DenseLinks()
	for _, r := range n.Topo.Routers() {
		if !denseMode(r.Mode) {
			continue
		}
		if _, seen := n.denseComp[r.ID]; seen {
			continue
		}
		label++
		for id := range n.Topo.Reachable(r.ID, filter) {
			n.denseComp[id] = label
		}
	}
	return n.denseComp
}

// denseMode reports whether a routing mode floods dense-mode data.
func denseMode(m topo.Mode) bool {
	return m == topo.ModeDVMRP || m == topo.ModeBorder || m == topo.ModePIMDM
}
