package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/forwarding"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// dvmrpInfinityForTest mirrors dvmrp.Infinity without importing the
// package into this test file's namespace twice.
const dvmrpInfinityForTest = 32

// buildNet constructs a small internet with workload, tracking FIXW and
// the UCSB routers.
func buildNet(t *testing.T, domains int) *Network {
	t.Helper()
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = domains
	inet := topo.BuildInternet(tcfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := New(inet, wl, DefaultConfig())
	if err := n.Track("fixw", "ucsb-gw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	return n
}

func steps(n *Network, k int) {
	for i := 0; i < k; i++ {
		n.Step()
	}
}

func TestDVMRPRoutesConverge(t *testing.T) {
	n := buildNet(t, 6)
	steps(n, 4)
	fixw := n.Inet.FIXW.ID
	count := n.DVMRP.RouteCount(fixw)
	// Total originated prefixes across 7 domains (60-240 each + ucsb 48).
	if count < 300 {
		t.Errorf("FIXW route count = %d, want hundreds", count)
	}
	ucsb := n.DVMRP.RouteCount(n.Inet.UCSB.ID)
	if ucsb < 300 {
		t.Errorf("UCSB route count = %d", ucsb)
	}
}

func TestForwardingStateAppearsAtFIXW(t *testing.T) {
	n := buildNet(t, 6)
	steps(n, 8)
	fixw := n.Router("fixw")
	if fixw.FWD.Len() == 0 {
		t.Fatal("FIXW has no forwarding state")
	}
	// Pre-transition, participants across the cloud appear as sources.
	sn := n.Workload.Snapshot()
	if fixw.FWD.Len() < sn.Participants/2 {
		t.Errorf("FIXW entries = %d vs %d participants", fixw.FWD.Len(), sn.Participants)
	}
	// Some entries carry real bandwidth.
	if fixw.FWD.TotalRateKbps() <= 0 {
		t.Error("no traffic accounted at FIXW")
	}
}

func TestUntrackedRoutersStayEmpty(t *testing.T) {
	n := buildNet(t, 4)
	steps(n, 6)
	r := n.Router("dom00-r1")
	if r == nil {
		t.Fatal("router missing")
	}
	if r.FWD.Len() != 0 {
		t.Errorf("untracked router materialized %d entries", r.FWD.Len())
	}
}

func TestTransitionRemovesFromCloudAndAddsMBGP(t *testing.T) {
	n := buildNet(t, 6)
	steps(n, 3)
	d := n.Topo.Domain("dom01")
	border := d.Border()
	preRoutes := n.DVMRP.RouteCount(n.Inet.FIXW.ID)
	n.TransitionDomain("dom01")
	steps(n, 3)
	if n.DVMRP.HasRouter(border) {
		t.Error("border still in DVMRP cloud")
	}
	if !n.MBGP.HasSpeaker(border) {
		t.Fatal("border not an MBGP speaker")
	}
	if n.MBGP.RouteCount(border) == 0 {
		t.Error("border has empty MBGP RIB")
	}
	if !n.MSDP.HasRP(border) {
		t.Error("border not an MSDP RP")
	}
	if len(n.MSDP.Peers(border)) == 0 {
		t.Error("border has no MSDP peers")
	}
	if rp, ok := n.RPs.For("dom01"); !ok || rp != border {
		t.Error("RP mapping missing")
	}
	// The DVMRP cloud lost the domain's prefixes.
	postRoutes := n.DVMRP.RouteCount(n.Inet.FIXW.ID)
	if postRoutes >= preRoutes {
		t.Errorf("FIXW routes %d -> %d after transition", preRoutes, postRoutes)
	}
	// FIXW became a border and an MBGP speaker.
	if n.Inet.FIXW.Mode != topo.ModeBorder {
		t.Error("FIXW not a border")
	}
	if !n.MBGP.HasSpeaker(n.Inet.FIXW.ID) {
		t.Error("FIXW not an MBGP speaker")
	}
}

func TestSparseModeFiltersStateAtFIXW(t *testing.T) {
	n := buildNet(t, 6)
	steps(n, 10)
	fixw := n.Router("fixw")
	pre := fixw.FWD.Len()
	// Transition every leaf domain; UCSB stays DVMRP.
	for _, d := range n.Topo.Domains() {
		if d.Name != "ucsb" {
			n.TransitionDomain(d.Name)
		}
	}
	steps(n, 10)
	post := fixw.FWD.Len()
	if post >= pre {
		t.Errorf("FIXW state did not shrink: %d -> %d", pre, post)
	}
	// Entries that remain must involve the dense world or crossing flows.
	for _, e := range fixw.FWD.Entries() {
		if e.Flags == 0 {
			t.Errorf("flagless entry %+v", e)
		}
	}
}

func TestPIMStarsAtTransitionedBorder(t *testing.T) {
	n := buildNet(t, 6)
	n.TransitionDomain("dom00")
	if err := n.Track("dom00-gw"); err != nil {
		t.Fatal(err)
	}
	steps(n, 12)
	gw := n.Router("dom00-gw")
	if gw.PIM.StarCount() == 0 {
		t.Error("no (*,G) state at transitioned border RP")
	}
}

func TestUnicastInjectionSpike(t *testing.T) {
	n := buildNet(t, 4)
	steps(n, 8) // settle past initial convergence and early flaps
	base := n.DVMRP.RouteCount(n.Inet.UCSB.ID)
	at := n.Now().Add(2 * time.Hour)
	if err := n.InjectUnicastRoutes("ucsb-gw", 500, at, 90*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := n.InjectUnicastRoutes("nope", 1, at, time.Minute); err == nil {
		t.Error("unknown router accepted")
	}
	peak := 0
	for i := 0; i < 12; i++ {
		n.Step()
		if c := n.DVMRP.RouteCount(n.Inet.UCSB.ID); c > peak {
			peak = c
		}
	}
	if peak < base+450 {
		t.Errorf("injection peak %d vs base %d", peak, base)
	}
	// After clearing, the count returns near the base (flap noise aside).
	final := n.DVMRP.RouteCount(n.Inet.UCSB.ID)
	if final > base+150 {
		t.Errorf("injected routes lingered: %d vs base %d", final, base)
	}
}

func TestRouteCountsFluctuate(t *testing.T) {
	n := buildNet(t, 8)
	steps(n, 2)
	fixw := n.Inet.FIXW.ID
	seen := make(map[int]bool)
	for i := 0; i < 60; i++ {
		n.Step()
		seen[n.DVMRP.RouteCount(fixw)] = true
	}
	if len(seen) < 3 {
		t.Errorf("route count too stable over 60 cycles: %v distinct", len(seen))
	}
}

func TestViewsDiverge(t *testing.T) {
	// The UCSB and FIXW route tables should differ at least sometimes
	// (lost updates, flap timing) — the paper's inconsistency finding.
	n := buildNet(t, 8)
	steps(n, 2)
	diffs := 0
	for i := 0; i < 200; i++ {
		n.Step()
		if n.DVMRP.RouteCount(n.Inet.FIXW.ID) != n.DVMRP.RouteCount(n.Inet.UCSB.ID) {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("views never diverged over 200 cycles")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		tcfg := topo.DefaultInternetConfig()
		tcfg.NumDomains = 4
		inet := topo.BuildInternet(tcfg)
		wl := workload.New(workload.DefaultConfig(), inet.Topo)
		n := New(inet, wl, DefaultConfig())
		_ = n.Track("fixw")
		var counts []int
		for i := 0; i < 20; i++ {
			n.Step()
			counts = append(counts, n.DVMRP.RouteCount(inet.FIXW.ID), n.Router("fixw").FWD.Len())
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockAdvancesPerStep(t *testing.T) {
	n := buildNet(t, 4)
	start := n.Now()
	steps(n, 5)
	if got := n.Now().Sub(start); got != 5*30*time.Minute {
		t.Errorf("clock advanced %v", got)
	}
	if n.Cycles() != 5 {
		t.Errorf("Cycles = %d", n.Cycles())
	}
}

func TestScheduledTransitionFires(t *testing.T) {
	n := buildNet(t, 4)
	n.ScheduleTransition("dom02", sim.Epoch.Add(3*time.Hour))
	steps(n, 4)
	if n.Topo.Domain("dom02").Mode == topo.ModeDVMRP {
		t.Skip("transition not yet fired") // 4 steps = 2h — should not fire
	}
	steps(n, 4)
	if n.Topo.Domain("dom02").Mode != topo.ModePIMSM {
		t.Error("scheduled transition did not fire")
	}
}

func TestIGMPPopulatedAtTrackedEdges(t *testing.T) {
	n := buildNet(t, 6)
	if err := n.Track("ucsb-r1", "ucsb-r2"); err != nil {
		t.Fatal(err)
	}
	steps(n, 20)
	total := 0
	for _, name := range []string{"ucsb-gw", "ucsb-r1", "ucsb-r2"} {
		total += len(n.Router(name).IGMP.Groups())
	}
	if total == 0 {
		t.Error("no IGMP membership at UCSB edges after 20 cycles")
	}
}

func TestDenseEntriesHaveRPFIif(t *testing.T) {
	n := buildNet(t, 4)
	steps(n, 6)
	fixw := n.Router("fixw")
	sawUpstream := false
	for _, e := range fixw.FWD.Entries() {
		if !e.Flags.Has(forwarding.FlagDense) {
			continue
		}
		if e.IIF >= 0 {
			sawUpstream = true
			l := n.Topo.Link(e.IIF)
			if l == nil || !l.Has(fixw.Spec.ID) {
				t.Fatalf("entry IIF %d is not a link of FIXW", e.IIF)
			}
		}
	}
	if !sawUpstream {
		t.Error("no dense entry with an upstream interface at FIXW")
	}
}

func TestTrackUnknownRouterErrors(t *testing.T) {
	n := buildNet(t, 4)
	if err := n.Track("missing"); err == nil {
		t.Error("Track accepted unknown router")
	}
}

func TestWalkUpUnreachable(t *testing.T) {
	tree := map[topo.NodeID]*topo.Link{}
	if walkUp(tree, 5, func(topo.NodeID, *topo.Link, *topo.Link) {}) {
		t.Error("walkUp should fail for absent leaf")
	}
}

func TestPIMDMInteriorRouters(t *testing.T) {
	// Find a PIM-DM domain in the default layout and track its interior.
	tcfg := topo.DefaultInternetConfig()
	tcfg.NumDomains = 8
	inet := topo.BuildInternet(tcfg)
	var pimdm *topo.Router
	for _, r := range inet.Topo.Routers() {
		if r.Mode == topo.ModePIMDM {
			pimdm = r
			break
		}
	}
	if pimdm == nil {
		t.Fatal("no PIM-DM interior router in default layout")
	}
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := New(inet, wl, DefaultConfig())
	n.TrackIDs(pimdm.ID)
	if err := n.Track("fixw"); err != nil {
		t.Fatal(err)
	}
	steps(n, 10)

	rt := n.RouterByID(pimdm.ID)
	// PIM-DM routers flood data: dense forwarding state appears.
	if rt.FWD.Len() == 0 {
		t.Error("PIM-DM interior router has no forwarding state")
	}
	for _, e := range rt.FWD.Entries() {
		if !e.Flags.Has(forwarding.FlagDense) {
			t.Fatalf("non-dense entry at PIM-DM router: %+v", e)
		}
	}
	// But they run no DVMRP: the route table is empty — the era's
	// monitoring blind spot.
	if n.DVMRP.HasRouter(pimdm.ID) {
		t.Error("PIM-DM router joined the DVMRP cloud")
	}
	out := rt.Execute("show ip dvmrp route")
	if !strings.Contains(out, "- 0 entries") {
		t.Errorf("PIM-DM router served DVMRP routes:\n%.80s", out)
	}
	// Hosts behind PIM-DM subnets are still reachable (the border
	// originates their prefixes), so sessions they join appear at FIXW.
	if len(pimdm.LeafPrefixes) > 0 {
		host := pimdm.LeafPrefixes[0].First() + 10
		if inet.Topo.EdgeRouterFor(host) != pimdm {
			t.Error("host not behind the PIM-DM router")
		}
		if r, ok := n.DVMRP.Lookup(inet.FIXW.ID, host); !ok {
			t.Error("FIXW has no route to PIM-DM subnet host")
		} else if r.Metric >= dvmrpInfinityForTest {
			t.Errorf("route metric %d unusable", r.Metric)
		}
	}
}

func TestTrafficAccountingBounded(t *testing.T) {
	// Conservation: a router never accounts more bandwidth than the
	// workload sources in total (each source contributes at most once
	// per router), and FIXW carries real traffic pre-transition.
	n := buildNet(t, 6)
	steps(n, 10)
	var totalWorkload float64
	for _, s := range n.Workload.Sessions() {
		for _, m := range s.MemberList() {
			totalWorkload += m.Rate()
		}
	}
	for _, name := range []string{"fixw", "ucsb-gw", "ucsb-r1"} {
		got := n.Router(name).FWD.TotalRateKbps()
		// EWMA smoothing can briefly overshoot a falling instantaneous
		// sum; allow slack.
		if got > totalWorkload*1.5 {
			t.Errorf("%s accounts %.0f kbps > workload total %.0f", name, got, totalWorkload)
		}
	}
	if n.Router("fixw").FWD.TotalRateKbps() <= 0 {
		t.Error("FIXW carries no traffic")
	}
}

func TestEntryRatesMatchSourceRates(t *testing.T) {
	// Each (S,G) entry's rate at FIXW approximates its source's rate
	// when the flow crosses FIXW (within EWMA smoothing tolerance).
	n := buildNet(t, 4)
	steps(n, 10)
	fixw := n.Router("fixw")
	checked := 0
	for _, s := range n.Workload.Sessions() {
		for _, m := range s.MemberList() {
			e := fixw.FWD.Get(forwarding.Key{Source: m.Host, Group: s.Group})
			if e == nil || e.RateKbps == 0 {
				continue
			}
			if e.RateKbps > m.Rate()*2+1 {
				t.Errorf("entry (%v,%v) rate %.1f exceeds source rate %.1f",
					m.Host, s.Group, e.RateKbps, m.Rate())
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no entries with traffic to check")
	}
}
