package router

import (
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		0:                "0:00:00",
		61 * time.Second: "0:01:01",
		25 * time.Hour:   "25:00:00",
		-time.Second:     "0:00:00",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
