package router_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/router"
)

// fixedRand is a deterministic Rand for forcing a specific fault draw.
type fixedRand struct{ f float64 }

func (r fixedRand) Float64() float64 { return r.f }
func (r fixedRand) Intn(n int) int   { return n / 2 }

// faultyTarget wires a collection target to a fault-wrapped fixw.
func faultyTarget(f *router.FaultyRouter, timeout time.Duration) collect.Target {
	return collect.Target{
		Name:     "fixw",
		Dialer:   collect.PipeDialer{Router: f},
		Password: "pw",
		Prompt:   "fixw> ",
		Timeout:  timeout,
	}
}

func newFaulty(t *testing.T, profile router.FaultProfile) *router.FaultyRouter {
	t.Helper()
	n := testNetwork(t)
	r := n.Router("fixw")
	r.Password = "pw"
	return router.NewFaultyRouter(r, profile, fixedRand{f: 0.5})
}

func TestFaultRefuseConn(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{RefuseConn: 1})
	if _, err := collect.Login(faultyTarget(f, time.Second)); err == nil {
		t.Fatal("login succeeded against a refusing router")
	}
	if got := f.Injected()["refuse"]; got != 1 {
		t.Errorf("injected counts = %v", f.Injected())
	}
}

func TestFaultRejectLogin(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{RejectLogin: 1})
	_, err := collect.Login(faultyTarget(f, time.Second))
	if !errors.Is(err, collect.ErrLogin) {
		t.Fatalf("err = %v, want ErrLogin", err)
	}
	if got := f.Injected()["reject-login"]; got != 1 {
		t.Errorf("injected counts = %v", f.Injected())
	}
}

func TestFaultHangBoundedByTimeout(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{Hang: 1, TruncateAfter: 60})
	start := time.Now()
	_, err := collect.CollectAll(faultyTarget(f, 150*time.Millisecond), collect.StandardCommands, time.Unix(0, 0))
	if err == nil {
		t.Fatal("collection succeeded against a hung router")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hung session not bounded by the step timeout: %v", elapsed)
	}
	if got := f.Injected()["hang"]; got != 1 {
		t.Errorf("injected counts = %v", f.Injected())
	}
}

func TestFaultDropSeversSession(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{Drop: 1, TruncateAfter: 60})
	_, err := collect.CollectAll(faultyTarget(f, time.Second), collect.StandardCommands, time.Unix(0, 0))
	if err == nil {
		t.Fatal("collection succeeded against a dropping router")
	}
	if got := f.Injected()["drop"]; got != 1 {
		t.Errorf("injected counts = %v", f.Injected())
	}
}

func TestFaultTruncateCaughtByValidation(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{Truncate: 1})
	tgt := faultyTarget(f, time.Second)
	dumps, err := collect.CollectAll(tgt, []string{"show ip dvmrp route"}, time.Unix(0, 0))
	if err != nil {
		t.Fatalf("truncation should leave the session protocol intact: %v", err)
	}
	err = collect.ValidateDumps(tgt.Prompt, dumps)
	if !errors.Is(err, collect.ErrTruncated) && !errors.Is(err, collect.ErrGarbled) {
		t.Errorf("validation missed the truncated dump: %v", err)
	}
}

func TestFaultGarbleCaughtByValidation(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{Garble: 1, GarblePerLine: 0.9})
	tgt := faultyTarget(f, time.Second)
	dumps, err := collect.CollectAll(tgt, []string{"show ip dvmrp route"}, time.Unix(0, 0))
	if err != nil {
		t.Fatalf("garbling should leave the session protocol intact: %v", err)
	}
	if err := collect.ValidateDumps(tgt.Prompt, dumps); !errors.Is(err, collect.ErrGarbled) {
		t.Errorf("validation missed the garbled dump: %v", err)
	}
}

func TestFaultProfileCleanPassthrough(t *testing.T) {
	f := newFaulty(t, router.FaultProfile{})
	tgt := faultyTarget(f, time.Second)
	dumps, err := collect.CollectAll(tgt, collect.StandardCommands, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := collect.ValidateDumps(tgt.Prompt, dumps); err != nil {
		t.Errorf("clean session rejected: %v", err)
	}
	if len(f.Injected()) != 0 {
		t.Errorf("clean profile injected faults: %v", f.Injected())
	}
	if !strings.Contains(dumps[0].Raw, "DVMRP Routing Table") {
		t.Errorf("dump lost its table: %q", dumps[0].Raw[:40])
	}
}

func TestNetsimFaultyRouterHook(t *testing.T) {
	n := testNetwork(t)
	if f := n.FaultyRouter("fixw", router.FaultProfile{RefuseConn: 1}); f == nil {
		t.Fatal("FaultyRouter returned nil for a tracked router")
	}
	if f := n.FaultyRouter("no-such-router", router.FaultProfile{}); f != nil {
		t.Error("FaultyRouter invented a router")
	}
}
