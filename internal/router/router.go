// Package router assembles one simulated multicast router: its protocol
// state handles (DVMRP table, MBGP RIB, PIM state, IGMP membership, MSDP
// SA cache, forwarding cache) and the operator-facing command-line
// interface Mantra scrapes.
//
// The paper's Mantra collects data by logging into routers with expect
// scripts and dumping internal tables — it deliberately avoids SNMP
// because the era's MIBs did not cover PIM and none existed for MSDP. The
// CLI formats here therefore mimic the mrouted / IOS dumps of the period
// closely enough that a scraping pipeline faces the same parsing work.
package router

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"time"

	"repro/internal/dvmrp"
	"repro/internal/forwarding"
	"repro/internal/igmp"
	"repro/internal/mbgp"
	"repro/internal/msdp"
	"repro/internal/pim"
	"repro/internal/topo"
)

// Router is one simulated multicast router with its CLI.
type Router struct {
	// Spec is the topology node this router realizes.
	Spec *topo.Router
	// Topo gives access to link/neighbor naming for dumps.
	Topo *topo.Topology
	// Clock reports virtual time for uptime rendering.
	Clock interface{ Now() time.Time }

	// DVMRP is the shared cloud; nil when the router never speaks DVMRP.
	DVMRP *dvmrp.Cloud
	// MBGP is the shared mesh; nil likewise.
	MBGP *mbgp.Mesh
	// MSDP is the shared SA mesh; nil likewise.
	MSDP *msdp.Mesh
	// IGMP is this router's membership database.
	IGMP *igmp.Router
	// PIM is this router's sparse-mode state.
	PIM *pim.Router
	// FWD is this router's forwarding cache.
	FWD *forwarding.Table

	// Password gates CLI sessions. Empty disables authentication.
	Password string
}

// Hostname returns the router's CLI hostname.
func (r *Router) Hostname() string { return r.Spec.Name }

// Execute runs one already-authenticated CLI command and returns its
// output. Unknown commands return an IOS-style error marker.
func (r *Router) Execute(cmd string) string {
	fields := strings.Fields(strings.TrimSpace(cmd))
	if len(fields) == 0 {
		return ""
	}
	switch {
	case matches(fields, "show", "version"):
		return r.showVersion()
	case matches(fields, "show", "ip", "dvmrp", "route"):
		return r.showDVMRPRoute()
	case matches(fields, "show", "ip", "dvmrp", "neighbor"):
		return r.showDVMRPNeighbors()
	case matches(fields, "show", "ip", "mroute"):
		return r.showMroute()
	case matches(fields, "show", "ip", "igmp", "groups"):
		return r.showIGMPGroups()
	case matches(fields, "show", "ip", "pim", "group"):
		return r.showPIMGroups()
	case matches(fields, "show", "ip", "pim", "neighbor"):
		return r.showPIMNeighbors()
	case matches(fields, "show", "ip", "msdp", "sa-cache"):
		return r.showMSDPSACache()
	case matches(fields, "show", "ip", "mbgp"):
		return r.showMBGP()
	case matches(fields, "terminal", "length", "0"):
		return ""
	case matches(fields, "help") || matches(fields, "?"):
		return helpText
	}
	return "% Invalid input detected\n"
}

func matches(fields []string, want ...string) bool {
	if len(fields) != len(want) {
		return false
	}
	for i, w := range want {
		if fields[i] != w {
			return false
		}
	}
	return true
}

const helpText = `Available commands:
  show version
  show ip dvmrp route
  show ip dvmrp neighbor
  show ip mroute
  show ip igmp groups
  show ip pim group
  show ip pim neighbor
  show ip msdp sa-cache
  show ip mbgp
  terminal length 0
  exit
`

// fmtDur renders a duration as H:MM:SS (hours unbounded), the uptime
// format the table parsers consume.
func fmtDur(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d / time.Second)
	return fmt.Sprintf("%d:%02d:%02d", total/3600, total/60%60, total%60)
}

func (r *Router) showVersion() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s uptime is %s\n", r.Spec.Name, fmtDur(24*time.Hour))
	fmt.Fprintf(&b, "mode %s, loopback %s, domain %q\n", r.Spec.Mode, r.Spec.Loopback, r.Spec.Domain)
	return b.String()
}

func (r *Router) showDVMRPRoute() string {
	now := r.Clock.Now()
	var b strings.Builder
	if r.DVMRP == nil || !r.DVMRP.HasRouter(r.Spec.ID) {
		b.WriteString("DVMRP Routing Table - 0 entries\n")
		return b.String()
	}
	routes := r.DVMRP.Table(r.Spec.ID)
	fmt.Fprintf(&b, "DVMRP Routing Table - %d entries\n", len(routes))
	b.WriteString("Origin-Subnet       From-Gateway     Metric  Uptime\n")
	for _, rt := range routes {
		gw := "local"
		if rt.Via != dvmrp.SelfOrigin {
			if n := r.Topo.Router(rt.Via); n != nil {
				gw = n.Loopback.String()
			}
		}
		fmt.Fprintf(&b, "%-19s %-16s %-7d %s\n",
			rt.Prefix, gw, rt.Metric, fmtDur(now.Sub(rt.Since)))
	}
	return b.String()
}

func (r *Router) showDVMRPNeighbors() string {
	var b strings.Builder
	if r.DVMRP == nil || !r.DVMRP.HasRouter(r.Spec.ID) {
		b.WriteString("DVMRP Neighbor Table - 0 neighbors\n")
		return b.String()
	}
	ids := r.DVMRP.Neighbors(r.Spec.ID)
	fmt.Fprintf(&b, "DVMRP Neighbor Table - %d neighbors\n", len(ids))
	b.WriteString("Address          Name\n")
	for _, id := range ids {
		n := r.Topo.Router(id)
		if n == nil {
			continue
		}
		fmt.Fprintf(&b, "%-16s %s\n", n.Loopback, n.Name)
	}
	return b.String()
}

func (r *Router) showMroute() string {
	now := r.Clock.Now()
	entries := r.FWD.Entries()
	var b strings.Builder
	fmt.Fprintf(&b, "IP Multicast Forwarding Table - %d entries\n", len(entries))
	b.WriteString("Source           Group            Flags  IIF  OIFs           Kbps      Pkts        Uptime\n")
	for _, e := range entries {
		oifs := "-"
		if len(e.OIFs) > 0 {
			parts := make([]string, len(e.OIFs))
			for i, o := range e.OIFs {
				parts[i] = fmt.Sprintf("%d", o)
			}
			oifs = strings.Join(parts, ",")
		}
		fmt.Fprintf(&b, "%-16s %-16s %-6s %-4d %-14s %-9.1f %-11d %s\n",
			e.Key.Source, e.Key.Group, e.Flags, e.IIF, oifs,
			e.RateKbps, e.Packets, fmtDur(now.Sub(e.Created)))
	}
	return b.String()
}

func (r *Router) showIGMPGroups() string {
	now := r.Clock.Now()
	var b strings.Builder
	groups := r.IGMP.Groups()
	total := 0
	for _, g := range groups {
		total += r.IGMP.MemberCount(g)
	}
	fmt.Fprintf(&b, "IGMP Group Membership - %d groups, %d members\n", len(groups), total)
	b.WriteString("Group            Host             Uptime\n")
	for _, g := range groups {
		for _, m := range r.IGMP.Members(g) {
			fmt.Fprintf(&b, "%-16s %-16s %s\n", m.Group, m.Host, fmtDur(now.Sub(m.Since)))
		}
	}
	return b.String()
}

func (r *Router) showPIMGroups() string {
	now := r.Clock.Now()
	stars := r.PIM.Stars()
	var b strings.Builder
	fmt.Fprintf(&b, "PIM Group Table - %d entries\n", len(stars))
	b.WriteString("Group            RP               IIF  OIFs           Local  Uptime\n")
	for _, s := range stars {
		rp := "-"
		if n := r.Topo.Router(s.RP); n != nil {
			rp = n.Loopback.String()
		}
		oifs := "-"
		if len(s.OIFs) > 0 {
			parts := make([]string, len(s.OIFs))
			for i, o := range s.OIFs {
				parts[i] = fmt.Sprintf("%d", o)
			}
			oifs = strings.Join(parts, ",")
		}
		local := "no"
		if s.LocalMembers {
			local = "yes"
		}
		fmt.Fprintf(&b, "%-16s %-16s %-4d %-14s %-6s %s\n",
			s.Group, rp, s.IIF, oifs, local, fmtDur(now.Sub(s.Created)))
	}
	return b.String()
}

func (r *Router) showPIMNeighbors() string {
	var b strings.Builder
	var rows []string
	if r.Spec.Mode == topo.ModePIMSM || r.Spec.Mode == topo.ModeBorder {
		native := r.Topo.NativeLinks()
		for _, l := range r.Topo.LinksOf(r.Spec.ID) {
			if !l.Up || !native(l) {
				continue
			}
			other := r.Topo.Router(l.Other(r.Spec.ID).Router)
			if other == nil {
				continue
			}
			rows = append(rows, fmt.Sprintf("%-16s %-16s link-%d",
				other.Loopback, other.Name, l.ID))
		}
	}
	sort.Strings(rows)
	fmt.Fprintf(&b, "PIM Neighbor Table - %d neighbors\n", len(rows))
	b.WriteString("Address          Name             Interface\n")
	for _, row := range rows {
		b.WriteString(row + "\n")
	}
	return b.String()
}

func (r *Router) showMSDPSACache() string {
	now := r.Clock.Now()
	var b strings.Builder
	if r.MSDP == nil || !r.MSDP.HasRP(r.Spec.ID) {
		b.WriteString("MSDP Source-Active Cache - 0 entries\n")
		return b.String()
	}
	cache := r.MSDP.Cache(r.Spec.ID)
	fmt.Fprintf(&b, "MSDP Source-Active Cache - %d entries\n", len(cache))
	b.WriteString("Source           Group            Origin-RP        Uptime\n")
	for _, e := range cache {
		rp := "-"
		if n := r.Topo.Router(e.OriginRP); n != nil {
			rp = n.Loopback.String()
		}
		fmt.Fprintf(&b, "%-16s %-16s %-16s %s\n",
			e.Source, e.Group, rp, fmtDur(now.Sub(e.First)))
	}
	return b.String()
}

func (r *Router) showMBGP() string {
	now := r.Clock.Now()
	var b strings.Builder
	if r.MBGP == nil || !r.MBGP.HasSpeaker(r.Spec.ID) {
		b.WriteString("MBGP Table - 0 entries\n")
		return b.String()
	}
	routes := r.MBGP.Table(r.Spec.ID)
	fmt.Fprintf(&b, "MBGP Table - %d entries\n", len(routes))
	b.WriteString("Network             Next-Hop         Uptime    Path\n")
	for _, rt := range routes {
		hop := "local"
		if rt.Via != mbgp.SelfOrigin {
			hop = rt.NextHop.String()
		}
		parts := make([]string, len(rt.ASPath))
		for i, as := range rt.ASPath {
			parts[i] = fmt.Sprintf("%d", as)
		}
		fmt.Fprintf(&b, "%-19s %-16s %-9s %s\n",
			rt.Prefix, hop, fmtDur(now.Sub(rt.Since)), strings.Join(parts, " "))
	}
	return b.String()
}

// HandleSession runs a login-then-REPL CLI session over rw, returning when
// the peer sends "exit" or closes the stream. The wire protocol is plain
// lines: a "Password: " prompt (if a password is set), then "<name)> "
// prompts. This is what the collector's expect scripts drive.
func (r *Router) HandleSession(rw io.ReadWriter) error {
	return r.handleSessionWith(rw, r.Execute)
}

// handleSessionWith is HandleSession with a pluggable command executor,
// the seam the fault-injection layer uses to corrupt dumps without
// duplicating the session protocol.
func (r *Router) handleSessionWith(rw io.ReadWriter, exec func(string) string) error {
	w := bufio.NewWriter(rw)
	scan := bufio.NewScanner(rw)
	scan.Buffer(make([]byte, 64*1024), 1024*1024)

	prompt := r.Spec.Name + "> "
	if r.Password != "" {
		for attempt := 0; ; attempt++ {
			if _, err := w.WriteString("Password: "); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			if !scan.Scan() {
				return scan.Err()
			}
			if scan.Text() == r.Password {
				break
			}
			if attempt >= 2 {
				fmt.Fprintln(w, "% Bad passwords")
				return w.Flush()
			}
			fmt.Fprintln(w, "% Access denied")
		}
	}
	for {
		if _, err := w.WriteString(prompt); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if !scan.Scan() {
			return scan.Err()
		}
		line := strings.TrimSpace(scan.Text())
		if line == "exit" || line == "quit" || line == "logout" {
			fmt.Fprintln(w, "Connection closed.")
			return w.Flush()
		}
		if _, err := w.WriteString(exec(line)); err != nil {
			return err
		}
	}
}

// ServeTCP accepts CLI sessions on l until the listener closes. Each
// connection is served on its own goroutine; router state reads are safe
// because the simulator mutates state only between collection cycles and
// the collector drives collection synchronously.
func (r *Router) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			_ = r.HandleSession(c)
		}(conn)
	}
}
