// Session-fault injection: a wrapper that subjects the router CLI to the
// failure modes the paper's Mantra faced against real routers — refused
// connections, rejected logins, sessions hanging mid-dump, truncated and
// garbled output, dropped connections. Faults are drawn from an injected
// deterministic random stream so chaos runs reproduce exactly per seed.
package router

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Injected-fault errors, returned by the session handler so transports
// close the stream the way a real failure would.
var (
	ErrFaultRefused = errors.New("router: connection refused (injected fault)")
	ErrFaultDropped = errors.New("router: session dropped (injected fault)")
)

// Rand is the random source the fault layer draws from; *sim.RNG
// implements it.
type Rand interface {
	Float64() float64
	Intn(n int) int
}

// FaultProfile configures per-session fault probabilities. At most one
// fault is injected per session, drawn once at session start; the
// probabilities should sum to at most 1, with the remainder serving the
// session cleanly.
type FaultProfile struct {
	// RefuseConn closes the stream before any output.
	RefuseConn float64
	// RejectLogin prompts for a password and denies whatever arrives.
	RejectLogin float64
	// Hang serves output normally up to a byte budget, then goes silent
	// while keeping the stream open — the classic stuck session.
	Hang float64
	// Truncate cuts long command outputs mid-dump; the prompt still
	// arrives, so only dump validation can catch it.
	Truncate float64
	// Garble corrupts random output lines with noise bytes.
	Garble float64
	// Drop severs the stream after a byte budget, mid-whatever.
	Drop float64

	// TruncateAfter bounds how many bytes survive truncation, hangs and
	// drops; 0 means 200.
	TruncateAfter int
	// GarblePerLine is the chance each output line is corrupted within a
	// garbling session; 0 means 0.25.
	GarblePerLine float64
}

// Total returns the combined per-session fault probability.
func (p FaultProfile) Total() float64 {
	return p.RefuseConn + p.RejectLogin + p.Hang + p.Truncate + p.Garble + p.Drop
}

func (p FaultProfile) truncateAfter() int {
	if p.TruncateAfter <= 0 {
		return 200
	}
	return p.TruncateAfter
}

func (p FaultProfile) garblePerLine() float64 {
	if p.GarblePerLine <= 0 {
		return 0.25
	}
	return p.GarblePerLine
}

// FaultyRouter wraps a Router's CLI with the session-fault layer. It
// implements the same HandleSession contract as Router, so it drops into
// any dialer that serves in-process sessions. Profile may be swapped
// between sessions (e.g. to heal a router and watch breakers recover);
// swapping it while sessions are in flight is not synchronized.
type FaultyRouter struct {
	R       *Router
	Profile FaultProfile

	mu       sync.Mutex
	rand     Rand
	injected map[string]int
}

// NewFaultyRouter wraps r with fault injection drawing from rnd.
func NewFaultyRouter(r *Router, profile FaultProfile, rnd Rand) *FaultyRouter {
	return &FaultyRouter{R: r, Profile: profile, rand: rnd, injected: make(map[string]int)}
}

// Injected returns a copy of the per-mode injected-fault counts.
func (f *FaultyRouter) Injected() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// drawMode picks at most one fault for a new session.
func (f *FaultyRouter) drawMode() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	x := f.rand.Float64()
	for _, m := range []struct {
		name string
		p    float64
	}{
		{"refuse", f.Profile.RefuseConn},
		{"reject-login", f.Profile.RejectLogin},
		{"hang", f.Profile.Hang},
		{"truncate", f.Profile.Truncate},
		{"garble", f.Profile.Garble},
		{"drop", f.Profile.Drop},
	} {
		if x < m.p {
			f.injected[m.name]++
			return m.name
		}
		x -= m.p
	}
	return ""
}

// cut draws the byte budget after which a hang/drop/truncate fault trips.
func (f *FaultyRouter) cut() int {
	k := f.Profile.truncateAfter()
	f.mu.Lock()
	defer f.mu.Unlock()
	return k/2 + f.rand.Intn(k/2+1)
}

// HandleSession serves one CLI session, possibly under an injected fault.
func (f *FaultyRouter) HandleSession(rw io.ReadWriter) error {
	switch f.drawMode() {
	case "refuse":
		return ErrFaultRefused
	case "reject-login":
		return rejectLogin(rw)
	case "hang":
		// After the byte budget the stream stays open but silent; the
		// session ends when the starved peer gives up and closes.
		return f.R.handleSessionWith(&faultStream{rw: rw, remaining: f.cut(), silent: true}, f.R.Execute)
	case "drop":
		return f.R.handleSessionWith(&faultStream{rw: rw, remaining: f.cut()}, f.R.Execute)
	case "truncate":
		return f.R.handleSessionWith(rw, f.truncatingExec)
	case "garble":
		return f.R.handleSessionWith(rw, f.garblingExec)
	}
	return f.R.HandleSession(rw)
}

// rejectLogin mimics a router that prompts but denies every credential.
func rejectLogin(rw io.ReadWriter) error {
	w := bufio.NewWriter(rw)
	if _, err := w.WriteString("Password: "); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	scan := bufio.NewScanner(rw)
	scan.Scan()
	fmt.Fprintln(w, "% Bad passwords")
	return w.Flush()
}

// truncatingExec cuts any output longer than the session's byte budget,
// leaving the session protocol (and the trailing prompt) intact.
func (f *FaultyRouter) truncatingExec(cmd string) string {
	out := f.R.Execute(cmd)
	if k := f.cut(); len(out) > k {
		return out[:k]
	}
	return out
}

// garblingExec corrupts a window of random output lines with noise bytes.
func (f *FaultyRouter) garblingExec(cmd string) string {
	out := f.R.Execute(cmd)
	lines := strings.Split(out, "\n")
	perLine := f.Profile.garblePerLine()
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, ln := range lines {
		if ln == "" || f.rand.Float64() >= perLine {
			continue
		}
		b := []byte(ln)
		start := f.rand.Intn(len(b))
		for j := start; j < len(b) && j < start+8; j++ {
			b[j] = byte(1 + f.rand.Intn(31))
		}
		lines[i] = string(b)
	}
	return strings.Join(lines, "\n")
}

// faultStream passes writes through until a byte budget is exhausted, then
// either swallows them silently (hang) or fails them (drop). Reads pass
// through untouched so the session protocol keeps consuming input.
type faultStream struct {
	rw        io.ReadWriter
	remaining int
	silent    bool
	tripped   bool
}

// Read implements io.Reader.
func (s *faultStream) Read(p []byte) (int, error) { return s.rw.Read(p) }

// Write implements io.Writer under the fault budget.
func (s *faultStream) Write(p []byte) (int, error) {
	if s.tripped {
		if s.silent {
			return len(p), nil
		}
		return 0, ErrFaultDropped
	}
	if len(p) <= s.remaining {
		s.remaining -= len(p)
		return s.rw.Write(p)
	}
	n, err := s.rw.Write(p[:s.remaining])
	s.tripped = true
	if err != nil {
		return n, err
	}
	if s.silent {
		return len(p), nil
	}
	return n, ErrFaultDropped
}
