package router_test

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// testNetwork builds a small monitored network and steps it a few cycles
// so the CLI has content to show.
func testNetwork(t *testing.T) *netsim.Network {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-gw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		n.Step()
	}
	return n
}

func TestShowDVMRPRoute(t *testing.T) {
	n := testNetwork(t)
	out := n.Router("fixw").Execute("show ip dvmrp route")
	if !strings.Contains(out, "DVMRP Routing Table -") {
		t.Fatalf("missing header: %q", out[:60])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 100 {
		t.Errorf("only %d lines of routes", len(lines))
	}
	// Data rows have 4 columns: prefix, gateway, metric, uptime.
	row := strings.Fields(lines[3])
	if len(row) != 4 {
		t.Errorf("row = %v", row)
	}
	if !strings.Contains(row[0], "/") {
		t.Errorf("first column not a prefix: %v", row)
	}
	if !strings.Contains(row[3], ":") {
		t.Errorf("uptime malformed: %v", row)
	}
}

func TestShowMroute(t *testing.T) {
	n := testNetwork(t)
	out := n.Router("fixw").Execute("show ip mroute")
	if !strings.Contains(out, "IP Multicast Forwarding Table -") {
		t.Fatalf("missing header: %q", out[:60])
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 10 {
		t.Fatalf("too few entries: %d lines", len(lines))
	}
	row := strings.Fields(lines[2])
	if len(row) != 8 {
		t.Errorf("row has %d fields: %v", len(row), row)
	}
}

func TestShowIGMPAndVersionAndHelp(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("ucsb-r1")
	if out := r.Execute("show ip igmp groups"); !strings.Contains(out, "IGMP Group Membership") {
		t.Errorf("igmp output: %q", out)
	}
	if out := r.Execute("show version"); !strings.Contains(out, "ucsb-r1") {
		t.Errorf("version output: %q", out)
	}
	if out := r.Execute("help"); !strings.Contains(out, "show ip mroute") {
		t.Errorf("help output: %q", out)
	}
	if out := r.Execute("terminal length 0"); out != "" {
		t.Errorf("terminal length output: %q", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	n := testNetwork(t)
	out := n.Router("fixw").Execute("show ip ospf")
	if !strings.Contains(out, "% Invalid input") {
		t.Errorf("got %q", out)
	}
	if out := n.Router("fixw").Execute("   "); out != "" {
		t.Errorf("blank command output: %q", out)
	}
}

func TestShowCommandsOnNonSpeakers(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("nexch1") // PIM core: no DVMRP
	if out := r.Execute("show ip dvmrp route"); !strings.Contains(out, "0 entries") {
		t.Errorf("non-speaker dvmrp: %q", out)
	}
	// Pre-transition nexch1 is an idle MSDP RP with an empty cache.
	if out := r.Execute("show ip msdp sa-cache"); !strings.Contains(out, "MSDP Source-Active Cache") {
		t.Errorf("msdp: %q", out)
	}
	if out := r.Execute("show ip mbgp"); !strings.Contains(out, "MBGP Table") {
		t.Errorf("mbgp: %q", out)
	}
	if out := r.Execute("show ip pim neighbor"); !strings.Contains(out, "PIM Neighbor Table") {
		t.Errorf("pim neighbor: %q", out)
	}
}

func TestPostTransitionCLITables(t *testing.T) {
	n := testNetwork(t)
	for _, d := range n.Topo.Domains() {
		if d.Name != "ucsb" {
			n.TransitionDomain(d.Name)
		}
	}
	for i := 0; i < 6; i++ {
		n.Step()
	}
	fixw := n.Router("fixw")
	if out := fixw.Execute("show ip mbgp"); !strings.Contains(out, "/") {
		t.Errorf("FIXW MBGP empty after transition: %q", out)
	}
	if out := fixw.Execute("show ip msdp sa-cache"); strings.Contains(out, "- 0 entries") {
		t.Errorf("FIXW SA cache empty after transition")
	}
	if out := fixw.Execute("show ip pim neighbor"); strings.Contains(out, "0 neighbors") {
		t.Errorf("FIXW has no PIM neighbors after transition: %q", out)
	}
}

// drive reads until the expected prompt substring appears, then sends line.
func drive(t *testing.T, r *bufio.Reader, w *bufio.Writer, expect, send string) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 1)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(sb.String(), expect) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q, got %q", expect, sb.String())
		}
		n, err := r.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (so far %q)", err, sb.String())
		}
		sb.Write(buf[:n])
	}
	if send != "" {
		if _, err := w.WriteString(send + "\n"); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

func TestHandleSessionLoginAndCommands(t *testing.T) {
	n := testNetwork(t)
	rt := n.Router("fixw")
	rt.Password = "mantra"

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rt.HandleSession(server) }()

	r := bufio.NewReader(client)
	w := bufio.NewWriter(client)
	drive(t, r, w, "Password: ", "wrong")
	drive(t, r, w, "Password: ", "mantra")
	drive(t, r, w, "fixw> ", "show ip dvmrp route")
	out := drive(t, r, w, "fixw> ", "exit")
	if !strings.Contains(out, "DVMRP Routing Table") {
		t.Errorf("missing table in session output")
	}
	drive(t, r, w, "Connection closed.", "")
	if err := <-done; err != nil {
		t.Errorf("session error: %v", err)
	}
	client.Close()
}

func TestHandleSessionThreeBadPasswords(t *testing.T) {
	n := testNetwork(t)
	rt := n.Router("fixw")
	rt.Password = "secret"
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- rt.HandleSession(server) }()
	r := bufio.NewReader(client)
	w := bufio.NewWriter(client)
	drive(t, r, w, "Password: ", "a")
	drive(t, r, w, "Password: ", "b")
	out := drive(t, r, w, "Password: ", "c")
	_ = out
	final := drive(t, r, w, "% Bad passwords", "")
	if !strings.Contains(final, "% Bad passwords") {
		t.Error("lockout message missing")
	}
	if err := <-done; err != nil {
		t.Errorf("session error: %v", err)
	}
	client.Close()
}

func TestServeTCP(t *testing.T) {
	n := testNetwork(t)
	rt := n.Router("ucsb-gw")
	rt.Password = "pw"
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go rt.ServeTCP(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	drive(t, r, w, "Password: ", "pw")
	drive(t, r, w, "ucsb-gw> ", "show version")
	out := drive(t, r, w, "ucsb-gw> ", "exit")
	if !strings.Contains(out, "ucsb-gw uptime") {
		t.Errorf("version missing over TCP: %q", out)
	}
}

func TestNoPasswordSkipsLogin(t *testing.T) {
	n := testNetwork(t)
	rt := n.Router("fixw")
	rt.Password = ""
	client, server := net.Pipe()
	go rt.HandleSession(server)
	r := bufio.NewReader(client)
	w := bufio.NewWriter(client)
	drive(t, r, w, "fixw> ", "exit")
	client.Close()
}

func TestShowDVMRPNeighbors(t *testing.T) {
	n := testNetwork(t)
	out := n.Router("ucsb-gw").Execute("show ip dvmrp neighbor")
	if !strings.Contains(out, "DVMRP Neighbor Table -") {
		t.Fatalf("header missing: %q", out)
	}
	// The campus gateway neighbors FIXW and its interior routers.
	if !strings.Contains(out, "fixw") || !strings.Contains(out, "ucsb-r1") {
		t.Errorf("expected neighbors missing:\n%s", out)
	}
	// A PIM-only core has none.
	if out := n.Router("nexch1").Execute("show ip dvmrp neighbor"); !strings.Contains(out, "0 neighbors") {
		t.Errorf("nexch1 neighbors: %q", out)
	}
}

func TestShowPIMGroupsPostTransition(t *testing.T) {
	n := testNetwork(t)
	n.TransitionDomain("dom00")
	if err := n.Track("dom00-gw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	out := n.Router("dom00-gw").Execute("show ip pim group")
	if !strings.Contains(out, "PIM Group Table -") {
		t.Fatalf("header missing: %q", out)
	}
	if strings.Contains(out, "- 0 entries") {
		t.Errorf("no (*,G) entries at transitioned RP:\n%.120s", out)
	}
}
