package mbgp

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

var p1 = addr.MustParsePrefix("128.111.0.0/16")
var p2 = addr.MustParsePrefix("171.64.0.0/14")

// meshTopo builds n PIM-SM border routers in a chain over native links.
func meshTopo(n int) (*topo.Topology, *Mesh, []topo.NodeID) {
	t := topo.New()
	t.AddDomain("d", 1, topo.ModePIMSM, nil, false)
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		r := t.AddRouter(string(rune('a'+i)), "d", topo.ModePIMSM, addr.IP(i+1))
		ids[i] = r.ID
	}
	for i := 0; i+1 < n; i++ {
		t.Connect(ids[i], ids[i+1], addr.IP(1000+i), addr.IP(2000+i), false, 0, 45000)
	}
	m := NewMesh(t)
	for i, id := range ids {
		m.EnsureSpeaker(id, uint16(100+i))
	}
	return t, m, ids
}

func TestOriginateAndPropagate(t *testing.T) {
	_, m, ids := meshTopo(3)
	now := sim.Epoch
	m.Originate(ids[0], now, p1)
	m.Tick(now)
	rt := m.Table(ids[2])
	if len(rt) != 1 {
		t.Fatalf("tail table = %v", rt)
	}
	r := rt[0]
	if r.Prefix != p1 || len(r.ASPath) != 3 {
		t.Errorf("route = %+v", r)
	}
	if r.ASPath[0] != 102 || r.ASPath[2] != 100 {
		t.Errorf("ASPath = %v", r.ASPath)
	}
	if r.Via != ids[1] {
		t.Errorf("Via = %v", r.Via)
	}
}

func TestLocalOriginWinsOverLearned(t *testing.T) {
	_, m, ids := meshTopo(2)
	now := sim.Epoch
	m.Originate(ids[0], now, p1)
	m.Originate(ids[1], now, p1)
	m.Tick(now)
	for i, id := range ids {
		rt := m.Table(id)
		if len(rt) != 1 || rt[0].Via != SelfOrigin {
			t.Errorf("router %d should prefer local origin: %+v", i, rt)
		}
	}
}

func TestWithdrawPropagates(t *testing.T) {
	_, m, ids := meshTopo(4)
	now := sim.Epoch
	m.Originate(ids[0], now, p1, p2)
	m.Tick(now)
	if m.RouteCount(ids[3]) != 2 {
		t.Fatalf("bootstrap failed: %d", m.RouteCount(ids[3]))
	}
	m.Withdraw(ids[0], now.Add(time.Hour), p1)
	m.Tick(now.Add(time.Hour))
	rt := m.Table(ids[3])
	if len(rt) != 1 || rt[0].Prefix != p2 {
		t.Errorf("after withdraw: %v", rt)
	}
}

func TestShortestASPathWins(t *testing.T) {
	// Diamond: a-b, b-d and a-c, c-d, plus long path a-e-f-d.
	tp := topo.New()
	tp.AddDomain("d", 1, topo.ModePIMSM, nil, false)
	mk := func(name string) topo.NodeID {
		return tp.AddRouter(name, "d", topo.ModePIMSM, addr.IP(len(name)+int(name[0]))).ID
	}
	a, b, d := mk("a"), mk("b"), mk("d")
	e, f := mk("e"), mk("f")
	tp.Connect(a, b, 1, 2, false, 0, 0)
	direct := tp.Connect(b, d, 3, 4, false, 0, 0)
	tp.Connect(a, e, 5, 6, false, 0, 0)
	tp.Connect(e, f, 7, 8, false, 0, 0)
	tp.Connect(f, d, 9, 10, false, 0, 0)
	m := NewMesh(tp)
	for i, id := range []topo.NodeID{a, b, d, e, f} {
		m.EnsureSpeaker(id, uint16(10+i))
	}
	now := sim.Epoch
	m.Originate(a, now, p1)
	m.Tick(now)
	r, ok := m.Lookup(d, p1.First()+1)
	if !ok || len(r.ASPath) != 3 || r.Via != b {
		t.Fatalf("short path not selected: %+v ok=%v", r, ok)
	}
	// Break the short path: converges to the long one.
	direct.Up = false
	m.Tick(now.Add(time.Hour))
	r, ok = m.Lookup(d, p1.First()+1)
	if !ok || len(r.ASPath) != 4 || r.Via != f {
		t.Errorf("long path not selected after failure: %+v ok=%v", r, ok)
	}
}

func TestLoopRejection(t *testing.T) {
	// Two speakers in the same AS must not accept each other's re-export.
	tp := topo.New()
	tp.AddDomain("d", 1, topo.ModePIMSM, nil, false)
	a := tp.AddRouter("a", "d", topo.ModePIMSM, 1).ID
	b := tp.AddRouter("b", "d", topo.ModePIMSM, 2).ID
	c := tp.AddRouter("c", "d", topo.ModePIMSM, 3).ID
	tp.Connect(a, b, 1, 2, false, 0, 0)
	tp.Connect(b, c, 3, 4, false, 0, 0)
	m := NewMesh(tp)
	m.EnsureSpeaker(a, 100)
	m.EnsureSpeaker(b, 200)
	m.EnsureSpeaker(c, 100) // same AS as a
	now := sim.Epoch
	m.Originate(a, now, p1)
	m.Tick(now)
	if m.RouteCount(c) != 0 {
		t.Errorf("c accepted a route whose path contains its own AS: %v", m.Table(c))
	}
}

func TestRemoveSpeaker(t *testing.T) {
	_, m, ids := meshTopo(3)
	now := sim.Epoch
	m.Originate(ids[0], now, p1)
	m.Tick(now)
	if m.RouteCount(ids[2]) != 1 {
		t.Fatal("bootstrap failed")
	}
	m.RemoveSpeaker(ids[1], now)
	m.Tick(now.Add(time.Hour))
	if m.HasSpeaker(ids[1]) {
		t.Error("speaker still present")
	}
	if m.RouteCount(ids[2]) != 0 {
		t.Errorf("tail kept routes through removed speaker: %v", m.Table(ids[2]))
	}
}

func TestSessionDropWithdraws(t *testing.T) {
	tp, m, ids := meshTopo(2)
	now := sim.Epoch
	m.Originate(ids[0], now, p1)
	m.Tick(now)
	if m.RouteCount(ids[1]) != 1 {
		t.Fatal("bootstrap failed")
	}
	tp.Links()[0].Up = false
	m.Tick(now.Add(time.Hour))
	if m.RouteCount(ids[1]) != 0 {
		t.Errorf("route survived dead session: %v", m.Table(ids[1]))
	}
}

func TestLookupLongestMatch(t *testing.T) {
	_, m, ids := meshTopo(2)
	now := sim.Epoch
	sub := addr.MustParsePrefix("128.111.41.0/24")
	m.Originate(ids[0], now, p1, sub)
	m.Tick(now)
	r, ok := m.Lookup(ids[1], addr.MustParse("128.111.41.5"))
	if !ok || r.Prefix != sub {
		t.Errorf("lookup = %+v", r)
	}
	if _, ok := m.Lookup(ids[1], addr.MustParse("9.9.9.9")); ok {
		t.Error("lookup should miss")
	}
	if _, ok := m.Lookup(topo.NodeID(99), 1); ok {
		t.Error("unknown speaker should miss")
	}
}

func TestSinceStableAcrossTicks(t *testing.T) {
	_, m, ids := meshTopo(2)
	now := sim.Epoch
	m.Originate(ids[0], now, p1)
	m.Tick(now)
	for i := 0; i < 5; i++ {
		now = now.Add(time.Hour)
		m.Tick(now)
	}
	rt := m.Table(ids[1])
	if !rt[0].Since.Equal(sim.Epoch) {
		t.Errorf("Since drifted: %v", rt[0].Since)
	}
}

func TestTableReturnsCopies(t *testing.T) {
	_, m, ids := meshTopo(2)
	m.Originate(ids[0], sim.Epoch, p1)
	m.Tick(sim.Epoch)
	rt := m.Table(ids[1])
	rt[0].ASPath[0] = 9999
	rt2 := m.Table(ids[1])
	if rt2[0].ASPath[0] == 9999 {
		t.Error("Table aliases internal state")
	}
}

func TestStats(t *testing.T) {
	_, m, ids := meshTopo(3)
	m.Originate(ids[0], sim.Epoch, p1)
	m.Tick(sim.Epoch)
	s := m.Stats()
	if s.UpdatesExchanged == 0 || s.BestPathChanges == 0 {
		t.Errorf("stats = %+v", s)
	}
}
