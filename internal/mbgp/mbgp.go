// Package mbgp implements the multicast flavour of BGP the post-transition
// infrastructure uses for RPF routing: a path-vector protocol exchanging
// prefixes with AS paths between border routers (MP-BGP SAFI 2 in
// deployment terms).
//
// MBGP routes never forward unicast traffic — they exist so PIM can run
// reverse-path-forwarding checks toward interdomain sources, exactly the
// role the paper describes for the native multicast infrastructure.
package mbgp

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/topo"
)

// Route is one entry in a speaker's MBGP RIB.
type Route struct {
	Prefix addr.Prefix
	// ASPath is the path to the originator, nearest AS first.
	ASPath []uint16
	// Via is the peer the best path was learned from; -1 if local.
	Via topo.NodeID
	// NextHop is the peer's interface address.
	NextHop addr.IP
	// Since is when the prefix became reachable.
	Since time.Time
}

// SelfOrigin is the Via value of locally originated routes.
const SelfOrigin topo.NodeID = -1

// speaker is the per-router protocol state.
type speaker struct {
	id  topo.NodeID
	asn uint16
	// origin holds locally originated prefixes.
	origin map[addr.Prefix]bool
	// adjIn[peer][prefix] is the path last advertised by the peer.
	adjIn map[topo.NodeID]map[addr.Prefix][]uint16
	// rib is the selected best path per prefix.
	rib map[addr.Prefix]*Route
}

// Mesh is the set of MBGP speakers and their sessions. Sessions run over
// up native links between registered speakers. All methods must be called
// from the single simulation goroutine.
type Mesh struct {
	topo     *topo.Topology
	speakers map[topo.NodeID]*speaker
	stats    Stats
}

// Stats aggregates protocol activity counters.
type Stats struct {
	// UpdatesExchanged counts per-peer table transfers during Tick.
	UpdatesExchanged uint64
	// BestPathChanges counts RIB mutations.
	BestPathChanges uint64
}

// NewMesh returns an empty mesh over t.
func NewMesh(t *topo.Topology) *Mesh {
	return &Mesh{topo: t, speakers: make(map[topo.NodeID]*speaker)}
}

// Stats returns a copy of the counters.
func (m *Mesh) Stats() Stats { return m.stats }

// EnsureSpeaker registers a border router as an MBGP speaker with its ASN.
func (m *Mesh) EnsureSpeaker(id topo.NodeID, asn uint16) {
	if _, ok := m.speakers[id]; ok {
		return
	}
	m.speakers[id] = &speaker{
		id:     id,
		asn:    asn,
		origin: make(map[addr.Prefix]bool),
		adjIn:  make(map[topo.NodeID]map[addr.Prefix][]uint16),
		rib:    make(map[addr.Prefix]*Route),
	}
}

// HasSpeaker reports whether id runs MBGP.
func (m *Mesh) HasSpeaker(id topo.NodeID) bool {
	_, ok := m.speakers[id]
	return ok
}

// RemoveSpeaker withdraws a speaker and everything learned from it.
func (m *Mesh) RemoveSpeaker(id topo.NodeID, now time.Time) {
	if _, ok := m.speakers[id]; !ok {
		return
	}
	delete(m.speakers, id)
	for _, sp := range m.speakers {
		if _, had := sp.adjIn[id]; had {
			delete(sp.adjIn, id)
		}
	}
	m.reselectAll(now)
}

// Originate adds locally originated prefixes. Changes propagate at Tick.
func (m *Mesh) Originate(id topo.NodeID, now time.Time, prefixes ...addr.Prefix) {
	sp := m.speakers[id]
	if sp == nil {
		return
	}
	for _, p := range prefixes {
		if !sp.origin[p] {
			sp.origin[p] = true
			m.selectBest(sp, p, now)
		}
	}
}

// Withdraw removes locally originated prefixes.
func (m *Mesh) Withdraw(id topo.NodeID, now time.Time, prefixes ...addr.Prefix) {
	sp := m.speakers[id]
	if sp == nil {
		return
	}
	for _, p := range prefixes {
		if sp.origin[p] {
			delete(sp.origin, p)
			m.selectBest(sp, p, now)
		}
	}
}

// Table returns the RIB sorted by prefix; routes are copies.
func (m *Mesh) Table(id topo.NodeID) []Route {
	sp := m.speakers[id]
	if sp == nil {
		return nil
	}
	out := make([]Route, 0, len(sp.rib))
	for _, r := range sp.rib {
		cp := *r
		cp.ASPath = append([]uint16(nil), r.ASPath...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// RouteCount returns the RIB size.
func (m *Mesh) RouteCount(id topo.NodeID) int {
	sp := m.speakers[id]
	if sp == nil {
		return 0
	}
	return len(sp.rib)
}

// Lookup performs the RPF lookup: the longest-prefix match covering ip.
func (m *Mesh) Lookup(id topo.NodeID, ip addr.IP) (Route, bool) {
	sp := m.speakers[id]
	if sp == nil {
		return Route{}, false
	}
	var best *Route
	for _, r := range sp.rib {
		if r.Prefix.Contains(ip) && (best == nil || r.Prefix.Len > best.Prefix.Len) {
			best = r
		}
	}
	if best == nil {
		return Route{}, false
	}
	cp := *best
	cp.ASPath = append([]uint16(nil), best.ASPath...)
	return cp, true
}

// peers returns the adjacent speakers of sp over up native links, with the
// connecting link for next-hop addressing.
func (m *Mesh) peers(sp *speaker) map[topo.NodeID]*topo.Link {
	out := make(map[topo.NodeID]*topo.Link)
	native := m.topo.NativeLinks()
	for _, l := range m.topo.LinksOf(sp.id) {
		if !l.Up || !native(l) {
			continue
		}
		other := l.Other(sp.id).Router
		if _, ok := m.speakers[other]; ok {
			out[other] = l
		}
	}
	return out
}

// selectBest recomputes the best path for p at sp.
func (m *Mesh) selectBest(sp *speaker, p addr.Prefix, now time.Time) {
	var bestPath []uint16
	bestVia := SelfOrigin
	var bestHop addr.IP
	if sp.origin[p] {
		bestPath = []uint16{sp.asn}
	}
	peerLinks := m.peers(sp)
	// Deterministic peer order.
	peerIDs := make([]topo.NodeID, 0, len(peerLinks))
	for id := range peerLinks {
		peerIDs = append(peerIDs, id)
	}
	sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
	for _, peer := range peerIDs {
		vec := sp.adjIn[peer]
		path, ok := vec[p]
		if !ok {
			continue
		}
		// AS-path loop rejection.
		loop := false
		for _, as := range path {
			if as == sp.asn {
				loop = true
				break
			}
		}
		if loop {
			continue
		}
		cand := append([]uint16{sp.asn}, path...)
		if bestPath == nil || len(cand) < len(bestPath) {
			bestPath = cand
			bestVia = peer
			bestHop = peerLinks[peer].Other(sp.id).Addr
		}
	}
	cur, exists := sp.rib[p]
	switch {
	case bestPath == nil && exists:
		delete(sp.rib, p)
		m.stats.BestPathChanges++
	case bestPath != nil && !exists:
		sp.rib[p] = &Route{Prefix: p, ASPath: bestPath, Via: bestVia, NextHop: bestHop, Since: now}
		m.stats.BestPathChanges++
	case bestPath != nil && exists && (cur.Via != bestVia || len(cur.ASPath) != len(bestPath)):
		since := cur.Since
		sp.rib[p] = &Route{Prefix: p, ASPath: bestPath, Via: bestVia, NextHop: bestHop, Since: since}
		m.stats.BestPathChanges++
	}
}

// reselectAll re-runs best-path selection for every known prefix at every
// speaker (used after topology-scale changes).
func (m *Mesh) reselectAll(now time.Time) {
	for _, sp := range m.speakers {
		seen := make(map[addr.Prefix]bool)
		for p := range sp.origin {
			seen[p] = true
		}
		for _, vec := range sp.adjIn {
			for p := range vec {
				seen[p] = true
			}
		}
		for p := range sp.rib {
			seen[p] = true
		}
		for p := range seen {
			m.selectBest(sp, p, now)
		}
	}
}

// Tick exchanges full Adj-RIB advertisements between every pair of peers
// until path selection stabilizes. BGP is TCP-based, so the simulation
// applies no loss; convergence is bounded by the mesh diameter.
func (m *Mesh) Tick(now time.Time) {
	ids := make([]topo.NodeID, 0, len(m.speakers))
	for id := range m.speakers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Drop adj-in state from peers whose session is gone, then reselect,
	// so withdrawals propagate during this tick's convergence rounds.
	for _, id := range ids {
		sp := m.speakers[id]
		live := m.peers(sp)
		stale := false
		for peer := range sp.adjIn {
			if _, ok := live[peer]; !ok {
				delete(sp.adjIn, peer)
				stale = true
			}
		}
		if stale {
			seen := make(map[addr.Prefix]bool)
			for p := range sp.rib {
				seen[p] = true
			}
			for p := range seen {
				m.selectBest(sp, p, now)
			}
		}
	}

	for round := 0; round < 32; round++ {
		changed := false
		for _, id := range ids {
			sp := m.speakers[id]
			for peer := range m.peers(sp) {
				ps := m.speakers[peer]
				m.stats.UpdatesExchanged++
				// Build the advertisement from sp to peer: every RIB
				// entry not learned from that peer.
				adv := make(map[addr.Prefix][]uint16)
				for p, r := range sp.rib {
					if r.Via == peer {
						continue // split horizon
					}
					adv[p] = r.ASPath
				}
				old := ps.adjIn[sp.id]
				if vectorsEqual(old, adv) {
					continue
				}
				ps.adjIn[sp.id] = adv
				// Reselect affected prefixes.
				affected := make(map[addr.Prefix]bool)
				for p := range adv {
					affected[p] = true
				}
				for p := range old {
					affected[p] = true
				}
				before := m.stats.BestPathChanges
				for p := range affected {
					m.selectBest(ps, p, now)
				}
				if m.stats.BestPathChanges != before {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

func vectorsEqual(a, b map[addr.Prefix][]uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for p, pa := range a {
		pb, ok := b[p]
		if !ok || len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
	}
	return true
}
