package packet

import (
	"fmt"
	"time"

	"repro/internal/addr"
)

// IGMP message types (RFC 2236). DVMRP rides on IGMP type 0x13.
const (
	igmpTypeQuery    = 0x11
	igmpTypeReportV2 = 0x16
	igmpTypeLeave    = 0x17
	igmpTypeDVMRP    = 0x13
)

// IGMPKind distinguishes the IGMPv2 message variants.
type IGMPKind uint8

// The IGMPv2 message kinds.
const (
	IGMPQuery IGMPKind = iota
	IGMPReport
	IGMPLeave
)

// String returns the RFC name of the message kind.
func (k IGMPKind) String() string {
	switch k {
	case IGMPQuery:
		return "membership-query"
	case IGMPReport:
		return "v2-membership-report"
	case IGMPLeave:
		return "leave-group"
	}
	return "unknown"
}

// IGMP is an IGMPv2 message. A general query carries the unspecified group;
// a group-specific query, report, or leave names the group.
type IGMP struct {
	Kind IGMPKind
	// MaxResp is the maximum response time for queries; encoded in
	// tenths of a second as on the wire.
	MaxResp time.Duration
	Group   addr.IP
}

// Marshal encodes the message with a valid checksum.
func (m *IGMP) Marshal() []byte {
	b := make([]byte, 8)
	switch m.Kind {
	case IGMPQuery:
		b[0] = igmpTypeQuery
		tenths := m.MaxResp.Milliseconds() / 100
		if tenths > 255 {
			tenths = 255
		}
		b[1] = byte(tenths)
	case IGMPReport:
		b[0] = igmpTypeReportV2
	case IGMPLeave:
		b[0] = igmpTypeLeave
	}
	putIP(b[4:], m.Group)
	finishChecksum(b, 2)
	return b
}

// UnmarshalIGMP decodes an IGMPv2 message, verifying length and checksum.
func UnmarshalIGMP(b []byte) (*IGMP, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if err := verifyChecksum(b[:8], 2); err != nil {
		return nil, err
	}
	m := &IGMP{Group: getIP(b[4:8])}
	switch b[0] {
	case igmpTypeQuery:
		m.Kind = IGMPQuery
		m.MaxResp = time.Duration(b[1]) * 100 * time.Millisecond
	case igmpTypeReportV2:
		m.Kind = IGMPReport
	case igmpTypeLeave:
		m.Kind = IGMPLeave
	default:
		return nil, fmt.Errorf("packet: unknown IGMP type 0x%02x", b[0])
	}
	return m, nil
}
