// Package packet defines binary wire encodings for the control messages of
// the multicast protocol suite the paper's infrastructure runs: IGMPv2,
// DVMRP, PIM-SM, MSDP and MBGP.
//
// Encodings follow the layouts of RFC 2236 (IGMPv2), the DVMRP draft
// (IGMP type 0x13 subtypes), RFC 2362 (PIMv2), RFC 3618 (MSDP) and a
// compact BGP4/MP-BGP-style UPDATE for MBGP. All encoders round-trip
// through their decoders with checksum and truncation validation; the
// simulator carries IGMP membership reports through the wire encoding on
// the host-to-router path (internal/netsim), while the routing engines
// exchange state at table granularity for efficiency and use these
// formats at their protocol boundaries (tests assert the equivalence).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/addr"
)

// ErrTruncated reports a message shorter than its header or declared length.
var ErrTruncated = errors.New("packet: truncated message")

// ErrBadChecksum reports a checksum mismatch on a received message.
var ErrBadChecksum = errors.New("packet: bad checksum")

// Checksum computes the 16-bit one's-complement internet checksum used by
// IGMP, DVMRP and PIM messages.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

func putIP(b []byte, ip addr.IP) { binary.BigEndian.PutUint32(b, uint32(ip)) }
func getIP(b []byte) addr.IP     { return addr.IP(binary.BigEndian.Uint32(b)) }

// verifyChecksum checks the embedded checksum at offset off within b.
func verifyChecksum(b []byte, off int) error {
	want := binary.BigEndian.Uint16(b[off : off+2])
	cp := make([]byte, len(b))
	copy(cp, b)
	cp[off], cp[off+1] = 0, 0
	if Checksum(cp) != want {
		return ErrBadChecksum
	}
	return nil
}

// finishChecksum zeroes then writes the checksum at offset off within b.
func finishChecksum(b []byte, off int) {
	b[off], b[off+1] = 0, 0
	binary.BigEndian.PutUint16(b[off:off+2], Checksum(b))
}

// Protocol identifies which control protocol a raw message belongs to.
type Protocol uint8

// Protocol values carried by Classify.
const (
	ProtoUnknown Protocol = iota
	ProtoIGMP
	ProtoDVMRP
	ProtoPIM
	ProtoMSDP
	ProtoMBGP
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoIGMP:
		return "IGMP"
	case ProtoDVMRP:
		return "DVMRP"
	case ProtoPIM:
		return "PIM"
	case ProtoMSDP:
		return "MSDP"
	case ProtoMBGP:
		return "MBGP"
	}
	return "unknown"
}

// Classify inspects the first byte(s) of a raw message produced by this
// package and reports which protocol encoder produced it. DVMRP shares the
// IGMP header with type 0x13.
func Classify(b []byte) Protocol {
	if len(b) == 0 {
		return ProtoUnknown
	}
	switch {
	case b[0] == igmpTypeDVMRP:
		return ProtoDVMRP
	case b[0] == igmpTypeQuery || b[0] == igmpTypeReportV2 || b[0] == igmpTypeLeave:
		return ProtoIGMP
	case b[0]>>4 == 2 && b[0]&0x0F <= pimMaxType: // PIM ver 2
		return ProtoPIM
	case b[0] == msdpMagic:
		return ProtoMSDP
	case b[0] == mbgpMagic:
		return ProtoMBGP
	}
	return ProtoUnknown
}

func appendPrefix(b []byte, p addr.Prefix) []byte {
	b = append(b, byte(p.Len))
	var four [4]byte
	putIP(four[:], p.Addr)
	return append(b, four[:]...)
}

func readPrefix(b []byte) (addr.Prefix, []byte, error) {
	if len(b) < 5 {
		return addr.Prefix{}, nil, ErrTruncated
	}
	l := int(b[0])
	if l > 32 {
		return addr.Prefix{}, nil, fmt.Errorf("packet: prefix length %d out of range", l)
	}
	return addr.PrefixFrom(getIP(b[1:5]), l), b[5:], nil
}
