package packet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
)

// mbgpMagic distinguishes MBGP updates from the other encodings in this
// package (a real BGP stream would be framed by the 16-byte marker; the
// simulator exchanges one update per message).
const mbgpMagic = 0xB6

// MBGPUpdate is a compact MP-BGP UPDATE for the multicast SAFI: withdrawn
// prefixes plus announced prefixes sharing one AS path and next hop.
// Routers use these routes for RPF checks, not unicast forwarding —
// exactly the role MBGP plays in the paper's "native" infrastructure.
type MBGPUpdate struct {
	NextHop   addr.IP
	ASPath    []uint16
	Announced []addr.Prefix
	Withdrawn []addr.Prefix
}

// Marshal encodes the update.
func (u *MBGPUpdate) Marshal() []byte {
	b := make([]byte, 0, 16+5*(len(u.Announced)+len(u.Withdrawn))+2*len(u.ASPath))
	b = append(b, mbgpMagic)
	var four [4]byte
	putIP(four[:], u.NextHop)
	b = append(b, four[:]...)
	b = append(b, byte(len(u.ASPath)))
	for _, as := range u.ASPath {
		var two [2]byte
		binary.BigEndian.PutUint16(two[:], as)
		b = append(b, two[:]...)
	}
	var counts [4]byte
	binary.BigEndian.PutUint16(counts[:2], uint16(len(u.Announced)))
	binary.BigEndian.PutUint16(counts[2:], uint16(len(u.Withdrawn)))
	b = append(b, counts[:]...)
	for _, p := range u.Announced {
		b = appendPrefix(b, p)
	}
	for _, p := range u.Withdrawn {
		b = appendPrefix(b, p)
	}
	return b
}

// UnmarshalMBGP decodes an update.
func UnmarshalMBGP(b []byte) (*MBGPUpdate, error) {
	if len(b) < 10 {
		return nil, ErrTruncated
	}
	if b[0] != mbgpMagic {
		return nil, fmt.Errorf("packet: not an MBGP update (0x%02x)", b[0])
	}
	u := &MBGPUpdate{NextHop: getIP(b[1:5])}
	nAS := int(b[5])
	rest := b[6:]
	if len(rest) < 2*nAS+4 {
		return nil, ErrTruncated
	}
	for i := 0; i < nAS; i++ {
		u.ASPath = append(u.ASPath, binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
	}
	nAnn := int(binary.BigEndian.Uint16(rest[:2]))
	nWdr := int(binary.BigEndian.Uint16(rest[2:4]))
	rest = rest[4:]
	var err error
	var p addr.Prefix
	for i := 0; i < nAnn; i++ {
		if p, rest, err = readPrefix(rest); err != nil {
			return nil, err
		}
		u.Announced = append(u.Announced, p)
	}
	for i := 0; i < nWdr; i++ {
		if p, rest, err = readPrefix(rest); err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
	}
	return u, nil
}
