package packet

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/addr"
)

// PIMv2 message types (RFC 2362).
const (
	pimTypeHello        = 0
	pimTypeRegister     = 1
	pimTypeRegisterStop = 2
	pimTypeJoinPrune    = 3
	pimMaxType          = 8
)

// PIMHello announces a PIM router on a link; Holdtime 0 means goodbye.
type PIMHello struct {
	Holdtime time.Duration
	// DRPriority breaks designated-router election ties.
	DRPriority uint32
}

// Marshal encodes the hello with holdtime and DR-priority options.
func (h *PIMHello) Marshal() []byte {
	b := make([]byte, 4+6+8)
	b[0] = 2<<4 | pimTypeHello
	// Option 1: holdtime (2-byte value).
	binary.BigEndian.PutUint16(b[4:], 1)
	binary.BigEndian.PutUint16(b[6:], 2)
	binary.BigEndian.PutUint16(b[8:], uint16(h.Holdtime/time.Second))
	// Option 19: DR priority (4-byte value).
	binary.BigEndian.PutUint16(b[10:], 19)
	binary.BigEndian.PutUint16(b[12:], 4)
	binary.BigEndian.PutUint32(b[14:], h.DRPriority)
	finishChecksum(b, 2)
	return b
}

// PIMJoinPruneGroup carries the join and prune source lists for one group.
// A join for the unspecified source is the shared-tree (*,G) join.
type PIMJoinPruneGroup struct {
	Group  addr.IP
	Joins  []addr.IP
	Prunes []addr.IP
}

// PIMJoinPrune is the periodic join/prune message sent hop-by-hop toward
// the RP or a source.
type PIMJoinPrune struct {
	// Upstream is the neighbor the message is addressed to.
	Upstream addr.IP
	Holdtime time.Duration
	Groups   []PIMJoinPruneGroup
}

// Marshal encodes the join/prune message.
func (j *PIMJoinPrune) Marshal() []byte {
	b := make([]byte, 12)
	b[0] = 2<<4 | pimTypeJoinPrune
	putIP(b[4:], j.Upstream)
	b[8] = byte(len(j.Groups))
	binary.BigEndian.PutUint16(b[10:], uint16(j.Holdtime/time.Second))
	for _, g := range j.Groups {
		var four [4]byte
		putIP(four[:], g.Group)
		b = append(b, four[:]...)
		var counts [4]byte
		binary.BigEndian.PutUint16(counts[:2], uint16(len(g.Joins)))
		binary.BigEndian.PutUint16(counts[2:], uint16(len(g.Prunes)))
		b = append(b, counts[:]...)
		for _, s := range g.Joins {
			putIP(four[:], s)
			b = append(b, four[:]...)
		}
		for _, s := range g.Prunes {
			putIP(four[:], s)
			b = append(b, four[:]...)
		}
	}
	finishChecksum(b, 2)
	return b
}

// PIMRegister tunnels the first packets of a new source to the RP.
// Null registers probe whether the RP still wants the flow.
type PIMRegister struct {
	Source addr.IP
	Group  addr.IP
	Null   bool
	// Bytes is the size of the encapsulated data payload (not carried
	// for null registers).
	Bytes uint32
}

// Marshal encodes the register message.
func (r *PIMRegister) Marshal() []byte {
	b := make([]byte, 20)
	b[0] = 2<<4 | pimTypeRegister
	if r.Null {
		b[4] = 0x40
	}
	putIP(b[8:], r.Source)
	putIP(b[12:], r.Group)
	binary.BigEndian.PutUint32(b[16:], r.Bytes)
	finishChecksum(b, 2)
	return b
}

// PIMRegisterStop tells a DR to stop register-encapsulating (Source, Group).
type PIMRegisterStop struct {
	Source addr.IP
	Group  addr.IP
}

// Marshal encodes the register-stop.
func (r *PIMRegisterStop) Marshal() []byte {
	b := make([]byte, 12)
	b[0] = 2<<4 | pimTypeRegisterStop
	putIP(b[4:], r.Group)
	putIP(b[8:], r.Source)
	finishChecksum(b, 2)
	return b
}

// PIMMessage is the decoded form of any PIM message; exactly one field is
// non-nil.
type PIMMessage struct {
	Hello        *PIMHello
	JoinPrune    *PIMJoinPrune
	Register     *PIMRegister
	RegisterStop *PIMRegisterStop
}

// UnmarshalPIM decodes a PIMv2 message, verifying version, length and
// checksum.
func UnmarshalPIM(b []byte) (*PIMMessage, error) {
	if len(b) < 4 {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 2 {
		return nil, fmt.Errorf("packet: PIM version %d unsupported", b[0]>>4)
	}
	if err := verifyChecksum(b, 2); err != nil {
		return nil, err
	}
	switch b[0] & 0x0F {
	case pimTypeHello:
		h := &PIMHello{}
		rest := b[4:]
		for len(rest) >= 4 {
			opt := binary.BigEndian.Uint16(rest[:2])
			olen := int(binary.BigEndian.Uint16(rest[2:4]))
			if len(rest) < 4+olen {
				return nil, ErrTruncated
			}
			switch opt {
			case 1:
				if olen >= 2 {
					h.Holdtime = time.Duration(binary.BigEndian.Uint16(rest[4:6])) * time.Second
				}
			case 19:
				if olen >= 4 {
					h.DRPriority = binary.BigEndian.Uint32(rest[4:8])
				}
			}
			rest = rest[4+olen:]
		}
		return &PIMMessage{Hello: h}, nil
	case pimTypeJoinPrune:
		if len(b) < 12 {
			return nil, ErrTruncated
		}
		j := &PIMJoinPrune{
			Upstream: getIP(b[4:]),
			Holdtime: time.Duration(binary.BigEndian.Uint16(b[10:])) * time.Second,
		}
		ngroups := int(b[8])
		rest := b[12:]
		for i := 0; i < ngroups; i++ {
			if len(rest) < 8 {
				return nil, ErrTruncated
			}
			g := PIMJoinPruneGroup{Group: getIP(rest)}
			nj := int(binary.BigEndian.Uint16(rest[4:6]))
			np := int(binary.BigEndian.Uint16(rest[6:8]))
			rest = rest[8:]
			if len(rest) < 4*(nj+np) {
				return nil, ErrTruncated
			}
			for k := 0; k < nj; k++ {
				g.Joins = append(g.Joins, getIP(rest))
				rest = rest[4:]
			}
			for k := 0; k < np; k++ {
				g.Prunes = append(g.Prunes, getIP(rest))
				rest = rest[4:]
			}
			j.Groups = append(j.Groups, g)
		}
		return &PIMMessage{JoinPrune: j}, nil
	case pimTypeRegister:
		if len(b) < 20 {
			return nil, ErrTruncated
		}
		return &PIMMessage{Register: &PIMRegister{
			Null:   b[4]&0x40 != 0,
			Source: getIP(b[8:]),
			Group:  getIP(b[12:]),
			Bytes:  binary.BigEndian.Uint32(b[16:]),
		}}, nil
	case pimTypeRegisterStop:
		if len(b) < 12 {
			return nil, ErrTruncated
		}
		return &PIMMessage{RegisterStop: &PIMRegisterStop{
			Group:  getIP(b[4:]),
			Source: getIP(b[8:]),
		}}, nil
	}
	return nil, fmt.Errorf("packet: unsupported PIM type %d", b[0]&0x0F)
}
