package packet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
)

// msdpMagic is the first byte of every message this encoder emits; it is
// the RFC 3618 TLV type for Source-Active, the only MSDP TLV the
// infrastructure exchanges at volume.
const msdpMagic = 1

// MSDPSAEntry is one (source, group) pair in a Source-Active message.
type MSDPSAEntry struct {
	Source addr.IP
	Group  addr.IP
}

// MSDPSA is a Source-Active TLV: the originating RP floods the active
// sources it knows to its peers, which forward along peer-RPF rules.
type MSDPSA struct {
	// OriginRP is the rendezvous point that originated the SA.
	OriginRP addr.IP
	Entries  []MSDPSAEntry
}

// Marshal encodes the SA TLV (type, 16-bit length, entry count, RP,
// then (group, source) pairs as in RFC 3618 §12.2).
func (m *MSDPSA) Marshal() []byte {
	length := 8 + 8*len(m.Entries)
	b := make([]byte, 8, length)
	b[0] = msdpMagic
	binary.BigEndian.PutUint16(b[1:], uint16(length))
	b[3] = byte(len(m.Entries))
	putIP(b[4:], m.OriginRP)
	for _, e := range m.Entries {
		var pair [8]byte
		putIP(pair[:4], e.Group)
		putIP(pair[4:], e.Source)
		b = append(b, pair[:]...)
	}
	return b
}

// UnmarshalMSDP decodes a Source-Active TLV.
func UnmarshalMSDP(b []byte) (*MSDPSA, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if b[0] != msdpMagic {
		return nil, fmt.Errorf("packet: unsupported MSDP TLV type %d", b[0])
	}
	length := int(binary.BigEndian.Uint16(b[1:3]))
	if length > len(b) {
		return nil, ErrTruncated
	}
	n := int(b[3])
	m := &MSDPSA{OriginRP: getIP(b[4:8])}
	rest := b[8:length]
	if len(rest) < 8*n {
		return nil, ErrTruncated
	}
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, MSDPSAEntry{
			Group:  getIP(rest[:4]),
			Source: getIP(rest[4:8]),
		})
		rest = rest[8:]
	}
	return m, nil
}
