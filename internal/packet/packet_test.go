package packet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
)

func TestChecksumKnown(t *testing.T) {
	// RFC 1071 example words: 0x0001 0xf203 0xf4f5 0xf6f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Error("odd-length padding wrong")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	m := &IGMP{Kind: IGMPReport, Group: addr.MustParse("224.1.2.3")}
	b := m.Marshal()
	b[5] ^= 0x01
	if _, err := UnmarshalIGMP(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestIGMPRoundTrip(t *testing.T) {
	cases := []*IGMP{
		{Kind: IGMPQuery, MaxResp: 10 * time.Second},
		{Kind: IGMPQuery, MaxResp: 2500 * time.Millisecond, Group: addr.MustParse("239.1.1.1")},
		{Kind: IGMPReport, Group: addr.MustParse("224.2.127.254")},
		{Kind: IGMPLeave, Group: addr.MustParse("224.2.127.254")},
	}
	for _, c := range cases {
		got, err := UnmarshalIGMP(c.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", c.Kind, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip %+v != %+v", got, c)
		}
	}
}

func TestIGMPMaxRespClamps(t *testing.T) {
	m := &IGMP{Kind: IGMPQuery, MaxResp: time.Hour}
	got, err := UnmarshalIGMP(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxResp != 25500*time.Millisecond {
		t.Errorf("MaxResp = %v, want clamp to 25.5s", got.MaxResp)
	}
}

func TestIGMPTruncated(t *testing.T) {
	if _, err := UnmarshalIGMP([]byte{0x16, 0, 0}); err != ErrTruncated {
		t.Errorf("err = %v", err)
	}
}

func TestIGMPKindString(t *testing.T) {
	if IGMPQuery.String() != "membership-query" || IGMPKind(99).String() != "unknown" {
		t.Error("IGMPKind.String wrong")
	}
}

func TestDVMRPProbeRoundTrip(t *testing.T) {
	p := &DVMRPProbe{GenID: 0xDEADBEEF, Neighbors: []addr.IP{
		addr.MustParse("198.32.233.1"), addr.MustParse("198.32.233.2"),
	}}
	m, err := UnmarshalDVMRP(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Probe == nil || !reflect.DeepEqual(m.Probe, p) {
		t.Errorf("round trip %+v", m.Probe)
	}
}

func TestDVMRPProbeNoNeighbors(t *testing.T) {
	p := &DVMRPProbe{GenID: 7}
	m, err := UnmarshalDVMRP(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Probe.Neighbors) != 0 {
		t.Errorf("neighbors = %v", m.Probe.Neighbors)
	}
}

func TestDVMRPReportRoundTrip(t *testing.T) {
	r := &DVMRPReport{Routes: []DVMRPRoute{
		{Prefix: addr.MustParsePrefix("128.111.0.0/16"), Metric: 1},
		{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 33},
		{Prefix: addr.MustParsePrefix("0.0.0.0/0"), Metric: DVMRPInfinity},
	}}
	m, err := UnmarshalDVMRP(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Report == nil || !reflect.DeepEqual(m.Report, r) {
		t.Errorf("round trip %+v", m.Report)
	}
}

func TestDVMRPReportRoundTripProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		r := &DVMRPReport{}
		for _, s := range seeds {
			r.Routes = append(r.Routes, DVMRPRoute{
				Prefix: addr.PrefixFrom(addr.IP(s), int(s%33)),
				Metric: uint8(s % 64),
			})
		}
		m, err := UnmarshalDVMRP(r.Marshal())
		if err != nil {
			return false
		}
		if len(r.Routes) == 0 {
			return len(m.Report.Routes) == 0
		}
		return reflect.DeepEqual(m.Report, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDVMRPPruneRoundTrip(t *testing.T) {
	p := &DVMRPPrune{
		Source:   addr.MustParse("128.111.41.2"),
		Group:    addr.MustParse("224.2.0.1"),
		Lifetime: 7200 * time.Second,
	}
	m, err := UnmarshalDVMRP(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Prune == nil || !reflect.DeepEqual(m.Prune, p) {
		t.Errorf("round trip %+v", m.Prune)
	}
}

func TestDVMRPGraftRoundTrip(t *testing.T) {
	for _, ack := range []bool{false, true} {
		g := &DVMRPGraft{
			Source: addr.MustParse("128.111.41.2"),
			Group:  addr.MustParse("224.2.0.1"),
			Ack:    ack,
		}
		m, err := UnmarshalDVMRP(g.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if m.Graft == nil || !reflect.DeepEqual(m.Graft, g) {
			t.Errorf("round trip %+v", m.Graft)
		}
	}
}

func TestDVMRPRejectsNonDVMRP(t *testing.T) {
	b := (&IGMP{Kind: IGMPReport, Group: addr.MustParse("224.1.1.1")}).Marshal()
	if _, err := UnmarshalDVMRP(b); err == nil {
		t.Error("expected type error")
	}
}

func TestDVMRPTruncatedReport(t *testing.T) {
	r := &DVMRPReport{Routes: []DVMRPRoute{{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Metric: 1}}}
	b := r.Marshal()
	if _, err := UnmarshalDVMRP(b[:10]); err == nil {
		t.Error("expected truncation error")
	}
}

func TestPIMHelloRoundTrip(t *testing.T) {
	h := &PIMHello{Holdtime: 105 * time.Second, DRPriority: 7}
	m, err := UnmarshalPIM(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Hello == nil || !reflect.DeepEqual(m.Hello, h) {
		t.Errorf("round trip %+v", m.Hello)
	}
}

func TestPIMJoinPruneRoundTrip(t *testing.T) {
	j := &PIMJoinPrune{
		Upstream: addr.MustParse("198.32.233.9"),
		Holdtime: 210 * time.Second,
		Groups: []PIMJoinPruneGroup{
			{
				Group:  addr.MustParse("224.2.0.1"),
				Joins:  []addr.IP{addr.Unspecified, addr.MustParse("128.111.41.2")},
				Prunes: []addr.IP{addr.MustParse("130.207.8.4")},
			},
			{
				Group: addr.MustParse("239.255.0.1"),
				Joins: []addr.IP{addr.MustParse("171.64.1.1")},
			},
		},
	}
	m, err := UnmarshalPIM(j.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.JoinPrune == nil || !reflect.DeepEqual(m.JoinPrune, j) {
		t.Errorf("round trip %+v", m.JoinPrune)
	}
}

func TestPIMRegisterRoundTrip(t *testing.T) {
	for _, null := range []bool{false, true} {
		r := &PIMRegister{
			Source: addr.MustParse("128.111.41.2"),
			Group:  addr.MustParse("224.2.0.1"),
			Null:   null,
			Bytes:  1480,
		}
		m, err := UnmarshalPIM(r.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if m.Register == nil || !reflect.DeepEqual(m.Register, r) {
			t.Errorf("round trip %+v", m.Register)
		}
	}
}

func TestPIMRegisterStopRoundTrip(t *testing.T) {
	r := &PIMRegisterStop{
		Source: addr.MustParse("128.111.41.2"),
		Group:  addr.MustParse("224.2.0.1"),
	}
	m, err := UnmarshalPIM(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.RegisterStop == nil || !reflect.DeepEqual(m.RegisterStop, r) {
		t.Errorf("round trip %+v", m.RegisterStop)
	}
}

func TestPIMRejectsVersion1(t *testing.T) {
	b := (&PIMHello{Holdtime: time.Minute}).Marshal()
	b[0] = 1<<4 | pimTypeHello
	finishChecksum(b, 2)
	if _, err := UnmarshalPIM(b); err == nil {
		t.Error("expected version error")
	}
}

func TestPIMChecksum(t *testing.T) {
	b := (&PIMHello{Holdtime: time.Minute}).Marshal()
	b[len(b)-1] ^= 0xFF
	if _, err := UnmarshalPIM(b); err != ErrBadChecksum {
		t.Errorf("err = %v", err)
	}
}

func TestMSDPSARoundTrip(t *testing.T) {
	sa := &MSDPSA{
		OriginRP: addr.MustParse("198.32.233.33"),
		Entries: []MSDPSAEntry{
			{Source: addr.MustParse("128.111.41.2"), Group: addr.MustParse("224.2.0.1")},
			{Source: addr.MustParse("130.207.8.4"), Group: addr.MustParse("224.2.0.2")},
		},
	}
	got, err := UnmarshalMSDP(sa.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sa) {
		t.Errorf("round trip %+v", got)
	}
}

func TestMSDPEmpty(t *testing.T) {
	sa := &MSDPSA{OriginRP: addr.MustParse("10.0.0.1")}
	got, err := UnmarshalMSDP(sa.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 {
		t.Errorf("entries = %v", got.Entries)
	}
}

func TestMSDPTruncated(t *testing.T) {
	sa := &MSDPSA{
		OriginRP: addr.MustParse("10.0.0.1"),
		Entries:  []MSDPSAEntry{{Source: 1, Group: addr.MulticastBase + 300}},
	}
	b := sa.Marshal()
	if _, err := UnmarshalMSDP(b[:9]); err == nil {
		t.Error("expected truncation error")
	}
}

func TestMBGPRoundTrip(t *testing.T) {
	u := &MBGPUpdate{
		NextHop: addr.MustParse("198.32.233.50"),
		ASPath:  []uint16{131, 701, 1},
		Announced: []addr.Prefix{
			addr.MustParsePrefix("128.111.0.0/16"),
			addr.MustParsePrefix("171.64.0.0/14"),
		},
		Withdrawn: []addr.Prefix{addr.MustParsePrefix("192.31.7.0/24")},
	}
	got, err := UnmarshalMBGP(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Errorf("round trip %+v", got)
	}
}

func TestMBGPWithdrawOnly(t *testing.T) {
	u := &MBGPUpdate{
		NextHop:   addr.MustParse("10.0.0.1"),
		Withdrawn: []addr.Prefix{addr.MustParsePrefix("10.5.0.0/16")},
	}
	got, err := UnmarshalMBGP(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Announced) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestMBGPRejectsBadPrefixLen(t *testing.T) {
	u := &MBGPUpdate{
		NextHop:   addr.MustParse("10.0.0.1"),
		Announced: []addr.Prefix{addr.MustParsePrefix("10.0.0.0/8")},
	}
	b := u.Marshal()
	// Corrupt the prefix length byte (first byte of the announced prefix).
	b[len(b)-5] = 60
	if _, err := UnmarshalMBGP(b); err == nil {
		t.Error("expected prefix length error")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		b    []byte
		want Protocol
	}{
		{(&IGMP{Kind: IGMPReport, Group: addr.AllSystems}).Marshal(), ProtoIGMP},
		{(&IGMP{Kind: IGMPQuery}).Marshal(), ProtoIGMP},
		{(&IGMP{Kind: IGMPLeave, Group: addr.AllSystems}).Marshal(), ProtoIGMP},
		{(&DVMRPProbe{GenID: 1}).Marshal(), ProtoDVMRP},
		{(&DVMRPReport{}).Marshal(), ProtoDVMRP},
		{(&PIMHello{Holdtime: time.Minute}).Marshal(), ProtoPIM},
		{(&MSDPSA{OriginRP: 1}).Marshal(), ProtoMSDP},
		{(&MBGPUpdate{NextHop: 1}).Marshal(), ProtoMBGP},
		{nil, ProtoUnknown},
		{[]byte{0xFE}, ProtoUnknown},
	}
	for _, c := range cases {
		if got := Classify(c.b); got != c.want {
			t.Errorf("Classify(% x) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		ProtoIGMP: "IGMP", ProtoDVMRP: "DVMRP", ProtoPIM: "PIM",
		ProtoMSDP: "MSDP", ProtoMBGP: "MBGP", ProtoUnknown: "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	j := &PIMJoinPrune{
		Upstream: addr.MustParse("10.0.0.1"),
		Holdtime: time.Minute,
		Groups:   []PIMJoinPruneGroup{{Group: addr.MustParse("224.1.1.1"), Joins: []addr.IP{addr.Unspecified}}},
	}
	if !bytes.Equal(j.Marshal(), j.Marshal()) {
		t.Error("Marshal is not deterministic")
	}
}
