package packet

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/addr"
)

// DVMRP subtype codes (carried in the IGMP code field of type 0x13).
const (
	dvmrpCodeProbe    = 1
	dvmrpCodeReport   = 2
	dvmrpCodePrune    = 7
	dvmrpCodeGraft    = 8
	dvmrpCodeGraftAck = 9
)

// DVMRPInfinity is the DVMRP unreachable metric. Poison-reverse adds
// DVMRPInfinity to the advertised metric; a metric of 2*Infinity-1 or more
// means unreachable outright.
const DVMRPInfinity = 32

// DVMRPRoute is one route entry in a DVMRP report.
type DVMRPRoute struct {
	Prefix addr.Prefix
	// Metric is the hop count; Infinity or above means unreachable,
	// Infinity added to a finite metric encodes poison reverse.
	Metric uint8
}

// DVMRPProbe is the neighbor discovery message. GenID changes on restart,
// prompting neighbors to resend full routing state.
type DVMRPProbe struct {
	GenID     uint32
	Neighbors []addr.IP
}

// Marshal encodes the probe.
func (p *DVMRPProbe) Marshal() []byte {
	b := make([]byte, 12, 12+4*len(p.Neighbors))
	b[0], b[1] = igmpTypeDVMRP, dvmrpCodeProbe
	binary.BigEndian.PutUint32(b[8:], p.GenID)
	for _, n := range p.Neighbors {
		var four [4]byte
		putIP(four[:], n)
		b = append(b, four[:]...)
	}
	finishChecksum(b, 2)
	return b
}

// DVMRPReport is a full or partial route report.
type DVMRPReport struct {
	Routes []DVMRPRoute
}

// Marshal encodes the report.
func (r *DVMRPReport) Marshal() []byte {
	b := make([]byte, 8, 8+6*len(r.Routes))
	b[0], b[1] = igmpTypeDVMRP, dvmrpCodeReport
	binary.BigEndian.PutUint16(b[4:], uint16(len(r.Routes)))
	for _, rt := range r.Routes {
		b = appendPrefix(b, rt.Prefix)
		b = append(b, rt.Metric)
	}
	finishChecksum(b, 2)
	return b
}

// DVMRPPrune asks the upstream neighbor to stop forwarding (Source, Group)
// for Lifetime.
type DVMRPPrune struct {
	Source   addr.IP
	Group    addr.IP
	Lifetime time.Duration
}

// Marshal encodes the prune.
func (p *DVMRPPrune) Marshal() []byte {
	b := make([]byte, 20)
	b[0], b[1] = igmpTypeDVMRP, dvmrpCodePrune
	putIP(b[8:], p.Source)
	putIP(b[12:], p.Group)
	binary.BigEndian.PutUint32(b[16:], uint32(p.Lifetime/time.Second))
	finishChecksum(b, 2)
	return b
}

// DVMRPGraft cancels a previous prune when a downstream receiver appears.
// Ack reports whether this is a graft acknowledgement.
type DVMRPGraft struct {
	Source addr.IP
	Group  addr.IP
	Ack    bool
}

// Marshal encodes the graft or graft-ack.
func (g *DVMRPGraft) Marshal() []byte {
	b := make([]byte, 16)
	b[0], b[1] = igmpTypeDVMRP, dvmrpCodeGraft
	if g.Ack {
		b[1] = dvmrpCodeGraftAck
	}
	putIP(b[8:], g.Source)
	putIP(b[12:], g.Group)
	finishChecksum(b, 2)
	return b
}

// DVMRPMessage is the decoded form of any DVMRP message; exactly one field
// is non-nil.
type DVMRPMessage struct {
	Probe  *DVMRPProbe
	Report *DVMRPReport
	Prune  *DVMRPPrune
	Graft  *DVMRPGraft
}

// UnmarshalDVMRP decodes a DVMRP message, verifying length and checksum.
func UnmarshalDVMRP(b []byte) (*DVMRPMessage, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if b[0] != igmpTypeDVMRP {
		return nil, fmt.Errorf("packet: not a DVMRP message (type 0x%02x)", b[0])
	}
	if err := verifyChecksum(b, 2); err != nil {
		return nil, err
	}
	switch b[1] {
	case dvmrpCodeProbe:
		if len(b) < 12 || (len(b)-12)%4 != 0 {
			return nil, ErrTruncated
		}
		p := &DVMRPProbe{GenID: binary.BigEndian.Uint32(b[8:12])}
		for rest := b[12:]; len(rest) >= 4; rest = rest[4:] {
			p.Neighbors = append(p.Neighbors, getIP(rest))
		}
		return &DVMRPMessage{Probe: p}, nil
	case dvmrpCodeReport:
		n := int(binary.BigEndian.Uint16(b[4:6]))
		r := &DVMRPReport{}
		rest := b[8:]
		for i := 0; i < n; i++ {
			if len(rest) < 6 {
				return nil, ErrTruncated
			}
			var pfx addr.Prefix
			var err error
			pfx, rest, err = readPrefix(rest)
			if err != nil {
				return nil, err
			}
			r.Routes = append(r.Routes, DVMRPRoute{Prefix: pfx, Metric: rest[0]})
			rest = rest[1:]
		}
		return &DVMRPMessage{Report: r}, nil
	case dvmrpCodePrune:
		if len(b) < 20 {
			return nil, ErrTruncated
		}
		return &DVMRPMessage{Prune: &DVMRPPrune{
			Source:   getIP(b[8:]),
			Group:    getIP(b[12:]),
			Lifetime: time.Duration(binary.BigEndian.Uint32(b[16:])) * time.Second,
		}}, nil
	case dvmrpCodeGraft, dvmrpCodeGraftAck:
		if len(b) < 16 {
			return nil, ErrTruncated
		}
		return &DVMRPMessage{Graft: &DVMRPGraft{
			Source: getIP(b[8:]),
			Group:  getIP(b[12:]),
			Ack:    b[1] == dvmrpCodeGraftAck,
		}}, nil
	}
	return nil, fmt.Errorf("packet: unknown DVMRP code %d", b[1])
}
