package pim

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

var g1 = addr.MustParse("224.2.0.1")
var g2 = addr.MustParse("239.1.1.1")

func TestRefreshStarCreatesAndPreserves(t *testing.T) {
	r := NewRouter(1, 0)
	now := sim.Epoch
	e := r.RefreshStar(g1, 5, 2, []int{3, 4}, true, now)
	if e.RP != 5 || e.IIF != 2 || len(e.OIFs) != 2 || !e.LocalMembers {
		t.Errorf("entry = %+v", e)
	}
	later := now.Add(time.Hour)
	e2 := r.RefreshStar(g1, 5, 2, []int{3}, false, later)
	if !e2.Created.Equal(now) {
		t.Error("Created reset on refresh")
	}
	if !e2.LastRefresh.Equal(later) || len(e2.OIFs) != 1 || e2.LocalMembers {
		t.Errorf("refresh state = %+v", e2)
	}
	if r.StarCount() != 1 {
		t.Errorf("count = %d", r.StarCount())
	}
}

func TestExpireStale(t *testing.T) {
	r := NewRouter(1, time.Hour)
	now := sim.Epoch
	r.RefreshStar(g1, 5, -1, nil, true, now)
	r.RefreshStar(g2, 5, -1, nil, true, now.Add(50*time.Minute))
	if n := r.ExpireStale(now.Add(70 * time.Minute)); n != 1 {
		t.Fatalf("expired = %d", n)
	}
	if r.HasStar(g1) || !r.HasStar(g2) {
		t.Error("wrong entry expired")
	}
}

func TestPruneStar(t *testing.T) {
	r := NewRouter(1, 0)
	r.RefreshStar(g1, 5, -1, nil, true, sim.Epoch)
	if !r.PruneStar(g1) || r.PruneStar(g1) {
		t.Error("prune semantics wrong")
	}
	if r.Star(g1) != nil {
		t.Error("entry survives prune")
	}
}

func TestStarsSortedAndCopied(t *testing.T) {
	r := NewRouter(1, 0)
	now := sim.Epoch
	r.RefreshStar(g2, 5, -1, []int{7}, false, now)
	r.RefreshStar(g1, 5, -1, nil, false, now)
	ss := r.Stars()
	if len(ss) != 2 || ss[0].Group != g1 {
		t.Errorf("order: %v", ss)
	}
	ss[1].OIFs[0] = 99
	if r.Star(g2).OIFs[0] == 99 {
		t.Error("Stars aliases internal state")
	}
	if r.ID() != 1 {
		t.Error("ID wrong")
	}
}

func TestRPMap(t *testing.T) {
	m := NewRPMap()
	m.Assign("ucsb", 7)
	m.Assign("dom01", 9)
	if rp, ok := m.For("ucsb"); !ok || rp != 7 {
		t.Errorf("For = %v, %v", rp, ok)
	}
	if _, ok := m.For("nope"); ok {
		t.Error("unknown domain should miss")
	}
	ds := m.Domains()
	if len(ds) != 2 || ds[0] != "dom01" {
		t.Errorf("Domains = %v", ds)
	}
	m.Unassign("ucsb")
	if _, ok := m.For("ucsb"); ok {
		t.Error("Unassign failed")
	}
}

func TestPolicySwitchToSPT(t *testing.T) {
	p := Policy{SPTThresholdKbps: 4}
	if p.SwitchToSPT(3.9) || !p.SwitchToSPT(4) || !p.SwitchToSPT(100) {
		t.Error("threshold policy wrong")
	}
	immediate := Policy{}
	if !immediate.SwitchToSPT(0) {
		t.Error("zero threshold should switch immediately")
	}
}
