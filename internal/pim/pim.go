// Package pim implements the router-side state of Protocol Independent
// Multicast — Sparse Mode: per-router (*,G) shared-tree state with
// join/prune refresh semantics, rendezvous-point mapping, and the
// shortest-path-tree switchover policy.
//
// (S,G) forwarding state lives in the shared forwarding cache
// (internal/forwarding), as on a real router where PIM installs mroutes;
// this package holds what is PIM-specific: the shared tree, the RP
// mapping, and the policies that decide when state exists at all. The
// existence test — "do I have downstream receivers?" — is what made
// sparse-mode FIXW stop carrying state for idle sessions, the central
// transition effect in the paper.
package pim

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/topo"
)

// DefaultHoldtime is how long (*,G) state survives without a join refresh
// (RFC 2362's 210 s scaled to cycle granularity: state must be refreshed
// every cycle).
const DefaultHoldtime = 75 * time.Minute

// StarEntry is a (*,G) shared-tree entry.
type StarEntry struct {
	Group addr.IP
	// RP is the rendezvous point of the shared tree.
	RP topo.NodeID
	// IIF is the RPF link toward the RP; -1 at the RP itself.
	IIF int
	// OIFs are the joined downstream links; an entry with local
	// receivers but no downstream routers has none.
	OIFs []int
	// LocalMembers reports IGMP membership on leaf subnets.
	LocalMembers bool
	// Created is when the entry appeared; LastRefresh the latest join.
	Created, LastRefresh time.Time
}

// Router is the PIM-SM state of one router.
type Router struct {
	id       topo.NodeID
	holdtime time.Duration
	stars    map[addr.IP]*StarEntry
}

// NewRouter returns the PIM state of router id. Non-positive holdtime
// selects DefaultHoldtime.
func NewRouter(id topo.NodeID, holdtime time.Duration) *Router {
	if holdtime <= 0 {
		holdtime = DefaultHoldtime
	}
	return &Router{id: id, holdtime: holdtime, stars: make(map[addr.IP]*StarEntry)}
}

// ID returns the owning router.
func (r *Router) ID() topo.NodeID { return r.id }

// RefreshStar installs or refreshes the (*,G) entry, preserving Created.
func (r *Router) RefreshStar(group addr.IP, rp topo.NodeID, iif int, oifs []int, localMembers bool, now time.Time) *StarEntry {
	e := r.stars[group]
	if e == nil {
		e = &StarEntry{Group: group, Created: now}
		r.stars[group] = e
	}
	e.RP = rp
	e.IIF = iif
	e.OIFs = append(e.OIFs[:0], oifs...)
	e.LocalMembers = localMembers
	e.LastRefresh = now
	return e
}

// PruneStar removes the (*,G) entry immediately (an explicit prune).
func (r *Router) PruneStar(group addr.IP) bool {
	if _, ok := r.stars[group]; !ok {
		return false
	}
	delete(r.stars, group)
	return true
}

// ExpireStale removes entries whose last join refresh is older than the
// holdtime and returns how many were removed.
func (r *Router) ExpireStale(now time.Time) int {
	n := 0
	for g, e := range r.stars {
		if now.Sub(e.LastRefresh) > r.holdtime {
			delete(r.stars, g)
			n++
		}
	}
	return n
}

// Star returns the (*,G) entry, or nil.
func (r *Router) Star(group addr.IP) *StarEntry { return r.stars[group] }

// HasStar reports whether (*,G) state exists for group.
func (r *Router) HasStar(group addr.IP) bool {
	_, ok := r.stars[group]
	return ok
}

// StarCount returns the number of (*,G) entries.
func (r *Router) StarCount() int { return len(r.stars) }

// Stars returns copies of all (*,G) entries sorted by group.
func (r *Router) Stars() []StarEntry {
	out := make([]StarEntry, 0, len(r.stars))
	for _, e := range r.stars {
		cp := *e
		cp.OIFs = append([]int(nil), e.OIFs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// RPMap maps sparse-mode domains to their rendezvous point. In the 1999
// infrastructure RPs were statically configured per domain, with MSDP
// gluing them together.
type RPMap struct {
	byDomain map[string]topo.NodeID
}

// NewRPMap returns an empty RP mapping.
func NewRPMap() *RPMap {
	return &RPMap{byDomain: make(map[string]topo.NodeID)}
}

// Assign sets the RP of a domain, replacing any previous assignment.
func (m *RPMap) Assign(domain string, rp topo.NodeID) {
	m.byDomain[domain] = rp
}

// Unassign removes a domain's RP.
func (m *RPMap) Unassign(domain string) {
	delete(m.byDomain, domain)
}

// For returns the RP of a domain and whether one is assigned.
func (m *RPMap) For(domain string) (topo.NodeID, bool) {
	rp, ok := m.byDomain[domain]
	return rp, ok
}

// Domains returns the domains with an assigned RP, sorted.
func (m *RPMap) Domains() []string {
	out := make([]string, 0, len(m.byDomain))
	for d := range m.byDomain {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Policy holds the sparse-mode behavioural knobs.
type Policy struct {
	// SPTThresholdKbps is the source rate above which last-hop routers
	// switch from the shared tree to the source's shortest-path tree.
	// Zero switches immediately (the cisco default of the era).
	SPTThresholdKbps float64
}

// SwitchToSPT reports whether a flow at the given rate should move to the
// shortest-path tree.
func (p Policy) SwitchToSPT(rateKbps float64) bool {
	return rateKbps >= p.SPTThresholdKbps
}
