package dvmrp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

// randomConnectedTopo builds a random connected loss-free graph of n
// routers (spanning tree plus extra chords).
func randomConnectedTopo(rng *rand.Rand, n int) (*topo.Topology, []topo.NodeID) {
	t := topo.New()
	t.AddDomain("d", 1, topo.ModeDVMRP, nil, false)
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddRouter(fmt.Sprintf("r%d", i), "d", topo.ModeDVMRP, addr.IP(i+1)).ID
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		t.Connect(ids[i], ids[j], 0, 0, true, 0, 0)
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			t.Connect(ids[i], ids[j], 0, 0, true, 0, 0)
		}
	}
	return t, ids
}

// TestConvergencePropertyRandomGraphs verifies the distance-vector
// invariant on random connected loss-free topologies: after convergence,
// every router holds every originated prefix with a metric equal to its
// BFS distance from the originator.
func TestConvergencePropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		tp, ids := randomConnectedTopo(rng, n)
		c := NewCloud(tp, sim.NewRNG(seed), 30*time.Minute)
		for _, id := range ids {
			c.EnsureRouter(id)
		}
		now := sim.Epoch
		// A few random originators with distinct prefixes.
		origins := map[addr.Prefix]topo.NodeID{}
		for k := 0; k < 1+rng.Intn(3); k++ {
			o := ids[rng.Intn(n)]
			p := addr.PrefixFrom(addr.V4(byte(10+k), 0, 0, 0), 8)
			c.Originate(o, now, 0, p)
			origins[p] = o
		}
		// Converge: a handful of ticks is ample for diameter ≤ n.
		for i := 0; i < 3; i++ {
			c.Tick(now)
			now = now.Add(30 * time.Minute)
		}
		for p, o := range origins {
			dist, _ := tp.BFS(o, tp.DVMRPLinks())
			for _, id := range ids {
				want, reachable := dist[id]
				r, ok := c.Lookup(id, p.First()+1)
				if !reachable || want >= Infinity {
					if ok {
						return false
					}
					continue
				}
				if !ok || r.Metric != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWithdrawPropertyNoGhostRoutes verifies that after withdrawing every
// origination and letting hold-downs release, no router retains a route
// (no count-to-infinity ghosts survive on loss-free links).
func TestWithdrawPropertyNoGhostRoutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		tp, ids := randomConnectedTopo(rng, n)
		c := NewCloud(tp, sim.NewRNG(seed), 30*time.Minute)
		for _, id := range ids {
			c.EnsureRouter(id)
		}
		now := sim.Epoch
		o := ids[rng.Intn(n)]
		p := addr.MustParsePrefix("10.0.0.0/8")
		c.Originate(o, now, 0, p)
		for i := 0; i < 3; i++ {
			c.Tick(now)
			now = now.Add(30 * time.Minute)
		}
		c.Withdraw(o, now, p)
		for i := 0; i < 5; i++ {
			c.Tick(now)
			now = now.Add(30 * time.Minute)
		}
		for _, id := range ids {
			if c.RouteCount(id) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
