package dvmrp

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

const tick = 30 * time.Minute

// lineTopo builds n DVMRP routers in a chain with the given loss on every
// link and registers them in a fresh cloud.
func lineTopo(n int, loss float64) (*topo.Topology, *Cloud, []topo.NodeID) {
	t := topo.New()
	t.AddDomain("d", 1, topo.ModeDVMRP, nil, false)
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		r := t.AddRouter(string(rune('a'+i)), "d", topo.ModeDVMRP, addr.IP(i+1))
		ids[i] = r.ID
	}
	for i := 0; i+1 < n; i++ {
		t.Connect(ids[i], ids[i+1], 0, 0, true, loss, 1500)
	}
	c := NewCloud(t, sim.NewRNG(1), tick)
	for _, id := range ids {
		c.EnsureRouter(id)
	}
	return t, c, ids
}

var p1 = addr.MustParsePrefix("128.111.0.0/16")
var p2 = addr.MustParsePrefix("10.0.0.0/8")

func TestBasicPropagation(t *testing.T) {
	_, c, ids := lineTopo(2, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	rt := c.Table(ids[1])
	if len(rt) != 1 {
		t.Fatalf("B table = %v", rt)
	}
	if rt[0].Prefix != p1 || rt[0].Metric != 1 || rt[0].Via != ids[0] {
		t.Errorf("route = %+v", rt[0])
	}
	if c.RouteCount(ids[0]) != 1 {
		t.Errorf("A should have its own route")
	}
}

func TestChainMetrics(t *testing.T) {
	_, c, ids := lineTopo(4, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	for i, want := range []int{0, 1, 2, 3} {
		rt := c.Table(ids[i])
		if len(rt) != 1 || rt[i%1].Metric != want {
			t.Errorf("router %d: table %+v, want metric %d", i, rt, want)
		}
	}
}

func TestPoisonReversePreventsLoop(t *testing.T) {
	_, c, ids := lineTopo(2, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	// A's route must remain self-originated, never learned back from B.
	rt := c.Table(ids[0])
	if rt[0].Via != SelfOrigin || rt[0].Metric != 0 {
		t.Errorf("A route = %+v", rt[0])
	}
	// After the origin is withdrawn, the route must vanish everywhere
	// rather than count to infinity between A and B.
	c.Withdraw(ids[0], now.Add(tick), p1)
	c.Tick(now.Add(tick))
	if c.RouteCount(ids[0]) != 0 || c.RouteCount(ids[1]) != 0 {
		t.Errorf("counts after withdraw: %d, %d", c.RouteCount(ids[0]), c.RouteCount(ids[1]))
	}
}

func TestWithdrawPropagatesDownChain(t *testing.T) {
	_, c, ids := lineTopo(5, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1, p2)
	c.Tick(now)
	if c.RouteCount(ids[4]) != 2 {
		t.Fatalf("tail count = %d", c.RouteCount(ids[4]))
	}
	c.Withdraw(ids[0], now.Add(tick), p1)
	c.Tick(now.Add(tick))
	for i, id := range ids {
		rt := c.Table(id)
		if len(rt) != 1 || rt[0].Prefix != p2 {
			t.Errorf("router %d table = %+v", i, rt)
		}
	}
}

func TestAlternatePathAfterLinkDown(t *testing.T) {
	// Square: a-b, a-c, b-d, c-d. Origin at a; d has two 2-hop paths.
	tp := topo.New()
	tp.AddDomain("d", 1, topo.ModeDVMRP, nil, false)
	var ids []topo.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, tp.AddRouter(string(rune('a'+i)), "d", topo.ModeDVMRP, addr.IP(i+1)).ID)
	}
	lab := tp.Connect(ids[0], ids[1], 0, 0, true, 0, 0)
	tp.Connect(ids[0], ids[2], 0, 0, true, 0, 0)
	lbd := tp.Connect(ids[1], ids[3], 0, 0, true, 0, 0)
	tp.Connect(ids[2], ids[3], 0, 0, true, 0, 0)
	c := NewCloud(tp, sim.NewRNG(1), tick)
	for _, id := range ids {
		c.EnsureRouter(id)
	}
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	r, ok := c.Lookup(ids[3], p1.First()+1)
	if !ok || r.Metric != 2 {
		t.Fatalf("d route = %+v ok=%v", r, ok)
	}
	firstVia := r.Via
	// Kill the path through whichever neighbor d uses.
	if firstVia == ids[1] {
		lbd.Up = false
	} else {
		lab.Up = false // break a-b; d keeps or switches to the c path
	}
	now = now.Add(tick)
	c.Tick(now)
	r, ok = c.Lookup(ids[3], p1.First()+1)
	if !ok || r.Metric != 2 {
		t.Fatalf("after failover d route = %+v ok=%v", r, ok)
	}
}

func TestTotalLossMeansNoRoutes(t *testing.T) {
	_, c, ids := lineTopo(2, 1.0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	for i := 0; i < 5; i++ {
		c.Tick(now)
		now = now.Add(tick)
	}
	if c.RouteCount(ids[1]) != 0 {
		t.Errorf("B learned a route over a fully lossy link")
	}
	if c.Stats().UpdatesLost == 0 {
		t.Error("loss not counted")
	}
}

func TestNeighborExpiryAndRecovery(t *testing.T) {
	tp, c, ids := lineTopo(2, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	if c.RouteCount(ids[1]) != 1 {
		t.Fatal("bootstrap failed")
	}
	// All updates now lost: after the timeout the adjacency expires.
	tp.Links()[0].LossProb = 1.0
	for i := 1; i <= 4; i++ {
		now = now.Add(tick)
		c.Tick(now)
	}
	if c.RouteCount(ids[1]) != 0 {
		t.Errorf("route survived silent neighbor: %v", c.Table(ids[1]))
	}
	if c.Stats().NeighborExpiries == 0 {
		t.Error("expiry not counted")
	}
	// Loss clears: the route comes back via full resync.
	tp.Links()[0].LossProb = 0
	now = now.Add(tick)
	c.Tick(now)
	if c.RouteCount(ids[1]) != 1 {
		t.Errorf("route did not recover: %v", c.Table(ids[1]))
	}
}

func TestRestartFlushesAndResyncs(t *testing.T) {
	_, c, ids := lineTopo(3, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Originate(ids[2], now, 0, p2)
	c.Tick(now)
	if c.RouteCount(ids[1]) != 2 {
		t.Fatal("bootstrap failed")
	}
	c.Restart(ids[1], now)
	// Immediately after restart the middle router only knows itself.
	if c.RouteCount(ids[1]) != 0 {
		t.Errorf("restart did not flush: %v", c.Table(ids[1]))
	}
	now = now.Add(tick)
	c.Tick(now)
	if c.RouteCount(ids[1]) != 2 || c.RouteCount(ids[0]) != 2 || c.RouteCount(ids[2]) != 2 {
		t.Errorf("resync failed: %d %d %d", c.RouteCount(ids[0]), c.RouteCount(ids[1]), c.RouteCount(ids[2]))
	}
}

func TestRemoveRouterPartitions(t *testing.T) {
	_, c, ids := lineTopo(3, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	if c.RouteCount(ids[2]) != 1 {
		t.Fatal("bootstrap failed")
	}
	c.RemoveRouter(ids[1], now)
	if c.HasRouter(ids[1]) {
		t.Error("router still present")
	}
	now = now.Add(tick)
	c.Tick(now)
	if c.RouteCount(ids[2]) != 0 {
		t.Errorf("tail kept routes through removed router: %v", c.Table(ids[2]))
	}
}

func TestLookupLongestMatch(t *testing.T) {
	_, c, ids := lineTopo(2, 0)
	now := sim.Epoch
	sub := addr.MustParsePrefix("128.111.41.0/24")
	c.Originate(ids[0], now, 0, p1)
	c.Originate(ids[0], now, 2, sub)
	c.Tick(now)
	r, ok := c.Lookup(ids[1], addr.MustParse("128.111.41.9"))
	if !ok || r.Prefix != sub {
		t.Errorf("lookup = %+v ok=%v", r, ok)
	}
	r, ok = c.Lookup(ids[1], addr.MustParse("128.111.1.1"))
	if !ok || r.Prefix != p1 {
		t.Errorf("lookup = %+v ok=%v", r, ok)
	}
	if _, ok = c.Lookup(ids[1], addr.MustParse("1.1.1.1")); ok {
		t.Error("lookup should miss")
	}
}

func TestUptimePreservedAcrossTicks(t *testing.T) {
	_, c, ids := lineTopo(2, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	for i := 0; i < 10; i++ {
		now = now.Add(tick)
		c.Tick(now)
	}
	rt := c.Table(ids[1])
	if !rt[0].Since.Equal(sim.Epoch) {
		t.Errorf("Since drifted to %v", rt[0].Since)
	}
}

func TestMetricChangeUpdatesLastChangeOnly(t *testing.T) {
	// a-b-c chain plus direct a-c link that starts down; bringing it up
	// improves c's metric from 2 to 1 without resetting uptime.
	tp := topo.New()
	tp.AddDomain("d", 1, topo.ModeDVMRP, nil, false)
	a := tp.AddRouter("a", "d", topo.ModeDVMRP, 1).ID
	b := tp.AddRouter("b", "d", topo.ModeDVMRP, 2).ID
	cc := tp.AddRouter("c", "d", topo.ModeDVMRP, 3).ID
	tp.Connect(a, b, 0, 0, true, 0, 0)
	tp.Connect(b, cc, 0, 0, true, 0, 0)
	direct := tp.Connect(a, cc, 0, 0, true, 0, 0)
	direct.Up = false
	c := NewCloud(tp, sim.NewRNG(1), tick)
	c.EnsureRouter(a)
	c.EnsureRouter(b)
	c.EnsureRouter(cc)
	now := sim.Epoch
	c.Originate(a, now, 0, p1)
	c.Tick(now)
	rt := c.Table(cc)
	if rt[0].Metric != 2 {
		t.Fatalf("initial metric = %d", rt[0].Metric)
	}
	direct.Up = true
	now = now.Add(tick)
	c.Tick(now)
	rt = c.Table(cc)
	if rt[0].Metric != 1 {
		t.Fatalf("improved metric = %d", rt[0].Metric)
	}
	if !rt[0].Since.Equal(sim.Epoch) {
		t.Error("Since reset on metric change")
	}
	if !rt[0].LastChange.After(sim.Epoch) {
		t.Error("LastChange not updated")
	}
}

func TestConvergenceMatchesBFS(t *testing.T) {
	// On the built internet topology with zero loss, converged DVMRP
	// metrics must equal BFS hop counts from the originating border.
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 8
	cfg.TunnelLoss = 0
	cfg.NativeLoss = 0
	in := topo.BuildInternet(cfg)
	tp := in.Topo
	c := NewCloud(tp, sim.NewRNG(2), tick)
	for _, r := range tp.Routers() {
		if r.Mode == topo.ModeDVMRP || r.Mode == topo.ModeBorder {
			c.EnsureRouter(r.ID)
		}
	}
	now := sim.Epoch
	target := tp.Domain("dom03")
	probe := target.Prefixes[0]
	c.Originate(target.Border(), now, 0, probe)
	c.Tick(now)
	dist, _ := tp.BFS(target.Border(), tp.DVMRPLinks())
	for _, r := range tp.Routers() {
		if !c.HasRouter(r.ID) {
			continue
		}
		want, reachable := dist[r.ID]
		rt, ok := c.Lookup(r.ID, probe.First()+1)
		if !reachable {
			if ok {
				t.Errorf("%s has route but is unreachable", r.Name)
			}
			continue
		}
		if want >= Infinity {
			continue
		}
		if !ok || rt.Metric != want {
			t.Errorf("%s metric = %d ok=%v, want %d", r.Name, rt.Metric, ok, want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Route {
		_, c, ids := lineTopo(4, 0.3)
		now := sim.Epoch
		c.Originate(ids[0], now, 0, p1, p2)
		for i := 0; i < 6; i++ {
			c.Tick(now)
			now = now.Add(tick)
		}
		return c.Table(ids[3])
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOrigins(t *testing.T) {
	_, c, ids := lineTopo(2, 0)
	c.Originate(ids[0], sim.Epoch, 0, p2, p1)
	got := c.Origins(ids[0])
	if len(got) != 2 || got[0] != p2 || got[1] != p1 {
		t.Errorf("Origins = %v", got)
	}
	if c.Origins(topo.NodeID(99)) != nil {
		t.Error("unknown router should have nil origins")
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, c, ids := lineTopo(3, 0)
	now := sim.Epoch
	c.Originate(ids[0], now, 0, p1)
	c.Tick(now)
	s := c.Stats()
	if s.UpdatesSent == 0 || s.FullSyncs == 0 || s.RouteChanges == 0 {
		t.Errorf("stats = %+v", s)
	}
}
