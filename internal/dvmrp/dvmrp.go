// Package dvmrp implements the Distance Vector Multicast Routing Protocol
// as deployed on the 1998 MBone: periodic route reports with split horizon
// and poison reverse, per-neighbor refresh timeouts, hold-down-free route
// replacement, and an infinity metric of 32.
//
// The implementation is incremental: routers exchange full vectors only
// when an adjacency (re)forms or on the staggered periodic full refresh,
// and unacknowledged deltas ("flash updates") otherwise. Losing a flash
// update leaves the receiver stale until the next full sync; losing
// consecutive periodic updates expires every route learned from that
// neighbor — the mechanisms behind the route-count instability and
// cross-router inconsistency in Figures 7–9 of the paper.
package dvmrp

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Infinity is the DVMRP unreachable metric.
const Infinity = 32

// unreachable is the internal metric meaning "no route".
const unreachable = 2 * Infinity

// pkey is a route table key: the prefix packed into one word so map
// operations take the fast integer-hash path.
type pkey uint64

func pack(p addr.Prefix) pkey      { return pkey(uint64(p.Addr)<<6 | uint64(p.Len)) }
func (k pkey) unpack() addr.Prefix { return addr.Prefix{Addr: addr.IP(k >> 6), Len: int(k & 63)} }

// Route is one entry of a router's DVMRP routing table.
type Route struct {
	Prefix addr.Prefix
	// Metric is the distance in hops, 0 for self-originated routes.
	Metric int
	// Via is the upstream neighbor the route was learned from;
	// -1 for self-originated routes.
	Via topo.NodeID
	// Since is when the prefix first became reachable through the
	// current continuous reachability period (route uptime).
	Since time.Time
	// LastChange is when metric or upstream last changed.
	LastChange time.Time
}

// SelfOrigin is the Via value of locally originated routes.
const SelfOrigin topo.NodeID = -1

// Stats aggregates protocol activity counters for a Cloud.
type Stats struct {
	// UpdatesSent and UpdatesLost count periodic per-neighbor updates.
	UpdatesSent, UpdatesLost uint64
	// FullSyncs counts full-table exchanges on adjacency formation.
	FullSyncs uint64
	// RouteChanges counts table mutations (install/replace/delete).
	RouteChanges uint64
	// NeighborExpiries counts per-neighbor timeout events.
	NeighborExpiries uint64
	// HoldDowns counts routes placed in hold-down.
	HoldDowns uint64
	// ConvergenceRounds counts triggered-update rounds run by Tick.
	ConvergenceRounds uint64
}

type neighborView struct {
	// vector is the last route vector received from the neighbor:
	// prefix -> advertised metric (post-poison entries are absent).
	vector map[pkey]int
	// lastHeard is when a periodic update last arrived.
	lastHeard time.Time
	// needFull requests a full-table resync (new adjacency or restart).
	needFull bool
}

type routerState struct {
	id     topo.NodeID
	origin map[pkey]int
	table  map[pkey]*Route
	// nbr holds the per-neighbor receive state.
	nbr map[topo.NodeID]*neighborView
	// pending[n] holds prefixes whose advertisement toward neighbor n
	// changed since the last delivered update.
	pending map[topo.NodeID]map[pkey]struct{}
	// holddown suppresses reinstallation of recently worsened routes
	// until the stored instant, breaking count-to-infinity episodes.
	holddown map[pkey]time.Time
	genID    uint32
	// nbrList caches the live neighbor set; nbrGen validates it.
	nbrList []topo.NodeID
	nbrGen  uint64
}

// Cloud is the set of DVMRP-speaking routers and their protocol state.
// All methods must be called from the single simulation goroutine.
type Cloud struct {
	topo *topo.Topology
	rng  *sim.RNG
	// NeighborTimeout expires routes from a silent neighbor. The mrouted
	// default of 140 s scales here to monitoring-cycle granularity: two
	// consecutive lost periodic updates kill the adjacency.
	NeighborTimeout time.Duration
	// FullSyncEvery is the staggered full-table refresh period in ticks.
	// Between full syncs, updates are unacknowledged deltas: a lost
	// flash update leaves the receiver stale until the next full sync —
	// the persistent cross-router inconsistency the paper reports.
	FullSyncEvery uint64
	routers       map[topo.NodeID]*routerState
	stats         Stats
	tick          uint64
	// holdDur is the hold-down period applied when a route worsens;
	// defaults to one tick interval, as in mrouted's hold-down of two
	// update intervals at its much finer update granularity.
	holdDur time.Duration
	filter  topo.LinkFilter
	nbrGen  uint64
}

// NewCloud returns an empty DVMRP cloud over t. tick is the interval at
// which Tick will be called; the neighbor timeout defaults to just over
// twice that, so two consecutive lost updates expire an adjacency.
func NewCloud(t *topo.Topology, rng *sim.RNG, tick time.Duration) *Cloud {
	return &Cloud{
		topo:            t,
		rng:             rng,
		NeighborTimeout: 2*tick + tick/2,
		FullSyncEvery:   8,
		holdDur:         tick,
		routers:         make(map[topo.NodeID]*routerState),
		filter:          t.DVMRPLinks(),
		nbrGen:          1,
	}
}

// Stats returns a copy of the protocol counters.
func (c *Cloud) Stats() Stats { return c.stats }

// InvalidateNeighbors discards cached adjacency lists; callers that change
// link state or cloud membership outside Tick may call it, though Tick
// also refreshes the caches itself.
func (c *Cloud) InvalidateNeighbors() { c.nbrGen++ }

// EnsureRouter registers id as a DVMRP speaker. Registering twice is a
// no-op.
func (c *Cloud) EnsureRouter(id topo.NodeID) {
	if _, ok := c.routers[id]; ok {
		return
	}
	c.routers[id] = &routerState{
		id:       id,
		origin:   make(map[pkey]int),
		table:    make(map[pkey]*Route),
		nbr:      make(map[topo.NodeID]*neighborView),
		pending:  make(map[topo.NodeID]map[pkey]struct{}),
		holddown: make(map[pkey]time.Time),
	}
	c.nbrGen++
}

// HasRouter reports whether id participates in the cloud.
func (c *Cloud) HasRouter(id topo.NodeID) bool {
	_, ok := c.routers[id]
	return ok
}

// RemoveRouter withdraws a router from the cloud (a domain migrating to
// native multicast). Its neighbors drop everything learned from it.
func (c *Cloud) RemoveRouter(id topo.NodeID, now time.Time) {
	if _, ok := c.routers[id]; !ok {
		return
	}
	delete(c.routers, id)
	c.nbrGen++
	for _, ns := range c.routers {
		if _, had := ns.nbr[id]; had {
			c.neighborDown(ns, id, now)
		}
	}
}

// Originate adds locally originated prefixes with the given metric
// (0 = directly connected). Changes propagate at the next Tick.
func (c *Cloud) Originate(id topo.NodeID, now time.Time, metric int, prefixes ...addr.Prefix) {
	rs := c.routers[id]
	if rs == nil {
		return
	}
	for _, p := range prefixes {
		k := pack(p)
		if old, ok := rs.origin[k]; ok && old == metric {
			continue
		}
		rs.origin[k] = metric
		c.recompute(rs, k, now)
	}
}

// Withdraw removes locally originated prefixes.
func (c *Cloud) Withdraw(id topo.NodeID, now time.Time, prefixes ...addr.Prefix) {
	rs := c.routers[id]
	if rs == nil {
		return
	}
	for _, p := range prefixes {
		k := pack(p)
		if _, ok := rs.origin[k]; !ok {
			continue
		}
		delete(rs.origin, k)
		c.recompute(rs, k, now)
	}
}

// Origins returns the prefixes router id currently originates.
func (c *Cloud) Origins(id topo.NodeID) []addr.Prefix {
	rs := c.routers[id]
	if rs == nil {
		return nil
	}
	out := make([]addr.Prefix, 0, len(rs.origin))
	for k := range rs.origin {
		out = append(out, k.unpack())
	}
	addr.SortPrefixes(out)
	return out
}

// Restart models a router restart (mrouted crash/upgrade): the router
// flushes all learned state and bumps its generation ID, prompting
// neighbors to resync; neighbors also flush what they learned from it.
func (c *Cloud) Restart(id topo.NodeID, now time.Time) {
	rs := c.routers[id]
	if rs == nil {
		return
	}
	rs.genID++
	for k, r := range rs.table {
		if r.Via != SelfOrigin {
			delete(rs.table, k)
			c.stats.RouteChanges++
		}
	}
	rs.nbr = make(map[topo.NodeID]*neighborView)
	rs.pending = make(map[topo.NodeID]map[pkey]struct{})
	rs.holddown = make(map[pkey]time.Time)
	for _, ns := range c.routers {
		if ns.id == id {
			continue
		}
		if _, had := ns.nbr[id]; had {
			c.neighborDown(ns, id, now)
		}
	}
}

// Table returns the router's routing table sorted by prefix. The returned
// routes are copies.
func (c *Cloud) Table(id topo.NodeID) []Route {
	rs := c.routers[id]
	if rs == nil {
		return nil
	}
	out := make([]Route, 0, len(rs.table))
	for _, r := range rs.table {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// RouteCount returns the size of the router's routing table.
func (c *Cloud) RouteCount(id topo.NodeID) int {
	rs := c.routers[id]
	if rs == nil {
		return 0
	}
	return len(rs.table)
}

// Lookup returns the route for the longest matching prefix covering ip,
// and whether one exists. This is the RPF lookup used when building
// distribution trees.
func (c *Cloud) Lookup(id topo.NodeID, ip addr.IP) (Route, bool) {
	rs := c.routers[id]
	if rs == nil {
		return Route{}, false
	}
	var best *Route
	for _, r := range rs.table {
		if r.Prefix.Contains(ip) && (best == nil || r.Prefix.Len > best.Prefix.Len) {
			best = r
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Neighbors returns the adjacent cloud routers of id over up DVMRP links,
// sorted — what mrinfo reports for a router's multicast interfaces.
func (c *Cloud) Neighbors(id topo.NodeID) []topo.NodeID {
	rs := c.routers[id]
	if rs == nil {
		return nil
	}
	out := append([]topo.NodeID(nil), c.neighbors(rs)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// neighbors returns the adjacent cloud routers of rs over up DVMRP links,
// cached per neighbor-generation.
func (c *Cloud) neighbors(rs *routerState) []topo.NodeID {
	if rs.nbrGen == c.nbrGen && rs.nbrList != nil {
		return rs.nbrList
	}
	ids := c.topo.Neighbors(rs.id, c.filter)
	out := ids[:0]
	for _, id := range ids {
		if _, ok := c.routers[id]; ok {
			out = append(out, id)
		}
	}
	rs.nbrList = out
	rs.nbrGen = c.nbrGen
	return out
}

// advertisedRoute returns the metric rs advertises toward neighbor n for a
// route it holds, applying poison reverse. unreachable means "withdrawn".
func advertisedRoute(r *Route, n topo.NodeID) int {
	if r == nil || r.Metric >= Infinity || r.Via == n {
		return unreachable
	}
	return r.Metric
}

// markPending records that rs's advertisement of k changed for every
// current neighbor.
func (c *Cloud) markPending(rs *routerState, k pkey) {
	for _, n := range c.neighbors(rs) {
		set := rs.pending[n]
		if set == nil {
			set = make(map[pkey]struct{})
			rs.pending[n] = set
		}
		set[k] = struct{}{}
	}
}

// recompute re-evaluates rs's best route to k and, if it changed, updates
// the table and queues advertisements. Routes that worsen are placed in
// hold-down — deleted and not reinstalled until the hold-down expires —
// which breaks the count-to-infinity episodes a poisoned distance vector
// otherwise runs through meshy topologies.
func (c *Cloud) recompute(rs *routerState, k pkey, now time.Time) {
	best := unreachable
	via := SelfOrigin
	origin := false
	if m, ok := rs.origin[k]; ok {
		best, via, origin = m, SelfOrigin, true
	}
	// Locally originated routes bypass hold-down (re-origination after a
	// flap must take effect immediately).
	if !origin {
		if until, held := rs.holddown[k]; held {
			if now.Before(until) {
				if _, exists := rs.table[k]; exists {
					delete(rs.table, k)
					c.stats.RouteChanges++
					c.markPending(rs, k)
				}
				return
			}
			delete(rs.holddown, k)
		}
	} else {
		delete(rs.holddown, k)
	}
	for n, nv := range rs.nbr {
		adv, ok := nv.vector[k]
		if !ok {
			continue
		}
		m := adv + 1
		if m >= Infinity {
			continue
		}
		if m < best || (m == best && via != SelfOrigin && n < via) {
			best, via = m, n
		}
	}
	cur, exists := rs.table[k]
	switch {
	case best >= Infinity && exists:
		delete(rs.table, k)
		rs.holddown[k] = now.Add(c.holdDur)
		c.stats.RouteChanges++
		c.stats.HoldDowns++
		c.markPending(rs, k)
	case best < Infinity && !exists:
		rs.table[k] = &Route{Prefix: k.unpack(), Metric: best, Via: via, Since: now, LastChange: now}
		c.stats.RouteChanges++
		c.markPending(rs, k)
	case best < Infinity && exists && best > cur.Metric && !origin:
		// Worse news: hold the route down instead of chasing possibly
		// stale alternatives upward metric by metric.
		delete(rs.table, k)
		rs.holddown[k] = now.Add(c.holdDur)
		c.stats.RouteChanges++
		c.stats.HoldDowns++
		c.markPending(rs, k)
	case best < Infinity && exists && (cur.Metric != best || cur.Via != via):
		cur.Metric = best
		cur.Via = via
		cur.LastChange = now
		c.stats.RouteChanges++
		c.markPending(rs, k)
	}
}

// releaseHolddowns recomputes routes whose hold-down has expired.
func (c *Cloud) releaseHolddowns(rs *routerState, now time.Time) {
	for k, until := range rs.holddown {
		if !now.Before(until) {
			c.recompute(rs, k, now)
		}
	}
}

// neighborDown flushes everything rs learned from neighbor n.
func (c *Cloud) neighborDown(rs *routerState, n topo.NodeID, now time.Time) {
	nv := rs.nbr[n]
	if nv == nil {
		return
	}
	delete(rs.nbr, n)
	delete(rs.pending, n)
	for k := range nv.vector {
		c.recompute(rs, k, now)
	}
}

// applyAdv installs one advertised metric into the receiver's view of the
// sender and recomputes on change.
func (c *Cloud) applyAdv(receiver *routerState, nv *neighborView, k pkey, adv int, now time.Time) {
	old, had := nv.vector[k]
	if adv >= Infinity {
		if had {
			delete(nv.vector, k)
			c.recompute(receiver, k, now)
		}
		return
	}
	if !had || old != adv {
		nv.vector[k] = adv
		c.recompute(receiver, k, now)
	}
}

// deliverFull applies a full-table update from sender to receiver,
// flushing entries the sender no longer advertises.
func (c *Cloud) deliverFull(sender, receiver *routerState, now time.Time) {
	nv := receiver.nbr[sender.id]
	if nv == nil {
		nv = &neighborView{vector: make(map[pkey]int)}
		receiver.nbr[sender.id] = nv
	}
	nv.lastHeard = now
	for k, r := range sender.table {
		c.applyAdv(receiver, nv, k, advertisedRoute(r, receiver.id), now)
	}
	for k := range nv.vector {
		if _, ok := sender.table[k]; !ok {
			delete(nv.vector, k)
			c.recompute(receiver, k, now)
		}
	}
	nv.needFull = false
}

// deliverDelta applies a delta update covering the given prefixes.
func (c *Cloud) deliverDelta(sender, receiver *routerState, prefixes map[pkey]struct{}, now time.Time) {
	nv := receiver.nbr[sender.id]
	if nv == nil {
		return
	}
	for k := range prefixes {
		c.applyAdv(receiver, nv, k, advertisedRoute(sender.table[k], receiver.id), now)
	}
}

// Tick runs one protocol interval at virtual time now: neighbor expiry,
// one lossy periodic update exchange, then flash-update convergence
// rounds (also lossy; DVMRP does not retransmit flash updates).
func (c *Cloud) Tick(now time.Time) {
	c.tick++
	c.nbrGen++ // refresh neighbor caches against current link state

	// Stable iteration order over routers.
	ids := make([]topo.NodeID, 0, len(c.routers))
	for id := range c.routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// 1. Release expired hold-downs, expire silent neighbors, and drop
	// adjacencies over down links.
	for _, id := range ids {
		rs := c.routers[id]
		c.releaseHolddowns(rs, now)
		live := make(map[topo.NodeID]bool)
		for _, n := range c.neighbors(rs) {
			live[n] = true
		}
		for n, nv := range rs.nbr {
			if !live[n] {
				c.neighborDown(rs, n, now)
				continue
			}
			if !nv.lastHeard.IsZero() && now.Sub(nv.lastHeard) > c.NeighborTimeout {
				c.stats.NeighborExpiries++
				c.neighborDown(rs, n, now)
				// The neighbor will resync us on its next update.
				rs.nbr[n] = &neighborView{vector: make(map[pkey]int), needFull: true, lastHeard: now}
			}
		}
	}

	// 2. Periodic update exchange, subject to link loss.
	type dir struct{ from, to topo.NodeID }
	var order []dir
	lossOf := make(map[dir]float64)
	for _, id := range ids {
		for _, l := range c.topo.LinksOf(id) {
			if !l.Up || !c.filter(l) {
				continue
			}
			other := l.Other(id).Router
			if _, ok := c.routers[other]; !ok {
				continue
			}
			d := dir{from: id, to: other}
			order = append(order, d)
			lossOf[d] = l.LossProb
		}
	}
	for _, d := range order {
		sender, receiver := c.routers[d.from], c.routers[d.to]
		c.stats.UpdatesSent++
		nv := receiver.nbr[d.from]
		needFull := nv == nil || nv.needFull || nv.lastHeard.IsZero() ||
			(uint64(d.from)*31+uint64(d.to)*17+c.tick)%c.FullSyncEvery == 0
		if c.rng.Bool(lossOf[d]) {
			// DVMRP updates are unacknowledged: a lost update is simply
			// gone; staleness persists until the next full sync.
			c.stats.UpdatesLost++
			delete(sender.pending, d.to)
			continue
		}
		if needFull {
			c.stats.FullSyncs++
			c.deliverFull(sender, receiver, now)
			delete(sender.pending, d.to)
			continue
		}
		nv.lastHeard = now
		if pend := sender.pending[d.to]; len(pend) > 0 {
			c.deliverDelta(sender, receiver, pend, now)
			delete(sender.pending, d.to)
		}
	}

	// 3. Flash-update convergence: flush pending deltas until quiescent.
	// Flash updates cross lossy links too, and a lost one is not
	// retransmitted — the receiver stays stale until a full sync.
	for round := 0; round < 64; round++ {
		moved := false
		for _, id := range ids {
			rs := c.routers[id]
			if len(rs.pending) == 0 {
				continue
			}
			for _, n := range c.neighbors(rs) {
				pend := rs.pending[n]
				if len(pend) == 0 {
					continue
				}
				receiver := c.routers[n]
				if nv := receiver.nbr[id]; nv == nil || nv.lastHeard.IsZero() {
					// No adjacency yet; wait for the periodic sync.
					continue
				}
				delete(rs.pending, n)
				moved = true
				if c.rng.Bool(lossOf[dir{from: id, to: n}]) {
					c.stats.UpdatesLost++
					continue
				}
				c.deliverDelta(rs, receiver, pend, now)
			}
		}
		if !moved {
			break
		}
		c.stats.ConvergenceRounds++
	}
}
