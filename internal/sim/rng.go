package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with the distribution helpers the
// workload and fault models need. It wraps math/rand with an explicit seed
// so every experiment is reproducible. RNG is not safe for concurrent use;
// the simulator is single-threaded by design (parallelism lives in the
// monitoring pipeline, not the network model).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one. Subsystems fork their
// own streams so adding draws in one subsystem does not perturb another.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Range returns a uniform sample in [lo, hi).
func (g *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal sample where the underlying normal has
// parameters mu and sigma. Session lifetimes in the workload are
// log-normal: mostly short with a long heavy tail, matching the paper's
// observation of many short-lived experimental sessions.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Pareto returns a Pareto sample with scale xm and shape alpha.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson sample with the given rate lambda.
// It uses Knuth's method for small lambda and a normal approximation
// above 64, which is ample for arrival counts per monitoring cycle.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(g.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns samples in [0, n) with Zipf-like popularity skew s > 1.
// Group popularity is Zipfian: a handful of sessions (IETF broadcasts)
// attract most participants, which drives the paper's density results.
func (g *RNG) Zipf(s float64, n int) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	return int(z.Uint64())
}

// Pick returns a uniformly chosen index weighted by weights. Zero or
// negative total weight picks uniformly.
func (g *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices, calling swap as rand.Shuffle does.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
