// Package sim provides the discrete-time machinery shared by the simulated
// multicast infrastructure: a virtual clock, an event scheduler, and a
// deterministic random source with the distributions the workload and
// fault models draw from.
//
// The simulation is time-driven at monitoring-cycle granularity (the paper's
// Mantra polls routers every cycle) with an event queue layered on top for
// scripted occurrences such as the infrastructure transition or the
// route-injection fault of Figure 9. Determinism is a design requirement:
// every experiment is reproducible from a seed.
package sim

import (
	"fmt"
	"time"
)

// Epoch is the start of the paper's data collection: 1998-10-01 00:00 UTC.
var Epoch = time.Date(1998, time.October, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is invalid; use NewClock.
type Clock struct {
	now time.Time
}

// NewClock returns a clock starting at the given instant.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// NewEpochClock returns a clock starting at the paper's collection epoch.
func NewEpochClock() *Clock { return NewClock(Epoch) }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d. It panics on negative d: simulated
// time never flows backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: cannot advance clock by negative duration %v", d))
	}
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock to t. It panics if t is in the virtual past.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.Before(c.now) {
		panic(fmt.Sprintf("sim: cannot move clock backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }
