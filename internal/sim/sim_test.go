package sim

import (
	"math"
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewEpochClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("start = %v, want %v", c.Now(), Epoch)
	}
	c.Advance(30 * time.Minute)
	if got := c.Since(Epoch); got != 30*time.Minute {
		t.Errorf("Since = %v", got)
	}
}

func TestClockAdvanceToRejectsPast(t *testing.T) {
	c := NewEpochClock()
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo into the past should panic")
		}
	}()
	c.AdvanceTo(Epoch)
}

func TestClockAdvanceRejectsNegative(t *testing.T) {
	c := NewEpochClock()
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) should panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	var order []string
	s.After(2*time.Hour, "b", func(*Scheduler) { order = append(order, "b") })
	s.After(1*time.Hour, "a", func(*Scheduler) { order = append(order, "a") })
	s.After(3*time.Hour, "c", func(*Scheduler) { order = append(order, "c") })
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v", order)
	}
	if s.Fired() != 3 {
		t.Errorf("Fired = %d", s.Fired())
	}
}

func TestSchedulerTieBreakBySeq(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	var order []int
	at := Epoch.Add(time.Hour)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, "tie", func(*Scheduler) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestSchedulerClockFollowsEvents(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	var seen time.Time
	s.After(90*time.Minute, "probe", func(sc *Scheduler) { seen = sc.Now() })
	s.Run()
	if !seen.Equal(Epoch.Add(90 * time.Minute)) {
		t.Errorf("event saw clock %v", seen)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	fired := 0
	s.After(time.Hour, "in", func(*Scheduler) { fired++ })
	s.After(3*time.Hour, "out", func(*Scheduler) { fired++ })
	deadline := Epoch.Add(2 * time.Hour)
	s.RunUntil(deadline)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if !s.Now().Equal(deadline) {
		t.Errorf("clock = %v, want %v", s.Now(), deadline)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	fired := false
	e := s.After(time.Hour, "cancelled", func(*Scheduler) { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestSchedulerEvery(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	count := 0
	var cancel func()
	cancel = s.Every(time.Hour, "tick", func(*Scheduler) {
		count++
		if count == 5 {
			cancel()
		}
	})
	s.RunUntil(Epoch.Add(24 * time.Hour))
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestSchedulerEventsCanSchedule(t *testing.T) {
	s := NewScheduler(NewEpochClock())
	var times []time.Duration
	s.After(time.Hour, "outer", func(sc *Scheduler) {
		times = append(times, sc.Now().Sub(Epoch))
		sc.After(time.Hour, "inner", func(sc2 *Scheduler) {
			times = append(times, sc2.Now().Sub(Epoch))
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Hour || times[1] != 2*time.Hour {
		t.Errorf("times = %v", times)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Intn(1000) != c.Intn(1000) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	// Draws on g must not change what f1 yields.
	want := make([]float64, 10)
	probe := NewRNG(7)
	probeFork := probe.Fork()
	for i := range want {
		want[i] = probeFork.Float64()
	}
	g.Float64()
	g.Float64()
	for i := range want {
		if got := f1.Float64(); got != want[i] {
			t.Fatalf("fork stream perturbed at %d", i)
		}
	}
}

func TestRNGBool(t *testing.T) {
	g := NewRNG(1)
	n := 0
	for i := 0; i < 10000; i++ {
		if g.Bool(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Errorf("Bool(0.25) rate = %d/10000", n)
	}
	if g.Bool(0) {
		t.Error("Bool(0) must be false")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(2)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.3 {
		t.Errorf("Exp mean = %f, want ~5", mean)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		sum := 0
		const n = 5000
		for i := 0; i < n; i++ {
			sum += g.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.1+0.2 {
			t.Errorf("Poisson(%f) mean = %f", lambda, mean)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive rate should be 0")
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}

func TestRNGParetoTail(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if g.Pareto(2, 1.5) < 2 {
			t.Fatal("Pareto sample below scale")
		}
	}
}

func TestRNGZipfSkew(t *testing.T) {
	g := NewRNG(6)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[g.Zipf(1.5, 100)]++
	}
	if counts[0] <= counts[50]*5 {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if g.Zipf(1.5, 1) != 0 || g.Zipf(1.5, 0) != 0 {
		t.Error("degenerate Zipf should return 0")
	}
}

func TestRNGPick(t *testing.T) {
	g := NewRNG(8)
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		counts[g.Pick([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight item picked %d times", counts[2])
	}
	if counts[1] < counts[0] {
		t.Errorf("weights not respected: %v", counts)
	}
	// All-zero weights fall back to uniform.
	counts2 := make([]int, 2)
	for i := 0; i < 1000; i++ {
		counts2[g.Pick([]float64{0, 0})]++
	}
	if counts2[0] == 0 || counts2[1] == 0 {
		t.Errorf("uniform fallback broken: %v", counts2)
	}
}

func TestRNGRange(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Range(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Range out of bounds: %f", v)
		}
	}
}
