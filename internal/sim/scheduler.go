package sim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. The callback receives the scheduler so it
// can reschedule itself (for periodic timers).
type Event struct {
	At   time.Time
	Name string
	Fn   func(*Scheduler)

	index int // heap index
	seq   uint64
}

// eventHeap orders events by time, breaking ties by insertion order so that
// same-instant events run deterministically in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].At.Equal(h[j].At) {
		return h[i].At.Before(h[j].At)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler runs events against a virtual clock.
type Scheduler struct {
	clock *Clock
	queue eventHeap
	seq   uint64
	fired uint64
}

// NewScheduler returns a scheduler over clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.clock.Now() }

// At schedules fn to run at instant t. Scheduling in the past is an
// immediate-next event: it fires as soon as the scheduler runs, at the
// current clock reading (the clock never rewinds).
func (s *Scheduler) At(t time.Time, name string, fn func(*Scheduler)) *Event {
	e := &Event{At: t, Name: name, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func(*Scheduler)) *Event {
	return s.At(s.clock.Now().Add(d), name, fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned cancel function is invoked.
func (s *Scheduler) Every(d time.Duration, name string, fn func(*Scheduler)) (cancel func()) {
	stopped := false
	var tick func(*Scheduler)
	tick = func(sc *Scheduler) {
		if stopped {
			return
		}
		fn(sc)
		if !stopped {
			sc.After(d, name, tick)
		}
	}
	s.After(d, name, tick)
	return func() { stopped = true }
}

// Cancel removes a pending event. Cancelling an already-fired or already-
// cancelled event is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(s.queue) || s.queue[e.index] != e {
		return
	}
	heap.Remove(&s.queue, e.index)
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// RunUntil executes events in order until the queue holds nothing at or
// before deadline, then advances the clock to deadline. Events scheduled
// in the virtual past execute at the current clock reading.
func (s *Scheduler) RunUntil(deadline time.Time) {
	for len(s.queue) > 0 && !s.queue[0].At.After(deadline) {
		e := heap.Pop(&s.queue).(*Event)
		if e.At.After(s.clock.Now()) {
			s.clock.AdvanceTo(e.At)
		}
		s.fired++
		e.Fn(s)
	}
	if deadline.After(s.clock.Now()) {
		s.clock.AdvanceTo(deadline)
	}
}

// Run executes every queued event (including ones scheduled by event
// callbacks) and returns when the queue is empty. Use RunUntil for
// open-ended periodic schedules.
func (s *Scheduler) Run() {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.At.After(s.clock.Now()) {
			s.clock.AdvanceTo(e.At)
		}
		s.fired++
		e.Fn(s)
	}
}
