package igmp

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

var g1 = addr.MustParse("224.2.0.1")
var g2 = addr.MustParse("239.1.1.1")
var h1 = addr.MustParse("128.111.41.10")
var h2 = addr.MustParse("128.111.41.11")

func TestReportAndMembership(t *testing.T) {
	r := NewRouter(1, 0)
	now := sim.Epoch
	r.Report(h1, g1, now)
	r.Report(h2, g1, now)
	r.Report(h1, g2, now)
	if !r.HasMembers(g1) || !r.HasMembers(g2) {
		t.Fatal("membership missing")
	}
	if r.MemberCount(g1) != 2 || r.MemberCount(g2) != 1 {
		t.Errorf("counts = %d, %d", r.MemberCount(g1), r.MemberCount(g2))
	}
	groups := r.Groups()
	if len(groups) != 2 || groups[0] != g1 || groups[1] != g2 {
		t.Errorf("Groups = %v", groups)
	}
}

func TestReportIgnoresNonMulticast(t *testing.T) {
	r := NewRouter(1, 0)
	r.Report(h1, addr.MustParse("10.0.0.1"), sim.Epoch)
	r.Report(h1, addr.AllSystems, sim.Epoch) // link-local
	if len(r.Groups()) != 0 {
		t.Errorf("invalid groups accepted: %v", r.Groups())
	}
}

func TestLeave(t *testing.T) {
	r := NewRouter(1, 0)
	now := sim.Epoch
	r.Report(h1, g1, now)
	r.Report(h2, g1, now)
	r.Leave(h1, g1, now)
	if r.MemberCount(g1) != 1 {
		t.Errorf("count = %d", r.MemberCount(g1))
	}
	r.Leave(h2, g1, now)
	if r.HasMembers(g1) || len(r.Groups()) != 0 {
		t.Error("group should be empty and removed")
	}
	// Leaving a group never joined is a no-op.
	r.Leave(h1, g2, now)
}

func TestExpiry(t *testing.T) {
	r := NewRouter(1, time.Hour)
	now := sim.Epoch
	r.Report(h1, g1, now)
	r.Report(h2, g1, now.Add(30*time.Minute))
	removed := r.Expire(now.Add(70 * time.Minute))
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if r.MemberCount(g1) != 1 {
		t.Errorf("count = %d", r.MemberCount(g1))
	}
	members := r.Members(g1)
	if len(members) != 1 || members[0].Host != h2 {
		t.Errorf("members = %v", members)
	}
}

func TestReportRefreshPreventsExpiry(t *testing.T) {
	r := NewRouter(1, time.Hour)
	now := sim.Epoch
	r.Report(h1, g1, now)
	for i := 1; i <= 5; i++ {
		now = now.Add(45 * time.Minute)
		r.Report(h1, g1, now)
		if n := r.Expire(now); n != 0 {
			t.Fatalf("refreshed member expired at step %d", i)
		}
	}
	m := r.Members(g1)[0]
	if !m.Since.Equal(sim.Epoch) {
		t.Error("Since reset by refresh")
	}
	if !m.LastReport.Equal(now) {
		t.Error("LastReport not updated")
	}
}

func TestMembersSorted(t *testing.T) {
	r := NewRouter(1, 0)
	r.Report(h2, g1, sim.Epoch)
	r.Report(h1, g1, sim.Epoch)
	m := r.Members(g1)
	if len(m) != 2 || m[0].Host != h1 || m[1].Host != h2 {
		t.Errorf("Members = %v", m)
	}
	if r.Members(g2) != nil {
		t.Error("empty group should return nil")
	}
}

func TestID(t *testing.T) {
	if NewRouter(7, 0).ID() != 7 {
		t.Error("ID wrong")
	}
}
