// Package igmp implements the IGMPv2 group membership protocol at the
// router side: per-router membership databases driven by host reports and
// leaves, with report-refresh timeouts.
//
// Hosts on a router's leaf subnets report membership; the router ages
// entries out if reports stop. The membership database is what a
// sparse-mode router consults to decide whether it has downstream
// receivers — the filter whose deployment explains the participant drop
// the paper observes at FIXW after the transition.
package igmp

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/topo"
)

// DefaultTimeout is the membership expiry if no report refreshes an entry:
// IGMPv2's (robustness × query interval + max response) ≈ 260 s, scaled to
// the simulation's cycle granularity.
const DefaultTimeout = 75 * time.Minute

// Membership is one host's membership of one group as seen by a router.
type Membership struct {
	Group addr.IP
	Host  addr.IP
	// Since is when the first report arrived; LastReport the most recent.
	Since      time.Time
	LastReport time.Time
}

type groupState struct {
	members map[addr.IP]*Membership
}

// Router is the IGMP state of a single router. The zero value is not
// usable; use NewRouter.
type Router struct {
	id      topo.NodeID
	timeout time.Duration
	groups  map[addr.IP]*groupState
}

// NewRouter returns the IGMP database of router id. A non-positive timeout
// selects DefaultTimeout.
func NewRouter(id topo.NodeID, timeout time.Duration) *Router {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Router{id: id, timeout: timeout, groups: make(map[addr.IP]*groupState)}
}

// ID returns the router the database belongs to.
func (r *Router) ID() topo.NodeID { return r.id }

// Report processes a membership report from host for group, creating or
// refreshing the entry. Reporting a non-multicast group is ignored, as a
// real querier would discard it.
func (r *Router) Report(host, group addr.IP, now time.Time) {
	if !group.IsMulticast() || group.IsLinkLocalMulticast() {
		return
	}
	gs := r.groups[group]
	if gs == nil {
		gs = &groupState{members: make(map[addr.IP]*Membership)}
		r.groups[group] = gs
	}
	m := gs.members[host]
	if m == nil {
		gs.members[host] = &Membership{Group: group, Host: host, Since: now, LastReport: now}
		return
	}
	m.LastReport = now
}

// Leave processes a leave-group message from host.
func (r *Router) Leave(host, group addr.IP, now time.Time) {
	gs := r.groups[group]
	if gs == nil {
		return
	}
	delete(gs.members, host)
	if len(gs.members) == 0 {
		delete(r.groups, group)
	}
}

// Expire ages out members whose last report is older than the timeout and
// returns how many were removed.
func (r *Router) Expire(now time.Time) int {
	removed := 0
	for g, gs := range r.groups {
		for h, m := range gs.members {
			if now.Sub(m.LastReport) > r.timeout {
				delete(gs.members, h)
				removed++
			}
		}
		if len(gs.members) == 0 {
			delete(r.groups, g)
		}
	}
	return removed
}

// HasMembers reports whether any host is joined to group.
func (r *Router) HasMembers(group addr.IP) bool {
	gs := r.groups[group]
	return gs != nil && len(gs.members) > 0
}

// MemberCount returns the number of joined hosts for group.
func (r *Router) MemberCount(group addr.IP) int {
	gs := r.groups[group]
	if gs == nil {
		return 0
	}
	return len(gs.members)
}

// Groups returns the groups with at least one member, sorted.
func (r *Router) Groups() []addr.IP {
	out := make([]addr.IP, 0, len(r.groups))
	for g := range r.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the memberships of group sorted by host; copies.
func (r *Router) Members(group addr.IP) []Membership {
	gs := r.groups[group]
	if gs == nil {
		return nil
	}
	out := make([]Membership, 0, len(gs.members))
	for _, m := range gs.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
