package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core/output"
	"repro/internal/core/process"
)

// Panel is one sub-plot of a figure.
type Panel struct {
	Name   string
	Series *process.Series
}

// FigureResult is a regenerated paper artifact.
type FigureResult struct {
	ID     string
	Title  string
	Panels []Panel
	Notes  []string
}

// seriesOf resolves a figure's input series. The default path streams
// the full history out of the compressed store (a materialized range
// query — what the /query endpoint serves); PostHoc reads the live ring
// directly. With unbounded rings the two are byte-identical, and with
// bounded rings (-series-retain) only the streamed path still sees the
// whole run — which is why it is the default.
func (r *Runner) seriesOf(target string, m process.Metric) *process.Series {
	if r.PostHoc {
		return r.Mon.Series(target, m)
	}
	return r.Mon.MaterializedSeries(target, m)
}

func (r *Runner) panel(target string, m process.Metric, name string) Panel {
	return Panel{Name: name, Series: r.seriesOf(target, m)}
}

// Figure3 regenerates the four usage-count panels at FIXW.
func (r *Runner) Figure3() FigureResult {
	return FigureResult{
		ID:    "fig3",
		Title: "Session and Participant Statistics (Total Counts) at FIXW",
		Panels: []Panel{
			r.panel("fixw", process.MetricSessions, "sessions"),
			r.panel("fixw", process.MetricParticipants, "participants"),
			r.panel("fixw", process.MetricActiveSessions, "active-sessions"),
			r.panel("fixw", process.MetricSenders, "senders"),
		},
	}
}

// Figure4 regenerates the average session density plot.
func (r *Runner) Figure4() FigureResult {
	return FigureResult{
		ID:    "fig4",
		Title: "Session Densities at FIXW",
		Panels: []Panel{
			r.panel("fixw", process.MetricAvgDensity, "avg-density"),
			r.panel("fixw", process.MetricSessions, "sessions"),
			r.panel("fixw", process.MetricParticipants, "participants"),
		},
	}
}

// Figure5 regenerates the bandwidth plots.
func (r *Runner) Figure5() FigureResult {
	return FigureResult{
		ID:    "fig5",
		Title: "Bandwidth Usage at FIXW",
		Panels: []Panel{
			r.panel("fixw", process.MetricBandwidthKbps, "multicast-kbps"),
			r.panel("fixw", process.MetricSavedFactor, "saved-factor"),
		},
	}
}

// Figure6 regenerates the percentage-active plots.
func (r *Runner) Figure6() FigureResult {
	return FigureResult{
		ID:    "fig6",
		Title: "Percentage Active at FIXW",
		Panels: []Panel{
			r.panel("fixw", process.MetricActiveRatio, "sessions-active-ratio"),
			r.panel("fixw", process.MetricSenderRatio, "participants-sender-ratio"),
		},
	}
}

// Figure7 regenerates the DVMRP route-count plots at both vantages.
func (r *Runner) Figure7() FigureResult {
	return FigureResult{
		ID:    "fig7",
		Title: "DVMRP-Routes Statistics: UCSB (mrouted) and FIXW",
		Panels: []Panel{
			r.panel("ucsb-r1", process.MetricRoutes, "ucsb-routes"),
			r.panel("fixw", process.MetricRoutes, "fixw-routes"),
		},
	}
}

// Figure8 regenerates the long-term DVMRP decline at FIXW.
func (r *Runner) Figure8() FigureResult {
	return FigureResult{
		ID:    "fig8",
		Title: "DVMRP at FIXW: Long Term Results",
		Panels: []Panel{
			r.panel("fixw", process.MetricRoutes, "fixw-routes"),
		},
	}
}

// Figure9 regenerates the route-injection day at the UCSB router and
// reports the detector's verdicts.
func (r *Runner) Figure9() FigureResult {
	fr := FigureResult{
		ID:    "fig9",
		Title: "Unicast route injection into mrouted routes-table (UCSB)",
		Panels: []Panel{
			r.panel("ucsb-r1", process.MetricRoutes, "ucsb-routes"),
		},
	}
	for _, a := range r.Mon.Anomalies() {
		fr.Notes = append(fr.Notes, fmt.Sprintf("%s at %s: %s (%s)",
			a.Kind, a.At.UTC().Format("2006-01-02 15:04"), a.Target, a.Detail))
	}
	return fr
}

// WriteCSV emits the figure's series as aligned CSV: time, then one
// column per panel (empty where a panel lacks a point at that time).
func (fr FigureResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time"); err != nil {
		return err
	}
	for _, p := range fr.Panels {
		fmt.Fprintf(w, ",%s", p.Name)
	}
	fmt.Fprintln(w)
	// Union of timestamps, assuming panels share the sampling grid.
	var base *process.Series
	for _, p := range fr.Panels {
		if p.Series != nil && (base == nil || p.Series.Len() > base.Len()) {
			base = p.Series
		}
	}
	if base == nil {
		return nil
	}
	for i, t := range base.Times {
		fmt.Fprintf(w, "%s", t.UTC().Format(time.RFC3339))
		for _, p := range fr.Panels {
			if p.Series != nil && i < p.Series.Len() && p.Series.Times[i].Equal(t) {
				fmt.Fprintf(w, ",%g", p.Series.Values[i])
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderASCII draws every panel as an ASCII chart.
func (fr FigureResult) RenderASCII(w io.Writer, width, height int) error {
	fmt.Fprintf(w, "== %s: %s ==\n", fr.ID, fr.Title)
	for _, p := range fr.Panels {
		if p.Series == nil {
			fmt.Fprintf(w, "%s: no data\n", p.Name)
			continue
		}
		g := output.NewGraph(p.Name, p.Name)
		g.Overlay(p.Name, p.Series)
		if err := g.RenderASCII(w, width, height); err != nil {
			return err
		}
	}
	for _, n := range fr.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// ShapeCheck is one paper-vs-measured comparison.
type ShapeCheck struct {
	Name string
	Want string
	Got  string
	Pass bool
}

// ShapeReport collects the comparisons for EXPERIMENTS.md and tests.
type ShapeReport struct {
	Checks []ShapeCheck
}

// Pass reports whether every check passed.
func (s ShapeReport) Pass() bool {
	for _, c := range s.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (s ShapeReport) String() string {
	out := ""
	for _, c := range s.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		out += fmt.Sprintf("[%s] %-38s want %-28s got %s\n", mark, c.Name, c.Want, c.Got)
	}
	return out
}

func (s *ShapeReport) add(name, want, got string, pass bool) {
	s.Checks = append(s.Checks, ShapeCheck{Name: name, Want: want, Got: got, Pass: pass})
}

// variance of the series values.
func varianceOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := 0.0
	for _, v := range vals {
		m += v
	}
	m /= float64(len(vals))
	s := 0.0
	for _, v := range vals {
		s += (v - m) * (v - m)
	}
	return s / float64(len(vals))
}

// UsageShape evaluates the paper's §IV-B qualitative findings on a
// completed usage run (Figures 3–6).
func (r *Runner) UsageShape() ShapeReport {
	var rep ShapeReport
	// Compare the settled regimes: before the transition began versus
	// after it completed (the migration period itself carries the
	// declining trend and belongs to neither).
	mid := r.Cfg.TransitionStart
	if mid.IsZero() {
		mid = r.Cfg.Start.Add(r.Cfg.End.Sub(r.Cfg.Start) / 2)
	}
	done := r.Cfg.TransitionEnd
	if done.IsZero() {
		done = mid
	}
	settled := func(s *process.Series) (before, after float64) {
		var bs, as float64
		var bn, an int
		for i, tm := range s.Times {
			switch {
			case tm.Before(mid):
				bs += s.Values[i]
				bn++
			case !tm.Before(done):
				as += s.Values[i]
				an++
			}
		}
		if bn > 0 {
			before = bs / float64(bn)
		}
		if an > 0 {
			after = as / float64(an)
		}
		return before, after
	}

	part := r.seriesOf("fixw", process.MetricParticipants)
	pb, pa := settled(part)
	rep.add("participants drop after transition",
		"post-transition mean well below pre", fmt.Sprintf("%.0f -> %.0f", pb, pa),
		pa < pb*0.8)

	snd := r.seriesOf("fixw", process.MetricSenders)
	sb, sa := settled(snd)
	rep.add("senders remain comparable",
		"post within 2x band of pre", fmt.Sprintf("%.1f -> %.1f", sb, sa),
		sa > sb*0.5 && sa < sb*2.0)

	ratio := r.seriesOf("fixw", process.MetricSenderRatio)
	rb, ra := settled(ratio)
	rep.add("sender/participant ratio rises",
		"ratio increases after transition", fmt.Sprintf("%.3f -> %.3f", rb, ra),
		ra > rb*1.1)

	// Session availability stabilizes: sparse mode filters the bursty
	// single-member sessions out of FIXW's view, so the session count's
	// relative dispersion (coefficient of variation) shrinks.
	sess := r.seriesOf("fixw", process.MetricSessions)
	var pre, post []float64
	for i, tm := range sess.Times {
		switch {
		case tm.Before(mid):
			pre = append(pre, sess.Values[i])
		case !tm.Before(done):
			post = append(post, sess.Values[i])
		}
	}
	cv := func(vals []float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		m := 0.0
		for _, v := range vals {
			m += v
		}
		m /= float64(len(vals))
		if m == 0 {
			return 0
		}
		return math.Sqrt(varianceOf(vals)) / m
	}
	cb, ca := cv(pre), cv(post)
	rep.add("session availability stabilizes",
		"session-count CV shrinks", fmt.Sprintf("cv %.2f -> %.2f", cb, ca),
		ca < cb)

	bw := r.seriesOf("fixw", process.MetricBandwidthKbps)
	mean, median, stddev, _, _ := bw.Stats()
	rep.add("bandwidth magnitude (Fig 5 left)",
		"mean ~4000 kbps, high dispersion",
		fmt.Sprintf("mean %.0f median %.0f sd %.0f", mean, median, stddev),
		mean > 1500 && mean < 12000 && stddev > mean/4)

	saved := r.seriesOf("fixw", process.MetricSavedFactor)
	sm, _, _, _, _ := saved.Stats()
	rep.add("bandwidth saved (Fig 5 right)",
		"unicast equivalent a multiple >1 of multicast",
		fmt.Sprintf("mean saved factor %.1fx", sm),
		sm > 1.5)

	dens := r.seriesOf("fixw", process.MetricAvgDensity)
	dcorr := spikeAnticorrelation(r.seriesOf("fixw", process.MetricSessions), dens)
	rep.add("session spikes dip density (Fig 4)",
		"session-count spikes coincide with density dips",
		fmt.Sprintf("spike/dip agreement %.0f%%", dcorr*100),
		dcorr > 0.6)

	return rep
}

// spikeAnticorrelation finds large jumps in a and reports the fraction
// where b moved the other way.
func spikeAnticorrelation(a, b *process.Series) float64 {
	if a == nil || b == nil || a.Len() != b.Len() || a.Len() < 3 {
		return 0
	}
	_, _, sd, _, _ := a.Stats()
	spikes, agree := 0, 0
	for i := 1; i < a.Len(); i++ {
		da := a.Values[i] - a.Values[i-1]
		if da > sd { // a spike up in sessions
			spikes++
			if b.Values[i] < b.Values[i-1] {
				agree++
			}
		}
	}
	if spikes == 0 {
		return 0
	}
	return float64(agree) / float64(spikes)
}

// RouteShape evaluates the Figure 7 findings on a completed run.
func (r *Runner) RouteShape() ShapeReport {
	var rep ShapeReport
	fixw := r.seriesOf("fixw", process.MetricRoutes)
	ucsb := r.seriesOf("ucsb-r1", process.MetricRoutes)

	_, _, sdF, minF, maxF := fixw.Stats()
	rep.add("route counts unstable (Fig 7)",
		"visible variation over time",
		fmt.Sprintf("fixw min %.0f max %.0f sd %.0f", minF, maxF, sdF),
		maxF > minF && sdF > 0)

	diverge := 0
	n := fixw.Len()
	if ucsb.Len() < n {
		n = ucsb.Len()
	}
	for i := 0; i < n; i++ {
		if fixw.Values[i] != ucsb.Values[i] {
			diverge++
		}
	}
	rep.add("views inconsistent across routers",
		"tables differ at a meaningful share of samples",
		fmt.Sprintf("%d/%d samples differ", diverge, n),
		n > 0 && float64(diverge) > 0.02*float64(n))

	churn := r.seriesOf("fixw", process.MetricRouteChurn)
	cm, _, _, _, _ := churn.Stats()
	rep.add("routes churn continuously",
		"non-zero mean churn per cycle",
		fmt.Sprintf("mean churn %.1f prefixes/cycle", cm),
		cm > 0)
	return rep
}

// DeclineShape evaluates the Figure 8 finding: DVMRP route count at FIXW
// falls to near zero by the end of the long-term window.
func (r *Runner) DeclineShape() ShapeReport {
	var rep ShapeReport
	s := r.seriesOf("fixw", process.MetricRoutes)
	if s == nil || s.Len() < 10 {
		rep.add("long-term decline", "data present", "series too short", false)
		return rep
	}
	peak := 0.0
	for _, v := range s.Values {
		if v > peak {
			peak = v
		}
	}
	tail := s.Values[len(s.Values)-1]
	rep.add("DVMRP declines to near zero (Fig 8)",
		"final count < 15% of peak",
		fmt.Sprintf("peak %.0f final %.0f", peak, tail),
		tail < peak*0.15)
	// Monotone-ish decline: last quarter mean below first quarter mean.
	q := s.Len() / 4
	first, last := 0.0, 0.0
	for i := 0; i < q; i++ {
		first += s.Values[i]
		last += s.Values[s.Len()-1-i]
	}
	rep.add("decline direction",
		"late mean far below early mean",
		fmt.Sprintf("%.0f -> %.0f", first/float64(q), last/float64(q)),
		last < first*0.5)
	return rep
}

// InjectionShape evaluates the Figure 9 finding on a completed injection
// run: a sharp step at the injection time, flagged by the detector.
func (r *Runner) InjectionShape() ShapeReport {
	var rep ShapeReport
	s := r.seriesOf("ucsb-r1", process.MetricRoutes)
	if s == nil || s.Len() == 0 {
		rep.add("injection visible", "data present", "no series", false)
		return rep
	}
	base, peak := math.Inf(1), 0.0
	for _, v := range s.Values {
		if v < base {
			base = v
		}
		if v > peak {
			peak = v
		}
	}
	rep.add("sharp spike visible (Fig 9)",
		"peak exceeds baseline by the injected amount",
		fmt.Sprintf("base %.0f peak %.0f (injected %d)", base, peak, r.Cfg.InjectCount),
		peak >= base+float64(r.Cfg.InjectCount)*3/4)

	detected := false
	var when time.Time
	for _, a := range r.Mon.Anomalies() {
		if a.Kind == "route-injection" && a.Target == "ucsb-r1" {
			detected = true
			when = a.At
		}
	}
	got := "not detected"
	pass := false
	if detected {
		diff := when.Sub(r.Cfg.InjectAt)
		if diff < 0 {
			diff = -diff
		}
		got = fmt.Sprintf("detected at %s", when.UTC().Format("15:04"))
		pass = diff <= 2*r.Cfg.Cycle
	}
	rep.add("detector flags the incident",
		fmt.Sprintf("anomaly within 2 cycles of %s", r.Cfg.InjectAt.UTC().Format("15:04")),
		got, pass)
	return rep
}
