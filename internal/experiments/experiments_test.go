package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core/process"
)

// runQuickUsage runs the Quick usage scenario once per test binary.
var quickUsage *Runner

func usageRunner(t *testing.T) *Runner {
	t.Helper()
	if quickUsage != nil {
		return quickUsage
	}
	r, err := NewRunner(UsageConfig(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	quickUsage = r
	return r
}

func TestUsageScenarioRuns(t *testing.T) {
	r := usageRunner(t)
	if len(r.Stats["fixw"]) == 0 || len(r.Stats["ucsb-r1"]) == 0 {
		t.Fatal("no stats collected")
	}
	s := r.Mon.Series("fixw", process.MetricSessions)
	if s == nil || s.Len() != len(r.Stats["fixw"]) {
		t.Errorf("series length mismatch")
	}
}

func TestUsageShapeQuick(t *testing.T) {
	r := usageRunner(t)
	rep := r.UsageShape()
	t.Logf("\n%s", rep)
	// At Quick scale (five domains, every one transitioning) the robust
	// checks must hold; ratio-rise and stabilization claims need the
	// Standard/Full mixed-world window and are verified by cmd/figures
	// runs recorded in EXPERIMENTS.md.
	for _, c := range rep.Checks {
		switch c.Name {
		case "participants drop after transition",
			"sender/participant ratio rises",
			"session availability stabilizes",
			"bandwidth saved (Fig 5 right)",
			"bandwidth magnitude (Fig 5 left)":
			if !c.Pass {
				t.Errorf("check failed: %+v", c)
			}
		}
	}
}

func TestRouteShapeQuick(t *testing.T) {
	r := usageRunner(t)
	rep := r.RouteShape()
	t.Logf("\n%s", rep)
	if !rep.Pass() {
		t.Errorf("route shape checks failed:\n%s", rep)
	}
}

func TestFiguresProduceData(t *testing.T) {
	r := usageRunner(t)
	for _, fig := range []FigureResult{r.Figure3(), r.Figure4(), r.Figure5(), r.Figure6(), r.Figure7()} {
		for _, p := range fig.Panels {
			if p.Series == nil || p.Series.Len() == 0 {
				t.Errorf("%s panel %s empty", fig.ID, p.Name)
			}
		}
		var csv, art strings.Builder
		if err := fig.WriteCSV(&csv); err != nil {
			t.Fatalf("%s csv: %v", fig.ID, err)
		}
		if !strings.HasPrefix(csv.String(), "time,") {
			t.Errorf("%s csv header: %q", fig.ID, csv.String()[:20])
		}
		if strings.Count(csv.String(), "\n") < 10 {
			t.Errorf("%s csv too short", fig.ID)
		}
		if err := fig.RenderASCII(&art, 60, 10); err != nil {
			t.Fatalf("%s ascii: %v", fig.ID, err)
		}
		if !strings.Contains(art.String(), fig.ID) {
			t.Errorf("%s ascii missing header", fig.ID)
		}
	}
}

func TestInjectionScenario(t *testing.T) {
	r, err := NewRunner(InjectionConfig(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	rep := r.InjectionShape()
	t.Logf("\n%s", rep)
	if !rep.Pass() {
		t.Errorf("injection shape failed:\n%s", rep)
	}
	fig := r.Figure9()
	if len(fig.Notes) == 0 {
		t.Error("figure 9 reports no anomalies")
	}
}

func TestLongTermScenario(t *testing.T) {
	r, err := NewRunner(LongTermConfig(Quick))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	rep := r.DeclineShape()
	t.Logf("\n%s", rep)
	if !rep.Pass() {
		t.Errorf("decline shape failed:\n%s", rep)
	}
}

func TestRunnerProgressCallback(t *testing.T) {
	cfg := InjectionConfig(Quick)
	cfg.End = cfg.Start.Add(5 * cfg.Cycle)
	cfg.InjectAt = cfg.Start.Add(2 * cfg.Cycle)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := r.Run(func(i int, _ time.Time) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("progress calls = %d, want 5", calls)
	}
}

func TestMonitorFromDelaysCollection(t *testing.T) {
	cfg := InjectionConfig(Quick)
	cfg.End = cfg.Start.Add(10 * cfg.Cycle)
	cfg.InjectAt = cfg.Start.Add(3 * cfg.Cycle)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.SetMonitorFrom(cfg.Start.Add(6 * cfg.Cycle))
	if err := r.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Stats["fixw"]); got != 5 {
		t.Errorf("monitored cycles = %d, want 5", got)
	}
}
