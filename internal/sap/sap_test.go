package sap

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

var g1 = addr.MustParse("224.2.0.1")
var g2 = addr.MustParse("224.2.0.2")
var h1 = addr.MustParse("10.0.0.1")

func TestHearAndExpire(t *testing.T) {
	c := NewCache(time.Hour)
	now := sim.Epoch
	c.Hear(g1, h1, "IETF channel 1", now)
	c.Hear(g2, h1, "test", now)
	if c.Len() != 2 || !c.Has(g1) {
		t.Fatalf("len=%d", c.Len())
	}
	// Refresh g1 only; g2 expires.
	now = now.Add(45 * time.Minute)
	c.Hear(g1, h1, "IETF channel 1", now)
	now = now.Add(30 * time.Minute)
	if n := c.Expire(now); n != 1 {
		t.Errorf("expired = %d", n)
	}
	if !c.Has(g1) || c.Has(g2) {
		t.Error("wrong entry expired")
	}
	e := c.Entries()[0]
	if !e.First.Equal(sim.Epoch) {
		t.Error("First reset by refresh")
	}
	if e.Description != "IETF channel 1" {
		t.Errorf("description %q", e.Description)
	}
}

func TestEntriesSorted(t *testing.T) {
	c := NewCache(0)
	now := sim.Epoch
	c.Hear(g2, h1, "b", now)
	c.Hear(g1, h1, "a", now)
	es := c.Entries()
	if len(es) != 2 || es[0].Group != g1 {
		t.Errorf("order: %v", es)
	}
}

func TestReachability(t *testing.T) {
	now := sim.Epoch
	a, b := NewCache(0), NewCache(0)
	a.Hear(g1, h1, "both", now)
	b.Hear(g1, h1, "both", now)
	a.Hear(g2, h1, "only-a", now)
	r := Reachability(a, b)
	if r[g1] != 1.0 {
		t.Errorf("g1 reachability = %f", r[g1])
	}
	if r[g2] != 0.5 {
		t.Errorf("g2 reachability = %f", r[g2])
	}
	if Reachability() != nil {
		t.Error("no caches should give nil")
	}
}
