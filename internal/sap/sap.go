// Package sap implements the Session Announcement Protocol mechanics the
// paper's application-layer tools relied on (§II-C): sessions are
// advertised by periodic announcements on a well-known group, listeners
// cache them (the sdr cache), and entries expire when announcements stop
// arriving — which happens both when a session ends and when multicast
// connectivity from the announcer breaks. sdr-monitor measured global
// reachability by comparing what different listeners' caches held; the
// cache here supports exactly that comparison.
package sap

import (
	"sort"
	"time"

	"repro/internal/addr"
)

// DefaultLifetime is how long a cached announcement survives without
// being refreshed. sdr used roughly an hour; scaled here to the
// simulation's cycle granularity.
const DefaultLifetime = 90 * time.Minute

// Announcement describes one advertised session.
type Announcement struct {
	// Group is the advertised session's multicast group.
	Group addr.IP
	// Origin is the announcing host.
	Origin addr.IP
	// Description is the session name payload.
	Description string
	// First and LastHeard bound the cache entry's life.
	First, LastHeard time.Time
}

// Cache is one listener's announcement cache.
type Cache struct {
	// Lifetime is the expiry horizon; non-positive selects the default.
	Lifetime time.Duration
	entries  map[addr.IP]*Announcement
}

// NewCache returns an empty cache.
func NewCache(lifetime time.Duration) *Cache {
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	return &Cache{Lifetime: lifetime, entries: make(map[addr.IP]*Announcement)}
}

// Hear processes one received announcement at the given instant.
func (c *Cache) Hear(group, origin addr.IP, description string, now time.Time) {
	e := c.entries[group]
	if e == nil {
		c.entries[group] = &Announcement{
			Group: group, Origin: origin, Description: description,
			First: now, LastHeard: now,
		}
		return
	}
	e.Origin = origin
	e.Description = description
	e.LastHeard = now
}

// Expire drops entries not refreshed within the lifetime and returns how
// many were removed.
func (c *Cache) Expire(now time.Time) int {
	n := 0
	for g, e := range c.entries {
		if now.Sub(e.LastHeard) > c.Lifetime {
			delete(c.entries, g)
			n++
		}
	}
	return n
}

// Len returns the number of cached announcements.
func (c *Cache) Len() int { return len(c.entries) }

// Has reports whether group is currently cached.
func (c *Cache) Has(group addr.IP) bool {
	_, ok := c.entries[group]
	return ok
}

// Entries returns the cached announcements sorted by group.
func (c *Cache) Entries() []Announcement {
	out := make([]Announcement, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// Reachability compares listeners' caches the way sdr-monitor did: for
// each session any listener knows, the fraction of listeners that
// currently hold it. A fraction below 1 for a live session means some
// part of the infrastructure is not receiving its announcements.
func Reachability(caches ...*Cache) map[addr.IP]float64 {
	if len(caches) == 0 {
		return nil
	}
	counts := make(map[addr.IP]int)
	for _, c := range caches {
		for g := range c.entries {
			counts[g]++
		}
	}
	out := make(map[addr.IP]float64, len(counts))
	for g, n := range counts {
		out[g] = float64(n) / float64(len(caches))
	}
	return out
}
