package topo

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// randomTopo builds a random connected topology of n routers.
func randomTopo(rng *rand.Rand, n int) (*Topology, []NodeID) {
	t := New()
	t.AddDomain("d", 1, ModeDVMRP, nil, false)
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddRouter(fmt.Sprintf("r%d", i), "d", ModeDVMRP, addr.IP(i+1)).ID
	}
	for i := 1; i < n; i++ {
		t.Connect(ids[i], ids[rng.Intn(i)], 0, 0, false, 0, 0)
	}
	for k := 0; k < rng.Intn(n); k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			t.Connect(ids[i], ids[j], 0, 0, false, 0, 0)
		}
	}
	return t, ids
}

// TestPathPropertyValidAndShortest verifies that Path returns a walkable
// link sequence whose length equals the BFS distance, on random graphs.
func TestPathPropertyValidAndShortest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		tp, ids := randomTopo(rng, n)
		src := ids[rng.Intn(n)]
		dst := ids[rng.Intn(n)]
		path := tp.Path(src, dst, nil)
		dist, _ := tp.BFS(src, nil)
		want, reachable := dist[dst]
		if !reachable {
			return path == nil
		}
		if path == nil || len(path) != want+1 {
			return false
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		// Consecutive hops must share an up link.
		for i := 0; i+1 < len(path); i++ {
			adjacent := false
			for _, l := range tp.LinksOf(path[i]) {
				if l.Up && l.Other(path[i]).Router == path[i+1] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSpanningTreePropertyCoversComponent verifies that every reachable
// node's tree link leads strictly closer to the root.
func TestSpanningTreePropertyCoversComponent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		tp, ids := randomTopo(rng, n)
		root := ids[rng.Intn(n)]
		tree := tp.SpanningTree(root, nil)
		dist, _ := tp.BFS(root, nil)
		for id, d := range dist {
			if id == root {
				if tree[root] != nil {
					return false
				}
				continue
			}
			l, ok := tree[id]
			if !ok || l == nil {
				return false
			}
			parent := l.Other(id).Router
			if dist[parent] != d-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
