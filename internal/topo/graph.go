package topo

// LinkFilter selects which links a graph traversal may use. A nil filter
// accepts every up link.
type LinkFilter func(*Link) bool

// DVMRPLinks accepts links usable by the DVMRP cloud: every up link whose
// both endpoints speak DVMRP (pure DVMRP routers or borders).
func (t *Topology) DVMRPLinks() LinkFilter {
	return func(l *Link) bool {
		a, b := t.Router(l.A.Router), t.Router(l.B.Router)
		return speaksDVMRP(a) && speaksDVMRP(b)
	}
}

// NativeLinks accepts non-tunnel links between PIM-capable routers.
func (t *Topology) NativeLinks() LinkFilter {
	return func(l *Link) bool {
		if l.Tunnel {
			return false
		}
		a, b := t.Router(l.A.Router), t.Router(l.B.Router)
		return speaksPIM(a) && speaksPIM(b)
	}
}

// DenseLinks accepts links usable by flood-and-prune forwarding: both
// endpoints run a dense-mode data plane (DVMRP, PIM-DM, or a border).
// This is broader than DVMRPLinks: a PIM-DM campus segment floods data
// but exchanges no DVMRP routes.
func (t *Topology) DenseLinks() LinkFilter {
	return func(l *Link) bool {
		a, b := t.Router(l.A.Router), t.Router(l.B.Router)
		return speaksDense(a) && speaksDense(b)
	}
}

func speaksDVMRP(r *Router) bool {
	return r != nil && (r.Mode == ModeDVMRP || r.Mode == ModeBorder)
}

func speaksDense(r *Router) bool {
	return r != nil && (r.Mode == ModeDVMRP || r.Mode == ModeBorder || r.Mode == ModePIMDM)
}

func speaksPIM(r *Router) bool {
	return r != nil && (r.Mode == ModePIMSM || r.Mode == ModeBorder)
}

// BFS computes hop counts and predecessor links from src over up links
// accepted by filter. Unreached routers are absent from the returned maps.
func (t *Topology) BFS(src NodeID, filter LinkFilter) (dist map[NodeID]int, prev map[NodeID]*Link) {
	dist = map[NodeID]int{src: 0}
	prev = map[NodeID]*Link{}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range t.LinksOf(cur) {
			if !l.Up {
				continue
			}
			if filter != nil && !filter(l) {
				continue
			}
			nxt := l.Other(cur).Router
			if _, seen := dist[nxt]; seen {
				continue
			}
			dist[nxt] = dist[cur] + 1
			prev[nxt] = l
			queue = append(queue, nxt)
		}
	}
	return dist, prev
}

// Path returns the router sequence from src to dst inclusive over links
// accepted by filter, or nil if dst is unreachable. The path is a shortest
// path by hop count, deterministic for a given topology.
func (t *Topology) Path(src, dst NodeID, filter LinkFilter) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	_, prev := t.BFS(src, filter)
	if _, ok := prev[dst]; !ok {
		return nil
	}
	var rev []NodeID
	for cur := dst; cur != src; {
		rev = append(rev, cur)
		l := prev[cur]
		cur = l.Other(cur).Router
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable returns the set of routers reachable from src over links
// accepted by filter, including src itself.
func (t *Topology) Reachable(src NodeID, filter LinkFilter) map[NodeID]bool {
	dist, _ := t.BFS(src, filter)
	out := make(map[NodeID]bool, len(dist))
	for id := range dist {
		out[id] = true
	}
	return out
}

// SpanningTree returns, for every router reachable from root, the link
// toward root (the RPF link of a flood from root). Root maps to nil.
func (t *Topology) SpanningTree(root NodeID, filter LinkFilter) map[NodeID]*Link {
	_, prev := t.BFS(root, filter)
	prev[root] = nil
	return prev
}
