// Package topo models the simulated multicast internetwork: administrative
// domains, routers, point-to-point links and DVMRP tunnels.
//
// The topology is pure structure — protocol engines (internal/dvmrp,
// internal/pim, ...) and the network stepper (internal/netsim) attach state
// to it. The shapes it can build mirror the paper's two collection
// vantages: a campus network (the UCSB mrouted) and a multi-domain
// internetwork whose exchange point (FIXW) transitions from MBone core
// router to DVMRP border router.
package topo

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// NodeID identifies a router within a topology.
type NodeID int

// Mode is the routing mode a router or domain operates in.
type Mode int

// Routing modes. A Border router speaks DVMRP on tunnel interfaces and
// PIM/MBGP on native ones — the role FIXW assumed after the transition.
// ModePIMDM is campus-interior dense mode: flood-and-prune forwarding
// like DVMRP but with no routing protocol of its own (PIM-DM RPFs off
// the unicast table), so such routers carry no DVMRP route table — a
// monitoring blind spot of the era.
const (
	ModeDVMRP Mode = iota
	ModePIMSM
	ModeBorder
	ModePIMDM
)

// String returns the conventional mode name.
func (m Mode) String() string {
	switch m {
	case ModeDVMRP:
		return "dvmrp"
	case ModePIMSM:
		return "pim-sm"
	case ModeBorder:
		return "border"
	case ModePIMDM:
		return "pim-dm"
	}
	return "unknown"
}

// Router is one multicast router.
type Router struct {
	ID     NodeID
	Name   string
	Domain string
	Mode   Mode
	// Loopback is the router identifier used in protocol messages.
	Loopback addr.IP
	// RP marks the rendezvous point of a sparse-mode domain.
	RP bool
	// Core marks exchange-point routers that form the interdomain
	// transit mesh (FIXW and its native successors).
	Core bool
	// LeafPrefixes are directly attached host subnets.
	LeafPrefixes []addr.Prefix
}

// LinkEnd names one side of a link.
type LinkEnd struct {
	Router NodeID
	// Addr is the interface address on this end.
	Addr addr.IP
}

// Link is a point-to-point link or DVMRP tunnel between two routers.
type Link struct {
	ID int
	A  LinkEnd
	B  LinkEnd
	// Tunnel marks a DVMRP tunnel (a virtual link riding unicast).
	Tunnel bool
	// Up is the administrative/operational state.
	Up bool
	// LossProb is the probability that one control message traversing
	// the link is lost. Tunnels riding the congested 1998 Internet have
	// materially higher loss than native links, which is one source of
	// the route-table inconsistency the paper reports.
	LossProb float64
	// CapacityKbps bounds data bandwidth across the link.
	CapacityKbps float64
}

// Other returns the far end of the link as seen from r.
// It panics if r is not attached to the link.
func (l *Link) Other(r NodeID) LinkEnd {
	switch r {
	case l.A.Router:
		return l.B
	case l.B.Router:
		return l.A
	}
	panic(fmt.Sprintf("topo: router %d not on link %d", r, l.ID))
}

// Has reports whether r is one of the link's endpoints.
func (l *Link) Has(r NodeID) bool {
	return l.A.Router == r || l.B.Router == r
}

// Domain is an administrative domain (an AS running one routing mode).
type Domain struct {
	Name string
	ASN  uint16
	Mode Mode
	// Prefixes is the address space the domain originates.
	Prefixes []addr.Prefix
	// Aggregate controls whether the border advertises Prefixes
	// aggregated; domains differ, which diverges route tables.
	Aggregate bool
	// Routers lists the domain's routers; Routers[0] is the border.
	Routers []NodeID
}

// Border returns the domain's border router ID.
func (d *Domain) Border() NodeID { return d.Routers[0] }

// Topology is the complete internetwork.
type Topology struct {
	routers map[NodeID]*Router
	links   []*Link
	domains map[string]*Domain
	// adjacency caches, invalidated on mutation
	adj   map[NodeID][]*Link
	next  NodeID
	names map[string]NodeID
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		routers: make(map[NodeID]*Router),
		domains: make(map[string]*Domain),
		names:   make(map[string]NodeID),
	}
}

// AddDomain registers a domain. The domain starts with no routers.
func (t *Topology) AddDomain(name string, asn uint16, mode Mode, prefixes []addr.Prefix, aggregate bool) *Domain {
	if _, dup := t.domains[name]; dup {
		panic(fmt.Sprintf("topo: duplicate domain %q", name))
	}
	d := &Domain{Name: name, ASN: asn, Mode: mode, Prefixes: prefixes, Aggregate: aggregate}
	t.domains[name] = d
	return d
}

// AddRouter creates a router in domain (which must exist, except for the
// empty domain used by exchange points) and returns it.
func (t *Topology) AddRouter(name, domain string, mode Mode, loopback addr.IP) *Router {
	if _, dup := t.names[name]; dup {
		panic(fmt.Sprintf("topo: duplicate router %q", name))
	}
	r := &Router{ID: t.next, Name: name, Domain: domain, Mode: mode, Loopback: loopback}
	t.next++
	t.routers[r.ID] = r
	t.names[name] = r.ID
	if domain != "" {
		d, ok := t.domains[domain]
		if !ok {
			panic(fmt.Sprintf("topo: unknown domain %q", domain))
		}
		d.Routers = append(d.Routers, r.ID)
	}
	t.adj = nil
	return r
}

// Connect adds a link between two routers and returns it.
func (t *Topology) Connect(a, b NodeID, aAddr, bAddr addr.IP, tunnel bool, lossProb, capacityKbps float64) *Link {
	if _, ok := t.routers[a]; !ok {
		panic(fmt.Sprintf("topo: unknown router %d", a))
	}
	if _, ok := t.routers[b]; !ok {
		panic(fmt.Sprintf("topo: unknown router %d", b))
	}
	l := &Link{
		ID:           len(t.links),
		A:            LinkEnd{Router: a, Addr: aAddr},
		B:            LinkEnd{Router: b, Addr: bAddr},
		Tunnel:       tunnel,
		Up:           true,
		LossProb:     lossProb,
		CapacityKbps: capacityKbps,
	}
	t.links = append(t.links, l)
	t.adj = nil
	return l
}

// Router returns the router with the given ID, or nil.
func (t *Topology) Router(id NodeID) *Router { return t.routers[id] }

// RouterByName returns the router with the given name, or nil.
func (t *Topology) RouterByName(name string) *Router {
	id, ok := t.names[name]
	if !ok {
		return nil
	}
	return t.routers[id]
}

// Routers returns all routers ordered by ID.
func (t *Topology) Routers() []*Router {
	out := make([]*Router, 0, len(t.routers))
	for _, r := range t.routers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all links.
func (t *Topology) Links() []*Link { return t.links }

// Link returns the link with the given ID, or nil.
func (t *Topology) Link(id int) *Link {
	if id < 0 || id >= len(t.links) {
		return nil
	}
	return t.links[id]
}

// Domain returns the named domain, or nil.
func (t *Topology) Domain(name string) *Domain { return t.domains[name] }

// Domains returns all domains sorted by name.
func (t *Topology) Domains() []*Domain {
	out := make([]*Domain, 0, len(t.domains))
	for _, d := range t.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LinksOf returns the links attached to r (up or down).
func (t *Topology) LinksOf(r NodeID) []*Link {
	if t.adj == nil {
		t.adj = make(map[NodeID][]*Link)
		for _, l := range t.links {
			t.adj[l.A.Router] = append(t.adj[l.A.Router], l)
			t.adj[l.B.Router] = append(t.adj[l.B.Router], l)
		}
	}
	return t.adj[r]
}

// Neighbors returns the router IDs adjacent to r over up links, optionally
// restricted by a link filter.
func (t *Topology) Neighbors(r NodeID, accept func(*Link) bool) []NodeID {
	var out []NodeID
	for _, l := range t.LinksOf(r) {
		if !l.Up {
			continue
		}
		if accept != nil && !accept(l) {
			continue
		}
		out = append(out, l.Other(r).Router)
	}
	return out
}

// DomainOf returns the domain a router belongs to, or nil for exchange
// points outside any domain.
func (t *Topology) DomainOf(r NodeID) *Domain {
	rt := t.routers[r]
	if rt == nil || rt.Domain == "" {
		return nil
	}
	return t.domains[rt.Domain]
}

// EdgeRouterFor returns the router owning the leaf prefix containing host,
// or nil if no router attaches that subnet.
func (t *Topology) EdgeRouterFor(host addr.IP) *Router {
	for _, r := range t.Routers() {
		for _, p := range r.LeafPrefixes {
			if p.Contains(host) {
				return r
			}
		}
	}
	return nil
}
