package topo

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
)

// InternetConfig parameterizes BuildInternet.
type InternetConfig struct {
	// NumDomains is the number of leaf domains besides UCSB.
	NumDomains int
	// RoutersPerDomain is the number of internal routers per domain in
	// addition to the border.
	RoutersPerDomain int
	// MinSubnets and MaxSubnets bound the number of prefixes a domain
	// originates. The 1998 MBone carried thousands of DVMRP routes from
	// a few hundred tunnels because domains advertised subnets rather
	// than aggregates.
	MinSubnets, MaxSubnets int
	// AggregateFraction is the fraction of domains whose border
	// aggregates before advertising — inconsistent aggregation is one
	// divergence source the paper observes.
	AggregateFraction float64
	// PIMDMFraction is the fraction of domains whose interior routers
	// run PIM-DM (dense-mode data plane, no DVMRP route table) behind a
	// DVMRP border — the common Cisco campus arrangement of the era.
	PIMDMFraction float64
	// TunnelLoss is the control-message loss probability on DVMRP
	// tunnels; NativeLoss on native links.
	TunnelLoss, NativeLoss float64
	// Seed drives the deterministic layout choices.
	Seed int64
	// LoopbackPool overrides the router-loopback address pool. The zero
	// value keeps the historical 198.32.255.0/24, which caps a topology
	// at ~250 routers; fleet-scale experiments (thousands of routers,
	// bench-scale) supply a /16 so the builder does not exhaust it.
	LoopbackPool addr.Prefix
}

// DefaultInternetConfig returns the configuration used by the paper-scale
// experiments: route tables in the low thousands, two dozen domains.
func DefaultInternetConfig() InternetConfig {
	return InternetConfig{
		NumDomains:        24,
		RoutersPerDomain:  2,
		MinSubnets:        60,
		MaxSubnets:        240,
		AggregateFraction: 0.25,
		PIMDMFraction:     0.25,
		TunnelLoss:        0.03,
		NativeLoss:        0.0005,
		Seed:              1998,
	}
}

// ScaleInternetConfig returns a fleet-scale configuration: numDomains
// leaf domains of routersPerDomain+1 routers each, PIM-DM interiors
// behind DVMRP borders (so the DVMRP cloud holds only the borders and
// per-cycle cost stays proportional to the monitored set, not the
// router count), and a /16 loopback pool so the builder can address
// thousands of routers. The bench-scale experiments use it to build
// ~5k-router topologies.
func ScaleInternetConfig(numDomains, routersPerDomain int) InternetConfig {
	cfg := DefaultInternetConfig()
	cfg.NumDomains = numDomains
	cfg.RoutersPerDomain = routersPerDomain
	cfg.MinSubnets = 180
	cfg.MaxSubnets = 220
	cfg.PIMDMFraction = 1.0
	cfg.LoopbackPool = addr.MustParsePrefix("172.16.0.0/16")
	return cfg
}

// Internet is the constructed multi-domain topology with the well-known
// routers the experiments monitor.
type Internet struct {
	Topo *Topology
	// FIXW is the Federal IntereXchange-West router: the MBone core
	// router pre-transition, a DVMRP border afterwards.
	FIXW *Router
	// NativeCores are the exchange routers of the native infrastructure
	// (alive but idle until domains transition).
	NativeCores []*Router
	// UCSB is the campus mrouted the paper's second dataset comes from.
	UCSB *Router
	// UCSBGateway is the campus border connected to FIXW by tunnel.
	UCSBGateway *Router
	// NativeLinks[d] are the (initially down) native links that come up
	// when domain d transitions; TunnelLinks[d] the tunnel that goes
	// down.
	NativeLinks map[string][]*Link
	TunnelLinks map[string]*Link
}

// BuildInternet constructs the paper's internetwork: FIXW at the center of
// a DVMRP tunnel mesh, a UCSB campus domain, N other leaf domains, and a
// dormant native core that domains migrate onto during the transition.
func BuildInternet(cfg InternetConfig) *Internet {
	rng := sim.NewRNG(cfg.Seed)
	t := New()
	inet := &Internet{
		Topo:        t,
		NativeLinks: make(map[string][]*Link),
		TunnelLinks: make(map[string]*Link),
	}

	transfer := addr.NewAllocator(addr.MustParsePrefix("198.32.0.0/16"))
	loopPool := cfg.LoopbackPool
	if loopPool == (addr.Prefix{}) {
		loopPool = addr.MustParsePrefix("198.32.255.0/24")
	}
	loop := addr.NewAllocator(loopPool)

	// Exchange points.
	inet.FIXW = t.AddRouter("fixw", "", ModeDVMRP, loop.MustNext())
	inet.FIXW.Core = true
	for i := 0; i < 2; i++ {
		c := t.AddRouter(fmt.Sprintf("nexch%d", i+1), "", ModePIMSM, loop.MustNext())
		c.Core = true
		c.RP = true // native exchanges host RPs for interdomain MSDP
		inet.NativeCores = append(inet.NativeCores, c)
	}
	// Native core mesh: FIXW peers with both native exchanges, and they
	// peer with each other. These links carry no multicast until the
	// transition begins.
	for i, c := range inet.NativeCores {
		t.Connect(inet.FIXW.ID, c.ID, transfer.MustNext(), transfer.MustNext(), false, cfg.NativeLoss, 45000)
		if i == 1 {
			t.Connect(inet.NativeCores[0].ID, c.ID, transfer.MustNext(), transfer.MustNext(), false, cfg.NativeLoss, 45000)
		}
	}

	// UCSB campus: a domain that never transitions (mrouted until the end).
	buildDomain(t, inet, domainSpec{
		name: "ucsb", asn: 131, base: addr.MustParsePrefix("128.111.0.0/16"),
		internals: 2, subnets: 48, aggregate: false,
		tunnelLoss: cfg.TunnelLoss, nativeLoss: cfg.NativeLoss,
		transfer: transfer, loop: loop,
	})
	ucsbDomain := t.Domain("ucsb")
	inet.UCSBGateway = t.Router(ucsbDomain.Border())
	inet.UCSB = t.Router(ucsbDomain.Routers[1])

	// Leaf domains. Address space: 10.d.0.0/16 equivalents spread across
	// classful space for variety.
	for d := 0; d < cfg.NumDomains; d++ {
		base := addr.PrefixFrom(addr.V4(byte(140+d/8), byte(10+d*9%200), 0, 0), 16)
		subnets := cfg.MinSubnets
		if cfg.MaxSubnets > cfg.MinSubnets {
			subnets += rng.Intn(cfg.MaxSubnets - cfg.MinSubnets)
		}
		buildDomain(t, inet, domainSpec{
			name: fmt.Sprintf("dom%02d", d), asn: uint16(7000 + d),
			base: base, internals: cfg.RoutersPerDomain,
			subnets:    subnets,
			aggregate:  rng.Bool(cfg.AggregateFraction),
			pimdm:      rng.Bool(cfg.PIMDMFraction),
			tunnelLoss: cfg.TunnelLoss, nativeLoss: cfg.NativeLoss,
			transfer: transfer, loop: loop,
		})
	}

	// A few domain-to-domain tunnels enrich the DVMRP mesh so FIXW is not
	// a strict star center (the MBone was an ad-hoc mesh).
	domains := t.Domains()
	for i := 0; i+3 < len(domains); i += 4 {
		a, b := domains[i], domains[i+3]
		if a.Name == "ucsb" || b.Name == "ucsb" {
			continue
		}
		t.Connect(a.Border(), b.Border(), transfer.MustNext(), transfer.MustNext(), true, cfg.TunnelLoss, 1500)
	}
	return inet
}

type domainSpec struct {
	name                   string
	asn                    uint16
	base                   addr.Prefix
	internals              int
	subnets                int
	aggregate              bool
	pimdm                  bool
	tunnelLoss, nativeLoss float64
	transfer, loop         *addr.Allocator
}

// buildDomain creates one domain: a border router tunneled to FIXW (and
// pre-provisioned down native links to the native cores), internal routers
// in a star, and the domain's originated subnets.
func buildDomain(t *Topology, inet *Internet, spec domainSpec) {
	// Subnet list the domain originates: consecutive /24s out of base.
	var prefixes []addr.Prefix
	for s := 0; s < spec.subnets; s++ {
		sub := addr.PrefixFrom(spec.base.Addr+addr.IP(s<<8), 24)
		prefixes = append(prefixes, sub)
	}
	t.AddDomain(spec.name, spec.asn, ModeDVMRP, prefixes, spec.aggregate)

	border := t.AddRouter(spec.name+"-gw", spec.name, ModeDVMRP, spec.loop.MustNext())
	border.LeafPrefixes = prefixes[:1]
	interiorMode := ModeDVMRP
	if spec.pimdm {
		interiorMode = ModePIMDM
	}
	for i := 0; i < spec.internals; i++ {
		r := t.AddRouter(fmt.Sprintf("%s-r%d", spec.name, i+1), spec.name, interiorMode, spec.loop.MustNext())
		// Each internal router attaches a couple of host subnets.
		lo := 1 + i*2
		hi := lo + 2
		if hi > len(prefixes) {
			hi = len(prefixes)
		}
		if lo < len(prefixes) {
			r.LeafPrefixes = prefixes[lo:hi]
		}
		t.Connect(border.ID, r.ID, spec.transfer.MustNext(), spec.transfer.MustNext(), false, 0.0001, 10000)
	}

	// Tunnel to FIXW (the MBone attachment).
	tun := t.Connect(border.ID, inet.FIXW.ID, spec.transfer.MustNext(), spec.transfer.MustNext(), true, spec.tunnelLoss, 1500)
	inet.TunnelLinks[spec.name] = tun

	// Pre-provisioned native links to the native cores, initially down.
	for i, c := range inet.NativeCores {
		if i == 1 && len(spec.name)%2 == 0 {
			continue // some domains single-home
		}
		nl := t.Connect(border.ID, c.ID, spec.transfer.MustNext(), spec.transfer.MustNext(), false, spec.nativeLoss, 45000)
		nl.Up = false
		inet.NativeLinks[spec.name] = append(inet.NativeLinks[spec.name], nl)
	}
}

// TransitionDomain migrates a domain to native sparse mode: its routers
// switch to PIM-SM (border gains the RP role), the FIXW tunnel comes down,
// and the native links come up. FIXW itself becomes a border router the
// first time this happens.
func (in *Internet) TransitionDomain(name string) {
	d := in.Topo.Domain(name)
	if d == nil || d.Mode != ModeDVMRP {
		return
	}
	d.Mode = ModePIMSM
	for i, id := range d.Routers {
		r := in.Topo.Router(id)
		r.Mode = ModePIMSM
		if i == 0 {
			r.RP = true
		}
	}
	if tun := in.TunnelLinks[name]; tun != nil {
		tun.Up = false
	}
	for _, nl := range in.NativeLinks[name] {
		nl.Up = true
	}
	if in.FIXW.Mode != ModeBorder {
		in.FIXW.Mode = ModeBorder
	}
}

// CampusConfig parameterizes BuildCampus.
type CampusConfig struct {
	// Name prefixes the router names; Base is the campus address block.
	Name string
	Base addr.Prefix
	// Internal is the number of internal routers; Subnets the number of
	// originated prefixes.
	Internal, Subnets int
}

// BuildCampus constructs a standalone campus network (the quickstart
// scenario): one gateway plus internal routers, all DVMRP.
func BuildCampus(cfg CampusConfig) *Topology {
	if cfg.Name == "" {
		cfg.Name = "campus"
	}
	if cfg.Internal <= 0 {
		cfg.Internal = 2
	}
	if cfg.Subnets <= 0 {
		cfg.Subnets = 8
	}
	t := New()
	transfer := addr.NewAllocator(addr.MustParsePrefix("192.168.0.0/20"))
	loop := addr.NewAllocator(addr.MustParsePrefix("192.168.255.0/24"))
	var prefixes []addr.Prefix
	for s := 0; s < cfg.Subnets; s++ {
		prefixes = append(prefixes, addr.PrefixFrom(cfg.Base.Addr+addr.IP(s<<8), 24))
	}
	t.AddDomain(cfg.Name, 64512, ModeDVMRP, prefixes, false)
	gw := t.AddRouter(cfg.Name+"-gw", cfg.Name, ModeDVMRP, loop.MustNext())
	gw.LeafPrefixes = prefixes[:1]
	for i := 0; i < cfg.Internal; i++ {
		r := t.AddRouter(fmt.Sprintf("%s-r%d", cfg.Name, i+1), cfg.Name, ModeDVMRP, loop.MustNext())
		lo := 1 + i*2
		hi := lo + 2
		if hi > len(prefixes) {
			hi = len(prefixes)
		}
		if lo < len(prefixes) {
			r.LeafPrefixes = prefixes[lo:hi]
		}
		t.Connect(gw.ID, r.ID, transfer.MustNext(), transfer.MustNext(), false, 0.0001, 10000)
	}
	return t
}
