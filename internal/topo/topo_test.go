package topo

import (
	"testing"

	"repro/internal/addr"
)

func twoRouterTopo(t *testing.T) (*Topology, *Router, *Router, *Link) {
	t.Helper()
	tp := New()
	tp.AddDomain("d", 1, ModeDVMRP, []addr.Prefix{addr.MustParsePrefix("10.0.0.0/24")}, false)
	a := tp.AddRouter("a", "d", ModeDVMRP, addr.MustParse("1.1.1.1"))
	b := tp.AddRouter("b", "d", ModeDVMRP, addr.MustParse("1.1.1.2"))
	l := tp.Connect(a.ID, b.ID, addr.MustParse("10.0.0.1"), addr.MustParse("10.0.0.2"), false, 0, 1000)
	return tp, a, b, l
}

func TestAddAndLookup(t *testing.T) {
	tp, a, b, l := twoRouterTopo(t)
	if tp.Router(a.ID) != a || tp.RouterByName("b") != b {
		t.Fatal("lookup failed")
	}
	if tp.RouterByName("zzz") != nil {
		t.Error("unknown name should be nil")
	}
	if tp.Link(l.ID) != l || tp.Link(99) != nil {
		t.Error("link lookup wrong")
	}
	if len(tp.Routers()) != 2 || len(tp.Links()) != 1 {
		t.Error("counts wrong")
	}
	if d := tp.DomainOf(a.ID); d == nil || d.Name != "d" {
		t.Error("DomainOf wrong")
	}
	if d := tp.Domain("d"); d.Border() != a.ID {
		t.Error("first router should be border")
	}
}

func TestDuplicateRouterPanics(t *testing.T) {
	tp, _, _, _ := twoRouterTopo(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate router name should panic")
		}
	}()
	tp.AddRouter("a", "d", ModeDVMRP, 0)
}

func TestDuplicateDomainPanics(t *testing.T) {
	tp, _, _, _ := twoRouterTopo(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate domain should panic")
		}
	}()
	tp.AddDomain("d", 2, ModeDVMRP, nil, false)
}

func TestUnknownDomainPanics(t *testing.T) {
	tp := New()
	defer func() {
		if recover() == nil {
			t.Error("unknown domain should panic")
		}
	}()
	tp.AddRouter("x", "nope", ModeDVMRP, 0)
}

func TestLinkOther(t *testing.T) {
	_, a, b, l := twoRouterTopo(t)
	if l.Other(a.ID).Router != b.ID || l.Other(b.ID).Router != a.ID {
		t.Error("Other wrong")
	}
	if !l.Has(a.ID) || l.Has(NodeID(99)) {
		t.Error("Has wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with foreign router should panic")
		}
	}()
	l.Other(NodeID(99))
}

func TestNeighborsRespectsLinkState(t *testing.T) {
	tp, a, b, l := twoRouterTopo(t)
	if n := tp.Neighbors(a.ID, nil); len(n) != 1 || n[0] != b.ID {
		t.Fatalf("Neighbors = %v", n)
	}
	l.Up = false
	if n := tp.Neighbors(a.ID, nil); len(n) != 0 {
		t.Errorf("down link still visible: %v", n)
	}
}

func TestBFSAndPath(t *testing.T) {
	tp := New()
	tp.AddDomain("d", 1, ModeDVMRP, nil, false)
	var ids []NodeID
	for i := 0; i < 4; i++ {
		r := tp.AddRouter(string(rune('a'+i)), "d", ModeDVMRP, addr.IP(i+1))
		ids = append(ids, r.ID)
	}
	// chain a-b-c-d plus shortcut a-d
	tp.Connect(ids[0], ids[1], 0, 0, false, 0, 0)
	tp.Connect(ids[1], ids[2], 0, 0, false, 0, 0)
	tp.Connect(ids[2], ids[3], 0, 0, false, 0, 0)
	short := tp.Connect(ids[0], ids[3], 0, 0, false, 0, 0)

	p := tp.Path(ids[0], ids[3], nil)
	if len(p) != 2 {
		t.Fatalf("path with shortcut = %v", p)
	}
	short.Up = false
	p = tp.Path(ids[0], ids[3], nil)
	if len(p) != 4 || p[0] != ids[0] || p[3] != ids[3] {
		t.Fatalf("path without shortcut = %v", p)
	}
	if got := tp.Path(ids[2], ids[2], nil); len(got) != 1 {
		t.Errorf("self path = %v", got)
	}
	dist, _ := tp.BFS(ids[0], nil)
	if dist[ids[3]] != 3 {
		t.Errorf("dist = %d", dist[ids[3]])
	}
}

func TestPathUnreachable(t *testing.T) {
	tp, a, b, l := twoRouterTopo(t)
	l.Up = false
	if p := tp.Path(a.ID, b.ID, nil); p != nil {
		t.Errorf("path over down link = %v", p)
	}
	if r := tp.Reachable(a.ID, nil); len(r) != 1 || !r[a.ID] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestSpanningTree(t *testing.T) {
	tp := New()
	tp.AddDomain("d", 1, ModeDVMRP, nil, false)
	a := tp.AddRouter("a", "d", ModeDVMRP, 1)
	b := tp.AddRouter("b", "d", ModeDVMRP, 2)
	c := tp.AddRouter("c", "d", ModeDVMRP, 3)
	tp.Connect(a.ID, b.ID, 0, 0, false, 0, 0)
	tp.Connect(b.ID, c.ID, 0, 0, false, 0, 0)
	tree := tp.SpanningTree(a.ID, nil)
	if tree[a.ID] != nil {
		t.Error("root should map to nil")
	}
	if tree[b.ID] == nil || tree[c.ID] == nil {
		t.Error("tree incomplete")
	}
	if tree[c.ID].Other(c.ID).Router != b.ID {
		t.Error("c's RPF link should point at b")
	}
}

func TestModeFilters(t *testing.T) {
	tp := New()
	tp.AddDomain("d", 1, ModeDVMRP, nil, false)
	dv := tp.AddRouter("dv", "d", ModeDVMRP, 1)
	pim := tp.AddRouter("pim", "d", ModePIMSM, 2)
	bord := tp.AddRouter("bord", "d", ModeBorder, 3)
	l1 := tp.Connect(dv.ID, pim.ID, 0, 0, false, 0, 0)   // mixed: neither cloud
	l2 := tp.Connect(dv.ID, bord.ID, 0, 0, true, 0, 0)   // dvmrp tunnel
	l3 := tp.Connect(pim.ID, bord.ID, 0, 0, false, 0, 0) // native
	l4 := tp.Connect(pim.ID, bord.ID, 0, 0, true, 0, 0)  // tunnel: not native

	dvf := tp.DVMRPLinks()
	if dvf(l1) || !dvf(l2) {
		t.Error("DVMRP filter wrong")
	}
	nf := tp.NativeLinks()
	if nf(l1) || nf(l2) || !nf(l3) || nf(l4) {
		t.Error("native filter wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeDVMRP.String() != "dvmrp" || ModePIMSM.String() != "pim-sm" ||
		ModeBorder.String() != "border" || Mode(9).String() != "unknown" {
		t.Error("Mode.String wrong")
	}
}

func TestEdgeRouterFor(t *testing.T) {
	tp, a, _, _ := twoRouterTopo(t)
	a.LeafPrefixes = []addr.Prefix{addr.MustParsePrefix("10.0.0.0/24")}
	if r := tp.EdgeRouterFor(addr.MustParse("10.0.0.55")); r != a {
		t.Error("EdgeRouterFor missed")
	}
	if r := tp.EdgeRouterFor(addr.MustParse("11.0.0.1")); r != nil {
		t.Error("EdgeRouterFor false positive")
	}
}

func TestBuildInternetShape(t *testing.T) {
	cfg := DefaultInternetConfig()
	cfg.NumDomains = 6
	in := BuildInternet(cfg)
	tp := in.Topo

	if in.FIXW == nil || !in.FIXW.Core || in.FIXW.Mode != ModeDVMRP {
		t.Fatal("FIXW malformed")
	}
	if in.UCSB == nil || in.UCSBGateway == nil {
		t.Fatal("UCSB routers missing")
	}
	if len(tp.Domains()) != 7 { // ucsb + 6
		t.Fatalf("domains = %d", len(tp.Domains()))
	}
	// Every leaf domain border must reach FIXW through the DVMRP cloud.
	reach := tp.Reachable(in.FIXW.ID, tp.DVMRPLinks())
	for _, d := range tp.Domains() {
		if !reach[d.Border()] {
			t.Errorf("domain %s border unreachable from FIXW over DVMRP", d.Name)
		}
	}
	// Native links exist but are down pre-transition.
	for name, links := range in.NativeLinks {
		for _, l := range links {
			if l.Up {
				t.Errorf("native link of %s is up before transition", name)
			}
		}
	}
	// Route origination volume lands in the paper's range.
	total := 0
	for _, d := range tp.Domains() {
		total += len(d.Prefixes)
	}
	if total < 300 {
		t.Errorf("originated prefixes = %d, want hundreds", total)
	}
}

func TestBuildInternetDeterministic(t *testing.T) {
	cfg := DefaultInternetConfig()
	cfg.NumDomains = 4
	a := BuildInternet(cfg)
	b := BuildInternet(cfg)
	if len(a.Topo.Routers()) != len(b.Topo.Routers()) || len(a.Topo.Links()) != len(b.Topo.Links()) {
		t.Fatal("same seed produced different shapes")
	}
	for i, r := range a.Topo.Routers() {
		if b.Topo.Routers()[i].Name != r.Name || b.Topo.Routers()[i].Loopback != r.Loopback {
			t.Fatalf("router %d differs", i)
		}
	}
}

func TestTransitionDomain(t *testing.T) {
	cfg := DefaultInternetConfig()
	cfg.NumDomains = 4
	in := BuildInternet(cfg)
	name := "dom00"
	d := in.Topo.Domain(name)
	if d == nil {
		t.Fatal("dom00 missing")
	}
	in.TransitionDomain(name)
	if d.Mode != ModePIMSM {
		t.Error("domain mode unchanged")
	}
	if in.Topo.Router(d.Border()).Mode != ModePIMSM || !in.Topo.Router(d.Border()).RP {
		t.Error("border should be PIM RP")
	}
	if in.TunnelLinks[name].Up {
		t.Error("tunnel should be down")
	}
	for _, l := range in.NativeLinks[name] {
		if !l.Up {
			t.Error("native link should be up")
		}
	}
	if in.FIXW.Mode != ModeBorder {
		t.Error("FIXW should become border")
	}
	// Idempotent / no-op for unknown domains.
	in.TransitionDomain(name)
	in.TransitionDomain("nope")
	// Border must now reach a native core over native links.
	reach := in.Topo.Reachable(d.Border(), in.Topo.NativeLinks())
	foundCore := false
	for id := range reach {
		if r := in.Topo.Router(id); r != nil && r.Core && r.Name != "fixw" {
			foundCore = true
		}
	}
	if !foundCore {
		t.Error("transitioned border cannot reach native core")
	}
}

func TestBuildCampus(t *testing.T) {
	tp := BuildCampus(CampusConfig{Base: addr.MustParsePrefix("10.10.0.0/16")})
	if tp.RouterByName("campus-gw") == nil || tp.RouterByName("campus-r1") == nil {
		t.Fatal("campus routers missing")
	}
	d := tp.Domain("campus")
	if d == nil || len(d.Prefixes) != 8 {
		t.Fatalf("campus domain wrong: %+v", d)
	}
	// All routers reachable from gateway.
	reach := tp.Reachable(d.Border(), nil)
	if len(reach) != len(tp.Routers()) {
		t.Error("campus not connected")
	}
	// Hosts in leaf prefixes resolve to edge routers.
	r1 := tp.RouterByName("campus-r1")
	if len(r1.LeafPrefixes) == 0 {
		t.Fatal("r1 has no leaf prefixes")
	}
	host := r1.LeafPrefixes[0].First() + 5
	if tp.EdgeRouterFor(host) != r1 {
		t.Error("EdgeRouterFor host wrong")
	}
}
