package lint

// hotAllocAnalyzer flags allocation sites on declared hot paths: starting
// from the //mantra:hotpath root set (the engine's cycle chain, the
// tsdb append path, the WAL frame writer, the tables diff path), it
// walks the module's static call graph and reports composite literals,
// append/make/new growth and interface boxing in loops, string<->[]byte
// conversions, fmt calls, and escaping closure captures in every
// reachable function whose allocation-site count exceeds its budget.
//
// Budgets (//mantra:hotpath budget=N) are pinned at the current count,
// so a hot function's existing allocations are grandfathered explicitly
// while any new one fails the build — the static complement of the
// testing.AllocsPerRun gates generated from the same root set.
//
// The analysis is module-wide: the hot set and every finding are
// computed once per Analysis over the per-package fact summaries, then
// routed to the package each function lives in. The same computation
// runs over cached summaries in the warm driver, so cached findings are
// byte-identical to fresh ones.
var hotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation site reachable from a //mantra:hotpath root beyond the function's allocation budget",
	Run:  runHotAlloc,
}

func runHotAlloc(a *Analysis, p *Package) []Finding {
	return filterCheck(a.globalFindings()[p.RelPath], "hotalloc")
}

func filterCheck(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}
