package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockScopePkgs are the packages that sit on the engine's concurrency
// boundary: the pipeline itself, the HTTP output layer it publishes
// through, the WAL the ordered stages append to, the SNMP transport,
// and the shard supervisor whose heartbeat/checkpoint state is shared
// between the driver and worker goroutines. A mutex held across a
// blocking operation there is a latency cliff for every target behind
// the lock (and a deadlock when the blocked operation's peer needs the
// same lock — the shard supervisor's handoff path in particular closes
// request channels and joins workers, which must never happen under a
// lock a worker needs to beat its heartbeat).
var lockScopePkgs = map[string]bool{
	"internal/core/engine": true,
	"internal/core/output": true,
	"internal/core/logger": true,
	"internal/core/shard":  true,
	"internal/core/tsdb":   true,
	"internal/snmp":        true,
}

// lockHeldAnalyzer flags a sync.Mutex/RWMutex critical section that
// contains a blocking operation — a channel send or receive, select,
// time.Sleep, fsync, network I/O — either directly or through a call
// chain resolved on the module call graph. The critical section spans
// from the Lock/RLock call to the first matching non-deferred
// Unlock/RUnlock on the same receiver, or to the end of the function
// when the unlock is deferred. Operations inside `go` literals belong to
// the spawned goroutine, not the section, and are skipped.
var lockHeldAnalyzer = &Analyzer{
	Name: "lockheld",
	Doc:  "mutex held across a blocking operation (channel op, select, sleep, fsync, network I/O) in the engine-boundary packages",
	Run:  runLockHeld,
}

var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// lockCall matches a call to (R)Lock/(R)Unlock on a sync mutex,
// returning the receiver expression rendered as a string so sections on
// distinct locks (s.mu vs s.seglk) are tracked independently.
func lockCall(p *Package, call *ast.CallExpr, set map[string]bool) (recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn := staticCallee(p, call)
	if fn == nil || !set[fn.FullName()] {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func runLockHeld(a *Analysis, p *Package) []Finding {
	if !lockScopePkgs[p.RelPath] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkLockSections(a, p, fd)...)
			return true
		})
	}
	return out
}

// lockEvent is one (un)lock call found in a function, in source order.
type lockEvent struct {
	recv     string
	pos      token.Pos
	unlock   bool
	deferred bool
}

// checkLockSections finds every critical section in the function and
// reports blocking operations inside it.
func checkLockSections(a *Analysis, p *Package, fd *ast.FuncDecl) []Finding {
	var events []lockEvent
	// A DeferStmt is visited before its CallExpr child; remember the call
	// so it is not double-counted as an immediate unlock (which would end
	// the section at the defer statement instead of function end).
	deferredCalls := make(map[*ast.CallExpr]bool)
	inspectOwnCode(fd.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[x.Call] = true
			if recv, ok := lockCall(p, x.Call, unlockMethods); ok {
				events = append(events, lockEvent{recv: recv, pos: x.Call.Pos(), unlock: true, deferred: true})
			}
		case *ast.CallExpr:
			if deferredCalls[x] {
				return
			}
			if recv, ok := lockCall(p, x, lockMethods); ok {
				events = append(events, lockEvent{recv: recv, pos: x.Pos()})
			} else if recv, ok := lockCall(p, x, unlockMethods); ok {
				events = append(events, lockEvent{recv: recv, pos: x.Pos(), unlock: true})
			}
		}
	})

	var out []Finding
	for _, ev := range events {
		if ev.unlock {
			continue
		}
		// The section runs from this Lock to the first non-deferred
		// Unlock on the same receiver after it; a deferred unlock (or
		// none — the caller-must-unlock pattern) holds to function end.
		end := fd.Body.End()
		for _, un := range events {
			if un.unlock && !un.deferred && un.recv == ev.recv && un.pos > ev.pos {
				end = un.pos
				break
			}
		}
		out = append(out, blockingOpsIn(a, p, fd, ev, end)...)
	}
	return out
}

// blockingOpsIn reports every blocking operation between a lock event
// and end: direct channel/select/sleep/fsync/network operations, and
// calls to module functions whose blocking fact is set on the call
// graph.
func blockingOpsIn(a *Analysis, p *Package, fd *ast.FuncDecl, ev lockEvent, end token.Pos) []Finding {
	var out []Finding
	seen := make(map[token.Pos]bool)
	inspectOwnCode(fd.Body, func(n ast.Node) {
		if n == nil || n.Pos() <= ev.pos || n.Pos() >= end {
			return
		}
		if desc, pos, ok := directBlockOp(p, n); ok {
			if !seen[pos] {
				seen[pos] = true
				out = append(out, p.finding("lockheld", pos,
					"%s held across %s; move the blocking operation outside the critical section", ev.recv, desc))
			}
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := staticCallee(p, call)
		if callee == nil {
			return
		}
		if cause := a.Graph.BlockingCause(callee); cause != nil && !seen[call.Pos()] {
			seen[call.Pos()] = true
			out = append(out, p.finding("lockheld", call.Pos(),
				"%s held across call to %s, which blocks (%s); move the blocking call outside the critical section",
				ev.recv, shortFuncName(callee), cause.desc))
		}
	})
	return out
}
