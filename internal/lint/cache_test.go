package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver's correctness contract: a warm run's findings are
// byte-identical to a cold run's, across edits, moves and deletions —
// including the case where an edit in one package changes the GLOBAL
// findings reported in another package that stayed cached.

const cacheTestGoMod = "module cachetest\n\ngo 1.21\n"

const cacheTestDep = `package a

import "fmt"

// Render allocates through fmt; it is hot only while some root
// reaches it.
func Render(n int) string {
	return fmt.Sprintf("%d", n)
}
`

const cacheTestRoot = `package b

import "cachetest/a"

//mantra:hotpath
func Cycle() string {
	return a.Render(1)
}
`

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runDriver loads the module fresh (as a new process would) and runs
// the driver, returning rendered findings. Paths in findings are
// module-root-relative, so renderings compare across runs and roots.
func runDriver(t *testing.T, dir, cacheDir string) ([]string, DriverStats) {
	t.Helper()
	mod, err := NewModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Mod: mod, CacheDir: cacheDir, Analyzers: Analyzers()}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Findings))
	for _, f := range res.Findings {
		out = append(out, f.String())
	}
	return out, res.Stats
}

// checkWarmEqualsCold runs the cached driver and a cache-less one over
// the same tree and requires identical renderings.
func checkWarmEqualsCold(t *testing.T, step, dir, cacheDir string) []string {
	t.Helper()
	warm, _ := runDriver(t, dir, cacheDir)
	cold, _ := runDriver(t, dir, "")
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("%s: warm findings diverge from cold\nwarm: %v\ncold: %v", step, warm, cold)
	}
	return warm
}

func TestDriverCacheCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": cacheTestGoMod,
		"a/a.go": cacheTestDep,
		"b/b.go": cacheTestRoot,
	})

	// Cold: everything analyzed, one hotalloc finding in the dep package.
	findings, stats := runDriver(t, dir, cache)
	if stats.Packages != 2 || stats.CacheHits != 0 || stats.Reanalyzed != 2 {
		t.Fatalf("cold stats = %+v", stats)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "hotalloc") ||
		!strings.HasPrefix(findings[0], filepath.FromSlash("a/a.go")) {
		t.Fatalf("cold findings = %v", findings)
	}

	// Warm, nothing changed: all hits, byte-identical findings.
	warm, stats := runDriver(t, dir, cache)
	if stats.CacheHits != 2 || stats.Reanalyzed != 0 {
		t.Fatalf("warm stats = %+v", stats)
	}
	if strings.Join(warm, "\n") != strings.Join(findings, "\n") {
		t.Fatalf("warm findings = %v, cold = %v", warm, findings)
	}

	// Edit the ROOT package only: the dep stays cached (its key ignores
	// reverse deps), yet its hotalloc finding must disappear, because the
	// global phase recomputes from summaries every run.
	writeTree(t, dir, map[string]string{
		"b/b.go": strings.Replace(cacheTestRoot, "//mantra:hotpath\n", "", 1),
	})
	warm, stats = runDriver(t, dir, cache)
	if stats.CacheHits != 1 || stats.Reanalyzed != 1 {
		t.Fatalf("root-edit stats = %+v", stats)
	}
	if len(warm) != 0 {
		t.Fatalf("no roots remain but findings = %v", warm)
	}
	checkWarmEqualsCold(t, "root edit", dir, cache)

	// Edit the DEP package: its key moves, and the root's key moves with
	// it (dep-closure hashing), so both re-analyze.
	writeTree(t, dir, map[string]string{
		"a/a.go": strings.Replace(cacheTestDep, "return fmt.Sprintf",
			"fmt.Sprint(n)\n\treturn fmt.Sprintf", 1),
		"b/b.go": cacheTestRoot,
	})
	warm, stats = runDriver(t, dir, cache)
	if stats.CacheHits != 0 || stats.Reanalyzed != 2 {
		t.Fatalf("dep-edit stats = %+v", stats)
	}
	if len(warm) != 2 {
		t.Fatalf("dep edit findings = %v, want the two fmt sites", warm)
	}
	checkWarmEqualsCold(t, "dep edit", dir, cache)

	// Move: same bytes under a new file name is a different package
	// fingerprint, and findings must carry the new path.
	if err := os.Rename(filepath.Join(dir, "a/a.go"), filepath.Join(dir, "a/render.go")); err != nil {
		t.Fatal(err)
	}
	warm = checkWarmEqualsCold(t, "move", dir, cache)
	if len(warm) != 2 || !strings.HasPrefix(warm[0], filepath.FromSlash("a/render.go")) {
		t.Fatalf("move findings = %v", warm)
	}

	// Corrupt one cache entry: it must read as a miss, not as poison.
	entries, err := filepath.Glob(filepath.Join(cache, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache entries = %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	checkWarmEqualsCold(t, "corrupt entry", dir, cache)

	// Delete the root package: its stale cache entry is ignored and the
	// dep cools back down to no findings.
	if err := os.RemoveAll(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	warm, stats = runDriver(t, dir, cache)
	if stats.Packages != 1 {
		t.Fatalf("delete stats = %+v", stats)
	}
	if len(warm) != 0 {
		t.Fatalf("deleted the only root but findings = %v", warm)
	}
	checkWarmEqualsCold(t, "delete", dir, cache)
}

// --- v4: global findings from field-flow facts must survive caching ---------

const codecCacheEncode = `package a

type Rec struct {
	A uint64
	B uint64
}

//mantra:codec pair=rec role=encode type=Rec
func EncodeRec(r Rec) []byte {
	b := append([]byte(nil), byte(r.A))
	b = append(b, byte(r.B))
	return b
}
`

const codecCacheDecode = `package b

import "cachetest/a"

//mantra:codec pair=rec role=decode type=a.Rec
func DecodeRec(buf []byte) a.Rec {
	var r a.Rec
	r.A = uint64(buf[0])
	r.B = uint64(buf[1])
	return r
}
`

// TestCacheCrossPackageCodecDrift edits only the decode package of a
// codec pair whose encode half lives elsewhere. The encode package
// stays cached, yet the drift finding — computed in the global phase
// from both packages' summaries — must appear, and warm must equal
// cold.
func TestCacheCrossPackageCodecDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": cacheTestGoMod,
		"a/a.go": codecCacheEncode,
		"b/b.go": codecCacheDecode,
	})

	// Cold baseline: the only codecsym finding is the unpinned-shape
	// bootstrap nudge on the encode half.
	findings, _ := runDriver(t, dir, cache)
	if len(findings) != 1 || !strings.Contains(findings[0], "no pinned shape") {
		t.Fatalf("baseline findings = %v", findings)
	}

	// Drift: the decode half silently stops reading B.
	writeTree(t, dir, map[string]string{
		"b/b.go": strings.Replace(codecCacheDecode, "\tr.B = uint64(buf[1])\n", "", 1),
	})
	warm, stats := runDriver(t, dir, cache)
	if stats.CacheHits != 1 || stats.Reanalyzed != 1 {
		t.Fatalf("drift-edit stats = %+v (encode package should stay cached)", stats)
	}
	var drift bool
	for _, f := range warm {
		drift = drift || strings.Contains(f, "writes B but decode b.DecodeRec never reads it")
	}
	if !drift {
		t.Fatalf("cross-package drift not reported: %v", warm)
	}
	checkWarmEqualsCold(t, "codec drift", dir, cache)
}

const statecovCacheComponent = `package a

type Store struct {
	data map[string][]byte
}

//mantra:statetransfer component=store seam=export
func (s *Store) ExportTarget(name string) []byte {
	return s.data[name]
}

//mantra:statetransfer component=store seam=import
func (s *Store) ImportTarget(name string, b []byte) {
	s.data[name] = b
}
`

const statecovCacheRoots = `package b

import "cachetest/a"

//mantra:statetransfer root=checkpoint-export
func CheckpointExport(s *a.Store, names []string) map[string][]byte {
	out := make(map[string][]byte, len(names))
	for _, n := range names {
		out[n] = s.ExportTarget(n)
	}
	return out
}

//mantra:statetransfer root=checkpoint-import
func CheckpointImport(s *a.Store, ck map[string][]byte) {
	for n, b := range ck {
		s.ImportTarget(n, b)
	}
}

//mantra:statetransfer root=handoff-export
func HandoffExport(s *a.Store, name string) []byte {
	return s.ExportTarget(name)
}

//mantra:statetransfer root=handoff-import
func HandoffImport(s *a.Store, name string, b []byte) {
	s.ImportTarget(name, b)
}
`

// TestCacheStatecovRootEdit drops a seam call from the handoff root
// package. The component package stays cached, yet the new coverage
// finding must land there — at the seam declaration inside the CACHED
// package — and warm must equal cold.
func TestCacheStatecovRootEdit(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": cacheTestGoMod,
		"a/a.go": statecovCacheComponent,
		"b/b.go": statecovCacheRoots,
	})

	findings, _ := runDriver(t, dir, cache)
	if len(findings) != 0 {
		t.Fatalf("baseline findings = %v", findings)
	}

	// The bug shape: the handoff-export root no longer moves the store.
	writeTree(t, dir, map[string]string{
		"b/b.go": strings.Replace(statecovCacheRoots,
			"\treturn s.ExportTarget(name)\n", "\treturn nil\n", 1),
	})
	warm, stats := runDriver(t, dir, cache)
	if stats.CacheHits != 1 || stats.Reanalyzed != 1 {
		t.Fatalf("root-edit stats = %+v (component package should stay cached)", stats)
	}
	var dropped bool
	for _, f := range warm {
		dropped = dropped || (strings.HasPrefix(f, filepath.FromSlash("a/a.go")) &&
			strings.Contains(f, "no export seam is reachable from the handoff-export root"))
	}
	if !dropped {
		t.Fatalf("dropped-from-handoff not reported in the cached package: %v", warm)
	}
	checkWarmEqualsCold(t, "root edit", dir, cache)
}

// TestCacheImplFingerprintInvalidation swaps the analyzer-implementation
// hash between runs: every entry written under the old fingerprint must
// read as a miss, because cached findings embody the old analyzer
// semantics.
func TestCacheImplFingerprintInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": cacheTestGoMod,
		"a/a.go": cacheTestDep,
		"b/b.go": cacheTestRoot,
	})

	runDriver(t, dir, cache)
	if _, stats := runDriver(t, dir, cache); stats.CacheHits != 2 {
		t.Fatalf("pre-swap warm stats = %+v", stats)
	}

	old := implFingerprint
	implFingerprint = func() string { return "fuzzed-analyzer-build" }
	defer func() { implFingerprint = old }()

	findings, stats := runDriver(t, dir, cache)
	if stats.CacheHits != 0 || stats.Reanalyzed != 2 {
		t.Fatalf("post-swap stats = %+v (old-fingerprint entries must miss)", stats)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "hotalloc") {
		t.Fatalf("post-swap findings = %v", findings)
	}
	// And the new fingerprint's entries are themselves reusable.
	if _, stats := runDriver(t, dir, cache); stats.CacheHits != 2 {
		t.Fatalf("post-swap warm stats = %+v", stats)
	}
}

// TestModuleWarmColdIdentity is the nightly CI job's assertion run
// locally: over this repository's full module, a warm cached run's
// findings are byte-identical to a cold uncached run's.
func TestModuleWarmColdIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module three times")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cache := t.TempDir()
	cold, _ := runDriver(t, root, "")
	seed, stats := runDriver(t, root, cache)
	if stats.CacheHits != 0 {
		t.Fatalf("seed run hit a fresh cache: %+v", stats)
	}
	warm, stats := runDriver(t, root, cache)
	if stats.Reanalyzed != 0 || stats.CacheHits != stats.Packages {
		t.Fatalf("warm run missed: %+v", stats)
	}
	if strings.Join(seed, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("seed diverges from cold\nseed: %v\ncold: %v", seed, cold)
	}
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("warm diverges from cold\nwarm: %v\ncold: %v", warm, cold)
	}
}
