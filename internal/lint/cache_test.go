package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver's correctness contract: a warm run's findings are
// byte-identical to a cold run's, across edits, moves and deletions —
// including the case where an edit in one package changes the GLOBAL
// findings reported in another package that stayed cached.

const cacheTestGoMod = "module cachetest\n\ngo 1.21\n"

const cacheTestDep = `package a

import "fmt"

// Render allocates through fmt; it is hot only while some root
// reaches it.
func Render(n int) string {
	return fmt.Sprintf("%d", n)
}
`

const cacheTestRoot = `package b

import "cachetest/a"

//mantra:hotpath
func Cycle() string {
	return a.Render(1)
}
`

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runDriver loads the module fresh (as a new process would) and runs
// the driver, returning rendered findings. Paths in findings are
// module-root-relative, so renderings compare across runs and roots.
func runDriver(t *testing.T, dir, cacheDir string) ([]string, DriverStats) {
	t.Helper()
	mod, err := NewModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Mod: mod, CacheDir: cacheDir, Analyzers: Analyzers()}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Findings))
	for _, f := range res.Findings {
		out = append(out, f.String())
	}
	return out, res.Stats
}

// checkWarmEqualsCold runs the cached driver and a cache-less one over
// the same tree and requires identical renderings.
func checkWarmEqualsCold(t *testing.T, step, dir, cacheDir string) []string {
	t.Helper()
	warm, _ := runDriver(t, dir, cacheDir)
	cold, _ := runDriver(t, dir, "")
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("%s: warm findings diverge from cold\nwarm: %v\ncold: %v", step, warm, cold)
	}
	return warm
}

func TestDriverCacheCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly")
	}
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": cacheTestGoMod,
		"a/a.go": cacheTestDep,
		"b/b.go": cacheTestRoot,
	})

	// Cold: everything analyzed, one hotalloc finding in the dep package.
	findings, stats := runDriver(t, dir, cache)
	if stats.Packages != 2 || stats.CacheHits != 0 || stats.Reanalyzed != 2 {
		t.Fatalf("cold stats = %+v", stats)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "hotalloc") ||
		!strings.HasPrefix(findings[0], filepath.FromSlash("a/a.go")) {
		t.Fatalf("cold findings = %v", findings)
	}

	// Warm, nothing changed: all hits, byte-identical findings.
	warm, stats := runDriver(t, dir, cache)
	if stats.CacheHits != 2 || stats.Reanalyzed != 0 {
		t.Fatalf("warm stats = %+v", stats)
	}
	if strings.Join(warm, "\n") != strings.Join(findings, "\n") {
		t.Fatalf("warm findings = %v, cold = %v", warm, findings)
	}

	// Edit the ROOT package only: the dep stays cached (its key ignores
	// reverse deps), yet its hotalloc finding must disappear, because the
	// global phase recomputes from summaries every run.
	writeTree(t, dir, map[string]string{
		"b/b.go": strings.Replace(cacheTestRoot, "//mantra:hotpath\n", "", 1),
	})
	warm, stats = runDriver(t, dir, cache)
	if stats.CacheHits != 1 || stats.Reanalyzed != 1 {
		t.Fatalf("root-edit stats = %+v", stats)
	}
	if len(warm) != 0 {
		t.Fatalf("no roots remain but findings = %v", warm)
	}
	checkWarmEqualsCold(t, "root edit", dir, cache)

	// Edit the DEP package: its key moves, and the root's key moves with
	// it (dep-closure hashing), so both re-analyze.
	writeTree(t, dir, map[string]string{
		"a/a.go": strings.Replace(cacheTestDep, "return fmt.Sprintf",
			"fmt.Sprint(n)\n\treturn fmt.Sprintf", 1),
		"b/b.go": cacheTestRoot,
	})
	warm, stats = runDriver(t, dir, cache)
	if stats.CacheHits != 0 || stats.Reanalyzed != 2 {
		t.Fatalf("dep-edit stats = %+v", stats)
	}
	if len(warm) != 2 {
		t.Fatalf("dep edit findings = %v, want the two fmt sites", warm)
	}
	checkWarmEqualsCold(t, "dep edit", dir, cache)

	// Move: same bytes under a new file name is a different package
	// fingerprint, and findings must carry the new path.
	if err := os.Rename(filepath.Join(dir, "a/a.go"), filepath.Join(dir, "a/render.go")); err != nil {
		t.Fatal(err)
	}
	warm = checkWarmEqualsCold(t, "move", dir, cache)
	if len(warm) != 2 || !strings.HasPrefix(warm[0], filepath.FromSlash("a/render.go")) {
		t.Fatalf("move findings = %v", warm)
	}

	// Corrupt one cache entry: it must read as a miss, not as poison.
	entries, err := filepath.Glob(filepath.Join(cache, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache entries = %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	checkWarmEqualsCold(t, "corrupt entry", dir, cache)

	// Delete the root package: its stale cache entry is ignored and the
	// dep cools back down to no findings.
	if err := os.RemoveAll(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	warm, stats = runDriver(t, dir, cache)
	if stats.Packages != 1 {
		t.Fatalf("delete stats = %+v", stats)
	}
	if len(warm) != 0 {
		t.Fatalf("deleted the only root but findings = %v", warm)
	}
	checkWarmEqualsCold(t, "delete", dir, cache)
}
