package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module loads and type-checks the packages of one Go module with no
// tooling beyond the standard library: module-internal imports are
// resolved by recursively loading the imported directory, everything else
// (the standard library) is type-checked from $GOROOT source by the
// "source" importer — so the linter works offline in a zero-dependency
// module, exactly like the build itself.
type Module struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod ("repro").
	Path string
	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package // keyed by RelPath; nil entry marks in-progress
}

// NewModule prepares a loader rooted at the go.mod found in or above dir.
func NewModule(dir string) (*Module, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// Stdlib source type-checking must not attempt cgo preprocessing.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer unavailable")
	}
	return &Module{
		Root: root,
		Path: modPath,
		Fset: fset,
		std:  std,
		pkgs: make(map[string]*Package),
	}, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// PackageDirs enumerates every package directory under the module root,
// skipping testdata, vendor, hidden and underscore directories. The
// result is sorted by RelPath ("" for the root package).
func (m *Module) PackageDirs() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			rel, err := filepath.Rel(m.Root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

// LoadAll loads every package directory under the module root. The
// result is sorted by RelPath.
func (m *Module) LoadAll() ([]*Package, error) {
	rels, err := m.PackageDirs()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range rels {
		p, err := m.load(rel)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadPackage loads (or returns the already-loaded) package at rel —
// the driver's entry point for re-analyzing just the packages whose
// cache entries went stale. Loading pulls the module-internal dependency
// closure in for type information as a side effect.
func (m *Module) LoadPackage(rel string) (*Package, error) { return m.load(rel) }

// Loaded returns every package loaded so far, sorted by RelPath: the
// explicitly requested ones plus the dependency closures pulled in to
// type-check them.
func (m *Module) Loaded() []*Package {
	var out []*Package
	for _, p := range m.pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RelPath < out[j].RelPath })
	return out
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDirAs parses and type-checks a single directory as if it were the
// module package at rel — the fixture entry point: testdata packages are
// loaded "as" a determinism-critical path to exercise scoped analyzers.
func (m *Module) LoadDirAs(dir, rel string) (*Package, error) {
	return m.check(dir, rel)
}

// load returns the package at rel, loading it on first use. A nil map
// entry marks an in-progress load, turning import cycles into errors
// instead of hangs.
func (m *Module) load(rel string) (*Package, error) {
	if p, ok := m.pkgs[rel]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", rel)
		}
		return p, nil
	}
	m.pkgs[rel] = nil
	p, err := m.check(filepath.Join(m.Root, rel), rel)
	if err != nil {
		delete(m.pkgs, rel)
		return nil, err
	}
	m.pkgs[rel] = p
	return p, nil
}

// check parses dir's non-test sources and type-checks them as rel.
func (m *Module) check(dir, rel string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	p := &Package{RelPath: rel, Name: pkgName, Fset: m.Fset}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: &moduleImporter{m: m},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	importPath := m.Path
	if rel != "" {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	tpkg, err := conf.Check(importPath, m.Fset, files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	p.Files = files
	return p, nil
}

// moduleImporter resolves imports during type-checking: module-internal
// paths recurse into Module.load, all others go to the stdlib source
// importer.
type moduleImporter struct {
	m *Module
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, mi.m.Root, 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, mi.m.Path), "/")
		p, err := mi.m.load(filepath.FromSlash(rel))
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %q did not type-check", path)
		}
		return p.Types, nil
	}
	return mi.m.std.ImportFrom(path, dir, 0)
}
