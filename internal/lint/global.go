package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The global phase: the module-wide analyses (hotalloc, lockorder,
// codecsym, statecov, sertaint) computed over per-package fact
// summaries. Both the cold path (Analysis over loaded packages) and the
// warm path (Driver over cached summaries) funnel through
// GlobalFindings, so the two views cannot diverge.

// isGlobalCheck reports whether a check runs in the global phase — its
// findings are recomputed from summaries every run and never cached
// per-package (a reverse dependency can change them).
func isGlobalCheck(name string) bool {
	switch name {
	case "hotalloc", "lockorder", "codecsym", "statecov", "sertaint":
		return true
	}
	return false
}

// GlobalFindings runs the module-wide analyses over the summaries and
// returns raw (pre-suppression) findings grouped by the RelPath of the
// package each finding's function lives in.
func GlobalFindings(sums []*PkgSummary) map[string][]Finding {
	idx := newSumIndex(sums)
	out := make(map[string][]Finding)
	add := func(rel string, f Finding) { out[rel] = append(out[rel], f) }
	// Marker defects were pre-rendered at summary time; re-emitting them
	// here puts the cold and warm paths on the same line.
	for _, s := range sums {
		for _, f := range fromJSONFindings(s.Defects) {
			add(s.RelPath, f)
		}
	}
	hotAllocFindings(idx, add)
	lockOrderFindings(idx, add)
	codecSymFindings(idx, add)
	stateCovFindings(idx, add)
	serTaintFindings(idx, add)
	return out
}

// HotRoots returns the sorted full names of every //mantra:hotpath
// annotated function — the declared root set the generated
// testing.AllocsPerRun gates are pinned against.
func HotRoots(sums []*PkgSummary) []string {
	var out []string
	for _, s := range sums {
		for _, f := range s.Funcs {
			if f.Hot {
				out = append(out, f.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// sumIndex is the name-keyed view of all summaries.
type sumIndex struct {
	funcs     map[string]*FuncSum   // FullName → summary
	rel       map[string]string     // FullName → owning package RelPath
	names     []string              // sorted FullNames, for deterministic iteration
	structs   map[string]*StructSum // full type name → tracked struct
	structRel map[string]string     // full type name → owning package RelPath
}

func newSumIndex(sums []*PkgSummary) *sumIndex {
	idx := &sumIndex{
		funcs: make(map[string]*FuncSum), rel: make(map[string]string),
		structs: make(map[string]*StructSum), structRel: make(map[string]string),
	}
	for _, s := range sums {
		for _, f := range s.Funcs {
			idx.funcs[f.Name] = f
			idx.rel[f.Name] = s.RelPath
			idx.names = append(idx.names, f.Name)
		}
		for _, st := range s.Structs {
			idx.structs[st.Name] = st
			idx.structRel[st.Name] = s.RelPath
		}
	}
	sort.Strings(idx.names)
	return idx
}

func posOf(p Pos) token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

// ---- hotalloc ----

// hotAllocFindings computes the hot set — every function reachable from
// a //mantra:hotpath root over the static call graph — and reports the
// allocation sites of each hot function whose site count exceeds its
// budget (0 unless the function carries its own annotated budget).
func hotAllocFindings(idx *sumIndex, add func(string, Finding)) {
	// BFS from the sorted root list; the first (smallest-named) root to
	// reach a function becomes its reported witness.
	witness := make(map[string]string)
	var queue []string
	for _, name := range idx.names {
		if idx.funcs[name].Hot {
			witness[name] = name
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range idx.funcs[cur].Calls {
			if _, seen := witness[c.Callee]; seen {
				continue
			}
			if idx.funcs[c.Callee] == nil {
				continue // stdlib or unresolved — not ours to scan
			}
			witness[c.Callee] = witness[cur]
			queue = append(queue, c.Callee)
		}
	}

	for _, name := range idx.names {
		f := idx.funcs[name]
		root, hot := witness[name]
		if !hot || len(f.Allocs) == 0 {
			continue
		}
		budget := 0
		if f.Hot {
			budget = f.HotBudget
		}
		if len(f.Allocs) <= budget {
			continue
		}
		rootDesc := "itself a //mantra:hotpath root"
		if root != name {
			rootDesc = "reachable from //mantra:hotpath root " + idx.funcs[root].Short
		}
		for _, site := range f.Allocs {
			add(idx.rel[name], Finding{
				Pos:   posOf(site.Pos),
				Check: "hotalloc",
				Message: fmt.Sprintf("%s in %s (%s; %d allocation site(s), budget %d); eliminate the allocation, or raise the function's budget with a reason",
					site.Desc, f.Short, rootDesc, len(f.Allocs), budget),
			})
		}
	}
}

// ---- lockorder ----

// lockEdge is one observed ordering: To acquired while From is held.
type lockEdge struct {
	from, to string
	// site is where the inner acquisition happens (directly, or the call
	// that transitively acquires).
	site Pos
	fn   string // FullName of the function containing the site
	// via names the callee chain head for call-propagated edges, "" for
	// direct nested acquisitions.
	via      string
	holdExpr string
}

// lockOrderFindings builds the module-wide lock-acquisition graph and
// reports (a) direct recursive acquisition of one mutex expression and
// (b) every edge that participates in a cycle — the AB/BA inversion and
// its longer cousins — as a potential deadlock.
func lockOrderFindings(idx *sumIndex, add func(string, Finding)) {
	// Transitive acquire sets, to fixpoint: which lock classes can a
	// call into fn end up acquiring?
	acquires := make(map[string]map[string]bool)
	for _, name := range idx.names {
		set := make(map[string]bool)
		for _, ev := range idx.funcs[name].Locks {
			if !ev.Unlock {
				set[ev.Class] = true
			}
		}
		acquires[name] = set
	}
	for changed := true; changed; {
		changed = false
		for _, name := range idx.names {
			set := acquires[name]
			for _, c := range idx.funcs[name].Calls {
				for cls := range acquires[c.Callee] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}

	var edges []lockEdge
	for _, name := range idx.names {
		f := idx.funcs[name]
		for i, ev := range f.Locks {
			if ev.Unlock {
				continue
			}
			// Section: this lock to the first non-deferred unlock of the
			// same expression after it, else the function end (deferred
			// unlock or caller-must-unlock).
			end := f.End
			for _, un := range f.Locks {
				if un.Unlock && !un.Deferred && un.Expr == ev.Expr && ev.Pos.before(un.Pos) {
					end = un.Pos
					break
				}
			}
			// Direct nested acquisitions inside the section.
			for j, in := range f.Locks {
				if j == i || in.Unlock || !ev.Pos.before(in.Pos) || !in.Pos.before(end) {
					continue
				}
				if in.Class == ev.Class {
					if in.Expr == ev.Expr {
						add(idx.rel[name], Finding{
							Pos:   posOf(in.Pos),
							Check: "lockorder",
							Message: fmt.Sprintf("%s locked again in %s while already held (locked at line %d); sync mutexes are not reentrant — this deadlocks",
								in.Expr, f.Short, ev.Pos.Line),
						})
					}
					// Same class, different expression: two instances —
					// order between instances of one class is value
					// identity the static graph cannot see; stay quiet.
					continue
				}
				edges = append(edges, lockEdge{from: ev.Class, to: in.Class, site: in.Pos, fn: name, holdExpr: ev.Expr})
			}
			// Call-propagated acquisitions inside the section.
			for _, c := range f.Calls {
				if !ev.Pos.before(c.Pos) || !c.Pos.before(end) {
					continue
				}
				callee := idx.funcs[c.Callee]
				if callee == nil {
					continue
				}
				for cls := range acquires[c.Callee] {
					if cls == ev.Class {
						continue // instance-ambiguous; see above
					}
					edges = append(edges, lockEdge{from: ev.Class, to: cls, site: c.Pos, fn: name, via: callee.Short, holdExpr: ev.Expr})
				}
			}
		}
	}

	// Cycle detection over the class graph: any strongly connected
	// component with more than one class (or a 2-cycle's pair of edges)
	// means some pair of goroutines can acquire in opposite orders.
	adj := make(map[string]map[string]bool)
	classes := make(map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
		classes[e.from], classes[e.to] = true, true
	}
	scc := stronglyConnected(classes, adj)

	// Deterministic edge order for reporting.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.site.File != b.site.File {
			return a.site.File < b.site.File
		}
		if a.site.Line != b.site.Line {
			return a.site.Line < b.site.Line
		}
		if a.site.Col != b.site.Col {
			return a.site.Col < b.site.Col
		}
		return a.from+a.to < b.from+b.to
	})
	seen := make(map[string]bool) // dedup repeated (from,to) at one site
	for _, e := range edges {
		comp := scc[e.from]
		if comp < 0 || comp != scc[e.to] {
			continue // edge not inside a cycle
		}
		key := fmt.Sprintf("%s|%d|%d|%s|%s", e.site.File, e.site.Line, e.site.Col, e.from, e.to)
		if seen[key] {
			continue
		}
		seen[key] = true
		cyc := cycleString(e.from, scc, adj)
		how := "acquired"
		if e.via != "" {
			how = "acquired via call to " + e.via
		}
		add(idx.rel[e.fn], Finding{
			Pos:   posOf(e.site),
			Check: "lockorder",
			Message: fmt.Sprintf("%s %s while %s (%s) is held, but the module also acquires these locks in the opposite order (cycle: %s); pick one order — this can deadlock",
				shortClass(e.to), how, e.holdExpr, shortClass(e.from), cyc),
		})
	}
}

// stronglyConnected assigns each class a component id; classes alone in
// a component with no self-loop get -1 (not part of any cycle).
func stronglyConnected(classes map[string]bool, adj map[string]map[string]bool) map[string]int {
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)

	// Iterative Tarjan.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 0, 0

	sortedAdj := func(c string) []string {
		var out []string
		for t := range adj[c] {
			out = append(out, t)
		}
		sort.Strings(out)
		return out
	}

	type frame struct {
		node string
		succ []string
		i    int
	}
	for _, root := range names {
		if _, done := index[root]; done {
			continue
		}
		frames := []frame{{node: root, succ: sortedAdj(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, vis := index[w]; !vis {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succ: sortedAdj(w)})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				size := 0
				selfLoop := false
				for i := len(stack) - 1; i >= 0; i-- {
					size++
					if stack[i] == n {
						break
					}
				}
				members := stack[len(stack)-size:]
				stack = stack[:len(stack)-size]
				for _, m := range members {
					onStack[m] = false
					if adj[m][m] {
						selfLoop = true
					}
				}
				id := compID
				if size == 1 && !selfLoop {
					id = -1
				} else {
					compID++
				}
				for _, m := range members {
					comp[m] = id
				}
			}
		}
	}
	return comp
}

// cycleString renders the cycle through a class's component
// canonically: members sorted, closed back to the first.
func cycleString(class string, scc map[string]int, adj map[string]map[string]bool) string {
	id := scc[class]
	var members []string
	for c, cid := range scc {
		if cid == id {
			members = append(members, shortClass(c))
		}
	}
	sort.Strings(members)
	return strings.Join(append(members, members[0]), " → ")
}

// shortClass trims import paths from a lock class for messages:
// "repro/internal/core/shard.Supervisor.mu" → "shard.Supervisor.mu".
func shortClass(c string) string {
	if i := strings.LastIndex(c, "/"); i >= 0 {
		return c[i+1:]
	}
	return c
}
