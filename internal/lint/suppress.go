package lint

import (
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//mantralint:allow <check> <reason>
//
// An allow comment silences findings of exactly the named check on its
// own line; a standalone allow comment placed on its own line silences
// the line below it. Nothing wider: suppressions are per-line and
// per-check by design, so a justified exception can never blanket-hide a
// fresh violation nearby.
const allowPrefix = "//mantralint:allow"

// allowKey identifies one suppression: file, line, check.
type allowKey struct {
	file  string
	line  int
	check string
}

// allowEntry is one registered suppression plus its usage record: an
// allow that suppresses nothing by the end of a run has gone stale.
type allowEntry struct {
	pos  token.Position
	used bool
}

type allowSet map[allowKey]*allowEntry

// suppresses reports whether f is covered by an allow comment on its line
// or the line directly above, marking the covering allow as used so
// stale ones can be reported afterwards.
func (s allowSet) suppresses(f Finding) bool {
	hit := false
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if e := s[allowKey{f.Pos.Filename, line, f.Check}]; e != nil {
			e.used = true
			hit = true
		}
	}
	return hit
}

// stale reports the allows that suppressed nothing, restricted to checks
// that actually ran — an allow for a deselected check is unjudgeable,
// not stale. The implicit checks ("allow", "allowstale") are always
// judged: they run whenever the framework does. A stale report is itself
// suppressible (//mantralint:allow allowstale <reason>) for lines that
// trigger only under build tags or platforms the linter cannot see;
// those meta-allows are judged in a second pass, after the reports they
// may have just consumed.
func (s allowSet) stale(ran map[string]bool) []Finding {
	var keys, metaKeys []allowKey
	for k, e := range s {
		if e.used || (!ran[k.check] && k.check != "allow" && k.check != "allowstale") {
			continue
		}
		if k.check == "allowstale" {
			metaKeys = append(metaKeys, k)
			continue
		}
		keys = append(keys, k)
	}
	var out []Finding
	for _, pass := range [][]allowKey{keys, metaKeys} {
		// Map order must not leak into the finding list (our own mapiter
		// lesson); the caller sorts globally, but suppression marking
		// below must happen in a deterministic order too.
		sort.Slice(pass, func(i, j int) bool {
			a, b := pass[i], pass[j]
			if a.file != b.file {
				return a.file < b.file
			}
			if a.line != b.line {
				return a.line < b.line
			}
			return a.check < b.check
		})
		for _, k := range pass {
			if s[k].used {
				continue // consumed by a stale report emitted this pass
			}
			f := Finding{Pos: s[k].pos, Check: "allowstale",
				Message: "allow for " + quote(k.check) + " suppresses nothing on its line; the violation it justified is gone — delete the comment"}
			if !s.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	return out
}

// AllowRec is one well-formed allow directive in serializable form —
// what the driver's per-package cache stores so suppression can be
// re-applied globally on a warm run without re-parsing the package.
type AllowRec struct {
	Check string `json:"check"`
	Pos   Pos    `json:"pos"`
}

// newAllowSet materializes the live suppression set from records.
func newAllowSet(recs []AllowRec) allowSet {
	allows := make(allowSet, len(recs))
	for _, r := range recs {
		allows[allowKey{r.Pos.File, r.Pos.Line, r.Check}] = &allowEntry{pos: posOf(r.Pos)}
	}
	return allows
}

// collectAllowRecs scans a package's comments for allow directives. Each
// well-formed directive registers a suppression; a directive naming an
// unknown check or missing its reason is itself reported — the validity
// set is every registered check plus the implicit ones, independent of
// which checks run, so a suppression for a deselected check does not
// suddenly become a defect.
func collectAllowRecs(p *Package, validChecks map[string]bool) ([]AllowRec, []Finding) {
	var recs []AllowRec
	var defects []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //mantralint:allowed — not ours.
					continue
				}
				fields := strings.Fields(rest)
				pos := p.Fset.Position(c.Pos())
				if len(fields) == 0 {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment names no check (want //mantralint:allow <check> <reason>)"})
					continue
				}
				check := fields[0]
				if !validChecks[check] {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment names unknown check " + quote(check)})
					continue
				}
				if len(fields) < 2 {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment for " + quote(check) + " has no reason; justify the suppression"})
					continue
				}
				recs = append(recs, AllowRec{Check: check, Pos: Pos{File: pos.Filename, Line: pos.Line, Col: pos.Column}})
			}
		}
	}
	return recs, defects
}

// collectAllows is the live-package form: scan and materialize in one go.
func collectAllows(p *Package, validChecks map[string]bool) (allowSet, []Finding) {
	recs, defects := collectAllowRecs(p, validChecks)
	return newAllowSet(recs), defects
}

func quote(s string) string { return `"` + s + `"` }
