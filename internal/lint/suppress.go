package lint

import (
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//mantralint:allow <check> <reason>
//
// An allow comment silences findings of exactly the named check on its
// own line; a standalone allow comment placed on its own line silences
// the line below it. Nothing wider: suppressions are per-line and
// per-check by design, so a justified exception can never blanket-hide a
// fresh violation nearby.
const allowPrefix = "//mantralint:allow"

// allowKey identifies one suppression: file, line, check.
type allowKey struct {
	file  string
	line  int
	check string
}

type allowSet map[allowKey]bool

// suppresses reports whether f is covered by an allow comment on its line
// or the line directly above.
func (s allowSet) suppresses(f Finding) bool {
	return s[allowKey{f.Pos.Filename, f.Pos.Line, f.Check}] ||
		s[allowKey{f.Pos.Filename, f.Pos.Line - 1, f.Check}]
}

// collectAllows scans a package's comments for allow directives. Each
// well-formed directive registers a suppression; a directive naming an
// unknown check or missing its reason is itself reported — the validity
// set is every registered check, independent of which checks run, so a
// suppression for a deselected check does not suddenly become a defect.
func collectAllows(p *Package, validChecks map[string]bool) (allowSet, []Finding) {
	allows := make(allowSet)
	var defects []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //mantralint:allowed — not ours.
					continue
				}
				fields := strings.Fields(rest)
				pos := p.Fset.Position(c.Pos())
				if len(fields) == 0 {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment names no check (want //mantralint:allow <check> <reason>)"})
					continue
				}
				check := fields[0]
				if !validChecks[check] {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment names unknown check " + quote(check)})
					continue
				}
				if len(fields) < 2 {
					defects = append(defects, Finding{Pos: pos, Check: "allow",
						Message: "allow comment for " + quote(check) + " has no reason; justify the suppression"})
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, check}] = true
			}
		}
	}
	return allows, defects
}

func quote(s string) string { return `"` + s + `"` }
