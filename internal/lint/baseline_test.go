package lint

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

func bf(file string, line int, check, msg string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: line, Column: 1}, Check: check, Message: msg}
}

func renderAll(fs []Finding) string {
	var out []string
	for _, f := range fs {
		out = append(out, f.String())
	}
	return strings.Join(out, "\n")
}

func TestDiffBaseline(t *testing.T) {
	baseline := []Finding{
		bf("a.go", 10, "mapiter", "m1"),
		bf("a.go", 20, "mapiter", "m1"), // duplicate identity: multiset of 2
		bf("b.go", 5, "walerr", "m2"),
	}
	current := []Finding{
		bf("a.go", 99, "mapiter", "m1"), // matches despite the line shift
		bf("a.go", 12, "mapiter", "m1"),
		bf("a.go", 13, "mapiter", "m1"), // third copy: one past the multiset
		bf("c.go", 1, "floatsum", "m3"), // brand new
	}
	newF, resolved := DiffBaseline(current, baseline)
	if len(newF) != 2 || newF[0].Pos.Line != 13 || newF[1].Check != "floatsum" {
		t.Fatalf("newFindings = %v", newF)
	}
	if len(resolved) != 1 || resolved[0].Check != "walerr" {
		t.Fatalf("resolved = %v", resolved)
	}
}

func TestDiffBaselineEmptyBaseline(t *testing.T) {
	current := []Finding{bf("a.go", 1, "mapiter", "m")}
	newF, resolved := DiffBaseline(current, nil)
	if renderAll(newF) != renderAll(current) || len(resolved) != 0 {
		t.Fatalf("newF = %v, resolved = %v", newF, resolved)
	}
}

// TestBaselineRoundTrip: WriteJSON output read back through ReadBaseline
// diffs clean against the findings it snapshotted.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bf("a.go", 10, "mapiter", "m1"),
		bf("b.go", 5, "walerr", "m2"),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	newF, resolved := DiffBaseline(findings, back)
	if len(newF) != 0 || len(resolved) != 0 {
		t.Fatalf("round-trip diff not clean: new=%v resolved=%v", newF, resolved)
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage baseline accepted")
	}
}
