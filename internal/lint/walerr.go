package lint

import (
	"go/ast"
	"strings"
)

// walErrPkgs are the crash-safety surface: the WAL/checkpoint store and
// the monitor's archive layer on top of it. The PR 2 contract is that a
// write-path error is either handled or recorded (degrade to
// in-memory-only, surface through ArchiveStatus) — never dropped, because
// a silently failed append is indistinguishable from a durable one until
// the crash that needed it.
var walErrPkgs = map[string]bool{
	"":                     true, // module root: archive.go, the monitor's archive layer
	"internal/core/logger": true,
}

// walErrAnalyzer flags discarded error returns from write-path calls —
// Write/Sync/Close/Flush/Truncate/Remove/Rename/Append/Checkpoint/... —
// in the WAL, checkpoint and archive packages, whether the discard is
// implicit (a bare call statement, including go/defer) or explicit
// (assignment to _). Deliberate best-effort sites state their case with
// an allow comment.
var walErrAnalyzer = &Analyzer{
	Name: "walerr",
	Doc:  "discarded error returns on WAL/archive/checkpoint write paths",
	Run:  runWalErr,
}

// writeVerbs match callee names case-insensitively by prefix: Sync,
// syncDir, WriteCheckpoint, writeFileSync, AppendDelta, rotate, ...
var writeVerbs = []string{
	"write", "sync", "close", "flush", "truncate", "remove", "rename",
	"append", "checkpoint", "rotate", "encode", "save", "mkdir", "create",
}

func nameHasWriteVerb(name string) bool {
	l := strings.ToLower(name)
	for _, v := range writeVerbs {
		if strings.HasPrefix(l, v) {
			return true
		}
	}
	return false
}

func runWalErr(_ *Analysis, p *Package) []Finding {
	if !walErrPkgs[p.RelPath] {
		return nil
	}
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		name := calleeName(call)
		if name == "" || !nameHasWriteVerb(name) || !lastResultIsError(p, call) {
			return
		}
		out = append(out, p.finding("walerr", call.Pos(),
			"%s returns an error that is %s; handle it or record it (crash-safety contract)", name, how))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					report(call, "silently dropped")
				}
			case *ast.GoStmt:
				report(stmt.Call, "silently dropped (go statement)")
			case *ast.DeferStmt:
				report(stmt.Call, "silently dropped (deferred)")
			case *ast.AssignStmt:
				// The error position is the last result; flag when that
				// lands on the blank identifier.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || len(stmt.Lhs) == 0 {
					return true
				}
				if id, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					report(call, "discarded with _")
				}
			}
			return true
		})
	}
	return out
}
