package lint

import (
	"go/ast"
)

// wallClockAnalyzer flags reads of the wall clock — time.Now, time.Since,
// time.Until — anywhere in module code. The monitor's cycle timestamps,
// engine instrumentation and simulations all run on injected clocks
// (sim.Clock, engine.Clock, collect.Target.Clock); a stray wall-clock
// read makes results irreproducible and breaks the virtual-time
// experiments. Bare references count too (assigning time.Now to a
// variable is still acquiring the wall clock), so every legitimate
// acquisition point — a composition root or a documented live-clock seam
// — carries an explicit allow comment.
var wallClockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads (time.Now/Since/Until) outside an allowed injection seam",
	Run:  runWallClock,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(_ *Analysis, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncRef(p, sel)
			if !ok || pkgPath != "time" || !wallClockFuncs[name] {
				return true
			}
			out = append(out, p.finding("wallclock", sel.Pos(),
				"time.%s reads the wall clock; thread the injected clock (sim.Clock, engine.Clock, or a now func() time.Time parameter)", name))
			return true
		})
	}
	return out
}
