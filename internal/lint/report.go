package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable rendering of one Finding, stable
// for downstream tooling (CI annotations, dashboards, diffing runs).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array (never null: an
// empty run encodes as []), one object per finding, in the analyzer
// output order (already position-sorted).
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// The minimal subset of SARIF 2.1.0 that GitHub code scanning ingests:
// one run, one rule per check, one result per finding with a physical
// location. Field names follow the spec exactly.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one rule per
// registered check (plus the implicit allow/allowstale checks), so the
// upload is valid even when a run is clean. File paths are emitted as
// given — pass module-relative paths for useful annotations.
func WriteSARIF(w io.Writer, findings []Finding) error {
	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	for _, name := range ImplicitChecks() {
		doc := "defective suppression comment"
		if name == "allowstale" {
			doc = "suppression comment whose violation is gone"
		}
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mantralint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
