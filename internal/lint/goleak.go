package lint

import (
	"go/ast"
)

// goLeakAnalyzer flags goroutines started with no stop path reachable
// from shutdown, module-wide. A goroutine is judged by the body it runs:
// a function literal's own body, or — through the call graph — the
// declaration of a named function, so `go s.run()` is judged by what
// run ultimately does, even across packages.
//
// The leak shape is an exit-less `for {}`: no break, no return, no
// channel receive or send, no select, no range over a channel anywhere
// inside. Every sanctioned long-running goroutine in this module is
// driven by one of those — pool workers range over a jobs channel and
// end when it closes, servers return when Accept fails on a closed
// listener, tickers select on a done channel. A poll loop that only
// sleeps and checks a flag has no such path; it outlives Monitor
// shutdown and accumulates across restarts in long-lived processes —
// the paper's six-month runs are exactly that regime.
var goLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine started with no stop path (no channel op, select, return or break in its loop) reachable from shutdown",
	Run:  runGoLeak,
}

func runGoLeak(a *Analysis, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
				if pos, loops := foreverLoop(p, lit.Body); loops {
					out = append(out, p.finding("goleak", pos,
						"goroutine loops forever with no stop path (no channel op, select, return or break); wire a done channel, context or close-able work channel"))
				}
				return true
			}
			callee := staticCallee(p, g.Call)
			if callee == nil {
				return true
			}
			if _, loops := a.Graph.LoopsForever(callee); loops {
				out = append(out, p.finding("goleak", g.Pos(),
					"goroutine runs %s, which loops forever with no stop path (no channel op, select, return or break); wire a done channel, context or close-able work channel",
					shortFuncName(callee)))
			}
			return true
		})
	}
	return out
}
