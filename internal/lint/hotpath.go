package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// The hot-path annotation contract (DESIGN.md §14): a function is
// declared a hot-path root by a marker in its doc comment,
//
//	//mantra:hotpath
//	//mantra:hotpath budget=3
//
// and hotalloc walks the static call graph from the declared roots,
// flagging allocation sites in every function it can reach. The budget
// is the number of allocation sites the annotated function itself is
// allowed (default 0); functions reached transitively always have
// budget 0 unless they carry their own marker. Budgets are meant to be
// pinned at the current site count, so any *new* allocation on a hot
// path fails the build while the existing ones are grandfathered
// explicitly rather than silently.
const hotpathMarker = "//mantra:hotpath"

// hotMark is one parsed //mantra:hotpath annotation.
type hotMark struct {
	budget int
	line   int
}

// parseHotMark parses one marker comment. ok is false when the comment
// is not a marker at all; err carries a human-readable defect when it is
// a marker but malformed.
func parseHotMark(text string) (budget int, ok bool, errMsg string) {
	if !strings.HasPrefix(text, hotpathMarker) {
		return 0, false, ""
	}
	rest := strings.TrimPrefix(text, hotpathMarker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return 0, false, "" // e.g. //mantra:hotpathy — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, true, ""
	}
	if len(fields) > 1 {
		return 0, true, "marker takes at most one argument (budget=N)"
	}
	val, found := strings.CutPrefix(fields[0], "budget=")
	if !found {
		return 0, true, "unknown marker argument " + quote(fields[0]) + " (want budget=N)"
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, true, "budget " + quote(val) + " is not a non-negative integer"
	}
	return n, true, ""
}

// hotpathAnalyzer validates the annotation contract itself. A marker
// that silently fails to register a root would quietly shrink hotalloc's
// coverage, so every defect in a marker is a build failure:
//
//   - a marker not attached to a function declaration's doc comment
//     (dangling: inside a body, on a type, floating between decls);
//   - a malformed budget argument;
//   - duplicate markers on one function.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "malformed or dangling //mantra:hotpath annotation (the marker would silently not register a hot-path root)",
	Run:  runHotpath,
}

func runHotpath(a *Analysis, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		// Comment groups attached as some FuncDecl's Doc are the valid
		// anchor points; every marker elsewhere is dangling.
		attached := make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				attached[fd.Doc] = true
				marks := 0
				for _, c := range fd.Doc.List {
					_, isMark, errMsg := parseHotMark(c.Text)
					if !isMark {
						continue
					}
					marks++
					if errMsg != "" {
						out = append(out, p.finding("hotpath", c.Pos(), "bad //mantra:hotpath on %s: %s", fd.Name.Name, errMsg))
					}
					if marks == 2 {
						out = append(out, p.finding("hotpath", c.Pos(), "duplicate //mantra:hotpath on %s; one marker per function", fd.Name.Name))
					}
				}
			}
		}
		for _, cg := range file.Comments {
			if attached[cg] {
				continue
			}
			for _, c := range cg.List {
				if _, isMark, _ := parseHotMark(c.Text); isMark {
					out = append(out, p.finding("hotpath", c.Pos(),
						"dangling //mantra:hotpath: the marker must be part of a function declaration's doc comment to register a root"))
				}
			}
		}
	}
	return out
}

// funcHotMark returns the hot-path marker on a function's doc comment,
// if any. Malformed markers still register (with the parsed-or-zero
// budget) so the hotpath analyzer's defect report and the root set
// cannot disagree about whether a root exists.
func funcHotMark(p *Package, fd *ast.FuncDecl) (hotMark, bool) {
	if fd.Doc == nil {
		return hotMark{}, false
	}
	for _, c := range fd.Doc.List {
		if budget, ok, _ := parseHotMark(c.Text); ok {
			return hotMark{budget: budget, line: p.Fset.Position(c.Pos()).Line}, true
		}
	}
	return hotMark{}, false
}
