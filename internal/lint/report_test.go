package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

var reportFixture = []Finding{
	{Pos: token.Position{Filename: "internal/core/engine/engine.go", Line: 12, Column: 3},
		Check: "lockheld", Message: "mu held across channel send"},
	{Pos: token.Position{Filename: "internal/core/logger/wal.go", Line: 40, Column: 9},
		Check: "waltaint", Message: "direct write bypasses framing"},
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, reportFixture); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(got))
	}
	if got[0]["check"] != "lockheld" || got[0]["line"] != float64(12) ||
		got[0]["file"] != "internal/core/engine/engine.go" {
		t.Errorf("first finding = %v", got[0])
	}

	// A clean run must encode as an empty array, not null.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty run encodes as %q, want []", s)
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, reportFixture); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 and one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mantralint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered check plus the two implicit ones is a rule, and
	// every result's ruleId resolves to a rule.
	wantRules := len(CheckNames()) + len(ImplicitChecks())
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), wantRules)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q has no rule", res.RuleID)
		}
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/engine/engine.go" || loc.Region.StartLine != 12 {
		t.Errorf("first location = %+v", loc)
	}
}

// BenchmarkMantralintModule times a full module lint — load, call-graph
// and fact construction, all analyzers over all packages — the cost
// `make lint` pays per invocation.
func BenchmarkMantralintModule(b *testing.B) {
	mod, err := NewModule(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := mod.LoadAll()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fs := RunAnalyzers(pkgs, Analyzers()); len(fs) != 0 {
			b.Fatalf("module not clean: %v", fs[0])
		}
	}
}

// BenchmarkMantralintColdDriver is a full cold `make lint`: a fresh
// module load plus the driver with no cache, per iteration — the
// baseline the warm benchmark's ≥5× speedup floor is measured against.
func BenchmarkMantralintColdDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod, err := NewModule(".")
		if err != nil {
			b.Fatal(err)
		}
		d := &Driver{Mod: mod, Analyzers: Analyzers()}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Findings) != 0 {
			b.Fatalf("module not clean: %v", res.Findings[0])
		}
	}
}

// BenchmarkMantralintWarmDriver is the same invocation against a warmed
// cache: every package hits, only the global phase and suppression
// recompute. Each iteration still constructs the Module fresh, exactly
// as a new mantralint process would.
func BenchmarkMantralintWarmDriver(b *testing.B) {
	cache := b.TempDir()
	mod, err := NewModule(".")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := (&Driver{Mod: mod, CacheDir: cache, Analyzers: Analyzers()}).Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod, err := NewModule(".")
		if err != nil {
			b.Fatal(err)
		}
		d := &Driver{Mod: mod, CacheDir: cache, Analyzers: Analyzers()}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.CacheHits != res.Stats.Packages {
			b.Fatalf("warm run missed: %+v", res.Stats)
		}
		if len(res.Findings) != 0 {
			b.Fatalf("module not clean: %v", res.Findings[0])
		}
	}
}
