package lint

import (
	"encoding/json"
	"go/token"
	"io"
)

// Baseline mode: instead of failing on every finding, the driver diffs
// the current run against a committed snapshot (the JSON findings
// format, i.e. a -write-baseline run or a checked-in lint-baseline.json)
// and fails only on findings that are NEW — so a legacy finding can be
// burned down incrementally without blocking unrelated PRs, while no
// fresh violation ever rides in under its cover.
//
// Matching is a multiset over (file, check, message), deliberately
// line-agnostic: editing an unrelated part of a file shifts line numbers
// but must not resurrect a baselined finding. Adding a second identical
// violation in the same file still fails — the multiset counts.

// ReadBaseline decodes a baseline file (the WriteJSON format).
func ReadBaseline(r io.Reader) ([]Finding, error) {
	var raw []jsonFinding
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	out := make([]Finding, 0, len(raw))
	for _, f := range raw {
		out = append(out, Finding{
			Pos:   token.Position{Filename: f.File, Line: f.Line, Column: f.Column},
			Check: f.Check, Message: f.Message,
		})
	}
	return out, nil
}

// baselineKey is the line-agnostic identity of one finding.
func baselineKey(f Finding) string {
	return f.Pos.Filename + "\x00" + f.Check + "\x00" + f.Message
}

// DiffBaseline splits the current findings into those absent from the
// baseline (newFindings — these fail the run) and reports which baseline
// entries no longer occur (resolved — candidates for shrinking the
// committed file). Both preserve input order.
func DiffBaseline(current, baseline []Finding) (newFindings, resolved []Finding) {
	counts := make(map[string]int, len(baseline))
	for _, f := range baseline {
		counts[baselineKey(f)]++
	}
	for _, f := range current {
		k := baselineKey(f)
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		newFindings = append(newFindings, f)
	}
	// Whatever is left in counts was not matched by any current finding.
	left := make(map[string]int, len(counts))
	for k, n := range counts {
		left[k] = n
	}
	for _, f := range baseline {
		k := baselineKey(f)
		if left[k] > 0 {
			left[k]--
			resolved = append(resolved, f)
		}
	}
	return newFindings, resolved
}
