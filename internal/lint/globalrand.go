package lint

import (
	"go/ast"
)

// globalRandAnalyzer flags the global math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, ...) in module code. Global rand state is
// process-wide and unseedable per experiment: simulations and fault
// models must draw from the seeded internal/sim RNG (or an explicit
// rand.New(rand.NewSource(seed))) so every run is reproducible from its
// seed. Constructors (rand.New, rand.NewSource, rand.NewZipf) are the
// sanctioned path and pass.
var globalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "global math/rand functions instead of the seeded internal/sim RNG",
	Run:  runGlobalRand,
}

// globalRandFuncs is the banned global-state surface of math/rand (and
// math/rand/v2, which seeds its top-level functions randomly).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runGlobalRand(_ *Analysis, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncRef(p, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") || !globalRandFuncs[name] {
				return true
			}
			out = append(out, p.finding("globalrand", sel.Pos(),
				"global rand.%s is unseedable per run; use the seeded sim.RNG or rand.New(rand.NewSource(seed))", name))
			return true
		})
	}
	return out
}
