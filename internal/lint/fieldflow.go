package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Per-struct field-flow extraction: the facts codecsym compares across
// an encode/decode pair, and the field-access facts statecov's coverage
// check consumes. Both are extracted during Summarize, so the warm
// driver replays them from cache exactly like every other fact.
//
// The extraction rules are deliberately syntactic and symmetric:
//
//   - An ENCODE event is the first read of a target-struct field path in
//     a call-argument position (`appendU32(b, uint32(e.Prefix.Addr))`,
//     `appendUvarint(b, uint64(len(r.Rec.Pairs.Upserted)))`). Reads in
//     conditions or plain expressions do not emit bytes and are ignored
//     — which also means a codec that branches on a field it never
//     writes (`if e.Local {...}`) must route the read through a helper
//     call to count.
//   - A DECODE event is the first write to a target-struct field path
//     whose right-hand side contains a call (`out.Seq = r.uvarint()`,
//     `e.Local = r.byte() == 1`, `out.Pairs = make(...)`). Writes of
//     constants don't consume bytes and are ignored.
//
// Comparing the two event sequences (with prefix folding — see
// foldAgainst) is what lets one side read a whole sub-struct through a
// helper while the other writes its leaves inline.

// FieldEv is one ordered field-flow event of a codec-marked function:
// the dot path of a target-struct field, relative to the struct value
// ("Rec.Pairs.Upserted", "Prefix.Addr").
type FieldEv struct {
	Path string `json:"path"`
	Pos  Pos    `json:"pos"`
}

// FieldDecl is one struct field in a StructSum.
type FieldDecl struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Pos  Pos    `json:"pos"`
	// StringMap marks string-keyed map fields — the per-target state
	// shape statecov's transfer-coverage check is about.
	StringMap bool `json:"stringMap,omitempty"`
}

// StructSum is one tracked struct: a codec shape pin and/or a transfer
// component's state, with its declared field list.
type StructSum struct {
	// Name is the full type name ("repro/internal/core/logger.Logger").
	Name   string      `json:"name"`
	Pos    Pos         `json:"pos"`
	Fields []FieldDecl `json:"fields"`
	// Codec is the //mantra:codec pin on the type declaration, if any.
	Codec *CodecMark `json:"codec,omitempty"`
}

// FieldUse records that a function reads or writes one field of a
// tracked struct (statecov's coverage unit).
type FieldUse struct {
	Type  string `json:"type"`
	Field string `json:"field"`
}

// fieldFlowEvents extracts a codec-marked function's ordered field
// events for its declared target type.
func fieldFlowEvents(p *Package, fd *ast.FuncDecl, mark *CodecMark) []FieldEv {
	if mark.TypeFull == "" {
		return nil
	}
	var evs []FieldEv
	seen := make(map[string]bool)
	emit := func(path string, pos Pos) {
		if path != "" && !seen[path] {
			seen[path] = true
			evs = append(evs, FieldEv{Path: path, Pos: pos})
		}
	}
	if mark.Role == "encode" {
		inspectOwnCode(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			for _, arg := range call.Args {
				collectTargetPaths(p, arg, mark.TypeFull, emit)
			}
		})
		return evs
	}
	inspectOwnCode(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !anyContainsCall(as.Rhs) {
			return
		}
		for _, lhs := range as.Lhs {
			if path, pos, ok := targetPath(p, lhs, mark.TypeFull); ok {
				emit(path, pos)
			}
		}
	})
	return evs
}

// collectTargetPaths finds every outermost target-struct field path in
// an expression tree (descending past calls, conversions and operators,
// but not into a matched path's own prefix).
func collectTargetPaths(p *Package, e ast.Expr, typeFull string, emit func(string, Pos)) {
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path, pos, ok := targetPath(p, sel, typeFull); ok && path != "" {
			emit(path, pos)
			return false // don't re-emit this path's prefixes
		}
		return true
	})
}

// targetPath renders e as a field path rooted at a value of the target
// type ("Rec.Pairs.Upserted" for r.Rec.Pairs.Upserted when r is the
// target struct). Index expressions are transparent (r.Items[i].X is
// Items.X); ok is false when e does not root at the target type.
func targetPath(p *Package, e ast.Expr, typeFull string) (string, Pos, bool) {
	var parts []string
	pos := toPos(p, e.Pos())
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj, ok := p.Info.ObjectOf(x).(*types.Var)
			if !ok || typeFullName(obj.Type()) != typeFull {
				return "", Pos{}, false
			}
			// Reverse the selector chain into source order.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), pos, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", Pos{}, false
		}
	}
}

func anyContainsCall(exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.CallExpr); ok {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// fieldUses records which tracked-struct fields a function touches —
// selector accesses and composite-literal field writes both count, so a
// constructor-style import seam (`&Logger{targets: m}`) covers fields
// the same way a mutating one does.
func fieldUses(p *Package, fd *ast.FuncDecl, tracked map[string]bool) []FieldUse {
	if len(tracked) == 0 {
		return nil
	}
	seen := make(map[FieldUse]bool)
	add := func(typeName, field string) {
		if typeName != "" && tracked[typeName] {
			seen[FieldUse{Type: typeName, Field: field}] = true
		}
	}
	inspectOwnCode(fd.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel := p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				add(typeFullName(sel.Recv()), x.Sel.Name)
			}
		case *ast.CompositeLit:
			full := typeFullName(p.Info.TypeOf(x))
			if full == "" {
				return
			}
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						add(full, key.Name)
					}
				}
			}
		}
	})
	if len(seen) == 0 {
		return nil
	}
	out := make([]FieldUse, 0, len(seen))
	for fu := range seen {
		out = append(out, fu)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// foldAgainst folds a's event paths to the coarsest granularity present
// in b, deduplicating to first occurrence: if a reads Prefix.Addr and
// Prefix.Len while b writes Prefix whole (through a helper), a folds to
// [Prefix]. Paths with no counterpart at any granularity pass through
// unchanged — the comparison then reports them as asymmetric.
func foldAgainst(a, b []FieldEv) []string {
	bSet := make(map[string]bool, len(b))
	for _, ev := range b {
		bSet[ev.Path] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, ev := range a {
		path := ev.Path
		if !bSet[path] {
			// Fold to the longest proper prefix b knows, if any.
			for q := path; ; {
				i := strings.LastIndex(q, ".")
				if i < 0 {
					break
				}
				q = q[:i]
				if bSet[q] {
					path = q
					break
				}
			}
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}
