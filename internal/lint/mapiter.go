package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose outputs feed serialization,
// checksumming or the schedule-equivalence guarantee: a map iteration
// whose order leaks into their results is the exact bug class PR 3 fixed
// twice (the delta-log removal sets and the stability float sum).
var deterministicPkgs = map[string]bool{
	"internal/core/logger":  true,
	"internal/core/process": true,
	"internal/core/tables":  true,
	"internal/core/engine":  true,
	"internal/core/tsdb":    true,
	"internal/dvmrp":        true,
	"internal/pim":          true,
	"internal/msdp":         true,
	"internal/mbgp":         true,
}

// mapIterAnalyzer flags `range` over a map in a determinism-critical
// package when the body's effects are order-sensitive:
//
//   - appending to a slice that outlives the loop, unless the same slice
//     is sorted later in the function (the sanctioned collect-then-sort
//     pattern);
//   - writing, printing, encoding or hashing into a sink that outlives
//     the loop — serialized bytes must never depend on iteration order.
//
// Order-insensitive bodies — building another map, deleting keys, integer
// counting — pass. Floating-point accumulation is the module-wide
// floatsum check.
var mapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "map-iteration order leaking into slices or serialized output in determinism-critical packages",
	Run:  runMapIter,
}

// writeMethods are method names that emit bytes or fold state in call
// order: one call per map iteration makes the result order-dependent.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true, "Sum32": true, "Sum64": true, "Checksum": true,
}

// writePkgFuncs are package-qualified functions with the same property.
// The empty sink means the function writes to a process-global stream.
var writePkgFuncs = map[string]int{ // value: index of the sink argument, -1 for global
	"fmt.Fprint": 0, "fmt.Fprintf": 0, "fmt.Fprintln": 0,
	"fmt.Print": -1, "fmt.Printf": -1, "fmt.Println": -1,
	"io.WriteString": 0,
	"binary.Write":   0,
	"crc32.Update":   -1,
}

func runMapIter(_ *Analysis, p *Package) []Finding {
	if !deterministicPkgs[p.RelPath] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
				return true
			}
			if rs.Key == nil && rs.Value == nil {
				// `for range m` — the body cannot observe keys, so its
				// repetitions are order-independent.
				return true
			}
			out = append(out, checkMapRangeBody(p, file, rs)...)
			return true
		})
	}
	return out
}

func checkMapRangeBody(p *Package, file *ast.File, rs *ast.RangeStmt) []Finding {
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports independently.
			if stmt != rs && isMapType(p.Info.TypeOf(stmt.X)) {
				return false
			}
		case *ast.AssignStmt:
			if dest, ok := appendDest(stmt); ok {
				id := rootIdent(dest)
				if id == nil || declaredWithin(p, id, rs) {
					return true // per-iteration local: order-independent
				}
				if !sortedAfter(p, file, rs, dest) {
					out = append(out, p.finding("mapiter", stmt.Pos(),
						"append to %s in map-iteration order with no later sort; collect then sort, or iterate sorted keys",
						types.ExprString(dest)))
				}
			}
		case *ast.CallExpr:
			if f := checkOrderedWrite(p, rs, stmt); f != nil {
				out = append(out, *f)
			}
		}
		return true
	})
	return out
}

// appendDest matches `dest = append(dest, ...)` (and append-to-field
// variants), returning the destination expression.
func appendDest(as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil, false
	}
	return as.Lhs[0], true
}

// sortedAfter reports whether the slice built inside the range is handed
// to a sorting call later in the same function: sort.Slice(dest, ...),
// sort.Strings(dest), or a local helper whose name contains "sort"
// (sortPairs(dest), sortTargetStats(dest)). That is the repo's sanctioned
// collect-then-sort idiom, and it is what makes the loop deterministic.
func sortedAfter(p *Package, file *ast.File, rs *ast.RangeStmt, dest ast.Expr) bool {
	body := enclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	want := types.ExprString(dest)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		// Match on the full callee expression so sort.Slice, sort.Strings,
		// slices.Sort, sortPairs and dest.Sort() all qualify.
		name := strings.ToLower(types.ExprString(call.Fun))
		if !strings.Contains(name, "sort") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == want {
				found = true
				return false
			}
		}
		// Method form dest.Sort() / sort on the receiver.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if types.ExprString(sel.X) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkOrderedWrite flags serialization/hash calls inside the map range
// whose sink outlives the loop.
func checkOrderedWrite(p *Package, rs *ast.RangeStmt, call *ast.CallExpr) *Finding {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if pkgPath, name, ok := pkgFuncRef(p, sel); ok {
		short := pkgShort(pkgPath) + "." + name
		argIdx, hit := writePkgFuncs[short]
		if !hit {
			return nil
		}
		if argIdx >= 0 && argIdx < len(call.Args) {
			if id := rootIdent(call.Args[argIdx]); id != nil && declaredWithin(p, id, rs) {
				return nil // sink is per-iteration local
			}
		}
		f := p.finding("mapiter", call.Pos(),
			"%s inside a map range serializes in iteration order; iterate sorted keys", short)
		return &f
	}
	// Method call: x.Write(...), enc.Encode(...), h.Sum(...).
	if !writeMethods[sel.Sel.Name] {
		return nil
	}
	if p.Info.Selections[sel] == nil {
		return nil // not a method selection (e.g. a struct field holding a func)
	}
	if id := rootIdent(sel.X); id != nil && declaredWithin(p, id, rs) {
		return nil
	}
	// Writing into a per-iteration value of the ranged map itself is fine;
	// writing into anything that outlives the loop is not.
	f := p.finding("mapiter", call.Pos(),
		"%s.%s inside a map range serializes in iteration order; iterate sorted keys",
		types.ExprString(sel.X), sel.Sel.Name)
	return &f
}

func pkgShort(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
