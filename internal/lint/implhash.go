package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// The cache key must move when the *analyzers* change, not just the
// analyzed sources: a warm cache populated by yesterday's mantralint
// must not answer for today's. Check names alone cannot see an edited
// analyzer body, so the key folds in a fingerprint of the
// implementation itself.
//
// Two strategies, in preference order:
//
//  1. From a source checkout (the `make lint` / `go run` / `go test`
//     path, and the only place a stale-after-edit cache can exist):
//     hash this package's non-test sources, located via runtime.Caller.
//  2. From an installed binary whose sources are gone: the module build
//     info (VCS revision + dirty flag), which moves with any release.
//
// When neither resolves, the fingerprint degrades to a constant — no
// worse than the pre-v4 behavior — and the cacheSchema constant remains
// the manual override.

// implFingerprint returns the analyzer-implementation hash folded into
// every cache key. It is a variable so tests can simulate an analyzer
// edit without rewriting source files.
var implFingerprint = implHash

var implHashOnce = sync.OnceValue(func() string {
	if h, ok := implSourceHash(); ok {
		return h
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return "vcs:" + s.Value
			}
		}
		if info.Main.Version != "" && info.Main.Version != "(devel)" {
			return "mod:" + info.Main.Version
		}
	}
	return "unknown"
})

func implHash() string {
	return implHashOnce()
}

// implSourceHash hashes the lint package's own non-test .go files.
func implSourceHash() (string, bool) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return "", false
	}
	dir := filepath.Dir(self)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", false
		}
		fmt.Fprintf(h, "file=%s:%d\n", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], true
}
