package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// This file parses the v4 field-flow markers (DESIGN.md §15). All three
// are doc-comment annotations of the form
//
//	//mantra:<kind> key=value key=value ...
//
// codec declares one half of an encode/decode pair (on a function) or a
// serialized-shape pin (on a struct type declaration):
//
//	//mantra:codec pair=walrecord role=encode type=walRecord magic=segMagic shape=8f3a...
//	//mantra:codec pair=walrecord role=decode type=walRecord
//	//mantra:codec pair=ckptblob magic=ckptMagic shape=01ab...      (on a type)
//
// statetransfer declares the state-transfer coverage contract: roots are
// the entry points of the checkpoint and shard-handoff paths, seams are
// the per-component export/import/remove functions that must stay
// reachable from them:
//
//	//mantra:statetransfer root=checkpoint-export
//	//mantra:statetransfer component=processor seam=export
//
// sink declares a function whose arguments become serialized bytes, for
// the determinism-taint analyzer:
//
//	//mantra:sink serialization
//
// Like //mantra:hotpath, a defective marker is itself a finding (under
// the owning analyzer's check name): a marker that silently fails to
// register would quietly shrink coverage.
const (
	codecMarker    = "//mantra:codec"
	transferMarker = "//mantra:statetransfer"
	sinkMarker     = "//mantra:sink"
)

// transferRootFlavors is the closed set of declared transfer roots: the
// two checkpoint directions plus the three shard-handoff operations.
var transferRootFlavors = map[string]bool{
	"checkpoint-export": true,
	"checkpoint-import": true,
	"handoff-export":    true,
	"handoff-import":    true,
	"handoff-remove":    true,
}

// CodecMark is one parsed //mantra:codec annotation, with its symbolic
// references resolved so the global phase needs no type information.
type CodecMark struct {
	Pair string `json:"pair"`
	// Role is "encode" or "decode" for function marks, "" for type pins.
	Role string `json:"role,omitempty"`
	// TypeFull is the resolved full name of the target type
	// ("repro/internal/core/logger.walRecord").
	TypeFull string `json:"type,omitempty"`
	// Magic is the named format-version constant; MagicValue its resolved
	// constant value (ExactString), "" when no magic is named.
	Magic      string `json:"magic,omitempty"`
	MagicValue string `json:"magicValue,omitempty"`
	// Shape is the pinned hex16 digest of the serialized shape, "" when
	// not yet pinned (codecsym then reports the value to pin).
	Shape string `json:"shape,omitempty"`
	Pos   Pos    `json:"pos"`
}

// TransferMark is one parsed //mantra:statetransfer annotation.
type TransferMark struct {
	// Root is the flavor for root marks ("checkpoint-export", ...).
	Root string `json:"root,omitempty"`
	// Component and Seam are set for seam marks; Seam is one of
	// export/import/remove.
	Component string `json:"component,omitempty"`
	Seam      string `json:"seam,omitempty"`
	// Recv is the receiver's full named type for method seams, "" for
	// plain functions — the struct whose per-target fields statecov
	// checks for coverage.
	Recv string `json:"recv,omitempty"`
	Pos  Pos    `json:"pos"`
}

// parseMarkArgs splits a marker comment into its key=value fields. ok is
// false when text is not the given marker at all; defect carries a
// message when it is ours but malformed. Order preserves the source
// order of keys (shape digests and messages depend on nothing else).
func parseMarkArgs(text, marker string) (args map[string]string, ok bool, defect string) {
	if !strings.HasPrefix(text, marker) {
		return nil, false, ""
	}
	rest := strings.TrimPrefix(text, marker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false, "" // e.g. //mantra:codecs — not ours
	}
	args = make(map[string]string)
	for _, field := range strings.Fields(rest) {
		key, val, found := strings.Cut(field, "=")
		if !found || key == "" || val == "" {
			return args, true, "argument " + quote(field) + " is not key=value"
		}
		if _, dup := args[key]; dup {
			return args, true, "duplicate argument " + quote(key)
		}
		args[key] = val
	}
	return args, true, ""
}

// pkgMarks is everything collectPkgMarks extracts from one package's
// comments: per-function marks, pinned/tracked structs, and the marker
// defects (already findings).
type pkgMarks struct {
	funcs   map[*ast.FuncDecl]*funcMarks
	structs []*StructSum
	defects []Finding
	// tracked is the set of struct full names whose field accesses are
	// recorded as FieldUse facts: codec-pinned types and seam receivers.
	tracked map[string]bool
}

type funcMarks struct {
	codec    *CodecMark
	transfer *TransferMark
	sink     string
}

// collectPkgMarks walks a package's declarations, parsing and validating
// every v4 marker. Function marks attach to FuncDecl doc comments; codec
// pins attach to type declarations; anything else is dangling.
func collectPkgMarks(p *Package) *pkgMarks {
	pm := &pkgMarks{
		funcs:   make(map[*ast.FuncDecl]*funcMarks),
		tracked: make(map[string]bool),
	}
	for _, file := range p.Files {
		attached := make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				attached[d.Doc] = true
				pm.funcMarksOf(p, d)
			case *ast.GenDecl:
				if d.Doc != nil {
					attached[d.Doc] = true
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if ts.Doc != nil {
						attached[ts.Doc] = true
					}
					for _, doc := range []*ast.CommentGroup{d.Doc, ts.Doc} {
						if doc != nil {
							pm.typePin(p, ts, doc)
						}
					}
				}
			}
		}
		// Every marker in a comment group not attached to a declaration is
		// dangling: it registers nothing and must fail the build.
		for _, cg := range file.Comments {
			if attached[cg] {
				continue
			}
			for _, c := range cg.List {
				for _, m := range []struct{ marker, check, anchor string }{
					{codecMarker, "codecsym", "a function or type declaration"},
					{transferMarker, "statecov", "a function declaration"},
					{sinkMarker, "sertaint", "a function declaration"},
				} {
					if _, isMark, _ := parseMarkArgs(c.Text, m.marker); isMark {
						pm.defect(p, m.check, c, "dangling %s: the marker must be part of %s's doc comment to register", m.marker, m.anchor)
					}
				}
			}
		}
	}
	return pm
}

func (pm *pkgMarks) defect(p *Package, check string, c *ast.Comment, format string, args ...any) {
	pm.defects = append(pm.defects, p.finding(check, c.Pos(), format, args...))
}

// funcMarksOf parses the codec/statetransfer/sink markers on one
// function's doc comment.
func (pm *pkgMarks) funcMarksOf(p *Package, fd *ast.FuncDecl) {
	fm := &funcMarks{}
	for _, c := range fd.Doc.List {
		if args, ok, defect := parseMarkArgs(c.Text, codecMarker); ok {
			if defect != "" {
				pm.defect(p, "codecsym", c, "bad //mantra:codec on %s: %s", fd.Name.Name, defect)
				continue
			}
			if fm.codec != nil {
				pm.defect(p, "codecsym", c, "duplicate //mantra:codec on %s; one marker per function", fd.Name.Name)
				continue
			}
			fm.codec = pm.codecFuncMark(p, fd, c, args)
			continue
		}
		if args, ok, defect := parseMarkArgs(c.Text, transferMarker); ok {
			if defect != "" {
				pm.defect(p, "statecov", c, "bad //mantra:statetransfer on %s: %s", fd.Name.Name, defect)
				continue
			}
			if fm.transfer != nil {
				pm.defect(p, "statecov", c, "duplicate //mantra:statetransfer on %s; one marker per function", fd.Name.Name)
				continue
			}
			fm.transfer = pm.transferMark(p, fd, c, args)
			continue
		}
		if _, ok, _ := parseMarkArgs(c.Text, sinkMarker); ok {
			// The sink marker takes one bare kind token, not key=value
			// fields — parse the remainder directly.
			kind := strings.TrimSpace(strings.TrimPrefix(c.Text, sinkMarker))
			if kind != "serialization" {
				pm.defect(p, "sertaint", c, "bad //mantra:sink on %s: want exactly %q, got %q", fd.Name.Name, "serialization", kind)
				continue
			}
			if fm.sink != "" {
				pm.defect(p, "sertaint", c, "duplicate //mantra:sink on %s", fd.Name.Name)
				continue
			}
			fm.sink = "serialization"
		}
	}
	if fm.codec != nil || fm.transfer != nil || fm.sink != "" {
		pm.funcs[fd] = fm
	}
}

// codecFuncMark validates and resolves one function-side codec marker.
// A defective marker still registers (with whatever resolved) so the
// defect report and the pair index cannot disagree about existence.
func (pm *pkgMarks) codecFuncMark(p *Package, fd *ast.FuncDecl, c *ast.Comment, args map[string]string) *CodecMark {
	// Findings anchor at the function name, not the marker comment:
	// that is the line a fix lands on, and the line a trailing
	// //mantralint:allow can share.
	mark := &CodecMark{
		Pair:  args["pair"],
		Role:  args["role"],
		Magic: args["magic"],
		Shape: args["shape"],
		Pos:   toPos(p, fd.Name.Pos()),
	}
	bad := func(format string, a ...any) {
		pm.defect(p, "codecsym", c, "bad //mantra:codec on %s: %s", fd.Name.Name, fmt.Sprintf(format, a...))
	}
	for key := range args {
		switch key {
		case "pair", "role", "type", "magic", "shape":
		default:
			bad("unknown argument %s", quote(key))
		}
	}
	if mark.Pair == "" {
		bad("missing pair=<name>")
	}
	if mark.Role != "encode" && mark.Role != "decode" {
		bad("role must be encode or decode on a function marker")
	}
	if mark.Role == "decode" && mark.Shape != "" {
		bad("shape= belongs on the encode marker (the encode order is the wire format)")
	}
	typeName := args["type"]
	if typeName == "" {
		bad("missing type=<struct> (the value the codec reads and writes)")
	} else if full, ok := resolveNamedType(p, typeName); ok {
		mark.TypeFull = full
	} else {
		bad("type %s does not resolve to a named type in this package or its imports", quote(typeName))
	}
	if mark.Magic != "" {
		if v, ok := resolveConst(p, mark.Magic); ok {
			mark.MagicValue = v
		} else {
			bad("magic %s does not resolve to a package-level constant", quote(mark.Magic))
		}
	}
	return mark
}

// transferMark validates one statetransfer marker: a root flavor XOR a
// component seam.
func (pm *pkgMarks) transferMark(p *Package, fd *ast.FuncDecl, c *ast.Comment, args map[string]string) *TransferMark {
	mark := &TransferMark{
		Root:      args["root"],
		Component: args["component"],
		Seam:      args["seam"],
		Pos:       toPos(p, fd.Name.Pos()),
	}
	bad := func(format string, a ...any) {
		pm.defect(p, "statecov", c, "bad //mantra:statetransfer on %s: %s", fd.Name.Name, fmt.Sprintf(format, a...))
	}
	for key := range args {
		switch key {
		case "root", "component", "seam":
		default:
			bad("unknown argument %s", quote(key))
		}
	}
	switch {
	case mark.Root != "":
		if mark.Component != "" || mark.Seam != "" {
			bad("a marker is either root=<flavor> or component=<name> seam=<dir>, not both")
		}
		if !transferRootFlavors[mark.Root] {
			bad("unknown root flavor %s (want one of %s)", quote(mark.Root), strings.Join(sortedFlavors(), ", "))
		}
	case mark.Component != "" || mark.Seam != "":
		if mark.Component == "" || mark.Seam == "" {
			bad("seam markers need both component=<name> and seam=<dir>")
		}
		if mark.Seam != "export" && mark.Seam != "import" && mark.Seam != "remove" {
			bad("seam must be export, import or remove")
		}
		if full := recvNamedType(p, fd); full != "" {
			mark.Recv = full
			pm.track(p, full)
		}
	default:
		bad("marker declares neither root= nor component=/seam=")
	}
	return mark
}

// typePin parses a codec shape pin on a type declaration.
func (pm *pkgMarks) typePin(p *Package, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	for _, c := range doc.List {
		args, ok, defect := parseMarkArgs(c.Text, codecMarker)
		if !ok {
			continue
		}
		bad := func(format string, a ...any) {
			pm.defect(p, "codecsym", c, "bad //mantra:codec on type %s: %s", ts.Name.Name, fmt.Sprintf(format, a...))
		}
		if defect != "" {
			bad("%s", defect)
			continue
		}
		mark := &CodecMark{Pair: args["pair"], Magic: args["magic"], Shape: args["shape"], Pos: toPos(p, ts.Name.Pos())}
		for key := range args {
			switch key {
			case "pair", "magic", "shape":
			case "role", "type":
				bad("%s= is for function markers; a type pin is role-less", key)
			default:
				bad("unknown argument %s", quote(key))
			}
		}
		if mark.Pair == "" {
			bad("missing pair=<name>")
		}
		if mark.Magic != "" {
			if v, ok := resolveConst(p, mark.Magic); ok {
				mark.MagicValue = v
			} else {
				bad("magic %s does not resolve to a package-level constant", quote(mark.Magic))
			}
		}
		ss := pm.structFor(p, ts.Name)
		if ss == nil {
			bad("the pinned declaration is not a struct type")
			continue
		}
		if ss.Codec != nil {
			bad("duplicate //mantra:codec pin on one type")
			continue
		}
		ss.Codec = mark
	}
}

// track ensures full's field accesses are recorded as FieldUse facts and
// that its StructSum is in the summary (statecov needs the field list).
func (pm *pkgMarks) track(p *Package, full string) {
	if pm.tracked[full] {
		return
	}
	pm.tracked[full] = true
	for _, s := range pm.structs {
		if s.Name == full {
			return
		}
	}
	// Find the declaring TypeSpec in this package (a seam receiver
	// declared elsewhere is summarized by its own package).
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					if obj := p.Info.Defs[ts.Name]; obj != nil && typeFullName(obj.Type()) == full {
						pm.structFor(p, ts.Name)
						return
					}
				}
			}
		}
	}
}

// structFor returns (building if needed) the StructSum for a type
// declared in this package, nil when it is not a struct.
func (pm *pkgMarks) structFor(p *Package, name *ast.Ident) *StructSum {
	obj := p.Info.Defs[name]
	if obj == nil {
		return nil
	}
	full := typeFullName(obj.Type())
	if full == "" {
		return nil
	}
	for _, s := range pm.structs {
		if s.Name == full {
			return s
		}
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	ss := &StructSum{Name: full, Pos: toPos(p, name.Pos())}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ss.Fields = append(ss.Fields, FieldDecl{
			Name:      f.Name(),
			Type:      types.TypeString(f.Type(), nil),
			Pos:       toPos(p, f.Pos()),
			StringMap: isStringKeyedMap(f.Type()),
		})
	}
	pm.structs = append(pm.structs, ss)
	pm.tracked[full] = true
	return ss
}

// resolveNamedType resolves "Name" (package scope) or "pkg.Name" (an
// import, matched by package name) to a named type's full name.
func resolveNamedType(p *Package, name string) (string, bool) {
	if p.Types == nil {
		return "", false
	}
	scope := p.Types.Scope()
	if pkgName, typeName, qualified := strings.Cut(name, "."); qualified {
		scope = nil
		for _, imp := range p.Types.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return "", false
		}
		name = typeName
	}
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return "", false
	}
	full := typeFullName(tn.Type())
	return full, full != ""
}

// resolveConst resolves a package-level constant name to its exact value.
func resolveConst(p *Package, name string) (string, bool) {
	if p.Types == nil {
		return "", false
	}
	c, ok := p.Types.Scope().Lookup(name).(*types.Const)
	if !ok {
		return "", false
	}
	return c.Val().ExactString(), true
}

// recvNamedType returns the full named type of fd's receiver (pointers
// dereferenced), "" for plain functions.
func recvNamedType(p *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	return typeFullName(t)
}

// typeFullName renders a (possibly pointer-to-)named type as
// "pkgpath.Name", "" for anything else.
func typeFullName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// isStringKeyedMap reports whether t's underlying type is a map with a
// string-kind key — the per-target state shape statecov's field-coverage
// check is about.
func isStringKeyedMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func sortedFlavors() []string {
	out := make([]string, 0, len(transferRootFlavors))
	for f := range transferRootFlavors {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// shapeDigest is the hex16 fingerprint codecsym pins: fnv64a over the
// given parts (encode-order field paths, or a struct's field list) with
// the magic constant's value folded in, so bumping the magic always moves
// the digest and forces a deliberate re-pin.
func shapeDigest(parts []string, magicValue string) string {
	h := fnv.New64a()
	for _, s := range parts {
		io.WriteString(h, s)
		h.Write([]byte{'\n'})
	}
	io.WriteString(h, "magic="+magicValue)
	return fmt.Sprintf("%016x", h.Sum64())
}

// pathBase trims a (slash or native) path to its last element for
// finding messages that reference the other half of a flow.
func pathBase(p string) string {
	p = strings.ReplaceAll(p, "\\", "/")
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
