package lint

import (
	"go/ast"
)

// walTaintAnalyzer guards the archive's on-disk invariant: every byte
// that reaches a WAL or checkpoint file flows through the checksummed
// frame writer, so the open-time scan can tell a torn tail from a valid
// record. A direct file write that bypasses framing produces bytes the
// scanner must classify as corruption — silently shrinking the archive
// on the next restart.
//
// In internal/core/logger:
//
//   - (*os.File).WriteString, (*os.File).WriteAt and os.WriteFile are
//     always findings: frames are length-prefixed []byte, so these
//     shapes cannot be the frame writer;
//   - (*os.File).Write is a finding unless the enclosing function also
//     computes the frame checksum (calls crc32.Checksum/Update) — the
//     signature of the frame writer itself, where checksum and bytes
//     travel together.
//
// The two legitimate unframed writes (the 8-byte segment magic, the
// checkpoint helper that receives caller-framed bytes) carry reasoned
// allow comments; anything new is a finding first.
//
// internal/core/tsdb is in scope too: the block mirror under DataDir
// reuses the same segment-magic + CRC-framed discipline, and its
// open-time scan makes the same torn-tail-vs-corruption distinction.
var walTaintAnalyzer = &Analyzer{
	Name: "waltaint",
	Doc:  "direct file write on WAL/checkpoint paths bypassing the checksummed frame writer",
	Run:  runWalTaint,
}

var rawWriteMethods = map[string]string{
	"(*os.File).Write":       "(*os.File).Write",
	"(*os.File).WriteString": "(*os.File).WriteString",
	"(*os.File).WriteAt":     "(*os.File).WriteAt",
}

func runWalTaint(a *Analysis, p *Package) []Finding {
	if p.RelPath != "internal/core/logger" && p.RelPath != "internal/core/tsdb" {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(p, call)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			if full == "os.WriteFile" {
				out = append(out, p.finding("waltaint", call.Pos(),
					"os.WriteFile bypasses the checksummed frame writer; archive bytes must be CRC-framed"))
				return true
			}
			name, raw := rawWriteMethods[full]
			if !raw {
				return true
			}
			if full == "(*os.File).Write" && checksumsInFunc(p, file, call) {
				return true // the frame writer itself: checksum and bytes travel together
			}
			out = append(out, p.finding("waltaint", call.Pos(),
				"direct %s bypasses the checksummed frame writer; archive bytes must be CRC-framed", name))
			return true
		})
	}
	return out
}

// checksumsInFunc reports whether the function enclosing call also
// computes a CRC over a payload — the frame-writer signature.
func checksumsInFunc(p *Package, file *ast.File, call *ast.CallExpr) bool {
	body := enclosingFuncBody(file, call.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(p, c); fn != nil {
			switch fn.FullName() {
			case "hash/crc32.Checksum", "hash/crc32.Update", "hash/crc32.ChecksumIEEE":
				found = true
			}
		}
		return !found
	})
	return found
}
