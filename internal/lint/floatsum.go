package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatSumAnalyzer flags floating-point accumulation in map-iteration
// order, module-wide. Float addition is not associative: summing the same
// values in a different order produces different low bits, so any
// map-range accumulation whose result is later compared, logged or
// checksummed varies run to run — the stability MeanAvailability bug PR 3
// fixed. Integer accumulation commutes exactly and passes; the fix is the
// sorted-keys idiom (collect keys, sort, then sum).
var floatSumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc:  "floating-point accumulation in map-iteration order",
	Run:  runFloatSum,
}

func runFloatSum(_ *Analysis, p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				lhs := as.Lhs[0]
				if !isFloat(p.Info.TypeOf(lhs)) {
					return true
				}
				id := rootIdent(lhs)
				if id == nil || declaredWithin(p, id, rs) {
					return true // per-iteration local: order cannot leak
				}
				switch as.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					out = append(out, floatFinding(p, as.Pos(), lhs))
				case token.ASSIGN:
					// x = x + v (and -, *, /) spelled out.
					if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && selfReferential(bin, lhs) {
						out = append(out, floatFinding(p, as.Pos(), lhs))
					}
				}
				return true
			})
			return true
		})
	}
	return out
}

func floatFinding(p *Package, pos token.Pos, lhs ast.Expr) Finding {
	return p.finding("floatsum", pos,
		"floating-point accumulation into %s in map-iteration order is not byte-deterministic; sum over sorted keys",
		types.ExprString(lhs))
}

// selfReferential reports whether the binary expression's operand tree
// mentions lhs — the x = x + v shape.
func selfReferential(bin *ast.BinaryExpr, lhs ast.Expr) bool {
	want := types.ExprString(lhs)
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
			return false
		}
		return !found
	})
	return found
}
