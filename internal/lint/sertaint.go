package lint

import (
	"fmt"
	"sort"
	"strings"
)

// serTaintAnalyzer is the interprocedural determinism-taint check: a
// value whose content depends on nondeterministic order — accumulated
// across a map range, a select arm, or goroutine completion, or read
// from an unseamed clock/rand — must not reach a serialization sink
// (the WAL frame writer, checkpoint blobs, JSON encoders, HTTP
// responses). Each function's def-use graph is extracted at summary
// time (taint.go); here the graphs are stitched along static call edges
// — argument to parameter, return to call result, sends to shared
// channel nodes — and every source is flood-filled to see whether a
// sink is reachable, however many functions away.
//
// This subsumes the per-function mapiter/floatsum approximations: a
// map-range value laundered through a helper's return value, or handed
// across a channel, still taints the bytes the paper's recovery
// protocol requires to be deterministic.
//
// Module sinks are declared with //mantra:sink serialization on the
// function whose arguments become bytes; sort.* calls sanitize, and the
// wallclock/globalrand allow comments double as declared clock/rand
// seams. The analysis is module-wide and runs over the per-package fact
// summaries, cold or cached alike.
var serTaintAnalyzer = &Analyzer{
	Name: "sertaint",
	Doc:  "nondeterministically ordered value (map range, select arm, goroutine, unseamed time/rand) flows into a serialization sink",
	Run: func(a *Analysis, p *Package) []Finding {
		return filterCheck(a.globalFindings()[p.RelPath], "sertaint")
	},
}

// taintSink is one sink node's report data.
type taintSink struct {
	desc string
	pos  Pos
}

func serTaintFindings(idx *sumIndex, add func(string, Finding)) {
	adj := make(map[string][]string)
	sinks := make(map[string]taintSink)
	edge := func(from, to string) { adj[from] = append(adj[from], to) }
	qual := func(fn, node string) string {
		if strings.HasPrefix(node, "chan ") {
			return node // channel nodes are shared module-wide
		}
		return fn + "|" + node
	}

	for _, name := range idx.names {
		t := idx.funcs[name].Taint
		if t == nil {
			continue
		}
		// usedArgs[k] is the set of argument indices with inbound flow —
		// the only ones worth cross-linking.
		usedArgs := make(map[int][]int)
		for _, e := range t.Edges {
			edge(qual(name, e.From), qual(name, e.To))
			var k, j int
			if n, _ := fmt.Sscanf(e.To, "c%d.a%d", &k, &j); n == 2 {
				usedArgs[k] = append(usedArgs[k], j)
			}
		}
		for _, call := range t.Calls {
			res := qual(name, fmt.Sprintf("c%d.r", call.Index))
			callee := idx.funcs[call.Callee]
			switch {
			case callee == nil:
				// Outside the module (stdlib): conservative pass-through,
				// arguments to result.
				for _, j := range usedArgs[call.Index] {
					edge(qual(name, fmt.Sprintf("c%d.a%d", call.Index, j)), res)
				}
			case callee.Taint != nil:
				for _, j := range usedArgs[call.Index] {
					p := j
					if p >= callee.Taint.Params {
						p = callee.Taint.Params - 1 // variadic tail
					}
					if p >= 0 {
						edge(qual(name, fmt.Sprintf("c%d.a%d", call.Index, j)),
							qual(call.Callee, fmt.Sprintf("p%d", p)))
					}
				}
				edge(qual(call.Callee, "ret"), res)
			}
			// A module function with nil Taint has no internal flow at all:
			// arguments die inside it and nothing nondeterministic returns.

			if call.Sink != "" {
				for _, j := range usedArgs[call.Index] {
					if j >= call.DataFrom {
						sinks[qual(name, fmt.Sprintf("c%d.a%d", call.Index, j))] =
							taintSink{desc: call.Sink, pos: call.Pos}
					}
				}
			}
			if callee != nil && callee.Sink != "" {
				for _, j := range usedArgs[call.Index] {
					sinks[qual(name, fmt.Sprintf("c%d.a%d", call.Index, j))] =
						taintSink{desc: callee.Short + " (declared //mantra:sink serialization)", pos: call.Pos}
				}
			}
		}
	}
	for from := range adj {
		sort.Strings(adj[from])
	}

	for _, name := range idx.names {
		t := idx.funcs[name].Taint
		if t == nil {
			continue
		}
		for i, src := range t.Sources {
			witness, ok := reachSink(qual(name, fmt.Sprintf("s%d", i)), adj, sinks)
			if !ok {
				continue
			}
			add(idx.rel[name], Finding{
				Pos:   posOf(src.Pos),
				Check: "sertaint",
				Message: fmt.Sprintf("%s flows into %s (%s:%d); serialized bytes must not depend on nondeterministic order — sort, seam, or restructure before serializing",
					src.Desc, witness.desc, pathBase(witness.pos.File), witness.pos.Line),
			})
		}
	}
}

// reachSink flood-fills from a source node and returns the minimal sink
// witness reached — minimal by (description, file base, line, column),
// which is identical between cold (absolute paths) and warm (relative
// paths) runs.
func reachSink(start string, adj map[string][]string, sinks map[string]taintSink) (taintSink, bool) {
	seen := map[string]bool{start: true}
	queue := []string{start}
	var best taintSink
	found := false
	better := func(a, b taintSink) bool {
		if a.desc != b.desc {
			return a.desc < b.desc
		}
		af, bf := pathBase(a.pos.File), pathBase(b.pos.File)
		if af != bf {
			return af < bf
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.pos.Col < b.pos.Col
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if s, isSink := sinks[cur]; isSink && (!found || better(s, best)) {
			best, found = s, true
		}
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return best, found
}
