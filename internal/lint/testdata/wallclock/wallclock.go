// Fixture for the wallclock analyzer. The check is module-wide: any rel
// path works; this one loads "as" internal/core/engine.
package engine

import "time"

func stampNow() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock`
}

// bareReference acquires the wall clock without calling it; still flagged.
var nowFunc = time.Now // want `time.Now reads the wall clock`

// injected consumes a clock parameter — the sanctioned shape, no finding.
func injected(now func() time.Time) time.Time {
	return now()
}

// parseOnly uses time for types and parsing, not the clock; must pass.
func parseOnly(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}

// suppressedSeam is a documented composition root.
func suppressedSeam() time.Time {
	return time.Now() //mantralint:allow wallclock fixture: documented live seam
}
