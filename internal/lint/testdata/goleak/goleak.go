// Fixture for the goleak analyzer (module-wide); loaded "as"
// internal/netsim.
package netsim

import "time"

type poller struct {
	done chan struct{}
	stop bool
}

// leaky: polls a flag forever; nothing can ever stop it.
func (p *poller) leaky() {
	go func() {
		for { // want `goroutine loops forever with no stop path`
			if p.stop {
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

// stoppable: selects on a done channel — clean.
func (p *poller) stoppable() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			default:
			}
		}
	}()
}

// run loops forever; the fact travels the call graph to every spawner.
func (p *poller) run() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// spawnNamed: `go p.run()` is judged by run's body.
func (p *poller) spawnNamed() {
	go p.run() // want `goroutine runs \(\*poller\)\.run, which loops forever`
}

// bounded: a straight-line goroutine terminates on its own — clean.
func (p *poller) bounded() {
	go func() {
		p.stop = true
	}()
}

// worker: ranges over a jobs channel; closing it ends the goroutine —
// clean.
func worker(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// server: the accept-loop shape; the error return is the stop path —
// clean.
func server(accept func() (int, error)) {
	go func() {
		for {
			if _, err := accept(); err != nil {
				return
			}
		}
	}()
}
