// Fixture for the globalrand analyzer; loaded "as" internal/netsim.
package netsim

import "math/rand"

func pickGlobal(n int) int {
	return rand.Intn(n) // want `global rand.Intn is unseedable per run`
}

func jitterGlobal() float64 {
	return rand.Float64() // want `global rand.Float64 is unseedable per run`
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle is unseedable per run`
}

// seeded uses an explicit source — the sanctioned path, no finding.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// suppressed is a justified exception.
func suppressed() float64 {
	return rand.Float64() //mantralint:allow globalrand fixture: output is diagnostic only
}
