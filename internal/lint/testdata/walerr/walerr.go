// Fixture for the walerr analyzer; loaded "as" internal/core/logger (a
// crash-safety package).
package logger

import "os"

type seg struct{ f *os.File }

func (s *seg) writeFrame(b []byte) error { _, err := s.f.Write(b); return err } // want `direct \(\*os\.File\)\.Write bypasses the checksummed frame writer`
func (s *seg) syncAll() error            { return s.f.Sync() }
func (s *seg) rotateSegment() error      { return nil }

func dropImplicit(s *seg, b []byte) {
	s.writeFrame(b) // want `writeFrame returns an error that is silently dropped`
}

func dropBlank(s *seg) {
	_ = s.syncAll() // want `syncAll returns an error that is discarded with _`
}

func dropDeferred(s *seg) {
	defer s.f.Close() // want `Close returns an error that is silently dropped \(deferred\)`
}

func dropGo(s *seg) {
	go s.rotateSegment() // want `rotateSegment returns an error that is silently dropped \(go statement\)`
}

// handled propagates the error — the contract, no finding.
func handled(s *seg, b []byte) error {
	if err := s.writeFrame(b); err != nil {
		return err
	}
	return s.syncAll()
}

// recorded folds the error into state — also fine.
func recorded(s *seg, b []byte, errCount *int) {
	if err := s.writeFrame(b); err != nil {
		*errCount++
	}
}

// nonWritePath calls are outside the write-verb surface; no finding even
// when the error is dropped.
func nonWritePath(stat func() error) {
	stat()
}

// suppressed is a documented best-effort site.
func suppressed(s *seg) {
	_ = s.syncAll() //mantralint:allow walerr fixture: best-effort on an error path already returning
}
