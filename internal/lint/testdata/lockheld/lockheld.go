// Fixture for the lockheld analyzer; loaded "as" internal/core/engine
// (an engine-boundary package).
package engine

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	f  *os.File
	ch chan int
}

// directSend: lock held across a channel send.
func (s *store) directSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `s\.mu held across channel send`
	s.mu.Unlock()
}

// deferredUnlock: a deferred unlock holds the section to function end.
func (s *store) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `s\.mu held across time\.Sleep`
}

// releasedFirst: the blocking op happens after the unlock — clean.
func (s *store) releasedFirst(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// syncUnderLock: fsync inside the critical section.
func (s *store) syncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `s\.mu held across \(\*os\.File\)\.Sync`
}

// flush blocks (fsync); the fact is computed on the call graph.
func (s *store) flush() error { return s.f.Sync() }

// transitive: lock held across a call chain ending in fsync.
func (s *store) transitive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want `s\.mu held across call to \(\*store\)\.flush, which blocks`
}

// readLock: a read lock held across a receive counts too.
func (s *store) readLock() {
	s.rw.RLock()
	<-s.ch // want `s\.rw held across channel receive`
	s.rw.RUnlock()
}

// spawned: the send runs on a new goroutine, not in the section — clean.
func (s *store) spawned(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- v }()
}

// distinctLocks: s.mu's section ends before s.rw's begins; the blocking
// op sits only in s.rw's section.
func (s *store) distinctLocks() {
	s.mu.Lock()
	s.mu.Unlock()
	s.rw.Lock()
	time.Sleep(time.Millisecond) // want `s\.rw held across time\.Sleep`
	s.rw.Unlock()
}

// nonBlockingSection: plain state mutation under the lock — clean.
func (s *store) nonBlockingSection(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = v
}
