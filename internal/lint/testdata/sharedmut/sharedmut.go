// Fixture for the sharedmut analyzer; loaded "as" internal/core/engine
// (an engine-boundary package).
package engine

type item struct {
	seq  int
	data []byte
}

type eng struct {
	out     chan *item
	pending map[int]*item
}

// sendThenMutate: the producer writes after the handoff — the consumer
// may observe either state.
func (e *eng) sendThenMutate(it *item) {
	e.out <- it
	it.data = nil // want `it\.data is written after being sent on channel e\.out`
}

// mutateThenSend: the write precedes the handoff — clean.
func (e *eng) mutateThenSend(it *item) {
	it.data = nil
	e.out <- it
}

// bufferInsert: the reorder-buffer shape — parked in a shared map, then
// patched.
func (e *eng) bufferInsert(next int) {
	for it := range e.out {
		e.pending[it.seq] = it
		it.seq = next // want `it\.seq is written after being inserted into e\.pending`
	}
}

// builderInsert: a single-owner builder loop (no concurrency in the
// function) may fill structs after insertion — clean.
func builderInsert(names []string) map[string]*item {
	out := make(map[string]*item)
	for i, n := range names {
		it := &item{}
		out[n] = it
		it.seq = i
	}
	return out
}

// captureThenWrite: rebinding a variable captured by a goroutine races
// the goroutine's reads.
func captureThenWrite(ch chan int) {
	n := 0
	go func() { ch <- n }()
	n = 1 // want `n is written after being captured by the goroutine started at line 5\d`
}

// rebindAfterSend: the receiver got its own copy of the pointer;
// rebinding the local name is safe — clean.
func (e *eng) rebindAfterSend(it *item) {
	e.out <- it
	it = &item{}
	_ = it
}

// valueSend: ints are copied into the channel; later writes are local —
// clean.
func valueSend(ch chan int) {
	v := 1
	ch <- v
	v = 2
	_ = v
}
