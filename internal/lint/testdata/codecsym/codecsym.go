// Fixture for the codecsym analyzer: a symmetric pair with a pinned
// shape (clean), a decode half that dropped a field, a pair whose halves
// read fields in different orders, an unpinned pair, halves versioning
// against different magic constants, a healthy type pin, a type pin
// whose struct grew a field after pinning, and the allow escape hatch.
// Loaded as internal/netsim; codecsym is module-wide and unscoped.
package netsim

// Two format-version constants so the magic-mismatch case has something
// to disagree about.
const (
	frameMagic = "NSIM0001"
	blobMagic  = "NSIM0002"
)

// --- shared little codec toolkit -----------------------------------------

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func putByte(b []byte, v byte) []byte { return append(b, v) }

func putStr(b []byte, s string) []byte {
	b = putU64(b, uint64(len(s)))
	return append(b, s...)
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) u64() uint64 {
	v := uint64(r.b[r.off])
	r.off += 8
	return v
}

func (r *reader) byte() byte {
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) str() string {
	n := int(r.u64())
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// --- clean pair: same fields, same order, shape pinned --------------------

type frame struct {
	Seq  uint64
	Kind byte
	Name string
}

//mantra:codec pair=frame role=encode type=frame magic=frameMagic shape=618de10ecb9d7655
func encodeFrame(f frame) []byte {
	b := make([]byte, 0, 32)
	b = putU64(b, f.Seq)
	b = putByte(b, f.Kind)
	b = putStr(b, f.Name)
	return b
}

//mantra:codec pair=frame role=decode type=frame magic=frameMagic
func decodeFrame(r *reader) frame {
	var f frame
	f.Seq = r.u64()
	f.Kind = r.byte()
	f.Name = r.str()
	return f
}

// --- drift: decode dropped the Flags field --------------------------------

type driftRec struct {
	ID    uint64
	Flags string
	Note  string
}

//mantra:codec pair=drift role=encode type=driftRec magic=frameMagic shape=253513a5b77f0db5
func encodeDrift(e driftRec) []byte {
	b := make([]byte, 0, 32)
	b = putU64(b, e.ID)
	b = putStr(b, e.Flags)
	b = putStr(b, e.Note)
	return b
}

//mantra:codec pair=drift role=decode type=driftRec magic=frameMagic
func decodeDrift(r *reader) driftRec { // want `codec pair "drift": encode \(netsim.encodeDrift, codecsym.go\) writes Flags but decode netsim.decodeDrift never reads it`
	var e driftRec
	e.ID = r.u64()
	e.Note = r.str()
	return e
}

// --- order: both halves touch both fields, in opposite orders -------------

type orderRec struct {
	A uint64
	B uint64
}

//mantra:codec pair=order role=encode type=orderRec magic=frameMagic shape=bd5d0e1b100476aa
func encodeOrder(e orderRec) []byte {
	b := make([]byte, 0, 16)
	b = putU64(b, e.A)
	b = putU64(b, e.B)
	return b
}

//mantra:codec pair=order role=decode type=orderRec magic=frameMagic
func decodeOrder(r *reader) orderRec { // want `codec pair "order": field order diverges at position 1 — encode \(codecsym.go\) writes A, decode reads B; the wire bytes will be misparsed silently`
	var e orderRec
	e.B = r.u64()
	e.A = r.u64()
	return e
}

// --- unpinned: symmetric but no shape= on the encode half -----------------

type loosePair struct {
	V uint64
}

//mantra:codec pair=loose role=encode type=loosePair magic=frameMagic
func encodeLoose(e loosePair) []byte { // want `codec pair "loose" has no pinned shape; pin the current encode order with shape=`
	return putU64(nil, e.V)
}

//mantra:codec pair=loose role=decode type=loosePair magic=frameMagic
func decodeLoose(r *reader) loosePair {
	var e loosePair
	e.V = r.u64()
	return e
}

// --- magic: halves version against different constants --------------------

type magicRec struct {
	V uint64
}

//mantra:codec pair=magicsplit role=encode type=magicRec magic=frameMagic shape=358b6e508818407d
func encodeMagicSplit(e magicRec) []byte {
	return putU64(nil, e.V)
}

//mantra:codec pair=magicsplit role=decode type=magicRec magic=blobMagic
func decodeMagicSplit(r *reader) magicRec { // want `codec pair "magicsplit" halves resolve different magic values \(encode frameMagic="NSIM0001", decode blobMagic="NSIM0002"\); both halves must version against one constant`
	var e magicRec
	e.V = r.u64()
	return e
}

// --- type pin, healthy: gob-style struct with its shape pinned ------------

// blob rides inside a gob stream, so field IDENTITY is the wire
// contract; the pin freezes name+type of every field.
//
//mantra:codec pair=blob magic=blobMagic shape=f859d838548eb00e
type blob struct {
	Kind  string
	Bytes []byte
}

// --- type pin, drifted: the struct grew a field after pinning -------------

//mantra:codec pair=grown magic=blobMagic shape=08e0f0778652c328
type grownBlob struct { // want `serialized shape of "grown" changed \(computed [0-9a-f]{16}, pinned 08e0f0778652c328\); if the wire format moved, bump blobMagic and re-pin shape=`
	Kind  string
	Bytes []byte
	Extra uint32
}

// --- allow escape hatch: a deliberately encode-only pair ------------------

type oneWay struct {
	V uint64
}

// The export format is write-only by design (external consumers decode
// it); the allow pins that decision.
//
//mantra:codec pair=oneway role=encode type=oneWay magic=frameMagic shape=358b6e508818407d
func encodeOneWay(e oneWay) []byte { //mantralint:allow codecsym the oneway format is decoded by external tooling only
	return putU64(nil, e.V)
}
