// Seeded regression fixture: the two concurrency bug shapes most likely
// to rot the pipelined engine's schedule-equivalence guarantee, written
// against a miniature engine and loaded "as" internal/core/engine.
// TestEngineRegressShapes pins both: if either analyzer loses the
// ability to catch its shape, the suite fails — and since the real
// engine is in the same scoped package, re-introducing either bug there
// fails `make lint` identically.
package engine

import "sync"

type regItem struct {
	seq      int
	snapshot []byte
}

type regEngine struct {
	mu        sync.Mutex
	collected chan *regItem
	pending   map[int]*regItem
}

// publishThenPatch is mutation-after-publish: the worker hands the item
// to the ordered stages, then patches it. Whether the WAL sees the patch
// depends on scheduling — the exact defect the byte-identical-WAL test
// exists to rule out.
func (e *regEngine) publishThenPatch(it *regItem) {
	e.collected <- it
	it.snapshot = nil // want `it\.snapshot is written after being sent on channel e\.collected`
}

// reorderInsertThenPatch mutates an item already parked in the reorder
// buffer, where the sequencer may be reading it.
func (e *regEngine) reorderInsertThenPatch(next int) {
	for it := range e.collected {
		e.pending[it.seq] = it
		it.seq = next // want `it\.seq is written after being inserted into e\.pending`
	}
}

// lockAcrossSend holds the engine lock across the stage-boundary send:
// head-of-line blocking for every state reader, deadlock if the
// consumer needs the same lock.
func (e *regEngine) lockAcrossSend(it *regItem) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collected <- it // want `e\.mu held across channel send`
}
