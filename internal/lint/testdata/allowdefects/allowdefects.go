// Fixture for defects in the suppression comments themselves: an allow
// naming an unknown check, one with no reason, and one naming no check
// are each findings — suppressions must never rot silently. A defective
// allow also fails to suppress, so the wallclock finding on each line
// still reports alongside the defect.
//
// Expectations live in TestAllowDefects rather than // want comments:
// trailing text on an allow comment would be parsed as its reason, so the
// missing-reason case cannot carry an annotation on its own line.
package netsim

import "time"

func unknownCheck() time.Time {
	return time.Now() //mantralint:allow mapitre typo in the check name
}

func missingReason() time.Time {
	return time.Now() //mantralint:allow wallclock
}

func namesNothing() time.Time {
	return time.Now() //mantralint:allow
}
