// The same violating shape as the mapiter fixture, but this package is
// loaded "as" internal/netsim — not a determinism-critical path — so the
// mapiter analyzer must stay silent. (floatsum is module-wide and still
// applies, so the fixture avoids float accumulation.)
package netsim

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
