// Regression fixture pinning the PR 6 session-write wedge shape: the
// send path held the session mutex while pushing into the write queue,
// and the drain goroutine held the queue mutex while touching session
// state — a classic AB/BA inversion that wedged live collectors. It
// lived in internal/core/collect, OUTSIDE lockheld's scoped package
// set, which is exactly why lockorder runs module-wide; this fixture
// loads under that rel path to prove the check still fires there.
package collect

import "sync"

type sessionM struct {
	mu sync.Mutex
	q  *writeQ
}

type writeQ struct {
	mu  sync.Mutex
	buf []byte
}

// send is the Run-loop direction: session lock, then queue lock via
// push.
func (s *sessionM) send(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.q.push(b) // want `collect.writeQ.mu acquired via call to \(\*writeQ\).push while s.mu \(collect.sessionM.mu\) is held, but the module also acquires these locks in the opposite order \(cycle: collect.sessionM.mu → collect.writeQ.mu → collect.sessionM.mu\)`
}

func (q *writeQ) push(b []byte) {
	q.mu.Lock()
	q.buf = append(q.buf, b...)
	q.mu.Unlock()
}

// drain is the writer-goroutine direction PR 6 introduced: queue lock,
// then session lock via touch.
func (q *writeQ) drain(s *sessionM) {
	q.mu.Lock()
	s.touch() // want `collect.sessionM.mu acquired via call to \(\*sessionM\).touch while q.mu \(collect.writeQ.mu\) is held, but the module also acquires these locks in the opposite order`
	q.mu.Unlock()
}

func (s *sessionM) touch() {
	s.mu.Lock()
	s.mu.Unlock()
}
