// Fixture for the allowstale check: an allow whose line no longer
// triggers the named check is itself a finding, so suppressions cannot
// outlive the violation they justified.
package netsim

import "time"

// fresh: the allow suppresses a live finding — clean.
func fresh() time.Time {
	return time.Now() //mantralint:allow wallclock fixture: live allow
}

// stale: nothing on this line reads the wall clock anymore.
func stale() int {
	return 42 //mantralint:allow wallclock the violation moved away // want `allow for "wallclock" suppresses nothing on its line`
}

// staleAbove: a standalone stale allow reports at its own line.
func staleAbove() int {
	//mantralint:allow globalrand nothing random below anymore // want `allow for "globalrand" suppresses nothing on its line`
	return 7
}

// suppressedStale: the line triggers only under another build tag the
// linter cannot see; the stale report itself is allowed.
func suppressedStale() int {
	//mantralint:allow allowstale fixture: the line below triggers only under another build tag
	return 9 //mantralint:allow wallclock gated to another platform
}
