// Regression fixture: the map-order-into-checkpoint bug shape. A
// materialized table is rebuilt by ranging a map, travels through an
// intermediate framing helper, and lands in the checkpoint blob writer
// — two call hops between the nondeterministic accumulation and the
// marked serialization sink. Loaded as internal/core/logger so
// re-introducing the shape in the real checkpoint path fails
// `make lint` identically.
package logger

import "encoding/binary"

type miniSnapshot struct {
	Pairs []string
}

// materialize rebuilds a snapshot from the live table map; the slice
// order is the map's iteration order.
func materialize(table map[string]bool) miniSnapshot {
	var sn miniSnapshot
	for k := range table {
		sn.Pairs = append(sn.Pairs, k) // want `value accumulated in map-iteration order flows into logger.writeBlob \(declared //mantra:sink serialization\) \(sertaintregress.go:\d+\)` `append to sn.Pairs in map-iteration order with no later sort`
	}
	return sn
}

// frame length-prefixes the snapshot's pairs — the intermediate hop.
func frame(sn miniSnapshot) []byte {
	b := binary.AppendUvarint(nil, uint64(len(sn.Pairs)))
	for _, p := range sn.Pairs {
		b = binary.AppendUvarint(b, uint64(len(p)))
		b = append(b, p...)
	}
	return b
}

// writeBlob is the checkpoint blob writer.
//
//mantra:sink serialization
func writeBlob(b []byte) int {
	return len(b)
}

func checkpointTable(table map[string]bool) int {
	return writeBlob(frame(materialize(table)))
}
