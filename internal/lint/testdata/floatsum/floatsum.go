// Fixture for the floatsum analyzer, which is module-wide; loaded "as"
// internal/netsim to show it fires outside the determinism-critical set.
package netsim

func sumCompound(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum in map-iteration order`
	}
	return sum
}

func sumSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into total in map-iteration order`
	}
	return total
}

type stats struct{ mean float64 }

func sumIntoField(m map[string]float64, st *stats) {
	for _, v := range m {
		st.mean += v // want `floating-point accumulation into st.mean in map-iteration order`
	}
}

// intCount commutes exactly; no finding.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// perIteration accumulates into a loop-local; order cannot leak.
func perIteration(m map[string][]float64, sink func(float64)) {
	for _, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		sink(local)
	}
}

// overwrite is not an accumulation; no finding.
func overwrite(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		last = v
	}
	return last
}

// suppressed is a justified exception.
func suppressed(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //mantralint:allow floatsum fixture: consumer tolerates ulp jitter
	}
	return sum
}
