// Regression fixture: the codec-field-drift bug shape against a
// miniature WAL record codec. The decode half silently dropped the
// Reason field — exactly the drift that misparses every later field in
// the frame — and the encode order no longer matches the pinned shape.
// Loaded as internal/core/logger so re-introducing the shape in the
// real WAL codec fails `make lint` identically.
package logger

import "encoding/binary"

const miniMagic = "MWAL0002"

type miniRecord struct {
	Seq    uint64
	Target string
	Reason string
}

func miniAppendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

//mantra:codec pair=minirecord role=encode type=miniRecord magic=miniMagic shape=1111111111111111
func encodeMini(r miniRecord) []byte { // want `serialized shape of "minirecord" changed \(computed [0-9a-f]{16}, pinned 1111111111111111\); if the wire format moved, bump miniMagic and re-pin shape=`
	b := binary.AppendUvarint(nil, r.Seq)
	b = miniAppendStr(b, r.Target)
	b = miniAppendStr(b, r.Reason)
	return b
}

type miniReader struct {
	b   []byte
	off int
}

func (r *miniReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	r.off += n
	return v
}

func (r *miniReader) str() string {
	n := int(r.uvarint())
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

//mantra:codec pair=minirecord role=decode type=miniRecord magic=miniMagic
func decodeMini(r *miniReader) miniRecord { // want `codec pair "minirecord": encode \(logger.encodeMini, codecsymregress.go\) writes Reason but decode logger.decodeMini never reads it`
	var out miniRecord
	out.Seq = r.uvarint()
	out.Target = r.str()
	return out
}
