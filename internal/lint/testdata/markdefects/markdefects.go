// Fixture for v4 marker defects: dangling markers, malformed codec
// arguments, a shape pinned on the decode half, a statetransfer marker
// claiming both root and component, and a bad sink token. Defects are
// asserted directly by TestMarkDefects — a want annotation on a marker
// line would corrupt the marker's own parse.
package netsim

// A dangling codec marker: attached to nothing.
//
//mantra:codec pair=orphan role=encode type=int magic=x

var _ = 0

type defectRec struct {
	V uint64
}

//mantra:codec pair=noType role=encode magic=defectMagic
func defectNoType(e defectRec) uint64 {
	return e.V
}

const defectMagic = "DEFT0001"

//mantra:codec pair=badRole role=transcode type=defectRec
func defectBadRole(e defectRec) uint64 {
	return e.V
}

//mantra:codec pair=decShape role=decode type=defectRec shape=0011223344556677
func defectDecodeShape() defectRec {
	return defectRec{}
}

//mantra:statetransfer root=checkpoint-export component=both seam=export
func defectRootAndComponent() {}

//mantra:statetransfer component=c seam=sideways
func defectBadSeam() {}

//mantra:sink compression
func defectBadSink([]byte) {}

//mantra:codec pair=pinRole role=encode
type defectPinned struct {
	V uint64
}
