// Regression fixture: the dropped-from-handoff bug shape against a
// miniature shard core. The worker's exportInto gathers the logger's
// per-target state but forgot the processor's — the exact omission that
// silently loses a moved target's series on handoff. Loaded as
// internal/core/shard so re-introducing the shape in the real core
// fails `make lint` identically.
package shard

type miniLog struct {
	records map[string][]string
}

//mantra:statetransfer component=minilog seam=export
func (l *miniLog) ExportTarget(name string) []string {
	return l.records[name]
}

//mantra:statetransfer component=minilog seam=import
func (l *miniLog) ImportTarget(name string, recs []string) {
	l.records[name] = recs
}

type miniProc struct {
	series map[string][]float64
}

//mantra:statetransfer component=miniproc seam=export
func (p *miniProc) ExportTarget(name string) []float64 { // want `component "miniproc": no export seam is reachable from the handoff-export root; the component is silently dropped from that transfer path`
	return p.series[name]
}

//mantra:statetransfer component=miniproc seam=import
func (p *miniProc) ImportTarget(name string, s []float64) {
	p.series[name] = s
}

type miniCore struct {
	log  miniLog
	proc miniProc
}

type miniCheckpoint struct {
	logs   map[string][]string
	series map[string][]float64
}

//mantra:statetransfer root=handoff-export
func (c *miniCore) exportInto(ck *miniCheckpoint, name string) {
	ck.logs[name] = c.log.ExportTarget(name)
	// BUG (deliberate): c.proc.ExportTarget(name) is no longer called —
	// the processor's series silently stop moving with the target.
}

//mantra:statetransfer root=handoff-import
func (c *miniCore) importTarget(ck *miniCheckpoint, name string) {
	c.log.ImportTarget(name, ck.logs[name])
	c.proc.ImportTarget(name, ck.series[name])
}

//mantra:statetransfer root=handoff-remove
func (c *miniCore) removeTarget(name string) {
	c.log.ImportTarget(name, nil)
	c.proc.ImportTarget(name, nil)
}

//mantra:statetransfer root=checkpoint-export
func (c *miniCore) checkpoint(ck *miniCheckpoint, names []string) {
	for _, name := range names {
		ck.logs[name] = c.log.ExportTarget(name)
		ck.series[name] = c.proc.ExportTarget(name)
	}
}

//mantra:statetransfer root=checkpoint-import
func (c *miniCore) recover(ck *miniCheckpoint) {
	for name, recs := range ck.logs {
		c.log.ImportTarget(name, recs)
	}
	for name, s := range ck.series {
		c.proc.ImportTarget(name, s)
	}
}
