// Fixture for the lockorder analyzer: an AB/BA inversion seen once
// directly and once through a call, plus a direct recursive
// acquisition. Loaded as internal/netsim — lockorder is deliberately
// unscoped, so it must fire even outside lockheld's package set.
package netsim

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// abOrder takes a.mu then b.mu — one leg of the inversion, with the
// inner acquisition in the same body.
func abOrder() {
	a.mu.Lock()
	b.mu.Lock() // want `netsim.B.mu acquired while a.mu \(netsim.A.mu\) is held, but the module also acquires these locks in the opposite order \(cycle: netsim.A.mu → netsim.B.mu → netsim.A.mu\); pick one order`
	b.mu.Unlock()
	a.mu.Unlock()
}

// baOrder takes b.mu then reaches a.mu through lockA — the other leg,
// propagated over the call graph.
func baOrder() {
	b.mu.Lock()
	lockA() // want `netsim.A.mu acquired via call to netsim.lockA while b.mu \(netsim.B.mu\) is held, but the module also acquires these locks in the opposite order`
	b.mu.Unlock()
}

func lockA() {
	a.mu.Lock()
	a.mu.Unlock()
}

// again locks one mutex expression twice in a row; sync mutexes are
// not reentrant, so this wedges with no second goroutine needed.
func again() {
	a.mu.Lock()
	a.mu.Lock() // want `a.mu locked again in netsim.again while already held \(locked at line 43\); sync mutexes are not reentrant`
	a.mu.Unlock()
	a.mu.Unlock()
}
