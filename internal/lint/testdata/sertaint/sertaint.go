// Fixture for the sertaint analyzer: map-range, select-arm and
// goroutine accumulation orders plus unseamed wall-clock values flowing
// into serialization sinks — directly, through a call, and through a
// channel — with sorted/seamed negatives and both escape hatches (a
// sertaint allow and a wallclock seam allow). Loaded as
// internal/netsim; sertaint is module-wide and unscoped.
package netsim

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// --- map-iteration order straight into a JSON body -------------------------

func dumpTables(tables map[string]int) []byte {
	var names []string
	for name := range tables {
		names = append(names, name) // want `value accumulated in map-iteration order flows into json.Marshal \(sertaint.go:\d+\); serialized bytes must not depend on nondeterministic order — sort, seam, or restructure before serializing`
	}
	b, _ := json.Marshal(names)
	return b
}

// --- negative control: sorting launders the order --------------------------

func dumpTablesSorted(tables map[string]int) []byte {
	var names []string
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	b, _ := json.Marshal(names)
	return b
}

// --- interprocedural: the taint crosses a call into an HTTP response -------

func routeNames(routes map[string]bool) []string {
	var out []string
	for name := range routes {
		out = append(out, name) // want `value accumulated in map-iteration order flows into the HTTP response body \(fmt.Fprint\*\) \(sertaint.go:\d+\)`
	}
	return out
}

func serveRoutes(w http.ResponseWriter, routes map[string]bool) {
	fmt.Fprintf(w, "%v\n", routeNames(routes))
}

// --- select-arm arrival order into a module-declared sink ------------------

// persist frames and writes a blob; the marker is what makes it a sink.
//
//mantra:sink serialization
func persist(w io.Writer, b []byte) {
	w.Write(b)
}

func drainResults(w io.Writer, a, b chan string) {
	var log []byte
	for i := 0; i < 8; i++ {
		select {
		case s := <-a:
			log = append(log, s...) // want `value accumulated in select-arm arrival order flows into netsim.persist \(declared //mantra:sink serialization\) \(sertaint.go:\d+\)`
		case s := <-b:
			log = append(log, s...) // want `value accumulated in select-arm arrival order flows into netsim.persist \(declared //mantra:sink serialization\)`
		}
	}
	persist(w, log)
}

// --- goroutine-completion order into a JSON body ---------------------------

func gatherParallel(targets []string) []byte {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		got []string
	)
	for _, t := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			got = append(got, t) // want `value accumulated in goroutine-completion order flows into json.Marshal \(sertaint.go:\d+\)`
			mu.Unlock()
		}()
	}
	wg.Wait()
	b, _ := json.Marshal(got)
	return b
}

// --- unseamed wall-clock value into a gob checkpoint -----------------------

type stamp struct {
	At time.Time
}

func writeStamp(enc *gob.Encoder) error {
	s := stamp{At: time.Now()} // want `unseamed wall-clock reading \(time.Now\) flows into \(\*gob.Encoder\).Encode \(sertaint.go:\d+\)` `time.Now reads the wall clock`
	return enc.Encode(s)
}

// --- channel propagation: taint rides a struct-typed channel ---------------

type report struct {
	Lines []string
}

func produceReport(m map[string]int, ch chan report) {
	var r report
	for k := range m {
		r.Lines = append(r.Lines, k) // want `value accumulated in map-iteration order flows into json.Marshal \(sertaint.go:\d+\)`
	}
	ch <- r
}

func consumeReport(ch chan report) []byte {
	for r := range ch {
		b, _ := json.Marshal(r)
		return b
	}
	return nil
}

// --- escape hatch 1: a reasoned sertaint allow -----------------------------

// The peer set is a debugging dump whose order is explicitly
// documented as unstable; the allow records that decision.
func dumpPeersUnordered(peers map[string]int) []byte {
	var names []string
	for name := range peers {
		//mantralint:allow sertaint the peer dump is a debug endpoint with documented-unstable order
		names = append(names, name)
	}
	b, _ := json.Marshal(names)
	return b
}

// --- escape hatch 2: a wallclock seam allow doubles as a sertaint seam -----

// snapshotAt is the composition root's clock seam: the one sanctioned
// wall-clock acquisition, so the stamped value is not tainted.
func snapshotAt(enc *gob.Encoder) error {
	//mantralint:allow wallclock composition-root clock seam for checkpoint stamps
	s := stamp{At: time.Now()}
	return enc.Encode(s)
}
