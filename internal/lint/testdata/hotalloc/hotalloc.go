// Fixture for the hotalloc analyzer: declared roots, call-graph
// reachability, per-function budgets, each allocation kind, and the
// //mantralint:allow escape hatch. Loaded as internal/netsim so no
// package-scoped analyzer interferes.
package netsim

import "fmt"

type box struct{ n int }

// sink is an interface-taking callee for the boxing case.
func sink(v any) { _ = v }

// render is reachable from the cycle root with the default budget 0:
// its one allocation site reports.
func render(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf call \(formats through interfaces, allocates\) in netsim.render \(reachable from //mantra:hotpath root netsim.cycle; 1 allocation site\(s\), budget 0\)`
}

// cycle is a declared root; its budget of 1 grandfathers the append
// growth below, so cycle itself stays silent while its callees are
// walked.
//
//mantra:hotpath budget=1
func cycle(items []int) []string {
	var out []string
	for _, n := range items {
		out = append(out, render(n))
	}
	return out
}

// publish is a root with the default budget 0: boxing an int into
// sink's interface parameter inside the loop reports.
//
//mantra:hotpath
func publish(items []int) {
	for _, n := range items {
		sink(n) // want `argument boxed into interface parameter of sink per loop iteration in netsim.publish \(itself a //mantra:hotpath root`
	}
}

// frame's two sites (the copying conversion and the capturing closure)
// are exactly covered by its budget: silent, by design.
//
//mantra:hotpath budget=2
func frame(payload string) func() []byte {
	raw := []byte(payload)
	return func() []byte { return raw }
}

// over is one site past its budget: when the count exceeds the budget,
// every site reports, budget included in the message.
//
//mantra:hotpath budget=1
func over(items []string) map[string]int {
	m := make(map[string]int)
	for _, s := range items {
		b := []byte(s) // want `conversion \[\]byte\(\.\.\.\) copies its operand in netsim.over \(itself a //mantra:hotpath root; 2 allocation site\(s\), budget 1\)`
		m[string(b)]++ // want `conversion string\(\.\.\.\) copies its operand`
	}
	return m
}

// gauge demonstrates the escape hatch: both sites on the allow line
// (append growth and the composite literal) are suppressed.
//
//mantra:hotpath
func gauge(items []int) []box {
	var out []box
	for _, n := range items {
		out = append(out, box{n}) //mantralint:allow hotalloc fixture: the escape hatch must silence exactly this line
	}
	return out
}

// scan pins the loop-span precision fix: a composite literal used as
// the range OPERAND evaluates once, before the first iteration, and
// must not count as a per-iteration site (only the loop body
// re-executes). This was a live false positive on stripEcho's
// delimiter table.
//
//mantra:hotpath
func scan(items []int) int {
	n := 0
	for range []int{1, 2, 4, 8} {
		n++
	}
	for _, it := range items {
		n += it
	}
	return n
}

// coldSetup allocates freely but is reachable from no root: silent.
func coldSetup(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprint(i))
	}
	return out
}
