// Fixture for the hotpath marker checks. A want annotation appended to
// a marker comment would parse as the marker's argument, so this
// fixture cannot self-annotate; TestHotpathDefects matches the findings
// directly.
package netsim

// A floating marker: the blank line detaches it from ok's doc comment,
// so it registers nothing.
//
//mantra:hotpath

func ok() {}

//mantra:hotpath budget=zero
func badBudget() {}

//mantra:hotpath budget=1 extra
func twoArgs() {}

//mantra:hotpath
//mantra:hotpath
func dup() {}

func body() {
	//mantra:hotpath
}
