// Fixture for the statecov analyzer: a fully covered component (clean),
// a per-target field no seam touches, a component with no import seam, a
// component whose export seam fell off every transfer root, a dead extra
// seam, seams split across two receiver types, and the allow escape
// hatch. All five transfer roots are declared locally so reachability is
// judged inside the fixture. Loaded as internal/netsim; statecov is
// module-wide and unscoped.
package netsim

// --- fully covered component ----------------------------------------------

type ledger struct {
	entries map[string]int
}

//mantra:statetransfer component=ledger seam=export
func (l *ledger) Export() map[string]int {
	out := make(map[string]int, len(l.entries))
	for k, v := range l.entries {
		out[k] = v
	}
	return out
}

//mantra:statetransfer component=ledger seam=export
func (l *ledger) ExportOne(name string) (int, bool) {
	v, ok := l.entries[name]
	return v, ok
}

//mantra:statetransfer component=ledger seam=import
func (l *ledger) Import(st map[string]int) {
	l.entries = make(map[string]int, len(st))
	for k, v := range st {
		l.entries[k] = v
	}
}

//mantra:statetransfer component=ledger seam=remove
func (l *ledger) Remove(name string) {
	delete(l.entries, name)
}

// deadExport is a third export seam no transfer root ever calls.
//
//mantra:statetransfer component=ledger seam=export
func (l *ledger) deadExport() int { // want `seam \(\*ledger\).deadExport of component "ledger" is reachable from no transfer root; dead transfer code, or a root is missing the call`
	return len(l.entries)
}

// --- orphan field: tags is outside every seam's closure --------------------

type tracker struct {
	state map[string]int
	// tags is per-target state too, but no seam moves it.
	tags map[string][]string // want `per-target field netsim.tracker.tags is never touched by component "tracker"'s export seams` `per-target field netsim.tracker.tags is never touched by component "tracker"'s import seams`
}

//mantra:statetransfer component=tracker seam=export
func (t *tracker) Export() map[string]int {
	out := make(map[string]int, len(t.state))
	for k, v := range t.state {
		out[k] = v
	}
	return out
}

//mantra:statetransfer component=tracker seam=import
func (t *tracker) Import(st map[string]int) {
	t.state = make(map[string]int, len(st))
	for k, v := range st {
		t.state[k] = v
	}
}

// --- export-only component -------------------------------------------------

type gauge struct {
	readings map[string]float64
}

//mantra:statetransfer component=gauge seam=export
func (g *gauge) Export() map[string]float64 { // want `component "gauge" declares no import seam; state that cannot round-trip is lost on recovery`
	out := make(map[string]float64, len(g.readings))
	for k, v := range g.readings {
		out[k] = v
	}
	return out
}

// --- dropped component: export seam fell off every root path ---------------

type archive struct {
	blobs map[string][]byte
}

//mantra:statetransfer component=archive seam=export
func (a *archive) Export() map[string][]byte { // want `component "archive": no export seam is reachable from the checkpoint-export root; the component is silently dropped from that transfer path` `component "archive": no export seam is reachable from the handoff-export root; the component is silently dropped from that transfer path` `seam \(\*archive\).Export of component "archive" is reachable from no transfer root`
	out := make(map[string][]byte, len(a.blobs))
	for k, v := range a.blobs {
		out[k] = v
	}
	return out
}

//mantra:statetransfer component=archive seam=import
func (a *archive) Import(st map[string][]byte) {
	a.blobs = st
}

// --- seams split across two receiver types ---------------------------------

type splitA struct {
	vals map[string]int
}

type splitB struct {
	vals map[string]int
}

//mantra:statetransfer component=split seam=export
func (s *splitA) Export() map[string]int { // want `component "split" seams span multiple receiver types \(\[repro/internal/netsim.splitA repro/internal/netsim.splitB\]\); declare one component per stateful type`
	return s.vals
}

//mantra:statetransfer component=split seam=import
func (s *splitB) Import(st map[string]int) {
	s.vals = st
}

// --- allow escape hatch: an export-only component, by design ---------------

type mirror struct {
	copies map[string]string
}

// The mirror is rebuilt from the primary on recovery; importing it
// would just duplicate the primary's import.
//
//mantra:statetransfer component=mirror seam=export
func (m *mirror) Export() map[string]string { //mantralint:allow statecov the mirror is derived state, rebuilt from the primary on recovery
	return m.copies
}

// --- transfer roots ---------------------------------------------------------

var (
	theLedger  ledger
	theTracker tracker
	theGauge   gauge
	theArchive archive
	theSplitA  splitA
	theSplitB  splitB
	theMirror  mirror
)

//mantra:statetransfer root=checkpoint-export
func checkpointExport() map[string]int {
	_ = theTracker.Export()
	_ = theGauge.Export()
	_ = theSplitA.Export()
	_ = theMirror.Export()
	return theLedger.Export()
}

//mantra:statetransfer root=checkpoint-import
func checkpointImport(st map[string]int) {
	theLedger.Import(st)
	theTracker.Import(st)
	theSplitB.Import(st)
	theArchive.Import(nil)
}

//mantra:statetransfer root=handoff-export
func handoffExport(name string) (int, bool) {
	_ = theTracker.Export()
	_ = theGauge.Export()
	_ = theSplitA.Export()
	_ = theMirror.Export()
	return theLedger.ExportOne(name)
}

//mantra:statetransfer root=handoff-import
func handoffImport(st map[string]int) {
	theLedger.Import(st)
	theTracker.Import(st)
	theSplitB.Import(st)
	theArchive.Import(nil)
}

//mantra:statetransfer root=handoff-remove
func handoffRemove(name string) {
	theLedger.Remove(name)
}
