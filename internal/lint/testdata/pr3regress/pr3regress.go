// Fixture mirroring the two latent nondeterminism bugs PR 3 fixed, in the
// exact shapes they had. Loaded "as" internal/core/logger: if either shape
// ever stops producing a finding, mantralint has lost the ability to catch
// the bug class this suite exists for.
package logger

// The delta-log removal-set bug: removed keys were collected from a map
// into the serialized Removed slice in iteration order, so two runs of the
// same schedule produced different WAL bytes.
type delta struct {
	Removed []string
}

func removalSet(prev map[string]int, cur map[string]int) delta {
	var d delta
	for k := range prev {
		if _, ok := cur[k]; !ok {
			d.Removed = append(d.Removed, k) // want `append to d.Removed in map-iteration order with no later sort`
		}
	}
	return d
}

// The stability-summary bug: MeanAvailability was accumulated over the
// per-prefix map in iteration order, so the float's low bits differed
// between serial and pipelined schedules.
type prefixHistory struct{ present, cycles int }

func meanAvailability(byPrefix map[string]*prefixHistory) float64 {
	sum := 0.0
	for _, h := range byPrefix {
		sum += float64(h.present) / float64(h.cycles) // want `floating-point accumulation into sum in map-iteration order`
	}
	return sum / float64(len(byPrefix))
}
