// Fixture for the waltaint analyzer; loaded "as" internal/core/logger
// (the WAL/checkpoint package).
package logger

import (
	"hash/crc32"
	"os"
)

type walseg struct{ f *os.File }

// frameWrite is the sanctioned frame-writer shape: the checksum and the
// bytes travel through the same function — clean.
func (s *walseg) frameWrite(payload []byte) error {
	sum := crc32.ChecksumIEEE(payload)
	frame := append(payload, byte(sum))
	_, err := s.f.Write(frame)
	return err
}

// rawWrite: unframed bytes; the scan will read them as corruption.
func (s *walseg) rawWrite(b []byte) error {
	_, err := s.f.Write(b) // want `direct \(\*os\.File\)\.Write bypasses the checksummed frame writer`
	return err
}

// stringWrite: WriteString can never be the frame writer, even next to
// a checksum.
func (s *walseg) stringWrite(note string) error {
	sum := crc32.ChecksumIEEE([]byte(note))
	if sum == 0 {
		return nil
	}
	_, err := s.f.WriteString(note) // want `\(\*os\.File\)\.WriteString bypasses the checksummed frame writer`
	return err
}

// writeFileDirect: whole-file writes bypass framing by construction.
func writeFileDirect(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `os\.WriteFile bypasses the checksummed frame writer`
}
