// Fixture for the mapiter analyzer; loaded "as" internal/core/logger so
// the determinism-critical scoping applies.
package logger

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
)

// appendNoSort is the canonical violation: the slice outlives the loop
// and is never sorted.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out in map-iteration order with no later sort"
	}
	return out
}

// collectThenSort is the sanctioned idiom and must pass.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// perIterationLocal appends to a slice declared inside the loop body;
// nothing order-sensitive escapes.
func perIterationLocal(m map[string][]int, sink func([]int)) {
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		sink(local)
	}
}

// buildMap rebuilds another map — order-insensitive, must pass.
func buildMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// countInts integer-counts — order-insensitive, must pass.
func countInts(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// serializeUnsorted writes bytes in iteration order into a buffer that
// outlives the loop.
func serializeUnsorted(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want "fmt.Fprintf inside a map range serializes in iteration order"
	}
}

// hashUnsorted folds map entries into a checksum in iteration order.
func hashUnsorted(m map[string]string) uint32 {
	h := crc32.NewIEEE()
	for k := range m {
		h.Write([]byte(k)) // want `h.Write inside a map range serializes in iteration order` `Write returns an error that is silently dropped`
	}
	return h.Sum32()
}

// localSink writes into a per-iteration buffer; order cannot leak.
func localSink(m map[string]int) {
	for k, v := range m {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s=%d", k, v)
		_ = b.String()
	}
}

// suppressed carries a justified allow and must not be reported.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //mantralint:allow mapiter fixture: consumer re-sorts downstream
	}
	return out
}
