// Fixture proving an allow comment silences exactly the named check on
// exactly its own line — never a different check, never a nearby line.
package netsim

import (
	"math/rand"
	"time"
)

// wrongCheck: the allow names globalrand, so the wallclock finding on the
// same line must still be reported.
func wrongCheck() time.Time {
	return time.Now() //mantralint:allow globalrand names the wrong check // want `time.Now reads the wall clock` `allow for "globalrand" suppresses nothing on its line`
}

// sameLineBoth: two different checks fire on one line; the allow silences
// only wallclock, so globalrand still reports.
func sameLineBoth() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(7)) //mantralint:allow wallclock only the clock read is justified // want `global rand.Intn is unseedable per run`
}

// lineAbove: a standalone allow on its own line covers the line below it.
func lineAbove() time.Time {
	//mantralint:allow wallclock standalone comment covers the next line
	return time.Now()
}

// tooFarAway: an allow two lines up covers nothing.
func tooFarAway() time.Time {
	//mantralint:allow wallclock this comment is two lines above the read // want `allow for "wallclock" suppresses nothing on its line`

	return time.Now() // want `time.Now reads the wall clock`
}
