// Package lint is mantralint: a project-specific static-analysis suite
// enforcing the determinism, clock-injection, crash-safety and — since
// the pipelined cycle engine — concurrency invariants this repository
// has already been burned by. The schedule-equivalence guarantee
// (serial == pipelined == barrier WAL bytes) rests on byte-deterministic
// table state and on nothing mutating a snapshot after it crosses the
// engine's stage boundary; these analyzers make both classes of defect a
// build failure instead of a lucky test catch.
//
// The per-file syntactic checks (mapiter, floatsum, wallclock,
// globalrand, walerr) inspect one package at a time. The concurrency
// checks (lockheld, sharedmut, goleak, waltaint) are type-aware and
// cross-function: RunAnalyzers first builds an Analysis — a static call
// graph over every loaded package plus derived facts (which functions
// block, which loop without a stop path) — and the analyzers consult it,
// so a mutex held across a call chain ending in a channel send is found
// even when the send is three frames down in another package. The
// module-wide checks (hotalloc, lockorder, codecsym, statecov,
// sertaint) run once per Analysis over per-package fact summaries —
// field-flow events, state-transfer marks and determinism-taint graphs
// extracted alongside the call facts (DESIGN.md §15) — and route each
// finding to the package it lives in.
//
// The suite is stdlib-only (go/parser, go/ast, go/types): the module has
// zero dependencies and must stay buildable offline. Findings are
// reported as file:line:col: [check] message; a finding is silenced by an
// explicit suppression comment on the same line (or the line above):
//
//	//mantralint:allow <check> <reason>
//
// The reason is mandatory; an allow comment naming an unknown check, or
// one whose line no longer triggers the named check (allowstale), is
// itself a finding — suppressions must never rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Finding is one reported invariant violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Check names the analyzer that produced the finding (or "allow" for
	// defects in suppression comments themselves).
	Check string
	// Message describes the violation.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one loaded, parsed and type-checked package under analysis.
type Package struct {
	// RelPath is the package's directory relative to the module root
	// ("" for the root package, "internal/core/logger", "cmd/mantra").
	// Analyzer scoping keys off this, so fixtures can be loaded "as" any
	// package.
	RelPath string
	// Name is the package name from the package clauses.
	Name string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, comments included.
	Files []*ast.File
	// Types and Info carry the type-checker's results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. Analysis proceeds on a
	// best-effort basis when they are non-empty; the driver surfaces them
	// under -debug.
	TypeErrors []error
}

// Analysis is the module-wide context one RunAnalyzers call shares
// across every analyzer: the packages under analysis plus the
// cross-function artifacts (call graph, fact store) derived from them.
// Analyzers that only need single-package syntax ignore it.
type Analysis struct {
	Pkgs  []*Package
	Graph *CallGraph

	// The global phase (hotalloc hot-set reachability, the lockorder
	// acquisition graph) runs once per Analysis over per-package fact
	// summaries, lazily on first demand; per-package analyzer Runs then
	// just pick out their slice. The warm driver feeds the identical
	// computation cached summaries, so the two paths cannot diverge.
	globalOnce sync.Once
	global     map[string][]Finding
}

// globalFindings returns the module-wide analyzers' raw findings,
// grouped by package RelPath, computing them on first call.
func (a *Analysis) globalFindings() map[string][]Finding {
	a.globalOnce.Do(func() {
		sums := make([]*PkgSummary, 0, len(a.Pkgs))
		for _, p := range a.Pkgs {
			sums = append(sums, Summarize(p))
		}
		a.global = GlobalFindings(sums)
	})
	return a.global
}

// NewAnalysis builds the shared context: the static call graph over pkgs
// and its derived facts. Fixture tests build one over a single package;
// the driver builds one over the whole module, which is what makes the
// concurrency checks cross-package.
func NewAnalysis(pkgs []*Package) *Analysis {
	return &Analysis{Pkgs: pkgs, Graph: buildCallGraph(pkgs)}
}

// An Analyzer checks one invariant over one package.
type Analyzer struct {
	// Name is the check name used in findings and allow comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run reports the analyzer's raw findings for one package, consulting
	// the shared Analysis for cross-function facts; suppression comments
	// are applied by the caller.
	Run func(a *Analysis, p *Package) []Finding
}

// Analyzers returns the full registry in stable (name) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		codecSymAnalyzer,
		floatSumAnalyzer,
		globalRandAnalyzer,
		goLeakAnalyzer,
		hotAllocAnalyzer,
		hotpathAnalyzer,
		lockHeldAnalyzer,
		lockOrderAnalyzer,
		mapIterAnalyzer,
		serTaintAnalyzer,
		sharedMutAnalyzer,
		stateCovAnalyzer,
		walErrAnalyzer,
		wallClockAnalyzer,
		walTaintAnalyzer,
	}
}

// ImplicitChecks are finding kinds produced by the framework itself
// rather than a registered analyzer: defects in allow comments ("allow")
// and allows whose line no longer triggers the named check
// ("allowstale"). They are valid in allow comments but cannot be
// selected with -checks.
func ImplicitChecks() []string { return []string{"allow", "allowstale"} }

// ByName resolves check names to analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// CheckNames returns every registered check name, sorted.
func CheckNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// RunAnalyzers builds the shared Analysis over the packages, runs the
// given analyzers (packages in parallel — every analyzer input is
// read-only once the Analysis is built), applies the suppression
// comments, and returns the surviving findings sorted by position.
// Defective allow comments (unknown check, missing reason) are reported
// alongside, as are stale ones: an allow for a check that ran but
// suppressed nothing on its line is an "allowstale" finding, so a
// suppression can never outlive the violation it justified.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	valid := make(map[string]bool)
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	for _, name := range ImplicitChecks() {
		valid[name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	a := NewAnalysis(pkgs)

	// Fan the packages out over the CPUs. Results land in a per-package
	// slot, so the concurrency cannot perturb finding order; the final
	// sort keys on position alone either way.
	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			allows, defects := collectAllows(p, valid)
			var raw []Finding
			for _, an := range analyzers {
				raw = append(raw, an.Run(a, p)...)
			}
			out := defects
			for _, f := range raw {
				if !allows.suppresses(f) {
					out = append(out, f)
				}
			}
			out = append(out, allows.stale(ran)...)
			perPkg[i] = out
		}(i, p)
	}
	wg.Wait()

	var out []Finding
	for _, fs := range perPkg {
		out = append(out, fs...)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// finding is the analyzers' shared constructor.
func (p *Package) finding(check string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Check: check, Message: fmt.Sprintf(format, args...)}
}

// pkgFuncRef resolves a selector to (package path, name) when its X is an
// imported package identifier — the shared "is this time.Now / rand.Intn"
// helper. It works for both calls and bare function-value references.
func pkgFuncRef(p *Package, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootIdent returns the leftmost identifier of a (possibly nested)
// selector/index expression: out, out.Pairs, s.seg all root at the first
// identifier. Nil when the expression roots elsewhere (call results,
// literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the identifier's object is declared
// inside the given node's span — used to tell per-iteration locals from
// state that outlives a loop.
func declaredWithin(p *Package, id *ast.Ident, n ast.Node) bool {
	if id == nil {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lastResultIsError reports whether the call's type is error or a tuple
// ending in error.
func lastResultIsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName returns the called function's bare name: the selector's Sel
// for method and package-qualified calls, the identifier itself for local
// calls, "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// enclosingFuncBody returns the innermost function body in file that
// contains pos, or nil.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			if best == nil || (body.Pos() >= best.Pos() && body.End() <= best.End()) {
				best = body
			}
		}
		return true
	})
	return best
}
