package lint

import (
	"fmt"
	"sort"
)

// codecSymAnalyzer checks the encode/decode symmetry of the module's
// hand-rolled binary codecs (the WAL frame payloads, the checkpoint
// blob, the tsdb block format). A //mantra:codec pair declares the two
// halves; the analyzer compares their extracted field-flow sequences —
// the ordered target-struct fields the encoder feeds into append calls
// against the ordered fields the decoder assigns from reads — and
// reports any asymmetry: a field written but never read back, a field
// read that is never written, or the same fields consumed in a
// different order.
//
// Each pair (and each //mantra:codec type pin) also carries a shape
// digest. The digest folds in the format's magic/version constant, so
// any change to the serialized shape without a deliberate magic bump is
// a finding: the wire format cannot drift silently under a version
// number that claims compatibility.
//
// The analysis is module-wide (a pair's halves may live in different
// packages) and runs over the per-package fact summaries, cold or
// cached alike.
var codecSymAnalyzer = &Analyzer{
	Name: "codecsym",
	Doc:  "encode/decode halves of a //mantra:codec pair disagree about fields, order, or pinned shape",
	Run: func(a *Analysis, p *Package) []Finding {
		return filterCheck(a.globalFindings()[p.RelPath], "codecsym")
	},
}

// codecPair collects one pair name's declarations across the module.
type codecPair struct {
	encode, decode []*FuncSum
	pins           []*StructSum
}

func codecSymFindings(idx *sumIndex, add func(string, Finding)) {
	pairs := make(map[string]*codecPair)
	at := func(name string) *codecPair {
		if pairs[name] == nil {
			pairs[name] = &codecPair{}
		}
		return pairs[name]
	}
	for _, name := range idx.names {
		f := idx.funcs[name]
		if f.Codec == nil || f.Codec.Pair == "" {
			continue
		}
		switch f.Codec.Role {
		case "encode":
			at(f.Codec.Pair).encode = append(at(f.Codec.Pair).encode, f)
		case "decode":
			at(f.Codec.Pair).decode = append(at(f.Codec.Pair).decode, f)
		}
	}
	var structNames []string
	for name := range idx.structs {
		structNames = append(structNames, name)
	}
	sort.Strings(structNames)
	for _, name := range structNames {
		st := idx.structs[name]
		if st.Codec != nil && st.Codec.Pair != "" {
			at(st.Codec.Pair).pins = append(at(st.Codec.Pair).pins, st)
		}
	}

	names := make([]string, 0, len(pairs))
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		checkCodecPair(idx, name, pairs[name], add)
	}
}

func checkCodecPair(idx *sumIndex, name string, pair *codecPair, add func(string, Finding)) {
	emit := func(pos Pos, rel string, format string, args ...any) {
		add(rel, Finding{Pos: posOf(pos), Check: "codecsym",
			Message: fmt.Sprintf(format, args...)})
	}
	relOfFunc := func(f *FuncSum) string { return idx.rel[f.Name] }

	if len(pair.pins) > 0 && (len(pair.encode) > 0 || len(pair.decode) > 0) {
		emit(pair.pins[0].Codec.Pos, idx.structRel[pair.pins[0].Name],
			"codec pair %s has both function markers and a type pin; declare either an encode/decode pair or a pinned type shape, not both", quote(name))
		return
	}

	// Type-pin pairs: the digest covers the declared field list.
	if len(pair.pins) > 0 {
		for _, extra := range pair.pins[1:] {
			emit(extra.Codec.Pos, idx.structRel[extra.Name],
				"codec pair %s pinned on more than one type (also on %s); one pin per pair", quote(name), pair.pins[0].Name)
		}
		pin := pair.pins[0]
		parts := make([]string, 0, len(pin.Fields))
		for _, f := range pin.Fields {
			parts = append(parts, f.Name+" "+f.Type)
		}
		digest := shapeDigest(parts, pin.Codec.MagicValue)
		switch {
		case pin.Codec.Shape == "":
			emit(pin.Codec.Pos, idx.structRel[pin.Name],
				"codec pair %s has no pinned shape; pin the current serialized shape of %s with shape=%s", quote(name), pin.Name, digest)
		case pin.Codec.Shape != digest:
			emit(pin.Codec.Pos, idx.structRel[pin.Name],
				"serialized shape of %s changed (computed %s, pinned %s); if the wire format moved, bump %s and re-pin shape=%s",
				quote(name), digest, pin.Codec.Shape, magicDesc(pin.Codec), digest)
		}
		return
	}

	// Function pairs.
	if len(pair.encode) > 1 {
		for _, extra := range pair.encode[1:] {
			emit(extra.Codec.Pos, relOfFunc(extra),
				"codec pair %s has more than one encode half (also %s); one function per role", quote(name), pair.encode[0].Short)
		}
	}
	if len(pair.decode) > 1 {
		for _, extra := range pair.decode[1:] {
			emit(extra.Codec.Pos, relOfFunc(extra),
				"codec pair %s has more than one decode half (also %s); one function per role", quote(name), pair.decode[0].Short)
		}
	}
	switch {
	case len(pair.encode) == 0 && len(pair.decode) > 0:
		dec := pair.decode[0]
		emit(dec.Codec.Pos, relOfFunc(dec),
			"codec pair %s has a decode half (%s) but no encode half; mark the encoder with //mantra:codec pair=%s role=encode", quote(name), dec.Short, name)
		return
	case len(pair.decode) == 0 && len(pair.encode) > 0:
		enc := pair.encode[0]
		emit(enc.Codec.Pos, relOfFunc(enc),
			"codec pair %s has an encode half (%s) but no decode half; mark the decoder with //mantra:codec pair=%s role=decode", quote(name), enc.Short, name)
		return
	case len(pair.encode) == 0:
		return
	}
	enc, dec := pair.encode[0], pair.decode[0]

	if enc.Codec.TypeFull != "" && dec.Codec.TypeFull != "" && enc.Codec.TypeFull != dec.Codec.TypeFull {
		emit(dec.Codec.Pos, relOfFunc(dec),
			"codec pair %s halves target different types (encode %s, decode %s)", quote(name), enc.Codec.TypeFull, dec.Codec.TypeFull)
		return
	}
	if enc.Codec.MagicValue != "" && dec.Codec.MagicValue != "" && enc.Codec.MagicValue != dec.Codec.MagicValue {
		emit(dec.Codec.Pos, relOfFunc(dec),
			"codec pair %s halves resolve different magic values (encode %s=%s, decode %s=%s); both halves must version against one constant",
			quote(name), enc.Codec.Magic, enc.Codec.MagicValue, dec.Codec.Magic, dec.Codec.MagicValue)
	}
	if len(enc.FieldFlow) == 0 {
		emit(enc.Codec.Pos, relOfFunc(enc),
			"encode half %s of pair %s has no extractable field events for %s; route every field through a call argument so the order is checkable", enc.Short, quote(name), enc.Codec.TypeFull)
		return
	}
	if len(dec.FieldFlow) == 0 {
		emit(dec.Codec.Pos, relOfFunc(dec),
			"decode half %s of pair %s has no extractable field events for %s; assign every field from a reader call so the order is checkable", dec.Short, quote(name), dec.Codec.TypeFull)
		return
	}

	// Fold each side to the other's granularity, then compare membership
	// and order. Findings anchor at the decode marker — the decoder is
	// the half that silently produces wrong values on drift — and name
	// the encode site for navigation.
	encFold := foldAgainst(enc.FieldFlow, dec.FieldFlow)
	decFold := foldAgainst(dec.FieldFlow, enc.FieldFlow)
	encSet := make(map[string]bool, len(encFold))
	for _, p := range encFold {
		encSet[p] = true
	}
	decSet := make(map[string]bool, len(decFold))
	for _, p := range decFold {
		decSet[p] = true
	}
	encAt := pathBase(enc.Codec.Pos.File)
	asym := false
	for _, p := range encFold {
		if !decSet[p] {
			asym = true
			emit(dec.Codec.Pos, relOfFunc(dec),
				"codec pair %s: encode (%s, %s) writes %s but decode %s never reads it", quote(name), enc.Short, encAt, p, dec.Short)
		}
	}
	for _, p := range decFold {
		if !encSet[p] {
			asym = true
			emit(dec.Codec.Pos, relOfFunc(dec),
				"codec pair %s: decode %s reads %s but encode (%s, %s) never writes it", quote(name), dec.Short, p, enc.Short, encAt)
		}
	}
	if !asym {
		for i := range encFold {
			if encFold[i] != decFold[i] {
				emit(dec.Codec.Pos, relOfFunc(dec),
					"codec pair %s: field order diverges at position %d — encode (%s) writes %s, decode reads %s; the wire bytes will be misparsed silently",
					quote(name), i+1, encAt, encFold[i], decFold[i])
				break
			}
		}
	}

	// Shape pin: the digest fingerprints the raw encode order plus the
	// magic value, so shape drift without a magic bump cannot pass.
	parts := make([]string, 0, len(enc.FieldFlow))
	for _, ev := range enc.FieldFlow {
		parts = append(parts, ev.Path)
	}
	digest := shapeDigest(parts, enc.Codec.MagicValue)
	switch {
	case enc.Codec.Shape == "":
		emit(enc.Codec.Pos, relOfFunc(enc),
			"codec pair %s has no pinned shape; pin the current encode order with shape=%s", quote(name), digest)
	case enc.Codec.Shape != digest:
		emit(enc.Codec.Pos, relOfFunc(enc),
			"serialized shape of %s changed (computed %s, pinned %s); if the wire format moved, bump %s and re-pin shape=%s",
			quote(name), digest, enc.Codec.Shape, magicDesc(enc.Codec), digest)
	}
}

// magicDesc names the pair's version constant in bump messages.
func magicDesc(mark *CodecMark) string {
	if mark.Magic != "" {
		return mark.Magic
	}
	return "the format version constant"
}
