package lint

import (
	"fmt"
	"sort"
)

// stateCovAnalyzer enforces the state-transfer coverage contract: every
// per-target stateful component (declared by //mantra:statetransfer
// component=<name> seam=<export|import|remove> on its transfer methods)
// must be wired into both recovery paths — the checkpoint Export/Import
// roots and the shard handoff export/import/remove path (declared by
// //mantra:statetransfer root=<flavor>). A component whose seam exists
// but is no longer called from a root — the classic "added a stateful
// field, forgot the handoff" drift — fails the build instead of
// silently losing state on the next failover.
//
// On top of seam reachability, statecov checks field coverage: for a
// component whose seams hang off one receiver type, every string-keyed
// map field of that type (the per-target state shape) must be touched
// somewhere in both the export seams' and the import seams' call
// closures. A new per-target map that neither seam serializes is
// reported at the field's declaration.
//
// The analysis is module-wide and runs over the per-package fact
// summaries, cold or cached alike.
var stateCovAnalyzer = &Analyzer{
	Name: "statecov",
	Doc:  "stateful component seam unreachable from the checkpoint or shard-handoff roots, or per-target state a transfer seam never touches",
	Run: func(a *Analysis, p *Package) []Finding {
		return filterCheck(a.globalFindings()[p.RelPath], "statecov")
	},
}

// transferRequired maps a seam direction to the root flavors it must be
// reachable from.
var transferRequired = map[string][]string{
	"export": {"checkpoint-export", "handoff-export"},
	"import": {"checkpoint-import", "handoff-import"},
	"remove": {"handoff-remove"},
}

var seamDirections = []string{"export", "import", "remove"}

type transferComponent struct {
	seams map[string][]*FuncSum // direction → seam functions
	recvs map[string]bool       // receiver full type names
}

func stateCovFindings(idx *sumIndex, add func(string, Finding)) {
	rootsByFlavor := make(map[string][]string)
	comps := make(map[string]*transferComponent)
	for _, name := range idx.names {
		f := idx.funcs[name]
		t := f.Transfer
		if t == nil {
			continue
		}
		if t.Root != "" {
			rootsByFlavor[t.Root] = append(rootsByFlavor[t.Root], name)
			continue
		}
		if t.Component == "" || transferRequired[t.Seam] == nil {
			continue // defective marker, already reported at summary time
		}
		c := comps[t.Component]
		if c == nil {
			c = &transferComponent{seams: make(map[string][]*FuncSum), recvs: make(map[string]bool)}
			comps[t.Component] = c
		}
		c.seams[t.Seam] = append(c.seams[t.Seam], f)
		if t.Recv != "" {
			c.recvs[t.Recv] = true
		}
	}
	if len(comps) == 0 {
		return
	}

	reach := make(map[string]map[string]bool, len(transferRootFlavors))
	anyReach := make(map[string]bool)
	for flavor := range transferRootFlavors {
		reach[flavor] = reachableFuncs(idx, rootsByFlavor[flavor])
		for name := range reach[flavor] {
			anyReach[name] = true
		}
	}

	emit := func(pos Pos, rel string, format string, args ...any) {
		add(rel, Finding{Pos: posOf(pos), Check: "statecov",
			Message: fmt.Sprintf(format, args...)})
	}

	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	sort.Strings(names)
	missingRootReported := make(map[string]bool)
	for _, name := range names {
		c := comps[name]
		anchor := componentAnchor(c)

		if len(c.recvs) > 1 {
			var recvs []string
			for r := range c.recvs {
				recvs = append(recvs, r)
			}
			sort.Strings(recvs)
			emit(anchor.Transfer.Pos, idx.rel[anchor.Name],
				"component %s seams span multiple receiver types (%v); declare one component per stateful type", quote(name), recvs)
		}
		for _, dir := range []string{"export", "import"} {
			if len(c.seams[dir]) == 0 {
				emit(anchor.Transfer.Pos, idx.rel[anchor.Name],
					"component %s declares no %s seam; state that cannot round-trip is lost on recovery", quote(name), dir)
			}
		}

		for _, dir := range seamDirections {
			seams := c.seams[dir]
			if len(seams) == 0 {
				continue
			}
			for _, flavor := range transferRequired[dir] {
				if len(rootsByFlavor[flavor]) == 0 {
					if !missingRootReported[flavor] {
						missingRootReported[flavor] = true
						emit(anchor.Transfer.Pos, idx.rel[anchor.Name],
							"no //mantra:statetransfer root=%s declared anywhere in the module; statecov cannot verify the %s path", flavor, flavor)
					}
					continue
				}
				covered := false
				for _, s := range seams {
					if reach[flavor][s.Name] {
						covered = true
						break
					}
				}
				if !covered {
					emit(seams[0].Transfer.Pos, idx.rel[seams[0].Name],
						"component %s: no %s seam is reachable from the %s root; the component is silently dropped from that transfer path", quote(name), dir, flavor)
				}
			}
			for _, s := range seams {
				if !anyReach[s.Name] {
					emit(s.Transfer.Pos, idx.rel[s.Name],
						"seam %s of component %s is reachable from no transfer root; dead transfer code, or a root is missing the call", s.Short, quote(name))
				}
			}
		}

		stateCovFields(idx, name, c, emit)
	}
}

// stateCovFields checks per-target field coverage for single-receiver
// components: every string-keyed map field of the receiver type must be
// touched in both the export and the import seam closures.
func stateCovFields(idx *sumIndex, name string, c *transferComponent, emit func(Pos, string, string, ...any)) {
	if len(c.recvs) != 1 {
		return
	}
	var recv string
	for r := range c.recvs {
		recv = r
	}
	st := idx.structs[recv]
	if st == nil {
		return
	}
	touched := func(dir string) map[string]bool {
		var roots []string
		for _, s := range c.seams[dir] {
			roots = append(roots, s.Name)
		}
		out := make(map[string]bool)
		for fn := range reachableFuncs(idx, roots) {
			for _, fu := range idx.funcs[fn].Fields {
				if fu.Type == recv {
					out[fu.Field] = true
				}
			}
		}
		return out
	}
	exported, imported := touched("export"), touched("import")
	for _, field := range st.Fields {
		if !field.StringMap {
			continue
		}
		for _, side := range []struct {
			dir string
			set map[string]bool
		}{{"export", exported}, {"import", imported}} {
			if len(c.seams[side.dir]) == 0 || side.set[field.Name] {
				continue
			}
			emit(field.Pos, idx.structRel[recv],
				"per-target field %s.%s is never touched by component %s's %s seams; new state silently misses %s on transfer",
				shortClass(recv), field.Name, quote(name), side.dir, side.dir)
		}
	}
}

// componentAnchor picks the deterministic finding anchor for
// component-level defects: the first seam in direction order, ties by
// function name.
func componentAnchor(c *transferComponent) *FuncSum {
	for _, dir := range seamDirections {
		seams := c.seams[dir]
		if len(seams) == 0 {
			continue
		}
		best := seams[0]
		for _, s := range seams[1:] {
			if s.Name < best.Name {
				best = s
			}
		}
		return best
	}
	return nil
}

// reachableFuncs BFSes the static call graph from the given roots,
// returning every module function reachable (roots included).
func reachableFuncs(idx *sumIndex, roots []string) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	sort.Strings(queue)
	for _, r := range queue {
		seen[r] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		f := idx.funcs[cur]
		if f == nil {
			continue
		}
		for _, call := range f.Calls {
			if !seen[call.Callee] && idx.funcs[call.Callee] != nil {
				seen[call.Callee] = true
				queue = append(queue, call.Callee)
			}
		}
	}
	return seen
}
