package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture module is loaded once: stdlib source type-checking dominates
// the cost and every fixture shares it through the module's file set.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func fixtureModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = NewModule(".") })
	if modErr != nil {
		t.Fatal(modErr)
	}
	return mod
}

// loadFixture type-checks testdata/<fixture> as if it were the module
// package at rel, so package-scoped analyzers see the path they key on.
func loadFixture(t *testing.T, fixture, rel string) *Package {
	t.Helper()
	p, err := fixtureModule(t).LoadDirAs(filepath.Join("testdata", fixture), rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", fixture, p.TypeErrors)
	}
	return p
}

// want is one expected finding: a regexp that must match some finding
// rendered as "[check] message" on the annotated line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantChunkRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants parses `// want "re"` / `// want ` + "`re`" annotations
// (several per comment allowed) from the fixture's comments.
func collectWants(t *testing.T, p *Package) []want {
	t.Helper()
	var out []want
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				chunks := wantChunkRe.FindAllStringSubmatch(rest, -1)
				if len(chunks) == 0 {
					t.Fatalf("%s:%d: want annotation with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, ch := range chunks {
					expr := ch[1]
					if expr == "" {
						expr = ch[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, expr, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// checkFixture runs every analyzer over the fixture and matches findings
// against its want annotations: every finding must be wanted, every want
// must be found.
func checkFixture(t *testing.T, fixture, rel string) {
	t.Helper()
	p := loadFixture(t, fixture, rel)
	findings := RunAnalyzers([]*Package{p}, Analyzers())
	wants := collectWants(t, p)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		rendered := fmt.Sprintf("[%s] %s", f.Check, f.Message)
		hit := false
		for i, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(rendered) {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: wanted finding matching %q not reported", w.file, w.line, w.re)
		}
	}
}

func TestMapIterFixture(t *testing.T)   { checkFixture(t, "mapiter", "internal/core/logger") }
func TestWallClockFixture(t *testing.T) { checkFixture(t, "wallclock", "internal/core/engine") }
func TestGlobalRandFixture(t *testing.T) {
	checkFixture(t, "globalrand", "internal/netsim")
}
func TestWalErrFixture(t *testing.T)   { checkFixture(t, "walerr", "internal/core/logger") }
func TestFloatSumFixture(t *testing.T) { checkFixture(t, "floatsum", "internal/netsim") }
func TestLockHeldFixture(t *testing.T) { checkFixture(t, "lockheld", "internal/core/engine") }
func TestSharedMutFixture(t *testing.T) {
	checkFixture(t, "sharedmut", "internal/core/engine")
}
func TestGoLeakFixture(t *testing.T)   { checkFixture(t, "goleak", "internal/netsim") }
func TestWalTaintFixture(t *testing.T) { checkFixture(t, "waltaint", "internal/core/logger") }
func TestHotAllocFixture(t *testing.T) { checkFixture(t, "hotalloc", "internal/netsim") }
func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "internal/netsim")
}

// TestAllowStaleFixture: an allow whose line no longer violates the
// named check is itself reported, and the report is itself allowable.
func TestAllowStaleFixture(t *testing.T) {
	checkFixture(t, "allowstale", "internal/netsim")
}

// TestLockScopeSilent loads the lock-boundary fixtures as a package
// outside the engine/WAL boundary set; lockheld, sharedmut and waltaint
// must all stay silent there.
func TestLockScopeSilent(t *testing.T) {
	for _, fixture := range []string{"lockheld", "sharedmut", "waltaint"} {
		p := loadFixture(t, fixture, "internal/netsim")
		if fs := RunAnalyzers([]*Package{p}, Analyzers()); len(fs) != 0 {
			t.Errorf("%s outside its boundary packages produced findings: %v", fixture, fs)
		}
	}
}

// TestMapIterScoping loads the violating shape as a package outside the
// determinism-critical set; mapiter must stay silent there.
func TestMapIterScoping(t *testing.T) {
	p := loadFixture(t, "mapiterscope", "internal/netsim")
	if fs := RunAnalyzers([]*Package{p}, Analyzers()); len(fs) != 0 {
		t.Fatalf("non-critical package produced findings: %v", fs)
	}
}

// TestMapIterScopeApplies is the control for TestMapIterScoping: the same
// fixture loaded as a determinism-critical path must be flagged.
func TestMapIterScopeApplies(t *testing.T) {
	p := loadFixture(t, "mapiterscope", "internal/core/tables")
	fs := RunAnalyzers([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "mapiter" {
		t.Fatalf("findings = %v, want exactly one mapiter", fs)
	}
}

// TestSuppressionPrecision proves an allow silences exactly the named
// check on exactly its line — the want annotations in the fixture mark
// what must survive.
func TestSuppressionPrecision(t *testing.T) {
	checkFixture(t, "suppressprecision", "internal/netsim")
}

// TestPR3RegressionShapes keeps the two bug shapes PR 3 fixed permanently
// detectable: the delta-log removal-set append and the stability float
// accumulation.
func TestPR3RegressionShapes(t *testing.T) {
	checkFixture(t, "pr3regress", "internal/core/logger")
	p := loadFixture(t, "pr3regress", "internal/core/logger")
	byCheck := make(map[string]int)
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		byCheck[f.Check]++
	}
	if byCheck["mapiter"] == 0 || byCheck["floatsum"] == 0 {
		t.Fatalf("PR 3 bug shapes no longer detected: %v", byCheck)
	}
}

// TestAllowDefects asserts the three defective-allow cases directly (a
// want annotation appended to an allow comment would become its reason,
// so this fixture cannot self-annotate).
func TestAllowDefects(t *testing.T) {
	p := loadFixture(t, "allowdefects", "internal/netsim")
	findings := RunAnalyzers([]*Package{p}, Analyzers())
	var allowMsgs []string
	wallclock := 0
	for _, f := range findings {
		switch f.Check {
		case "allow":
			allowMsgs = append(allowMsgs, f.Message)
		case "wallclock":
			wallclock++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if len(allowMsgs) != 3 {
		t.Fatalf("allow defects = %v, want 3", allowMsgs)
	}
	for i, wantSub := range []string{
		`unknown check "mapitre"`,
		`for "wallclock" has no reason`,
		"names no check",
	} {
		if !strings.Contains(allowMsgs[i], wantSub) {
			t.Errorf("allow defect %d = %q, want substring %q", i, allowMsgs[i], wantSub)
		}
	}
	// None of the defective allows suppressed anything: all three
	// wall-clock reads still report.
	if wallclock != 3 {
		t.Errorf("wallclock findings = %d, want 3 (defective allows must not suppress)", wallclock)
	}
}

// TestEngineRegressShapes keeps the pipelined engine's two concurrency
// bug shapes permanently detectable against a miniature engine:
// mutation-after-publish (sharedmut) and lock-across-send (lockheld).
// The fixture is loaded as internal/core/engine, so re-introducing
// either shape in the real engine fails `make lint` identically.
func TestEngineRegressShapes(t *testing.T) {
	checkFixture(t, "engineregress", "internal/core/engine")
	p := loadFixture(t, "engineregress", "internal/core/engine")
	byCheck := make(map[string]int)
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		byCheck[f.Check]++
	}
	if byCheck["sharedmut"] < 2 || byCheck["lockheld"] < 1 {
		t.Fatalf("engine bug shapes no longer detected: %v", byCheck)
	}
}

// TestLockOrderRegress pins the PR 6 session-write wedge: an AB/BA
// inversion between the session and write-queue mutexes, living in
// internal/core/collect — outside lockheld's scoped package set, which
// is exactly why lockorder runs module-wide. Both legs must report.
func TestLockOrderRegress(t *testing.T) {
	checkFixture(t, "lockorderregress", "internal/core/collect")
	p := loadFixture(t, "lockorderregress", "internal/core/collect")
	lockorder := 0
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		if f.Check == "lockorder" {
			lockorder++
		}
	}
	if lockorder < 2 {
		t.Fatalf("lockorder findings = %d, want both legs of the PR 6 wedge", lockorder)
	}
}

// TestHotpathDefects asserts the marker-defect cases directly (a want
// annotation appended to a marker comment would parse as the marker's
// argument, so that fixture cannot self-annotate).
func TestHotpathDefects(t *testing.T) {
	p := loadFixture(t, "hotpathdefects", "internal/netsim")
	var msgs []string
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		if f.Check != "hotpath" {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		msgs = append(msgs, f.Message)
	}
	if len(msgs) != 5 {
		t.Fatalf("hotpath defects = %d (%v), want 5", len(msgs), msgs)
	}
	for i, wantSub := range []string{
		"dangling //mantra:hotpath",
		`budget "zero" is not a non-negative integer`,
		"marker takes at most one argument",
		"duplicate //mantra:hotpath on dup",
		"dangling //mantra:hotpath",
	} {
		if !strings.Contains(msgs[i], wantSub) {
			t.Errorf("hotpath defect %d = %q, want substring %q", i, msgs[i], wantSub)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"mapiter", "walerr"})
	if err != nil || len(as) != 2 || as[0].Name != "mapiter" || as[1].Name != "walerr" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("unknown check name accepted")
	}
	names := CheckNames()
	wantNames := []string{
		"codecsym", "floatsum", "globalrand", "goleak", "hotalloc",
		"hotpath", "lockheld", "lockorder", "mapiter", "sertaint",
		"sharedmut", "statecov", "walerr", "wallclock", "waltaint",
	}
	if strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Fatalf("CheckNames = %v, want %v", names, wantNames)
	}
}

// TestModuleSelfClean is the enforced version of the self-clean pass:
// every package in the repository must lint clean, so `make lint` exiting
// zero is guaranteed by `go test` too.
func TestModuleSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := fixtureModule(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("package %q has type errors: %v", p.RelPath, p.TypeErrors[0])
		}
	}
	for _, f := range RunAnalyzers(pkgs, Analyzers()) {
		t.Errorf("finding on clean tree: %s", f)
	}
}

// TestHotRootsPinned pins the //mantra:hotpath root set. The
// AllocsPerRun gates in hotpath_gate_test.go (repo root) exercise the
// dynamic side of the key roots; this list is the static side, so a
// marker silently added, moved or dropped shows up as a diff here and
// keeps the two views from drifting. Update both together.
func TestHotRootsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := fixtureModule(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]*PkgSummary, 0, len(pkgs))
	for _, p := range pkgs {
		sums = append(sums, Summarize(p))
	}
	want := []string{
		"(*repro.Monitor).stageCollect",
		"(*repro.Monitor).stageLog",
		"(*repro.Monitor).stageNormalize",
		"(*repro/internal/core/collect.Collector).Collect",
		"(*repro/internal/core/collect.Session).readUntil",
		"(*repro/internal/core/collect.Session).send",
		"(*repro/internal/core/engine.Engine).Run",
		"(*repro/internal/core/engine.Engine).finishCycle",
		"(*repro/internal/core/logger.Logger).Append",
		"(*repro/internal/core/logger.Store).append",
		"(*repro/internal/core/logger.Store).openSegment",
		"(*repro/internal/core/logger.Store).rotate",
		"(*repro/internal/core/process.RouteStability).Observe",
		"(*repro/internal/core/tsdb.Store).Append",
		"(*repro/internal/core/tsdb.dirWriter).openSegment",
		"repro/internal/addr.Parse",
		"repro/internal/addr.ParsePrefix",
		"repro/internal/core/collect.CollectAll",
		"repro/internal/core/collect.Login",
		"repro/internal/core/collect.Preprocess",
		"repro/internal/core/collect.ValidateDump",
		"repro/internal/core/logger.encodePayload",
		"repro/internal/core/logger.segmentName",
		"repro/internal/core/tables.BuildSnapshot",
		"repro/internal/core/tables.ParseDVMRPRoutes",
		"repro/internal/core/tables.ParseIGMP",
		"repro/internal/core/tables.ParseMBGP",
		"repro/internal/core/tables.ParseMSDP",
		"repro/internal/core/tables.ParseMroute",
		"repro/internal/core/tables.parseUptime",
		"repro/internal/core/tsdb.segmentPath",
	}
	got := HotRoots(sums)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("hot-path root set drifted:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestCodecSymFixture(t *testing.T) { checkFixture(t, "codecsym", "internal/netsim") }

func TestStateCovFixture(t *testing.T) { checkFixture(t, "statecov", "internal/netsim") }

func TestSerTaintFixture(t *testing.T) { checkFixture(t, "sertaint", "internal/netsim") }

// TestCodecSymRegressShape keeps the codec-field-drift bug shape
// permanently detectable against a miniature WAL record codec.
func TestCodecSymRegressShape(t *testing.T) {
	checkFixture(t, "codecsymregress", "internal/core/logger")
	p := loadFixture(t, "codecsymregress", "internal/core/logger")
	n := 0
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		if f.Check == "codecsym" {
			n++
		}
	}
	if n == 0 {
		t.Fatal("codec drift shape no longer detected")
	}
}

// TestStateCovRegressShape keeps the dropped-from-handoff bug shape
// permanently detectable against a miniature shard core.
func TestStateCovRegressShape(t *testing.T) {
	checkFixture(t, "statecovregress", "internal/core/shard")
	p := loadFixture(t, "statecovregress", "internal/core/shard")
	n := 0
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		if f.Check == "statecov" {
			n++
		}
	}
	if n == 0 {
		t.Fatal("handoff-drop shape no longer detected")
	}
}

// TestSerTaintRegressShape keeps the map-order-into-checkpoint bug shape
// permanently detectable across two call hops.
func TestSerTaintRegressShape(t *testing.T) {
	checkFixture(t, "sertaintregress", "internal/core/logger")
	p := loadFixture(t, "sertaintregress", "internal/core/logger")
	n := 0
	for _, f := range RunAnalyzers([]*Package{p}, Analyzers()) {
		if f.Check == "sertaint" {
			n++
		}
	}
	if n == 0 {
		t.Fatal("map-order-into-checkpoint shape no longer detected")
	}
}

// TestMarkDefects asserts the v4 marker-defect reports directly (a want
// annotation appended to a marker comment would corrupt the marker's own
// argument parse, so this fixture cannot self-annotate).
func TestMarkDefects(t *testing.T) {
	p := loadFixture(t, "markdefects", "internal/netsim")
	findings := RunAnalyzers([]*Package{p}, Analyzers())
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, fmt.Sprintf("[%s] %s", f.Check, f.Message))
	}
	for _, wantSub := range []string{
		`[codecsym] dangling //mantra:codec`,
		`[codecsym] bad //mantra:codec on defectNoType: missing type=<struct>`,
		`[codecsym] bad //mantra:codec on defectBadRole: role must be encode or decode`,
		`[codecsym] bad //mantra:codec on defectDecodeShape: shape= belongs on the encode marker`,
		`[statecov] bad //mantra:statetransfer on defectRootAndComponent: `,
		`[statecov] bad //mantra:statetransfer on defectBadSeam: `,
		`[sertaint] bad //mantra:sink on defectBadSink: want exactly "serialization", got "compression"`,
		`[codecsym] bad //mantra:codec on type defectPinned: role= is for function markers; a type pin is role-less`,
	} {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, wantSub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no defect containing %q in:\n%s", wantSub, strings.Join(msgs, "\n"))
		}
	}
}
