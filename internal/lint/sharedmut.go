package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sharedMutAnalyzer flags the exact bug shape that would silently break
// the engine's byte-identical-WAL guarantee: a value handed across the
// stage boundary — sent on a channel, captured by a spawned goroutine,
// or inserted into a shared map (the reorder buffer) — and then mutated
// by the producer after the handoff. Once an item is published the
// consumer owns it; a late write races the ordered stages and the
// winner decides what reaches the WAL.
//
// Escape events tracked, per function, in the engine-boundary packages:
//
//   - `ch <- x`: x (pointer, map, slice or interface — value sends copy)
//     escapes at the send;
//   - `go func(){ ... x ... }()`: every free variable of the literal
//     escapes at the go statement (rebinding the variable races too, so
//     plain re-assignment also counts for this escape kind);
//   - `m[k] = x` in a function that also launches goroutines or touches
//     channels: the reorder-buffer shape.
//
// A finding is any later assignment through the escaped variable
// (x.f = v, x[i] = v, *x = v, x.f++). The analysis is per-function and
// alias-blind by design: it will not chase the value through a second
// name, which keeps it quiet on single-owner code while still catching
// every handoff-then-mutate written the way real code writes it.
var sharedMutAnalyzer = &Analyzer{
	Name: "sharedmut",
	Doc:  "value mutated after escaping across a concurrency boundary (channel send, goroutine capture, shared-map insert)",
	Run:  runSharedMut,
}

func runSharedMut(a *Analysis, p *Package) []Finding {
	if !lockScopePkgs[p.RelPath] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkEscapes(p, fd)...)
			return true
		})
	}
	return out
}

// escape is one handoff of a local value to another owner.
type escape struct {
	obj  types.Object
	pos  token.Pos // end of the handoff; later writes are findings
	how  string
	line int
	// rebind marks escapes (goroutine capture) where even a plain
	// re-assignment of the variable races the other side.
	rebind bool
}

// sharable reports whether t's values are shared (not copied) when
// handed off: pointers, maps, slices, channels and interfaces.
func sharable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// localObj resolves e's root identifier to an object declared inside the
// function (parameter or local) whose handoff shares the value.
func localObj(p *Package, fd *ast.FuncDecl, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil || obj.Pos() < fd.Pos() || obj.Pos() >= fd.End() {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

func checkEscapes(p *Package, fd *ast.FuncDecl) []Finding {
	// Map inserts only count as handoffs in functions that visibly juggle
	// concurrency; a plain single-owner builder loop stays exempt.
	concurrent := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt:
			concurrent = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				concurrent = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					concurrent = true
				}
			}
		}
		return !concurrent
	})

	var escapes []escape
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if obj := localObj(p, fd, x.Value); obj != nil && sharable(obj.Type()) {
				escapes = append(escapes, escape{obj: obj, pos: x.End(),
					how: "sent on channel " + types.ExprString(x.Chan), line: p.Fset.Position(x.Arrow).Line})
			}
		case *ast.GoStmt:
			lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			line := p.Fset.Position(x.Go).Line
			seen := make(map[types.Object]bool)
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.ObjectOf(id)
				if obj == nil || seen[obj] {
					return true
				}
				// Free variable: declared in the enclosing function but
				// outside the literal.
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
					!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
					seen[obj] = true
					escapes = append(escapes, escape{obj: obj, pos: x.End(),
						how: "captured by the goroutine started", line: line, rebind: true})
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			if !concurrent || x.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range x.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || !isMapType(p.Info.TypeOf(idx.X)) || i >= len(x.Rhs) {
					continue
				}
				if obj := localObj(p, fd, x.Rhs[i]); obj != nil && sharable(obj.Type()) {
					escapes = append(escapes, escape{obj: obj, pos: x.End(),
						how: "inserted into " + types.ExprString(idx.X), line: p.Fset.Position(x.Pos()).Line})
				}
			}
		}
		return true
	})
	if len(escapes) == 0 {
		return nil
	}

	var out []Finding
	report := func(lhs ast.Expr, pos token.Pos) {
		obj := localObj(p, fd, lhs)
		if obj == nil {
			return
		}
		_, plainRebind := ast.Unparen(lhs).(*ast.Ident)
		for _, esc := range escapes {
			if esc.obj != obj || pos <= esc.pos {
				continue
			}
			if plainRebind && !esc.rebind {
				continue // handoff copied the pointer; rebinding the name is safe
			}
			out = append(out, p.finding("sharedmut", pos,
				"%s is written after being %s at line %d; the consumer owns it past the handoff (breaks schedule equivalence)",
				types.ExprString(lhs), esc.how, esc.line))
			return
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				report(lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			report(x.X, x.Pos())
		}
		return true
	})
	return out
}
