package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is driver v3's fact layer: everything the module-wide
// analyzers (hotalloc, lockorder) need from a package, extracted into a
// plain serializable value. The cold path summarizes loaded ASTs; the
// warm path decodes the same value from the content-hash cache — so the
// global phase literally cannot tell a cached package from a fresh one,
// which is what makes warm findings byte-identical to cold ones.

// Pos is a serializable source position. All events of one function live
// in one file, so (Line, Column) ordering within a FuncSum is total.
type Pos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (a Pos) before(b Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// CallRef is one statically resolved call edge out of a function.
type CallRef struct {
	// Callee is the called function's FullName — the module-wide unique
	// key FuncSum.Name uses.
	Callee string `json:"callee"`
	Pos    Pos    `json:"pos"`
}

// AllocSite is one allocation the hotalloc analyzer would flag if the
// containing function turns out to be on a hot path.
type AllocSite struct {
	// Desc is the finding phrase ("composite literal allocated per loop
	// iteration", "fmt.Sprintf call", ...).
	Desc string `json:"desc"`
	Pos  Pos    `json:"pos"`
}

// LockEv is one (un)lock call, in source order, for lockorder's
// section replay.
type LockEv struct {
	// Class is the position-independent lock identity: owner type plus
	// field for struct mutexes, package-qualified name for globals.
	Class string `json:"class"`
	// Expr is the rendered receiver expression ("s.mu"), used to match
	// unlocks to locks and to tell instances apart in messages.
	Expr     string `json:"expr"`
	Pos      Pos    `json:"pos"`
	Unlock   bool   `json:"unlock,omitempty"`
	Deferred bool   `json:"deferred,omitempty"`
}

// FuncSum is one function's facts.
type FuncSum struct {
	// Name is types.Func.FullName — unique across the module.
	Name string `json:"name"`
	// Short is the display rendering ("(*Logger).Append").
	Short string `json:"short"`
	// End is the position of the function body's closing brace; sections
	// with no (or a deferred) unlock run to here.
	End Pos `json:"end"`

	Hot       bool `json:"hot,omitempty"`
	HotBudget int  `json:"hotBudget,omitempty"`
	HotLine   int  `json:"hotLine,omitempty"`

	Calls  []CallRef   `json:"calls,omitempty"`
	Allocs []AllocSite `json:"allocs,omitempty"`
	Locks  []LockEv    `json:"locks,omitempty"`

	// v4 field-flow facts (DESIGN.md §15).
	Codec    *CodecMark    `json:"codec,omitempty"`
	Transfer *TransferMark `json:"transfer,omitempty"`
	Sink     string        `json:"sink,omitempty"`
	// FieldFlow is the codec's ordered target-field event sequence.
	FieldFlow []FieldEv `json:"fieldFlow,omitempty"`
	// Fields records which tracked-struct fields the function touches.
	Fields []FieldUse `json:"fields,omitempty"`
	// Taint is the function's determinism-taint graph.
	Taint *TaintSum `json:"taint,omitempty"`
}

// PkgSummary is one package's facts for the global phase.
type PkgSummary struct {
	RelPath string     `json:"relPath"`
	Funcs   []*FuncSum `json:"funcs"`
	// Structs are the package's tracked structs: codec shape pins and
	// transfer-seam receivers.
	Structs []*StructSum `json:"structs,omitempty"`
	// Defects are marker defects (dangling or malformed //mantra:codec,
	// //mantra:statetransfer, //mantra:sink comments), pre-rendered as
	// findings so the warm path replays them from cache.
	Defects []jsonFinding `json:"markDefects,omitempty"`
}

// Summarize extracts a package's global-phase facts from its AST. The
// walk mirrors buildCallGraph's conventions: function literals fold into
// their declaration, goroutine-launched literal bodies belong to the
// spawned goroutine and are excluded.
func Summarize(p *Package) *PkgSummary {
	sum := &PkgSummary{RelPath: p.RelPath}
	marks := collectPkgMarks(p)
	seamLines := seamAllowLines(p)
	sum.Structs = marks.structs
	sum.Defects = toJSONFindings(marks.defects)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fs := &FuncSum{
				Name:  fn.FullName(),
				Short: shortFuncName(fn),
				End:   toPos(p, fd.Body.End()),
			}
			if mark, ok := funcHotMark(p, fd); ok {
				fs.Hot = true
				fs.HotBudget = mark.budget
				fs.HotLine = mark.line
			}
			if fm := marks.funcs[fd]; fm != nil {
				fs.Codec = fm.codec
				fs.Transfer = fm.transfer
				fs.Sink = fm.sink
				if fm.codec != nil {
					fs.FieldFlow = fieldFlowEvents(p, fd, fm.codec)
				}
			}
			fs.Fields = fieldUses(p, fd, marks.tracked)
			fs.Taint = taintSummary(p, fd, seamLines)
			summarizeBody(p, fd, fs)
			sum.Funcs = append(sum.Funcs, fs)
		}
	}
	return sum
}

func toPos(p *Package, pos token.Pos) Pos {
	tp := p.Fset.Position(pos)
	return Pos{File: tp.Filename, Line: tp.Line, Col: tp.Column}
}

// summarizeBody fills a function's call, allocation and lock events.
func summarizeBody(p *Package, fd *ast.FuncDecl, fs *FuncSum) {
	// loops collects the *bodies* of for/range statements: allocation
	// kinds that are amortized or one-shot at top level (append, make,
	// composite literals) only count as hot allocation sites per loop
	// iteration. Only the body re-executes — a range operand or loop
	// initializer evaluates once and must not count.
	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}
	deferredCalls := make(map[*ast.CallExpr]bool)
	inspectOwnCode(fd.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.ForStmt:
			if x.Body != nil {
				loops = append(loops, x.Body)
			}
		case *ast.RangeStmt:
			if x.Body != nil {
				loops = append(loops, x.Body)
			}
		case *ast.DeferStmt:
			deferredCalls[x.Call] = true
			if recv, ok := lockCall(p, x.Call, unlockMethods); ok {
				fs.Locks = append(fs.Locks, LockEv{
					Class: lockClass(p, x.Call), Expr: recv,
					Pos: toPos(p, x.Call.Pos()), Unlock: true, Deferred: true,
				})
			}
		case *ast.CompositeLit:
			if inLoop(x.Pos()) {
				fs.Allocs = append(fs.Allocs, AllocSite{
					Desc: "composite literal allocated per loop iteration", Pos: toPos(p, x.Pos())})
			}
		case *ast.FuncLit:
			if capt := capturesFree(p, fd, x); capt != "" {
				fs.Allocs = append(fs.Allocs, AllocSite{
					Desc: "closure captures " + capt + " and allocates when it escapes", Pos: toPos(p, x.Pos())})
			}
		case *ast.CallExpr:
			summarizeCall(p, fd, fs, x, deferredCalls, inLoop)
		}
	})
}

// summarizeCall classifies one call expression: lock event, static call
// edge, allocating builtin, fmt call, or string conversion.
func summarizeCall(p *Package, fd *ast.FuncDecl, fs *FuncSum, call *ast.CallExpr, deferredCalls map[*ast.CallExpr]bool, inLoop func(token.Pos) bool) {
	// Type conversions: string([]byte) and []byte(string) copy.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := p.Info.TypeOf(call.Fun), p.Info.TypeOf(call.Args[0])
		if isStringBytesConv(to, from) {
			fs.Allocs = append(fs.Allocs, AllocSite{
				Desc: "conversion " + types.ExprString(call.Fun) + "(...) copies its operand", Pos: toPos(p, call.Pos())})
		}
		return
	}

	if !deferredCalls[call] {
		if recv, ok := lockCall(p, call, lockMethods); ok {
			fs.Locks = append(fs.Locks, LockEv{Class: lockClass(p, call), Expr: recv, Pos: toPos(p, call.Pos())})
			return
		}
		if recv, ok := lockCall(p, call, unlockMethods); ok {
			fs.Locks = append(fs.Locks, LockEv{Class: lockClass(p, call), Expr: recv, Pos: toPos(p, call.Pos()), Unlock: true})
			return
		}
	}

	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fn.Name {
		case "append":
			if b, ok := p.Info.Uses[fn].(*types.Builtin); ok && b.Name() == "append" && inLoop(call.Pos()) {
				fs.Allocs = append(fs.Allocs, AllocSite{Desc: "append growth inside a loop", Pos: toPos(p, call.Pos())})
				return
			}
		case "make", "new":
			if _, ok := p.Info.Uses[fn].(*types.Builtin); ok && inLoop(call.Pos()) {
				fs.Allocs = append(fs.Allocs, AllocSite{Desc: fn.Name + " inside a loop", Pos: toPos(p, call.Pos())})
				return
			}
		}
	case *ast.SelectorExpr:
		if pkgPath, name, ok := pkgFuncRef(p, fn); ok && pkgPath == "fmt" {
			fs.Allocs = append(fs.Allocs, AllocSite{Desc: "fmt." + name + " call (formats through interfaces, allocates)", Pos: toPos(p, call.Pos())})
			// fmt also boxes its operands, but one site per call is
			// enough signal — skip the per-argument boxing scan below.
			return
		}
	}

	if callee := staticCallee(p, call); callee != nil {
		fs.Calls = append(fs.Calls, CallRef{Callee: callee.FullName(), Pos: toPos(p, call.Pos())})
		// Interface boxing at the call boundary: a concrete non-pointer
		// value passed to an interface parameter allocates per call; only
		// flagged in loops to keep one-shot setup paths quiet.
		if inLoop(call.Pos()) {
			fs.Allocs = append(fs.Allocs, boxingSites(p, call, callee)...)
		}
	}
}

// isStringBytesConv reports string<->[]byte (or []rune) conversions.
func isStringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}

// boxingSites reports call arguments that box a concrete value into an
// interface parameter. Pointer-shaped values (pointers, maps, channels,
// funcs) fit the interface data word without allocating and are skipped,
// as are untyped nils and values that are already interfaces.
func boxingSites(p *Package, call *ast.CallExpr, callee *types.Func) []AllocSite {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []AllocSite
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || !boxAllocates(at) {
			continue
		}
		out = append(out, AllocSite{
			Desc: "argument boxed into interface parameter of " + callee.Name() + " per loop iteration",
			Pos:  toPos(p, arg.Pos())})
	}
	return out
}

// boxAllocates reports whether putting a value of type t into an
// interface heap-allocates: anything that is not already an interface
// and not pointer-shaped.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		// Slices are three words — they do allocate when boxed — but
		// they mostly reach interfaces via fmt, which is flagged at the
		// call; treating them here too would double-report.
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

// capturesFree returns a rendering of the first free variable a literal
// captures (empty when it captures nothing — a capture-free literal can
// be allocated once by the compiler).
func capturesFree(p *Package, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			found = obj.Name()
		}
		return true
	})
	return found
}

// lockClass derives the position-independent identity of the mutex a
// Lock/Unlock call operates on. For a struct field (`s.mu.Lock()`) the
// class is the owning named type plus the field path; for a
// package-level variable it is the package-qualified name; for a local
// it is the enclosing scope's rendering. Distinct instances of one
// class share an identity — lock *ordering* is a property of the code's
// type structure, not of individual values.
func lockClass(p *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return types.ExprString(call.Fun)
	}
	mutex := ast.Unparen(sel.X) // the expression the (Un)lock is called on

	// Field path case: owner.field[.field...]. Walk to the innermost
	// selector whose X has a named (or pointer-to-named) type.
	if fieldSel, ok := mutex.(*ast.SelectorExpr); ok {
		if ownerT := namedTypeOf(p, fieldSel.X); ownerT != "" {
			return ownerT + "." + fieldSel.Sel.Name
		}
		return types.ExprString(mutex)
	}
	if id, ok := mutex.(*ast.Ident); ok {
		obj := p.Info.ObjectOf(id)
		if obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name() // package-level mutex var
			}
			// Embedded mutex (`s.Lock()` resolves sel.X to the receiver) or
			// a local/receiver variable: key on its named type when it has
			// one, else on the declaring package + name.
			if t := namedTypeOf(p, id); t != "" {
				return t + ".Mutex"
			}
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return types.ExprString(mutex)
}

// namedTypeOf renders e's named type (pointers dereferenced), or "".
func namedTypeOf(p *Package, e ast.Expr) string {
	t := p.Info.TypeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	}
	// A plain sync.Mutex receiver (mutex value itself): not named.
	if strings.HasPrefix(t.String(), "sync.") {
		return ""
	}
	return ""
}
