package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Driver is mantralint v3's incremental front end. A cold run loads,
// type-checks and analyzes every package; as it goes it writes one cache
// entry per package — the raw (pre-suppression) local findings, the
// allow directives, and the global-phase fact summary — keyed by a
// content hash over the package's sources and the keys of its
// module-internal dependency closure. A warm run hashes sources (cheap),
// decodes entries for unchanged packages, and loads + re-analyzes only
// the packages whose key moved.
//
// Correctness across the warm/cold split:
//
//   - Local analyzers' findings for a package depend only on that package
//     and its dependency closure (facts flow along import edges), and the
//     cache key covers exactly that closure — so a cached local finding
//     list is valid iff the key matches.
//   - The module-wide analyzers (hotalloc, lockorder, codecsym,
//     statecov, sertaint) can change a
//     package's findings when a *reverse* dependency changes (a new
//     hot root upstream, a new lock edge elsewhere), so their findings
//     are never cached: the global phase recomputes every run from the
//     per-package summaries — cached or fresh, the same GlobalFindings
//     code path — which is what keeps warm output byte-identical to cold.
//   - Suppression and staleness are applied globally at the end, from the
//     cached allow records, in the same per-line semantics RunAnalyzers
//     uses.
//
// All positions in driver output (and in cache entries) are
// module-root-relative, so entries are stable across checkouts and
// directly diffable against a committed baseline.
type Driver struct {
	Mod *Module
	// CacheDir holds the per-package entries; "" disables caching (every
	// run is cold, output is identical either way).
	CacheDir string
	// Analyzers is the selected check set.
	Analyzers []*Analyzer
}

// DriverStats describes what one run did.
type DriverStats struct {
	// Packages is the number of package directories in the module.
	Packages int
	// CacheHits is how many of them were served from cache entries.
	CacheHits int
	// Reanalyzed is how many were loaded and re-analyzed (Packages -
	// CacheHits).
	Reanalyzed int
}

// DriverResult is one run's output.
type DriverResult struct {
	// Findings is the post-suppression finding list, position-sorted,
	// with module-root-relative paths.
	Findings []Finding
	// HotRoots is the sorted //mantra:hotpath root set discovered this
	// run — the list the testing.AllocsPerRun gates are generated from.
	HotRoots []string
	Stats    DriverStats
}

// cacheSchema versions the entry encoding; bump on any change to what
// entries contain or how keys are derived, and every entry goes stale.
// (v2: field-flow facts — structs, codec/transfer/sink marks, taint.)
const cacheSchema = 2

// cacheEntry is one package's cached analysis.
type cacheEntry struct {
	Schema  int    `json:"schema"`
	Key     string `json:"key"`
	RelPath string `json:"relPath"`
	// Findings are the raw local-analyzer findings, pre-suppression.
	Findings []jsonFinding `json:"findings"`
	// Allows are the well-formed suppression directives; Defects the
	// malformed ones (already findings).
	Allows  []AllowRec    `json:"allows"`
	Defects []jsonFinding `json:"defects"`
	// Summary feeds the global phase.
	Summary *PkgSummary `json:"summary"`
}

// Run executes the incremental analysis.
func (d *Driver) Run() (*DriverResult, error) {
	rels, err := d.Mod.PackageDirs()
	if err != nil {
		return nil, err
	}

	keys, err := d.packageKeys(rels)
	if err != nil {
		return nil, err
	}

	entries := make(map[string]*cacheEntry, len(rels))
	var missed []string
	for _, rel := range rels {
		if e := d.readEntry(rel, keys[rel]); e != nil {
			entries[rel] = e
			continue
		}
		missed = append(missed, rel)
	}

	if err := d.analyze(missed, keys, entries); err != nil {
		return nil, err
	}

	// Assemble: summaries from every entry feed the global phase; local
	// findings come from the entries; suppression applies globally.
	ran := make(map[string]bool)
	globalWanted := false
	for _, a := range d.Analyzers {
		ran[a.Name] = true
		if isGlobalCheck(a.Name) {
			globalWanted = true
		}
	}

	sums := make([]*PkgSummary, 0, len(rels))
	var allows []AllowRec
	var out, raw []Finding
	for _, rel := range rels {
		e := entries[rel]
		sums = append(sums, e.Summary)
		allows = append(allows, e.Allows...)
		out = append(out, fromJSONFindings(e.Defects)...)
		raw = append(raw, fromJSONFindings(e.Findings)...)
	}
	if globalWanted {
		for _, fs := range GlobalFindings(sums) {
			for _, f := range fs {
				if ran[f.Check] {
					//mantralint:allow sertaint sortFindings orders the result before it is reported
					raw = append(raw, f)
				}
			}
		}
	}

	set := newAllowSet(allows)
	for _, f := range raw {
		if !set.suppresses(f) {
			out = append(out, f)
		}
	}
	out = append(out, set.stale(ran)...)
	sortFindings(out)

	return &DriverResult{
		Findings: out,
		HotRoots: HotRoots(sums),
		Stats: DriverStats{
			Packages:   len(rels),
			CacheHits:  len(rels) - len(missed),
			Reanalyzed: len(missed),
		},
	}, nil
}

// analyze loads and analyzes the missed packages, filling (and, when
// caching is on, persisting) their entries. Loading is sequential — the
// module loader memoizes dependency closures — analysis is parallel.
func (d *Driver) analyze(missed []string, keys map[string]string, entries map[string]*cacheEntry) error {
	if len(missed) == 0 {
		return nil
	}
	pkgs := make([]*Package, len(missed))
	for i, rel := range missed {
		p, err := d.Mod.LoadPackage(rel)
		if err != nil {
			return err
		}
		pkgs[i] = p
	}

	// The Analysis spans everything loaded (missed packages plus the
	// dependency closures pulled in to type-check them), so cross-package
	// facts for the local analyzers are as complete as a full cold run.
	a := NewAnalysis(d.Mod.Loaded())

	// Only the local analyzers run per package here; the global set is
	// recomputed from summaries in Run, never cached.
	var local []*Analyzer
	for _, an := range d.Analyzers {
		if !isGlobalCheck(an.Name) {
			local = append(local, an)
		}
	}

	valid := validChecks()
	fresh := make([]*cacheEntry, len(missed))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			recs, defects := collectAllowRecs(p, valid)
			var raw []Finding
			for _, an := range local {
				raw = append(raw, an.Run(a, p)...)
			}
			e := &cacheEntry{
				Schema:   cacheSchema,
				Key:      keys[p.RelPath],
				RelPath:  p.RelPath,
				Findings: toJSONFindings(raw),
				Allows:   recs,
				Defects:  toJSONFindings(defects),
				Summary:  Summarize(p),
			}
			d.relativizeEntry(e)
			fresh[i] = e
		}(i, p)
	}
	wg.Wait()

	for i, rel := range missed {
		entries[rel] = fresh[i]
		if d.CacheDir != "" {
			if err := d.writeEntry(fresh[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// packageKeys computes each package's cache key: a hash over the entry
// schema, the selected check names, the toolchain version, the module
// path, the package's own sources, and — recursively — the keys of its
// module-internal imports. Any edit anywhere in the dependency closure
// moves the key.
func (d *Driver) packageKeys(rels []string) (map[string]string, error) {
	infos := make(map[string]*dirScan, len(rels))
	var checks []string
	for _, a := range d.Analyzers {
		checks = append(checks, a.Name)
	}
	sort.Strings(checks)
	header := fmt.Sprintf("schema=%d\nchecks=%s\ngo=%s\nmodule=%s\nimpl=%s\n",
		cacheSchema, strings.Join(checks, ","), runtime.Version(), d.Mod.Path, implFingerprint())

	for _, rel := range rels {
		info, err := d.scanDir(rel)
		if err != nil {
			return nil, err
		}
		infos[rel] = info
	}

	keys := make(map[string]string, len(rels))
	var keyOf func(rel string) string
	keyOf = func(rel string) string {
		if k, ok := keys[rel]; ok {
			return k
		}
		info := infos[rel]
		if info == nil {
			// Import of a directory outside the package walk (or missing):
			// a constant key keeps the referrer stable; the type-checker
			// reports the real problem.
			return "unresolved:" + rel
		}
		keys[rel] = "cycle:" + rel // placeholder; real cycles fail the load
		h := sha256.New()
		fmt.Fprintf(h, "%srel=%s\nself=%s\n", header, rel, info.selfHash)
		for _, dep := range info.deps {
			fmt.Fprintf(h, "dep=%s:%s\n", dep, keyOf(dep))
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[rel] = k
		return k
	}
	for _, rel := range rels {
		keyOf(rel)
	}
	return keys, nil
}

// dirScan is one directory's hash inputs: a digest of its own sources
// and its module-internal imports (as package rels).
type dirScan struct {
	selfHash string
	deps     []string
}

// scanDir hashes a package directory's non-test Go sources and extracts
// its module-internal imports, without type-checking.
func (d *Driver) scanDir(rel string) (*dirScan, error) {
	dir := filepath.Join(d.Mod.Root, rel)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	h := sha256.New()
	depSet := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "file=%s:%d\n", name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			continue // the loader will report the syntax error properly
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == d.Mod.Path {
				depSet[""] = true
			} else if rest, ok := strings.CutPrefix(path, d.Mod.Path+"/"); ok {
				depSet[filepath.FromSlash(rest)] = true
			}
		}
	}
	var deps []string
	for dep := range depSet {
		if dep != rel {
			deps = append(deps, dep)
		}
	}
	sort.Strings(deps)
	return &dirScan{selfHash: hex.EncodeToString(h.Sum(nil)), deps: deps}, nil
}

// entryPath maps a package rel to its cache file.
func (d *Driver) entryPath(rel string) string {
	name := "ROOT"
	if rel != "" {
		name = strings.ReplaceAll(filepath.ToSlash(rel), "/", "__")
	}
	return filepath.Join(d.CacheDir, name+".json")
}

// readEntry returns the cached entry for rel iff it exists, decodes, and
// matches the wanted key exactly; anything else is a miss.
func (d *Driver) readEntry(rel, key string) *cacheEntry {
	if d.CacheDir == "" {
		return nil
	}
	data, err := os.ReadFile(d.entryPath(rel))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil {
		return nil
	}
	if e.Schema != cacheSchema || e.Key != key || e.RelPath != rel || e.Summary == nil {
		return nil
	}
	return &e
}

// writeEntry persists one entry, via a temp file so a crashed run never
// leaves a torn entry behind.
func (d *Driver) writeEntry(e *cacheEntry) error {
	if err := os.MkdirAll(d.CacheDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	path := d.entryPath(e.RelPath)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// relativizeEntry rewrites every absolute source path in an entry to be
// module-root-relative, so entries survive checkout moves and driver
// output diffs cleanly against a committed baseline.
func (d *Driver) relativizeEntry(e *cacheEntry) {
	rel := func(name string) string {
		r, err := filepath.Rel(d.Mod.Root, name)
		if err != nil || strings.HasPrefix(r, "..") {
			return name
		}
		return filepath.ToSlash(r)
	}
	for i := range e.Findings {
		e.Findings[i].File = rel(e.Findings[i].File)
	}
	for i := range e.Defects {
		e.Defects[i].File = rel(e.Defects[i].File)
	}
	for i := range e.Allows {
		e.Allows[i].Pos.File = rel(e.Allows[i].Pos.File)
	}
	for _, f := range e.Summary.Funcs {
		f.End.File = rel(f.End.File)
		for i := range f.Calls {
			f.Calls[i].Pos.File = rel(f.Calls[i].Pos.File)
		}
		for i := range f.Allocs {
			f.Allocs[i].Pos.File = rel(f.Allocs[i].Pos.File)
		}
		for i := range f.Locks {
			f.Locks[i].Pos.File = rel(f.Locks[i].Pos.File)
		}
		if f.Codec != nil {
			f.Codec.Pos.File = rel(f.Codec.Pos.File)
		}
		if f.Transfer != nil {
			f.Transfer.Pos.File = rel(f.Transfer.Pos.File)
		}
		for i := range f.FieldFlow {
			f.FieldFlow[i].Pos.File = rel(f.FieldFlow[i].Pos.File)
		}
		if f.Taint != nil {
			for i := range f.Taint.Calls {
				f.Taint.Calls[i].Pos.File = rel(f.Taint.Calls[i].Pos.File)
			}
			for i := range f.Taint.Sources {
				f.Taint.Sources[i].Pos.File = rel(f.Taint.Sources[i].Pos.File)
			}
		}
	}
	for _, s := range e.Summary.Structs {
		s.Pos.File = rel(s.Pos.File)
		for i := range s.Fields {
			s.Fields[i].Pos.File = rel(s.Fields[i].Pos.File)
		}
		if s.Codec != nil {
			s.Codec.Pos.File = rel(s.Codec.Pos.File)
		}
	}
	for i := range e.Summary.Defects {
		e.Summary.Defects[i].File = rel(e.Summary.Defects[i].File)
	}
}

// validChecks is the allow-comment validity set: every registered check
// plus the implicit ones.
func validChecks() map[string]bool {
	valid := make(map[string]bool)
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	for _, name := range ImplicitChecks() {
		valid[name] = true
	}
	return valid
}

func toJSONFindings(fs []Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
			Check: f.Check, Message: f.Message,
		})
	}
	return out
}

func fromJSONFindings(fs []jsonFinding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, Finding{
			Pos:   token.Position{Filename: f.File, Line: f.Line, Column: f.Column},
			Check: f.Check, Message: f.Message,
		})
	}
	return out
}
