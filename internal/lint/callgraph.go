package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the cross-function layer the concurrency analyzers stand
// on: a lightweight static call graph over the loaded packages plus a
// fact store of per-function properties derived by fixpoint over it.
//
// The graph is deliberately modest — direct calls only. A call through a
// function value or an interface method has no static callee and
// contributes no edge; the analyzers that consume the graph are tuned so
// that missing edges make them quieter, never wrong in the other
// direction. Function literals fold into their enclosing declaration,
// except literals launched with `go`: what a goroutine does is not what
// its spawner does (a send inside `go func(){...}` does not block the
// spawning frame), so those bodies are excluded from the enclosing
// function's facts and examined separately by goleak.

// FuncNode is one function or method declared in the analyzed packages.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls lists the statically resolvable callees, in source order.
	Calls []CallSite
}

// CallSite is one static call edge.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// blockCause records why a function is considered blocking: the nearest
// operation (or call edge) responsible, plus a human-readable chain.
type blockCause struct {
	// desc is the chain description, e.g. "(*os.File).Sync" or
	// "(*Store).append → (*os.File).Sync".
	desc string
	pos  token.Pos
}

// CallGraph is the module-wide static call graph plus the derived
// per-function facts. Built once per RunAnalyzers call and read-only
// afterwards, so analyzers may consult it from concurrent goroutines.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode

	// blocking maps a function to the reason it may block the calling
	// goroutine: it directly performs a channel operation, select, sleep,
	// fsync or network I/O, or it (transitively) calls a function that
	// does.
	blocking map[*types.Func]*blockCause

	// loopsForever maps a function to the position of a `for {}` loop
	// with no exit: no break, no return, no channel receive, no select —
	// the static shape of a goroutine leak. Propagated through call
	// edges so `go s.run()` is judged by what run ultimately does.
	loopsForever map[*types.Func]token.Pos
}

// buildCallGraph constructs the graph and computes the fact store.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:        make(map[*types.Func]*FuncNode),
		blocking:     make(map[*types.Func]*blockCause),
		loopsForever: make(map[*types.Func]token.Pos),
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Pkg: p, Decl: fd}
				inspectOwnCode(fd.Body, func(n ast.Node) {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := staticCallee(p, call); callee != nil {
							node.Calls = append(node.Calls, CallSite{Callee: callee, Pos: call.Pos()})
						}
					}
				})
				g.Nodes[fn] = node
			}
		}
	}
	g.computeBlocking()
	g.computeLoops()
	return g
}

// inspectOwnCode walks a function body, excluding work that `go`
// statements hand to other goroutines: a launched literal's body, and
// the launched call itself for named functions (`go s.run()` does not
// make the spawner block or loop). The call's argument expressions still
// evaluate on this goroutine and are kept. Deferred and
// immediately-invoked literals also run on this goroutine and are kept.
func inspectOwnCode(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			for _, arg := range g.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool { visit(m); return true })
			}
			return false
		}
		visit(n)
		return true
	})
}

// staticCallee resolves a call expression to its called *types.Func when
// the callee is statically known: a plain function, a method on a
// concrete receiver, or a package-qualified function. Calls through
// function values, built-ins and type conversions resolve to nil.
func staticCallee(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified: pkg.Func.
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// blockingStdlib is the curated set of standard-library calls treated as
// blocking the calling goroutine, keyed by types.Func.FullName. Fast
// in-memory work (os.File.Write hits the page cache) is deliberately
// absent; fsync, sleeps and network I/O are the latency cliffs the
// lockheld invariant is about.
var blockingStdlib = map[string]string{
	"time.Sleep":                        "time.Sleep",
	"net.Dial":                          "net.Dial",
	"net.DialTimeout":                   "net.DialTimeout",
	"net.Listen":                        "net.Listen",
	"net.ListenPacket":                  "net.ListenPacket",
	"net/http.ListenAndServe":           "http.ListenAndServe",
	"(*net/http.Server).ListenAndServe": "(*http.Server).ListenAndServe",
	"(*net/http.Client).Do":             "(*http.Client).Do",
	"net/http.Get":                      "http.Get",
	"net/http.Post":                     "http.Post",
	"(*os.File).Sync":                   "(*os.File).Sync (fsync)",
	"(*sync.WaitGroup).Wait":            "(*sync.WaitGroup).Wait",
	"(*sync.Cond).Wait":                 "(*sync.Cond).Wait",
	"(net.Conn).Read":                   "network read",
	"(net.Conn).Write":                  "network write",
	"(net.Listener).Accept":             "Accept",
	"(net.PacketConn).ReadFrom":         "network read",
	"(net.PacketConn).WriteTo":          "network write",
	"(*net.TCPConn).Read":               "network read",
	"(*net.TCPConn).Write":              "network write",
	"(*net.UDPConn).Read":               "network read",
	"(*net.UDPConn).Write":              "network write",
	"(*net.UDPConn).ReadFrom":           "network read",
	"(*net.UDPConn).WriteTo":            "network write",
	"(*net.TCPListener).Accept":         "Accept",
	"(*os/exec.Cmd).Run":                "(*exec.Cmd).Run",
	"(*os/exec.Cmd).Wait":               "(*exec.Cmd).Wait",
	"(*os/exec.Cmd).Output":             "(*exec.Cmd).Output",
	"(*os/exec.Cmd).CombinedOutput":     "(*exec.Cmd).CombinedOutput",
}

// directBlockOp reports the blocking operation n itself performs, if
// any: channel send/receive, select, range over a channel, or a call
// into the blocking stdlib surface.
func directBlockOp(p *Package, n ast.Node) (string, token.Pos, bool) {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send", x.Arrow, true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive", x.OpPos, true
		}
	case *ast.SelectStmt:
		return "select", x.Select, true
	case *ast.RangeStmt:
		if t := p.Info.TypeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel", x.For, true
			}
		}
	case *ast.CallExpr:
		if fn := staticCallee(p, x); fn != nil {
			if desc, ok := blockingStdlib[fn.FullName()]; ok {
				return desc, x.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// computeBlocking seeds each node with its direct blocking operations,
// then propagates through call edges to a fixpoint: a function that
// calls a blocking function blocks, with the cause chain recorded for
// the eventual finding message.
func (g *CallGraph) computeBlocking() {
	for fn, node := range g.Nodes {
		p := node.Pkg
		inspectOwnCode(node.Decl.Body, func(n ast.Node) {
			if g.blocking[fn] != nil {
				return
			}
			if desc, pos, ok := directBlockOp(p, n); ok {
				g.blocking[fn] = &blockCause{desc: desc, pos: pos}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Nodes {
			if g.blocking[fn] != nil {
				continue
			}
			for _, cs := range node.Calls {
				cause := g.blocking[cs.Callee]
				if cause == nil {
					continue
				}
				g.blocking[fn] = &blockCause{
					desc: shortFuncName(cs.Callee) + " → " + cause.desc,
					pos:  cs.Pos,
				}
				changed = true
				break
			}
		}
	}
}

// BlockingCause returns why fn may block the calling goroutine, or nil.
func (g *CallGraph) BlockingCause(fn *types.Func) *blockCause {
	if fn == nil {
		return nil
	}
	return g.blocking[fn]
}

// computeLoops finds functions whose body contains an exit-less `for {}`
// and propagates the fact through call edges, so goleak can judge
// `go s.run()` by run's ultimate shape.
func (g *CallGraph) computeLoops() {
	for fn, node := range g.Nodes {
		if pos, ok := foreverLoop(node.Pkg, node.Decl.Body); ok {
			g.loopsForever[fn] = pos
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Nodes {
			if _, done := g.loopsForever[fn]; done {
				continue
			}
			// Only an unconditional call transmits the fact: a looping
			// callee reached under an if may never run. Statement-level
			// calls directly in the body's top level qualify.
			for _, stmt := range node.Decl.Body.List {
				es, ok := stmt.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				callee := staticCallee(node.Pkg, call)
				if callee == nil {
					continue
				}
				if _, loops := g.loopsForever[callee]; loops {
					g.loopsForever[fn] = call.Pos()
					changed = true
					break
				}
			}
		}
	}
}

// LoopsForever returns the position of fn's exit-less loop (possibly via
// an unconditional callee), or false.
func (g *CallGraph) LoopsForever(fn *types.Func) (token.Pos, bool) {
	if fn == nil {
		return token.NoPos, false
	}
	pos, ok := g.loopsForever[fn]
	return pos, ok
}

// foreverLoop scans a body (goroutine-launched literals excluded — their
// loops are their own) for a `for {}` with no exit path: no break
// targeting it, no return, no channel receive, no select, and no range
// over a channel anywhere inside. Any of those is a stop or completion
// path and clears the loop.
func foreverLoop(p *Package, body *ast.BlockStmt) (token.Pos, bool) {
	var found token.Pos
	ok := false
	inspectOwnCode(body, func(n ast.Node) {
		if ok {
			return
		}
		loop, isFor := n.(*ast.ForStmt)
		if !isFor || loop.Cond != nil {
			return
		}
		if !loopHasExit(p, loop) {
			found, ok = loop.For, true
		}
	})
	return found, ok
}

// loopHasExit reports whether an unconditional for-loop contains any
// construct that can stop it or park it on a signal: break/return/goto,
// a channel receive or send (a send on an unbuffered channel is a
// rendezvous — the other side disappearing is detectable via panic on
// close, and in practice pool-shaped code is driven by its consumer),
// select, or a range over a channel.
func loopHasExit(p *Package, loop *ast.ForStmt) bool {
	exit := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK || x.Tok == token.GOTO {
				exit = true
			}
		case *ast.ReturnStmt:
			exit = true
		case *ast.SelectStmt:
			exit = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				exit = true
			}
		case *ast.SendStmt:
			exit = true
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					exit = true
				}
			}
		case *ast.CallExpr:
			if name := calleeName(x); name == "panic" || name == "Fatal" || name == "Fatalf" || name == "Exit" {
				exit = true
			}
		case *ast.FuncLit:
			return false // a nested literal's exits are not this loop's
		}
		return !exit
	})
	return exit
}

// shortFuncName renders a function for finding messages: method
// receivers keep their type, package paths are trimmed to the last
// element ("(*Store).append", "collect.RunScript").
func shortFuncName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return pkgShort(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}
