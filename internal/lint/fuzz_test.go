package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSummaryExtract drives the fact-summary extractor over arbitrary
// Go sources. The extractor sits in front of the finding cache, so its
// contract is strict: it must never panic, and summarizing the same
// source twice — through two fully independent parse/type-check passes
// — must yield byte-identical JSON, or warm cache entries would diverge
// from cold runs.

// refuseImporter fails every import: fuzz inputs type-check best-effort
// with unresolved imports recorded as type errors, the same degraded
// mode the real loader falls into on broken packages.
type refuseImporter struct{}

func (refuseImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("fuzz: import %q refused", path)
}

// summarizeSource runs one full parse/check/summarize pass and returns
// the summary's JSON. ok is false when the input doesn't parse.
func summarizeSource(src []byte) (out []byte, ok bool) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, false
	}
	p := &Package{RelPath: "fuzz", Name: f.Name.Name, Fset: fset, Files: []*ast.File{f}}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: refuseImporter{},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check("fuzz", fset, p.Files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg

	b, err := json.Marshal(Summarize(p))
	if err != nil {
		panic(fmt.Sprintf("summary not JSON-serializable: %v", err))
	}
	return b, true
}

func FuzzSummaryExtract(f *testing.F) {
	// Seed with this module's own sources: the analyzer package itself
	// plus every fixture — the richest available coverage of marker
	// grammar, codec bodies and taint shapes.
	var seeds []string
	for _, pat := range []string{"*.go", filepath.Join("testdata", "*", "*.go")} {
		m, err := filepath.Glob(pat)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, m...)
	}
	if len(seeds) == 0 {
		f.Fatal("no seed sources found")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}

	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		first, ok := summarizeSource(src)
		if !ok {
			return
		}
		second, _ := summarizeSource(src)
		if string(first) != string(second) {
			t.Fatalf("summary extraction is nondeterministic:\nfirst:  %s\nsecond: %s", first, second)
		}
	})
}
