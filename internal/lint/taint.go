package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism-taint extraction (sertaint's per-function half). Each
// function is reduced to a def-use edge graph over abstract nodes:
//
//	p<i>       the i-th parameter
//	ret        the merged result value
//	c<k>.a<j>  the j-th argument of the k-th call in the body
//	c<k>.r     the k-th call's result
//	s<i>       a nondeterminism source
//	v <n>:<l>  a local variable (name + declaration line)
//	chan <T>   a channel of module struct type T (shared module-wide)
//
// Sources are the places order nondeterminism enters a value:
// accumulation (op-assign or a self-referential assignment like
// x = append(x, k)) into a variable declared outside a map-range body, a
// select arm, or a go-launched literal — plus calls into time/rand that
// are not declared seams (an adjacent wallclock/globalrand allow marks a
// site as deliberately seamed). The global phase stitches the
// per-function graphs together along call edges and reports any source
// that reaches a serialization sink.
//
// Precision choices, deliberately conservative in the quiet direction:
// sort.* calls sanitize their (plain-variable) arguments; map-index
// writes carry no taint (map insertion order is unobservable until a
// range, which is its own source); package-level variables and method
// receivers are not propagated through.

// TaintEdge is one def-use edge: From's taint flows into To.
type TaintEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// TaintCall is one statically resolved call, for cross-function
// stitching and sink detection.
type TaintCall struct {
	// Index is the call's node index (c<Index>.a<j> / c<Index>.r).
	Index  int    `json:"index"`
	Callee string `json:"callee"`
	Pos    Pos    `json:"pos"`
	// Sink describes a standard-library serialization sink, "" otherwise
	// (module sinks are resolved from the callee's //mantra:sink in the
	// global phase).
	Sink string `json:"sink,omitempty"`
	// DataFrom is the first argument index that is serialized data (1 for
	// fmt.Fprint-style sinks whose argument 0 is the writer).
	DataFrom int `json:"dataFrom,omitempty"`
}

// TaintSrc is one nondeterminism source.
type TaintSrc struct {
	Desc string `json:"desc"`
	Pos  Pos    `json:"pos"`
}

// TaintSum is one function's serialized taint graph.
type TaintSum struct {
	// Params is the signature's parameter count (receiver excluded), for
	// variadic clamping at call sites.
	Params  int         `json:"params,omitempty"`
	Edges   []TaintEdge `json:"edges,omitempty"`
	Calls   []TaintCall `json:"calls,omitempty"`
	Sources []TaintSrc  `json:"sources,omitempty"`
}

// taintCtx is one nondeterministic-order region of a body.
type taintCtx struct {
	// boundary decides "declared outside": a variable declared before
	// this node accumulates across the region's nondeterministic order.
	boundary ast.Node
	// body is the span writes must fall in.
	body ast.Node
	desc string
}

type taintExtract struct {
	p         *Package
	fd        *ast.FuncDecl
	sum       *TaintSum
	callIdx   map[*ast.CallExpr]int
	nextCall  int
	paramNode map[types.Object]string
	edgeSeen  map[TaintEdge]bool
	sanitized map[string]bool
	ctxs      []taintCtx
	// seamLines marks lines sanctioned by a wallclock/globalrand allow
	// (the allow line and the line it covers below).
	seamLines map[string]map[int]bool
}

// taintSummary extracts one function's taint graph, or nil when the
// function has no internal flow at all.
func taintSummary(p *Package, fd *ast.FuncDecl, seamLines map[string]map[int]bool) *TaintSum {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	tx := &taintExtract{
		p:         p,
		fd:        fd,
		sum:       &TaintSum{Params: sig.Params().Len()},
		callIdx:   make(map[*ast.CallExpr]int),
		paramNode: make(map[types.Object]string),
		edgeSeen:  make(map[TaintEdge]bool),
		sanitized: make(map[string]bool),
		seamLines: seamLines,
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					tx.paramNode[obj] = fmt.Sprintf("p%d", i)
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	tx.collectCtxs()
	// Unlike the call-graph facts, the taint walk includes go-launched
	// literal bodies: a goroutine's writes land in the same variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			tx.handleAssign(x)
		case *ast.SendStmt:
			tx.handleSend(x)
		case *ast.RangeStmt:
			tx.handleRange(x)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				tx.edges(tx.refs(res), "ret")
			}
		case *ast.CallExpr:
			tx.handleCall(x)
		}
		return true
	})
	// Named results flow to ret on any bare return.
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if n := tx.varNode(name); n != "" {
					tx.edge(n, "ret")
				}
			}
		}
	}
	tx.finish()
	if len(tx.sum.Edges) == 0 && len(tx.sum.Sources) == 0 {
		return nil
	}
	return tx.sum
}

// collectCtxs pre-collects the nondeterministic-order regions.
func (tx *taintExtract) collectCtxs() {
	ast.Inspect(tx.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if isMapType(tx.p.Info.TypeOf(x.X)) && x.Body != nil {
				tx.ctxs = append(tx.ctxs, taintCtx{boundary: x, body: x.Body, desc: "value accumulated in map-iteration order"})
			}
		case *ast.SelectStmt:
			for _, clause := range x.Body.List {
				tx.ctxs = append(tx.ctxs, taintCtx{boundary: x, body: clause, desc: "value accumulated in select-arm arrival order"})
			}
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
				tx.ctxs = append(tx.ctxs, taintCtx{boundary: lit, body: lit.Body, desc: "value accumulated in goroutine-completion order"})
			}
		}
		return true
	})
}

// ctxAt returns the innermost nondeterministic region containing pos.
func (tx *taintExtract) ctxAt(pos token.Pos) *taintCtx {
	var best *taintCtx
	for i := range tx.ctxs {
		c := &tx.ctxs[i]
		if c.body.Pos() <= pos && pos < c.body.End() {
			if best == nil || c.body.Pos() >= best.body.Pos() {
				best = c
			}
		}
	}
	return best
}

func (tx *taintExtract) edge(from, to string) {
	if from == "" || to == "" || from == to {
		return
	}
	e := TaintEdge{From: from, To: to}
	if tx.edgeSeen[e] {
		return
	}
	tx.edgeSeen[e] = true
	tx.sum.Edges = append(tx.sum.Edges, e)
}

func (tx *taintExtract) edges(from []string, to string) {
	for _, f := range from {
		tx.edge(f, to)
	}
}

// varNode maps an identifier to its abstract node: a parameter node, or
// a function-local variable node. Fields, package-level variables and
// non-variables map to "".
func (tx *taintExtract) varNode(id *ast.Ident) string {
	obj := tx.p.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return ""
	}
	if n, isParam := tx.paramNode[obj]; isParam {
		return n
	}
	// Receivers and package-level state are out of scope (documented).
	if obj.Pos() < tx.fd.Body.Pos() || obj.Pos() >= tx.fd.Body.End() {
		return ""
	}
	return fmt.Sprintf("v %s:%d", v.Name(), tx.p.Fset.Position(obj.Pos()).Line)
}

func (tx *taintExtract) callIndex(call *ast.CallExpr) int {
	if k, ok := tx.callIdx[call]; ok {
		return k
	}
	k := tx.nextCall
	tx.nextCall++
	tx.callIdx[call] = k
	return k
}

// refs collects the abstract nodes an expression's value derives from.
// Calls contribute their result node without descending (argument flow
// goes through the callee's own graph); selectors collapse to their root
// variable (field granularity is not tracked).
func (tx *taintExtract) refs(e ast.Expr) []string {
	var out []string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.Ident:
			if n := tx.varNode(x); n != "" {
				out = append(out, n)
			}
		case *ast.SelectorExpr:
			if root := rootIdent(x); root != nil {
				if n := tx.varNode(root); n != "" {
					out = append(out, n)
				}
				return
			}
			walk(x.X) // call-rooted selector: f().Field
		case *ast.CallExpr:
			out = append(out, fmt.Sprintf("c%d.r", tx.callIndex(x)))
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if cn := chanNode(tx.p.Info.TypeOf(x.X)); cn != "" {
					out = append(out, cn)
				}
				return
			}
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.ParenExpr:
			walk(x.X)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *ast.SliceExpr:
			walk(x.X)
		case *ast.TypeAssertExpr:
			walk(x.X)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
					continue
				}
				walk(elt)
			}
		case *ast.KeyValueExpr:
			walk(x.Value)
		}
	}
	walk(e)
	return out
}

func (tx *taintExtract) handleAssign(as *ast.AssignStmt) {
	shared := len(as.Rhs) == 1 && len(as.Lhs) > 1 // tuple: a, b := f()
	var sharedRefs []string
	if shared {
		sharedRefs = tx.refs(as.Rhs[0])
	}
	for i, lhs := range as.Lhs {
		root := rootIdent(lhs)
		target := ""
		if root != nil {
			target = tx.varNode(root)
		}
		if target == "" {
			continue
		}
		// A write through a map index is unordered storage: the taint
		// re-enters (as its own source) only when the map is ranged.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(tx.p.Info.TypeOf(ix.X)) {
			continue
		}
		rhs := sharedRefs
		if !shared && i < len(as.Rhs) {
			rhs = tx.refs(as.Rhs[i])
		}
		tx.edges(rhs, target)
		// Source: accumulation into a variable that outlives a
		// nondeterministically ordered region.
		if ctx := tx.ctxAt(as.Pos()); ctx != nil &&
			tx.accumulating(as, i, root) && !declaredWithin(tx.p, root, ctx.boundary) {
			s := fmt.Sprintf("s%d", len(tx.sum.Sources))
			tx.sum.Sources = append(tx.sum.Sources, TaintSrc{Desc: ctx.desc, Pos: toPos(tx.p, as.Pos())})
			tx.edge(s, target)
		}
	}
}

// accumulating reports whether assignment slot i folds the previous
// value of its own target into the new one: an op-assign (+=, |=, ...),
// or a plain assignment whose RHS mentions the target variable
// (x = append(x, k), x = x + s). Overwrites and max-style reductions are
// order-independent often enough that flagging them would drown the
// signal.
func (tx *taintExtract) accumulating(as *ast.AssignStmt, i int, root *ast.Ident) bool {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return true
	}
	if i >= len(as.Rhs) {
		return false
	}
	obj := tx.p.Info.ObjectOf(root)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(as.Rhs[i], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && tx.p.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func (tx *taintExtract) handleSend(s *ast.SendStmt) {
	if cn := chanNode(tx.p.Info.TypeOf(s.Chan)); cn != "" {
		tx.edges(tx.refs(s.Value), cn)
	}
}

func (tx *taintExtract) handleRange(rs *ast.RangeStmt) {
	var targets []string
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok {
			if n := tx.varNode(id); n != "" {
				targets = append(targets, n)
			}
		}
	}
	srcRefs := tx.refs(rs.X)
	if cn := chanNode(tx.p.Info.TypeOf(rs.X)); cn != "" {
		srcRefs = append(srcRefs, cn)
	}
	for _, t := range targets {
		tx.edges(srcRefs, t)
	}
}

func (tx *taintExtract) handleCall(call *ast.CallExpr) {
	k := tx.callIndex(call)
	res := fmt.Sprintf("c%d.r", k)

	// Conversions pass their operand through.
	if tv, ok := tx.p.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			tx.edges(tx.refs(a), res)
		}
		return
	}
	callee := staticCallee(tx.p, call)
	if callee == nil {
		// Builtins (append, copy, ...) and dynamic calls: conservative
		// pass-through, arguments to result.
		for _, a := range call.Args {
			tx.edges(tx.refs(a), res)
		}
		return
	}
	full := callee.FullName()
	if callee.Pkg() != nil && callee.Pkg().Path() == "sort" {
		// Sorting imposes a deterministic order: the sorted variable's
		// onward flow is clean. Sorting a field (sort.Slice(out.Pairs))
		// sanitizes the root variable — coarse, but the module's
		// accumulate-then-sort pattern sorts every accumulated field
		// before the value moves on.
		for _, a := range call.Args {
			if id := rootIdent(a); id != nil {
				if n := tx.varNode(id); n != "" {
					tx.sanitized[n] = true
				}
			}
		}
		return
	}
	// Unseamed clock/rand readings are sources in their own right.
	if desc := clockRandSource(callee); desc != "" && !tx.seamed(call) {
		s := fmt.Sprintf("s%d", len(tx.sum.Sources))
		tx.sum.Sources = append(tx.sum.Sources, TaintSrc{Desc: desc, Pos: toPos(tx.p, call.Pos())})
		tx.edge(s, res)
	}
	tc := TaintCall{Index: k, Callee: full, Pos: toPos(tx.p, call.Pos())}
	tc.Sink, tc.DataFrom = stdlibSink(tx.p, call, full)
	tx.sum.Calls = append(tx.sum.Calls, tc)
	for j, a := range call.Args {
		tx.edges(tx.refs(a), fmt.Sprintf("c%d.a%d", k, j))
	}
}

// seamed reports whether the call site carries (or sits under) a
// wallclock/globalrand allow — the module's convention for a declared,
// reviewed clock/rand seam.
func (tx *taintExtract) seamed(call *ast.CallExpr) bool {
	pos := tx.p.Fset.Position(call.Pos())
	return tx.seamLines[pos.Filename][pos.Line]
}

// finish drops edges flowing out of sanitized variables.
func (tx *taintExtract) finish() {
	if len(tx.sanitized) == 0 {
		return
	}
	kept := tx.sum.Edges[:0]
	for _, e := range tx.sum.Edges {
		if !tx.sanitized[e.From] {
			kept = append(kept, e)
		}
	}
	tx.sum.Edges = kept
}

// chanNode renders the shared node of a channel whose element is a named
// struct (or pointer to one) — the payload shape worth tracking across
// goroutines. Channels of basic types are too promiscuous to share a
// node without smearing taint module-wide.
func chanNode(t types.Type) string {
	if t == nil {
		return ""
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	elem := ch.Elem()
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	full := typeFullName(elem)
	if full == "" {
		return ""
	}
	if _, isStruct := elem.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	return "chan " + full
}

// clockRandSource classifies direct nondeterminism-producing stdlib
// calls: wall-clock readings and the global rand.
func clockRandSource(callee *types.Func) string {
	switch callee.FullName() {
	case "time.Now", "time.Since", "time.Until":
		return "unseamed wall-clock reading (" + callee.FullName() + ")"
	}
	if pkg := callee.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
		return "unseamed global-rand value (" + callee.FullName() + ")"
	}
	return ""
}

// stdlibSink classifies standard-library serialization sinks.
func stdlibSink(p *Package, call *ast.CallExpr, full string) (string, int) {
	switch full {
	case "encoding/json.Marshal", "encoding/json.MarshalIndent":
		return "json.Marshal", 0
	case "(*encoding/json.Encoder).Encode":
		return "(*json.Encoder).Encode", 0
	case "(*encoding/gob.Encoder).Encode":
		return "(*gob.Encoder).Encode", 0
	case "(net/http.ResponseWriter).Write":
		return "the HTTP response body", 0
	case "fmt.Fprintf", "fmt.Fprintln", "fmt.Fprint":
		if len(call.Args) > 0 && isResponseWriter(p.Info.TypeOf(call.Args[0])) {
			return "the HTTP response body (fmt.Fprint*)", 1
		}
	}
	return "", 0
}

func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// seamAllowLines collects, per file, the lines sanctioned by a
// wallclock or globalrand allow comment: the comment's own line and the
// line below it (the two positions an allow covers).
func seamAllowLines(p *Package) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 || (fields[0] != "wallclock" && fields[0] != "globalrand") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
				out[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return out
}
