package lint

// lockOrderAnalyzer lifts lockheld's per-receiver critical sections into
// a module-wide lock-acquisition graph: an edge A → B is recorded
// whenever lock class B (a named type's mutex field, or a package-level
// mutex) is acquired — directly or through any static call chain —
// while class A is held. Cycles in that graph, including the classic
// AB/BA pairwise inversion, are potential deadlocks: two goroutines
// entering the cycle from different points wedge forever, which is
// exactly how the PR 6 session-write deadlock presented. Direct
// recursive acquisition of one mutex expression is reported too (sync
// mutexes are not reentrant).
//
// Unlike lockheld, lockorder is not scoped to the engine-boundary
// packages: a deadlock shape is a defect wherever it appears — the PR 6
// wedge lived in internal/core/collect, outside lockheld's scope, and
// was only found by a chaos test. Edges between two instances of the
// same class are not recorded: ordering between values of one type is
// identity the static graph cannot see.
var lockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition cycle across the module call graph (lock-order inversion, recursive acquisition) — potential deadlock",
	Run:  runLockOrder,
}

func runLockOrder(a *Analysis, p *Package) []Finding {
	return filterCheck(a.globalFindings()[p.RelPath], "lockorder")
}
