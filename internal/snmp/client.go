package snmp

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Transport sends one encoded request and returns the encoded response.
type Transport func(req []byte) ([]byte, error)

// UDPTransport returns a Transport over UDP with the given per-request
// timeout. It is the live composition seam: deadlines come from the wall
// clock. Tests and simulations use UDPTransportClock with an injected
// clock instead.
func UDPTransport(addr string, timeout time.Duration) Transport {
	return UDPTransportClock(addr, timeout, time.Now) //mantralint:allow wallclock live UDP transport seam; every other caller injects a clock
}

// UDPTransportClock is UDPTransport with an injected clock: now anchors
// each request's I/O deadline, so deadline arithmetic is testable without
// real sockets timing out.
func UDPTransportClock(addr string, timeout time.Duration, now func() time.Time) Transport {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	return func(req []byte) ([]byte, error) {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		if err := conn.SetDeadline(now().Add(timeout)); err != nil {
			return nil, err
		}
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		buf := make([]byte, 64*1024)
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		return buf[:n], nil
	}
}

// AgentTransport returns an in-process Transport against an agent.
func AgentTransport(a *Agent) Transport {
	return func(req []byte) ([]byte, error) {
		resp := a.Handle(req)
		if resp == nil {
			return nil, errors.New("snmp: agent dropped request")
		}
		return resp, nil
	}
}

// Client issues SNMP queries through a Transport.
type Client struct {
	Community string
	Send      Transport
	nextID    int32
}

// NewClient returns a client.
func NewClient(community string, send Transport) *Client {
	return &Client{Community: community, Send: send}
}

func (c *Client) roundTrip(t PDUType, oid OID) (*Message, error) {
	c.nextID++
	req := &Message{
		Community: c.Community,
		Type:      t,
		RequestID: c.nextID,
		Bindings:  []VarBind{{OID: oid, Value: Value{Kind: KindNull}}},
	}
	enc, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	raw, err := c.Send(enc)
	if err != nil {
		return nil, err
	}
	resp, err := Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	if resp.RequestID != req.RequestID {
		return nil, fmt.Errorf("snmp: response ID %d for request %d", resp.RequestID, req.RequestID)
	}
	return resp, nil
}

// Get fetches one exact OID.
func (c *Client) Get(oid OID) (Value, error) {
	resp, err := c.roundTrip(Get, oid)
	if err != nil {
		return Value{}, err
	}
	if resp.ErrorStatus != 0 || len(resp.Bindings) == 0 {
		return Value{}, fmt.Errorf("snmp: no such object %s", oid)
	}
	return resp.Bindings[0].Value, nil
}

// Walk retrieves every binding under root via GetNext, in OID order —
// how mstat-era tools dumped router tables over SNMP.
func (c *Client) Walk(root OID) ([]VarBind, error) {
	var out []VarBind
	cur := root
	for i := 0; i < 1<<20; i++ {
		resp, err := c.roundTrip(GetNext, cur)
		if err != nil {
			return out, err
		}
		if resp.ErrorStatus == NoSuchName || len(resp.Bindings) == 0 {
			return out, nil
		}
		vb := resp.Bindings[0]
		if !vb.OID.HasPrefix(root) {
			return out, nil
		}
		if vb.OID.Compare(cur) <= 0 {
			return out, errors.New("snmp: agent did not advance (loop)")
		}
		out = append(out, vb)
		cur = vb.OID
	}
	return out, errors.New("snmp: walk exceeded limit")
}
