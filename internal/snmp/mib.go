package snmp

import (
	"time"

	"repro/internal/addr"
	"repro/internal/router"
)

// The MIB subtrees a 1998-era multicast router could serve. Arc choices
// follow the standards of the time:
//
//	system          1.3.6.1.2.1.1          (RFC 1907)
//	ipMRouteTable   1.3.6.1.2.1.83.1.1.2   (RFC 2932, IPMROUTE-STD-MIB)
//	igmpCacheTable  1.3.6.1.2.1.85.1.1     (RFC 2933, IGMP-STD-MIB)
//	dvmrpRouteTable 1.3.6.1.3.62.1.1.3     (experimental DVMRP MIB draft)
//
// Deliberately absent — the paper's point: no MSDP subtree existed at
// all, and PIM-SM state had no deployed MIB. BuildView therefore exposes
// routes, the forwarding cache and IGMP membership, and nothing of the
// MSDP SA cache or PIM (*,G) state that the CLI scrape captures.
var (
	OIDSystem     = MustOID("1.3.6.1.2.1.1")
	OIDSysDescr   = MustOID("1.3.6.1.2.1.1.1.0")
	OIDSysName    = MustOID("1.3.6.1.2.1.1.5.0")
	OIDIPMRoute   = MustOID("1.3.6.1.2.1.83.1.1.2.1")
	OIDIGMPCache  = MustOID("1.3.6.1.2.1.85.1.1.1")
	OIDDVMRPRoute = MustOID("1.3.6.1.3.62.1.1.3.1")
)

// ipMRouteEntry columns served.
const (
	colMRouteUpstream = 4 // IpAddress: RPF neighbor (unspecified at source)
	colMRouteUpTime   = 6 // TimeTicks
	colMRoutePkts     = 7 // Counter32
	colMRouteOctets   = 8 // Counter32
)

// dvmrpRouteEntry columns served.
const (
	colDVMRPUpstream = 3 // IpAddress ("local" encodes as 0.0.0.0)
	colDVMRPMetric   = 5 // Integer
	colDVMRPUpTime   = 6 // TimeTicks
)

// igmpCacheEntry columns served.
const (
	colIGMPReporter = 2 // IpAddress: last reporter
	colIGMPUpTime   = 3 // TimeTicks
)

func ipArcs(ip addr.IP) []uint32 {
	a, b, c, d := ip.Octets()
	return []uint32{uint32(a), uint32(b), uint32(c), uint32(d)}
}

func ipBytes(ip addr.IP) [4]byte {
	a, b, c, d := ip.Octets()
	return [4]byte{a, b, c, d}
}

func ticks(d time.Duration) Value {
	if d < 0 {
		d = 0
	}
	return TimeTicks(uint32(d / (10 * time.Millisecond)))
}

// BuildView snapshots a router's state into the MIB view its SNMP agent
// serves. The coverage boundary is the era's: DVMRP routes, the
// forwarding cache and IGMP membership are present; MSDP and PIM state
// are not representable.
func BuildView(r *router.Router, now time.Time) *View {
	var binds []VarBind

	binds = append(binds,
		VarBind{OID: OIDSysDescr, Value: OctetString([]byte("mantra simulated multicast router (" + r.Spec.Mode.String() + ")"))},
		VarBind{OID: OIDSysName, Value: OctetString([]byte(r.Spec.Name))},
	)

	// dvmrpRouteTable, indexed by source prefix + mask.
	if r.DVMRP != nil && r.DVMRP.HasRouter(r.Spec.ID) {
		for _, rt := range r.DVMRP.Table(r.Spec.ID) {
			idx := append(ipArcs(rt.Prefix.Addr), ipArcs(rt.Prefix.Mask())...)
			up := addr.Unspecified
			if rt.Via >= 0 {
				if n := r.Topo.Router(rt.Via); n != nil {
					up = n.Loopback
				}
			}
			binds = append(binds,
				VarBind{OID: OIDDVMRPRoute.Append(colDVMRPUpstream).Append(idx...), Value: IPAddressVal(ipBytes(up))},
				VarBind{OID: OIDDVMRPRoute.Append(colDVMRPMetric).Append(idx...), Value: Integer(int64(rt.Metric))},
				VarBind{OID: OIDDVMRPRoute.Append(colDVMRPUpTime).Append(idx...), Value: ticks(now.Sub(rt.Since))},
			)
		}
	}

	// ipMRouteTable, indexed by group + source + source mask (/32).
	hostMask := ipArcs(addr.IP(0xFFFFFFFF))
	for _, e := range r.FWD.Entries() {
		idx := append(ipArcs(e.Key.Group), ipArcs(e.Key.Source)...)
		idx = append(idx, hostMask...)
		up := addr.Unspecified
		if e.IIF >= 0 {
			if l := r.Topo.Link(e.IIF); l != nil {
				up = l.Other(r.Spec.ID).Addr
			}
		}
		binds = append(binds,
			VarBind{OID: OIDIPMRoute.Append(colMRouteUpstream).Append(idx...), Value: IPAddressVal(ipBytes(up))},
			VarBind{OID: OIDIPMRoute.Append(colMRouteUpTime).Append(idx...), Value: ticks(now.Sub(e.Created))},
			VarBind{OID: OIDIPMRoute.Append(colMRoutePkts).Append(idx...), Value: Counter32(uint32(e.Packets))},
			VarBind{OID: OIDIPMRoute.Append(colMRouteOctets).Append(idx...), Value: Counter32(uint32(e.Bytes))},
		)
	}

	// igmpCacheTable, indexed by group + reporter.
	for _, g := range r.IGMP.Groups() {
		for _, m := range r.IGMP.Members(g) {
			idx := append(ipArcs(g), ipArcs(m.Host)...)
			binds = append(binds,
				VarBind{OID: OIDIGMPCache.Append(colIGMPReporter).Append(idx...), Value: IPAddressVal(ipBytes(m.Host))},
				VarBind{OID: OIDIGMPCache.Append(colIGMPUpTime).Append(idx...), Value: ticks(now.Sub(m.Since))},
			)
		}
	}

	return NewView(binds)
}
