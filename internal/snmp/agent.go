package snmp

import (
	"net"
	"sync"
)

// View is a MIB instantiation: bindings sorted by OID, as walked by
// GetNext. Views are immutable snapshots; the agent swaps them whole.
type View struct {
	binds []VarBind
}

// NewView sorts and wraps bindings.
func NewView(binds []VarBind) *View {
	cp := append([]VarBind(nil), binds...)
	SortVarBinds(cp)
	return &View{binds: cp}
}

// Len returns the number of bindings.
func (v *View) Len() int { return len(v.binds) }

// get returns the exact binding, or false.
func (v *View) get(oid OID) (VarBind, bool) {
	for _, b := range v.binds {
		c := b.OID.Compare(oid)
		if c == 0 {
			return b, true
		}
		if c > 0 {
			break
		}
	}
	return VarBind{}, false
}

// next returns the first binding with OID strictly greater, or false.
func (v *View) next(oid OID) (VarBind, bool) {
	for _, b := range v.binds {
		if b.OID.Compare(oid) > 0 {
			return b, true
		}
	}
	return VarBind{}, false
}

// Agent answers SNMP queries against its current view.
type Agent struct {
	Community string

	mu   sync.RWMutex
	view *View
}

// NewAgent returns an agent with an empty view.
func NewAgent(community string) *Agent {
	return &Agent{Community: community, view: NewView(nil)}
}

// SetView atomically replaces the MIB view (called once per cycle with a
// fresh snapshot of router state).
func (a *Agent) SetView(v *View) {
	a.mu.Lock()
	a.view = v
	a.mu.Unlock()
}

// Handle processes one encoded request and returns the encoded response,
// or nil for undecodable input / community mismatch (agents stay silent,
// as real ones do).
func (a *Agent) Handle(req []byte) []byte {
	m, err := Unmarshal(req)
	if err != nil || m.Community != a.Community {
		return nil
	}
	if m.Type != Get && m.Type != GetNext {
		return nil
	}
	a.mu.RLock()
	view := a.view
	a.mu.RUnlock()

	resp := &Message{
		Community: a.Community,
		Type:      Response,
		RequestID: m.RequestID,
	}
	for i, vb := range m.Bindings {
		var got VarBind
		var ok bool
		if m.Type == Get {
			got, ok = view.get(vb.OID)
		} else {
			got, ok = view.next(vb.OID)
		}
		if !ok {
			resp.ErrorStatus = NoSuchName
			resp.ErrorIndex = int32(i + 1)
			resp.Bindings = append(resp.Bindings, VarBind{OID: vb.OID, Value: Value{Kind: KindNull}})
			continue
		}
		resp.Bindings = append(resp.Bindings, got)
	}
	out, err := resp.Marshal()
	if err != nil {
		return nil
	}
	return out
}

// ServeUDP answers queries on the connection until it is closed.
func (a *Agent) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		if resp := a.Handle(buf[:n]); resp != nil {
			if _, err := conn.WriteTo(resp, from); err != nil {
				return err
			}
		}
	}
}
