package snmp_test

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/topo"
	"repro/internal/workload"
)

// buildNetwork runs a post-transition network so FIXW holds every kind of
// state: DVMRP routes, forwarding cache, IGMP, PIM stars, MSDP SA cache.
func buildNetwork(t *testing.T) *netsim.Network {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-r1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.Step()
	}
	for _, d := range n.Topo.Domains() {
		if d.Name != "ucsb" {
			n.TransitionDomain(d.Name)
		}
	}
	for i := 0; i < 4; i++ {
		n.Step()
	}
	return n
}

func TestMIBViewMatchesRouterState(t *testing.T) {
	n := buildNetwork(t)
	r := n.Router("ucsb-r1")
	view := snmp.BuildView(r, n.Now())
	agent := snmp.NewAgent("public")
	agent.SetView(view)
	c := snmp.NewClient("public", snmp.AgentTransport(agent))

	// sysName.
	v, err := c.Get(snmp.OIDSysName)
	if err != nil || string(v.Str) != "ucsb-r1" {
		t.Errorf("sysName = %v, %v", v, err)
	}

	// The DVMRP route table walk returns 3 columns per route.
	routes, err := c.Walk(snmp.OIDDVMRPRoute)
	if err != nil {
		t.Fatal(err)
	}
	want := n.DVMRP.RouteCount(r.Spec.ID) * 3
	if len(routes) != want {
		t.Errorf("dvmrp walk = %d bindings, want %d", len(routes), want)
	}

	// The forwarding cache walk returns 4 columns per (S,G).
	mroutes, err := c.Walk(snmp.OIDIPMRoute)
	if err != nil {
		t.Fatal(err)
	}
	if len(mroutes) != r.FWD.Len()*4 {
		t.Errorf("mroute walk = %d bindings, want %d", len(mroutes), r.FWD.Len()*4)
	}
}

func TestSNMPCoverageGap(t *testing.T) {
	// The paper's reason for scraping CLIs: the era's MIBs cover DVMRP,
	// the forwarding cache and IGMP — but there is no MSDP subtree and
	// no PIM state, which FIXW (a border with an SA cache and PIM
	// neighbors) plainly has.
	n := buildNetwork(t)
	r := n.Router("fixw")
	if n.MSDP.CacheSize(r.Spec.ID) == 0 {
		t.Fatal("FIXW has no SA cache; scenario broken")
	}
	view := snmp.BuildView(r, n.Now())
	agent := snmp.NewAgent("public")
	agent.SetView(view)
	c := snmp.NewClient("public", snmp.AgentTransport(agent))

	// What SNMP can see.
	routes, _ := c.Walk(snmp.OIDDVMRPRoute)
	mroutes, _ := c.Walk(snmp.OIDIPMRoute)
	if len(routes) == 0 || len(mroutes) == 0 {
		t.Errorf("SNMP should cover DVMRP (%d) and mroutes (%d)", len(routes), len(mroutes))
	}

	// What it cannot: nothing anywhere in the tree mentions the MSDP SA
	// cache contents the CLI exposes.
	all, err := c.Walk(snmp.MustOID("1.3"))
	if err != nil {
		t.Fatal(err)
	}
	cli := r.Execute("show ip msdp sa-cache")
	if !strings.Contains(cli, "entries") || strings.Contains(cli, "- 0 entries") {
		t.Fatalf("CLI SA cache unexpectedly empty: %q", cli[:40])
	}
	saCount := n.MSDP.CacheSize(r.Spec.ID)
	// Count bindings that could plausibly encode SA entries: none exist,
	// because no MSDP subtree is served at all.
	for _, vb := range all {
		if vb.OID.HasPrefix(snmp.OIDIPMRoute) || vb.OID.HasPrefix(snmp.OIDDVMRPRoute) ||
			vb.OID.HasPrefix(snmp.OIDIGMPCache) || vb.OID.HasPrefix(snmp.OIDSystem) {
			continue
		}
		t.Errorf("unexpected subtree binding %s", vb.OID)
	}
	t.Logf("coverage gap confirmed: CLI sees %d SA entries, SNMP sees 0 (no MIB)", saCount)
}
