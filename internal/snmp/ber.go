// Package snmp implements the fragment of SNMPv2c the paper's era offered
// for multicast monitoring: BER-encoded GetRequest/GetNextRequest over
// UDP, an agent serving MIB views built from router state, and a walking
// client.
//
// The point of carrying this much realism is the paper's §II argument:
// SNMP covered the *old* multicast world — the DVMRP route table
// (draft DVMRP MIB), the multicast forwarding cache (RFC 2932
// ipMRouteTable) and IGMP (RFC 2933) — but had no MIB at all for MSDP
// and nothing deployed for PIM-SM state. The agent here reproduces that
// coverage boundary faithfully, so the SNMP collection ablation shows
// exactly what Mantra would have lost by relying on it.
package snmp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// BER/SNMP tags.
const (
	tagInteger   = 0x02
	tagOctetStr  = 0x04
	tagNull      = 0x05
	tagOID       = 0x06
	tagSequence  = 0x30
	tagIPAddress = 0x40
	tagCounter32 = 0x41
	tagGauge32   = 0x42
	tagTimeTicks = 0x43

	tagGetRequest     = 0xA0
	tagGetNextRequest = 0xA1
	tagGetResponse    = 0xA2
)

// ErrDecode reports malformed BER input.
var ErrDecode = errors.New("snmp: malformed BER")

// OID is an object identifier.
type OID []uint32

// ParseOID parses dotted notation ("1.3.6.1.2.1.1.1.0").
func ParseOID(s string) (OID, error) {
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	out := make(OID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID %q", s)
		}
		out = append(out, uint32(v))
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("snmp: OID %q too short", s)
	}
	return out, nil
}

// MustOID is ParseOID for constants; it panics on error.
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String renders dotted notation.
func (o OID) String() string {
	parts := make([]string, len(o))
	for i, v := range o {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return strings.Join(parts, ".")
}

// Compare orders OIDs lexicographically (the MIB tree walk order).
func (o OID) Compare(p OID) int {
	for i := 0; i < len(o) && i < len(p); i++ {
		if o[i] != p[i] {
			if o[i] < p[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(o) < len(p):
		return -1
	case len(o) > len(p):
		return 1
	}
	return 0
}

// HasPrefix reports whether o lies under prefix p.
func (o OID) HasPrefix(p OID) bool {
	if len(o) < len(p) {
		return false
	}
	return o[:len(p)].Compare(p) == 0
}

// Append returns o extended by the given arcs (a fresh slice).
func (o OID) Append(arcs ...uint32) OID {
	out := make(OID, 0, len(o)+len(arcs))
	out = append(out, o...)
	return append(out, arcs...)
}

// Value is one typed SNMP value.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  []byte
	OID  OID
}

// ValueKind discriminates Value contents.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInteger
	KindOctetString
	KindOID
	KindIPAddress
	KindCounter32
	KindGauge32
	KindTimeTicks
)

// Integer returns an INTEGER value.
func Integer(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// OctetString returns an OCTET STRING value.
func OctetString(b []byte) Value { return Value{Kind: KindOctetString, Str: b} }

// Counter32 returns a Counter32 value.
func Counter32(v uint32) Value { return Value{Kind: KindCounter32, Int: int64(v)} }

// Gauge32 returns a Gauge32 value.
func Gauge32(v uint32) Value { return Value{Kind: KindGauge32, Int: int64(v)} }

// TimeTicks returns a TimeTicks value (hundredths of a second).
func TimeTicks(v uint32) Value { return Value{Kind: KindTimeTicks, Int: int64(v)} }

// IPAddressVal returns an IpAddress value from 4 bytes.
func IPAddressVal(b [4]byte) Value { return Value{Kind: KindIPAddress, Str: b[:]} }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindInteger, KindCounter32, KindGauge32, KindTimeTicks:
		return strconv.FormatInt(v.Int, 10)
	case KindOctetString:
		return string(v.Str)
	case KindIPAddress:
		if len(v.Str) == 4 {
			return fmt.Sprintf("%d.%d.%d.%d", v.Str[0], v.Str[1], v.Str[2], v.Str[3])
		}
		return "?"
	case KindOID:
		return v.OID.String()
	}
	return "null"
}

// --- BER encoding ---------------------------------------------------------

func appendLen(b []byte, n int) []byte {
	if n < 0x80 {
		return append(b, byte(n))
	}
	if n <= 0xFF {
		return append(b, 0x81, byte(n))
	}
	return append(b, 0x82, byte(n>>8), byte(n))
}

func appendTLV(b []byte, tag byte, content []byte) []byte {
	b = append(b, tag)
	b = appendLen(b, len(content))
	return append(b, content...)
}

func appendInt(b []byte, tag byte, v int64) []byte {
	// Minimal two's-complement encoding.
	var content []byte
	switch {
	case v >= -0x80 && v < 0x80:
		content = []byte{byte(v)}
	case v >= -0x8000 && v < 0x8000:
		content = []byte{byte(v >> 8), byte(v)}
	case v >= -0x800000 && v < 0x800000:
		content = []byte{byte(v >> 16), byte(v >> 8), byte(v)}
	case v >= -0x80000000 && v < 0x80000000:
		content = []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	default:
		content = []byte{byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
	return appendTLV(b, tag, content)
}

func encodeOID(o OID) ([]byte, error) {
	if len(o) < 2 || o[0] > 2 || o[1] >= 40 {
		return nil, fmt.Errorf("snmp: unencodable OID %v", o)
	}
	out := []byte{byte(o[0]*40 + o[1])}
	for _, arc := range o[2:] {
		out = append(out, encodeBase128(arc)...)
	}
	return out, nil
}

func encodeBase128(v uint32) []byte {
	if v == 0 {
		return []byte{0}
	}
	var tmp [5]byte
	i := len(tmp)
	last := true
	for v > 0 {
		i--
		b := byte(v & 0x7F)
		if !last {
			b |= 0x80
		}
		tmp[i] = b
		last = false
		v >>= 7
	}
	return tmp[i:]
}

func encodeValue(v Value) ([]byte, error) {
	switch v.Kind {
	case KindNull:
		return []byte{tagNull, 0}, nil
	case KindInteger:
		return appendInt(nil, tagInteger, v.Int), nil
	case KindCounter32:
		return appendInt(nil, tagCounter32, v.Int), nil
	case KindGauge32:
		return appendInt(nil, tagGauge32, v.Int), nil
	case KindTimeTicks:
		return appendInt(nil, tagTimeTicks, v.Int), nil
	case KindOctetString:
		return appendTLV(nil, tagOctetStr, v.Str), nil
	case KindIPAddress:
		return appendTLV(nil, tagIPAddress, v.Str), nil
	case KindOID:
		enc, err := encodeOID(v.OID)
		if err != nil {
			return nil, err
		}
		return appendTLV(nil, tagOID, enc), nil
	}
	return nil, fmt.Errorf("snmp: unencodable value kind %d", v.Kind)
}

// --- BER decoding ---------------------------------------------------------

type reader struct {
	b   []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.b) }

func (r *reader) readTLV() (tag byte, content []byte, err error) {
	if r.pos+2 > len(r.b) {
		return 0, nil, ErrDecode
	}
	tag = r.b[r.pos]
	r.pos++
	l := int(r.b[r.pos])
	r.pos++
	if l >= 0x80 {
		n := l & 0x7F
		if n == 0 || n > 3 || r.pos+n > len(r.b) {
			return 0, nil, ErrDecode
		}
		l = 0
		for i := 0; i < n; i++ {
			l = l<<8 | int(r.b[r.pos])
			r.pos++
		}
	}
	if r.pos+l > len(r.b) {
		return 0, nil, ErrDecode
	}
	content = r.b[r.pos : r.pos+l]
	r.pos += l
	return tag, content, nil
}

func decodeInt(content []byte) (int64, error) {
	if len(content) == 0 || len(content) > 8 {
		return 0, ErrDecode
	}
	v := int64(0)
	if content[0]&0x80 != 0 {
		v = -1
	}
	for _, b := range content {
		v = v<<8 | int64(b)
	}
	return v, nil
}

func decodeOID(content []byte) (OID, error) {
	if len(content) == 0 {
		return nil, ErrDecode
	}
	out := OID{uint32(content[0]) / 40, uint32(content[0]) % 40}
	var cur uint32
	for _, b := range content[1:] {
		cur = cur<<7 | uint32(b&0x7F)
		if b&0x80 == 0 {
			out = append(out, cur)
			cur = 0
		}
	}
	return out, nil
}

func decodeValue(tag byte, content []byte) (Value, error) {
	switch tag {
	case tagNull:
		return Value{Kind: KindNull}, nil
	case tagInteger, tagCounter32, tagGauge32, tagTimeTicks:
		v, err := decodeInt(content)
		if err != nil {
			return Value{}, err
		}
		kind := map[byte]ValueKind{
			tagInteger: KindInteger, tagCounter32: KindCounter32,
			tagGauge32: KindGauge32, tagTimeTicks: KindTimeTicks,
		}[tag]
		return Value{Kind: kind, Int: v}, nil
	case tagOctetStr:
		return Value{Kind: KindOctetString, Str: append([]byte(nil), content...)}, nil
	case tagIPAddress:
		if len(content) != 4 {
			return Value{}, ErrDecode
		}
		return Value{Kind: KindIPAddress, Str: append([]byte(nil), content...)}, nil
	case tagOID:
		o, err := decodeOID(content)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindOID, OID: o}, nil
	}
	return Value{}, fmt.Errorf("snmp: unsupported value tag 0x%02x", tag)
}

// --- Messages -------------------------------------------------------------

// PDUType is the request/response kind.
type PDUType byte

// PDU types.
const (
	Get      PDUType = tagGetRequest
	GetNext  PDUType = tagGetNextRequest
	Response PDUType = tagGetResponse
)

// VarBind is one (OID, value) binding.
type VarBind struct {
	OID   OID
	Value Value
}

// Message is one SNMPv2c message.
type Message struct {
	Community string
	Type      PDUType
	RequestID int32
	// ErrorStatus 2 = noSuchName, used at end-of-MIB for GetNext.
	ErrorStatus int32
	ErrorIndex  int32
	Bindings    []VarBind
}

// NoSuchName is the error status the agent returns walking off the MIB.
const NoSuchName = 2

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	var binds []byte
	for _, vb := range m.Bindings {
		oidEnc, err := encodeOID(vb.OID)
		if err != nil {
			return nil, err
		}
		var one []byte
		one = appendTLV(one, tagOID, oidEnc)
		val, err := encodeValue(vb.Value)
		if err != nil {
			return nil, err
		}
		one = append(one, val...)
		binds = appendTLV(binds, tagSequence, one)
	}
	var pdu []byte
	pdu = appendInt(pdu, tagInteger, int64(m.RequestID))
	pdu = appendInt(pdu, tagInteger, int64(m.ErrorStatus))
	pdu = appendInt(pdu, tagInteger, int64(m.ErrorIndex))
	pdu = appendTLV(pdu, tagSequence, binds)

	var body []byte
	body = appendInt(body, tagInteger, 1) // version: SNMPv2c
	body = appendTLV(body, tagOctetStr, []byte(m.Community))
	body = appendTLV(body, byte(m.Type), pdu)
	return appendTLV(nil, tagSequence, body), nil
}

// Unmarshal decodes a message.
func Unmarshal(b []byte) (*Message, error) {
	r := &reader{b: b}
	tag, content, err := r.readTLV()
	if err != nil || tag != tagSequence {
		return nil, ErrDecode
	}
	r = &reader{b: content}
	// version
	tag, vc, err := r.readTLV()
	if err != nil || tag != tagInteger {
		return nil, ErrDecode
	}
	if v, _ := decodeInt(vc); v != 1 {
		return nil, fmt.Errorf("snmp: unsupported version %d", v)
	}
	// community
	tag, cc, err := r.readTLV()
	if err != nil || tag != tagOctetStr {
		return nil, ErrDecode
	}
	m := &Message{Community: string(cc)}
	// PDU
	tag, pc, err := r.readTLV()
	if err != nil {
		return nil, ErrDecode
	}
	switch tag {
	case tagGetRequest, tagGetNextRequest, tagGetResponse:
		m.Type = PDUType(tag)
	default:
		return nil, fmt.Errorf("snmp: unsupported PDU 0x%02x", tag)
	}
	pr := &reader{b: pc}
	for i, dst := range []*int32{&m.RequestID, &m.ErrorStatus, &m.ErrorIndex} {
		tag, ic, err := pr.readTLV()
		if err != nil || tag != tagInteger {
			return nil, ErrDecode
		}
		v, err := decodeInt(ic)
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
		_ = i
	}
	tag, bindsC, err := pr.readTLV()
	if err != nil || tag != tagSequence {
		return nil, ErrDecode
	}
	br := &reader{b: bindsC}
	for !br.done() {
		tag, one, err := br.readTLV()
		if err != nil || tag != tagSequence {
			return nil, ErrDecode
		}
		or := &reader{b: one}
		tag, oc, err := or.readTLV()
		if err != nil || tag != tagOID {
			return nil, ErrDecode
		}
		oid, err := decodeOID(oc)
		if err != nil {
			return nil, err
		}
		tag, vc, err := or.readTLV()
		if err != nil {
			return nil, ErrDecode
		}
		val, err := decodeValue(tag, vc)
		if err != nil {
			return nil, err
		}
		m.Bindings = append(m.Bindings, VarBind{OID: oid, Value: val})
	}
	return m, nil
}

// SortVarBinds orders bindings by OID (test helper and view builder).
func SortVarBinds(vbs []VarBind) {
	sort.Slice(vbs, func(i, j int) bool { return vbs[i].OID.Compare(vbs[j].OID) < 0 })
}
