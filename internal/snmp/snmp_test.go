package snmp

import (
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestOIDParseAndString(t *testing.T) {
	o := MustOID("1.3.6.1.2.1.1.1.0")
	if o.String() != "1.3.6.1.2.1.1.1.0" {
		t.Errorf("String = %q", o.String())
	}
	if _, err := ParseOID("1"); err == nil {
		t.Error("short OID accepted")
	}
	if _, err := ParseOID("1.x.3"); err == nil {
		t.Error("garbage OID accepted")
	}
}

func TestOIDCompareAndPrefix(t *testing.T) {
	a := MustOID("1.3.6.1")
	b := MustOID("1.3.6.1.2")
	c := MustOID("1.3.7")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("prefix ordering wrong")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("sibling ordering wrong")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) || c.HasPrefix(a) {
		t.Error("HasPrefix wrong")
	}
	d := a.Append(9, 9)
	if d.String() != "1.3.6.1.9.9" || len(a) != 4 {
		t.Error("Append mutated or wrong")
	}
}

func TestOIDEncodingRoundTrip(t *testing.T) {
	cases := []string{
		"1.3.6.1.2.1.1.1.0",
		"1.3.6.1.3.62.1.1.3.1.3.255.255.255.255.0.0.0.0",
		"0.39",
		"1.3.6.1.4.1.2021.128.300.70000",
	}
	for _, s := range cases {
		o := MustOID(s)
		enc, err := encodeOID(o)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		back, err := decodeOID(enc)
		if err != nil || back.Compare(o) != 0 {
			t.Errorf("%s round-trip -> %v (%v)", s, back, err)
		}
	}
	if _, err := encodeOID(OID{3, 1}); err == nil {
		t.Error("invalid first arc accepted")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Community: "public",
		Type:      GetNext,
		RequestID: 42,
		Bindings: []VarBind{
			{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: Value{Kind: KindNull}},
			{OID: MustOID("1.3.6.1.2.1.83.1.1.2.1.7.224.1.1.1.10.0.0.1.255.255.255.255"), Value: Counter32(1234)},
			{OID: MustOID("1.3.6.1.2.1.1.5.0"), Value: OctetString([]byte("fixw"))},
			{OID: MustOID("1.3.6.1.2.1.85.1.1.1.2.224.1.1.1.10.0.0.9"), Value: IPAddressVal([4]byte{10, 0, 0, 9})},
			{OID: MustOID("1.3.6.1.2.1.1.9.0"), Value: TimeTicks(360000)},
			{OID: MustOID("1.3.6.1.2.1.1.8.0"), Value: Integer(-5)},
		},
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, m)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0x30}, {0x30, 0x02, 0x01}, {0x99, 0x00}} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("garbage % x accepted", b)
		}
	}
}

func TestIntegerEncodingProperty(t *testing.T) {
	f := func(v int32) bool {
		enc := appendInt(nil, tagInteger, int64(v))
		r := &reader{b: enc}
		tag, content, err := r.readTLV()
		if err != nil || tag != tagInteger {
			return false
		}
		got, err := decodeInt(content)
		return err == nil && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testView() *View {
	return NewView([]VarBind{
		{OID: MustOID("1.3.6.1.2.1.1.5.0"), Value: OctetString([]byte("r1"))},
		{OID: MustOID("1.3.6.1.2.1.1.1.0"), Value: OctetString([]byte("desc"))},
		{OID: MustOID("1.3.6.1.3.62.1.1.3.1.5.10.0.0.0.255.0.0.0"), Value: Integer(3)},
	})
}

func TestAgentGetAndGetNext(t *testing.T) {
	a := NewAgent("public")
	a.SetView(testView())
	c := NewClient("public", AgentTransport(a))

	v, err := c.Get(MustOID("1.3.6.1.2.1.1.5.0"))
	if err != nil || string(v.Str) != "r1" {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := c.Get(MustOID("1.3.6.1.2.1.1.6.0")); err == nil {
		t.Error("missing OID returned a value")
	}
	// Walk the whole system subtree.
	vbs, err := c.Walk(MustOID("1.3.6.1.2.1.1"))
	if err != nil || len(vbs) != 2 {
		t.Errorf("Walk = %d bindings, %v", len(vbs), err)
	}
	// Walking a subtree with no content returns nothing.
	vbs, err = c.Walk(MustOID("1.3.6.1.2.1.84"))
	if err != nil || len(vbs) != 0 {
		t.Errorf("empty Walk = %d, %v", len(vbs), err)
	}
}

func TestAgentCommunityCheck(t *testing.T) {
	a := NewAgent("secret")
	a.SetView(testView())
	c := NewClient("wrong", AgentTransport(a))
	if _, err := c.Get(MustOID("1.3.6.1.2.1.1.5.0")); err == nil {
		t.Error("wrong community answered")
	}
}

func TestAgentOverUDP(t *testing.T) {
	a := NewAgent("public")
	a.SetView(testView())
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go a.ServeUDP(conn)

	c := NewClient("public", UDPTransport(conn.LocalAddr().String(), 0))
	vbs, err := c.Walk(MustOID("1.3.6.1"))
	if err != nil || len(vbs) != 3 {
		t.Errorf("UDP walk = %d bindings, %v", len(vbs), err)
	}
}

func TestViewSwap(t *testing.T) {
	a := NewAgent("public")
	a.SetView(testView())
	c := NewClient("public", AgentTransport(a))
	a.SetView(NewView([]VarBind{
		{OID: MustOID("1.3.6.1.2.1.1.5.0"), Value: OctetString([]byte("r2"))},
	}))
	v, err := c.Get(MustOID("1.3.6.1.2.1.1.5.0"))
	if err != nil || string(v.Str) != "r2" {
		t.Errorf("after swap: %v, %v", v, err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":       Integer(42),
		"hello":    OctetString([]byte("hello")),
		"10.0.0.1": IPAddressVal([4]byte{10, 0, 0, 1}),
		"null":     {Kind: KindNull},
		"1.3.6":    {Kind: KindOID, OID: MustOID("1.3.6")},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestUDPTransportClockInjectedDeadline(t *testing.T) {
	// Regression for the mantralint wallclock finding in UDPTransport: the
	// per-request I/O deadline is anchored on the injected clock. A clock
	// returning the present makes the round trip succeed; a clock stuck in
	// the deep past puts the deadline behind the wall clock and the same
	// request must fail immediately instead of waiting out a real timeout.
	a := NewAgent("public")
	a.SetView(testView())
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			if resp := a.Handle(buf[:n]); resp != nil {
				_, _ = pc.WriteTo(resp, from)
			}
		}
	}()

	calls := 0
	live := func() time.Time { calls++; return time.Now() }
	c := NewClient("public", UDPTransportClock(pc.LocalAddr().String(), 5*time.Second, live))
	v, err := c.Get(MustOID("1.3.6.1.2.1.1.5.0"))
	if err != nil || string(v.Str) != "r1" {
		t.Fatalf("Get over UDP = %v, %v", v, err)
	}
	if calls == 0 {
		t.Fatal("injected clock never consulted")
	}

	past := func() time.Time { return time.Unix(0, 0) }
	stale := NewClient("public", UDPTransportClock(pc.LocalAddr().String(), 5*time.Second, past))
	start := time.Now()
	if _, err := stale.Get(MustOID("1.3.6.1.2.1.1.5.0")); err == nil {
		t.Fatal("Get succeeded with a deadline in the past")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("past-clock request waited on the wall clock; deadline not taken from the injected clock")
	}
}
