// Package applayer implements the application-layer monitoring baseline
// the paper argues against (§II-C): an mlisten/rtpmon/sdr-monitor-style
// observer that sits at one campus as an ordinary host, learns sessions
// from SAP announcements, joins them, and counts the participants whose
// RTCP reports actually arrive.
//
// Its blind spots are exactly the paper's: sessions that are never
// announced are invisible; participants whose applications do not send
// RTCP are invisible; and when multicast connectivity from a participant
// to the vantage breaks, the participant silently disappears with no
// indication of whether the cause is the application or the network.
package applayer

import (
	"repro/internal/netsim"
	"repro/internal/sap"
	"repro/internal/topo"
	"repro/internal/workload"
)

// DefaultRTCPAdherence is the fraction of applications that implement
// RTCP feedback; the paper notes "not all the multicast applications
// adhere to the RTCP standard".
const DefaultRTCPAdherence = 0.8

// Monitor is an application-layer observer at one vantage domain.
type Monitor struct {
	// Vantage is the edge router whose subnet hosts the observer.
	Vantage topo.NodeID
	// RTCPAdherence in [0,1] is the fraction of hosts emitting RTCP.
	RTCPAdherence float64
	// SAP is the observer's announcement cache (the sdr cache): session
	// knowledge persists for the announcement lifetime even when an
	// announcement is missed, and survives briefly after a session ends.
	SAP *sap.Cache
}

// New returns an observer behind the given edge router.
func New(vantage topo.NodeID) *Monitor {
	return &Monitor{
		Vantage:       vantage,
		RTCPAdherence: DefaultRTCPAdherence,
		SAP:           sap.NewCache(0),
	}
}

// Snapshot is what the application layer sees in one cycle.
type Snapshot struct {
	// AnnouncedSessions is the SAP cache size after this observation —
	// every session the observer knows to exist.
	AnnouncedSessions int
	// Sessions with at least one heard participant.
	Sessions int
	// Participants heard via RTCP.
	Participants int
	// SilentlyMissing counts announced-session participants that exist
	// but are invisible here (no RTCP, or broken delivery) — the
	// undiagnosable loss the paper criticizes.
	SilentlyMissing int
}

// announced reports whether a session class is advertised via SAP:
// scheduled content (broadcasts, conferences) is; ad-hoc experimental
// sessions and unadvertised idle groups are not.
func announced(c workload.Class) bool {
	return c == workload.ClassBroadcast || c == workload.ClassConference
}

// adheresRTCP deterministically assigns RTCP support per host.
func (m *Monitor) adheresRTCP(host uint32) bool {
	if m.RTCPAdherence >= 1 {
		return true
	}
	if m.RTCPAdherence <= 0 {
		return false
	}
	h := host * 2654435761 // Knuth multiplicative hash
	return float64(h%1000) < m.RTCPAdherence*1000
}

// Observe computes one cycle's application-layer view of the network:
// SAP announcements that reach the vantage refresh the cache, the cache
// ages, and RTCP is counted for cached sessions only.
func (m *Monitor) Observe(n *netsim.Network) Snapshot {
	now := n.Now()
	var sn Snapshot
	live := make(map[uint32]*workload.Session)
	for _, s := range n.Workload.Sessions() {
		if !announced(s.Class) {
			continue
		}
		live[uint32(s.Group)] = s
		// The announcer is the session's first member; the announcement
		// arrives only if multicast delivery to the vantage works.
		members := s.MemberList()
		if len(members) == 0 {
			continue
		}
		origin := members[0]
		if n.MulticastPath(m.Vantage, origin.Edge) != nil {
			m.SAP.Hear(s.Group, origin.Host, s.Class.String(), now)
		}
	}
	m.SAP.Expire(now)
	sn.AnnouncedSessions = m.SAP.Len()

	// RTCP listening on cached sessions.
	for _, e := range m.SAP.Entries() {
		s := live[uint32(e.Group)]
		if s == nil {
			continue // stale cache entry: the session already ended
		}
		heard := 0
		for _, mem := range s.MemberList() {
			if !m.adheresRTCP(uint32(mem.Host)) {
				sn.SilentlyMissing++
				continue
			}
			if n.MulticastPath(m.Vantage, mem.Edge) == nil {
				sn.SilentlyMissing++
				continue
			}
			heard++
		}
		if heard > 0 {
			sn.Sessions++
			sn.Participants += heard
		}
	}
	return sn
}

// NetworkLayerView is the comparable count from router state: sessions
// and participants in the tracked router's forwarding table — what
// Mantra sees at the same instant (including unannounced sessions and
// RTCP-less participants).
func NetworkLayerView(n *netsim.Network, routerName string) (sessions, participants int) {
	r := n.Router(routerName)
	if r == nil {
		return 0, 0
	}
	groups := make(map[uint32]bool)
	hosts := make(map[uint32]bool)
	for _, e := range r.FWD.Entries() {
		groups[uint32(e.Key.Group)] = true
		hosts[uint32(e.Key.Source)] = true
	}
	return len(groups), len(hosts)
}
