package applayer_test

import (
	"testing"

	"repro/internal/applayer"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func buildNet(t *testing.T) *netsim.Network {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 6
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Step()
	}
	return n
}

func TestAppLayerSeesOnlyAnnouncedSessions(t *testing.T) {
	n := buildNet(t)
	vantage := n.Topo.RouterByName("ucsb-r1")
	m := applayer.New(vantage.ID)
	sn := m.Observe(n)

	announced := 0
	total := 0
	for _, s := range n.Workload.Sessions() {
		total++
		if s.Class == workload.ClassBroadcast || s.Class == workload.ClassConference {
			announced++
		}
	}
	if sn.AnnouncedSessions != announced {
		t.Errorf("announced = %d, want %d", sn.AnnouncedSessions, announced)
	}
	if sn.Sessions > sn.AnnouncedSessions {
		t.Error("heard more sessions than announced")
	}
	// The network layer sees every class, so its session count dominates.
	nlSessions, nlParticipants := applayer.NetworkLayerView(n, "fixw")
	if nlSessions <= sn.Sessions && total > announced {
		t.Errorf("network layer sessions %d should exceed app layer %d", nlSessions, sn.Sessions)
	}
	if nlParticipants <= sn.Participants {
		t.Errorf("network layer participants %d should exceed app layer %d", nlParticipants, sn.Participants)
	}
}

func TestRTCPAdherenceFiltersHosts(t *testing.T) {
	n := buildNet(t)
	vantage := n.Topo.RouterByName("ucsb-r1")

	full := applayer.New(vantage.ID)
	full.RTCPAdherence = 1.0
	all := full.Observe(n)

	none := applayer.New(vantage.ID)
	none.RTCPAdherence = 0
	zero := none.Observe(n)

	if zero.Participants != 0 || zero.Sessions != 0 {
		t.Errorf("zero adherence still heard %d participants", zero.Participants)
	}
	if zero.SilentlyMissing == 0 {
		t.Error("missing participants not counted")
	}
	partial := applayer.New(vantage.ID)
	got := partial.Observe(n)
	if got.Participants >= all.Participants && all.Participants > 5 {
		t.Errorf("80%% adherence (%d) should hear fewer than 100%% (%d)", got.Participants, all.Participants)
	}
}

func TestConnectivityLossIsSilent(t *testing.T) {
	// Post-transition with a vantage in the dense world: participants in
	// native domains become invisible when no border path exists — and
	// the app layer cannot tell why.
	n := buildNet(t)
	vantage := n.Topo.RouterByName("ucsb-r1")
	m := applayer.New(vantage.ID)
	m.RTCPAdherence = 1.0
	before := m.Observe(n)

	for _, d := range n.Topo.Domains() {
		if d.Name != "ucsb" {
			n.TransitionDomain(d.Name)
		}
	}
	// Sever the border: FIXW's native links go down, partitioning the
	// vantage from every native participant.
	for _, l := range n.Topo.LinksOf(n.Inet.FIXW.ID) {
		if n.Topo.NativeLinks()(l) {
			l.Up = false
		}
	}
	for i := 0; i < 4; i++ {
		n.Step()
	}
	after := m.Observe(n)
	if after.Participants >= before.Participants && before.Participants > 10 {
		t.Errorf("partition did not reduce heard participants: %d -> %d", before.Participants, after.Participants)
	}
	if after.SilentlyMissing == 0 {
		t.Error("partitioned participants should be silently missing")
	}
}
