package discover_test

import (
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/discover"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// crawlNetwork builds a network where every router is reachable by name.
func crawlNetwork(t *testing.T) (*netsim.Network, discover.DialerFor) {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 4
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	for i := 0; i < 3; i++ {
		n.Step()
	}
	dialers := func(name string) (collect.Dialer, bool) {
		r := n.Router(name)
		if r == nil {
			return nil, false
		}
		r.Password = "mantra"
		return collect.PipeDialer{Router: r}, true
	}
	return n, dialers
}

func TestCrawlFindsDVMRPCloud(t *testing.T) {
	n, dialers := crawlNetwork(t)
	m := discover.Crawl("fixw", dialers, discover.Config{Password: "mantra", Timeout: 5 * time.Second})

	// Every DVMRP router reachable from FIXW must be discovered.
	want := 0
	for _, r := range n.Topo.Routers() {
		if r.Mode == topo.ModeDVMRP || r.Mode == topo.ModeBorder {
			want++
		}
	}
	if len(m.Order) != want {
		t.Errorf("discovered %d routers, want %d (%v)", len(m.Order), want, m.Order)
	}
	for name, node := range m.Nodes {
		if node.Err != nil {
			t.Errorf("visit %s failed: %v", name, node.Err)
		}
	}
	// The link set is symmetric and non-empty.
	links := m.Links()
	if len(links) == 0 {
		t.Fatal("no links discovered")
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Errorf("unnormalized link %v", l)
		}
	}
	// UCSB routers hang off the ucsb gateway.
	if _, ok := m.Nodes["ucsb-r1"]; !ok {
		t.Error("crawl missed ucsb-r1")
	}
}

func TestCrawlRecordsUnreachable(t *testing.T) {
	_, dialers := crawlNetwork(t)
	// A dialer map that denies one known router.
	blocked := func(name string) (collect.Dialer, bool) {
		if name == "ucsb-r1" {
			return nil, false
		}
		return dialers(name)
	}
	m := discover.Crawl("fixw", blocked, discover.Config{Password: "mantra", Timeout: 2 * time.Second})
	node, ok := m.Nodes["ucsb-r1"]
	if !ok || node.Err == nil {
		t.Error("unreachable router not recorded with error")
	}
}

func TestCrawlRespectsMaxNodes(t *testing.T) {
	_, dialers := crawlNetwork(t)
	m := discover.Crawl("fixw", dialers, discover.Config{Password: "mantra", MaxNodes: 3, Timeout: 2 * time.Second})
	if len(m.Order) != 3 {
		t.Errorf("discovered %d, want cap 3", len(m.Order))
	}
}

func TestCrawlWrongPassword(t *testing.T) {
	_, dialers := crawlNetwork(t)
	m := discover.Crawl("fixw", dialers, discover.Config{Password: "bad", Timeout: 500 * time.Millisecond})
	if m.Nodes["fixw"].Err == nil {
		t.Error("bad password should record an error")
	}
}
