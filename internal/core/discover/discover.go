// Package discover implements topology discovery in the spirit of mwatch:
// starting from one known router, it recursively asks each discovered
// router for its DVMRP neighbors (the mrinfo query of the era) and crawls
// outward until the reachable multicast topology is mapped.
//
// Discovery is what let MBone operators find "all the multicast routers
// across all the multicast networks" without any registry; Mantra uses it
// to learn what there is to monitor.
package discover

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core/collect"
)

// Node is one discovered router.
type Node struct {
	// Name is the router's CLI name; Address its loopback.
	Name    string
	Address string
	// Neighbors lists the names of adjacent DVMRP routers.
	Neighbors []string
	// Err records a failed visit (unreachable, bad credentials).
	Err error
}

// Map is a discovered topology.
type Map struct {
	// Nodes by name, in discovery order.
	Order []string
	Nodes map[string]*Node
}

// Links returns the undirected adjacency pairs (a < b), sorted.
func (m *Map) Links() [][2]string {
	seen := make(map[[2]string]bool)
	for name, n := range m.Nodes {
		for _, nb := range n.Neighbors {
			a, b := name, nb
			if a > b {
				a, b = b, a
			}
			seen[[2]string{a, b}] = true
		}
	}
	out := make([][2]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DialerFor resolves a router name to a way of reaching its CLI. The
// crawler asks for a dialer for every neighbor name it learns.
type DialerFor func(name string) (collect.Dialer, bool)

// Config parameterizes a crawl.
type Config struct {
	// Password and Timeout apply to every visited router.
	Password string
	Timeout  time.Duration
	// MaxNodes bounds the crawl (0 = 1024).
	MaxNodes int
}

// Crawl discovers the DVMRP topology reachable from start.
func Crawl(start string, dialers DialerFor, cfg Config) *Map {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 1024
	}
	m := &Map{Nodes: make(map[string]*Node)}
	queue := []string{start}
	for len(queue) > 0 && len(m.Order) < cfg.MaxNodes {
		name := queue[0]
		queue = queue[1:]
		if _, seen := m.Nodes[name]; seen {
			continue
		}
		node := &Node{Name: name}
		m.Nodes[name] = node
		m.Order = append(m.Order, name)

		dialer, ok := dialers(name)
		if !ok {
			node.Err = fmt.Errorf("discover: no dialer for %q", name)
			continue
		}
		tgt := collect.Target{
			Name:     name,
			Dialer:   dialer,
			Password: cfg.Password,
			Prompt:   name + "> ",
			Timeout:  cfg.Timeout,
		}
		dumps, err := collect.CollectAll(tgt, []string{"show ip dvmrp neighbor"}, time.Time{})
		if err != nil {
			node.Err = err
			continue
		}
		addr, neighbors := parseNeighbors(dumps[0].Raw)
		node.Address = addr
		node.Neighbors = neighbors
		queue = append(queue, neighbors...)
	}
	return m
}

// parseNeighbors extracts neighbor names from a `show ip dvmrp neighbor`
// dump. The router's own address is not in the dump; returns "" for it.
func parseNeighbors(raw string) (self string, neighbors []string) {
	for _, line := range collect.Preprocess(raw) {
		if strings.HasPrefix(line, "DVMRP Neighbor Table") || strings.HasPrefix(line, "Address") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		neighbors = append(neighbors, f[1])
	}
	return "", neighbors
}
