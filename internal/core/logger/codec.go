// Binary payload codec for the write-ahead log. Records are encoded by
// hand with encoding/binary primitives rather than gob: the format is
// self-contained per record (a reader can start at any record boundary),
// deterministic, and cheap enough that append throughput is bounded by
// the disk, not the encoder. All integers are little-endian; variable
// integers use the uvarint/varint encodings of encoding/binary.
package logger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
)

// WAL record kinds.
const (
	// recDelta carries one cycle's delta record for one target.
	recDelta byte = 1
	// recGap marks one failed cycle for one target.
	recGap byte = 2
	// recMeta announces a target the first time it appears in the log.
	recMeta byte = 3
)

// walRecord is one decoded WAL record.
type walRecord struct {
	Seq    uint64
	Kind   byte
	Target string

	// Delta fields (recDelta).
	Rec         CycleRecord
	FullEntries uint64

	// Gap fields (recGap).
	At     time.Time
	Reason string

	// Meta fields (recMeta).
	FirstSeen time.Time
}

// ErrBadRecord reports a structurally invalid record payload — the CRC
// matched but the contents do not decode, which indicates an encoder bug
// or deliberate tampering rather than a torn write.
var ErrBadRecord = errors.New("logger: malformed wal record")

// --- encoding -------------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// appendTime encodes an absolute instant: a zero flag byte for the zero
// time, else unix seconds plus nanoseconds. Decoding restores UTC, which
// is what every producer in the pipeline stamps.
func appendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendVarint(b, t.Unix())
	return appendU32(b, uint32(t.Nanosecond()))
}

// boolByte is the codec's one-byte bool encoding. Routing the field
// read through a call keeps it visible to codecsym's field-flow
// extraction (a bare if-condition read emits no bytes by itself).
func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

//mantra:codec pair=walpair role=encode type=tables.PairEntry magic=segMagic shape=4691f57f4641d9b4
func appendPair(b []byte, e tables.PairEntry) []byte {
	b = appendU32(b, uint32(e.Source))
	b = appendU32(b, uint32(e.Group))
	b = appendString(b, e.Flags)
	b = appendU64(b, math.Float64bits(e.RateKbps))
	b = appendU64(b, e.Packets)
	b = appendVarint(b, int64(e.Uptime))
	return appendTime(b, e.Since)
}

//mantra:codec pair=walroute role=encode type=tables.RouteEntry magic=segMagic shape=2ae0e88bfd8eabb5
func appendRoute(b []byte, e tables.RouteEntry) []byte {
	b = appendU32(b, uint32(e.Prefix.Addr))
	b = append(b, byte(e.Prefix.Len))
	b = appendU32(b, uint32(e.Gateway))
	b = append(b, boolByte(e.Local))
	b = appendVarint(b, int64(e.Metric))
	b = appendVarint(b, int64(e.Uptime))
	return appendTime(b, e.Since)
}

// encodePayload renders a record's payload (everything inside the frame).
//
//mantra:hotpath budget=1
//mantra:codec pair=walrecord role=encode type=walRecord magic=segMagic shape=353c833e13fee140
func encodePayload(r walRecord) []byte {
	b := make([]byte, 0, 64)
	b = appendUvarint(b, r.Seq)
	b = append(b, r.Kind)
	b = appendString(b, r.Target)
	switch r.Kind {
	case recDelta:
		b = appendTime(b, r.Rec.At)
		b = appendUvarint(b, r.FullEntries)
		b = appendUvarint(b, uint64(r.Rec.SACache))
		b = appendUvarint(b, uint64(r.Rec.MBGPRoutes))
		b = appendUvarint(b, uint64(len(r.Rec.Pairs.Upserted)))
		for _, e := range r.Rec.Pairs.Upserted {
			b = appendPair(b, e)
		}
		b = appendUvarint(b, uint64(len(r.Rec.Pairs.Removed)))
		for _, k := range r.Rec.Pairs.Removed {
			b = appendU32(b, uint32(k.Source))
			b = appendU32(b, uint32(k.Group))
		}
		b = appendUvarint(b, uint64(len(r.Rec.Routes.Upserted)))
		for _, e := range r.Rec.Routes.Upserted {
			b = appendRoute(b, e)
		}
		b = appendUvarint(b, uint64(len(r.Rec.Routes.Removed)))
		for _, p := range r.Rec.Routes.Removed {
			b = appendU32(b, uint32(p.Addr))
			b = append(b, byte(p.Len))
		}
	case recGap:
		b = appendTime(b, r.At)
		b = appendString(b, r.Reason)
	case recMeta:
		b = appendTime(b, r.FirstSeen)
	}
	return b
}

// --- decoding -------------------------------------------------------------

// byteReader walks an immutable payload, latching the first error.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = ErrBadRecord
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *byteReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) time() time.Time {
	if r.byte() == 0 || r.err != nil {
		return time.Time{}
	}
	sec := r.varint()
	nsec := r.u32()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

// count validates a declared element count against the bytes remaining so
// a corrupted length cannot trigger a huge allocation; min is the smallest
// possible encoded size of one element.
func (r *byteReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min > 0 && n > uint64((len(r.b)-r.off)/min) {
		r.fail()
		return 0
	}
	return int(n)
}

//mantra:codec pair=walpair role=decode type=tables.PairEntry magic=segMagic
func (r *byteReader) pair() tables.PairEntry {
	var e tables.PairEntry
	e.Source = addr.IP(r.u32())
	e.Group = addr.IP(r.u32())
	e.Flags = r.str()
	e.RateKbps = math.Float64frombits(r.u64())
	e.Packets = r.u64()
	e.Uptime = time.Duration(r.varint())
	e.Since = r.time()
	return e
}

func (r *byteReader) prefix() addr.Prefix {
	a := addr.IP(r.u32())
	l := int(r.byte())
	if l > 32 {
		r.fail()
		return addr.Prefix{}
	}
	return addr.Prefix{Addr: a, Len: l}
}

//mantra:codec pair=walroute role=decode type=tables.RouteEntry magic=segMagic
func (r *byteReader) route() tables.RouteEntry {
	var e tables.RouteEntry
	e.Prefix = r.prefix()
	e.Gateway = addr.IP(r.u32())
	e.Local = r.byte() == 1
	e.Metric = int(r.varint())
	e.Uptime = time.Duration(r.varint())
	e.Since = r.time()
	return e
}

// decodePayload parses one record payload.
//
//mantra:codec pair=walrecord role=decode type=walRecord magic=segMagic
func decodePayload(b []byte) (walRecord, error) {
	r := &byteReader{b: b}
	var out walRecord
	out.Seq = r.uvarint()
	out.Kind = r.byte()
	out.Target = r.str()
	switch out.Kind {
	case recDelta:
		out.Rec.At = r.time()
		out.FullEntries = r.uvarint()
		out.Rec.SACache = int(r.uvarint())
		out.Rec.MBGPRoutes = int(r.uvarint())
		if n := r.count(2); n > 0 {
			out.Rec.Pairs.Upserted = make([]tables.PairEntry, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				out.Rec.Pairs.Upserted = append(out.Rec.Pairs.Upserted, r.pair())
			}
		}
		if n := r.count(8); n > 0 {
			out.Rec.Pairs.Removed = make([]pairKey, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				k := pairKey{Source: addr.IP(r.u32()), Group: addr.IP(r.u32())}
				out.Rec.Pairs.Removed = append(out.Rec.Pairs.Removed, k)
			}
		}
		if n := r.count(2); n > 0 {
			out.Rec.Routes.Upserted = make([]tables.RouteEntry, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				out.Rec.Routes.Upserted = append(out.Rec.Routes.Upserted, r.route())
			}
		}
		if n := r.count(5); n > 0 {
			out.Rec.Routes.Removed = make([]addr.Prefix, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				out.Rec.Routes.Removed = append(out.Rec.Routes.Removed, r.prefix())
			}
		}
	case recGap:
		out.At = r.time()
		out.Reason = r.str()
	case recMeta:
		out.FirstSeen = r.time()
	default:
		r.fail()
	}
	if r.err == nil && r.off != len(b) {
		r.err = fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(b)-r.off)
	}
	return out, r.err
}
