package logger

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

// genHistory evolves randomized ground truth and returns the per-cycle
// snapshots for one target, in cycle order.
func genHistory(rng *rand.Rand, target string, cycles int) []*tables.Snapshot {
	pairs := map[addr.IP]tables.PairEntry{}
	routes := map[addr.Prefix]tables.RouteEntry{}
	at := sim.Epoch
	var out []*tables.Snapshot
	for c := 0; c < cycles; c++ {
		for i := 0; i < 6; i++ {
			src := addr.V4(10, byte(rng.Intn(4)), byte(rng.Intn(4)), 1)
			switch rng.Intn(3) {
			case 0:
				pairs[src] = tables.PairEntry{
					Source: src, Group: addr.V4(224, 1, 1, byte(1+rng.Intn(3))),
					Flags: "DT", RateKbps: float64(rng.Intn(200)),
					Packets: uint64(rng.Intn(1e6)), Since: at,
				}
			case 1:
				delete(pairs, src)
			case 2:
				if e, ok := pairs[src]; ok {
					e.RateKbps++
					pairs[src] = e
				}
			}
			p := addr.PrefixFrom(addr.V4(byte(20+rng.Intn(6)), 0, 0, 0), 8)
			switch rng.Intn(3) {
			case 0:
				routes[p] = tables.RouteEntry{
					Prefix: p, Gateway: addr.V4(192, 0, 2, byte(rng.Intn(9))),
					Metric: 1 + rng.Intn(5), Since: at,
				}
			case 1:
				delete(routes, p)
			}
		}
		sn := &tables.Snapshot{Target: target, At: at}
		for _, e := range pairs {
			e.Uptime = at.Sub(e.Since)
			sn.Pairs = append(sn.Pairs, e)
		}
		for _, e := range routes {
			e.Uptime = at.Sub(e.Since)
			sn.Routes = append(sn.Routes, e)
		}
		sortPairs(sn.Pairs)
		sortRoutes(sn.Routes)
		out = append(out, sn)
		at = at.Add(30 * time.Minute)
	}
	return out
}

// appendAll logs each snapshot to both an in-memory logger and a store.
func appendAll(t *testing.T, s *Store, l *Logger, history []*tables.Snapshot) {
	t.Helper()
	for _, sn := range history {
		rec := l.Append(sn)
		if err := s.AppendDelta(sn.Target, rec, uint64(len(sn.Pairs)+len(sn.Routes))); err != nil {
			t.Fatalf("AppendDelta: %v", err)
		}
	}
}

// verifyEqual asserts the recovered logger reconstructs every cycle of
// every target identically to the reference logger.
func verifyEqual(t *testing.T, want, got *Logger) {
	t.Helper()
	for _, target := range want.Targets() {
		if w, g := want.Cycles(target), got.Cycles(target); w != g {
			t.Fatalf("%s: cycles = %d, want %d", target, g, w)
		}
		for i := 0; i < want.Cycles(target); i++ {
			wp, err1 := want.ReconstructPairs(target, i)
			gp, err2 := got.ReconstructPairs(target, i)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s cycle %d: reconstruct pairs: %v / %v", target, i, err1, err2)
			}
			if !reflect.DeepEqual(wp, gp) {
				t.Fatalf("%s cycle %d: pairs diverge:\nwant %v\ngot  %v", target, i, wp, gp)
			}
			wr, err1 := want.ReconstructRoutes(target, i)
			gr, err2 := got.ReconstructRoutes(target, i)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s cycle %d: reconstruct routes: %v / %v", target, i, err1, err2)
			}
			if !reflect.DeepEqual(wr, gr) {
				t.Fatalf("%s cycle %d: routes diverge:\nwant %v\ngot  %v", target, i, wr, gr)
			}
		}
		if !reflect.DeepEqual(want.Gaps(target), got.Gaps(target)) {
			t.Fatalf("%s: gaps diverge: want %v got %v", target, want.Gaps(target), got.Gaps(target))
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	l := New()
	h1 := genHistory(rng, "fixw", 10)
	h2 := genHistory(rng, "ucsb", 10)
	appendAll(t, s, l, h1)
	l.MarkGap("fixw", sim.Epoch.Add(6*time.Hour), "session dropped")
	if err := s.AppendGap("fixw", sim.Epoch.Add(6*time.Hour), "session dropped"); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, l, h2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra := s2.Recover()
	if ra.Stats.TornTail {
		t.Fatalf("clean log reported torn tail: %+v", ra.Stats)
	}
	if ra.Stats.RecordsReplayed != 23 { // 2 meta + 20 deltas + 1 gap
		t.Fatalf("RecordsReplayed = %d, want 23", ra.Stats.RecordsReplayed)
	}
	verifyEqual(t, l, ra.Logger)

	// Storage counters must survive too.
	wd, wf, _ := l.StorageStats("fixw")
	gd, gf, _ := ra.Logger.StorageStats("fixw")
	if wd != gd || wf != gf {
		t.Fatalf("storage stats = (%d,%d), want (%d,%d)", gd, gf, wd, wf)
	}

	// The replay events must carry snapshots matching the history.
	var deltaEvents int
	for _, ev := range ra.Events {
		if !ev.Gap {
			deltaEvents++
		}
	}
	if deltaEvents != 20 {
		t.Fatalf("delta events = %d, want 20", deltaEvents)
	}
}

// buildArchive writes a reference archive and returns the reference
// logger plus the single segment file path.
func buildArchive(t *testing.T, dir string, cycles int) (*Logger, string) {
	t.Helper()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	rng := rand.New(rand.NewSource(42))
	appendAll(t, s, l, genHistory(rng, "fixw", cycles))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	return l, segs[0]
}

// TestWALTruncationEveryOffset kills the archive at every byte offset of
// the segment and asserts recovery always comes back with an intact
// prefix — losing at most the record the cut landed in — and reports the
// damage.
func TestWALTruncationEveryOffset(t *testing.T) {
	refDir := t.TempDir()
	refLogger, seg := buildArchive(t, refDir, 6)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: offsets at which the file ends exactly between
	// records, computed by re-walking the clean segment.
	boundaries := map[int64]int{int64(len(segMagic)): 0} // offset -> records before it
	{
		off, n := len(segMagic), 0
		for off < len(data) {
			ln := int(u32at(data, off))
			off += frameHeader + ln
			n++
			boundaries[int64(off)] = n
		}
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		ra := s.Recover()
		s.Close()

		wantRecs, clean := boundaries[int64(cut)]
		if !clean {
			// Mid-record cut: every record wholly before the cut survives.
			wantRecs = 0
			for b, n := range boundaries {
				if b <= int64(cut) && n > wantRecs {
					wantRecs = n
				}
			}
			if !ra.Stats.TornTail && cut >= len(segMagic) {
				t.Fatalf("cut %d: torn tail not reported: %+v", cut, ra.Stats)
			}
		}
		if cut < len(segMagic) {
			wantRecs = 0 // header gone: the whole segment is unreadable
		}
		if ra.Stats.RecordsReplayed != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d (stats %+v)",
				cut, ra.Stats.RecordsReplayed, wantRecs, ra.Stats)
		}
		// Reconstructed cycles must match the reference prefix. The first
		// record is target metadata, so cycles = records - 1.
		gotCycles := ra.Logger.Cycles("fixw")
		if wantCycles := max(wantRecs-1, 0); gotCycles != wantCycles {
			t.Fatalf("cut %d: recovered %d cycles, want %d", cut, gotCycles, wantCycles)
		}
		for i := 0; i < gotCycles; i++ {
			want, _ := refLogger.ReconstructPairs("fixw", i)
			got, err := ra.Logger.ReconstructPairs("fixw", i)
			if err != nil || !reflect.DeepEqual(want, got) {
				t.Fatalf("cut %d cycle %d: pairs diverge (%v)", cut, i, err)
			}
		}
	}
}

// TestWALBitFlipEveryByte flips one bit in every byte of the segment and
// asserts recovery never panics, never errors, and always yields an
// intact prefix of the original history.
func TestWALBitFlipEveryByte(t *testing.T) {
	refDir := t.TempDir()
	refLogger, seg := buildArchive(t, refDir, 4)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	total := refLogger.Cycles("fixw")

	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1 << (pos % 8)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("flip %d: open: %v", pos, err)
		}
		ra := s.Recover()
		s.Close()
		got := ra.Logger.Cycles("fixw")
		if got > total {
			t.Fatalf("flip %d: recovered %d cycles from a %d-cycle archive", pos, got, total)
		}
		if got == total && ra.Stats.TornTail {
			// Full recovery with a reported defect is fine only if the
			// flip landed in already-ignored space; there is none, so a
			// full recovery must be clean... unless the flip was repaired
			// by truncating a trailing record, which full recovery excludes.
			t.Fatalf("flip %d: full recovery but torn tail reported", pos)
		}
		for i := 0; i < got; i++ {
			want, _ := refLogger.ReconstructPairs("fixw", i)
			rec, err := ra.Logger.ReconstructPairs("fixw", i)
			if err != nil || !reflect.DeepEqual(want, rec) {
				t.Fatalf("flip %d cycle %d: corrupted data recovered (%v)", pos, i, err)
			}
		}
	}
}

// TestWALCheckpointAndRotation drives segment rotation, checkpoints
// mid-stream, and verifies recovery stitches checkpoint + tail, prunes
// covered segments, and preserves the caller's extra payload.
func TestWALCheckpointAndRotation(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{SegmentBytes: 2048}
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	rng := rand.New(rand.NewSource(3))
	history := genHistory(rng, "fixw", 30)
	appendAll(t, s, l, history[:20])
	extra := []byte("processor-state-payload")
	if err := s.WriteCheckpoint(l, extra, history[19].At); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint prunes segments covered by the first.
	appendAll(t, s, l, history[20:25])
	if err := s.WriteCheckpoint(l, extra, history[24].At); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, l, history[25:])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) == 0 {
		t.Fatal("no segments left")
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if len(ckpts) != 2 {
		t.Fatalf("checkpoints on disk = %d, want 2", len(ckpts))
	}

	s2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra := s2.Recover()
	if !ra.Stats.CheckpointLoaded {
		t.Fatalf("checkpoint not loaded: %+v", ra.Stats)
	}
	if string(ra.Extra) != string(extra) {
		t.Fatalf("extra payload = %q", ra.Extra)
	}
	if ra.Stats.RecordsReplayed != 5 {
		t.Fatalf("RecordsReplayed = %d, want 5 (tail past second checkpoint)", ra.Stats.RecordsReplayed)
	}
	verifyEqual(t, l, ra.Logger)
}

// TestWALCheckpointCorruptFallsBack damages the newest checkpoint and
// verifies recovery falls back to the previous one and still rebuilds the
// complete state from the longer WAL tail.
func TestWALCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	rng := rand.New(rand.NewSource(9))
	history := genHistory(rng, "fixw", 12)
	appendAll(t, s, l, history[:4])
	if err := s.WriteCheckpoint(l, nil, history[3].At); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, l, history[4:8])
	if err := s.WriteCheckpoint(l, nil, history[7].At); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, l, history[8:])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ck"))
	if len(ckpts) != 2 {
		t.Fatalf("checkpoints = %v", ckpts)
	}
	// Fixed-width names sort by sequence; damage the newest.
	newest := ckpts[len(ckpts)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra := s2.Recover()
	if ra.Stats.CorruptCheckpoints != 1 || !ra.Stats.CheckpointLoaded {
		t.Fatalf("fallback not taken: %+v", ra.Stats)
	}
	verifyEqual(t, l, ra.Logger)
}

// TestWALResumeAppend recovers an archive and keeps appending to it, then
// recovers again — the restart-and-continue path.
func TestWALResumeAppend(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	history := genHistory(rng, "fixw", 16)

	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := New()
	appendAll(t, s, l, history[:8])
	s.Close()

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ra := s2.Recover()
	l2 := ra.Logger
	appendAll(t, s2, l2, history[8:])
	s2.Close()

	s3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	ra3 := s3.Recover()
	if ra3.Stats.TornTail {
		t.Fatalf("resumed log reported torn: %+v", ra3.Stats)
	}
	verifyEqual(t, l2, ra3.Logger)
	if got := ra3.Logger.Cycles("fixw"); got != 16 {
		t.Fatalf("cycles = %d, want 16", got)
	}
}

// TestWALGarbageAppended simulates a crash that left random garbage after
// the last record (a torn multi-block write).
func TestWALGarbageAppended(t *testing.T) {
	dir := t.TempDir()
	refLogger, seg := buildArchive(t, dir, 5)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ra := s.Recover()
	if !ra.Stats.TornTail || ra.Stats.TruncatedBytes != 7 {
		t.Fatalf("garbage tail not repaired: %+v", ra.Stats)
	}
	verifyEqual(t, refLogger, ra.Logger)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
