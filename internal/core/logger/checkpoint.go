// Checkpoints and restart recovery for the durable archive.
//
// A checkpoint is one atomic file (write-temp, fsync, rename) holding the
// gob-encoded full Logger state plus an opaque caller payload (the
// monitor stores its processor series, stability trackers and health
// ledger there), stamped with the WAL sequence number it covers. Recovery
// loads the newest valid checkpoint — falling back to an older one if the
// newest is damaged — and replays only the WAL records past it. Segments
// wholly covered by every retained checkpoint are pruned.
package logger

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core/tables"
)

// ckptPayload is the serialized checkpoint contents.
//
//mantra:codec pair=ckpt-payload magic=ckptMagic shape=ffce7c983bc79249
type ckptPayload struct {
	// Seq is the last WAL sequence number the checkpoint covers.
	Seq uint64
	// At is the checkpoint instant (cycle clock, not wall clock).
	At time.Time
	// State is the complete Logger state.
	State *State
	// Extra is an opaque caller payload restored verbatim on recovery.
	Extra []byte
}

// ReplayEvent is one WAL-tail record recovery hands back for re-ingestion
// by downstream consumers (series, stability, health).
type ReplayEvent struct {
	Target string
	At     time.Time
	// Snapshot is the full materialized table state as of this cycle —
	// what the original Ingest saw — nil for gap events. The MSDP/MBGP
	// tables are not delta-logged, so their magnitudes travel separately
	// in SACache and MBGPRoutes.
	Snapshot   *tables.Snapshot
	SACache    int
	MBGPRoutes int
	// Gap marks a failed cycle; Reason carries its recorded error.
	Gap    bool
	Reason string
}

// RecoveredArchive is the result of replaying checkpoint plus WAL tail.
type RecoveredArchive struct {
	// Logger holds the fully rebuilt delta log.
	Logger *Logger
	// Extra is the opaque payload of the loaded checkpoint, nil without one.
	Extra []byte
	// Events lists the WAL-tail records past the checkpoint, in log order.
	Events []ReplayEvent
	// CheckpointAt is the instant of the loaded checkpoint (zero without one).
	CheckpointAt time.Time
	Stats        RecoveryStats
}

// Recover rebuilds the archived state found by the open-time scan: the
// checkpoint's Logger plus every surviving WAL-tail record applied in log
// order. Each applied delta also yields a materialized snapshot so the
// caller can re-ingest the tail cycles into its own consumers. Recover
// may be called once per Open; the cached scan results are released.
func (s *Store) Recover() *RecoveredArchive {
	s.mu.Lock()
	defer s.mu.Unlock()
	ra := &RecoveredArchive{Stats: s.stats.Recovery}
	if s.ckpt != nil {
		ra.Logger = FromState(s.ckpt.State)
		ra.Extra = s.ckpt.Extra
		ra.CheckpointAt = s.ckpt.At
	} else {
		ra.Logger = New()
	}
	for _, r := range s.tail {
		switch r.Kind {
		case recDelta:
			ra.Logger.ApplyRecord(r.Target, r.Rec, r.FullEntries)
			sn, _ := ra.Logger.Materialized(r.Target)
			ra.Events = append(ra.Events, ReplayEvent{
				Target:     r.Target,
				At:         r.Rec.At,
				Snapshot:   sn,
				SACache:    r.Rec.SACache,
				MBGPRoutes: r.Rec.MBGPRoutes,
			})
		case recGap:
			ra.Logger.MarkGap(r.Target, r.At, r.Reason)
			ra.Events = append(ra.Events, ReplayEvent{Target: r.Target, At: r.At, Gap: true, Reason: r.Reason})
		case recMeta:
			// Target announced but no cycle survived; materialize it empty.
			ra.Logger.target(r.Target)
		}
	}
	s.ckpt = nil
	s.tail = nil
	return ra
}

// WriteCheckpoint atomically persists the full state of l plus the
// caller's opaque extra payload, covering every record appended so far.
// l must reflect exactly the records the store has seen — the monitor
// guarantees this by checkpointing between cycles. After a successful
// write, checkpoints beyond the retention count and segments covered by
// every retained checkpoint are pruned.
//
//mantra:sink serialization
func (s *Store) WriteCheckpoint(l *Logger, extra []byte, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Records covered by the checkpoint may be pruned, so they must be
	// durable first.
	if s.seg != nil {
		//mantralint:allow lockheld fsync under s.mu is the durability contract: the single-writer lock serializes append+sync so readers never see a segment ahead of stable storage
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("logger: checkpoint: sync wal: %w", err)
		}
	}
	pay := ckptPayload{Seq: s.seq, At: now, State: l.ExportState(), Extra: extra}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&pay); err != nil {
		return fmt.Errorf("logger: checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, len(ckptMagic)+frameHeader+body.Len())
	buf = append(buf, ckptMagic...)
	var hdr [frameHeader]byte
	putU32(hdr[0:], uint32(body.Len()))
	putU32(hdr[4:], crc32.Checksum(body.Bytes(), castagnoli))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body.Bytes()...)

	final := filepath.Join(s.dir, ckptName(pay.Seq))
	tmp := final + ".tmp"
	//mantralint:allow lockheld checkpoint durability: the tmp-file write+fsync must complete under s.mu so no append lands between the state export and the rename
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("logger: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("logger: checkpoint: %w", err)
	}
	syncDir(s.dir) //mantralint:allow lockheld directory fsync under s.mu: the checkpoint is not durable until its directory entry is
	s.stats.Checkpoints++
	s.stats.CheckpointSeq = pay.Seq
	s.stats.LastCheckpointAt = now
	s.prune()
	return nil
}

// prune removes checkpoints beyond the retention count and segments whose
// records are covered by every retained checkpoint; the caller holds s.mu.
func (s *Store) prune() {
	names, err := s.listFiles("ckpt-", ".ck")
	if err != nil {
		return
	}
	keep := s.opts.KeepCheckpoints
	if len(names) > keep {
		for _, name := range names[:len(names)-keep] {
			_ = os.Remove(filepath.Join(s.dir, name)) //mantralint:allow walerr retention pruning is best-effort; a surviving file is retried next prune and never corrupts state
		}
		names = names[len(names)-keep:]
	}
	if len(names) == 0 {
		return
	}
	// Segments are only safe to drop below the OLDEST retained checkpoint:
	// if the newest is damaged, recovery falls back and needs the tail
	// from the older one.
	var minSeq uint64
	fmt.Sscanf(names[0], "ckpt-%020d.ck", &minSeq)
	kept := s.segments[:0]
	for _, seg := range s.segments {
		if seg.last != 0 && seg.last <= minSeq {
			_ = os.Remove(filepath.Join(s.dir, seg.name)) //mantralint:allow walerr retention pruning is best-effort; a surviving segment is harmlessly re-scanned on restart
			continue
		}
		kept = append(kept, seg)
	}
	s.segments = kept
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	//mantralint:allow waltaint callers hand writeFileSync fully framed buffers (magic+length+CRC built in WriteCheckpoint); the checksum is computed one frame up
	if _, err := f.Write(data); err != nil {
		f.Close() //mantralint:allow walerr abandoning a failed write; the write error is already returned
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //mantralint:allow walerr abandoning a failed sync; the sync error is already returned
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames are durable; best effort on
// platforms where directories cannot be synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()  //mantralint:allow walerr documented best-effort: directory fsync is unsupported on some platforms
		_ = d.Close() //mantralint:allow walerr read-only directory handle; nothing to flush
	}
}

// loadCheckpoint reads and validates one checkpoint file.
func loadCheckpoint(path string) (*ckptPayload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+frameHeader || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("logger: checkpoint %s: bad magic", filepath.Base(path))
	}
	hdr := data[len(ckptMagic):]
	ln := u32at(hdr, 0)
	sum := u32at(hdr, 4)
	body := hdr[frameHeader:]
	if uint64(ln) != uint64(len(body)) {
		return nil, fmt.Errorf("logger: checkpoint %s: truncated", filepath.Base(path))
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("logger: checkpoint %s: checksum mismatch", filepath.Base(path))
	}
	var pay ckptPayload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&pay); err != nil {
		return nil, fmt.Errorf("logger: checkpoint %s: decode: %w", filepath.Base(path), err)
	}
	return &pay, nil
}

func u32at(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

// scan is the open-time pass: locate the newest valid checkpoint, walk
// every segment record by record, truncate a torn or corrupt tail at the
// last valid record, and cache what survives for Recover.
func (s *Store) scan() error {
	// Leftover temp files are aborted checkpoint writes.
	if tmps, err := s.listFiles("ckpt-", ".tmp"); err == nil {
		for _, name := range tmps {
			_ = os.Remove(filepath.Join(s.dir, name)) //mantralint:allow walerr leftover temp cleanup is best-effort; a survivor is ignored by recovery and retried next open
		}
	}

	// Newest valid checkpoint wins; damaged ones are counted and skipped.
	ckpts, err := s.listFiles("ckpt-", ".ck")
	if err != nil {
		return fmt.Errorf("logger: scan: %w", err)
	}
	var ckptSeq uint64
	for i := len(ckpts) - 1; i >= 0; i-- {
		pay, err := loadCheckpoint(filepath.Join(s.dir, ckpts[i]))
		if err != nil {
			s.stats.Recovery.CorruptCheckpoints++
			continue
		}
		s.ckpt = pay
		ckptSeq = pay.Seq
		s.stats.Recovery.CheckpointLoaded = true
		s.stats.Recovery.CheckpointSeq = pay.Seq
		s.stats.CheckpointSeq = pay.Seq
		s.stats.LastCheckpointAt = pay.At
		break
	}
	if s.ckpt != nil {
		for name := range s.ckpt.State.Targets {
			s.metaSeen[name] = true
		}
	}

	segs, err := s.listFiles("wal-", ".seg")
	if err != nil {
		return fmt.Errorf("logger: scan: %w", err)
	}
	var prev uint64
	dead := false // a corruption point drops everything after it
	var scanned []segmentInfo
	for _, name := range segs {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("logger: scan %s: %w", name, err)
		}
		if dead {
			s.stats.Recovery.TruncatedBytes += int64(len(data))
			_ = os.Remove(path) //mantralint:allow walerr dropping segments past a corruption point is best-effort; the truncated-byte count already records the loss
			continue
		}
		recs, valid, defect := scanSegment(data, &prev)
		for _, r := range recs {
			if r.Seq <= ckptSeq {
				s.stats.Recovery.RecordsSkipped++
				continue
			}
			s.tail = append(s.tail, r)
		}
		if defect != "" {
			dead = true
			s.stats.Recovery.TornTail = true
			s.stats.Recovery.TailError = fmt.Sprintf("%s: %s", name, defect)
			s.stats.Recovery.TruncatedBytes += int64(len(data)) - valid
			if valid < int64(len(segMagic)) {
				// Nothing usable, not even the header: drop the file.
				_ = os.Remove(path) //mantralint:allow walerr best-effort drop of an empty corrupt file; recovery stats already record the torn tail
				continue
			}
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("logger: repair %s: %w", name, err)
			}
		}
		scanned = append(scanned, segmentInfo{
			name:  name,
			first: firstSeqOf(recs, prev),
			last:  prev,
			size:  valid,
		})
	}

	// A hole between checkpoint and tail means the tail cannot be applied.
	if len(s.tail) > 0 && s.ckpt != nil && s.tail[0].Seq > ckptSeq+1 {
		s.stats.Recovery.TornTail = true
		s.stats.Recovery.TailError = fmt.Sprintf(
			"wal resumes at seq %d past checkpoint seq %d", s.tail[0].Seq, ckptSeq)
		s.stats.Recovery.RecordsSkipped += len(s.tail)
		s.tail = nil
	}
	s.stats.Recovery.RecordsReplayed = len(s.tail)
	for _, r := range s.tail {
		if r.Kind == recMeta || r.Kind == recDelta {
			s.metaSeen[r.Target] = true
		}
	}

	s.seq = prev
	if ckptSeq > s.seq {
		s.seq = ckptSeq
	}
	if len(scanned) > 0 {
		last := scanned[len(scanned)-1]
		s.segments = scanned[:len(scanned)-1]
		if err := s.resumeSegment(last); err != nil {
			return err
		}
	}
	return nil
}

func firstSeqOf(recs []walRecord, fallback uint64) uint64 {
	if len(recs) > 0 {
		return recs[0].Seq
	}
	return fallback
}

// scanSegment walks one segment's frames, returning the valid records,
// the byte offset up to which the file is intact, and a description of
// the first defect found ("" when the segment is clean).
func scanSegment(data []byte, prev *uint64) (recs []walRecord, valid int64, defect string) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, "bad segment magic"
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, int64(off), "torn frame header"
		}
		ln := u32at(data, off)
		sum := u32at(data, off+4)
		if ln == 0 || ln > maxRecordBytes {
			return recs, int64(off), "implausible record length"
		}
		if int64(off)+frameHeader+int64(ln) > int64(len(data)) {
			return recs, int64(off), "torn record payload"
		}
		payload := data[off+frameHeader : off+frameHeader+int(ln)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, int64(off), "checksum mismatch"
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, int64(off), "undecodable record"
		}
		if rec.Seq == 0 || (*prev != 0 && rec.Seq != *prev+1) {
			return recs, int64(off), "sequence discontinuity"
		}
		*prev = rec.Seq
		recs = append(recs, rec)
		off += frameHeader + int(ln)
	}
	return recs, int64(len(data)), ""
}
