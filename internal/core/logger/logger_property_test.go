package logger

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

// TestReconstructionPropertyRandomHistories verifies the logger's core
// invariant on randomized histories: for any sequence of snapshots,
// replaying deltas reproduces every cycle's tables exactly.
func TestReconstructionPropertyRandomHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		var history []*tables.Snapshot
		at := sim.Epoch

		// Evolving ground truth.
		pairs := map[addr.IP]tables.PairEntry{}
		routes := map[addr.Prefix]tables.RouteEntry{}

		for cycle := 0; cycle < 8; cycle++ {
			// Mutate: add/remove/change a few entries.
			for i := 0; i < 5; i++ {
				src := addr.V4(10, byte(rng.Intn(4)), byte(rng.Intn(4)), 1)
				switch rng.Intn(3) {
				case 0:
					pairs[src] = tables.PairEntry{
						Source: src, Group: addr.V4(224, 1, 1, 1),
						Flags: "D", RateKbps: float64(rng.Intn(100)),
						Since: at,
					}
				case 1:
					delete(pairs, src)
				case 2:
					if e, ok := pairs[src]; ok {
						e.RateKbps++
						pairs[src] = e
					}
				}
				p := addr.PrefixFrom(addr.V4(byte(20+rng.Intn(4)), 0, 0, 0), 8)
				switch rng.Intn(3) {
				case 0:
					routes[p] = tables.RouteEntry{Prefix: p, Metric: 1 + rng.Intn(5), Since: at}
				case 1:
					delete(routes, p)
				}
			}
			sn := &tables.Snapshot{Target: "t", At: at}
			for _, e := range pairs {
				e.Uptime = at.Sub(e.Since)
				sn.Pairs = append(sn.Pairs, e)
			}
			for _, e := range routes {
				e.Uptime = at.Sub(e.Since)
				sn.Routes = append(sn.Routes, e)
			}
			sortPairs(sn.Pairs)
			sortRoutes(sn.Routes)
			l.Append(sn)
			history = append(history, sn)
			at = at.Add(30 * time.Minute)
		}

		for i, want := range history {
			gotP, err := l.ReconstructPairs("t", i)
			if err != nil || !reflect.DeepEqual(gotP, want.Pairs) {
				if len(gotP) != 0 || len(want.Pairs) != 0 {
					return false
				}
			}
			gotR, err := l.ReconstructRoutes("t", i)
			if err != nil || !reflect.DeepEqual(gotR, want.Routes) {
				if len(gotR) != 0 || len(want.Routes) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWALRoundTripPropertyRandomHistories verifies the durability
// invariant on randomized multi-target histories with interleaved gap
// markers: for any sequence of snapshots and gaps pushed through the
// Store, a fresh open + Recover reconstructs every cycle's tables and
// every gap identically to the in-memory logger that produced them.
func TestWALRoundTripPropertyRandomHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		// Tiny segments so rotation happens constantly; randomize sync.
		s, err := OpenStore(dir, StoreOptions{
			SegmentBytes:    int64(256 + rng.Intn(2048)),
			SyncEveryAppend: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		l := New()
		targets := []string{"fixw", "ucsb", "dante"}
		histories := map[string][]*tables.Snapshot{}
		for _, tgt := range targets {
			histories[tgt] = genHistory(rng, tgt, 1+rng.Intn(8))
		}
		// Interleave appends across targets in random order, with gaps.
		type step struct {
			target string
			idx    int
		}
		var steps []step
		for tgt, h := range histories {
			for i := range h {
				steps = append(steps, step{tgt, i})
			}
		}
		sort.Slice(steps, func(i, j int) bool {
			if steps[i].idx != steps[j].idx {
				return steps[i].idx < steps[j].idx
			}
			return steps[i].target < steps[j].target
		})
		for _, st := range steps {
			sn := histories[st.target][st.idx]
			rec := l.Append(sn)
			if err := s.AppendDelta(sn.Target, rec, uint64(len(sn.Pairs)+len(sn.Routes))); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(4) == 0 {
				gt := targets[rng.Intn(len(targets))]
				l.MarkGap(gt, sn.At, "injected")
				if err := s.AppendGap(gt, sn.At, "injected"); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Occasionally checkpoint mid-stream so recovery exercises the
		// checkpoint + tail stitch too.
		if rng.Intn(2) == 0 {
			if err := s.WriteCheckpoint(l, nil, sim.Epoch); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		s2, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		ra := s2.Recover()
		if ra.Stats.TornTail {
			return false
		}
		for _, tgt := range targets {
			if l.Cycles(tgt) != ra.Logger.Cycles(tgt) {
				return false
			}
			for i := 0; i < l.Cycles(tgt); i++ {
				wp, err1 := l.ReconstructPairs(tgt, i)
				gp, err2 := ra.Logger.ReconstructPairs(tgt, i)
				if err1 != nil || err2 != nil || !reflect.DeepEqual(wp, gp) {
					return false
				}
				wr, err1 := l.ReconstructRoutes(tgt, i)
				gr, err2 := ra.Logger.ReconstructRoutes(tgt, i)
				if err1 != nil || err2 != nil || !reflect.DeepEqual(wr, gr) {
					return false
				}
			}
			if !reflect.DeepEqual(l.Gaps(tgt), ra.Logger.Gaps(tgt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
