package logger

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

// TestReconstructionPropertyRandomHistories verifies the logger's core
// invariant on randomized histories: for any sequence of snapshots,
// replaying deltas reproduces every cycle's tables exactly.
func TestReconstructionPropertyRandomHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		var history []*tables.Snapshot
		at := sim.Epoch

		// Evolving ground truth.
		pairs := map[addr.IP]tables.PairEntry{}
		routes := map[addr.Prefix]tables.RouteEntry{}

		for cycle := 0; cycle < 8; cycle++ {
			// Mutate: add/remove/change a few entries.
			for i := 0; i < 5; i++ {
				src := addr.V4(10, byte(rng.Intn(4)), byte(rng.Intn(4)), 1)
				switch rng.Intn(3) {
				case 0:
					pairs[src] = tables.PairEntry{
						Source: src, Group: addr.V4(224, 1, 1, 1),
						Flags: "D", RateKbps: float64(rng.Intn(100)),
						Since: at,
					}
				case 1:
					delete(pairs, src)
				case 2:
					if e, ok := pairs[src]; ok {
						e.RateKbps++
						pairs[src] = e
					}
				}
				p := addr.PrefixFrom(addr.V4(byte(20+rng.Intn(4)), 0, 0, 0), 8)
				switch rng.Intn(3) {
				case 0:
					routes[p] = tables.RouteEntry{Prefix: p, Metric: 1 + rng.Intn(5), Since: at}
				case 1:
					delete(routes, p)
				}
			}
			sn := &tables.Snapshot{Target: "t", At: at}
			for _, e := range pairs {
				e.Uptime = at.Sub(e.Since)
				sn.Pairs = append(sn.Pairs, e)
			}
			for _, e := range routes {
				e.Uptime = at.Sub(e.Since)
				sn.Routes = append(sn.Routes, e)
			}
			sortPairs(sn.Pairs)
			sortRoutes(sn.Routes)
			l.Append(sn)
			history = append(history, sn)
			at = at.Add(30 * time.Minute)
		}

		for i, want := range history {
			gotP, err := l.ReconstructPairs("t", i)
			if err != nil || !reflect.DeepEqual(gotP, want.Pairs) {
				if len(gotP) != 0 || len(want.Pairs) != 0 {
					return false
				}
			}
			gotR, err := l.ReconstructRoutes("t", i)
			if err != nil || !reflect.DeepEqual(gotR, want.Routes) {
				if len(gotR) != 0 || len(want.Routes) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
