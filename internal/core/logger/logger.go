// Package logger implements Mantra's Data Logger module: it persists each
// monitoring cycle for off-line and long-term trend analysis while
// conserving storage the way the paper describes —
//
//   - deltas only: instead of whole tables, only the entries that were
//     added, removed or changed since the previous cycle are stored
//     (very effective for the slowly-changing route table);
//   - no redundancy: the Participant and Session tables are derivable
//     from the Pair table, so they are never logged at all.
//
// Any cycle's full tables can be reconstructed by replaying deltas.
package logger

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
)

// pairKey identifies a pair-table entry.
type pairKey struct {
	Source addr.IP
	Group  addr.IP
}

// PairDelta is the pair-table change set of one cycle. Changed entries
// appear in Upserted with their new contents.
type PairDelta struct {
	Upserted []tables.PairEntry
	Removed  []pairKey
}

// RouteDelta is the route-table change set of one cycle.
type RouteDelta struct {
	Upserted []tables.RouteEntry
	Removed  []addr.Prefix
}

// CycleRecord is one logged monitoring cycle for one target.
type CycleRecord struct {
	At     time.Time
	Pairs  PairDelta
	Routes RouteDelta
}

// targetLog accumulates one collection point's history.
type targetLog struct {
	Records []CycleRecord
	// last* is the materialized latest state, used to compute deltas.
	lastPairs  map[pairKey]tables.PairEntry
	lastRoutes map[addr.Prefix]tables.RouteEntry
	// fullEntries counts what full-snapshot storage would have used.
	fullEntries  uint64
	deltaEntries uint64
}

// Logger stores delta-encoded history per collection point.
type Logger struct {
	targets map[string]*targetLog
}

// New returns an empty logger.
func New() *Logger {
	return &Logger{targets: make(map[string]*targetLog)}
}

// normPair strips the per-cycle aging field: the absolute Since instant
// carries the same information and is stable while the entry persists.
func normPair(e tables.PairEntry) tables.PairEntry {
	e.Uptime = 0
	return e
}

func normRoute(e tables.RouteEntry) tables.RouteEntry {
	e.Uptime = 0
	return e
}

// Append logs one cycle snapshot, computing deltas against the previous
// cycle of the same target.
func (l *Logger) Append(sn *tables.Snapshot) {
	tl := l.targets[sn.Target]
	if tl == nil {
		tl = &targetLog{
			lastPairs:  make(map[pairKey]tables.PairEntry),
			lastRoutes: make(map[addr.Prefix]tables.RouteEntry),
		}
		l.targets[sn.Target] = tl
	}
	rec := CycleRecord{At: sn.At}

	seenP := make(map[pairKey]bool, len(sn.Pairs))
	for _, e := range sn.Pairs {
		e = normPair(e)
		k := pairKey{Source: e.Source, Group: e.Group}
		seenP[k] = true
		if old, ok := tl.lastPairs[k]; !ok || old != e {
			rec.Pairs.Upserted = append(rec.Pairs.Upserted, e)
			tl.lastPairs[k] = e
		}
	}
	for k := range tl.lastPairs {
		if !seenP[k] {
			rec.Pairs.Removed = append(rec.Pairs.Removed, k)
			delete(tl.lastPairs, k)
		}
	}

	seenR := make(map[addr.Prefix]bool, len(sn.Routes))
	for _, e := range sn.Routes {
		e = normRoute(e)
		seenR[e.Prefix] = true
		if old, ok := tl.lastRoutes[e.Prefix]; !ok || old != e {
			rec.Routes.Upserted = append(rec.Routes.Upserted, e)
			tl.lastRoutes[e.Prefix] = e
		}
	}
	for p := range tl.lastRoutes {
		if !seenR[p] {
			rec.Routes.Removed = append(rec.Routes.Removed, p)
			delete(tl.lastRoutes, p)
		}
	}

	tl.Records = append(tl.Records, rec)
	tl.fullEntries += uint64(len(sn.Pairs) + len(sn.Routes))
	tl.deltaEntries += uint64(len(rec.Pairs.Upserted) + len(rec.Pairs.Removed) +
		len(rec.Routes.Upserted) + len(rec.Routes.Removed))
}

// Targets returns the known collection points.
func (l *Logger) Targets() []string {
	out := make([]string, 0, len(l.targets))
	for t := range l.targets {
		out = append(out, t)
	}
	return out
}

// Cycles returns how many cycles are logged for target.
func (l *Logger) Cycles(target string) int {
	tl := l.targets[target]
	if tl == nil {
		return 0
	}
	return len(tl.Records)
}

// At returns the timestamp of cycle idx for target.
func (l *Logger) At(target string, idx int) (time.Time, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return time.Time{}, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	return tl.Records[idx].At, nil
}

// ReconstructPairs replays deltas to materialize the pair table as it was
// at cycle idx (0-based).
func (l *Logger) ReconstructPairs(target string, idx int) (tables.PairTable, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return nil, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	state := make(map[pairKey]tables.PairEntry)
	for i := 0; i <= idx; i++ {
		for _, e := range tl.Records[i].Pairs.Upserted {
			state[pairKey{Source: e.Source, Group: e.Group}] = e
		}
		for _, k := range tl.Records[i].Pairs.Removed {
			delete(state, k)
		}
	}
	at := tl.Records[idx].At
	out := make(tables.PairTable, 0, len(state))
	for _, e := range state {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		out = append(out, e)
	}
	sortPairs(out)
	return out, nil
}

// ReconstructRoutes replays deltas to materialize the route table at
// cycle idx.
func (l *Logger) ReconstructRoutes(target string, idx int) (tables.RouteTable, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return nil, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	state := make(map[addr.Prefix]tables.RouteEntry)
	for i := 0; i <= idx; i++ {
		for _, e := range tl.Records[i].Routes.Upserted {
			state[e.Prefix] = e
		}
		for _, p := range tl.Records[i].Routes.Removed {
			delete(state, p)
		}
	}
	at := tl.Records[idx].At
	out := make(tables.RouteTable, 0, len(state))
	for _, e := range state {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		out = append(out, e)
	}
	sortRoutes(out)
	return out, nil
}

// Record returns the raw delta record of cycle idx.
func (l *Logger) Record(target string, idx int) (CycleRecord, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return CycleRecord{}, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	return tl.Records[idx], nil
}

// StorageStats reports entry counts stored as deltas versus what full
// snapshots would have stored, and the resulting compression ratio.
func (l *Logger) StorageStats(target string) (deltaEntries, fullEntries uint64, ratio float64) {
	tl := l.targets[target]
	if tl == nil {
		return 0, 0, 0
	}
	if tl.deltaEntries == 0 {
		return 0, tl.fullEntries, 0
	}
	return tl.deltaEntries, tl.fullEntries, float64(tl.fullEntries) / float64(tl.deltaEntries)
}

// archive is the serialized form.
type archive struct {
	Targets map[string][]CycleRecord
}

// Save writes the complete log to w (gob-encoded).
func (l *Logger) Save(w io.Writer) error {
	a := archive{Targets: make(map[string][]CycleRecord, len(l.targets))}
	for name, tl := range l.targets {
		a.Targets[name] = tl.Records
	}
	return gob.NewEncoder(w).Encode(a)
}

// Load reads a log written by Save and returns a logger positioned to
// continue appending.
func Load(r io.Reader) (*Logger, error) {
	var a archive
	if err := gob.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("logger: load: %w", err)
	}
	l := New()
	for name, recs := range a.Targets {
		tl := &targetLog{
			lastPairs:  make(map[pairKey]tables.PairEntry),
			lastRoutes: make(map[addr.Prefix]tables.RouteEntry),
			Records:    recs,
		}
		// Rebuild the latest materialized state and storage counters.
		for _, rec := range recs {
			for _, e := range rec.Pairs.Upserted {
				tl.lastPairs[pairKey{Source: e.Source, Group: e.Group}] = e
			}
			for _, k := range rec.Pairs.Removed {
				delete(tl.lastPairs, k)
			}
			for _, e := range rec.Routes.Upserted {
				tl.lastRoutes[e.Prefix] = e
			}
			for _, p := range rec.Routes.Removed {
				delete(tl.lastRoutes, p)
			}
			tl.deltaEntries += uint64(len(rec.Pairs.Upserted) + len(rec.Pairs.Removed) +
				len(rec.Routes.Upserted) + len(rec.Routes.Removed))
		}
		l.targets[name] = tl
	}
	return l, nil
}

func sortPairs(p tables.PairTable) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Group != p[j].Group {
			return p[i].Group < p[j].Group
		}
		return p[i].Source < p[j].Source
	})
}

func sortRoutes(r tables.RouteTable) {
	sort.Slice(r, func(i, j int) bool { return r[i].Prefix.Compare(r[j].Prefix) < 0 })
}
