// Package logger implements Mantra's Data Logger module: it persists each
// monitoring cycle for off-line and long-term trend analysis while
// conserving storage the way the paper describes —
//
//   - deltas only: instead of whole tables, only the entries that were
//     added, removed or changed since the previous cycle are stored
//     (very effective for the slowly-changing route table);
//   - no redundancy: the Participant and Session tables are derivable
//     from the Pair table, so they are never logged at all.
//
// Any cycle's full tables can be reconstructed by replaying deltas.
package logger

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
)

// pairKey identifies a pair-table entry.
//
//mantra:codec pair=ckpt-pairkey magic=ckptMagic shape=0d1f78c4141e06d8
type pairKey struct {
	Source addr.IP
	Group  addr.IP
}

// PairDelta is the pair-table change set of one cycle. Changed entries
// appear in Upserted with their new contents.
type PairDelta struct {
	Upserted []tables.PairEntry
	Removed  []pairKey
}

// RouteDelta is the route-table change set of one cycle.
type RouteDelta struct {
	Upserted []tables.RouteEntry
	Removed  []addr.Prefix
}

// CycleRecord is one logged monitoring cycle for one target.
//
//mantra:codec pair=ckpt-cyclerecord magic=ckptMagic shape=fb72130746e3a759
type CycleRecord struct {
	At     time.Time
	Pairs  PairDelta
	Routes RouteDelta
	// SACache and MBGPRoutes are the MSDP SA-cache and MBGP RIB sizes at
	// this cycle. The protocol tables themselves are not delta-logged —
	// the anomaly detectors consume only their magnitudes — so the record
	// carries the counts a recovery needs to replay detection exactly.
	SACache    int
	MBGPRoutes int
}

// GapMark records one failed collection cycle: no snapshot arrived at At,
// so the delta chain has an explicit hole there instead of a silent one.
//
//mantra:codec pair=ckpt-gapmark magic=ckptMagic shape=79b9c1d781df45e6
type GapMark struct {
	At     time.Time
	Reason string
}

// targetLog accumulates one collection point's history.
type targetLog struct {
	Records []CycleRecord
	// gaps lists the failed cycles interleaved with Records.
	gaps []GapMark
	// last* is the materialized latest state, used to compute deltas.
	lastPairs  map[pairKey]tables.PairEntry
	lastRoutes map[addr.Prefix]tables.RouteEntry
	// seen* are Append's per-cycle scratch sets, kept here and cleared
	// between cycles so the diff allocates no fresh maps at steady state.
	seenP map[pairKey]bool
	seenR map[addr.Prefix]bool
	// fullEntries counts what full-snapshot storage would have used.
	fullEntries  uint64
	deltaEntries uint64
}

// Logger stores delta-encoded history per collection point.
type Logger struct {
	targets map[string]*targetLog
}

// New returns an empty logger.
func New() *Logger {
	return &Logger{targets: make(map[string]*targetLog)}
}

// normPair strips the per-cycle aging field: the absolute Since instant
// carries the same information and is stable while the entry persists.
func normPair(e tables.PairEntry) tables.PairEntry {
	e.Uptime = 0
	return e
}

func normRoute(e tables.RouteEntry) tables.RouteEntry {
	e.Uptime = 0
	return e
}

func (l *Logger) target(name string) *targetLog {
	tl := l.targets[name]
	if tl == nil {
		tl = &targetLog{
			lastPairs:  make(map[pairKey]tables.PairEntry),
			lastRoutes: make(map[addr.Prefix]tables.RouteEntry),
		}
		l.targets[name] = tl
	}
	return tl
}

// Append logs one cycle snapshot, computing deltas against the previous
// cycle of the same target. It returns the delta record it stored, so a
// durable archive can persist exactly what the in-memory log holds.
//
// The budget covers the delta-set appends and sort closures — the
// record being built is returned, so its slices cannot be pooled; the
// per-cycle scratch maps are reused via targetLog.
//
//mantra:hotpath budget=7
func (l *Logger) Append(sn *tables.Snapshot) CycleRecord {
	tl := l.target(sn.Target)
	rec := CycleRecord{At: sn.At, SACache: len(sn.SAs), MBGPRoutes: len(sn.MBGP)}

	if tl.seenP == nil {
		tl.seenP = make(map[pairKey]bool, len(sn.Pairs))
		tl.seenR = make(map[addr.Prefix]bool, len(sn.Routes))
	} else {
		clear(tl.seenP)
		clear(tl.seenR)
	}
	seenP, seenR := tl.seenP, tl.seenR
	for _, e := range sn.Pairs {
		e = normPair(e)
		k := pairKey{Source: e.Source, Group: e.Group}
		seenP[k] = true
		if old, ok := tl.lastPairs[k]; !ok || old != e {
			rec.Pairs.Upserted = append(rec.Pairs.Upserted, e)
			tl.lastPairs[k] = e
		}
	}
	for k := range tl.lastPairs {
		if !seenP[k] {
			rec.Pairs.Removed = append(rec.Pairs.Removed, k)
			delete(tl.lastPairs, k)
		}
	}
	// The removal sets come off map iteration; sort them so the record —
	// and anything derived from it, like archive WAL frames — is
	// byte-deterministic for a given history.
	sort.Slice(rec.Pairs.Removed, func(i, j int) bool {
		a, b := rec.Pairs.Removed[i], rec.Pairs.Removed[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Source < b.Source
	})

	for _, e := range sn.Routes {
		e = normRoute(e)
		seenR[e.Prefix] = true
		if old, ok := tl.lastRoutes[e.Prefix]; !ok || old != e {
			rec.Routes.Upserted = append(rec.Routes.Upserted, e)
			tl.lastRoutes[e.Prefix] = e
		}
	}
	for p := range tl.lastRoutes {
		if !seenR[p] {
			rec.Routes.Removed = append(rec.Routes.Removed, p)
			delete(tl.lastRoutes, p)
		}
	}
	sort.Slice(rec.Routes.Removed, func(i, j int) bool {
		return rec.Routes.Removed[i].Compare(rec.Routes.Removed[j]) < 0
	})

	tl.Records = append(tl.Records, rec)
	tl.fullEntries += uint64(len(sn.Pairs) + len(sn.Routes))
	tl.deltaEntries += deltaSize(rec)
	return rec
}

func deltaSize(rec CycleRecord) uint64 {
	return uint64(len(rec.Pairs.Upserted) + len(rec.Pairs.Removed) +
		len(rec.Routes.Upserted) + len(rec.Routes.Removed))
}

// ApplyRecord appends a pre-computed delta record — the replay path of the
// durable archive. The record must have been produced by Append against
// the same history prefix; fullEntries is the full-snapshot entry count of
// the cycle that produced it, restoring the storage-stats baseline.
func (l *Logger) ApplyRecord(target string, rec CycleRecord, fullEntries uint64) {
	tl := l.target(target)
	for _, e := range rec.Pairs.Upserted {
		tl.lastPairs[pairKey{Source: e.Source, Group: e.Group}] = e
	}
	for _, k := range rec.Pairs.Removed {
		delete(tl.lastPairs, k)
	}
	for _, e := range rec.Routes.Upserted {
		tl.lastRoutes[e.Prefix] = e
	}
	for _, p := range rec.Routes.Removed {
		delete(tl.lastRoutes, p)
	}
	tl.Records = append(tl.Records, rec)
	tl.fullEntries += fullEntries
	tl.deltaEntries += deltaSize(rec)
}

// MarkGap records a failed collection cycle for target at time at.
func (l *Logger) MarkGap(target string, at time.Time, reason string) {
	tl := l.target(target)
	tl.gaps = append(tl.gaps, GapMark{At: at, Reason: reason})
}

// Gaps returns the failed cycles recorded for target, in order.
func (l *Logger) Gaps(target string) []GapMark {
	tl := l.targets[target]
	if tl == nil {
		return nil
	}
	return append([]GapMark(nil), tl.gaps...)
}

// Materialized returns the full tables as of the latest logged cycle of
// target — the state Append diffs against — or false before the first
// cycle. Uptimes are recomputed from the stable Since instants, exactly as
// ReconstructPairs/ReconstructRoutes do, so the result equals a
// reconstruction of the final cycle without replaying the chain.
func (l *Logger) Materialized(target string) (*tables.Snapshot, bool) {
	tl := l.targets[target]
	if tl == nil || len(tl.Records) == 0 {
		return nil, false
	}
	at := tl.Records[len(tl.Records)-1].At
	sn := &tables.Snapshot{Target: target, At: at}
	sn.Pairs = make(tables.PairTable, 0, len(tl.lastPairs))
	for _, e := range tl.lastPairs {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		//mantralint:allow sertaint sortPairs below orders the table before the snapshot leaves
		sn.Pairs = append(sn.Pairs, e)
	}
	sn.Routes = make(tables.RouteTable, 0, len(tl.lastRoutes))
	for _, e := range tl.lastRoutes {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		//mantralint:allow sertaint sortRoutes below orders the table before the snapshot leaves
		sn.Routes = append(sn.Routes, e)
	}
	sortPairs(sn.Pairs)
	sortRoutes(sn.Routes)
	return sn, true
}

// Targets returns the known collection points, sorted by name so callers
// that serialize per-target state (the checkpoint writer does) see a
// stable order.
func (l *Logger) Targets() []string {
	out := make([]string, 0, len(l.targets))
	for t := range l.targets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Cycles returns how many cycles are logged for target.
func (l *Logger) Cycles(target string) int {
	tl := l.targets[target]
	if tl == nil {
		return 0
	}
	return len(tl.Records)
}

// At returns the timestamp of cycle idx for target.
func (l *Logger) At(target string, idx int) (time.Time, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return time.Time{}, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	return tl.Records[idx].At, nil
}

// ReconstructPairs replays deltas to materialize the pair table as it was
// at cycle idx (0-based).
func (l *Logger) ReconstructPairs(target string, idx int) (tables.PairTable, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return nil, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	state := make(map[pairKey]tables.PairEntry)
	for i := 0; i <= idx; i++ {
		for _, e := range tl.Records[i].Pairs.Upserted {
			state[pairKey{Source: e.Source, Group: e.Group}] = e
		}
		for _, k := range tl.Records[i].Pairs.Removed {
			delete(state, k)
		}
	}
	at := tl.Records[idx].At
	out := make(tables.PairTable, 0, len(state))
	for _, e := range state {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		out = append(out, e)
	}
	sortPairs(out)
	return out, nil
}

// ReconstructRoutes replays deltas to materialize the route table at
// cycle idx.
func (l *Logger) ReconstructRoutes(target string, idx int) (tables.RouteTable, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return nil, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	state := make(map[addr.Prefix]tables.RouteEntry)
	for i := 0; i <= idx; i++ {
		for _, e := range tl.Records[i].Routes.Upserted {
			state[e.Prefix] = e
		}
		for _, p := range tl.Records[i].Routes.Removed {
			delete(state, p)
		}
	}
	at := tl.Records[idx].At
	out := make(tables.RouteTable, 0, len(state))
	for _, e := range state {
		if !e.Since.IsZero() {
			e.Uptime = at.Sub(e.Since)
		}
		out = append(out, e)
	}
	sortRoutes(out)
	return out, nil
}

// Record returns the raw delta record of cycle idx.
func (l *Logger) Record(target string, idx int) (CycleRecord, error) {
	tl := l.targets[target]
	if tl == nil || idx < 0 || idx >= len(tl.Records) {
		return CycleRecord{}, fmt.Errorf("logger: no cycle %d for %q", idx, target)
	}
	return tl.Records[idx], nil
}

// StorageStats reports entry counts stored as deltas versus what full
// snapshots would have stored, and the resulting compression ratio.
func (l *Logger) StorageStats(target string) (deltaEntries, fullEntries uint64, ratio float64) {
	tl := l.targets[target]
	if tl == nil {
		return 0, 0, 0
	}
	if tl.deltaEntries == 0 {
		return 0, tl.fullEntries, 0
	}
	return tl.deltaEntries, tl.fullEntries, float64(tl.fullEntries) / float64(tl.deltaEntries)
}

// TargetState is one target's serialized history.
//
//mantra:codec pair=ckpt-loggertarget magic=ckptMagic shape=6f4556766cbca7d4
type TargetState struct {
	Records []CycleRecord
	Gaps    []GapMark
	// FullEntries is the full-snapshot storage baseline counter.
	FullEntries uint64
}

// State is the complete serialized form of a Logger — the payload of the
// durable archive's checkpoints.
//
//mantra:codec pair=ckpt-loggerstate magic=ckptMagic shape=2ba9fae4a5734fd2
type State struct {
	Targets map[string]TargetState
}

// ExportState captures the logger's full state for checkpointing.
//
//mantra:statetransfer component=logger seam=export
func (l *Logger) ExportState() *State {
	st := &State{Targets: make(map[string]TargetState, len(l.targets))}
	for name, tl := range l.targets {
		st.Targets[name] = TargetState{
			Records:     tl.Records,
			Gaps:        tl.gaps,
			FullEntries: tl.fullEntries,
		}
	}
	return st
}

// FromState rebuilds a logger positioned to continue appending: the
// materialized per-target tables and storage counters are replayed from
// the recorded delta chain.
//
//mantra:statetransfer component=logger seam=import
func FromState(st *State) *Logger {
	l := New()
	if st == nil {
		return l
	}
	for name, ts := range st.Targets {
		tl := l.target(name)
		tl.gaps = ts.Gaps
		for _, rec := range ts.Records {
			l.ApplyRecord(name, rec, 0)
		}
		// ApplyRecord counted no full entries; restore the recorded baseline.
		tl.fullEntries = ts.FullEntries
	}
	return l
}

// ExportTarget captures one target's serialized history — the shard
// handoff transfer unit — or false if the logger has never seen it.
// Slices are copied: the export must stay stable while the exporting
// shard keeps appending.
//
//mantra:statetransfer component=logger seam=export
func (l *Logger) ExportTarget(name string) (TargetState, bool) {
	tl := l.targets[name]
	if tl == nil {
		return TargetState{}, false
	}
	return TargetState{
		Records:     append([]CycleRecord(nil), tl.Records...),
		Gaps:        append([]GapMark(nil), tl.gaps...),
		FullEntries: tl.fullEntries,
	}, true
}

// ImportTarget replaces one target's history with ts, leaving every
// other target untouched — the receiving side of a shard handoff. The
// materialized tables and storage counters are rebuilt by replaying the
// recorded delta chain, exactly as FromState does for a whole logger,
// so Append continues the chain seamlessly.
//
//mantra:statetransfer component=logger seam=import
func (l *Logger) ImportTarget(name string, ts TargetState) {
	delete(l.targets, name)
	tl := l.target(name)
	tl.gaps = append([]GapMark(nil), ts.Gaps...)
	for _, rec := range ts.Records {
		l.ApplyRecord(name, rec, 0)
	}
	tl.fullEntries = ts.FullEntries
}

// Save writes the complete log to w (gob-encoded).
//
//mantra:sink serialization
func (l *Logger) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(l.ExportState())
}

// Load reads a log written by Save and returns a logger positioned to
// continue appending.
func Load(r io.Reader) (*Logger, error) {
	var st State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("logger: load: %w", err)
	}
	return FromState(&st), nil
}

func sortPairs(p tables.PairTable) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Group != p[j].Group {
			return p[i].Group < p[j].Group
		}
		return p[i].Source < p[j].Source
	})
}

func sortRoutes(r tables.RouteTable) {
	sort.Slice(r, func(i, j int) bool { return r[i].Prefix.Compare(r[j].Prefix) < 0 })
}
