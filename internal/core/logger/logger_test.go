package logger

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

func pair(s, g string, rate float64) tables.PairEntry {
	return tables.PairEntry{Source: addr.MustParse(s), Group: addr.MustParse(g), RateKbps: rate, Flags: "D"}
}

func route(p string, metric int) tables.RouteEntry {
	return tables.RouteEntry{Prefix: addr.MustParsePrefix(p), Gateway: addr.MustParse("10.0.0.1"), Metric: metric}
}

func snap(at time.Time, pairs tables.PairTable, routes tables.RouteTable) *tables.Snapshot {
	return &tables.Snapshot{Target: "fixw", At: at, Pairs: pairs, Routes: routes}
}

func TestFirstCycleIsFullDelta(t *testing.T) {
	l := New()
	sn := snap(sim.Epoch,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)})
	l.Append(sn)
	rec, err := l.Record("fixw", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pairs.Upserted) != 1 || len(rec.Routes.Upserted) != 2 {
		t.Errorf("first record: %+v", rec)
	}
	if l.Cycles("fixw") != 1 || l.Cycles("nope") != 0 {
		t.Error("cycle counts wrong")
	}
}

func TestUnchangedCycleStoresNothing(t *testing.T) {
	l := New()
	pairs := tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5)}
	routes := tables.RouteTable{route("10.0.0.0/8", 1)}
	l.Append(snap(sim.Epoch, pairs, routes))
	l.Append(snap(sim.Epoch.Add(time.Hour), pairs, routes))
	rec, _ := l.Record("fixw", 1)
	if len(rec.Pairs.Upserted)+len(rec.Pairs.Removed)+len(rec.Routes.Upserted)+len(rec.Routes.Removed) != 0 {
		t.Errorf("second record not empty: %+v", rec)
	}
	d, f, ratio := l.StorageStats("fixw")
	if d != 2 || f != 4 {
		t.Errorf("storage = %d/%d", d, f)
	}
	if ratio != 2 {
		t.Errorf("ratio = %f", ratio)
	}
}

func TestDeltaCapturesChangesAndRemovals(t *testing.T) {
	l := New()
	l.Append(snap(sim.Epoch,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5), pair("2.2.2.2", "224.1.1.1", 1)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)}))
	// Cycle 2: pair 1 rate changes, pair 2 removed, route 11/8 removed,
	// route 12/8 added.
	l.Append(snap(sim.Epoch.Add(time.Hour),
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 9)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("12.0.0.0/8", 3)}))
	rec, _ := l.Record("fixw", 1)
	if len(rec.Pairs.Upserted) != 1 || rec.Pairs.Upserted[0].RateKbps != 9 {
		t.Errorf("pair upserts: %+v", rec.Pairs.Upserted)
	}
	if len(rec.Pairs.Removed) != 1 {
		t.Errorf("pair removals: %+v", rec.Pairs.Removed)
	}
	if len(rec.Routes.Upserted) != 1 || rec.Routes.Upserted[0].Prefix != addr.MustParsePrefix("12.0.0.0/8") {
		t.Errorf("route upserts: %+v", rec.Routes.Upserted)
	}
	if len(rec.Routes.Removed) != 1 || rec.Routes.Removed[0] != addr.MustParsePrefix("11.0.0.0/8") {
		t.Errorf("route removals: %+v", rec.Routes.Removed)
	}
}

func TestReconstructMatchesOriginal(t *testing.T) {
	l := New()
	snaps := []*tables.Snapshot{
		snap(sim.Epoch,
			tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5), pair("2.2.2.2", "224.1.1.2", 1)},
			tables.RouteTable{route("10.0.0.0/8", 1)}),
		snap(sim.Epoch.Add(time.Hour),
			tables.PairTable{pair("1.1.1.1", "224.1.1.1", 7)},
			tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 4)}),
		snap(sim.Epoch.Add(2*time.Hour),
			tables.PairTable{pair("3.3.3.3", "224.1.1.3", 2)},
			tables.RouteTable{route("11.0.0.0/8", 4)}),
	}
	for _, sn := range snaps {
		l.Append(sn)
	}
	for i, want := range snaps {
		gotP, err := l.ReconstructPairs("fixw", i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotP, want.Pairs) {
			t.Errorf("cycle %d pairs:\n got %+v\nwant %+v", i, gotP, want.Pairs)
		}
		gotR, err := l.ReconstructRoutes("fixw", i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotR, want.Routes) {
			t.Errorf("cycle %d routes:\n got %+v\nwant %+v", i, gotR, want.Routes)
		}
		at, err := l.At("fixw", i)
		if err != nil || !at.Equal(want.At) {
			t.Errorf("cycle %d time = %v err=%v", i, at, err)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	l := New()
	if _, err := l.ReconstructPairs("x", 0); err == nil {
		t.Error("unknown target accepted")
	}
	l.Append(snap(sim.Epoch, nil, nil))
	if _, err := l.ReconstructRoutes("fixw", 5); err == nil {
		t.Error("out-of-range cycle accepted")
	}
	if _, err := l.At("fixw", -1); err == nil {
		t.Error("negative cycle accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := New()
	l.Append(snap(sim.Epoch,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5)},
		tables.RouteTable{route("10.0.0.0/8", 1)}))
	l.Append(snap(sim.Epoch.Add(time.Hour),
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 6)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)}))

	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Cycles("fixw") != 2 {
		t.Fatalf("loaded cycles = %d", l2.Cycles("fixw"))
	}
	a, _ := l.ReconstructPairs("fixw", 1)
	b, _ := l2.ReconstructPairs("fixw", 1)
	if !reflect.DeepEqual(a, b) {
		t.Error("loaded reconstruction differs")
	}
	// Appending after load continues the delta chain correctly.
	l2.Append(snap(sim.Epoch.Add(2*time.Hour),
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 6)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)}))
	rec, _ := l2.Record("fixw", 2)
	if len(rec.Pairs.Upserted)+len(rec.Routes.Upserted) != 0 {
		t.Errorf("post-load delta not empty: %+v", rec)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTargetsListed(t *testing.T) {
	l := New()
	l.Append(snap(sim.Epoch, nil, nil))
	l.Append(&tables.Snapshot{Target: "ucsb", At: sim.Epoch})
	l.Append(&tables.Snapshot{Target: "aads", At: sim.Epoch})
	if got := l.Targets(); len(got) != 3 {
		t.Errorf("targets = %v", got)
	}
	// Targets feeds per-target checkpoint serialization, so the order must
	// be stable (sorted), not map order.
	got := l.Targets()
	if !sort.StringsAreSorted(got) {
		t.Errorf("targets not sorted: %v", got)
	}
	for i := 0; i < 20; i++ {
		if again := l.Targets(); !slicesEqual(again, got) {
			t.Fatalf("Targets order unstable: %v vs %v", again, got)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRouteDeltaEfficiencyOnStableTable(t *testing.T) {
	// The paper's claim: delta logging is very effective for the route
	// table. Simulate 50 cycles of a mostly-stable 500-route table.
	l := New()
	var routes tables.RouteTable
	for i := 0; i < 500; i++ {
		routes = append(routes, tables.RouteEntry{
			Prefix: addr.PrefixFrom(addr.IP(uint32(i)<<16), 16),
			Metric: 2,
		})
	}
	at := sim.Epoch
	for c := 0; c < 50; c++ {
		l.Append(snap(at, nil, routes))
		at = at.Add(time.Hour)
	}
	_, _, ratio := l.StorageStats("fixw")
	if ratio < 40 {
		t.Errorf("stable-table compression ratio = %.1f, want ~50", ratio)
	}
}
