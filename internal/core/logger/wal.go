// Durable archive: an append-only write-ahead log of delta records.
//
// The paper's Mantra owes its results to six months of continuously
// archived router-table deltas analysed offline; an in-memory delta log
// loses that archive on the first crash. The Store persists every record
// the Logger appends — snapshot deltas, gap markers, per-target metadata
// — into length-prefixed, CRC32C-checksummed frames across rotated
// segment files, with periodic full-state checkpoints (checkpoint.go)
// bounding recovery time. On open the Store scans the log, truncates any
// torn or corrupt tail it finds, and exposes the surviving records for
// replay; at most the final partial record is lost.
//
// On-disk frame, after the 8-byte segment magic:
//
//	[u32 payload length][u32 CRC32C of payload][payload]
//
// Payload encoding is in codec.go. Sequence numbers are global across
// segments and strictly increasing, which is what lets recovery stitch
// checkpoint and WAL tail together and detect any stitching error.
package logger

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	segMagic            = "MWAL0002"
	ckptMagic           = "MCKP0002"
	defaultSegmentBytes = 4 << 20
	// maxRecordBytes caps a frame's declared length so a corrupted length
	// field cannot trigger a giant allocation.
	maxRecordBytes = 64 << 20
	frameHeader    = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// StoreOptions configures the durable archive.
type StoreOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this size;
	// 0 means 4 MiB.
	SegmentBytes int64
	// SyncEveryAppend fsyncs after every record. Off, the log is synced on
	// rotation and checkpoint; a crash can then lose the records of the
	// final unsynced cycles but never corrupt earlier ones.
	SyncEveryAppend bool
	// KeepCheckpoints retains this many most-recent checkpoints (the older
	// ones are fallbacks if the newest is damaged); 0 means 2.
	KeepCheckpoints int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

// RecoveryStats reports what the open-time scan found and repaired.
type RecoveryStats struct {
	// CheckpointLoaded is true when a valid checkpoint seeded recovery.
	CheckpointLoaded bool `json:"checkpoint_loaded"`
	// CheckpointSeq is the WAL position the loaded checkpoint covers.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CorruptCheckpoints counts checkpoint files that failed validation.
	CorruptCheckpoints int `json:"corrupt_checkpoints,omitempty"`
	// RecordsReplayed is the WAL-tail records applied after the checkpoint.
	RecordsReplayed int `json:"records_replayed"`
	// RecordsSkipped is the WAL records already covered by the checkpoint.
	RecordsSkipped int `json:"records_skipped,omitempty"`
	// TornTail is true when a torn or corrupt tail was detected; the log
	// was truncated at the last valid record.
	TornTail bool `json:"torn_tail,omitempty"`
	// TruncatedBytes is how many bytes the repair discarded.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// TailError describes the defect that caused the truncation.
	TailError string `json:"tail_error,omitempty"`
}

// StoreStats is the operator-facing view of the archive.
type StoreStats struct {
	Dir      string `json:"dir"`
	Segments int    `json:"segments"`
	// LiveBytes is the total size of all segment files.
	LiveBytes int64 `json:"live_bytes"`
	// AppendedRecords / AppendedBytes count appends since open.
	AppendedRecords uint64 `json:"appended_records"`
	AppendedBytes   uint64 `json:"appended_bytes"`
	AppendErrors    uint64 `json:"append_errors,omitempty"`
	// LastSeq is the sequence number of the newest durable record.
	LastSeq uint64 `json:"last_seq"`
	// CheckpointSeq is the WAL position of the newest checkpoint.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Checkpoints counts checkpoints written since open.
	Checkpoints      int       `json:"checkpoints"`
	LastCheckpointAt time.Time `json:"last_checkpoint_at"`
	// Recovery is what the open-time scan found.
	Recovery RecoveryStats `json:"recovery"`
}

// segmentInfo tracks one closed or active segment file.
type segmentInfo struct {
	name  string
	first uint64 // first sequence number the segment may contain
	last  uint64 // last sequence number written (0 while unknown/empty)
	size  int64
}

// Store is the durable archive: WAL segments plus checkpoints in one
// directory. Safe for concurrent use; appends are serialized.
type Store struct {
	dir  string
	opts StoreOptions

	mu       sync.Mutex
	seg      *os.File // active segment, opened for append
	segInfo  *segmentInfo
	segments []segmentInfo // closed segments, oldest first
	seq      uint64        // last assigned sequence number
	stats    StoreStats
	metaSeen map[string]bool

	// recovery payload cached by the open-time scan until Recover.
	ckpt *ckptPayload
	tail []walRecord
}

// OpenStore opens (or creates) the archive in dir, scanning and repairing
// the log: the newest valid checkpoint is located, every segment is
// CRC-verified record by record, and a torn or corrupt tail is truncated
// at the last valid record. The surviving state is retrieved with
// Recover; appends continue from the repaired position.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logger: open store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, metaSeen: make(map[string]bool)}
	s.stats.Dir = dir
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// HasData reports whether the scan found any durable state to resume from.
func (s *Store) HasData() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt != nil || len(s.tail) > 0 || s.seq > 0
}

// Stats returns a snapshot of the archive's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segments)
	st.LiveBytes = 0
	for _, seg := range s.segments {
		st.LiveBytes += seg.size
	}
	if s.segInfo != nil {
		st.Segments++
		st.LiveBytes += s.segInfo.size
	}
	st.LastSeq = s.seq
	return st
}

// Close syncs and closes the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.seg.Sync() //mantralint:allow lockheld fsync under s.mu is the durability contract: the single-writer lock serializes append+sync so readers never see a segment ahead of stable storage
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	return s.seg.Sync() //mantralint:allow lockheld fsync under s.mu is the durability contract: the single-writer lock serializes append+sync so readers never see a segment ahead of stable storage
}

// AppendDelta persists one cycle's delta record for a target. The first
// record of a never-seen target is preceded by a metadata record
// announcing it. fullEntries is the full-snapshot entry count of the
// cycle, preserving the storage-compression baseline across restarts.
func (s *Store) AppendDelta(target string, rec CycleRecord, fullEntries uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.metaSeen[target] {
		//mantralint:allow lockheld append writes+fsyncs under s.mu by design: WAL ordering and the byte-identical-replay guarantee require the frame sequence to be decided under the lock
		if err := s.append(walRecord{Kind: recMeta, Target: target, FirstSeen: rec.At}); err != nil {
			return err
		}
		s.metaSeen[target] = true
	}
	//mantralint:allow lockheld append writes+fsyncs under s.mu by design: WAL ordering and the byte-identical-replay guarantee require the frame sequence to be decided under the lock
	return s.append(walRecord{Kind: recDelta, Target: target, Rec: rec, FullEntries: fullEntries})
}

// AppendGap persists a failed-cycle marker for a target.
func (s *Store) AppendGap(target string, at time.Time, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//mantralint:allow lockheld append writes+fsyncs under s.mu by design: WAL ordering and the byte-identical-replay guarantee require the frame sequence to be decided under the lock
	return s.append(walRecord{Kind: recGap, Target: target, At: at, Reason: reason})
}

// append frames and writes one record; the caller holds s.mu.
//
// The budget covers the two error-path fmt.Errorf wraps; the frame
// buffer itself is the one deliberate per-record allocation.
//
//mantra:hotpath budget=2
//mantra:sink serialization
func (s *Store) append(rec walRecord) error {
	if s.seg == nil {
		if err := s.openSegment(s.seq + 1); err != nil {
			s.stats.AppendErrors++
			return err
		}
	}
	rec.Seq = s.seq + 1
	payload := encodePayload(rec)
	frame := make([]byte, frameHeader+len(payload))
	putU32(frame[0:], uint32(len(payload)))
	putU32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)

	if _, err := s.seg.Write(frame); err != nil {
		// Best effort: cut the file back to the last whole record so a
		// half-written frame does not poison the log.
		_ = s.seg.Truncate(s.segInfo.size) //mantralint:allow walerr best-effort repair on a path already returning the append error; scan truncates torn tails anyway
		s.stats.AppendErrors++
		return fmt.Errorf("logger: wal append: %w", err)
	}
	s.seq = rec.Seq
	s.segInfo.size += int64(len(frame))
	s.segInfo.last = rec.Seq
	s.stats.AppendedRecords++
	s.stats.AppendedBytes += uint64(len(frame))
	if s.opts.SyncEveryAppend {
		if err := s.seg.Sync(); err != nil {
			s.stats.AppendErrors++
			return fmt.Errorf("logger: wal sync: %w", err)
		}
	}
	if s.segInfo.size >= s.opts.SegmentBytes {
		return s.rotate()
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

//mantra:hotpath budget=1
func segmentName(first uint64) string { return fmt.Sprintf("wal-%020d.seg", first) }
func ckptName(seq uint64) string      { return fmt.Sprintf("ckpt-%020d.ck", seq) }

// openSegment creates a fresh segment whose first record will carry seq
// first; the caller holds s.mu.
//
//mantra:hotpath budget=3
func (s *Store) openSegment(first uint64) error {
	path := filepath.Join(s.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("logger: new segment: %w", err)
	}
	//mantralint:allow waltaint the segment magic is the file header that framing is anchored to; it is fixed bytes, not archive payload
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close() //mantralint:allow walerr abandoning a segment whose header write failed; that error is already returned
		return fmt.Errorf("logger: new segment: %w", err)
	}
	s.seg = f
	s.segInfo = &segmentInfo{name: segmentName(first), first: first, size: int64(len(segMagic))}
	return nil
}

// rotate closes the active segment (synced, so rotation is a durability
// point) and retires it to the closed list; the caller holds s.mu.
//
//mantra:hotpath budget=1
func (s *Store) rotate() error {
	if s.seg == nil {
		return nil
	}
	err := s.seg.Sync()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.segments = append(s.segments, *s.segInfo)
	s.seg = nil
	s.segInfo = nil
	if err != nil {
		return fmt.Errorf("logger: rotate: %w", err)
	}
	return nil
}

// resumeSegment reopens the newest scanned segment for appending; the
// caller holds s.mu and has already repaired the file.
func (s *Store) resumeSegment(info segmentInfo) error {
	f, err := os.OpenFile(filepath.Join(s.dir, info.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("logger: resume segment: %w", err)
	}
	s.seg = f
	cp := info
	s.segInfo = &cp
	return nil
}

// listFiles returns dir entries with a prefix/suffix, sorted by name
// (which is sorted by sequence thanks to fixed-width naming).
func (s *Store) listFiles(prefix, suffix string) ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}
