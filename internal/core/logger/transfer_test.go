package logger

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core/tables"
	"repro/internal/sim"
)

func snapFor(target string, at time.Time, pairs tables.PairTable, routes tables.RouteTable) *tables.Snapshot {
	return &tables.Snapshot{Target: target, At: at, Pairs: pairs, Routes: routes}
}

func TestLoggerExportImportTarget(t *testing.T) {
	// Shard handoff: one target's delta chain moves to a survivor's
	// logger, which must continue the chain exactly where the dead
	// shard left it — same materialized tables, same next delta.
	src := New()
	at := sim.Epoch
	src.Append(snapFor("fixw", at,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 5)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)}))
	src.Append(snapFor("ucsb", at, nil, tables.RouteTable{route("20.0.0.0/8", 1)}))
	at = at.Add(time.Hour)
	src.MarkGap("fixw", at, "dial timeout")
	at = at.Add(time.Hour)
	src.Append(snapFor("fixw", at,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 9), pair("2.2.2.2", "224.1.1.2", 3)},
		tables.RouteTable{route("10.0.0.0/8", 1)}))

	ts, ok := src.ExportTarget("fixw")
	if !ok {
		t.Fatal("ExportTarget failed for a known target")
	}
	if _, ok := src.ExportTarget("ghost"); ok {
		t.Fatal("ExportTarget succeeded for an unknown target")
	}

	dst := New()
	dst.Append(snapFor("dom00-gw", sim.Epoch, nil, tables.RouteTable{route("30.0.0.0/8", 3)}))
	dst.ImportTarget("fixw", ts)

	wantSn, _ := src.Materialized("fixw")
	gotSn, ok := dst.Materialized("fixw")
	if !ok || !reflect.DeepEqual(wantSn, gotSn) {
		t.Fatalf("materialized state diverged:\nwant %+v\ngot  %+v", wantSn, gotSn)
	}
	if !reflect.DeepEqual(src.Gaps("fixw"), dst.Gaps("fixw")) {
		t.Error("gap marks did not transfer")
	}
	if dst.Cycles("fixw") != src.Cycles("fixw") {
		t.Errorf("cycles = %d, want %d", dst.Cycles("fixw"), src.Cycles("fixw"))
	}
	de, fe, _ := src.StorageStats("fixw")
	de2, fe2, _ := dst.StorageStats("fixw")
	if de != de2 || fe != fe2 {
		t.Errorf("storage stats diverged: %d/%d vs %d/%d", de, fe, de2, fe2)
	}

	// The next cycle's delta must be identical on both sides: the import
	// rebuilt the materialized diff base, not just the record list.
	at = at.Add(time.Hour)
	next := snapFor("fixw", at,
		tables.PairTable{pair("1.1.1.1", "224.1.1.1", 9)},
		tables.RouteTable{route("10.0.0.0/8", 1), route("12.0.0.0/8", 4)})
	recSrc := src.Append(next)
	recDst := dst.Append(next)
	if !reflect.DeepEqual(recSrc, recDst) {
		t.Fatalf("post-handoff delta diverged:\nsrc %+v\ndst %+v", recSrc, recDst)
	}

	// The export is a copy: mutating the source afterwards must not
	// bleed into an import taken earlier.
	if len(ts.Records) != 2 {
		t.Errorf("export grew with the source: %d records", len(ts.Records))
	}
	// Import replaces: re-importing over live state resets to the export.
	dst.ImportTarget("fixw", ts)
	if dst.Cycles("fixw") != 2 {
		t.Errorf("re-import cycles = %d, want 2", dst.Cycles("fixw"))
	}
}
