// Package engine schedules Mantra's monitoring cycle as the staged
// pipeline the paper's §III design describes — Data Collector →
// Router-Table Processor → Data Logger → Data Processor → Output
// Interface — instead of the single barrier the Monitor used to run.
//
// Each registered target flows through the stages independently:
// Collect and Normalize run concurrently on a bounded worker pool, and a
// sequence-numbered reorder buffer admits finished targets to the
// ordered stages (Log → Ingest → Publish) strictly in registration
// order. That keeps every downstream artifact — delta log records,
// series points, anomaly order, archive WAL frames — byte-identical to
// the old serial schedule while a slow router no longer delays the
// processing of every healthy one. The optional Aggregate stage runs
// once per cycle over the successful snapshots, still in registration
// order.
//
// The engine also owns the per-target state the Monitor used to scatter
// across parallel maps (latest snapshot, route-stability tracker,
// gap/success bookkeeping) and instruments every stage with per-target
// timings and reorder-queue depth counters on an injected monotonic
// clock, so the pipeline's speedup over the barrier is measured, not
// asserted.
package engine

import (
	"sync"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/core/tables"
)

// Item is one target's journey through one cycle's stages. The worker
// pool fills Res and Snapshot; the ordered stages fill Stats.
type Item struct {
	// Seq is the target's registration index. The reorder buffer
	// releases items downstream strictly in Seq order.
	Seq    int
	Target collect.Target
	// Res is the collection outcome, set by the Collect stage.
	Res collect.Result
	// Snapshot is the normalized table snapshot; nil when collection or
	// normalization failed, in which case the item flows through the
	// remaining stages as a gap.
	Snapshot *tables.Snapshot
	// Stats is set by the Ingest stage on success.
	Stats *process.CycleStats

	t itemTimings
}

// Failed reports whether the item produced no snapshot.
func (it *Item) Failed() bool { return it.Snapshot == nil }

// itemTimings records the item's stage boundaries as offsets on the
// cycle clock.
type itemTimings struct {
	collectStart time.Duration
	collectEnd   time.Duration
	normalizeEnd time.Duration
	// enqueued..dequeued is the time parked in the reorder buffer
	// waiting for earlier-registered targets (head-of-line blocking).
	enqueued   time.Duration
	dequeued   time.Duration
	logEnd     time.Duration
	ingestEnd  time.Duration
	publishEnd time.Duration
}

// Stages supplies the monitor-side implementations of the pipeline
// stages. Collect and Normalize are called concurrently across targets
// from the worker pool and must be safe for concurrent use across
// distinct targets. Log, Ingest, Publish and Aggregate are invoked from
// a single goroutine, in registration order, and need no locking
// against one another. Normalize is skipped when Collect failed; Log,
// Ingest and Publish always run so gap handling stays stage-local.
type Stages struct {
	Collect   func(it *Item, now time.Time)
	Normalize func(it *Item, now time.Time)
	Log       func(it *Item, now time.Time)
	Ingest    func(it *Item, now time.Time)
	Publish   func(it *Item, now time.Time)
	// Aggregate runs once per cycle after every item has been
	// published, over the successful snapshots in registration order.
	// Nil disables the stage.
	Aggregate func(now time.Time, snaps []*tables.Snapshot) *process.CycleStats
}

// Options parameterize one cycle run.
type Options struct {
	// Concurrency bounds the Collect/Normalize worker pool. Values
	// below 1 mean 1; values above the target count are clamped to it.
	Concurrency int
	// Barrier restores the pre-pipeline two-phase schedule: every
	// target finishes collection before any is processed. Retained so
	// the pipeline's gain stays measurable (BenchmarkCycleEngine)
	// rather than asserted.
	Barrier bool
	// Aggregate enables the final merge stage (needs Stages.Aggregate).
	Aggregate bool
}

// targetState consolidates the per-target state the Monitor used to
// keep in parallel maps, plus the engine's own bookkeeping.
type targetState struct {
	name      string
	latest    *tables.Snapshot
	stability *process.RouteStability
	cycles    int
	successes int
	gaps      int
	lastSeq   int
	stages    map[Stage]*StageStat
}

// Engine runs monitoring cycles through the staged pipeline and owns
// the per-target state and instrumentation. An Engine is safe for
// concurrent state reads (Latest, Stability, Stats) while a cycle runs;
// Run itself must not be called concurrently with another Run.
type Engine struct {
	stages Stages
	clock  Clock

	mu     sync.Mutex
	states map[string]*targetState
	cycles int
	conc   int
	// Cumulative per-stage timing instrumentation — local to this
	// engine's life, deliberately not part of any state transfer.
	//mantralint:allow statecov stage timing totals are instrumentation, not monitoring state; transfers restart them
	totals map[Stage]*StageStat
	last   *CycleReport
}

// New returns an engine over the given stage implementations. A nil
// clock gets a real monotonic clock (NewMonotonicClock); simulations
// inject a virtual one with SetClock so instrumentation stays
// deterministic.
func New(stages Stages, clock Clock) *Engine {
	if clock == nil {
		clock = NewMonotonicClock()
	}
	return &Engine{
		stages: stages,
		clock:  clock,
		states: make(map[string]*targetState),
		totals: make(map[Stage]*StageStat),
	}
}

// SetClock replaces the cycle clock; nil is ignored. The clock must be
// safe for concurrent use — the worker pool reads it from several
// goroutines.
func (e *Engine) SetClock(c Clock) {
	if c != nil {
		e.clock = c
	}
}

// state returns (creating if needed) a target's consolidated state.
// Callers must hold e.mu.
func (e *Engine) state(name string) *targetState {
	st := e.states[name]
	if st == nil {
		st = &targetState{name: name, stages: make(map[Stage]*StageStat)}
		e.states[name] = st
	}
	return st
}

// Latest returns the most recent snapshot recorded for a target, or nil.
//
//mantra:statetransfer component=engine seam=export
func (e *Engine) Latest(name string) *tables.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.states[name]; st != nil {
		return st.latest
	}
	return nil
}

// SetLatest records a target's most recent snapshot out of band — the
// aggregate stage and archive recovery use it.
//
//mantra:statetransfer component=engine seam=import
func (e *Engine) SetLatest(name string, sn *tables.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state(name).latest = sn
}

// Stability returns a target's route-stability tracker, or nil before
// its first successful cycle.
//
//mantra:statetransfer component=engine seam=export
func (e *Engine) Stability(name string) *process.RouteStability {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.states[name]; st != nil {
		return st.stability
	}
	return nil
}

// ObserveStability folds a snapshot into its target's stability
// tracker, creating the tracker on first use. Archive recovery replays
// through the same entry point the live Ingest stage uses.
func (e *Engine) ObserveStability(sn *tables.Snapshot) {
	e.mu.Lock()
	st := e.state(sn.Target)
	if st.stability == nil {
		st.stability = process.NewRouteStability()
	}
	rs := st.stability
	e.mu.Unlock()
	// Observe outside the lock: the tracker is only ever driven from
	// the single ordered-stage goroutine (or recovery, before cycles
	// start), the lock guards just the state map.
	rs.Observe(sn.Routes, sn.At)
}

// StabilityTrackers returns the current per-target stability trackers —
// the checkpoint export path.
//
//mantra:statetransfer component=engine seam=export
func (e *Engine) StabilityTrackers() map[string]*process.RouteStability {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]*process.RouteStability)
	for name, st := range e.states {
		if st.stability != nil {
			out[name] = st.stability
		}
	}
	return out
}

// SetStability installs (or, with nil, clears) one target's stability
// tracker, leaving every other target's untouched — the shard-handoff
// transfer path, where a survivor engine grafts a moved target's
// tracker in next to its own live ones.
//
//mantra:statetransfer component=engine seam=import
func (e *Engine) SetStability(name string, rs *process.RouteStability) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state(name).stability = rs
}

// ImportStability replaces targets' stability trackers wholesale — the
// checkpoint recovery path.
//
//mantra:statetransfer component=engine seam=import
func (e *Engine) ImportStability(trackers map[string]*process.RouteStability) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		st.stability = nil
	}
	for name, rs := range trackers {
		e.state(name).stability = rs
	}
}

// Run executes one monitoring cycle over targets, stamped at now, and
// returns the items in registration order plus the aggregate stage's
// statistics (nil when disabled or nothing succeeded) and the cycle's
// instrumentation report. Run never reads the wall clock; all
// timestamps come from now and all timings from the injected cycle
// clock.
//
// The budget covers the per-target Item, the worker closure, and the
// item-slice growth — one unavoidable allocation set per cycle member.
//
//mantra:hotpath budget=3
func (e *Engine) Run(now time.Time, targets []collect.Target, opts Options) ([]*Item, *process.CycleStats, *CycleReport) {
	n := len(targets)
	conc := opts.Concurrency
	if conc < 1 {
		conc = 1
	}
	if n > 0 && conc > n {
		conc = n
	}
	clock := e.clock
	t0 := clock()

	items := make([]*Item, n)
	for i, t := range targets {
		items[i] = &Item{Seq: i, Target: t}
	}

	report := &CycleReport{
		At:          now,
		Concurrency: conc,
		Barrier:     opts.Barrier,
		Targets:     n,
		Stages:      make(map[Stage]StageStat),
	}

	// Collect/Normalize fan out on the bounded pool; finished items
	// funnel into the reorder buffer via the collected channel.
	jobs := make(chan *Item)
	collected := make(chan *Item, n)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				it.t.collectStart = clock()
				e.stages.Collect(it, now)
				it.t.collectEnd = clock()
				if it.Res.Err == nil {
					e.stages.Normalize(it, now)
				}
				it.t.normalizeEnd = clock()
				it.t.enqueued = it.t.normalizeEnd
				collected <- it
			}
		}()
	}
	go func() {
		for _, it := range items {
			jobs <- it
		}
		close(jobs)
		wg.Wait()
		close(collected)
	}()

	// The sequencer runs the ordered stages on this goroutine, admitting
	// items strictly in Seq order as they come out of the pool.
	processItem := func(it *Item) {
		it.t.dequeued = clock()
		e.stages.Log(it, now)
		it.t.logEnd = clock()
		e.stages.Ingest(it, now)
		it.t.ingestEnd = clock()
		if it.Snapshot != nil {
			e.ObserveStability(it.Snapshot)
			e.SetLatest(it.Snapshot.Target, it.Snapshot)
		}
		e.stages.Publish(it, now)
		it.t.publishEnd = clock()
	}
	pending := make(map[int]*Item, n)
	next := 0
	for it := range collected {
		pending[it.Seq] = it
		if len(pending) > report.MaxQueueDepth {
			report.MaxQueueDepth = len(pending)
		}
		if opts.Barrier {
			continue
		}
		for pending[next] != nil {
			rdy := pending[next]
			delete(pending, next)
			next++
			processItem(rdy)
		}
	}
	// Barrier mode deferred all processing to here; in pipelined mode
	// everything already drained.
	for next < n {
		rdy := pending[next]
		delete(pending, next)
		next++
		processItem(rdy)
	}

	var aggStats *process.CycleStats
	if opts.Aggregate && e.stages.Aggregate != nil {
		snaps := make([]*tables.Snapshot, 0, n)
		for _, it := range items {
			if it.Snapshot != nil {
				snaps = append(snaps, it.Snapshot)
			}
		}
		if len(snaps) > 0 {
			aStart := clock()
			aggStats = e.stages.Aggregate(now, snaps)
			report.observe(StageAggregate, clock()-aStart)
		}
	}

	report.WallNs = (clock() - t0).Nanoseconds()
	e.finishCycle(items, report)
	return items, aggStats, report
}

// finishCycle folds one cycle's item timings into the report and the
// engine's cumulative per-target and per-stage totals.
//
//mantra:hotpath budget=10
func (e *Engine) finishCycle(items []*Item, report *CycleReport) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cycles++
	e.conc = report.Concurrency
	report.Cycle = e.cycles
	for _, it := range items {
		tc := TargetCycle{
			Target:      it.Target.Name,
			Seq:         it.Seq,
			Status:      string(it.Res.Status),
			CollectNs:   (it.t.collectEnd - it.t.collectStart).Nanoseconds(),
			NormalizeNs: (it.t.normalizeEnd - it.t.collectEnd).Nanoseconds(),
			WaitNs:      (it.t.dequeued - it.t.enqueued).Nanoseconds(),
			LogNs:       (it.t.logEnd - it.t.dequeued).Nanoseconds(),
			IngestNs:    (it.t.ingestEnd - it.t.logEnd).Nanoseconds(),
			PublishNs:   (it.t.publishEnd - it.t.ingestEnd).Nanoseconds(),
		}
		report.PerTarget = append(report.PerTarget, tc)
		report.observe(StageCollect, time.Duration(tc.CollectNs))
		report.observe(StageNormalize, time.Duration(tc.NormalizeNs))
		report.observe(StageLog, time.Duration(tc.LogNs))
		report.observe(StageIngest, time.Duration(tc.IngestNs))
		report.observe(StagePublish, time.Duration(tc.PublishNs))

		st := e.state(it.Target.Name)
		st.cycles++
		st.lastSeq = it.Seq
		if it.Snapshot == nil {
			st.gaps++
			report.Failed++
		} else {
			st.successes++
		}
		for _, sc := range []struct {
			stage Stage
			ns    int64
		}{
			{StageCollect, tc.CollectNs},
			{StageNormalize, tc.NormalizeNs},
			{StageLog, tc.LogNs},
			{StageIngest, tc.IngestNs},
			{StagePublish, tc.PublishNs},
		} {
			stat := st.stages[sc.stage]
			if stat == nil {
				stat = &StageStat{}
				st.stages[sc.stage] = stat
			}
			stat.observe(time.Duration(sc.ns))
		}
	}
	for stage, stat := range report.Stages {
		tot := e.totals[stage]
		if tot == nil {
			tot = &StageStat{}
			e.totals[stage] = tot
		}
		tot.merge(stat)
	}
	e.last = report
}
