package engine

import (
	"time"

	"repro/internal/core/tables"
)

// Stage identifies one pipeline stage in instrumentation output.
type Stage string

// The pipeline stages, in flow order. Collect and Normalize run on the
// worker pool; Log, Ingest and Publish run serially in registration
// order; Aggregate runs once per cycle.
const (
	StageCollect   Stage = "collect"
	StageNormalize Stage = "normalize"
	StageLog       Stage = "log"
	StageIngest    Stage = "ingest"
	StagePublish   Stage = "publish"
	StageAggregate Stage = "aggregate"
)

// OrderedStages lists every stage in pipeline order for stable
// rendering.
var OrderedStages = []Stage{
	StageCollect, StageNormalize, StageLog, StageIngest, StagePublish, StageAggregate,
}

// Clock is the engine's monotonic cycle clock: a non-decreasing
// duration since an arbitrary origin. The engine never reads the wall
// clock itself — live deployments use NewMonotonicClock, simulations
// inject a virtual clock so instrumented timings are deterministic.
// A Clock must be safe for concurrent use.
type Clock func() time.Duration

// NewMonotonicClock returns a clock reading the process's monotonic
// time relative to its creation instant.
func NewMonotonicClock() Clock {
	start := time.Now()                                      //mantralint:allow wallclock the documented live-clock seam; everything downstream consumes the injected Clock
	return func() time.Duration { return time.Since(start) } //mantralint:allow wallclock same seam: monotonic delta from the anchor above
}

// StageStat aggregates a stage's observed executions.
type StageStat struct {
	Count   int   `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

func (s *StageStat) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.Count++
	ns := d.Nanoseconds()
	s.TotalNs += ns
	if ns > s.MaxNs {
		s.MaxNs = ns
	}
}

func (s *StageStat) merge(o StageStat) {
	s.Count += o.Count
	s.TotalNs += o.TotalNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
}

// Total returns the stat's accumulated duration.
func (s StageStat) Total() time.Duration { return time.Duration(s.TotalNs) }

// TargetCycle is one target's instrumented trip through one cycle.
type TargetCycle struct {
	Target string `json:"target"`
	Seq    int    `json:"seq"`
	Status string `json:"status"`
	// Per-stage durations; WaitNs is the time parked in the reorder
	// buffer behind earlier-registered targets.
	CollectNs   int64 `json:"collect_ns"`
	NormalizeNs int64 `json:"normalize_ns"`
	WaitNs      int64 `json:"wait_ns"`
	LogNs       int64 `json:"log_ns"`
	IngestNs    int64 `json:"ingest_ns"`
	PublishNs   int64 `json:"publish_ns"`
}

// CycleReport instruments one cycle end to end.
type CycleReport struct {
	// Cycle counts engine cycles from 1.
	Cycle int `json:"cycle"`
	// At is the cycle's logical timestamp (the now passed to Run).
	At          time.Time `json:"at"`
	Concurrency int       `json:"concurrency"`
	Barrier     bool      `json:"barrier,omitempty"`
	Targets     int       `json:"targets"`
	Failed      int       `json:"failed"`
	// WallNs is the cycle's span on the cycle clock.
	WallNs int64 `json:"wall_ns"`
	// MaxQueueDepth is the reorder buffer's high-water mark: how many
	// finished targets were parked behind a slower earlier one (in
	// barrier mode it reaches the full target count by construction).
	MaxQueueDepth int                 `json:"max_queue_depth"`
	Stages        map[Stage]StageStat `json:"stages"`
	PerTarget     []TargetCycle       `json:"per_target"`
}

func (r *CycleReport) observe(stage Stage, d time.Duration) {
	stat := r.Stages[stage]
	stat.observe(d)
	r.Stages[stage] = stat
}

// StageTotal returns one stage's accumulated duration in the cycle.
func (r *CycleReport) StageTotal(stage Stage) time.Duration {
	return r.Stages[stage].Total()
}

// Wall returns the cycle's wall-clock span on the cycle clock.
func (r *CycleReport) Wall() time.Duration { return time.Duration(r.WallNs) }

// TargetStats is the cumulative per-target engine view.
type TargetStats struct {
	Target    string              `json:"target"`
	Cycles    int                 `json:"cycles"`
	Successes int                 `json:"successes"`
	Gaps      int                 `json:"gaps"`
	LastSeq   int                 `json:"last_seq"`
	Stages    map[Stage]StageStat `json:"stages"`
}

// Stats is the engine's operator view, served over HTTP at /stats.
type Stats struct {
	Cycles      int                 `json:"cycles"`
	Concurrency int                 `json:"concurrency"`
	Stages      map[Stage]StageStat `json:"stages"`
	Targets     []TargetStats       `json:"targets"`
	LastCycle   *CycleReport        `json:"last_cycle,omitempty"`
}

// Stats snapshots the engine's cumulative instrumentation. Safe to call
// while a cycle runs; per-target entries are ordered by last seen
// registration index, then name.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Stats{
		Cycles:      e.cycles,
		Concurrency: e.conc,
		Stages:      make(map[Stage]StageStat, len(e.totals)),
		LastCycle:   e.last,
	}
	for stage, stat := range e.totals {
		out.Stages[stage] = *stat
	}
	for _, st := range e.states {
		if st.cycles == 0 {
			// State created by SetLatest/ImportStability only (e.g. the
			// aggregate target or recovered history) has no cycle
			// instrumentation to report.
			continue
		}
		ts := TargetStats{
			Target:    st.name,
			Cycles:    st.cycles,
			Successes: st.successes,
			Gaps:      st.gaps,
			LastSeq:   st.lastSeq,
			Stages:    make(map[Stage]StageStat, len(st.stages)),
		}
		for stage, stat := range st.stages {
			ts.Stages[stage] = *stat
		}
		out.Targets = append(out.Targets, ts)
	}
	sortTargetStats(out.Targets)
	return out
}

// LastReport returns the most recent cycle's instrumentation, or nil
// before the first cycle.
func (e *Engine) LastReport() *CycleReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Cycles returns how many cycles the engine has run.
func (e *Engine) Cycles() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cycles
}

func sortTargetStats(ts []TargetStats) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTargetStats(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lessTargetStats(a, b TargetStats) bool {
	if a.LastSeq != b.LastSeq {
		return a.LastSeq < b.LastSeq
	}
	return a.Target < b.Target
}

// Latests returns every target with a recorded latest snapshot — the
// recovery and debugging view.
func (e *Engine) Latests() map[string]*tables.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]*tables.Snapshot, len(e.states))
	for name, st := range e.states {
		if st.latest != nil {
			out[name] = st.latest
		}
	}
	return out
}
