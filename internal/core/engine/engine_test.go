package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/core/process"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

// fakeTargets returns n named targets; the engine never dials them in
// these tests — the stub Collect stage fabricates results directly.
func fakeTargets(n int) []collect.Target {
	out := make([]collect.Target, n)
	for i := range out {
		out[i] = collect.Target{Name: fmt.Sprintf("t%02d", i)}
	}
	return out
}

// okCollect fabricates a successful collection; okNormalize attaches a
// minimal snapshot.
func okCollect(it *Item, _ time.Time) {
	it.Res = collect.Result{Target: it.Target.Name, Status: collect.StatusOK, Attempts: 1}
}

func okNormalize(it *Item, now time.Time) {
	it.Snapshot = &tables.Snapshot{Target: it.Target.Name, At: now}
}

func noop(*Item, time.Time) {}

// TestOrderingUnderRandomCompletion: targets finish collection in random
// order, but the ordered stages must still see them strictly in
// registration order — that reorder guarantee is what keeps the
// pipelined path byte-identical to the serial one.
func TestOrderingUnderRandomCompletion(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3000)) * time.Microsecond
	}
	var mu sync.Mutex
	var logOrder, ingestOrder, publishOrder []int
	e := New(Stages{
		Collect: func(it *Item, now time.Time) {
			time.Sleep(delays[it.Seq])
			okCollect(it, now)
		},
		Normalize: okNormalize,
		Log: func(it *Item, _ time.Time) {
			mu.Lock()
			logOrder = append(logOrder, it.Seq)
			mu.Unlock()
		},
		Ingest: func(it *Item, _ time.Time) {
			mu.Lock()
			ingestOrder = append(ingestOrder, it.Seq)
			mu.Unlock()
		},
		Publish: func(it *Item, _ time.Time) {
			mu.Lock()
			publishOrder = append(publishOrder, it.Seq)
			mu.Unlock()
		},
	}, nil)

	items, _, report := e.Run(sim.Epoch, fakeTargets(n), Options{Concurrency: 8})
	if len(items) != n {
		t.Fatalf("items = %d", len(items))
	}
	for name, order := range map[string][]int{
		"log": logOrder, "ingest": ingestOrder, "publish": publishOrder,
	} {
		if len(order) != n {
			t.Fatalf("%s stage ran %d times, want %d", name, len(order), n)
		}
		for i, seq := range order {
			if seq != i {
				t.Fatalf("%s stage order broken at %d: got seq %d (full: %v)", name, i, seq, order)
			}
		}
	}
	if report.Targets != n || report.Failed != 0 {
		t.Errorf("report targets=%d failed=%d", report.Targets, report.Failed)
	}
}

// TestBoundedPool: at no instant may more than Concurrency targets be
// inside the Collect stage — the engine must pool workers, not spawn a
// goroutine per target.
func TestBoundedPool(t *testing.T) {
	const n, conc = 40, 4
	var inflight, peak int64
	e := New(Stages{
		Collect: func(it *Item, now time.Time) {
			cur := atomic.AddInt64(&inflight, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			atomic.AddInt64(&inflight, -1)
			okCollect(it, now)
		},
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
	}, nil)
	e.Run(sim.Epoch, fakeTargets(n), Options{Concurrency: conc})
	if got := atomic.LoadInt64(&peak); got > conc {
		t.Errorf("collect in-flight peak = %d, want <= %d", got, conc)
	}
	if got := atomic.LoadInt64(&peak); got < 2 {
		t.Errorf("collect in-flight peak = %d; pool never overlapped", got)
	}
}

// TestPipelinedOverlap: with the slowest target registered last, the
// pipelined schedule must process earlier targets while the slow one is
// still collecting; the barrier schedule must not process anything
// before every collection has finished.
func TestPipelinedOverlap(t *testing.T) {
	const n = 8
	run := func(barrier bool) (processedBeforeSlowDone int64) {
		var slowDone atomic.Bool
		var early int64
		e := New(Stages{
			Collect: func(it *Item, now time.Time) {
				if it.Seq == n-1 {
					time.Sleep(5 * time.Millisecond)
					slowDone.Store(true)
				}
				okCollect(it, now)
			},
			Normalize: okNormalize,
			Log: func(it *Item, _ time.Time) {
				if !slowDone.Load() {
					atomic.AddInt64(&early, 1)
				}
			},
			Ingest: noop, Publish: noop,
		}, nil)
		e.Run(sim.Epoch, fakeTargets(n), Options{Concurrency: 2, Barrier: barrier})
		return atomic.LoadInt64(&early)
	}
	if got := run(false); got == 0 {
		t.Error("pipelined: no target was processed while the slow collection ran")
	}
	if got := run(true); got != 0 {
		t.Errorf("barrier: %d targets processed before all collections finished", got)
	}
}

// TestQueueDepth: a slow target registered first parks every faster
// later target in the reorder buffer; the high-water mark must record
// that head-of-line blocking.
func TestQueueDepth(t *testing.T) {
	const n = 6
	e := New(Stages{
		Collect: func(it *Item, now time.Time) {
			if it.Seq == 0 {
				time.Sleep(5 * time.Millisecond)
			}
			okCollect(it, now)
		},
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
	}, nil)
	_, _, report := e.Run(sim.Epoch, fakeTargets(n), Options{Concurrency: n})
	if report.MaxQueueDepth < n-1 {
		t.Errorf("max queue depth = %d, want >= %d (everything parked behind t00)",
			report.MaxQueueDepth, n-1)
	}
	// Waiters must account their park time to WaitNs.
	var waited int
	for _, tc := range report.PerTarget[1:] {
		if tc.WaitNs > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Error("no target recorded reorder-buffer wait time")
	}
}

// TestDeterministicClock: with an injected virtual clock the cycle's
// instrumentation is exact and reproducible — the engine makes no
// wall-clock reads of its own.
func TestDeterministicClock(t *testing.T) {
	run := func() *CycleReport {
		var ticks int64
		clock := func() time.Duration {
			return time.Duration(atomic.AddInt64(&ticks, 1)) * time.Millisecond
		}
		e := New(Stages{
			Collect:   okCollect,
			Normalize: okNormalize,
			Log:       noop, Ingest: noop, Publish: noop,
		}, clock)
		_, _, report := e.Run(sim.Epoch, fakeTargets(1), Options{Concurrency: 1})
		return report
	}
	r1, r2 := run(), run()
	// Clock calls, in order: cycle start, collect start/end, normalize
	// end, dequeue, log end, ingest end, publish end, cycle end — each
	// advancing 1ms, so every stage reads exactly 1ms and the wall span
	// is 8ms.
	want := TargetCycle{
		Target: "t00", Status: string(collect.StatusOK),
		CollectNs:   int64(time.Millisecond),
		NormalizeNs: int64(time.Millisecond),
		WaitNs:      int64(time.Millisecond),
		LogNs:       int64(time.Millisecond),
		IngestNs:    int64(time.Millisecond),
		PublishNs:   int64(time.Millisecond),
	}
	if r1.PerTarget[0] != want {
		t.Errorf("per-target timings = %+v, want %+v", r1.PerTarget[0], want)
	}
	if r1.WallNs != int64(8*time.Millisecond) {
		t.Errorf("wall = %v, want 8ms", time.Duration(r1.WallNs))
	}
	if r1.PerTarget[0] != r2.PerTarget[0] || r1.WallNs != r2.WallNs {
		t.Error("virtual-clock instrumentation not reproducible across runs")
	}
}

// TestGapFlow: a failed collection must skip Normalize but still flow
// through the ordered stages (gap handling is stage-local), count as a
// gap in the target's cumulative state, and fail the report.
func TestGapFlow(t *testing.T) {
	var normalized, logged, ingested int64
	e := New(Stages{
		Collect: func(it *Item, now time.Time) {
			if it.Seq == 1 {
				it.Res = collect.Result{
					Target: it.Target.Name, Status: collect.StatusDegraded,
					Err: errors.New("refused"),
				}
				return
			}
			okCollect(it, now)
		},
		Normalize: func(it *Item, now time.Time) {
			atomic.AddInt64(&normalized, 1)
			okNormalize(it, now)
		},
		Log:    func(*Item, time.Time) { atomic.AddInt64(&logged, 1) },
		Ingest: func(*Item, time.Time) { atomic.AddInt64(&ingested, 1) },
		Publish: func(it *Item, _ time.Time) {
			if it.Failed() {
				return
			}
		},
	}, nil)
	items, _, report := e.Run(sim.Epoch, fakeTargets(3), Options{Concurrency: 2})
	if normalized != 2 {
		t.Errorf("normalize ran %d times, want 2 (skipped on collect failure)", normalized)
	}
	if logged != 3 || ingested != 3 {
		t.Errorf("log/ingest ran %d/%d times, want 3/3 (gaps flow through)", logged, ingested)
	}
	if !items[1].Failed() || items[0].Failed() || items[2].Failed() {
		t.Errorf("failure flags wrong: %v %v %v", items[0].Failed(), items[1].Failed(), items[2].Failed())
	}
	if report.Failed != 1 {
		t.Errorf("report.Failed = %d", report.Failed)
	}
	st := e.Stats()
	for _, ts := range st.Targets {
		wantGaps := 0
		if ts.Target == "t01" {
			wantGaps = 1
		}
		if ts.Gaps != wantGaps || ts.Cycles != 1 {
			t.Errorf("%s: cycles=%d gaps=%d", ts.Target, ts.Cycles, ts.Gaps)
		}
	}
	// The failed target must not acquire a latest snapshot or tracker.
	if e.Latest("t01") != nil || e.Stability("t01") != nil {
		t.Error("failed target acquired state")
	}
	if e.Latest("t00") == nil || e.Stability("t00") == nil {
		t.Error("successful target missing state")
	}
}

// TestAggregateStage: the merge stage sees the successful snapshots in
// registration order, exactly once per cycle, and is skipped when
// disabled or when nothing succeeded.
func TestAggregateStage(t *testing.T) {
	var got [][]string
	stages := Stages{
		Collect: func(it *Item, now time.Time) {
			if it.Seq == 2 {
				it.Res = collect.Result{Target: it.Target.Name, Err: errors.New("down")}
				return
			}
			okCollect(it, now)
		},
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
		Aggregate: func(_ time.Time, snaps []*tables.Snapshot) *process.CycleStats {
			names := make([]string, len(snaps))
			for i, sn := range snaps {
				names[i] = sn.Target
			}
			got = append(got, names)
			return &process.CycleStats{Target: "aggregate"}
		},
	}

	e := New(stages, nil)
	_, aggStats, _ := e.Run(sim.Epoch, fakeTargets(4), Options{Concurrency: 4, Aggregate: true})
	if aggStats == nil {
		t.Fatal("aggregate stats missing")
	}
	if len(got) != 1 {
		t.Fatalf("aggregate ran %d times", len(got))
	}
	want := []string{"t00", "t01", "t03"}
	if len(got[0]) != len(want) {
		t.Fatalf("aggregate saw %v, want %v", got[0], want)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("aggregate saw %v, want %v (registration order)", got[0], want)
		}
	}

	// Disabled: stage must not run.
	got = nil
	e2 := New(stages, nil)
	if _, aggStats, _ := e2.Run(sim.Epoch, fakeTargets(2), Options{Concurrency: 1}); aggStats != nil || got != nil {
		t.Error("aggregate ran with Options.Aggregate unset")
	}

	// All targets failed: nothing to merge.
	e3 := New(Stages{
		Collect: func(it *Item, _ time.Time) {
			it.Res = collect.Result{Target: it.Target.Name, Err: errors.New("down")}
		},
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
		Aggregate: stages.Aggregate,
	}, nil)
	got = nil
	if _, aggStats, _ := e3.Run(sim.Epoch, fakeTargets(2), Options{Concurrency: 2, Aggregate: true}); aggStats != nil || got != nil {
		t.Error("aggregate ran over zero successful snapshots")
	}
}

// TestStatsAccumulate: cumulative engine stats fold every cycle's
// per-stage observations into totals and per-target views.
func TestStatsAccumulate(t *testing.T) {
	e := New(Stages{
		Collect:   okCollect,
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
	}, nil)
	const cycles, n = 3, 2
	for i := 0; i < cycles; i++ {
		e.Run(sim.Epoch.Add(time.Duration(i)*time.Hour), fakeTargets(n), Options{Concurrency: 2})
	}
	st := e.Stats()
	if st.Cycles != cycles {
		t.Errorf("cycles = %d", st.Cycles)
	}
	if got := st.Stages[StageCollect].Count; got != cycles*n {
		t.Errorf("total collect observations = %d, want %d", got, cycles*n)
	}
	if len(st.Targets) != n {
		t.Fatalf("target stats = %d entries", len(st.Targets))
	}
	// Registration order: last seq sorts t00 before t01.
	if st.Targets[0].Target != "t00" || st.Targets[1].Target != "t01" {
		t.Errorf("target order = %s, %s", st.Targets[0].Target, st.Targets[1].Target)
	}
	for _, ts := range st.Targets {
		if ts.Cycles != cycles || ts.Successes != cycles || ts.Gaps != 0 {
			t.Errorf("%s: %+v", ts.Target, ts)
		}
		if ts.Stages[StageIngest].Count != cycles {
			t.Errorf("%s ingest count = %d", ts.Target, ts.Stages[StageIngest].Count)
		}
	}
	if rep := e.LastReport(); rep == nil || rep.Cycle != cycles {
		t.Errorf("last report = %+v", rep)
	}
}

// TestZeroTargets: an empty cycle completes without hanging and reports
// cleanly.
func TestZeroTargets(t *testing.T) {
	e := New(Stages{
		Collect: okCollect, Normalize: okNormalize,
		Log: noop, Ingest: noop, Publish: noop,
	}, nil)
	items, aggStats, report := e.Run(sim.Epoch, nil, Options{Concurrency: 4, Aggregate: true})
	if len(items) != 0 || aggStats != nil {
		t.Errorf("items=%d agg=%v", len(items), aggStats)
	}
	if report.Targets != 0 || report.Cycle != 1 {
		t.Errorf("report = %+v", report)
	}
}

// TestShutdownLeavesNoGoroutines: every goroutine the engine spawns for
// a cycle — the bounded worker pool and the feeder that closes the
// channels behind it — must have exited by the time Run returns. A
// leaked worker would accumulate across cycles and, in the paper's
// months-long monitoring regime, across hundreds of thousands of them;
// the static counterpart of this check is mantralint's goleak analyzer.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	e := New(Stages{
		Collect: func(it *Item, now time.Time) {
			time.Sleep(50 * time.Microsecond)
			okCollect(it, now)
		},
		Normalize: okNormalize,
		Log:       noop, Ingest: noop, Publish: noop,
	}, nil)

	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		e.Run(sim.Epoch, fakeTargets(24), Options{Concurrency: 8})
	}
	// A finished goroutine is unscheduled asynchronously, so the count
	// may trail Run's return by a moment; poll briefly before failing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before=%d after=%d; stacks:\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
