package tables_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/collect"
	"repro/internal/core/tables"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func pre(s string) []string { return collect.Preprocess(s) }

func TestParseDVMRPRoutes(t *testing.T) {
	raw := `DVMRP Routing Table - 2 entries
Origin-Subnet       From-Gateway     Metric  Uptime
128.111.0.0/16      198.32.255.3     3       12:30:00
10.0.0.0/8          local            0       100:00:05
`
	rt, err := tables.ParseDVMRPRoutes(pre(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != 2 {
		t.Fatalf("rows = %d", len(rt))
	}
	if rt[0].Prefix != addr.MustParsePrefix("128.111.0.0/16") || rt[0].Metric != 3 {
		t.Errorf("row0 = %+v", rt[0])
	}
	if rt[0].Uptime != 12*time.Hour+30*time.Minute {
		t.Errorf("uptime = %v", rt[0].Uptime)
	}
	if !rt[1].Local || rt[1].Uptime != 100*time.Hour+5*time.Second {
		t.Errorf("row1 = %+v", rt[1])
	}
}

func TestParseDVMRPRoutesMalformed(t *testing.T) {
	for _, raw := range []string{
		"1.2.3.4/8 gw x 0:00:00",        // bad metric
		"1.2.3.4/8 gw 1 xx",             // bad uptime
		"1.2.3.4/8 gw 1",                // short row
		"1.2.3.300/8 gw 1 0:00:00",      // bad prefix
		"1.0.0.0/8 999.1.1.1 1 0:00:00", // bad gateway
	} {
		if _, err := tables.ParseDVMRPRoutes(pre(raw)); err == nil {
			t.Errorf("parse of %q succeeded", raw)
		}
	}
}

func TestParseMroute(t *testing.T) {
	raw := `IP Multicast Forwarding Table - 2 entries
Source           Group            Flags  IIF  OIFs           Kbps      Pkts        Uptime
128.111.41.2     224.2.0.1        DP     12   -              0.0       17          1:00:00
130.207.8.4      224.2.0.1        ST     3    4,7            64.5      12345       0:30:00
`
	pt, err := tables.ParseMroute(pre(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(pt) != 2 {
		t.Fatalf("rows = %d", len(pt))
	}
	if pt[0].Flags != "DP" || pt[0].RateKbps != 0 || pt[0].Packets != 17 {
		t.Errorf("row0 = %+v", pt[0])
	}
	if pt[1].RateKbps != 64.5 || pt[1].Uptime != 30*time.Minute {
		t.Errorf("row1 = %+v", pt[1])
	}
}

func TestParseUptimeValidation(t *testing.T) {
	raw := "1.1.1.1 224.1.1.1 D 0 - 1.0 5 0:99:00"
	if _, err := tables.ParseMroute(pre(raw)); err == nil {
		t.Error("minutes > 59 accepted")
	}
}

func TestParseIGMPAndMSDPAndMBGP(t *testing.T) {
	igmp, err := tables.ParseIGMP(pre(`IGMP Group Membership - 1 groups, 1 members
Group            Host             Uptime
224.2.0.1        128.111.41.10    0:30:00`))
	if err != nil || len(igmp) != 1 || igmp[0].Host != addr.MustParse("128.111.41.10") {
		t.Errorf("igmp = %+v err=%v", igmp, err)
	}
	sas, err := tables.ParseMSDP(pre(`MSDP Source-Active Cache - 1 entries
Source           Group            Origin-RP        Uptime
128.111.41.2     224.2.0.1        198.32.255.3     1:00:00`))
	if err != nil || len(sas) != 1 || sas[0].OriginRP != addr.MustParse("198.32.255.3") {
		t.Errorf("msdp = %+v err=%v", sas, err)
	}
	mb, err := tables.ParseMBGP(pre(`MBGP Table - 2 entries
Network             Next-Hop         Uptime    Path
128.111.0.0/16      198.32.1.2       1:00:00   7001 131
10.0.0.0/8          local            2:00:00   64001`))
	if err != nil || len(mb) != 2 {
		t.Fatalf("mbgp = %+v err=%v", mb, err)
	}
	if len(mb[0].ASPath) != 2 || mb[0].ASPath[1] != 131 {
		t.Errorf("aspath = %v", mb[0].ASPath)
	}
	if !mb[1].Local {
		t.Error("local flag lost")
	}
}

func TestDeriveParticipants(t *testing.T) {
	pt := tables.PairTable{
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.0.1.1"), RateKbps: 0.5, Uptime: time.Hour},
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.0.1.2"), RateKbps: 64, Uptime: 2 * time.Hour},
		{Source: addr.MustParse("2.2.2.2"), Group: addr.MustParse("224.0.1.1"), RateKbps: 1.5, Uptime: time.Minute},
	}
	parts := pt.Participants()
	if len(parts) != 2 {
		t.Fatalf("participants = %+v", parts)
	}
	if parts[0].Host != addr.MustParse("1.1.1.1") || parts[0].Groups != 2 ||
		parts[0].MaxRateKbps != 64 || parts[0].Uptime != 2*time.Hour {
		t.Errorf("p0 = %+v", parts[0])
	}
}

func TestDeriveSessions(t *testing.T) {
	pt := tables.PairTable{
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.0.1.1"), Flags: "D", RateKbps: 0.5, Packets: 10, Uptime: time.Hour},
		{Source: addr.MustParse("2.2.2.2"), Group: addr.MustParse("224.0.1.1"), Flags: "D", RateKbps: 64, Packets: 90, Uptime: 2 * time.Hour},
		{Source: addr.MustParse("3.3.3.3"), Group: addr.MustParse("224.0.1.2"), Flags: "ST", RateKbps: 8, Packets: 5},
	}
	ss := pt.Sessions()
	if len(ss) != 2 {
		t.Fatalf("sessions = %+v", ss)
	}
	if ss[0].Density != 2 || ss[0].TotalRateKbps != 64.5 || ss[0].Packets != 100 {
		t.Errorf("s0 = %+v", ss[0])
	}
	if ss[0].Protocol != "dvmrp" || ss[1].Protocol != "pim" {
		t.Errorf("protocols = %q, %q", ss[0].Protocol, ss[1].Protocol)
	}
	if ss[0].Uptime != 2*time.Hour {
		t.Errorf("uptime = %v", ss[0].Uptime)
	}
}

func TestDeriveSessionsMixedProtocol(t *testing.T) {
	pt := tables.PairTable{
		{Source: addr.MustParse("1.1.1.1"), Group: addr.MustParse("224.0.1.1"), Flags: "D"},
		{Source: addr.MustParse("2.2.2.2"), Group: addr.MustParse("224.0.1.1"), Flags: "S"},
	}
	if ss := pt.Sessions(); ss[0].Protocol != "mixed" {
		t.Errorf("protocol = %q", ss[0].Protocol)
	}
}

func TestBuildSnapshotEndToEnd(t *testing.T) {
	// Collect real dumps from a simulated router and normalize them.
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 3
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		n.Step()
	}
	tgt := collect.Target{
		Name:   "fixw",
		Dialer: collect.PipeDialer{Router: n.Router("fixw")},
		Prompt: "fixw> ",
	}
	dumps, err := collect.CollectAll(tgt, collect.StandardCommands, n.Now())
	if err != nil {
		t.Fatal(err)
	}
	sn, err := tables.BuildSnapshot(dumps)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Target != "fixw" || !sn.At.Equal(n.Now()) {
		t.Errorf("snapshot meta: %+v", sn)
	}
	if len(sn.Routes) < 100 {
		t.Errorf("routes = %d", len(sn.Routes))
	}
	if len(sn.Pairs) == 0 {
		t.Error("no pairs parsed")
	}
	// Round-trip integrity: parsed route count equals the router's.
	if len(sn.Routes) != n.DVMRP.RouteCount(inet.FIXW.ID) {
		t.Errorf("parsed %d routes, router holds %d", len(sn.Routes), n.DVMRP.RouteCount(inet.FIXW.ID))
	}
	if n.Router("fixw").FWD.Len() != len(sn.Pairs) {
		t.Errorf("parsed %d pairs, router holds %d", len(sn.Pairs), n.Router("fixw").FWD.Len())
	}
	// Derivations behave on real data.
	parts := sn.Pairs.Participants()
	sess := sn.Pairs.Sessions()
	if len(parts) == 0 || len(sess) == 0 {
		t.Error("derivations empty")
	}
	total := 0
	for _, s := range sess {
		total += s.Density
	}
	if total != len(sn.Pairs) {
		t.Errorf("density sum %d != pairs %d", total, len(sn.Pairs))
	}
}

func TestBuildSnapshotErrors(t *testing.T) {
	if _, err := tables.BuildSnapshot(nil); err == nil {
		t.Error("empty dumps accepted")
	}
	mixed := []collect.Dump{
		{Target: "a", Command: "show ip mroute", At: sim.Epoch},
		{Target: "b", Command: "show ip mroute", At: sim.Epoch},
	}
	if _, err := tables.BuildSnapshot(mixed); err == nil || !strings.Contains(err.Error(), "mixed targets") {
		t.Errorf("mixed targets: %v", err)
	}
	bad := []collect.Dump{{Target: "a", Command: "show ip mroute", Raw: "not a table row here x y"}}
	if _, err := tables.BuildSnapshot(bad); err == nil {
		t.Error("malformed dump accepted")
	}
	unknown := []collect.Dump{{Target: "a", Command: "show clock", Raw: "whatever"}}
	if _, err := tables.BuildSnapshot(unknown); err != nil {
		t.Errorf("unknown command should be skipped: %v", err)
	}
}
