// Snapshot merging: the order-independent multi-vantage aggregation the
// paper's conclusion calls for, shared by the Monitor's aggregate stage
// and the shard supervisor's fan-in tier.
package tables

import (
	"sort"
	"time"

	"repro/internal/addr"
)

// MergeSnapshots combines several routers' cycle snapshots into one
// aggregate view:
//
//   - Pair table: deduplicated on (source, group); the highest observed
//     rate wins (different routers see the same stream at different
//     points of its tree), counters take the maximum, uptime the longest.
//   - Route table: deduplicated on prefix with the best (lowest) metric.
//
// When the same target appears more than once — the shard-handoff race,
// where a dying worker's stale snapshot and the new owner's fresh one
// reach the fan-in together — only that target's newest snapshot (latest
// At) participates; snapshots with equal At fall through to the
// entry-level merge, which is commutative.
//
// The merge is order-independent: ties are broken by a total order over
// the entry fields rather than by arrival, so any permutation of snaps
// produces an identical aggregate — which is what lets the pipelined
// cycle engine and the shard fan-in merge snapshots without caring how
// collection finished.
func MergeSnapshots(name string, at time.Time, snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Target: name, At: at}
	// Newest-sequence-wins per target: a stale duplicate (same target,
	// older At) must not drag withdrawn entries back into the aggregate.
	newest := make(map[string]time.Time)
	for _, sn := range snaps {
		if sn == nil || sn.Target == "" {
			continue
		}
		if cur, ok := newest[sn.Target]; !ok || sn.At.After(cur) {
			newest[sn.Target] = sn.At
		}
	}
	type pk struct{ s, g addr.IP }
	pairs := make(map[pk]PairEntry)
	routes := make(map[addr.Prefix]RouteEntry)
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		if sn.Target != "" && sn.At.Before(newest[sn.Target]) {
			continue
		}
		for _, e := range sn.Pairs {
			k := pk{s: e.Source, g: e.Group}
			cur, ok := pairs[k]
			if !ok {
				pairs[k] = e
				continue
			}
			pairs[k] = mergePair(cur, e)
		}
		for _, e := range sn.Routes {
			cur, ok := routes[e.Prefix]
			if !ok || routePreferred(e, cur) {
				routes[e.Prefix] = e
			}
		}
	}
	for _, e := range pairs {
		out.Pairs = append(out.Pairs, e)
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		if out.Pairs[i].Group != out.Pairs[j].Group {
			return out.Pairs[i].Group < out.Pairs[j].Group
		}
		return out.Pairs[i].Source < out.Pairs[j].Source
	})
	for _, e := range routes {
		out.Routes = append(out.Routes, e)
	}
	sort.Slice(out.Routes, func(i, j int) bool {
		return out.Routes[i].Prefix.Compare(out.Routes[j].Prefix) < 0
	})
	return out
}

// mergePair combines two observations of the same (source, group) pair.
// Rates and counters take the field-wise maximum; uptime, its anchored
// Since, and the flag string travel together from the dominant entry —
// the longer-lived one, ties broken by earlier Since then smaller flag
// string — so the merge commutes.
func mergePair(a, b PairEntry) PairEntry {
	dom, other := a, b
	if pairDominates(b, a) {
		dom, other = b, a
	}
	if other.RateKbps > dom.RateKbps {
		dom.RateKbps = other.RateKbps
	}
	if other.Packets > dom.Packets {
		dom.Packets = other.Packets
	}
	return dom
}

// pairDominates reports whether a wins the uptime/flags tie-break over b.
func pairDominates(a, b PairEntry) bool {
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	if !a.Since.Equal(b.Since) {
		return a.Since.Before(b.Since)
	}
	return a.Flags < b.Flags
}

// routePreferred reports whether route a beats b for the same prefix:
// best (lowest) metric, then longest uptime, then a stable total order
// over the remaining fields so the choice never depends on which
// vantage's table arrived first.
func routePreferred(a, b RouteEntry) bool {
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	if !a.Since.Equal(b.Since) {
		return a.Since.Before(b.Since)
	}
	if a.Local != b.Local {
		return a.Local
	}
	return a.Gateway < b.Gateway
}
