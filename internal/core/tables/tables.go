// Package tables implements Mantra's Router-Table Processor: it maps
// pre-processed raw router dumps onto the tool's local data format — the
// four tables the paper defines (§III): the Pair table of (S,G) tuples,
// the Participant table of hosts, the Session table of groups, and the
// Route table of live routes.
//
// The Pair table is parsed from the multicast forwarding dump and the
// Route table from the DVMRP routing dump; Participant and Session tables
// are *derived* from the Pair table rather than stored — the redundancy-
// avoidance rule the paper's Data Logger applies.
package tables

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/addr"
	"repro/internal/core/collect"
)

// PairEntry is one (source, group) tuple with its traffic statistics.
//
//mantra:codec pair=wire-pairentry shape=a8af70008b65f247
type PairEntry struct {
	Source addr.IP
	Group  addr.IP
	// Flags is the raw flag string from the router (D/S/P/T/R letters).
	Flags string
	// RateKbps is the router's current bandwidth estimate.
	RateKbps float64
	// Packets is the cumulative packet count.
	Packets uint64
	// Uptime is how long the router has had state for the pair.
	Uptime time.Duration
	// Since is the absolute instant state appeared (snapshot time minus
	// uptime), filled by BuildSnapshot. Unlike Uptime it is stable
	// across cycles, which is what makes delta logging effective.
	Since time.Time
}

// PairTable lists every session-participant tuple the router has state for.
type PairTable []PairEntry

// RouteEntry is one live route.
//
//mantra:codec pair=wire-routeentry shape=4c55178fc6135663
type RouteEntry struct {
	Prefix addr.Prefix
	// Gateway is the next-hop address ("local" parses as the zero IP
	// with Local set).
	Gateway addr.IP
	Local   bool
	Metric  int
	Uptime  time.Duration
	// Since is the absolute instant the route appeared; see
	// PairEntry.Since.
	Since time.Time
}

// RouteTable lists the current set of live routes.
type RouteTable []RouteEntry

// ParticipantEntry summarizes one host across the pair table.
type ParticipantEntry struct {
	Host addr.IP
	// Groups is the number of groups the host participates in.
	Groups int
	// MaxRateKbps is the host's highest per-pair rate — the sender
	// classification input.
	MaxRateKbps float64
	// Uptime is the longest pair uptime, i.e. how long Mantra has had
	// state for the host.
	Uptime time.Duration
}

// ParticipantTable lists hosts participating in sessions.
type ParticipantTable []ParticipantEntry

// SessionEntry summarizes one group across the pair table.
type SessionEntry struct {
	Group addr.IP
	// Density is the number of participant hosts with state for the
	// group.
	Density int
	// TotalRateKbps is the aggregate bandwidth into the group.
	TotalRateKbps float64
	// Packets is the cumulative packets across pairs.
	Packets uint64
	// Protocol records which protocol's state advertised the session
	// ("dvmrp" for dense flags, "pim" for sparse).
	Protocol string
	// Uptime is the longest pair uptime for the group.
	Uptime time.Duration
}

// SessionTable lists the multicast sessions visible at the router.
type SessionTable []SessionEntry

// IGMPEntry is one local membership report visible at the router.
type IGMPEntry struct {
	Group  addr.IP
	Host   addr.IP
	Uptime time.Duration
}

// SAEntry is one MSDP source-active cache entry.
type SAEntry struct {
	Source   addr.IP
	Group    addr.IP
	OriginRP addr.IP
	Uptime   time.Duration
}

// MBGPEntry is one MBGP RIB route.
type MBGPEntry struct {
	Prefix  addr.Prefix
	NextHop addr.IP
	Local   bool
	ASPath  []int
	Uptime  time.Duration
}

// Snapshot is one monitoring cycle's normalized view of one router.
type Snapshot struct {
	Target string
	At     time.Time
	Pairs  PairTable
	Routes RouteTable
	IGMP   []IGMPEntry
	SAs    []SAEntry
	MBGP   []MBGPEntry
}

// parseUptime parses the H:MM:SS uptime format.
//
//mantra:hotpath budget=2
func parseUptime(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("tables: malformed uptime %q", s)
	}
	h, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	sec, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m > 59 || sec > 59 || h < 0 || m < 0 || sec < 0 {
		return 0, fmt.Errorf("tables: malformed uptime %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute + time.Duration(sec)*time.Second, nil
}

// headerCount extracts N from a "<title> - N entries"-style header line.
func headerCount(line string) (int, bool) {
	i := strings.LastIndex(line, "- ")
	if i < 0 {
		return 0, false
	}
	fields := strings.Fields(line[i+2:])
	if len(fields) < 1 {
		return 0, false
	}
	n, err := strconv.Atoi(fields[0])
	return n, err == nil
}

// ParseDVMRPRoutes maps a pre-processed `show ip dvmrp route` dump to the
// Route table.
//
//mantra:hotpath budget=4
func ParseDVMRPRoutes(lines []string) (RouteTable, error) {
	var out RouteTable
	for _, line := range lines {
		if strings.HasPrefix(line, "DVMRP Routing Table") || strings.HasPrefix(line, "Origin-Subnet") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("tables: dvmrp row %q has %d fields", line, len(f))
		}
		p, err := addr.ParsePrefix(f[0])
		if err != nil {
			return nil, err
		}
		e := RouteEntry{Prefix: p}
		if f[1] == "local" {
			e.Local = true
		} else {
			gw, err := addr.Parse(f[1])
			if err != nil {
				return nil, err
			}
			e.Gateway = gw
		}
		if e.Metric, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("tables: dvmrp metric %q", f[2])
		}
		if e.Uptime, err = parseUptime(f[3]); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ParseMroute maps a pre-processed `show ip mroute` dump to the Pair table.
//
//mantra:hotpath budget=5
func ParseMroute(lines []string) (PairTable, error) {
	var out PairTable
	for _, line := range lines {
		if strings.HasPrefix(line, "IP Multicast Forwarding Table") || strings.HasPrefix(line, "Source ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 8 {
			return nil, fmt.Errorf("tables: mroute row %q has %d fields", line, len(f))
		}
		src, err := addr.Parse(f[0])
		if err != nil {
			return nil, err
		}
		grp, err := addr.Parse(f[1])
		if err != nil {
			return nil, err
		}
		rate, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			return nil, fmt.Errorf("tables: mroute rate %q", f[5])
		}
		pkts, err := strconv.ParseUint(f[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tables: mroute packets %q", f[6])
		}
		up, err := parseUptime(f[7])
		if err != nil {
			return nil, err
		}
		out = append(out, PairEntry{
			Source: src, Group: grp, Flags: f[2],
			RateKbps: rate, Packets: pkts, Uptime: up,
		})
	}
	return out, nil
}

// ParseIGMP maps a pre-processed `show ip igmp groups` dump.
//
//mantra:hotpath budget=3
func ParseIGMP(lines []string) ([]IGMPEntry, error) {
	var out []IGMPEntry
	for _, line := range lines {
		if strings.HasPrefix(line, "IGMP Group Membership") || strings.HasPrefix(line, "Group ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("tables: igmp row %q", line)
		}
		g, err := addr.Parse(f[0])
		if err != nil {
			return nil, err
		}
		h, err := addr.Parse(f[1])
		if err != nil {
			return nil, err
		}
		up, err := parseUptime(f[2])
		if err != nil {
			return nil, err
		}
		out = append(out, IGMPEntry{Group: g, Host: h, Uptime: up})
	}
	return out, nil
}

// ParseMSDP maps a pre-processed `show ip msdp sa-cache` dump.
//
//mantra:hotpath budget=3
func ParseMSDP(lines []string) ([]SAEntry, error) {
	var out []SAEntry
	for _, line := range lines {
		if strings.HasPrefix(line, "MSDP Source-Active Cache") || strings.HasPrefix(line, "Source ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("tables: msdp row %q", line)
		}
		s, err := addr.Parse(f[0])
		if err != nil {
			return nil, err
		}
		g, err := addr.Parse(f[1])
		if err != nil {
			return nil, err
		}
		var rp addr.IP
		if f[2] != "-" {
			if rp, err = addr.Parse(f[2]); err != nil {
				return nil, err
			}
		}
		up, err := parseUptime(f[3])
		if err != nil {
			return nil, err
		}
		out = append(out, SAEntry{Source: s, Group: g, OriginRP: rp, Uptime: up})
	}
	return out, nil
}

// ParseMBGP maps a pre-processed `show ip mbgp` dump.
//
//mantra:hotpath budget=5
func ParseMBGP(lines []string) ([]MBGPEntry, error) {
	var out []MBGPEntry
	for _, line := range lines {
		if strings.HasPrefix(line, "MBGP Table") || strings.HasPrefix(line, "Network ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return nil, fmt.Errorf("tables: mbgp row %q", line)
		}
		p, err := addr.ParsePrefix(f[0])
		if err != nil {
			return nil, err
		}
		e := MBGPEntry{Prefix: p}
		if f[1] == "local" {
			e.Local = true
		} else if e.NextHop, err = addr.Parse(f[1]); err != nil {
			return nil, err
		}
		if e.Uptime, err = parseUptime(f[2]); err != nil {
			return nil, err
		}
		for _, as := range f[3:] {
			v, err := strconv.Atoi(as)
			if err != nil {
				return nil, fmt.Errorf("tables: mbgp AS %q", as)
			}
			e.ASPath = append(e.ASPath, v)
		}
		out = append(out, e)
	}
	return out, nil
}

// BuildSnapshot assembles one router's cycle snapshot from its dumps,
// dispatching each dump to the right parser by command. Unknown commands
// are skipped. Every dump must share the target and timestamp.
//
//mantra:hotpath budget=4
func BuildSnapshot(dumps []collect.Dump) (*Snapshot, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("tables: no dumps")
	}
	sn := &Snapshot{Target: dumps[0].Target, At: dumps[0].At}
	for _, d := range dumps {
		if d.Target != sn.Target {
			return nil, fmt.Errorf("tables: mixed targets %q and %q", sn.Target, d.Target)
		}
		lines := collect.Preprocess(d.Raw)
		var err error
		switch d.Command {
		case "show ip dvmrp route":
			sn.Routes, err = ParseDVMRPRoutes(lines)
		case "show ip mroute":
			sn.Pairs, err = ParseMroute(lines)
		case "show ip igmp groups":
			sn.IGMP, err = ParseIGMP(lines)
		case "show ip msdp sa-cache":
			sn.SAs, err = ParseMSDP(lines)
		case "show ip mbgp":
			sn.MBGP, err = ParseMBGP(lines)
		}
		if err != nil {
			return nil, fmt.Errorf("tables: %s %q: %w", d.Target, d.Command, err)
		}
	}
	// Integrity check: the dump headers announce entry counts; a
	// mismatch means a truncated capture (a dropped telnet session was
	// a real failure mode for expect-driven collection).
	for _, d := range dumps {
		lines := collect.Preprocess(d.Raw)
		if len(lines) == 0 {
			continue
		}
		want, ok := headerCount(lines[0])
		if !ok {
			continue
		}
		var got int
		switch d.Command {
		case "show ip dvmrp route":
			got = len(sn.Routes)
		case "show ip mroute":
			got = len(sn.Pairs)
		case "show ip msdp sa-cache":
			got = len(sn.SAs)
		case "show ip mbgp":
			got = len(sn.MBGP)
		default:
			continue
		}
		if got != want {
			return nil, fmt.Errorf("tables: %s %q truncated: header says %d entries, parsed %d",
				d.Target, d.Command, want, got)
		}
	}
	// Anchor uptimes to absolute time so logged entries are stable
	// across cycles.
	for i := range sn.Pairs {
		sn.Pairs[i].Since = sn.At.Add(-sn.Pairs[i].Uptime)
	}
	for i := range sn.Routes {
		sn.Routes[i].Since = sn.At.Add(-sn.Routes[i].Uptime)
	}
	return sn, nil
}

// Participants derives the Participant table from the Pair table.
func (p PairTable) Participants() ParticipantTable {
	agg := make(map[addr.IP]*ParticipantEntry)
	order := make([]addr.IP, 0)
	for _, e := range p {
		pe := agg[e.Source]
		if pe == nil {
			pe = &ParticipantEntry{Host: e.Source}
			agg[e.Source] = pe
			order = append(order, e.Source)
		}
		pe.Groups++
		if e.RateKbps > pe.MaxRateKbps {
			pe.MaxRateKbps = e.RateKbps
		}
		if e.Uptime > pe.Uptime {
			pe.Uptime = e.Uptime
		}
	}
	out := make(ParticipantTable, 0, len(agg))
	for _, h := range order {
		out = append(out, *agg[h])
	}
	return out
}

// Sessions derives the Session table from the Pair table.
func (p PairTable) Sessions() SessionTable {
	agg := make(map[addr.IP]*SessionEntry)
	order := make([]addr.IP, 0)
	for _, e := range p {
		se := agg[e.Group]
		if se == nil {
			se = &SessionEntry{Group: e.Group, Protocol: protocolOf(e.Flags)}
			agg[e.Group] = se
			order = append(order, e.Group)
		}
		se.Density++
		se.TotalRateKbps += e.RateKbps
		se.Packets += e.Packets
		if e.Uptime > se.Uptime {
			se.Uptime = e.Uptime
		}
		if se.Protocol != protocolOf(e.Flags) {
			se.Protocol = "mixed"
		}
	}
	out := make(SessionTable, 0, len(agg))
	for _, g := range order {
		out = append(out, *agg[g])
	}
	return out
}

// protocolOf maps forwarding flags to the advertising protocol name.
func protocolOf(flags string) string {
	if strings.Contains(flags, "S") {
		return "pim"
	}
	if strings.Contains(flags, "D") {
		return "dvmrp"
	}
	return "unknown"
}
