package process

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
)

// RouteStability tracks per-prefix stability characteristics across
// cycles — the route-monitoring outputs §II-B enumerates: route
// lifetimes, frequency of changes, and individual route stability.
type RouteStability struct {
	// byPrefix accumulates per-prefix observations for one target.
	byPrefix map[addr.Prefix]*prefixHistory
	// cycles counts observations.
	cycles int
	last   map[addr.Prefix]bool
}

type prefixHistory struct {
	// present counts cycles the prefix was reachable.
	present int
	// flaps counts disappearances (present -> absent transitions).
	flaps int
	// currentSince is when the current reachability period began.
	currentSince time.Time
	// lifetimes collects completed reachability periods.
	lifetimes []time.Duration
	up        bool
}

// NewRouteStability returns an empty tracker.
func NewRouteStability() *RouteStability {
	return &RouteStability{
		byPrefix: make(map[addr.Prefix]*prefixHistory),
		last:     make(map[addr.Prefix]bool),
	}
}

// Observe folds one cycle's route table into the tracker.
//
//mantra:hotpath budget=2
func (rs *RouteStability) Observe(routes tables.RouteTable, at time.Time) {
	rs.cycles++
	cur := make(map[addr.Prefix]bool, len(routes))
	for _, r := range routes {
		cur[r.Prefix] = true
		h := rs.byPrefix[r.Prefix]
		if h == nil {
			h = &prefixHistory{}
			rs.byPrefix[r.Prefix] = h
		}
		h.present++
		if !h.up {
			h.up = true
			h.currentSince = at.Add(-r.Uptime)
		}
	}
	for p := range rs.last {
		if !cur[p] {
			h := rs.byPrefix[p]
			if h != nil && h.up {
				h.up = false
				h.flaps++
				h.lifetimes = append(h.lifetimes, at.Sub(h.currentSince))
			}
		}
	}
	rs.last = cur
}

// PrefixStats is the stability summary of one prefix.
type PrefixStats struct {
	Prefix addr.Prefix
	// Availability is the fraction of observed cycles the prefix was
	// reachable.
	Availability float64
	// Flaps counts complete disappear events.
	Flaps int
	// MeanLifetime averages completed reachability periods (0 if the
	// route never went away).
	MeanLifetime time.Duration
}

// Cycles returns the number of observations folded in.
func (rs *RouteStability) Cycles() int { return rs.cycles }

// TrackedPrefixes returns how many distinct prefixes have been seen.
func (rs *RouteStability) TrackedPrefixes() int { return len(rs.byPrefix) }

// Stats returns per-prefix summaries sorted by prefix.
func (rs *RouteStability) Stats() []PrefixStats {
	out := make([]PrefixStats, 0, len(rs.byPrefix))
	for p, h := range rs.byPrefix {
		st := PrefixStats{Prefix: p, Flaps: h.flaps}
		if rs.cycles > 0 {
			st.Availability = float64(h.present) / float64(rs.cycles)
		}
		if len(h.lifetimes) > 0 {
			var sum time.Duration
			for _, d := range h.lifetimes {
				sum += d
			}
			st.MeanLifetime = sum / time.Duration(len(h.lifetimes))
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// LeastStable returns the n prefixes with the most flaps (ties broken by
// lower availability) — the troubleshooting list a route monitor surfaces.
func (rs *RouteStability) LeastStable(n int) []PrefixStats {
	all := rs.Stats()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Flaps != all[j].Flaps {
			return all[i].Flaps > all[j].Flaps
		}
		if all[i].Availability != all[j].Availability {
			return all[i].Availability < all[j].Availability
		}
		return all[i].Prefix.Compare(all[j].Prefix) < 0
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Summary aggregates across prefixes.
type StabilitySummary struct {
	Prefixes int
	// StablePrefixes never flapped.
	StablePrefixes int
	// MeanAvailability averages per-prefix availability.
	MeanAvailability float64
	// TotalFlaps across all prefixes.
	TotalFlaps int
}

// Summary computes the aggregate view.
func (rs *RouteStability) Summary() StabilitySummary {
	var s StabilitySummary
	s.Prefixes = len(rs.byPrefix)
	if s.Prefixes == 0 {
		return s
	}
	// Sum in sorted prefix order: map iteration order varies run to run,
	// and the floating-point accumulation must not.
	keys := make([]addr.Prefix, 0, len(rs.byPrefix))
	for p := range rs.byPrefix {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	availSum := 0.0
	for _, p := range keys {
		h := rs.byPrefix[p]
		if h.flaps == 0 {
			s.StablePrefixes++
		}
		s.TotalFlaps += h.flaps
		availSum += float64(h.present) / float64(rs.cycles)
	}
	s.MeanAvailability = availSum / float64(s.Prefixes)
	return s
}
