package process

import (
	"math"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

func pair(s, g string, rate float64) tables.PairEntry {
	return tables.PairEntry{Source: addr.MustParse(s), Group: addr.MustParse(g), RateKbps: rate, Flags: "D"}
}

func route(p string, metric int) tables.RouteEntry {
	return tables.RouteEntry{Prefix: addr.MustParsePrefix(p), Metric: metric, Gateway: addr.MustParse("9.9.9.9")}
}

func snapAt(at time.Time, pairs tables.PairTable, routes tables.RouteTable) *tables.Snapshot {
	return &tables.Snapshot{Target: "fixw", At: at, Pairs: pairs, Routes: routes}
}

func TestIngestClassification(t *testing.T) {
	p := New()
	sn := snapAt(sim.Epoch, tables.PairTable{
		pair("1.1.1.1", "224.1.1.1", 64),  // sender, active session
		pair("2.2.2.2", "224.1.1.1", 1),   // passive in same session
		pair("3.3.3.3", "224.1.1.2", 0.5), // passive-only session
		pair("1.1.1.1", "224.1.1.2", 2),   // same host, second group, passive rate
	}, nil)
	st := p.Ingest(sn)
	if st.Sessions != 2 || st.Participants != 3 {
		t.Errorf("sessions=%d participants=%d", st.Sessions, st.Participants)
	}
	if st.Senders != 1 {
		t.Errorf("senders = %d", st.Senders)
	}
	if st.ActiveSessions != 1 {
		t.Errorf("active = %d", st.ActiveSessions)
	}
	if math.Abs(st.AvgDensity-2) > 1e-9 { // (2+2)/2
		t.Errorf("density = %f", st.AvgDensity)
	}
	if math.Abs(st.BandwidthKbps-67.5) > 1e-9 {
		t.Errorf("bandwidth = %f", st.BandwidthKbps)
	}
	if st.SingleMemberSessions != 0 {
		t.Errorf("single = %d", st.SingleMemberSessions)
	}
}

func TestSavedFactor(t *testing.T) {
	p := New()
	// One sender at 100 kbps to a 5-member session: unicast would cost
	// 4 copies; passive pairs cost the same either way.
	pairs := tables.PairTable{pair("1.1.1.1", "224.1.1.1", 100)}
	for i := 0; i < 4; i++ {
		pairs = append(pairs, pair(addr.V4(2, 2, 2, byte(i+1)).String(), "224.1.1.1", 0))
	}
	st := p.Ingest(snapAt(sim.Epoch, pairs, nil))
	if math.Abs(st.SavedFactor-4) > 1e-9 {
		t.Errorf("saved factor = %f, want 4", st.SavedFactor)
	}
}

func TestSeriesAndRatios(t *testing.T) {
	p := New()
	p.Ingest(snapAt(sim.Epoch, tables.PairTable{
		pair("1.1.1.1", "224.1.1.1", 64),
		pair("2.2.2.2", "224.1.1.2", 1),
	}, nil))
	if got := p.Series("fixw", MetricActiveRatio).Last(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("active ratio = %f", got)
	}
	if got := p.Series("fixw", MetricSenderRatio).Last(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("sender ratio = %f", got)
	}
	if p.Series("fixw", MetricSessions).Len() != 1 {
		t.Error("series not extended")
	}
	if p.Series("nope", MetricSessions) != nil {
		t.Error("unknown target should be nil")
	}
	if len(p.Targets()) != 1 || p.Targets()[0] != "fixw" {
		t.Errorf("targets = %v", p.Targets())
	}
}

func TestRouteChurn(t *testing.T) {
	p := New()
	at := sim.Epoch
	st := p.Ingest(snapAt(at, nil, tables.RouteTable{route("10.0.0.0/8", 1), route("11.0.0.0/8", 1)}))
	if st.RouteChurn != 0 {
		t.Errorf("first-cycle churn = %d", st.RouteChurn)
	}
	at = at.Add(time.Hour)
	st = p.Ingest(snapAt(at, nil, tables.RouteTable{route("10.0.0.0/8", 1), route("12.0.0.0/8", 1)}))
	if st.RouteChurn != 2 { // one added, one removed
		t.Errorf("churn = %d", st.RouteChurn)
	}
	if st.Routes != 2 {
		t.Errorf("routes = %d", st.Routes)
	}
}

func TestRouteInjectionDetection(t *testing.T) {
	p := New()
	at := sim.Epoch
	mk := func(n int) tables.RouteTable {
		var rt tables.RouteTable
		for i := 0; i < n; i++ {
			rt = append(rt, route(addr.PrefixFrom(addr.IP(uint32(i)<<12), 24).String(), 1))
		}
		return rt
	}
	// Stable baseline of ~500 routes.
	for i := 0; i < 10; i++ {
		p.Ingest(snapAt(at, nil, mk(500+i)))
		at = at.Add(30 * time.Minute)
	}
	if len(p.Anomalies()) != 0 {
		t.Fatalf("false positives: %+v", p.Anomalies())
	}
	// Injection: jump to 1400 for three cycles, then back.
	for i := 0; i < 3; i++ {
		p.Ingest(snapAt(at, nil, mk(1400)))
		at = at.Add(30 * time.Minute)
	}
	for i := 0; i < 3; i++ {
		p.Ingest(snapAt(at, nil, mk(505)))
		at = at.Add(30 * time.Minute)
	}
	an := p.Anomalies()
	if len(an) != 1 {
		t.Fatalf("anomalies = %+v", an)
	}
	if an[0].Kind != "route-injection" || an[0].Target != "fixw" {
		t.Errorf("anomaly = %+v", an[0])
	}
	// A second, separate episode is reported separately.
	for i := 0; i < 9; i++ {
		p.Ingest(snapAt(at, nil, mk(505)))
		at = at.Add(30 * time.Minute)
	}
	p.Ingest(snapAt(at, nil, mk(1500)))
	if len(p.Anomalies()) != 2 {
		t.Errorf("second episode not detected: %+v", p.Anomalies())
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{1, 2, 3, 4, 10} {
		s.Append(sim.Epoch.Add(time.Duration(i)*time.Hour), v)
	}
	mean, median, stddev, min, max := s.Stats()
	if mean != 4 || median != 3 || min != 1 || max != 10 {
		t.Errorf("stats = %f %f %f %f", mean, median, min, max)
	}
	if math.Abs(stddev-math.Sqrt(10)) > 1e-9 {
		t.Errorf("stddev = %f", stddev)
	}
	var empty Series
	if m, _, _, _, _ := empty.Stats(); m != 0 || empty.Last() != 0 {
		t.Error("empty series stats should be zero")
	}
}

func TestSeriesStatsEvenMedian(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{4, 1, 3, 2} {
		s.Append(sim.Epoch.Add(time.Duration(i)*time.Hour), v)
	}
	if _, median, _, _, _ := s.Stats(); median != 2.5 {
		t.Errorf("median = %f", median)
	}
}

func TestDensityDistribution(t *testing.T) {
	// 10 sessions: 8 singles, one with 2, one with 38 members.
	var pairs tables.PairTable
	for i := 0; i < 8; i++ {
		pairs = append(pairs, pair(addr.V4(1, 1, 1, byte(i+1)).String(), addr.V4(224, 5, 0, byte(i+1)).String(), 1))
	}
	pairs = append(pairs, pair("2.2.2.1", "224.6.0.1", 1), pair("2.2.2.2", "224.6.0.1", 1))
	for i := 0; i < 38; i++ {
		pairs = append(pairs, pair(addr.V4(3, 3, byte(i/250), byte(i%250+1)).String(), "224.7.0.1", 1))
	}
	sn := snapAt(sim.Epoch, pairs, nil)
	atMost2, topShare := DensityDistribution(sn, 2, 0.1)
	if math.Abs(atMost2-0.9) > 1e-9 {
		t.Errorf("atMost2 = %f", atMost2)
	}
	if math.Abs(topShare-38.0/48.0) > 1e-9 {
		t.Errorf("topShare = %f", topShare)
	}
	if a, b := DensityDistribution(snapAt(sim.Epoch, nil, nil), 2, 0.1); a != 0 || b != 0 {
		t.Error("empty snapshot should give zeros")
	}
}

func TestBusiestAndTopSummaries(t *testing.T) {
	sn := snapAt(sim.Epoch, tables.PairTable{
		pair("1.1.1.1", "224.1.1.1", 100),
		pair("2.2.2.2", "224.1.1.2", 500),
		pair("3.3.3.3", "224.1.1.3", 10),
	}, nil)
	top := BusiestSessions(sn, 2)
	if len(top) != 2 || top[0].Group != addr.MustParse("224.1.1.2") {
		t.Errorf("busiest = %+v", top)
	}
	snd := TopSenders(sn, 1)
	if len(snd) != 1 || snd[0].Host != addr.MustParse("2.2.2.2") {
		t.Errorf("top senders = %+v", snd)
	}
	if got := BusiestSessions(sn, 99); len(got) != 3 {
		t.Errorf("clamping failed: %d", len(got))
	}
}

func TestSummarizeRoutes(t *testing.T) {
	sn := snapAt(sim.Epoch, nil, tables.RouteTable{
		route("10.0.0.0/8", 1),
		route("11.0.0.0/8", 1),
		route("12.0.0.0/8", 3),
		{Prefix: addr.MustParsePrefix("13.0.0.0/8"), Local: true},
	})
	rs := SummarizeRoutes(sn)
	if rs.Total != 4 || rs.Local != 1 {
		t.Errorf("summary = %+v", rs)
	}
	if rs.MetricCounts[1] != 2 || rs.MetricCounts[3] != 1 {
		t.Errorf("metric counts = %v", rs.MetricCounts)
	}
	if rs.DistinctOrigin != 1 {
		t.Errorf("origins = %d", rs.DistinctOrigin)
	}
}
