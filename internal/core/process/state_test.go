package process

import (
	"bytes"
	"encoding/gob"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
)

// encodeStability gob-encodes an exported tracker the way the checkpoint
// writer does.
func encodeStability(t *testing.T, st *StabilityState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStabilityExportStateDeterministicBytes(t *testing.T) {
	// Regression for the mantralint mapiter finding in ExportState: Last
	// and Prefixes used to be appended in map-iteration order, so the
	// gob bytes that land in checkpoints differed run to run. Repeated
	// exports of the same tracker must now be byte-identical.
	rs := NewRouteStability()
	at := sim.Epoch
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			rs.Observe(rt("10.0.0.0/8", "11.0.0.0/8", "192.168.0.0/16", "172.16.0.0/12"), at)
		} else {
			rs.Observe(rt("10.0.0.0/8", "192.168.0.0/16"), at)
		}
		at = at.Add(30 * time.Minute)
	}
	first := encodeStability(t, rs.ExportState())
	for i := 0; i < 50; i++ {
		if got := encodeStability(t, rs.ExportState()); !bytes.Equal(got, first) {
			t.Fatalf("export %d: checkpoint bytes differ; map order leaked into the export", i)
		}
	}
	st := rs.ExportState()
	if !sort.SliceIsSorted(st.Last, func(i, j int) bool { return st.Last[i].Compare(st.Last[j]) < 0 }) {
		t.Error("Last is not sorted by prefix")
	}
	if !sort.SliceIsSorted(st.Prefixes, func(i, j int) bool { return st.Prefixes[i].Prefix.Compare(st.Prefixes[j].Prefix) < 0 }) {
		t.Error("Prefixes is not sorted by prefix")
	}
}

func TestStabilityExportImportRoundTripAfterSort(t *testing.T) {
	rs := NewRouteStability()
	at := sim.Epoch
	for i := 0; i < 4; i++ {
		rs.Observe(rt("10.0.0.0/8", "11.0.0.0/8"), at)
		at = at.Add(30 * time.Minute)
	}
	rs.Observe(rt("11.0.0.0/8"), at)
	got := StabilityFromState(rs.ExportState())
	if got.Cycles() != rs.Cycles() || got.TrackedPrefixes() != rs.TrackedPrefixes() {
		t.Fatalf("round trip: cycles=%d/%d prefixes=%d/%d",
			got.Cycles(), rs.Cycles(), got.TrackedPrefixes(), rs.TrackedPrefixes())
	}
	if got.Summary() != rs.Summary() {
		t.Fatalf("round trip summary = %+v, want %+v", got.Summary(), rs.Summary())
	}
}
