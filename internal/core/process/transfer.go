// Per-target state transfer: the seams shard handoff moves a single
// router's processing state through when a dead worker's targets are
// reassigned to survivors.
//
// ExportState/ImportState (state.go) move a whole processor — the
// checkpoint/recovery shape. Handoff is finer-grained: the new owner
// already has live state for its own targets and must graft exactly one
// more target in without disturbing them. ExportTarget captures one
// target's series, route set, baseline anchor, anomaly history and open
// episodes; ImportTarget splices them into another processor, assigning
// fresh ring IDs (the anomaly ring's ID contiguity invariant forbids
// inserting foreign IDs mid-ring). Fleet-level views dedup the
// resulting cross-shard copies by ownership; RollupOf/CrossTargetOf are
// the pure forms of the rollup computations, usable over any merged
// anomaly slice.
package process

import (
	"sort"

	"repro/internal/addr"
	"repro/internal/core/tsdb"
)

// TargetState is the exportable processing state of one target: the
// transfer unit for shard handoff. All fields are plain data (gob-safe)
// and deep-copied on export and import.
//
//mantra:codec pair=handoff-targetstate shape=88116d599d34e3ff
type TargetState struct {
	Target string
	Series map[Metric]*Series
	// Store carries the target's compressed long-horizon series, so a
	// handoff moves full history, not just the hot rings.
	Store     *tsdb.TargetState
	LastRoute map[addr.Prefix]bool
	// BaseStart anchors the detection baseline window; HasBase records
	// whether the target had one (index 0 is a valid anchor).
	BaseStart int
	HasBase   bool
	// Anomalies holds this target's episodes in ring (ID) order. IDs
	// are the exporter's local ring IDs; the importer re-keys them.
	Anomalies []Anomaly
	// Open references in-progress episodes by index into Anomalies.
	Open []OpenTransfer
}

// OpenTransfer is one in-progress episode in a TargetState: the index
// of its record in the Anomalies slice and the frozen baseline it
// resolves against.
//
//mantra:codec pair=handoff-opentransfer shape=abc195e293ebf3d7
type OpenTransfer struct {
	Kind   string
	Index  int
	Frozen float64
}

// ExportTarget deep-copies one target's processing state, or returns
// nil if the processor has never seen the target.
//
//mantra:statetransfer component=processor seam=export
func (p *Processor) ExportTarget(target string) *TargetState {
	ts, okSeries := p.series[target]
	routes, okRoute := p.lastRoute[target]
	base, okBase := p.baseStart[target]
	if !okSeries && !okRoute && !okBase {
		return nil
	}
	st := &TargetState{Target: target, BaseStart: base, HasBase: okBase}
	st.Store = p.store.ExportTarget(target)
	if okSeries {
		st.Series = make(map[Metric]*Series, len(ts))
		for m, s := range ts {
			st.Series[m] = copySeries(s)
		}
	}
	if okRoute {
		st.LastRoute = make(map[addr.Prefix]bool, len(routes))
		for pr, v := range routes {
			st.LastRoute[pr] = v
		}
	}
	idx := make(map[int]int) // local ring ID -> index in st.Anomalies
	for i := range p.anomalies {
		a := p.anomalies[i]
		if a.Target != target {
			continue
		}
		idx[a.ID] = len(st.Anomalies)
		st.Anomalies = append(st.Anomalies, a)
	}
	for kind, ep := range p.open[target] {
		i, ok := idx[ep.ID]
		if !ok {
			continue // episode's record evicted from the ring
		}
		st.Open = append(st.Open, OpenTransfer{Kind: kind, Index: i, Frozen: ep.Frozen})
	}
	// Sorted by kind: exports gob-encode into checkpoints, and map
	// iteration order must not leak into checkpoint bytes.
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].Kind < st.Open[j].Kind })
	return st
}

// ImportTarget replaces one target's processing state with a deep copy
// of st, leaving every other target untouched. The imported anomalies
// are appended to the ring with fresh local IDs — in ring-order they
// read as "history learned at import time", and any older copies of the
// same episodes already in this ring (e.g. from a previous ownership
// stint) remain; fleet views dedup by (target, kind, open-time) keeping
// the highest local ID. A nil st simply removes the target's state.
//
//mantra:statetransfer component=processor seam=import
func (p *Processor) ImportTarget(target string, st *TargetState) {
	delete(p.series, target)
	delete(p.lastRoute, target)
	delete(p.baseStart, target)
	delete(p.open, target)
	p.store.Remove(target)
	if st == nil {
		return
	}
	// Self-exported store state always round-trips.
	_ = p.store.ImportTarget(target, st.Store)
	if st.Series != nil {
		cp := make(map[Metric]*Series, len(st.Series))
		for m, s := range st.Series {
			sr := copySeries(s)
			sr.retain = p.retain
			sr.trim()
			cp[m] = sr
		}
		p.series[target] = cp
	}
	if st.LastRoute != nil {
		cp := make(map[addr.Prefix]bool, len(st.LastRoute))
		for pr, v := range st.LastRoute {
			cp[pr] = v
		}
		p.lastRoute[target] = cp
	}
	if st.HasBase {
		p.baseStart[target] = st.BaseStart
	}
	newID := make(map[int]int, len(st.Anomalies)) // index in st.Anomalies -> fresh ring ID
	for i, a := range st.Anomalies {
		a.Target = target
		a.ID = p.nextID
		p.nextID++
		newID[i] = a.ID
		p.appendAnomaly(a)
	}
	for _, ot := range st.Open {
		id, ok := newID[ot.Index]
		if !ok || id < p.firstID {
			continue // record evicted while appending the rest
		}
		if p.open[target] == nil {
			p.open[target] = make(map[string]openEpisode)
		}
		p.open[target][ot.Kind] = openEpisode{ID: id, Frozen: ot.Frozen}
	}
}

// RollupOf summarizes an anomaly slice exactly as Processor.Rollup
// summarizes the live ring — the pure form the shard fan-in uses over a
// merged fleet anomaly log. ByKind is sorted by kind name.
func RollupOf(anomalies []Anomaly, evicted uint64) AnomalyRollup {
	r := AnomalyRollup{
		Total:   len(anomalies) + int(evicted),
		Evicted: evicted,
	}
	byKind := make(map[string]*KindCount)
	var kinds []string
	for i := range anomalies {
		a := &anomalies[i]
		kc := byKind[a.Kind]
		if kc == nil {
			kc = &KindCount{Kind: a.Kind}
			byKind[a.Kind] = kc
			kinds = append(kinds, a.Kind)
		}
		kc.Total++
		if a.Resolved {
			r.Resolved++
			continue
		}
		r.Open++
		kc.Open++
		switch a.Severity {
		case SeverityCritical:
			r.Critical++
		case SeverityWarning:
			r.Warning++
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		r.ByKind = append(r.ByKind, *byKind[k])
	}
	return r
}

// CrossTargetOf correlates open episodes across targets in an anomaly
// slice — the pure form of Processor.CrossTarget, usable over a merged
// fleet anomaly log. Output is deterministic: incidents sorted by kind,
// targets by name, FirstSeen the earliest open episode's first-seen.
func CrossTargetOf(anomalies []Anomaly) []CrossTargetIncident {
	byKind := make(map[string]*CrossTargetIncident)
	var kinds []string
	for i := range anomalies {
		a := &anomalies[i]
		if a.Resolved {
			continue
		}
		ci := byKind[a.Kind]
		if ci == nil {
			ci = &CrossTargetIncident{Kind: a.Kind, Severity: a.Severity, FirstSeen: a.At}
			byKind[a.Kind] = ci
			kinds = append(kinds, a.Kind)
		}
		ci.Targets = append(ci.Targets, a.Target)
		if a.At.Before(ci.FirstSeen) {
			ci.FirstSeen = a.At
		}
		if a.Severity == SeverityCritical {
			ci.Severity = SeverityCritical
		}
	}
	sort.Strings(kinds)
	var out []CrossTargetIncident
	for _, k := range kinds {
		ci := byKind[k]
		if len(ci.Targets) < 2 {
			continue
		}
		sort.Strings(ci.Targets)
		out = append(out, *ci)
	}
	return out
}
