package process

import (
	"time"
)

// Resample buckets a series into fixed windows and returns a new series
// of per-bucket means stamped at each bucket's start — how the long-term
// plots (Figure 8's two-year view) are produced from cycle-granularity
// archives.
func Resample(s *Series, bucket time.Duration) *Series {
	out := &Series{}
	if s == nil || s.Len() == 0 || bucket <= 0 {
		return out
	}
	start := s.Times[0].Truncate(bucket)
	var sum float64
	var n int
	cur := start
	flush := func() {
		if n > 0 {
			out.Append(cur, sum/float64(n))
		}
		sum, n = 0, 0
	}
	for i, tm := range s.Times {
		b := tm.Truncate(bucket)
		if !b.Equal(cur) {
			flush()
			cur = b
		}
		sum += s.Values[i]
		n++
	}
	flush()
	return out
}

// Trend summarizes a series' long-term direction by comparing the means
// of its first and last quarters.
type Trend struct {
	EarlyMean, LateMean float64
	// Change is (late-early)/early; 0 when early is 0.
	Change float64
	// Direction is "rising", "falling" or "flat" (within ±10 %).
	Direction string
}

// TrendOf computes the trend of a series.
func TrendOf(s *Series) Trend {
	var t Trend
	if s == nil || s.Len() < 4 {
		t.Direction = "flat"
		return t
	}
	q := s.Len() / 4
	var early, late float64
	for i := 0; i < q; i++ {
		early += s.Values[i]
		late += s.Values[s.Len()-1-i]
	}
	t.EarlyMean = early / float64(q)
	t.LateMean = late / float64(q)
	if t.EarlyMean != 0 {
		t.Change = (t.LateMean - t.EarlyMean) / t.EarlyMean
	}
	switch {
	case t.Change > 0.1:
		t.Direction = "rising"
	case t.Change < -0.1:
		t.Direction = "falling"
	default:
		t.Direction = "flat"
	}
	return t
}
