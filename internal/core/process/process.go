// Package process implements Mantra's Data Processor: it turns normalized
// cycle snapshots into the monitoring results the paper presents — time
// series for the interactive graphs (Figures 3–9) and multi-column
// summary tables.
//
// The classification rules are the paper's (§IV-B): a participant sending
// above 4 kbps is a *sender* (content), at or below it a *passive
// participant* (control traffic such as RTCP feedback); a session with at
// least one sender is *active*. Bandwidth saved is estimated as the
// paper does: assuming every unicast path from a sender to each receiver
// would cross the router, unicast cost is density × stream rate.
package process

import (
	"math"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/core/tsdb"
)

// DefaultSenderThresholdKbps is the paper's content/control threshold.
const DefaultSenderThresholdKbps = 4.0

// Metric names the time series the processor maintains.
type Metric string

// The metrics Mantra plots, one per figure panel.
const (
	MetricSessions       Metric = "sessions"        // Fig 3 top-left
	MetricParticipants   Metric = "participants"    // Fig 3 top-right
	MetricActiveSessions Metric = "active_sessions" // Fig 3 bottom-left
	MetricSenders        Metric = "senders"         // Fig 3 bottom-right
	MetricAvgDensity     Metric = "avg_density"     // Fig 4
	MetricBandwidthKbps  Metric = "bandwidth_kbps"  // Fig 5 left
	MetricSavedFactor    Metric = "saved_factor"    // Fig 5 right
	MetricActiveRatio    Metric = "active_ratio"    // Fig 6 left
	MetricSenderRatio    Metric = "sender_ratio"    // Fig 6 right
	MetricRoutes         Metric = "routes"          // Figs 7–9
	MetricRouteChurn     Metric = "route_churn"     // route stability
	MetricSACache        Metric = "sa_cache"        // MSDP SA-cache size
	MetricMBGPRoutes     Metric = "mbgp_routes"     // MBGP RIB size
)

// AllMetrics lists every series the processor maintains.
var AllMetrics = []Metric{
	MetricSessions, MetricParticipants, MetricActiveSessions, MetricSenders,
	MetricAvgDensity, MetricBandwidthKbps, MetricSavedFactor,
	MetricActiveRatio, MetricSenderRatio, MetricRoutes, MetricRouteChurn,
	MetricSACache, MetricMBGPRoutes,
}

// Series is an x-y time series, the raw material of the output graphs.
// By default it grows without bound; with a retention cap (see
// Processor.SetSeriesRetain) it becomes the *hot ring* over the most
// recent points, with full history living in the processor's
// compressed store. Dropped/DroppedGaps record how much the ring has
// trimmed, so indices into the full history (TotalLen) stay stable.
type Series struct {
	Times  []time.Time
	Values []float64
	// Gaps holds the cycle timestamps at which collection failed and no
	// value could be recorded — explicit markers so degraded cycles are
	// visible in the outputs instead of silently missing.
	Gaps []time.Time
	// Dropped counts value points trimmed off the front by the
	// retention ring; DroppedGaps counts trimmed gap markers. Both are
	// zero while the series is unbounded.
	Dropped     int
	DroppedGaps int

	retain int
}

// Append adds one point.
func (s *Series) Append(t time.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
	s.trim()
}

// MarkGap records a failed cycle at time t.
func (s *Series) MarkGap(t time.Time) {
	s.Gaps = append(s.Gaps, t)
	s.trim()
}

// trim enforces the retention cap: the oldest value points beyond
// retain fall off the front (counted in Dropped), and gap markers older
// than the remaining window — or beyond retain of them — follow.
func (s *Series) trim() {
	if s.retain <= 0 {
		return
	}
	if n := len(s.Values) - s.retain; n > 0 {
		s.Times = s.Times[n:]
		s.Values = s.Values[n:]
		s.Dropped += n
	}
	cut := 0
	if len(s.Times) > 0 {
		for cut < len(s.Gaps) && s.Gaps[cut].Before(s.Times[0]) {
			cut++
		}
	}
	if n := len(s.Gaps) - s.retain; n > cut {
		cut = n
	}
	if cut > 0 {
		s.Gaps = s.Gaps[cut:]
		s.DroppedGaps += cut
	}
}

// GapCount returns the number of failed cycles recorded over the whole
// history, trimmed markers included.
func (s *Series) GapCount() int { return s.DroppedGaps + len(s.Gaps) }

// Len returns the number of points currently held in memory.
func (s *Series) Len() int { return len(s.Values) }

// TotalLen returns the number of points over the whole history: the
// in-memory window plus everything the retention ring has trimmed.
func (s *Series) TotalLen() int { return s.Dropped + len(s.Values) }

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Stats summarizes the series.
func (s *Series) Stats() (mean, median, stddev, min, max float64) {
	n := len(s.Values)
	if n == 0 {
		return 0, 0, 0, 0, 0
	}
	min, max = s.Values[0], s.Values[0]
	sum := 0.0
	for _, v := range s.Values {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean = sum / float64(n)
	varsum := 0.0
	for _, v := range s.Values {
		varsum += (v - mean) * (v - mean)
	}
	stddev = math.Sqrt(varsum / float64(n))
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return mean, median, stddev, min, max
}

// CycleStats is the per-cycle result of ingesting one snapshot.
type CycleStats struct {
	Target string
	At     time.Time

	Sessions       int
	Participants   int
	ActiveSessions int
	Senders        int
	// AvgDensity is the mean participants per session.
	AvgDensity float64
	// BandwidthKbps is the multicast traffic rate through the router.
	BandwidthKbps float64
	// SavedFactor is estimated unicast-equivalent bandwidth divided by
	// multicast bandwidth (Fig 5 right).
	SavedFactor float64
	// Routes is the DVMRP route-table size; RouteChurn the number of
	// prefixes added plus removed since the previous cycle.
	Routes     int
	RouteChurn int
	// SingleMemberSessions counts density-1 sessions (burst analysis).
	SingleMemberSessions int
	// SACache is the MSDP SA-cache size (0 at routers that are not RPs);
	// MBGPRoutes the MBGP RIB size (0 at non-speakers).
	SACache    int
	MBGPRoutes int
}

// Anomaly is a detected routing irregularity. An anomaly is an episode:
// it opens when a detector's signature first holds, LastSeen advances
// while the signature persists, and Resolved/ResolvedAt record the
// cycle at which the value returned to its pre-incident baseline.
type Anomaly struct {
	// ID is a monotonically increasing sequence number assigned at
	// detection, stable across ring eviction and crash recovery.
	ID     int       `json:"id"`
	Target string    `json:"target"`
	At     time.Time `json:"at"` // first seen
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
	// Severity is SeverityWarning or SeverityCritical.
	Severity string    `json:"severity"`
	LastSeen time.Time `json:"last_seen"`
	Resolved bool      `json:"resolved"`
	// ResolvedAt is zero while the episode is open.
	ResolvedAt time.Time `json:"resolved_at,omitzero"`
}

// Processor turns snapshots into series, summaries and anomalies.
type Processor struct {
	// SenderThresholdKbps classifies senders vs passive participants.
	SenderThresholdKbps float64
	// SpikeFactor triggers the route-injection detector when the route
	// count exceeds the trailing mean by this multiple (and SpikeMinJump
	// absolute routes). Consumed when the default detector set is built;
	// use SetDetectors for custom thresholds after construction.
	SpikeFactor  float64
	SpikeMinJump int
	// Window is the trailing window (in cycles) for anomaly baselines.
	Window int
	// MaxAnomalies caps the in-memory anomaly ring: the oldest records
	// are evicted once the cap is reached (AnomaliesEvicted counts
	// them). 0 means DefaultMaxAnomalies.
	MaxAnomalies int
	// GapResetCycles is how many consecutive collection gaps stale a
	// target's detection baseline: after an outage at least this long,
	// detection restarts from a fresh window instead of firing against
	// pre-outage values. 0 means DefaultGapResetCycles.
	GapResetCycles int

	series    map[string]map[Metric]*Series
	lastRoute map[string]map[addr.Prefix]bool
	// store mirrors every appended point into the compressed long-
	// horizon layer; retain caps the in-memory hot rings (0 unbounded).
	store  *tsdb.Store
	retain int

	// anomalies is the capped ring, ordered by ID; anomalies[i].ID ==
	// firstID+i. nextID is the next ID to assign; evicted counts records
	// dropped off the front.
	anomalies []Anomaly
	firstID   int
	nextID    int
	evicted   uint64
	// open tracks in-progress episodes per target and kind; baseStart
	// is the series index from which a target's baseline may draw
	// (advanced past long outages).
	open      map[string]map[string]openEpisode
	baseStart map[string]int

	detectors       []Detector
	customDetectors bool
}

// New returns a processor with the paper's thresholds and the default
// detector set.
func New() *Processor {
	p := &Processor{
		SenderThresholdKbps: DefaultSenderThresholdKbps,
		SpikeFactor:         1.5,
		SpikeMinJump:        200,
		Window:              12,
		series:              make(map[string]map[Metric]*Series),
		lastRoute:           make(map[string]map[addr.Prefix]bool),
		store:               tsdb.New(),
		open:                make(map[string]map[string]openEpisode),
		baseStart:           make(map[string]int),
	}
	p.detectors = DefaultDetectors(p.SpikeFactor, p.SpikeMinJump)
	return p
}

// Series returns the named series for a target, or nil. With a
// retention cap set this is the hot ring — the most recent points only;
// MaterializedSeries reads the full history back out of the store.
func (p *Processor) Series(target string, m Metric) *Series {
	ts := p.series[target]
	if ts == nil {
		return nil
	}
	return ts[m]
}

// Store exposes the compressed long-horizon series store every ingested
// point is mirrored into.
func (p *Processor) Store() *tsdb.Store { return p.store }

// SetSeriesRetain caps the in-memory hot rings at n points per series
// (0 restores unbounded growth). The cap is clamped to Window+2 so the
// anomaly detectors always see their full trailing baseline — detection
// output is byte-identical at any retention. Existing series are
// trimmed immediately.
func (p *Processor) SetSeriesRetain(n int) {
	if n > 0 {
		win := p.Window
		if win < 1 {
			win = 1
		}
		if min := win + 2; n < min {
			n = min
		}
	}
	p.retain = n
	for _, ts := range p.series {
		for _, s := range ts {
			s.retain = n
			s.trim()
		}
	}
}

// SeriesRetain returns the hot-ring cap, 0 when unbounded.
func (p *Processor) SeriesRetain() int { return p.retain }

// Query answers a store query over this processor's targets: the
// unsharded execution path behind /query.
func (p *Processor) Query(q tsdb.Query) (tsdb.Result, error) {
	return p.store.Query(q)
}

// MaterializedSeries reconstructs a target's full series from the
// compressed store — the streamed counterpart of Series, unaffected by
// the retention ring. Compression is lossless, so the result is
// point-for-point identical to an unbounded hot ring. Returns nil for
// an unseen series.
func (p *Processor) MaterializedSeries(target string, m Metric) *Series {
	pts, err := p.store.Materialize(target, string(m))
	if err != nil || pts == nil {
		return nil
	}
	s := &Series{}
	for _, pt := range pts {
		if pt.Gap {
			s.Gaps = append(s.Gaps, time.Unix(0, pt.T).UTC())
		} else {
			s.Times = append(s.Times, time.Unix(0, pt.T).UTC())
			s.Values = append(s.Values, pt.V)
		}
	}
	return s
}

// Targets returns the targets seen so far, sorted.
func (p *Processor) Targets() []string {
	out := make([]string, 0, len(p.series))
	for t := range p.series {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Anomalies returns the retained anomalies sorted by ID — detection
// order, deterministic across runs. The slice is a copy; records
// evicted from the capped ring (AnomaliesEvicted) are not included.
func (p *Processor) Anomalies() []Anomaly {
	return append([]Anomaly(nil), p.anomalies...)
}

func (p *Processor) seriesFor(target string) map[Metric]*Series {
	ts := p.series[target]
	if ts == nil {
		ts = make(map[Metric]*Series, len(AllMetrics))
		for _, m := range AllMetrics {
			ts[m] = &Series{retain: p.retain}
		}
		p.series[target] = ts
	}
	return ts
}

// MarkGap records a failed collection cycle for a target at time at: every
// series of that target gets an explicit gap marker, so downstream
// consumers can distinguish "no data because the target was down" from
// "series not yet started". The target's series are created if absent.
func (p *Processor) MarkGap(target string, at time.Time) {
	ns := at.UnixNano()
	for m, s := range p.seriesFor(target) {
		s.MarkGap(at)
		p.store.AppendGap(target, string(m), ns)
	}
}

// Ingest processes one cycle snapshot: computes the cycle statistics,
// extends every series, and runs anomaly detection.
func (p *Processor) Ingest(sn *tables.Snapshot) CycleStats {
	return p.ingest(sn, len(sn.SAs), len(sn.MBGP))
}

// IngestCounts ingests a snapshot reconstructed from the delta log,
// which stores the MSDP/MBGP table magnitudes rather than their
// contents — the archive-recovery replay path. It is identical to
// Ingest except the two counts are supplied instead of measured, so a
// replayed cycle extends the sa_cache/mbgp_routes series (and drives
// the detectors) with exactly the values the original ingest saw.
func (p *Processor) IngestCounts(sn *tables.Snapshot, saCache, mbgpRoutes int) CycleStats {
	return p.ingest(sn, saCache, mbgpRoutes)
}

func (p *Processor) ingest(sn *tables.Snapshot, saCache, mbgpRoutes int) CycleStats {
	st := CycleStats{Target: sn.Target, At: sn.At}

	sessions := sn.Pairs.Sessions()
	participants := sn.Pairs.Participants()
	st.Sessions = len(sessions)
	st.Participants = len(participants)

	densitySum := 0
	for _, s := range sessions {
		densitySum += s.Density
		if s.Density == 1 {
			st.SingleMemberSessions++
		}
	}
	if st.Sessions > 0 {
		st.AvgDensity = float64(densitySum) / float64(st.Sessions)
	}

	for _, pe := range participants {
		if pe.MaxRateKbps > p.SenderThresholdKbps {
			st.Senders++
		}
	}

	// Active sessions and bandwidth-saved from per-pair rates.
	activeGroups := make(map[addr.IP]bool)
	unicastKbps := 0.0
	densityOf := make(map[addr.IP]int, len(sessions))
	for _, s := range sessions {
		densityOf[s.Group] = s.Density
	}
	for _, e := range sn.Pairs {
		st.BandwidthKbps += e.RateKbps
		if e.RateKbps > p.SenderThresholdKbps {
			activeGroups[e.Group] = true
			// The unicast equivalent of this stream: one copy per
			// receiver (density includes the sender itself).
			receivers := densityOf[e.Group] - 1
			if receivers < 1 {
				receivers = 1
			}
			unicastKbps += e.RateKbps * float64(receivers)
		} else {
			unicastKbps += e.RateKbps
		}
	}
	st.ActiveSessions = len(activeGroups)
	if st.BandwidthKbps > 0 {
		st.SavedFactor = unicastKbps / st.BandwidthKbps
	}

	// Route table size and churn against the previous cycle.
	st.Routes = len(sn.Routes)
	cur := make(map[addr.Prefix]bool, len(sn.Routes))
	for _, r := range sn.Routes {
		cur[r.Prefix] = true
	}
	if prev, ok := p.lastRoute[sn.Target]; ok {
		for pr := range cur {
			if !prev[pr] {
				st.RouteChurn++
			}
		}
		for pr := range prev {
			if !cur[pr] {
				st.RouteChurn++
			}
		}
	}
	p.lastRoute[sn.Target] = cur

	st.SACache = saCache
	st.MBGPRoutes = mbgpRoutes

	// Extend series: the in-memory hot ring and the compressed store
	// both receive every point.
	ts := p.seriesFor(sn.Target)
	ns := sn.At.UnixNano()
	app := func(m Metric, v float64) {
		ts[m].Append(sn.At, v)
		p.store.Append(sn.Target, string(m), ns, v)
	}
	app(MetricSessions, float64(st.Sessions))
	app(MetricParticipants, float64(st.Participants))
	app(MetricActiveSessions, float64(st.ActiveSessions))
	app(MetricSenders, float64(st.Senders))
	app(MetricAvgDensity, st.AvgDensity)
	app(MetricBandwidthKbps, st.BandwidthKbps)
	app(MetricSavedFactor, st.SavedFactor)
	if st.Sessions > 0 {
		app(MetricActiveRatio, float64(st.ActiveSessions)/float64(st.Sessions))
	} else {
		app(MetricActiveRatio, 0)
	}
	if st.Participants > 0 {
		app(MetricSenderRatio, float64(st.Senders)/float64(st.Participants))
	} else {
		app(MetricSenderRatio, 0)
	}
	app(MetricRoutes, float64(st.Routes))
	app(MetricRouteChurn, float64(st.RouteChurn))
	app(MetricSACache, float64(st.SACache))
	app(MetricMBGPRoutes, float64(st.MBGPRoutes))

	p.detect(sn.Target, sn.At, ts)
	return st
}

// DensityDistribution computes, for one snapshot, the fraction of
// sessions with at most k members and the participant share held by the
// top fraction of sessions — the §IV-B distribution claims.
func DensityDistribution(sn *tables.Snapshot, k int, topFrac float64) (atMostK float64, topShare float64) {
	sessions := sn.Pairs.Sessions()
	if len(sessions) == 0 {
		return 0, 0
	}
	cnt := 0
	sizes := make([]int, 0, len(sessions))
	total := 0
	for _, s := range sessions {
		if s.Density <= k {
			cnt++
		}
		sizes = append(sizes, s.Density)
		total += s.Density
	}
	atMostK = float64(cnt) / float64(len(sessions))
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := int(math.Ceil(topFrac * float64(len(sizes))))
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, v := range sizes[:top] {
		sum += v
	}
	if total > 0 {
		topShare = float64(sum) / float64(total)
	}
	return atMostK, topShare
}
