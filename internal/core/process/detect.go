// Anomaly detection: the pluggable detector framework behind the
// paper's §V incident findings (the October 14 1998 unicast-injection
// event and its kin).
//
// A Detector watches one result series per target and describes an
// incident signature — a spike, a collapse, or a sustained run. The
// processor runs every registered detector after each ingest and keeps
// episode state per (target, kind): an anomaly opens when the signature
// first holds against a trailing baseline, stays open (LastSeen
// advancing) while the signature persists, and resolves when the value
// returns to the baseline *frozen at detection time*. Freezing matters:
// a long incident poisons its own trailing window, and comparing
// against the live window would resolve the episode while the incident
// still rages.
//
// Collection gaps never resolve an episode — detectors only run on real
// data, so a router that goes dark mid-incident keeps its anomaly open
// until evidence of recovery arrives. A long outage (GapResetCycles or
// more consecutive gaps) instead resets the baseline: the world may
// have legitimately changed while the monitor was blind, so the first
// post-outage cycle seeds a fresh window rather than firing against a
// stale one.
package process

import (
	"fmt"
	"time"
)

// Anomaly kinds raised by the default detector set.
const (
	KindRouteInjection = "route-injection"
	KindRPLoss         = "rp-loss"
	KindSAStorm        = "sa-storm"
	KindRouteLeak      = "route-leak"
	KindRouteFlap      = "route-flap"
)

// Anomaly severities.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// DefaultMaxAnomalies caps the in-memory anomaly ring; see
// Processor.MaxAnomalies.
const DefaultMaxAnomalies = 1024

// DefaultGapResetCycles is how many consecutive collection gaps stale a
// target's detection baseline; see Processor.GapResetCycles.
const DefaultGapResetCycles = 3

// Detector is one pluggable incident signature over a result series.
// Implementations must be deterministic pure functions of their inputs:
// detection order and anomaly content feed byte-compared outputs.
type Detector interface {
	// Kind names the anomalies this detector raises.
	Kind() string
	// Observes names the series the detector watches.
	Observes() Metric
	// Severity classifies raised anomalies (SeverityWarning/Critical).
	Severity() string
	// MinBase is the minimum number of baseline points (before the
	// current one) required before the detector may fire; at least 1 is
	// always enforced, so nothing fires on a target's first cycle.
	MinBase() int
	// Assess evaluates the newest value cur against the trailing
	// baseline window base (oldest first, current value excluded) and
	// reports whether the incident signature holds, with a human detail.
	Assess(cur float64, base []float64) (raise bool, detail string)
	// Cleared reports whether an open episode has subsided: cur is the
	// newest value, frozen the baseline mean captured when the episode
	// opened.
	Cleared(cur, frozen float64) bool
}

// SpikeDetector raises when a value jumps above its trailing mean by
// both a multiplicative factor and an absolute amount — the step-jump
// signature of route injections, SA storms and route leaks.
type SpikeDetector struct {
	KindName string
	Watch    Metric
	Sev      string
	// Factor and MinJump gate the jump: cur > mean*Factor and
	// cur-mean > MinJump, with mean > 0.
	Factor  float64
	MinJump float64
}

func (d *SpikeDetector) Kind() string     { return d.KindName }
func (d *SpikeDetector) Observes() Metric { return d.Watch }
func (d *SpikeDetector) Severity() string { return d.Sev }
func (d *SpikeDetector) MinBase() int     { return 1 }

func (d *SpikeDetector) Assess(cur float64, base []float64) (bool, string) {
	m := meanOf(base)
	if m > 0 && cur > m*d.Factor && cur-m > d.MinJump {
		return true, fmt.Sprintf("%s jumped to %.0f against trailing mean %.0f", d.Watch, cur, m)
	}
	return false, ""
}

func (d *SpikeDetector) Cleared(cur, frozen float64) bool {
	return !(cur > frozen*d.Factor && cur-frozen > d.MinJump)
}

// CollapseDetector raises when a value that had an established baseline
// collapses toward zero — the signature of a failed RP whose SA cache
// empties instantly.
type CollapseDetector struct {
	KindName string
	Watch    Metric
	Sev      string
	// MinLevel is the baseline mean required before a collapse is
	// meaningful; CollapseFrac the fraction of the mean at or below
	// which the value counts as collapsed; RecoverFrac the fraction of
	// the frozen baseline the value must regain to resolve.
	MinLevel     float64
	CollapseFrac float64
	RecoverFrac  float64
}

func (d *CollapseDetector) Kind() string     { return d.KindName }
func (d *CollapseDetector) Observes() Metric { return d.Watch }
func (d *CollapseDetector) Severity() string { return d.Sev }
func (d *CollapseDetector) MinBase() int     { return 1 }

func (d *CollapseDetector) Assess(cur float64, base []float64) (bool, string) {
	m := meanOf(base)
	if m >= d.MinLevel && cur <= m*d.CollapseFrac {
		return true, fmt.Sprintf("%s collapsed to %.0f from trailing mean %.0f", d.Watch, cur, m)
	}
	return false, ""
}

func (d *CollapseDetector) Cleared(cur, frozen float64) bool {
	return cur >= frozen*d.RecoverFrac
}

// SustainedDetector raises when a value stays at or above a threshold
// for Run consecutive cycles — the signature of a prune storm flapping
// routes every cycle, as opposed to a one-off churn burst.
type SustainedDetector struct {
	KindName string
	Watch    Metric
	Sev      string
	// Threshold is the per-cycle level; Run how many consecutive cycles
	// (including the current one) must reach it.
	Threshold float64
	Run       int
}

func (d *SustainedDetector) Kind() string     { return d.KindName }
func (d *SustainedDetector) Observes() Metric { return d.Watch }
func (d *SustainedDetector) Severity() string { return d.Sev }
func (d *SustainedDetector) MinBase() int     { return d.Run - 1 }

func (d *SustainedDetector) Assess(cur float64, base []float64) (bool, string) {
	if cur < d.Threshold {
		return false, ""
	}
	for i := 0; i < d.Run-1; i++ {
		if base[len(base)-1-i] < d.Threshold {
			return false, ""
		}
	}
	return true, fmt.Sprintf("%s held at or above %.0f for %d consecutive cycles (now %.0f)",
		d.Watch, d.Threshold, d.Run, cur)
}

func (d *SustainedDetector) Cleared(cur, frozen float64) bool {
	return cur < d.Threshold
}

// DefaultDetectors returns the standard detector set: the paper's
// route-injection step detector (parameterized by the given factor and
// jump) plus the incident-library signatures for RP loss, SA storms,
// MBGP route leaks, and prune-storm route flapping.
func DefaultDetectors(spikeFactor float64, spikeMinJump int) []Detector {
	return []Detector{
		&SpikeDetector{KindName: KindRouteInjection, Watch: MetricRoutes,
			Sev: SeverityCritical, Factor: spikeFactor, MinJump: float64(spikeMinJump)},
		&CollapseDetector{KindName: KindRPLoss, Watch: MetricSACache,
			Sev: SeverityCritical, MinLevel: 3, CollapseFrac: 0.25, RecoverFrac: 0.3},
		&SpikeDetector{KindName: KindSAStorm, Watch: MetricSACache,
			Sev: SeverityWarning, Factor: 2.0, MinJump: 30},
		&SpikeDetector{KindName: KindRouteLeak, Watch: MetricMBGPRoutes,
			Sev: SeverityCritical, Factor: 1.5, MinJump: 10},
		&SustainedDetector{KindName: KindRouteFlap, Watch: MetricRouteChurn,
			Sev: SeverityWarning, Threshold: 50, Run: 3},
	}
}

// SetDetectors replaces the detector set. Detectors run in slice order
// on every ingest; order is part of the deterministic anomaly log, so
// register them once at startup, before the first cycle.
func (p *Processor) SetDetectors(ds ...Detector) {
	p.detectors = append([]Detector(nil), ds...)
	p.customDetectors = true
}

// Detectors returns the registered detector set in run order.
func (p *Processor) Detectors() []Detector {
	return append([]Detector(nil), p.detectors...)
}

// openEpisode tracks one in-progress anomaly: the ring ID of its
// Anomaly record and the baseline mean frozen when it opened.
type openEpisode struct {
	ID     int
	Frozen float64
}

// appendAnomaly adds a to the capped ring, evicting the oldest records
// (and dropping any episode they carried) once MaxAnomalies is reached.
func (p *Processor) appendAnomaly(a Anomaly) {
	max := p.MaxAnomalies
	if max <= 0 {
		max = DefaultMaxAnomalies
	}
	p.anomalies = append(p.anomalies, a)
	for len(p.anomalies) > max {
		ev := p.anomalies[0]
		p.anomalies = p.anomalies[1:]
		p.firstID++
		p.evicted++
		if ep, ok := p.open[ev.Target][ev.Kind]; ok && ep.ID == ev.ID {
			delete(p.open[ev.Target], ev.Kind)
		}
	}
}

// detect runs the registered detectors against the target's freshly
// extended series. Called from Ingest only — collection gaps never
// reach here, which is what keeps open episodes from resolving while
// the monitor is blind.
func (p *Processor) detect(target string, at time.Time, ts map[Metric]*Series) {
	ref := ts[MetricRoutes]
	// Indices are absolute — positions in the full history — so the
	// baseline anchor survives the retention ring trimming the front of
	// the in-memory window; they are translated to ring positions only
	// when slicing. The retention clamp (SetSeriesRetain keeps at least
	// Window+2 points) guarantees the trailing baseline is resident,
	// which is what makes detection byte-identical at any retention.
	n := ref.TotalLen()
	if n == 0 {
		return
	}
	reset := false
	if n == 1 {
		p.baseStart[target] = 0
		reset = true
	} else if p.staleBaseline(ref) {
		// The monitor was blind long enough that the pre-outage window
		// can no longer anchor a judgement: seed a fresh baseline here.
		p.baseStart[target] = n - 1
		reset = true
	}
	win := p.Window
	if win < 1 {
		win = 1
	}
	for _, d := range p.detectors {
		s := ts[d.Observes()]
		if s == nil || s.TotalLen() != n || s.Len() == 0 {
			continue
		}
		cur := s.Values[s.Len()-1]
		if ep, ok := p.open[target][d.Kind()]; ok {
			a := &p.anomalies[ep.ID-p.firstID]
			if d.Cleared(cur, ep.Frozen) {
				a.Resolved = true
				a.ResolvedAt = at
				delete(p.open[target], d.Kind())
			} else {
				a.LastSeen = at
			}
			continue
		}
		if reset {
			continue
		}
		lo := p.baseStart[target]
		if m := n - 1 - win; m > lo {
			lo = m
		}
		// Translate the absolute window to ring positions.
		phys := lo - s.Dropped
		if phys < 0 {
			phys = 0
		}
		base := s.Values[phys : s.Len()-1]
		need := d.MinBase()
		if need < 1 {
			need = 1
		}
		if len(base) < need {
			continue
		}
		raise, detail := d.Assess(cur, base)
		if !raise {
			continue
		}
		id := p.nextID
		p.nextID++
		if p.open[target] == nil {
			p.open[target] = make(map[string]openEpisode)
		}
		p.open[target][d.Kind()] = openEpisode{ID: id, Frozen: meanOf(base)}
		p.appendAnomaly(Anomaly{
			ID:       id,
			Target:   target,
			At:       at,
			Kind:     d.Kind(),
			Detail:   detail,
			Severity: d.Severity(),
			LastSeen: at,
		})
	}
}

// staleBaseline reports whether GapResetCycles or more consecutive
// collection gaps separate the newest point from the previous one. It
// reads only the trailing edge of the ring, which the retention clamp
// keeps resident.
func (p *Processor) staleBaseline(s *Series) bool {
	limit := p.GapResetCycles
	if limit <= 0 {
		limit = DefaultGapResetCycles
	}
	if s.Len() < 2 {
		return false
	}
	prev := s.Times[s.Len()-2]
	gaps := 0
	for i := len(s.Gaps) - 1; i >= 0; i-- {
		if !s.Gaps[i].After(prev) {
			break
		}
		gaps++
		if gaps >= limit {
			return true
		}
	}
	return false
}

// meanOf averages a slice in index order (deterministic summation).
func meanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// OpenAnomalies returns the currently unresolved anomalies in detection
// order.
func (p *Processor) OpenAnomalies() []Anomaly {
	var out []Anomaly
	for _, a := range p.anomalies {
		if !a.Resolved {
			out = append(out, a)
		}
	}
	return out
}

// AnomaliesEvicted returns how many anomalies the capped ring has
// dropped; Anomalies() holds the most recent MaxAnomalies records.
func (p *Processor) AnomaliesEvicted() uint64 { return p.evicted }

// KindCount is one kind's entry in the anomaly rollup.
type KindCount struct {
	Kind  string `json:"kind"`
	Open  int    `json:"open"`
	Total int    `json:"total"`
}

// AnomalyRollup is the aggregate anomaly health view served under
// /health: counts over the retained ring plus the eviction counter.
type AnomalyRollup struct {
	// Total counts every anomaly ever raised (retained + evicted);
	// Open/Resolved/Critical/Warning count the retained ring.
	Total    int         `json:"total"`
	Open     int         `json:"open"`
	Resolved int         `json:"resolved"`
	Evicted  uint64      `json:"evicted"`
	Critical int         `json:"critical"`
	Warning  int         `json:"warning"`
	ByKind   []KindCount `json:"by_kind,omitempty"`
}

// Rollup summarizes the anomaly ring, deterministically (ByKind sorted
// by kind name).
func (p *Processor) Rollup() AnomalyRollup {
	return RollupOf(p.anomalies, p.evicted)
}

// CrossTargetIncident is the cross-target correlation view: one anomaly
// kind currently open at two or more targets at once — the signature of
// a network-wide incident rather than a single sick router.
type CrossTargetIncident struct {
	Kind      string    `json:"kind"`
	Severity  string    `json:"severity"`
	Targets   []string  `json:"targets"`
	FirstSeen time.Time `json:"first_seen"`
}

// CrossTarget correlates open episodes across targets. Output is
// deterministic: incidents sorted by kind, targets sorted by name,
// FirstSeen the earliest open episode's first-seen time.
func (p *Processor) CrossTarget() []CrossTargetIncident {
	return CrossTargetOf(p.anomalies)
}
