// Checkpoint state for the processor and route-stability trackers.
//
// The durable archive (internal/core/logger) checkpoints full monitor
// state so restart recovery is bounded by the WAL tail length rather
// than the whole collection history. The processor's series and the
// stability trackers' per-prefix histories are pure functions of the
// ingested snapshots, so exporting and re-importing them is exactly
// equivalent to re-ingesting every archived cycle — just cheaper.
package process

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tsdb"
)

// State is the exportable form of a Processor. All fields are plain data
// so the state gob-encodes; Series pointers are deep-copied on export and
// import, never shared with a live processor.
//
//mantra:codec pair=ckpt-procstate shape=eb07b6abc56b8bfd
type State struct {
	SenderThresholdKbps float64
	SpikeFactor         float64
	SpikeMinJump        int
	Window              int
	MaxAnomalies        int
	GapResetCycles      int
	SeriesRetain        int

	Series map[string]map[Metric]*Series
	// Store is the compressed long-horizon layer's state. Sealed blocks
	// checkpoint far smaller than the raw Series export they replace.
	Store     *tsdb.State
	LastRoute map[string]map[addr.Prefix]bool
	Anomalies []Anomaly
	NextID    int
	FirstID   int
	Evicted   uint64
	Open      []OpenEpisodeState
	BaseStart map[string]int
}

// OpenEpisodeState is the exportable form of one in-progress anomaly
// episode: which ring entry it updates and the baseline frozen at
// detection time that resolution is judged against.
//
//mantra:codec pair=ckpt-openepisode shape=e555d28bcb060756
type OpenEpisodeState struct {
	Target string
	Kind   string
	ID     int
	Frozen float64
}

func copySeries(s *Series) *Series {
	return &Series{
		Times:       append([]time.Time(nil), s.Times...),
		Values:      append([]float64(nil), s.Values...),
		Gaps:        append([]time.Time(nil), s.Gaps...),
		Dropped:     s.Dropped,
		DroppedGaps: s.DroppedGaps,
		retain:      s.retain,
	}
}

// ExportState deep-copies the processor's accumulated state.
//
//mantra:statetransfer component=processor seam=export
func (p *Processor) ExportState() *State {
	st := &State{
		SenderThresholdKbps: p.SenderThresholdKbps,
		SpikeFactor:         p.SpikeFactor,
		SpikeMinJump:        p.SpikeMinJump,
		Window:              p.Window,
		MaxAnomalies:        p.MaxAnomalies,
		GapResetCycles:      p.GapResetCycles,
		SeriesRetain:        p.retain,
		Series:              make(map[string]map[Metric]*Series, len(p.series)),
		Store:               p.store.Export(),
		LastRoute:           make(map[string]map[addr.Prefix]bool, len(p.lastRoute)),
		Anomalies:           append([]Anomaly(nil), p.anomalies...),
		NextID:              p.nextID,
		FirstID:             p.firstID,
		Evicted:             p.evicted,
		BaseStart:           make(map[string]int, len(p.baseStart)),
	}
	for target, ts := range p.series {
		cp := make(map[Metric]*Series, len(ts))
		for m, s := range ts {
			cp[m] = copySeries(s)
		}
		st.Series[target] = cp
	}
	for target, routes := range p.lastRoute {
		cp := make(map[addr.Prefix]bool, len(routes))
		for pr, v := range routes {
			cp[pr] = v
		}
		st.LastRoute[target] = cp
	}
	for target, v := range p.baseStart {
		st.BaseStart[target] = v
	}
	// The open-episode map is exported sorted by target then kind: the
	// export gob-encodes straight into checkpoints, so map-iteration
	// order here would make checkpoint bytes differ run to run.
	for target, eps := range p.open {
		for kind, ep := range eps {
			st.Open = append(st.Open, OpenEpisodeState{
				Target: target,
				Kind:   kind,
				ID:     ep.ID,
				Frozen: ep.Frozen,
			})
		}
	}
	sort.Slice(st.Open, func(i, j int) bool {
		if st.Open[i].Target != st.Open[j].Target {
			return st.Open[i].Target < st.Open[j].Target
		}
		return st.Open[i].Kind < st.Open[j].Kind
	})
	return st
}

// ImportState replaces the processor's accumulated state with a deep copy
// of st. It mutates the receiver in place — consumers holding the
// *Processor (the HTTP server does) observe the restored state without
// re-wiring.
//
//mantra:statetransfer component=processor seam=import
func (p *Processor) ImportState(st *State) {
	if st == nil {
		return
	}
	p.SenderThresholdKbps = st.SenderThresholdKbps
	p.SpikeFactor = st.SpikeFactor
	p.SpikeMinJump = st.SpikeMinJump
	p.Window = st.Window
	p.retain = st.SeriesRetain
	p.series = make(map[string]map[Metric]*Series, len(st.Series))
	for target, ts := range st.Series {
		cp := make(map[Metric]*Series, len(ts))
		for m, s := range ts {
			sr := copySeries(s)
			sr.retain = p.retain
			sr.trim()
			cp[m] = sr
		}
		p.series[target] = cp
	}
	// Self-exported store state always round-trips; the checkpoint blob
	// carrying it is CRC-validated before it gets here.
	_ = p.store.Import(st.Store)
	p.lastRoute = make(map[string]map[addr.Prefix]bool, len(st.LastRoute))
	for target, routes := range st.LastRoute {
		cp := make(map[addr.Prefix]bool, len(routes))
		for pr, v := range routes {
			cp[pr] = v
		}
		p.lastRoute[target] = cp
	}
	p.MaxAnomalies = st.MaxAnomalies
	p.GapResetCycles = st.GapResetCycles
	p.anomalies = append([]Anomaly(nil), st.Anomalies...)
	p.nextID = st.NextID
	p.firstID = st.FirstID
	p.evicted = st.Evicted
	p.baseStart = make(map[string]int, len(st.BaseStart))
	for target, v := range st.BaseStart {
		p.baseStart[target] = v
	}
	p.open = make(map[string]map[string]openEpisode, len(st.Open))
	for _, ep := range st.Open {
		m := p.open[ep.Target]
		if m == nil {
			m = make(map[string]openEpisode)
			p.open[ep.Target] = m
		}
		m[ep.Kind] = openEpisode{ID: ep.ID, Frozen: ep.Frozen}
	}
	// Detector thresholds travel with the state; rebuild the default set
	// from them unless the consumer installed a custom set explicitly.
	if !p.customDetectors {
		p.detectors = DefaultDetectors(p.SpikeFactor, p.SpikeMinJump)
	}
}

// PrefixState is the exportable per-prefix history of a RouteStability
// tracker.
//
//mantra:codec pair=ckpt-prefixstate shape=5ea21842285c6a93
type PrefixState struct {
	Prefix       addr.Prefix
	Present      int
	Flaps        int
	CurrentSince time.Time
	Lifetimes    []time.Duration
	Up           bool
}

// StabilityState is the exportable form of a RouteStability tracker.
//
//mantra:codec pair=ckpt-stabilitystate shape=e1eaa417f40abb62
type StabilityState struct {
	Cycles   int
	Last     []addr.Prefix
	Prefixes []PrefixState
}

// ExportState copies the tracker's accumulated state. Both slices are
// sorted by prefix: the export gob-encodes straight into checkpoints, so
// map-iteration order here would make checkpoint bytes differ run to run.
//
//mantra:statetransfer component=stability seam=export
func (rs *RouteStability) ExportState() *StabilityState {
	st := &StabilityState{Cycles: rs.cycles}
	for p := range rs.last {
		st.Last = append(st.Last, p)
	}
	sort.Slice(st.Last, func(i, j int) bool { return st.Last[i].Compare(st.Last[j]) < 0 })
	for p, h := range rs.byPrefix {
		st.Prefixes = append(st.Prefixes, PrefixState{
			Prefix:       p,
			Present:      h.present,
			Flaps:        h.flaps,
			CurrentSince: h.currentSince,
			Lifetimes:    append([]time.Duration(nil), h.lifetimes...),
			Up:           h.up,
		})
	}
	sort.Slice(st.Prefixes, func(i, j int) bool { return st.Prefixes[i].Prefix.Compare(st.Prefixes[j].Prefix) < 0 })
	return st
}

// StabilityFromState rebuilds a tracker from exported state.
//
//mantra:statetransfer component=stability seam=import
func StabilityFromState(st *StabilityState) *RouteStability {
	rs := NewRouteStability()
	if st == nil {
		return rs
	}
	rs.cycles = st.Cycles
	for _, p := range st.Last {
		rs.last[p] = true
	}
	for _, ps := range st.Prefixes {
		rs.byPrefix[ps.Prefix] = &prefixHistory{
			present:      ps.Present,
			flaps:        ps.Flaps,
			currentSince: ps.CurrentSince,
			lifetimes:    append([]time.Duration(nil), ps.Lifetimes...),
			up:           ps.Up,
		}
	}
	return rs
}
