package process

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core/tables"
	"repro/internal/sim"
)

// feed ingests one scripted fixw-style cycle at an explicit timestamp —
// unlike the harness, the caller owns the clock, so two processors can
// be driven through byte-identical histories.
func feed(p *Processor, target string, at time.Time, routes int) {
	p.Ingest(&tables.Snapshot{Target: target, At: at, Routes: routeTable(routes)})
}

func TestExportImportTargetHandoff(t *testing.T) {
	// Shard handoff in miniature: processor A owns "fixw" and has an
	// open route-injection episode; processor B owns "ucsb" with its own
	// history. Moving fixw from A to B must carry the series, the
	// baseline anchor and the open episode, leave ucsb untouched, and
	// let B resolve the episode exactly as A would have.
	a, b := New(), New()
	at := sim.Epoch
	for i := 0; i < 4; i++ {
		feed(a, "fixw", at, 500)
		feed(b, "ucsb", at, 300)
		at = at.Add(30 * time.Minute)
	}
	feed(a, "fixw", at, 1400) // spike: opens route-injection on A
	feed(b, "ucsb", at, 900)  // B raises its own episode too
	at = at.Add(30 * time.Minute)
	if len(a.OpenAnomalies()) != 1 || len(b.OpenAnomalies()) != 1 {
		t.Fatalf("setup: open = %d/%d, want 1/1", len(a.OpenAnomalies()), len(b.OpenAnomalies()))
	}

	st := a.ExportTarget("fixw")
	if st == nil {
		t.Fatal("ExportTarget returned nil for a known target")
	}
	if len(st.Anomalies) != 1 || len(st.Open) != 1 || st.Open[0].Kind != KindRouteInjection {
		t.Fatalf("exported anomalies = %+v open = %+v", st.Anomalies, st.Open)
	}
	ucsbBefore := b.ExportTarget("ucsb")
	b.ImportTarget("fixw", st)

	if !reflect.DeepEqual(b.Series("fixw", MetricRoutes), a.Series("fixw", MetricRoutes)) {
		t.Error("fixw route series did not transfer intact")
	}
	if !reflect.DeepEqual(b.ExportTarget("ucsb"), ucsbBefore) {
		t.Error("import disturbed the unrelated ucsb state")
	}
	var fixwOpen []Anomaly
	for _, an := range openOfKind(b, KindRouteInjection) {
		if an.Target == "fixw" {
			fixwOpen = append(fixwOpen, an)
		}
	}
	if len(fixwOpen) != 1 {
		t.Fatalf("open fixw episodes after import = %+v", b.OpenAnomalies())
	}
	// The imported record got a fresh local ID appended after B's own.
	if bAnoms := b.Anomalies(); bAnoms[len(bAnoms)-1].Target != "fixw" || bAnoms[len(bAnoms)-1].ID <= bAnoms[0].ID {
		t.Errorf("imported anomaly not re-keyed onto B's ring: %+v", bAnoms)
	}

	// Both processors see the incident subside on the next cycle; the
	// episode must resolve on both at the same instant.
	feed(a, "fixw", at, 500)
	feed(b, "fixw", at, 500)
	if n := len(openOfKind(a, KindRouteInjection)); n != 0 {
		t.Errorf("A still has %d open route-injection episodes", n)
	}
	for _, an := range openOfKind(b, KindRouteInjection) {
		if an.Target == "fixw" {
			t.Errorf("B still has fixw open after recovery: %+v", an)
		}
	}
	var ra, rb Anomaly
	for _, an := range a.Anomalies() {
		if an.Target == "fixw" && an.Kind == KindRouteInjection {
			ra = an
		}
	}
	for _, an := range b.Anomalies() {
		if an.Target == "fixw" && an.Kind == KindRouteInjection {
			rb = an
		}
	}
	if !ra.Resolved || !rb.Resolved || !ra.ResolvedAt.Equal(rb.ResolvedAt) || !ra.At.Equal(rb.At) {
		t.Errorf("episodes diverged across the handoff:\nA: %+v\nB: %+v", ra, rb)
	}
}

func TestImportTargetNilRemoves(t *testing.T) {
	p := New()
	at := sim.Epoch
	for i := 0; i < 3; i++ {
		feed(p, "fixw", at, 500)
		at = at.Add(30 * time.Minute)
	}
	p.ImportTarget("fixw", nil)
	if p.ExportTarget("fixw") != nil {
		t.Error("nil import should remove the target's state")
	}
	// The next cycle seeds a fresh baseline: a huge value must not fire.
	feed(p, "fixw", at, 5000)
	if n := len(p.OpenAnomalies()); n != 0 {
		t.Errorf("removed target fired on its first post-removal cycle: %+v", p.OpenAnomalies())
	}
}

func TestExportTargetUnknown(t *testing.T) {
	if st := New().ExportTarget("ghost"); st != nil {
		t.Errorf("unknown target export = %+v, want nil", st)
	}
}

func TestRollupOfCrossTargetOfPureForms(t *testing.T) {
	// The pure forms must agree with the methods over the live ring —
	// the fan-in tier computes fleet rollups from a merged slice.
	h := newHarness()
	for i := 0; i < 4; i++ {
		h.cycle("fixw", 500, 40, 0)
		h.cycle("ucsb", 500, 40, 0)
	}
	h.cycle("fixw", 1400, 40, 0)
	h.cycle("ucsb", 1400, 40, 0)
	if !reflect.DeepEqual(h.p.Rollup(), RollupOf(h.p.Anomalies(), h.p.AnomaliesEvicted())) {
		t.Error("RollupOf disagrees with Processor.Rollup")
	}
	ct := CrossTargetOf(h.p.Anomalies())
	if !reflect.DeepEqual(h.p.CrossTarget(), ct) {
		t.Error("CrossTargetOf disagrees with Processor.CrossTarget")
	}
	if len(ct) != 1 || ct[0].Kind != KindRouteInjection || len(ct[0].Targets) != 2 {
		t.Errorf("cross-target incident = %+v", ct)
	}
}
