package process

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

func rt(prefixes ...string) tables.RouteTable {
	var out tables.RouteTable
	for _, p := range prefixes {
		out = append(out, tables.RouteEntry{Prefix: addr.MustParsePrefix(p), Metric: 1})
	}
	return out
}

func TestStabilityStablePrefix(t *testing.T) {
	rs := NewRouteStability()
	at := sim.Epoch
	for i := 0; i < 10; i++ {
		rs.Observe(rt("10.0.0.0/8", "11.0.0.0/8"), at)
		at = at.Add(30 * time.Minute)
	}
	if rs.Cycles() != 10 || rs.TrackedPrefixes() != 2 {
		t.Fatalf("cycles=%d prefixes=%d", rs.Cycles(), rs.TrackedPrefixes())
	}
	sum := rs.Summary()
	if sum.StablePrefixes != 2 || sum.TotalFlaps != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.MeanAvailability != 1 {
		t.Errorf("availability = %f", sum.MeanAvailability)
	}
}

func TestStabilityFlapCounting(t *testing.T) {
	rs := NewRouteStability()
	at := sim.Epoch
	// Prefix 10/8 always there; 11/8 flaps twice.
	patterns := []bool{true, true, false, true, false, true}
	for _, up := range patterns {
		routes := rt("10.0.0.0/8")
		if up {
			routes = append(routes, rt("11.0.0.0/8")...)
		}
		rs.Observe(routes, at)
		at = at.Add(30 * time.Minute)
	}
	stats := rs.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	flappy := stats[1]
	if flappy.Prefix != addr.MustParsePrefix("11.0.0.0/8") {
		flappy = stats[0]
	}
	if flappy.Flaps != 2 {
		t.Errorf("flaps = %d, want 2", flappy.Flaps)
	}
	if flappy.Availability != 4.0/6.0 {
		t.Errorf("availability = %f", flappy.Availability)
	}
	if flappy.MeanLifetime <= 0 {
		t.Error("no lifetime recorded")
	}
	least := rs.LeastStable(1)
	if len(least) != 1 || least[0].Prefix != flappy.Prefix {
		t.Errorf("LeastStable = %+v", least)
	}
}

func TestStabilityUptimeAnchorsLifetime(t *testing.T) {
	rs := NewRouteStability()
	at := sim.Epoch.Add(10 * time.Hour)
	// The route has been up for 6 hours when first observed; when it
	// disappears one cycle later, its lifetime reflects the full period.
	routes := tables.RouteTable{{Prefix: addr.MustParsePrefix("10.0.0.0/8"), Uptime: 6 * time.Hour}}
	rs.Observe(routes, at)
	at = at.Add(30 * time.Minute)
	rs.Observe(nil, at)
	stats := rs.Stats()
	if stats[0].MeanLifetime != 6*time.Hour+30*time.Minute {
		t.Errorf("lifetime = %v", stats[0].MeanLifetime)
	}
}

func TestStabilityEmptySummary(t *testing.T) {
	rs := NewRouteStability()
	if s := rs.Summary(); s.Prefixes != 0 || s.MeanAvailability != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if got := rs.LeastStable(5); len(got) != 0 {
		t.Errorf("LeastStable on empty = %v", got)
	}
}
