package process

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestResampleMeans(t *testing.T) {
	s := &Series{}
	// Two points per hour for four hours, values = hour index.
	at := sim.Epoch
	for h := 0; h < 4; h++ {
		for k := 0; k < 2; k++ {
			s.Append(at, float64(h*10+k))
			at = at.Add(30 * time.Minute)
		}
	}
	r := Resample(s, time.Hour)
	if r.Len() != 4 {
		t.Fatalf("buckets = %d", r.Len())
	}
	if r.Values[0] != 0.5 || r.Values[3] != 30.5 {
		t.Errorf("means = %v", r.Values)
	}
	if !r.Times[1].Equal(sim.Epoch.Add(time.Hour)) {
		t.Errorf("bucket stamp = %v", r.Times[1])
	}
}

func TestResampleDegenerate(t *testing.T) {
	if got := Resample(nil, time.Hour); got.Len() != 0 {
		t.Error("nil series should resample empty")
	}
	s := &Series{}
	s.Append(sim.Epoch, 5)
	if got := Resample(s, 0); got.Len() != 0 {
		t.Error("zero bucket should resample empty")
	}
	if got := Resample(s, time.Hour); got.Len() != 1 || got.Values[0] != 5 {
		t.Errorf("single point resample = %v", got.Values)
	}
}

func TestTrendDirections(t *testing.T) {
	mk := func(vals ...float64) *Series {
		s := &Series{}
		at := sim.Epoch
		for _, v := range vals {
			s.Append(at, v)
			at = at.Add(time.Hour)
		}
		return s
	}
	if tr := TrendOf(mk(100, 100, 90, 95, 10, 12, 9, 11)); tr.Direction != "falling" {
		t.Errorf("falling trend = %+v", tr)
	}
	if tr := TrendOf(mk(10, 11, 10, 12, 100, 110, 105, 98)); tr.Direction != "rising" {
		t.Errorf("rising trend = %+v", tr)
	}
	if tr := TrendOf(mk(50, 51, 49, 50, 50, 52, 48, 50)); tr.Direction != "flat" {
		t.Errorf("flat trend = %+v", tr)
	}
	if tr := TrendOf(nil); tr.Direction != "flat" {
		t.Errorf("nil trend = %+v", tr)
	}
}
