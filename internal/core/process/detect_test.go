package process

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/core/tables"
	"repro/internal/sim"
)

// detectHarness drives a processor one target cycle at a time with
// scripted route counts, SA-cache sizes and MBGP RIB sizes.
type detectHarness struct {
	p  *Processor
	at time.Time
}

func newHarness() *detectHarness {
	return &detectHarness{p: New(), at: sim.Epoch}
}

func routeTable(n int) tables.RouteTable {
	var rt tables.RouteTable
	for i := 0; i < n; i++ {
		rt = append(rt, route(addr.PrefixFrom(addr.IP(uint32(i)<<12), 24).String(), 1))
	}
	return rt
}

func saCache(n int) []tables.SAEntry {
	var sas []tables.SAEntry
	for i := 0; i < n; i++ {
		sas = append(sas, tables.SAEntry{
			Source:   addr.IP(uint32(i) + 1),
			Group:    addr.V4(224, 9, byte(i/250), byte(i%250)),
			OriginRP: addr.MustParse("9.9.9.9"),
		})
	}
	return sas
}

func mbgpRIB(n int) []tables.MBGPEntry {
	var rib []tables.MBGPEntry
	for i := 0; i < n; i++ {
		rib = append(rib, tables.MBGPEntry{
			Prefix:  addr.PrefixFrom(addr.IP(uint32(i)<<8), 24),
			NextHop: addr.MustParse("9.9.9.9"),
		})
	}
	return rib
}

// cycle ingests one snapshot for target with the given table sizes and
// advances the virtual clock by 30 minutes.
func (h *detectHarness) cycle(target string, routes, sas, mbgp int) {
	sn := &tables.Snapshot{
		Target: target,
		At:     h.at,
		Routes: routeTable(routes),
		SAs:    saCache(sas),
		MBGP:   mbgpRIB(mbgp),
	}
	h.p.Ingest(sn)
	h.at = h.at.Add(30 * time.Minute)
}

// gap marks a failed cycle for target and advances the clock.
func (h *detectHarness) gap(target string) {
	h.p.MarkGap(target, h.at)
	h.at = h.at.Add(30 * time.Minute)
}

func openOfKind(p *Processor, kind string) []Anomaly {
	var out []Anomaly
	for _, a := range p.OpenAnomalies() {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func TestDetectOnSecondCycle(t *testing.T) {
	// A single clean baseline point is enough history: a spike on the
	// very second cycle must fire (regression for the old n<3 guard that
	// let early-run injections slip past).
	h := newHarness()
	h.cycle("fixw", 500, 0, 0)
	h.cycle("fixw", 1400, 0, 0)
	an := openOfKind(h.p, KindRouteInjection)
	if len(an) != 1 {
		t.Fatalf("second-cycle spike not detected: %+v", h.p.Anomalies())
	}
	if an[0].Severity != SeverityCritical {
		t.Errorf("severity = %q", an[0].Severity)
	}
}

func TestNoFirstCycleMisfire(t *testing.T) {
	// The first point a target ever reports seeds the baseline; however
	// large, it is not an anomaly — there is nothing to compare against.
	h := newHarness()
	h.cycle("fixw", 5000, 400, 300)
	if got := h.p.Anomalies(); len(got) != 0 {
		t.Fatalf("first cycle misfired: %+v", got)
	}
}

func TestDetectAfterShortGap(t *testing.T) {
	// One or two missed cycles must not blind the detector: the
	// pre-gap baseline still anchors the judgement.
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	h.gap("fixw")
	h.gap("fixw")
	h.cycle("fixw", 1400, 0, 0)
	if an := openOfKind(h.p, KindRouteInjection); len(an) != 1 {
		t.Fatalf("post-gap spike not detected: %+v", h.p.Anomalies())
	}
}

func TestNoMisfireAfterLongOutage(t *testing.T) {
	// After GapResetCycles consecutive misses the world may have
	// legitimately changed: the first post-outage point seeds a fresh
	// baseline instead of firing against the stale one.
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	for i := 0; i < DefaultGapResetCycles; i++ {
		h.gap("fixw")
	}
	h.cycle("fixw", 1400, 0, 0)
	if got := h.p.Anomalies(); len(got) != 0 {
		t.Fatalf("misfired against stale pre-outage baseline: %+v", got)
	}
	// The fresh baseline is live from here: a further spike fires.
	h.cycle("fixw", 1400, 0, 0)
	if got := h.p.Anomalies(); len(got) != 0 {
		t.Fatalf("steady post-outage level misread as anomaly: %+v", got)
	}
	h.cycle("fixw", 3500, 0, 0)
	if an := openOfKind(h.p, KindRouteInjection); len(an) != 1 {
		t.Fatalf("spike against fresh baseline not detected: %+v", h.p.Anomalies())
	}
}

func TestEpisodeLifecycle(t *testing.T) {
	h := newHarness()
	for i := 0; i < 8; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	// Incident holds for four cycles — one anomaly, LastSeen advancing.
	var firstAt time.Time
	for i := 0; i < 4; i++ {
		if i == 0 {
			firstAt = h.at
		}
		h.cycle("fixw", 1400, 0, 0)
	}
	an := h.p.Anomalies()
	if len(an) != 1 {
		t.Fatalf("anomalies = %+v", an)
	}
	if an[0].Resolved {
		t.Fatal("resolved while incident still raging")
	}
	if !an[0].At.Equal(firstAt) {
		t.Errorf("first seen = %v, want %v", an[0].At, firstAt)
	}
	if !an[0].LastSeen.After(an[0].At) {
		t.Errorf("LastSeen did not advance: %+v", an[0])
	}
	// Recovery resolves the episode at the recovery cycle.
	resolvedAt := h.at
	h.cycle("fixw", 505, 0, 0)
	an = h.p.Anomalies()
	if !an[0].Resolved || !an[0].ResolvedAt.Equal(resolvedAt) {
		t.Fatalf("not resolved on recovery: %+v", an[0])
	}
	if len(h.p.OpenAnomalies()) != 0 {
		t.Error("open set not emptied")
	}
}

func TestFrozenBaselineSurvivesLongIncident(t *testing.T) {
	// An incident longer than the trailing window would poison a live
	// baseline; the episode must stay open because resolution compares
	// against the baseline frozen at detection time.
	h := newHarness()
	for i := 0; i < 8; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	for i := 0; i < h.p.Window+5; i++ {
		h.cycle("fixw", 1400, 0, 0)
	}
	an := h.p.Anomalies()
	if len(an) != 1 || an[0].Resolved {
		t.Fatalf("long incident self-resolved: %+v", an)
	}
	h.cycle("fixw", 505, 0, 0)
	if an = h.p.Anomalies(); !an[0].Resolved {
		t.Fatalf("recovery after long incident not seen: %+v", an[0])
	}
}

func TestGapNeverResolves(t *testing.T) {
	// A router going dark mid-incident is not evidence of recovery.
	h := newHarness()
	for i := 0; i < 8; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	h.cycle("fixw", 1400, 0, 0)
	for i := 0; i < 10; i++ {
		h.gap("fixw")
	}
	an := h.p.Anomalies()
	if len(an) != 1 || an[0].Resolved {
		t.Fatalf("gaps resolved the episode: %+v", an)
	}
	// The long outage reset the baseline, but the open episode still
	// resolves once real data shows recovery against the frozen base.
	h.cycle("fixw", 505, 0, 0)
	if an = h.p.Anomalies(); !an[0].Resolved {
		t.Fatalf("post-outage recovery not seen: %+v", an[0])
	}
}

func TestRPLossDetector(t *testing.T) {
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.cycle("rp1", 500, 40, 0)
	}
	h.cycle("rp1", 500, 0, 0) // RP dies: SA cache empties instantly
	an := openOfKind(h.p, KindRPLoss)
	if len(an) != 1 {
		t.Fatalf("rp-loss not detected: %+v", h.p.Anomalies())
	}
	h.cycle("rp1", 500, 38, 0) // failover repopulates the cache
	if an = openOfKind(h.p, KindRPLoss); len(an) != 0 {
		t.Fatalf("rp-loss not resolved after recovery: %+v", an)
	}
}

func TestSAStormAndRouteLeakDetectors(t *testing.T) {
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.cycle("rp1", 500, 40, 30)
	}
	h.cycle("rp1", 500, 240, 90)
	if an := openOfKind(h.p, KindSAStorm); len(an) != 1 {
		t.Fatalf("sa-storm not detected: %+v", h.p.Anomalies())
	}
	if an := openOfKind(h.p, KindRouteLeak); len(an) != 1 {
		t.Fatalf("route-leak not detected: %+v", h.p.Anomalies())
	}
}

func TestRouteFlapDetector(t *testing.T) {
	p := New()
	at := sim.Epoch
	ingest := func(rt tables.RouteTable) {
		p.Ingest(&tables.Snapshot{Target: "fixw", At: at, Routes: rt})
		at = at.Add(30 * time.Minute)
	}
	stable := routeTable(200)
	flapped := routeTable(260) // 60 prefixes appear, churn 60 each swing
	for i := 0; i < 6; i++ {
		ingest(stable)
	}
	// Churn must hold >= threshold for Run consecutive cycles; two
	// swings are not enough, the third opens the episode.
	ingest(flapped)
	ingest(stable)
	if an := openOfKind(p, KindRouteFlap); len(an) != 0 {
		t.Fatalf("flap fired before sustained run: %+v", an)
	}
	ingest(flapped)
	if an := openOfKind(p, KindRouteFlap); len(an) != 1 {
		t.Fatalf("sustained flap not detected: %+v", p.Anomalies())
	}
	// Calm cycles resolve it.
	ingest(stable)
	ingest(stable)
	if an := openOfKind(p, KindRouteFlap); len(an) != 0 {
		t.Fatalf("flap not resolved: %+v", an)
	}
}

func TestAnomalyRingEviction(t *testing.T) {
	h := newHarness()
	h.p.MaxAnomalies = 4
	// Isolate ring mechanics: one spike detector, one-cycle baseline, so
	// alternating levels yield exactly one episode per swing (the churn
	// the alternation causes would otherwise open a flap episode too).
	h.p.SetDetectors(&SpikeDetector{KindName: KindRouteInjection, Watch: MetricRoutes,
		Sev: SeverityCritical, Factor: 1.5, MinJump: 200})
	h.p.Window = 1
	for i := 0; i < 6; i++ {
		h.cycle("fixw", 500, 0, 0)
	}
	// Ten separate spike episodes, each resolved before the next.
	for i := 0; i < 10; i++ {
		h.cycle("fixw", 1400, 0, 0)
		h.cycle("fixw", 500, 0, 0)
	}
	an := h.p.Anomalies()
	if len(an) != 4 {
		t.Fatalf("ring size = %d, want 4", len(an))
	}
	if got := h.p.AnomaliesEvicted(); got != 6 {
		t.Errorf("evicted = %d, want 6", got)
	}
	for i := 1; i < len(an); i++ {
		if an[i].ID != an[i-1].ID+1 {
			t.Fatalf("IDs not consecutive: %+v", an)
		}
	}
	if an[0].ID != 6 {
		t.Errorf("oldest retained ID = %d, want 6", an[0].ID)
	}
	if r := h.p.Rollup(); r.Total != 10 || r.Evicted != 6 {
		t.Errorf("rollup = %+v", r)
	}
}

func TestEvictionDropsOpenEpisode(t *testing.T) {
	// When an open episode's record falls off the ring, the episode is
	// abandoned rather than left pointing at a recycled slot.
	h := newHarness()
	h.p.MaxAnomalies = 2
	for i := 0; i < 6; i++ {
		h.cycle("a", 500, 40, 0)
	}
	h.cycle("a", 1400, 0, 0) // opens route-injection AND rp-loss
	for i := 0; i < 3; i++ { // three more episodes evict both
		h.cycle("b", 500, 0, 0)
	}
	h.cycle("b", 1400, 0, 0)
	h.cycle("b", 500, 0, 0)
	h.cycle("b", 1400, 0, 0)
	h.cycle("b", 500, 0, 0)
	h.cycle("b", 1400, 0, 0)
	// Target a's episodes were evicted; new data must not panic and a
	// fresh spike opens a fresh episode.
	h.cycle("a", 500, 40, 0)
	h.cycle("a", 500, 40, 0)
	if len(h.p.Anomalies()) != 2 {
		t.Fatalf("ring = %+v", h.p.Anomalies())
	}
}

func TestRollupAndCrossTarget(t *testing.T) {
	h := newHarness()
	for i := 0; i < 6; i++ {
		h.cycle("a", 500, 40, 0)
		h.cycle("b", 600, 35, 0)
	}
	h.cycle("a", 1400, 240, 0) // route-injection + sa-storm on a
	h.cycle("b", 1600, 35, 0)  // route-injection on b
	r := h.p.Rollup()
	if r.Open != 3 || r.Total != 3 || r.Resolved != 0 {
		t.Fatalf("rollup = %+v", r)
	}
	if r.Critical != 2 || r.Warning != 1 {
		t.Errorf("severity counts = %+v", r)
	}
	if len(r.ByKind) != 2 || r.ByKind[0].Kind != KindRouteInjection || r.ByKind[1].Kind != KindSAStorm {
		t.Errorf("by-kind = %+v", r.ByKind)
	}
	ct := h.p.CrossTarget()
	if len(ct) != 1 || ct[0].Kind != KindRouteInjection {
		t.Fatalf("cross-target = %+v", ct)
	}
	if len(ct[0].Targets) != 2 || ct[0].Targets[0] != "a" || ct[0].Targets[1] != "b" {
		t.Errorf("targets = %v", ct[0].Targets)
	}
	if ct[0].Severity != SeverityCritical {
		t.Errorf("severity = %q", ct[0].Severity)
	}
}

func TestSetDetectors(t *testing.T) {
	p := New()
	if len(p.Detectors()) != 5 {
		t.Fatalf("default detectors = %d", len(p.Detectors()))
	}
	p.SetDetectors(&SpikeDetector{KindName: "custom", Watch: MetricSessions,
		Sev: SeverityWarning, Factor: 2, MinJump: 5})
	if ds := p.Detectors(); len(ds) != 1 || ds[0].Kind() != "custom" {
		t.Fatalf("detectors = %+v", ds)
	}
	at := sim.Epoch
	mkPairs := func(n int) tables.PairTable {
		var ps tables.PairTable
		for i := 0; i < n; i++ {
			ps = append(ps, pair(addr.V4(1, 1, byte(i/250), byte(i%250+1)).String(),
				addr.V4(224, 1, byte(i/250), byte(i%250+1)).String(), 1))
		}
		return ps
	}
	for i := 0; i < 4; i++ {
		p.Ingest(snapAt(at, mkPairs(10), nil))
		at = at.Add(30 * time.Minute)
	}
	p.Ingest(snapAt(at, mkPairs(40), nil))
	an := p.Anomalies()
	if len(an) != 1 || an[0].Kind != "custom" {
		t.Fatalf("custom detector did not fire: %+v", an)
	}
}

func TestDetectorStateRoundTrip(t *testing.T) {
	// Export/import mid-incident: the restored processor must carry the
	// open episode (same frozen baseline) and the ID counters, so the
	// continuation is byte-identical to an uninterrupted run.
	mk := func() *detectHarness {
		h := newHarness()
		for i := 0; i < 6; i++ {
			h.cycle("fixw", 500, 40, 0)
		}
		h.cycle("fixw", 1400, 0, 0) // opens two episodes
		return h
	}
	h1 := mk()
	h2 := mk()

	// h2 crashes and recovers from its exported state.
	restored := New()
	restored.ImportState(h2.p.ExportState())
	h2.p = restored

	finish := func(h *detectHarness) []byte {
		h.cycle("fixw", 1400, 0, 0)
		h.cycle("fixw", 505, 38, 0)
		b, err := json.Marshal(h.p.Anomalies())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := finish(h1), finish(h2)
	if string(b1) != string(b2) {
		t.Fatalf("restored run diverged:\n%s\n%s", b1, b2)
	}
	var an []Anomaly
	if err := json.Unmarshal(b1, &an); err != nil {
		t.Fatal(err)
	}
	if len(an) != 2 {
		t.Fatalf("anomalies = %+v", an)
	}
	for _, a := range an {
		if !a.Resolved {
			t.Errorf("unresolved after recovery: %+v", a)
		}
	}
}
