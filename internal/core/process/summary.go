package process

import (
	"sort"

	"repro/internal/core/tables"
)

// BusiestSessions returns the top-n sessions by aggregate bandwidth — the
// paper's "busiest multicast sessions" summary table.
func BusiestSessions(sn *tables.Snapshot, n int) tables.SessionTable {
	ss := sn.Pairs.Sessions()
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].TotalRateKbps != ss[j].TotalRateKbps {
			return ss[i].TotalRateKbps > ss[j].TotalRateKbps
		}
		return ss[i].Group < ss[j].Group
	})
	if n > len(ss) {
		n = len(ss)
	}
	return ss[:n]
}

// TopSenders returns the top-n participants by peak rate.
func TopSenders(sn *tables.Snapshot, n int) tables.ParticipantTable {
	ps := sn.Pairs.Participants()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].MaxRateKbps != ps[j].MaxRateKbps {
			return ps[i].MaxRateKbps > ps[j].MaxRateKbps
		}
		return ps[i].Host < ps[j].Host
	})
	if n > len(ps) {
		n = len(ps)
	}
	return ps[:n]
}

// RouteSummary aggregates the route table: total count, locally
// originated count, and a histogram of metrics — the "raw count of
// networks available via DVMRP" style summary.
type RouteSummary struct {
	Total, Local   int
	MetricCounts   map[int]int
	DistinctOrigin int
}

// SummarizeRoutes computes a RouteSummary for the snapshot.
func SummarizeRoutes(sn *tables.Snapshot) RouteSummary {
	rs := RouteSummary{MetricCounts: make(map[int]int)}
	gateways := make(map[string]bool)
	for _, r := range sn.Routes {
		rs.Total++
		if r.Local {
			rs.Local++
		} else {
			gateways[r.Gateway.String()] = true
		}
		rs.MetricCounts[r.Metric]++
	}
	rs.DistinctOrigin = len(gateways)
	return rs
}
