package collect_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core/collect"
)

func TestValidateDumpAcceptsRealOutput(t *testing.T) {
	n := testNetwork(t)
	dumps, err := collect.CollectAll(target(n, "fixw", "pw"), collect.StandardCommands, n.Now())
	if err != nil {
		t.Fatal(err)
	}
	if err := collect.ValidateDumps("fixw> ", dumps); err != nil {
		t.Errorf("clean dumps rejected: %v", err)
	}
}

func TestValidateDump(t *testing.T) {
	const cmd = "show ip dvmrp route"
	cases := []struct {
		name string
		cmd  string
		raw  string
		want error // nil means accept
	}{
		{
			name: "valid",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 2 entries\nOrigin Gateway Metric Uptime\n10.0.0.0/8 local 1 0:01:00\n10.1.0.0/16 local 1 0:01:00\n",
		},
		{
			name: "valid zero entries",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 0 entries\n",
		},
		{
			name: "valid crlf lines",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 1 entries\r\nOrigin Gateway Metric Uptime\r\n10.0.0.0/8 local 1 0:01:00\r\n",
		},
		{
			name: "valid igmp members count",
			cmd:  "show ip igmp groups",
			raw:  "IGMP Group Membership - 2 groups, 3 members\nGroup Host Uptime\nr1\nr2\nr3\n",
		},
		{
			name: "valid unknown command",
			cmd:  "show version",
			raw:  "fixw uptime is 24:00:00\n",
		},
		{
			name: "empty unknown command",
			cmd:  "show version",
			raw:  "",
		},
		{
			name: "empty known command",
			cmd:  cmd,
			raw:  "",
			want: collect.ErrTruncated,
		},
		{
			name: "bare carriage return known command",
			cmd:  cmd,
			raw:  "\r",
			want: collect.ErrTruncated,
		},
		{
			name: "bare carriage return unknown command",
			cmd:  "show version",
			raw:  "\r",
		},
		{
			name: "whitespace-only known command",
			cmd:  cmd,
			raw:  " \t\r\n \r",
			want: collect.ErrTruncated,
		},
		{
			name: "prompt-only response leftover unknown command",
			cmd:  "show version",
			raw:  "\r\n",
		},
		{
			name: "valid interleaved lf-cr lines",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 1 entries\n\rOrigin Gateway Metric Uptime\n\r10.0.0.0/8 local 1 0:01:00\n\r",
		},
		{
			name: "cut mid-line",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 2 entries\nOrigin Gateway Metric Uptime\n10.0.0.0/8 loc",
			want: collect.ErrTruncated,
		},
		{
			name: "missing declared rows",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 3 entries\nOrigin Gateway Metric Uptime\n10.0.0.0/8 local 1 0:01:00\n",
			want: collect.ErrTruncated,
		},
		{
			name: "extra rows",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 1 entries\nOrigin Gateway Metric Uptime\nrow\nrow\n",
			want: collect.ErrGarbled,
		},
		{
			name: "mangled header",
			cmd:  cmd,
			raw:  "DVM\x10P Routing Table - 1 entries\nOrigin Gateway Metric Uptime\nrow\n",
			want: collect.ErrGarbled,
		},
		{
			name: "header count unreadable",
			cmd:  cmd,
			raw:  "DVMRP Routing Table\nOrigin Gateway Metric Uptime\nrow\n",
			want: collect.ErrGarbled,
		},
		{
			name: "prompt echo in body",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 1 entries\nOrigin Gateway Metric Uptime\nfixw> row\n",
			want: collect.ErrGarbled,
		},
		{
			name: "non-printable noise",
			cmd:  cmd,
			raw:  "DVMRP Routing Table - 1 entries\nOrigin Gateway Metric Uptime\nrow\x01\x02\x03\n",
			want: collect.ErrGarbled,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := collect.ValidateDump("fixw> ", tc.cmd, tc.raw)
			if tc.want == nil {
				if err != nil {
					t.Errorf("rejected: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateDumpsReportsFirstDefect(t *testing.T) {
	at := time.Unix(0, 0)
	dumps := []collect.Dump{
		{Target: "fixw", Command: "show version", Raw: "ok\n", At: at},
		{Target: "fixw", Command: "show ip dvmrp route", Raw: "DVMRP Routing Table - 1 entries\ncols\nro", At: at},
	}
	if err := collect.ValidateDumps("fixw> ", dumps); !errors.Is(err, collect.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	if err := collect.ValidateDumps("fixw> ", dumps[:1]); err != nil {
		t.Errorf("clean prefix rejected: %v", err)
	}
}
