package collect_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/router"
)

// faultySeeds collects real dumps from fault-injected routers — truncated
// and garbled CLI output as the session layer actually produces it — so
// the fuzzers start from the defect shapes the validators were built for.
func faultySeeds(t testing.TB) []string {
	n := testNetwork(t)
	var seeds []string
	for _, profile := range []router.FaultProfile{
		{Truncate: 1},
		{Garble: 1, GarblePerLine: 2},
		{Truncate: 1, TruncateAfter: 40},
	} {
		n.Router("fixw").Password = "pw"
		fr := n.FaultyRouter("fixw", profile)
		tgt := collect.Target{
			Name:     "fixw",
			Dialer:   collect.PipeDialer{Router: fr},
			Password: "pw",
			Prompt:   "fixw> ",
			Timeout:  2 * time.Second,
		}
		dumps, _ := collect.CollectAll(tgt, collect.StandardCommands, n.Now())
		for _, d := range dumps {
			seeds = append(seeds, d.Raw)
		}
	}
	return seeds
}

// FuzzValidateDump drives the structural validator with arbitrary bytes:
// it must classify, never panic, and never accept a dump that then breaks
// the invariants it guards (mid-line cuts, non-ASCII noise).
func FuzzValidateDump(f *testing.F) {
	for _, s := range faultySeeds(f) {
		f.Add("show ip dvmrp route", s)
	}
	f.Add("show ip dvmrp route", "")
	f.Add("show ip dvmrp route", "\r")
	f.Add("show version", "\r\n")
	f.Add("show ip dvmrp route", "DVMRP Routing Table - 1 entries\nOrigin\nrow\n")
	f.Add("show ip dvmrp route", "DVMRP Routing Table - 2 entries\r\nOrigin\r\n10.0.0.0/8 loc")
	f.Add("show ip igmp groups", "IGMP Group Membership - 1 groups, 2 members\nGroup\nr1\nr2\n")
	f.Add("show ip mroute", "fixw> fixw> \n")
	f.Add("show ip mbgp", "MBGP Table - 0 entries\n\r")
	f.Add("x", "\x00\x01\x02")
	f.Fuzz(func(t *testing.T, command, raw string) {
		err := collect.ValidateDump("fixw> ", command, raw)
		if err != nil {
			return
		}
		// Accepted dumps must uphold what the parsers assume: printable
		// ASCII and, when non-blank, a properly terminated final line.
		for i := 0; i < len(raw); i++ {
			c := raw[i]
			if c == '\n' || c == '\r' || c == '\t' {
				continue
			}
			if c < 0x20 || c > 0x7e {
				t.Fatalf("accepted dump with non-printable byte %#x: %q", c, raw)
			}
		}
		if strings.Trim(raw, " \t\r\n") != "" && !strings.HasSuffix(strings.TrimRight(raw, "\r"), "\n") {
			t.Fatalf("accepted dump cut mid-line: %q", raw)
		}
	})
}

// FuzzPreprocess checks the dump pre-processor on arbitrary input: no
// panics, every returned line trimmed and non-empty, and idempotence —
// re-joining the cleaned lines and pre-processing again must be a fixed
// point, since the parsers assume cleaned input stays cleaned.
func FuzzPreprocess(f *testing.F) {
	for _, s := range faultySeeds(f) {
		f.Add(s)
	}
	f.Add("")
	f.Add("\r\n\r\n")
	f.Add("  a   b\t c  \r\n% error\nnext\n")
	f.Add("one\n\rtwo\n\rthree")
	f.Fuzz(func(t *testing.T, raw string) {
		lines := collect.Preprocess(raw)
		for _, l := range lines {
			if l == "" || l != strings.Join(strings.Fields(l), " ") {
				t.Fatalf("unnormalized line %q from %q", l, raw)
			}
		}
		again := collect.Preprocess(strings.Join(lines, "\n"))
		if len(again) != len(lines) {
			t.Fatalf("preprocess not idempotent: %d then %d lines", len(lines), len(again))
		}
		for i := range lines {
			if lines[i] != again[i] {
				t.Fatalf("preprocess not idempotent at line %d: %q vs %q", i, lines[i], again[i])
			}
		}
	})
}
