package collect

import (
	"fmt"
	"io"
	"time"
)

// Step is one expect-script action: wait for Expect to appear in the
// stream (if non-empty), then send Send (if non-empty).
type Step struct {
	Expect string
	Send   string
	// Capture names the output consumed while waiting; captured text is
	// returned keyed by this name. Empty means discard.
	Capture string
}

// Script is an ordered list of steps — Mantra's collection mechanism, as
// the paper describes it: "a set of expect scripts, which it launches at
// frequent intervals to collect the latest monitoring data".
type Script []Step

// LoginScript builds the standard login-and-dump script for a router:
// authenticate, disable paging, run each command, and log out. Each
// prompt-wait captures the output of the command sent before it, so one
// step both harvests the previous dump and issues the next command.
func LoginScript(password, prompt string, commands ...string) Script {
	var s Script
	if password != "" {
		s = append(s, Step{Expect: "Password: ", Send: password})
	}
	s = append(s, Step{Expect: prompt, Send: "terminal length 0"})
	prev := ""
	for _, cmd := range commands {
		s = append(s, Step{Expect: prompt, Send: cmd, Capture: prev})
		prev = cmd
	}
	s = append(s, Step{Expect: prompt, Send: "exit", Capture: prev})
	return s
}

// RunScript drives rw through the script and returns the captured
// sections. The timeout applies per expect step, measured on the wall
// clock; use RunScriptClock to inject a time base.
func RunScript(rw io.ReadWriter, script Script, timeout time.Duration) (map[string]string, error) {
	return RunScriptClock(rw, script, timeout, time.Now) //mantralint:allow wallclock live expect-script seam; RunScriptClock is the injected path
}

// RunScriptClock is RunScript with an injected clock for the per-step
// expect deadlines.
func RunScriptClock(rw io.ReadWriter, script Script, timeout time.Duration, now func() time.Time) (map[string]string, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	s := &Session{conn: sessionStream(rw), timeout: timeout, now: now}
	captures := make(map[string]string)
	for i, step := range script {
		if step.Expect != "" {
			out, err := s.readUntil(step.Expect)
			if err != nil {
				return captures, fmt.Errorf("collect: script step %d: %w", i, err)
			}
			if step.Capture != "" {
				// LoginScript names each capture after the command that
				// produced it, so the echo of that command is stripped the
				// same way Session.Run does.
				captures[step.Capture] = stripEcho(out, step.Capture, step.Expect)
			}
		}
		if step.Send != "" {
			if err := s.send(step.Send); err != nil {
				return captures, fmt.Errorf("collect: script step %d: %w", i, err)
			}
		}
	}
	return captures, nil
}

// sessionStream adapts an io.ReadWriter to the session's closer
// requirement. Streams with native read deadlines (net.Conn, net.Pipe
// ends) keep them; all others must NOT claim deadline support, so the
// session arms its watchdog and a blocked Read can be severed by closing
// the underlying stream.
func sessionStream(rw io.ReadWriter) io.ReadWriteCloser {
	if _, ok := rw.(deadliner); ok {
		return deadlineStream{rw}
	}
	return plainStream{rw}
}

// deadlineStream wraps a stream that supports read deadlines.
type deadlineStream struct{ io.ReadWriter }

// Close implements io.Closer as a no-op; the caller owns the stream.
func (deadlineStream) Close() error { return nil }

// SetReadDeadline forwards to the underlying stream.
func (d deadlineStream) SetReadDeadline(t time.Time) error {
	return d.ReadWriter.(deadliner).SetReadDeadline(t)
}

// plainStream wraps a deadline-less stream; the watchdog's Close call
// forwards to the underlying stream when it is closable, which is the
// only way to unblock a stuck Read on such transports.
type plainStream struct{ io.ReadWriter }

// Close forwards to the underlying stream when possible.
func (p plainStream) Close() error {
	if c, ok := p.ReadWriter.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
