package collect_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core/collect"
)

func TestRunScriptAgainstRouter(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("fixw")
	r.Password = "mantra"
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = r.HandleSession(server)
		close(done)
	}()

	script := collect.LoginScript("mantra", "fixw> ",
		"show ip dvmrp route", "show version")
	captures, err := collect.RunScript(client, script, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done

	dump, ok := captures["show ip dvmrp route"]
	if !ok || !strings.Contains(dump, "DVMRP Routing Table") {
		t.Errorf("route dump missing: %v", captures)
	}
	ver := captures["show version"]
	if !strings.Contains(ver, "fixw uptime") {
		t.Errorf("version capture: %q", ver)
	}
	// Captures must not include the trailing prompt.
	if strings.Contains(dump, "fixw> ") {
		t.Error("prompt leaked into capture")
	}
	// Captures must be cleaned like Session.Run output: no command echo at
	// the head, no stray carriage return before where the prompt was.
	if strings.HasPrefix(strings.TrimLeft(dump, "\r\n"), "show ip dvmrp route") {
		t.Errorf("command echo leaked into capture: %q", dump[:40])
	}
	if strings.HasSuffix(dump, "\r") {
		t.Errorf("trailing carriage return left in capture: %q", dump)
	}
}

// TestRunScriptCapturesMatchSessionRun pins the equivalence of the two
// collection paths: the expect-script capture for a command must equal
// what Session.Run returns for the same command.
func TestRunScriptCapturesMatchSessionRun(t *testing.T) {
	n := testNetwork(t)
	const cmd = "show ip dvmrp route"

	s, err := collect.Login(target(n, "fixw", "pw"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(cmd)
	s.Close()
	if err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = n.Router("fixw").HandleSession(server)
		close(done)
	}()
	captures, err := collect.RunScript(client, collect.LoginScript("pw", "fixw> ", cmd), 5*time.Second)
	client.Close()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if got := captures[cmd]; got != want {
		t.Errorf("script capture diverges from Session.Run:\nscript %q\nrun    %q", got, want)
	}
}

func TestRunScriptTimeout(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	script := collect.Script{{Expect: "never-appears"}}
	if _, err := collect.RunScript(client, script, 200*time.Millisecond); err == nil {
		t.Error("expected timeout")
	}
}
