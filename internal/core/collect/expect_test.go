package collect_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core/collect"
)

func TestRunScriptAgainstRouter(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("fixw")
	r.Password = "mantra"
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		_ = r.HandleSession(server)
		close(done)
	}()

	script := collect.LoginScript("mantra", "fixw> ",
		"show ip dvmrp route", "show version")
	captures, err := collect.RunScript(client, script, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	<-done

	dump, ok := captures["show ip dvmrp route"]
	if !ok || !strings.Contains(dump, "DVMRP Routing Table") {
		t.Errorf("route dump missing: %v", captures)
	}
	ver := captures["show version"]
	if !strings.Contains(ver, "fixw uptime") {
		t.Errorf("version capture: %q", ver)
	}
	// Captures must not include the trailing prompt.
	if strings.Contains(dump, "fixw> ") {
		t.Error("prompt leaked into capture")
	}
}

func TestRunScriptTimeout(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	script := collect.Script{{Expect: "never-appears"}}
	if _, err := collect.RunScript(client, script, 200*time.Millisecond); err == nil {
		t.Error("expected timeout")
	}
}
