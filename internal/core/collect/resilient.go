package collect

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ErrBreakerOpen reports a collection skipped because the target's circuit
// breaker is open: the target failed too many consecutive cycles and is in
// its cooldown before the next half-open probe.
var ErrBreakerOpen = errors.New("collect: circuit breaker open")

// Status classifies one target's collection outcome within a cycle.
type Status string

// The per-target cycle outcomes.
const (
	// StatusOK: collection succeeded on the first attempt.
	StatusOK Status = "ok"
	// StatusRetried: collection succeeded after at least one retry.
	StatusRetried Status = "retried"
	// StatusDegraded: every attempt this cycle failed; the target is
	// skipped and its series get a gap marker.
	StatusDegraded Status = "degraded"
	// StatusBreakerOpen: no attempt was made; the breaker is cooling down.
	StatusBreakerOpen Status = "breaker-open"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: closed (normal), open (skipping), half-open (probing).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for health views and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// MarshalJSON encodes the state as its string form.
func (s BreakerState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the string form written by MarshalJSON.
func (s *BreakerState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"closed"`:
		*s = BreakerClosed
	case `"open"`:
		*s = BreakerOpen
	case `"half-open"`:
		*s = BreakerHalfOpen
	default:
		return fmt.Errorf("collect: unknown breaker state %s", b)
	}
	return nil
}

// Breaker is a per-target circuit breaker. It opens after a configured
// number of consecutive failed cycles, stays open for a cooldown, then
// admits a single half-open probe: success closes it, failure re-opens
// it for another cooldown. Time comes from the cycle timestamps the
// caller supplies, so breakers work identically under virtual sim time
// and wall clocks. Breaker is not safe for concurrent use; the Collector
// serializes access.
type Breaker struct {
	threshold   int
	cooldown    time.Duration
	state       BreakerState
	consecutive int
	openedAt    time.Time
}

// NewBreaker returns a closed breaker opening after threshold consecutive
// failures and probing after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a collection attempt may proceed at time now,
// transitioning an open breaker to half-open once its cooldown elapsed.
func (b *Breaker) Allow(now time.Time) bool {
	if b.state == BreakerOpen {
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
	return true
}

// Success records a successful cycle, closing the breaker.
func (b *Breaker) Success() {
	b.state = BreakerClosed
	b.consecutive = 0
}

// Failure records a failed cycle at time now, opening the breaker when the
// threshold is reached or a half-open probe fails.
func (b *Breaker) Failure(now time.Time) {
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = now
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState { return b.state }

// Consecutive returns the current run of failed cycles.
func (b *Breaker) Consecutive() int { return b.consecutive }

// Policy configures the resilient collection path: per-cycle retries with
// exponential backoff and deterministic jitter, circuit breaking, and dump
// validation. The zero value means "all defaults" — see DefaultPolicy.
type Policy struct {
	// MaxAttempts is the number of collection attempts per target per
	// cycle; 0 means 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; 0 means 100 ms.
	// Each further retry doubles it, capped at MaxDelay (0 means 2 s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed perturbs the deterministic backoff jitter so distinct
	// deployments desynchronize; any fixed value keeps runs reproducible.
	JitterSeed int64
	// BreakerThreshold is the consecutive failed cycles before a target's
	// breaker opens; 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe; 0 means 5 minutes.
	BreakerCooldown time.Duration
	// DisableValidation skips the structural dump validation that rejects
	// truncated or garbled output before parsing.
	DisableValidation bool
	// Sleep is the backoff clock, overridable in tests; nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// DefaultPolicy returns the production defaults: 3 attempts, 100 ms base
// backoff capped at 2 s, breaker opening after 5 failed cycles with a
// 5-minute cooldown, validation on.
func DefaultPolicy() Policy { return Policy{}.withDefaults() }

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Minute
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the delay before retry attempt (attempt ≥ 1) against the
// named target: exponential from BaseDelay capped at MaxDelay, scaled into
// [0.5, 1.0) by a jitter derived deterministically from the target name,
// attempt number and JitterSeed — retries desynchronize across targets
// without a shared random source, and identical runs stay identical.
func (p Policy) Backoff(target string, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// FNV-1a over "target/attempt/seed", composed in a stack buffer: the
	// byte stream matches what fmt.Fprintf("%s/%d/%d") used to feed the
	// hasher, so jitter values are unchanged, but the per-retry fmt and
	// hasher allocations are gone (Backoff sits on the collect hot path).
	var buf [64]byte
	b := append(buf[:0], target...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(attempt), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(p.JitterSeed), 10)
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	frac := 0.5 + 0.5*float64(h%1024)/1024
	return time.Duration(float64(d) * frac)
}

// TargetHealth is the operator-facing view of one target's collection
// health, exposed through Monitor.Health and the HTTP /health endpoint.
//
//mantra:codec pair=ckpt-targethealth shape=7a261eb56e8020c6
type TargetHealth struct {
	Target              string       `json:"target"`
	Breaker             BreakerState `json:"breaker"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	TotalCycles         int          `json:"total_cycles"`
	TotalFailures       int          `json:"total_failures"`
	LastStatus          Status       `json:"last_status,omitempty"`
	LastSuccess         time.Time    `json:"last_success"`
	LastError           string       `json:"last_error,omitempty"`
}

// Result is the per-target outcome of one resilient collection.
type Result struct {
	Target   string
	Status   Status
	Attempts int
	// Dumps holds the captured tables on success, nil otherwise.
	Dumps []Dump
	// Err is the last attempt's error when the cycle failed.
	Err error
	// Breaker is the target's breaker state after this cycle.
	Breaker BreakerState
}

// Collector wraps CollectAll with the resilience the paper's Mantra needed
// to run unattended for months against flaky routers: per-cycle retries
// with backoff, structural dump validation, a per-target circuit breaker,
// and a health ledger. It is safe for concurrent use across targets.
type Collector struct {
	policy Policy

	mu      sync.Mutex
	targets map[string]*targetState
}

type targetState struct {
	breaker *Breaker
	health  TargetHealth
}

// NewCollector returns a collector applying policy (zero fields take the
// defaults of DefaultPolicy).
func NewCollector(policy Policy) *Collector {
	return &Collector{
		policy:  policy.withDefaults(),
		targets: make(map[string]*targetState),
	}
}

// Policy returns the collector's normalized policy.
func (c *Collector) Policy() Policy { return c.policy }

func (c *Collector) state(name string) *targetState {
	st := c.targets[name]
	if st == nil {
		st = &targetState{
			breaker: NewBreaker(c.policy.BreakerThreshold, c.policy.BreakerCooldown),
			health:  TargetHealth{Target: name},
		}
		c.targets[name] = st
	}
	return st
}

// Collect performs one resilient collection of the target: breaker check,
// up to MaxAttempts tries with backoff between them, and dump validation.
// It never panics and never blocks past the per-step timeouts; a target
// that cannot be collected comes back as StatusDegraded (or
// StatusBreakerOpen when skipped) with the last error attached.
//
//mantra:hotpath budget=3
func (c *Collector) Collect(t Target, commands []string, now time.Time) Result {
	c.mu.Lock()
	st := c.state(t.Name)
	allowed := st.breaker.Allow(now)
	if !allowed {
		st.health.TotalCycles++
		st.health.LastStatus = StatusBreakerOpen
		res := Result{
			Target:  t.Name,
			Status:  StatusBreakerOpen,
			Err:     fmt.Errorf("%w: %s skipped", ErrBreakerOpen, t.Name),
			Breaker: st.breaker.State(),
		}
		c.mu.Unlock()
		return res
	}
	c.mu.Unlock()

	var lastErr error
	attempts := 0
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.policy.Sleep(c.policy.Backoff(t.Name, attempt))
		}
		attempts++
		dumps, err := CollectAll(t, commands, now)
		if err == nil && !c.policy.DisableValidation {
			err = ValidateDumps(t.Prompt, dumps)
		}
		if err == nil {
			status := StatusOK
			if attempt > 0 {
				status = StatusRetried
			}
			br := c.record(t.Name, now, status, "")
			return Result{Target: t.Name, Status: status, Attempts: attempts, Dumps: dumps, Breaker: br}
		}
		lastErr = err
	}
	br := c.record(t.Name, now, StatusDegraded, lastErr.Error())
	return Result{
		Target:   t.Name,
		Status:   StatusDegraded,
		Attempts: attempts,
		Err:      fmt.Errorf("collect %s: degraded after %d attempts: %w", t.Name, attempts, lastErr),
		Breaker:  br,
	}
}

// RecordFailure feeds an out-of-band per-target failure — e.g. a snapshot
// parse error downstream of collection — into the breaker and health
// ledger, so corrupted cycles count toward opening the breaker even when
// the CLI session itself succeeded.
func (c *Collector) RecordFailure(name string, now time.Time, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	c.record(name, now, StatusDegraded, detail)
}

// RecordSuccess feeds an out-of-band per-target success into the breaker
// and health ledger — used by archive recovery when replaying WAL-tail
// cycles that succeeded before the crash.
func (c *Collector) RecordSuccess(name string, now time.Time) {
	c.record(name, now, StatusOK, "")
}

// RecordSkipped notes a cycle skipped by an open breaker without counting
// a new failure — the replay counterpart of the breaker-open fast path in
// Collect, used by archive recovery.
func (c *Collector) RecordSkipped(name string, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(name)
	st.health.TotalCycles++
	st.health.LastStatus = StatusBreakerOpen
	st.health.Breaker = st.breaker.State()
	st.health.ConsecutiveFailures = st.breaker.Consecutive()
}

// CarryState imports every target's health ledger and breaker position
// from old, so a policy swap mid-run keeps the accumulated failure
// history instead of silently amnesia-ing it. The new policy's
// thresholds and cooldowns apply from the next breaker transition;
// current streaks, totals and an open breaker's opening instant carry
// over unchanged (an open breaker keeps cooling down on its original
// schedule rather than restarting).
func (c *Collector) CarryState(old *Collector) {
	if old == nil || old == c {
		return
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ost := range old.targets {
		st := c.state(name)
		st.health = ost.health
		st.breaker.state = ost.breaker.state
		st.breaker.consecutive = ost.breaker.consecutive
		st.breaker.openedAt = ost.breaker.openedAt
	}
}

// ResetTarget drops any accumulated health ledger and breaker state
// for name. A target that is removed and later re-registered must start
// with a fresh breaker window — without the reset, state carried across
// policy swaps (CarryState) would hand the re-registered target a stale
// open breaker or failure streak from its previous life.
//
//mantra:statetransfer component=health seam=remove
func (c *Collector) ResetTarget(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.targets, name)
}

// RestoreHealth seeds one target's health ledger and breaker from a
// checkpointed TargetHealth — the restart-recovery path. The breaker's
// failure streak and state are reconstructed; a breaker restored open
// restarts its cooldown at now (the original open instant is not
// persisted), so a recovered deployment waits one full cooldown before
// probing a previously-failing target. That errs toward caution: the
// target was failing when the monitor died.
//
//mantra:statetransfer component=health seam=import
func (c *Collector) RestoreHealth(h TargetHealth, now time.Time) {
	if h.Target == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(h.Target)
	st.health = h
	st.breaker.consecutive = h.ConsecutiveFailures
	st.breaker.state = h.Breaker
	if h.Breaker == BreakerOpen {
		st.breaker.openedAt = now
	}
}

// record updates breaker and health for one finished cycle and returns the
// breaker state after the transition.
func (c *Collector) record(name string, now time.Time, status Status, lastErr string) BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(name)
	st.health.TotalCycles++
	st.health.LastStatus = status
	switch status {
	case StatusOK, StatusRetried:
		st.breaker.Success()
		st.health.LastSuccess = now
		st.health.LastError = ""
	default:
		st.breaker.Failure(now)
		st.health.TotalFailures++
		st.health.LastError = lastErr
	}
	st.health.Breaker = st.breaker.State()
	st.health.ConsecutiveFailures = st.breaker.Consecutive()
	return st.breaker.State()
}

// Health returns a snapshot of every tracked target's health, sorted by
// target name.
//
//mantra:statetransfer component=health seam=export
func (c *Collector) Health() []TargetHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TargetHealth, 0, len(c.targets))
	for _, st := range c.targets {
		out = append(out, st.health)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// TargetHealth returns one target's health and whether it has been
// collected (or skipped) at least once.
//
//mantra:statetransfer component=health seam=export
func (c *Collector) TargetHealth(name string) (TargetHealth, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.targets[name]
	if !ok {
		return TargetHealth{Target: name}, false
	}
	return st.health, true
}
