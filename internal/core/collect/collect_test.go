package collect_test

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core/collect"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func testNetwork(t testing.TB) *netsim.Network {
	t.Helper()
	cfg := topo.DefaultInternetConfig()
	cfg.NumDomains = 3
	inet := topo.BuildInternet(cfg)
	wl := workload.New(workload.DefaultConfig(), inet.Topo)
	n := netsim.New(inet, wl, netsim.DefaultConfig())
	if err := n.Track("fixw", "ucsb-gw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		n.Step()
	}
	return n
}

func target(n *netsim.Network, name, password string) collect.Target {
	r := n.Router(name)
	r.Password = password
	return collect.Target{
		Name:     name,
		Dialer:   collect.PipeDialer{Router: r},
		Password: password,
		Prompt:   name + "> ",
		Timeout:  5 * time.Second,
	}
}

func TestLoginAndRun(t *testing.T) {
	n := testNetwork(t)
	s, err := collect.Login(target(n, "fixw", "pw"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Run("show ip dvmrp route")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DVMRP Routing Table") {
		t.Errorf("missing table header")
	}
	if strings.Contains(out, "fixw> ") {
		t.Error("prompt not stripped")
	}
	// Second command on the same session.
	out, err = s.Run("show ip mroute")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Forwarding Table") {
		t.Error("second command failed")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	n := testNetwork(t)
	tgt := target(n, "fixw", "right")
	tgt.Password = "wrong"
	tgt.Timeout = 500 * time.Millisecond
	if _, err := collect.Login(tgt); err == nil {
		t.Fatal("login succeeded with wrong password")
	}
}

func TestLoginNoPassword(t *testing.T) {
	n := testNetwork(t)
	tgt := target(n, "fixw", "")
	s, err := collect.Login(tgt)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestCollectAll(t *testing.T) {
	n := testNetwork(t)
	now := n.Now()
	dumps, err := collect.CollectAll(target(n, "fixw", "pw"), collect.StandardCommands, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != len(collect.StandardCommands) {
		t.Fatalf("dumps = %d", len(dumps))
	}
	for i, d := range dumps {
		if d.Target != "fixw" || d.Command != collect.StandardCommands[i] || !d.At.Equal(now) {
			t.Errorf("dump %d metadata wrong: %+v", i, d)
		}
		if d.Raw == "" {
			t.Errorf("dump %d empty", i)
		}
	}
}

func TestCollectOverTCP(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("ucsb-gw")
	r.Password = "s3cret"
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go r.ServeTCP(l)
	tgt := collect.Target{
		Name:     "ucsb",
		Dialer:   collect.TCPDialer{Addr: l.Addr().String()},
		Password: "s3cret",
		Prompt:   "ucsb-gw> ",
		Timeout:  5 * time.Second,
	}
	dumps, err := collect.CollectAll(tgt, []string{"show ip dvmrp route"}, n.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 || !strings.Contains(dumps[0].Raw, "DVMRP Routing Table") {
		t.Errorf("TCP collection failed: %+v", dumps)
	}
}

func TestTCPDialerUnreachable(t *testing.T) {
	d := collect.TCPDialer{Addr: "127.0.0.1:1", Timeout: 200 * time.Millisecond}
	if _, err := d.Dial(); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestPipeDialerNilRouter(t *testing.T) {
	if _, err := (collect.PipeDialer{}).Dial(); err == nil {
		t.Error("nil router accepted")
	}
}

func TestCollectErrorWrapsLogin(t *testing.T) {
	n := testNetwork(t)
	tgt := target(n, "fixw", "good")
	tgt.Password = "bad"
	tgt.Timeout = 300 * time.Millisecond
	_, err := collect.CollectAll(tgt, collect.StandardCommands, n.Now())
	if err == nil {
		t.Fatal("expected login error")
	}
	if !errors.Is(err, collect.ErrLogin) && !errors.Is(err, collect.ErrTimeout) {
		t.Errorf("unexpected error type: %v", err)
	}
}

func TestPreprocess(t *testing.T) {
	raw := "  Header   Line  \n\n\n  a    b\tc  \n% oops\nlast"
	lines := collect.Preprocess(raw)
	want := []string{"Header Line", "a b c", "last"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	if collect.Preprocess("") != nil {
		t.Error("empty input should give nil")
	}
}

// silentDialer hands out one end of a pipe whose far side never speaks, so
// only the expect deadline can end the login attempt.
type silentDialer struct{}

func (silentDialer) Dial() (io.ReadWriteCloser, error) {
	client, _ := net.Pipe()
	return client, nil
}

func TestLoginTimeoutUsesInjectedClock(t *testing.T) {
	// Regression for the mantralint wallclock findings in readUntil: the
	// expect deadline is anchored on Target.Clock, not time.Now. With a
	// one-hour timeout and a fake clock that jumps two hours, login must
	// fail immediately — if the wall clock were still consulted this test
	// would hang for an hour.
	base := time.Unix(1_000_000, 0)
	calls := 0
	tgt := collect.Target{
		Name:    "silent",
		Dialer:  silentDialer{},
		Prompt:  "silent> ",
		Timeout: time.Hour,
		Clock: func() time.Time {
			calls++
			if calls == 1 {
				return base
			}
			return base.Add(2 * time.Hour)
		},
	}
	_, err := collect.Login(tgt)
	if !errors.Is(err, collect.ErrLogin) {
		t.Fatalf("Login error = %v, want ErrLogin", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Login error = %v, want timeout", err)
	}
	if calls < 2 {
		t.Fatalf("injected clock consulted %d times, want >= 2", calls)
	}
}

// wedgedRouter authenticates normally, then stops reading the stream
// entirely — the shape of a peer stuck mid-dump. On an unbuffered
// transport every subsequent client write would block forever without a
// write deadline.
type wedgedRouter struct{ done chan struct{} }

func (w wedgedRouter) HandleSession(rw io.ReadWriter) error {
	if _, err := io.WriteString(rw, "Password: "); err != nil {
		return err
	}
	buf := make([]byte, 64)
	if _, err := rw.Read(buf); err != nil {
		return err
	}
	if _, err := io.WriteString(rw, "wedged> "); err != nil {
		return err
	}
	<-w.done
	return nil
}

func TestSendTimesOutAgainstWedgedPeer(t *testing.T) {
	// Regression: Session writes carry the same hard timeout as reads.
	// net.Pipe writes block until the peer reads; a command sent to a
	// session whose peer stopped reading (including the "exit" Close
	// sends after a read timeout) used to deadlock both ends in Write.
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	tgt := collect.Target{
		Name:     "wedged",
		Dialer:   collect.PipeDialer{Router: wedgedRouter{done: done}},
		Password: "pw",
		Prompt:   "wedged> ",
		Timeout:  100 * time.Millisecond,
	}
	s, err := collect.Login(tgt)
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	defer s.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Run("show ip mroute")
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Run against a wedged peer succeeded, want timeout error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run against a wedged peer blocked past the session timeout")
	}
}
