// Package collect implements Mantra's Data Collector module: it logs into
// multicast routers, captures raw table dumps, and pre-processes them for
// the router-table processor.
//
// As in the paper, collection works by driving a router's interactive CLI
// with expect-style scripts — log in with a password, wait for the
// prompt, issue `show` commands, capture everything until the next prompt
// — rather than via SNMP (whose MIBs did not cover the newer multicast
// protocols). Targets can be in-process simulated routers or real TCP
// endpoints; both travel through the same line-oriented session code.
package collect

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"
)

// ErrTimeout reports that an expected pattern did not arrive in time.
var ErrTimeout = errors.New("collect: timed out waiting for pattern")

// ErrLogin reports failed authentication.
var ErrLogin = errors.New("collect: login failed")

// Dialer opens a byte-stream session to a router CLI.
type Dialer interface {
	Dial() (io.ReadWriteCloser, error)
}

// TCPDialer connects to a router CLI over TCP.
type TCPDialer struct {
	Addr string
	// Timeout bounds the connection attempt; zero means 5 s.
	Timeout time.Duration
}

// Dial implements Dialer.
func (d TCPDialer) Dial() (io.ReadWriteCloser, error) {
	to := d.Timeout
	if to <= 0 {
		to = 5 * time.Second
	}
	return net.DialTimeout("tcp", d.Addr, to)
}

// SessionHandler serves one CLI session over a byte stream. *router.Router
// implements it, as does the fault-injecting *router.FaultyRouter wrapper,
// so either can back an in-process collection target.
type SessionHandler interface {
	HandleSession(rw io.ReadWriter) error
}

// PipeDialer runs sessions against an in-process simulated router through
// a synchronous pipe — the same session logic as TCP without a socket.
type PipeDialer struct {
	Router SessionHandler
}

// Dial implements Dialer.
func (d PipeDialer) Dial() (io.ReadWriteCloser, error) {
	if d.Router == nil {
		return nil, errors.New("collect: nil router")
	}
	client, server := net.Pipe()
	go func() {
		_ = d.Router.HandleSession(server)
		server.Close()
	}()
	return client, nil
}

// Target is one monitored router.
type Target struct {
	// Name labels the collection point ("fixw", "ucsb").
	Name string
	// Dialer opens sessions.
	Dialer Dialer
	// Password authenticates; must match the router's.
	Password string
	// Prompt is the CLI prompt to wait for, e.g. "fixw> ".
	Prompt string
	// Timeout bounds each expect step; zero means 10 s.
	Timeout time.Duration
	// Clock supplies the time base for expect deadlines; nil means the
	// wall clock. Tests and simulations inject a virtual clock so
	// timeout behaviour is reproducible.
	Clock func() time.Time
}

// Session is an authenticated CLI session.
type Session struct {
	conn    io.ReadWriteCloser
	prompt  string
	timeout time.Duration
	now     func() time.Time
	buf     []byte
}

// deadliner is implemented by net.Conn and net.Pipe ends.
type deadliner interface {
	SetReadDeadline(time.Time) error
}

// writeDeadliner is implemented by net.Conn and net.Pipe ends.
type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// readUntil consumes the stream until pattern appears, returning
// everything read including the pattern. The session timeout is enforced
// for every transport: connections with native read deadlines use them,
// and all others get a watchdog timer that closes the connection — the
// only way to unblock a stuck Read — so a hung router can never wedge the
// collector. A timed-out session is dead either way; callers retry with a
// fresh login.
//
//mantra:hotpath budget=3
func (s *Session) readUntil(pattern string) (string, error) {
	var sb strings.Builder
	deadline := s.now().Add(s.timeout)
	if d, ok := s.conn.(deadliner); ok {
		_ = d.SetReadDeadline(deadline)
		defer d.SetReadDeadline(time.Time{})
	} else {
		watchdog := time.AfterFunc(s.timeout, func() { s.conn.Close() })
		defer watchdog.Stop()
	}
	tmp := make([]byte, 4096)
	for {
		if strings.Contains(sb.String(), pattern) {
			return sb.String(), nil
		}
		if s.now().After(deadline) {
			return sb.String(), fmt.Errorf("%w: %q", ErrTimeout, pattern)
		}
		n, err := s.conn.Read(tmp)
		sb.Write(tmp[:n])
		if err != nil {
			if strings.Contains(sb.String(), pattern) {
				return sb.String(), nil
			}
			if errors.Is(err, os.ErrDeadlineExceeded) || !s.now().Before(deadline) {
				return sb.String(), fmt.Errorf("%w: %q (%v)", ErrTimeout, pattern, err)
			}
			return sb.String(), err
		}
	}
}

// send writes one line under the session timeout. Writes need the same
// hard bound as reads: on an unbuffered transport (net.Pipe) a write
// blocks until the peer reads, and a peer that timed out or wedged
// mid-dump never will — without a deadline, sending "exit" to a stuck
// session deadlocks both ends in Write forever.
//
//mantra:hotpath budget=1
func (s *Session) send(line string) error {
	if d, ok := s.conn.(writeDeadliner); ok {
		_ = d.SetWriteDeadline(s.now().Add(s.timeout))
		defer d.SetWriteDeadline(time.Time{})
	} else {
		watchdog := time.AfterFunc(s.timeout, func() { s.conn.Close() })
		defer watchdog.Stop()
	}
	_, err := io.WriteString(s.conn, line+"\n")
	return err
}

// Login opens and authenticates a session against t.
//
//mantra:hotpath budget=2
func Login(t Target) (*Session, error) {
	conn, err := t.Dialer.Dial()
	if err != nil {
		return nil, err
	}
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	now := t.Clock
	if now == nil {
		now = time.Now //mantralint:allow wallclock live-target default; injected via Target.Clock everywhere else
	}
	s := &Session{conn: conn, prompt: t.Prompt, timeout: timeout, now: now}
	if t.Password != "" {
		if _, err := s.readUntil("Password: "); err != nil {
			conn.Close()
			return nil, fmt.Errorf("%w: no password prompt: %v", ErrLogin, err)
		}
		if err := s.send(t.Password); err != nil {
			conn.Close()
			return nil, err
		}
	}
	if _, err := s.readUntil(t.Prompt); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: no prompt after login: %v", ErrLogin, err)
	}
	return s, nil
}

// Run issues one command and returns its raw output with the command echo
// and trailing prompt stripped.
func (s *Session) Run(cmd string) (string, error) {
	if err := s.send(cmd); err != nil {
		return "", err
	}
	out, err := s.readUntil(s.prompt)
	if err != nil {
		return "", err
	}
	return stripEcho(out, cmd, s.prompt), nil
}

// stripEcho cleans one captured command output: the trailing prompt (with
// any stray carriage returns a CRLF transport appends around it) and the
// leading echo of the command are removed, leaving only the dump body.
// Shared by Session.Run and the expect-script capture path so both clean
// identically.
func stripEcho(out, cmd, prompt string) string {
	if prompt != "" {
		trimmed := strings.TrimSuffix(out, prompt)
		if trimmed == out {
			trimmed = strings.TrimSuffix(strings.TrimRight(out, "\r"), prompt)
		}
		out = trimmed
	}
	// Strip a leading echo of the command for LF, CRLF, and the interleaved
	// LF-CR orderings some transports produce.
	if cmd != "" {
		for _, echo := range []string{cmd + "\r\n", cmd + "\n\r", cmd + "\n", cmd + "\r"} {
			if rest, ok := strings.CutPrefix(out, echo); ok {
				out = rest
				break
			}
		}
	}
	return out
}

// Close logs out and closes the connection.
func (s *Session) Close() error {
	_ = s.send("exit")
	return s.conn.Close()
}

// Dump is one captured table.
type Dump struct {
	Target  string
	Command string
	Raw     string
	At      time.Time
}

// StandardCommands is the dump set Mantra collects each cycle: the DVMRP
// route table and the multicast forwarding table are the two primary data
// sets (§IV-A); the rest capture the newer protocols' state.
var StandardCommands = []string{
	"show ip dvmrp route",
	"show ip mroute",
	"show ip igmp groups",
	"show ip pim group",
	"show ip msdp sa-cache",
	"show ip mbgp",
}

// CollectAll logs into the target once and captures every command.
// Dumps carry the collection timestamp now.
//
//mantra:hotpath budget=4
func CollectAll(t Target, commands []string, now time.Time) ([]Dump, error) {
	s, err := Login(t)
	if err != nil {
		return nil, fmt.Errorf("collect %s: %w", t.Name, err)
	}
	defer s.Close()
	dumps := make([]Dump, 0, len(commands))
	for _, cmd := range commands {
		raw, err := s.Run(cmd)
		if err != nil {
			return dumps, fmt.Errorf("collect %s %q: %w", t.Name, cmd, err)
		}
		dumps = append(dumps, Dump{Target: t.Name, Command: cmd, Raw: raw, At: now})
	}
	return dumps, nil
}

// Preprocess cleans a raw dump into trimmed, non-empty lines: excess
// whitespace collapsed, delimiters and prompt remnants removed — the
// paper's pre-processing step ahead of table mapping.
//
//mantra:hotpath budget=1
func Preprocess(raw string) []string {
	var out []string
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "%") { // CLI error remnants
			continue
		}
		out = append(out, strings.Join(strings.Fields(line), " "))
	}
	return out
}
