package collect

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ErrTruncated reports a dump that arrived structurally incomplete — cut
// mid-line, missing declared table rows, or empty where a table header was
// required.
var ErrTruncated = errors.New("collect: truncated dump")

// ErrGarbled reports a dump whose content is corrupted — non-printable
// bytes, a mangled table header, prompt echoes inside the body, or more
// rows than the header declared.
var ErrGarbled = errors.New("collect: garbled dump")

// tableHeaders maps each standard show command to the prefix of its dump's
// header line. Every table header also declares its entry count, which
// lets validation catch a session that died mid-table even though the
// prompt still arrived.
var tableHeaders = map[string]string{
	"show ip dvmrp route":    "DVMRP Routing Table",
	"show ip dvmrp neighbor": "DVMRP Neighbor Table",
	"show ip mroute":         "IP Multicast Forwarding Table",
	"show ip igmp groups":    "IGMP Group Membership",
	"show ip pim group":      "PIM Group Table",
	"show ip pim neighbor":   "PIM Neighbor Table",
	"show ip msdp sa-cache":  "MSDP Source-Active Cache",
	"show ip mbgp":           "MBGP Table",
}

// headerCountRE extracts the declared counts from a table header line,
// e.g. "... - 12 entries" or "... - 3 groups, 7 members".
var headerCountRE = regexp.MustCompile(`- (\d+) (entries|neighbors|groups)(?:, (\d+) members)?$`)

// ValidateDump checks the structural integrity of one raw table dump
// before it reaches the table parsers: a mid-line cut, a row count short
// of what the header declares, prompt echoes corrupting the body, or
// non-printable garbage all reject the dump. Unknown commands get only
// the generic checks; the standard show commands are additionally held to
// their table layout.
//
//mantra:hotpath budget=9
func ValidateDump(prompt, command, raw string) error {
	header, known := tableHeaders[command]
	// Whitespace-only responses (a bare CR, a prompt-only reply's leftover
	// newline) are empty dumps, not mid-line cuts.
	if strings.Trim(raw, " \t\r\n") == "" {
		if known {
			return fmt.Errorf("%w: empty %q dump", ErrTruncated, command)
		}
		return nil
	}
	// Some transports interleave CRLF as LF-CR; trailing carriage returns
	// after the final newline do not make the dump incomplete.
	if !strings.HasSuffix(strings.TrimRight(raw, "\r"), "\n") {
		return fmt.Errorf("%w: %q output cut mid-line", ErrTruncated, command)
	}
	if prompt != "" && strings.Contains(raw, prompt) {
		return fmt.Errorf("%w: prompt echo inside %q dump", ErrGarbled, command)
	}
	// One fused byte scan checks printability and counts non-blank lines
	// without materializing them; only the header line becomes a string.
	// The dumps are ASCII, so byte checks suffice (any UTF-8 continuation
	// byte is >0x7e and rejected just like a rune check would).
	var first string
	total := 0
	start := 0
	blank := true
	for i := 0; i <= len(raw); i++ {
		c := byte('\n')
		if i < len(raw) {
			c = raw[i]
		}
		switch {
		case c == '\n':
			if !blank {
				if total == 0 {
					first = strings.TrimRight(raw[start:i], "\r")
				}
				total++
			}
			start = i + 1
			blank = true
		case c == '\r' || c == '\t' || c == ' ':
		case c < 0x20 || c > 0x7e:
			return fmt.Errorf("%w: non-printable byte in %q dump", ErrGarbled, command)
		default:
			blank = false
		}
	}
	if !known {
		return nil
	}
	if total == 0 {
		return fmt.Errorf("%w: empty %q dump", ErrTruncated, command)
	}
	if !strings.HasPrefix(first, header) {
		return fmt.Errorf("%w: %q header mangled: %q", ErrGarbled, command, first)
	}
	m := headerCountRE.FindStringSubmatch(first)
	if m == nil {
		return fmt.Errorf("%w: %q header count unreadable: %q", ErrGarbled, command, first)
	}
	declared, _ := strconv.Atoi(m[1])
	if m[3] != "" {
		// IGMP declares "N groups, M members"; the body has one row per member.
		declared, _ = strconv.Atoi(m[3])
	}
	if declared == 0 {
		return nil
	}
	// Header line, column-header line, then exactly `declared` rows.
	rows := total - 2
	if rows < declared {
		return fmt.Errorf("%w: %q table has %d of %d declared rows", ErrTruncated, command, rows, declared)
	}
	if rows > declared {
		return fmt.Errorf("%w: %q table has %d rows against %d declared", ErrGarbled, command, rows, declared)
	}
	return nil
}

// ValidateDumps runs ValidateDump over a full cycle's dump set, returning
// the first structural defect found.
func ValidateDumps(prompt string, dumps []Dump) error {
	for _, d := range dumps {
		if err := ValidateDump(prompt, d.Command, d.Raw); err != nil {
			return err
		}
	}
	return nil
}
