package collect_test

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/collect"
)

// dialerFunc adapts a function to the Dialer interface for scripted
// failure sequences.
type dialerFunc func() (io.ReadWriteCloser, error)

func (f dialerFunc) Dial() (io.ReadWriteCloser, error) { return f() }

// blockingConn is the watchdog regression fixture: a connection that never
// produces data, never errors on its own, and — crucially — has no
// SetReadDeadline. Reads block until Close.
type blockingConn struct {
	closed chan struct{}
	once   sync.Once
}

func newBlockingConn() *blockingConn { return &blockingConn{closed: make(chan struct{})} }

func (c *blockingConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, io.ErrClosedPipe
}

func (c *blockingConn) Write(p []byte) (int, error) { return len(p), nil }

func (c *blockingConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestReadUntilWatchdog is the regression test for the collector hang:
// a transport without native read deadlines used to block readUntil
// forever when the peer went silent. The watchdog must close the
// connection and surface ErrTimeout within the session timeout.
func TestReadUntilWatchdog(t *testing.T) {
	conn := newBlockingConn()
	tgt := collect.Target{
		Name:     "stuck",
		Dialer:   dialerFunc(func() (io.ReadWriteCloser, error) { return conn, nil }),
		Password: "pw",
		Prompt:   "stuck> ",
		Timeout:  200 * time.Millisecond,
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := collect.Login(tgt)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("login against a silent peer succeeded")
		}
		if !errors.Is(err, collect.ErrLogin) {
			t.Errorf("err = %v, want ErrLogin", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("watchdog too slow: %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector hung: watchdog never fired")
	}
}

// crlfRouter is a session handler speaking DOS-style line endings: command
// echoes arrive as "cmd\r\n" and the prompt carries a stray trailing "\r",
// as some real terminal servers emit.
type crlfRouter struct{}

func (crlfRouter) HandleSession(rw io.ReadWriter) error {
	w := bufio.NewWriter(rw)
	scan := bufio.NewScanner(rw)
	for {
		if _, err := w.WriteString("crlf> \r"); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if !scan.Scan() {
			return scan.Err()
		}
		cmd := strings.TrimSpace(scan.Text())
		if cmd == "exit" {
			return nil
		}
		w.WriteString(cmd + "\r\n")
		w.WriteString("uptime is 1:00:00\r\n")
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

func TestRunStripsCRLFEchoAndPrompt(t *testing.T) {
	tgt := collect.Target{
		Name:    "crlf",
		Dialer:  collect.PipeDialer{Router: crlfRouter{}},
		Prompt:  "crlf> ",
		Timeout: 2 * time.Second,
	}
	s, err := collect.Login(tgt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Run("show version")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "show version") {
		t.Errorf("CRLF command echo not stripped: %q", out)
	}
	if strings.Contains(out, "crlf> ") {
		t.Errorf("prompt with trailing CR not stripped: %q", out)
	}
	if !strings.Contains(out, "uptime is 1:00:00") {
		t.Errorf("body lost: %q", out)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := collect.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
	if a, b := p.Backoff("fixw", 1), p.Backoff("fixw", 1); a != b {
		t.Errorf("backoff not deterministic: %v vs %v", a, b)
	}
	if a, b := p.Backoff("fixw", 1), p.Backoff("ucsb", 1); a == b {
		t.Errorf("jitter does not desynchronize targets: both %v", a)
	}
	// Attempt n doubles the base, capped at MaxDelay, jittered into
	// [0.5, 1.0) of the raw delay.
	for attempt, raw := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		9: 2 * time.Second, // capped
	} {
		d := p.Backoff("fixw", attempt)
		if d < raw/2 || d >= raw {
			t.Errorf("attempt %d backoff %v outside [%v, %v)", attempt, d, raw/2, raw)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	t0 := time.Unix(0, 0).UTC()
	b := collect.NewBreaker(2, time.Minute)
	if b.State() != collect.BreakerClosed || !b.Allow(t0) {
		t.Fatal("new breaker not closed")
	}
	b.Failure(t0)
	if b.State() != collect.BreakerClosed {
		t.Error("opened below threshold")
	}
	b.Failure(t0)
	if b.State() != collect.BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow(t0.Add(30 * time.Second)) {
		t.Error("allowed during cooldown")
	}
	if !b.Allow(t0.Add(time.Minute)) {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	if b.State() != collect.BreakerHalfOpen {
		t.Errorf("state = %v, want half-open", b.State())
	}
	// A failed probe re-opens immediately, regardless of threshold.
	b.Failure(t0.Add(time.Minute))
	if b.State() != collect.BreakerOpen {
		t.Error("failed probe did not re-open")
	}
	if !b.Allow(t0.Add(2 * time.Minute)) {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if b.State() != collect.BreakerClosed || b.Consecutive() != 0 {
		t.Error("successful probe did not close and reset")
	}
}

func TestCollectorRetriesTransientFailure(t *testing.T) {
	n := testNetwork(t)
	tgt := target(n, "fixw", "pw")
	calls := 0
	real := tgt.Dialer
	tgt.Dialer = dialerFunc(func() (io.ReadWriteCloser, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient dial failure")
		}
		return real.Dial()
	})
	var slept []time.Duration
	c := collect.NewCollector(collect.Policy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	res := c.Collect(tgt, collect.StandardCommands, n.Now())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Status != collect.StatusRetried || res.Attempts != 2 {
		t.Errorf("result = %s after %d attempts, want retried after 2", res.Status, res.Attempts)
	}
	if len(res.Dumps) != len(collect.StandardCommands) {
		t.Errorf("dumps = %d", len(res.Dumps))
	}
	if len(slept) != 1 || slept[0] < 25*time.Millisecond || slept[0] >= 50*time.Millisecond {
		t.Errorf("backoff sleeps = %v", slept)
	}
	h, ok := c.TargetHealth("fixw")
	if !ok || h.Breaker != collect.BreakerClosed || h.ConsecutiveFailures != 0 || h.LastStatus != collect.StatusRetried {
		t.Errorf("health = %+v", h)
	}
}

func TestCollectorBreakerLifecycle(t *testing.T) {
	dead := collect.Target{
		Name:    "dead",
		Dialer:  dialerFunc(func() (io.ReadWriteCloser, error) { return nil, errors.New("down") }),
		Prompt:  "dead> ",
		Timeout: time.Second,
	}
	c := collect.NewCollector(collect.Policy{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Sleep:            func(time.Duration) {},
	})
	t0 := time.Unix(1000, 0).UTC()
	// Two failed cycles open the breaker.
	for i := 0; i < 2; i++ {
		res := c.Collect(dead, nil, t0.Add(time.Duration(i)*time.Second))
		if res.Status != collect.StatusDegraded || res.Attempts != 1 {
			t.Fatalf("cycle %d = %+v", i, res)
		}
	}
	// Within the cooldown the target is skipped without an attempt.
	res := c.Collect(dead, nil, t0.Add(10*time.Second))
	if res.Status != collect.StatusBreakerOpen || res.Attempts != 0 {
		t.Fatalf("cooldown cycle = %+v", res)
	}
	if !errors.Is(res.Err, collect.ErrBreakerOpen) {
		t.Errorf("err = %v, want ErrBreakerOpen", res.Err)
	}
	// After the cooldown a half-open probe runs — and fails, re-opening.
	res = c.Collect(dead, nil, t0.Add(2*time.Minute))
	if res.Status != collect.StatusDegraded || res.Attempts != 1 {
		t.Fatalf("probe cycle = %+v", res)
	}
	res = c.Collect(dead, nil, t0.Add(2*time.Minute+time.Second))
	if res.Status != collect.StatusBreakerOpen {
		t.Fatalf("failed probe did not re-open: %+v", res)
	}
	// Heal the target; the next probe closes the breaker.
	n := testNetwork(t)
	healed := target(n, "fixw", "pw")
	healed.Name = "dead"
	res = c.Collect(healed, collect.StandardCommands, t0.Add(4*time.Minute))
	if res.Status != collect.StatusOK || res.Breaker != collect.BreakerClosed {
		t.Fatalf("healed probe = %+v", res)
	}
	h, _ := c.TargetHealth("dead")
	if h.ConsecutiveFailures != 0 || h.TotalFailures != 3 || h.TotalCycles != 6 {
		t.Errorf("health after recovery = %+v", h)
	}
}

// scriptedRouter answers every command with a fixed payload, password-free,
// under the prompt "s> ".
type scriptedRouter struct{ out string }

func (r scriptedRouter) HandleSession(rw io.ReadWriter) error {
	w := bufio.NewWriter(rw)
	scan := bufio.NewScanner(rw)
	for {
		if _, err := w.WriteString("s> "); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if !scan.Scan() {
			return scan.Err()
		}
		if strings.TrimSpace(scan.Text()) == "exit" {
			return nil
		}
		w.WriteString(r.out)
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

func TestCollectorRejectsInvalidDumps(t *testing.T) {
	// The session protocol succeeds, but the dump is cut mid-line: only
	// validation can catch this, and it must count as a degraded cycle.
	tgt := collect.Target{
		Name:    "s",
		Dialer:  collect.PipeDialer{Router: scriptedRouter{out: "IP Multicast Forwarding Table - 5 entries\ncols\nrow1"}},
		Prompt:  "s> ",
		Timeout: time.Second,
	}
	c := collect.NewCollector(collect.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	res := c.Collect(tgt, []string{"show ip mroute"}, time.Unix(0, 0))
	if res.Status != collect.StatusDegraded || res.Attempts != 2 {
		t.Fatalf("result = %+v", res)
	}
	if !errors.Is(res.Err, collect.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", res.Err)
	}
	// With validation disabled the same dump passes through.
	c = collect.NewCollector(collect.Policy{MaxAttempts: 2, DisableValidation: true, Sleep: func(time.Duration) {}})
	res = c.Collect(tgt, []string{"show ip mroute"}, time.Unix(0, 0))
	if res.Status != collect.StatusOK {
		t.Errorf("validation-off result = %+v", res)
	}
}

func TestCollectorRecordFailure(t *testing.T) {
	c := collect.NewCollector(collect.Policy{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	t0 := time.Unix(0, 0).UTC()
	c.RecordFailure("fixw", t0, errors.New("snapshot parse error"))
	c.RecordFailure("fixw", t0.Add(time.Second), errors.New("snapshot parse error"))
	h, ok := c.TargetHealth("fixw")
	if !ok || h.Breaker != collect.BreakerOpen || h.ConsecutiveFailures != 2 {
		t.Errorf("out-of-band failures did not open breaker: %+v", h)
	}
	if len(c.Health()) != 1 {
		t.Errorf("health = %+v", c.Health())
	}
}

func TestCollectorResetTarget(t *testing.T) {
	// A target removed and re-registered must not inherit its previous
	// life's open breaker: ResetTarget drops the ledger entirely, and
	// the stale state must not resurface through CarryState either.
	c := collect.NewCollector(collect.Policy{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	t0 := time.Unix(0, 0).UTC()
	c.RecordFailure("fixw", t0, errors.New("down"))
	c.RecordFailure("fixw", t0.Add(time.Second), errors.New("down"))
	if h, _ := c.TargetHealth("fixw"); h.Breaker != collect.BreakerOpen {
		t.Fatalf("setup: breaker = %s, want open", h.Breaker)
	}
	c.ResetTarget("fixw")
	if _, ok := c.TargetHealth("fixw"); ok {
		t.Fatal("health ledger survived ResetTarget")
	}
	if len(c.Health()) != 0 {
		t.Errorf("health = %+v, want empty", c.Health())
	}
	// Re-registration starts a fresh breaker window: one failure must
	// not re-open it (threshold is 2).
	c.RecordFailure("fixw", t0.Add(2*time.Second), errors.New("down"))
	h, ok := c.TargetHealth("fixw")
	if !ok || h.Breaker != collect.BreakerClosed || h.ConsecutiveFailures != 1 {
		t.Errorf("post-reset health = %+v, want closed breaker with 1 failure", h)
	}
	// CarryState after a reset must not resurrect the dropped target
	// from an old collector snapshot taken before the reset.
	old := collect.NewCollector(collect.Policy{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	old.RecordFailure("ghost", t0, errors.New("down"))
	old.RecordFailure("ghost", t0.Add(time.Second), errors.New("down"))
	c.CarryState(old)
	c.ResetTarget("ghost")
	if _, ok := c.TargetHealth("ghost"); ok {
		t.Error("ghost survived reset after CarryState")
	}
}
