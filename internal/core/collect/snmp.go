package collect

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/snmp"
)

// SNMPSnapshotTables is the SNMP alternative to the CLI scrape: it walks
// the era's MIBs (DVMRP route table and ipMRouteTable) and returns the
// raw bindings grouped per table, for comparison against the CLI path.
//
// The returned structures deliberately mirror SNMP's coverage boundary:
// PairRows carry no protocol flags (no such column existed) and there is
// no MSDP or PIM data at all — the gap that made the paper scrape CLIs.
type SNMPTables struct {
	// RouteRows maps source prefix to (metric, uptime, upstream).
	RouteRows map[addr.Prefix]SNMPRoute
	// PairRows maps (source, group) to counters.
	PairRows map[SNMPPairKey]SNMPPair
}

// SNMPRoute is one dvmrpRouteTable row.
type SNMPRoute struct {
	Metric   int
	Uptime   time.Duration
	Upstream addr.IP
}

// SNMPPairKey indexes ipMRouteTable rows.
type SNMPPairKey struct {
	Source addr.IP
	Group  addr.IP
}

// SNMPPair is one ipMRouteTable row.
type SNMPPair struct {
	Uptime  time.Duration
	Packets uint64
	Octets  uint64
}

// CollectSNMP walks the multicast MIBs through the client.
func CollectSNMP(c *snmp.Client) (*SNMPTables, error) {
	out := &SNMPTables{
		RouteRows: make(map[addr.Prefix]SNMPRoute),
		PairRows:  make(map[SNMPPairKey]SNMPPair),
	}
	routeBinds, err := c.Walk(snmp.OIDDVMRPRoute)
	if err != nil {
		return nil, fmt.Errorf("collect: snmp dvmrp walk: %w", err)
	}
	base := len(snmp.OIDDVMRPRoute)
	for _, vb := range routeBinds {
		// Index: col . src(4) . mask(4)
		if len(vb.OID) != base+1+8 {
			continue
		}
		col := vb.OID[base]
		src := oidIP(vb.OID[base+1 : base+5])
		mask := oidIP(vb.OID[base+5 : base+9])
		p := addr.PrefixFrom(src, maskLen(mask))
		row := out.RouteRows[p]
		switch col {
		case 3:
			row.Upstream = valueIP(vb.Value)
		case 5:
			row.Metric = int(vb.Value.Int)
		case 6:
			row.Uptime = time.Duration(vb.Value.Int) * 10 * time.Millisecond
		}
		out.RouteRows[p] = row
	}

	pairBinds, err := c.Walk(snmp.OIDIPMRoute)
	if err != nil {
		return nil, fmt.Errorf("collect: snmp mroute walk: %w", err)
	}
	base = len(snmp.OIDIPMRoute)
	for _, vb := range pairBinds {
		// Index: col . group(4) . src(4) . srcmask(4)
		if len(vb.OID) != base+1+12 {
			continue
		}
		col := vb.OID[base]
		group := oidIP(vb.OID[base+1 : base+5])
		src := oidIP(vb.OID[base+5 : base+9])
		k := SNMPPairKey{Source: src, Group: group}
		row := out.PairRows[k]
		switch col {
		case 6:
			row.Uptime = time.Duration(vb.Value.Int) * 10 * time.Millisecond
		case 7:
			row.Packets = uint64(vb.Value.Int)
		case 8:
			row.Octets = uint64(vb.Value.Int)
		}
		out.PairRows[k] = row
	}
	return out, nil
}

func oidIP(arcs []uint32) addr.IP {
	return addr.V4(byte(arcs[0]), byte(arcs[1]), byte(arcs[2]), byte(arcs[3]))
}

func valueIP(v snmp.Value) addr.IP {
	if len(v.Str) != 4 {
		return 0
	}
	return addr.V4(v.Str[0], v.Str[1], v.Str[2], v.Str[3])
}

func maskLen(mask addr.IP) int {
	n := 0
	for bit := addr.IP(1) << 31; bit != 0 && mask&bit != 0; bit >>= 1 {
		n++
	}
	return n
}
