package collect_test

import (
	"testing"

	"repro/internal/core/collect"
	"repro/internal/snmp"
)

func TestCollectSNMPMatchesRouterState(t *testing.T) {
	n := testNetwork(t)
	r := n.Router("ucsb-gw")
	agent := snmp.NewAgent("public")
	agent.SetView(snmp.BuildView(r, n.Now()))
	c := snmp.NewClient("public", snmp.AgentTransport(agent))

	tbls, err := collect.CollectSNMP(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbls.RouteRows) != n.DVMRP.RouteCount(r.Spec.ID) {
		t.Errorf("snmp routes = %d, router holds %d", len(tbls.RouteRows), n.DVMRP.RouteCount(r.Spec.ID))
	}
	if len(tbls.PairRows) != r.FWD.Len() {
		t.Errorf("snmp pairs = %d, router holds %d", len(tbls.PairRows), r.FWD.Len())
	}
	// Spot-check one route's metric against the routing table.
	for _, rt := range n.DVMRP.Table(r.Spec.ID) {
		row, ok := tbls.RouteRows[rt.Prefix]
		if !ok {
			t.Fatalf("route %v missing from SNMP view", rt.Prefix)
		}
		if row.Metric != rt.Metric {
			t.Fatalf("route %v metric %d != %d", rt.Prefix, row.Metric, rt.Metric)
		}
		break
	}
}

func TestCollectSNMPAgainstCLI(t *testing.T) {
	// Both collection paths must agree on the route count; only the CLI
	// path carries protocol flags and the newer protocols' state.
	n := testNetwork(t)
	r := n.Router("fixw")
	r.Password = ""

	agent := snmp.NewAgent("public")
	agent.SetView(snmp.BuildView(r, n.Now()))
	c := snmp.NewClient("public", snmp.AgentTransport(agent))
	viaSNMP, err := collect.CollectSNMP(c)
	if err != nil {
		t.Fatal(err)
	}

	tgt := collect.Target{Name: "fixw", Dialer: collect.PipeDialer{Router: r}, Prompt: "fixw> "}
	dumps, err := collect.CollectAll(tgt, []string{"show ip dvmrp route"}, n.Now())
	if err != nil {
		t.Fatal(err)
	}
	cliLines := collect.Preprocess(dumps[0].Raw)
	cliRoutes := len(cliLines) - 2 // header rows
	if cliRoutes != len(viaSNMP.RouteRows) {
		t.Errorf("CLI sees %d routes, SNMP sees %d", cliRoutes, len(viaSNMP.RouteRows))
	}
}
