// Persistence: a write-behind on-disk mirror of every sealed block,
// framed exactly like the WAL — "MTSB0001" segment magic, then
// length-prefixed CRC32C frames, rotated segments, torn tails
// truncated on open. A frame's payload is target + metric
// (length-prefixed) followed by the block bytes.
//
// The disk mirror is not the source of truth: the store is always
// rebuilt from checkpoint + WAL replay on recovery, and AttachDir then
// reconciles — any sealed block the repaired mirror is missing is
// re-appended from memory. That is what makes the mirror self-healing
// under the truncate/flip crash tests without its own recovery
// protocol. Open loads a mirror cold (sealed blocks only; the unsealed
// head lives in the WAL tail) for offline queries and benchmarks.
//
// Persistence errors degrade, never fail the cycle: the first error
// detaches the writer and is reported through PersistErr.
package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

const (
	segMagic = "MTSB0001"
	// DefaultSegmentBytes rotates mirror segments, matching the WAL's
	// default.
	DefaultSegmentBytes = 4 << 20
	maxFrameBytes       = 64 << 20
	frameHeader         = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type seriesKey struct{ target, metric string }

// dirWriter appends sealed-block frames to the segment files.
type dirWriter struct {
	dir  string
	sync bool

	f    *os.File
	seq  uint64
	size int64
	err  error

	// written counts the blocks on disk per series, so reconciliation
	// and future seals know where the mirror ends.
	written map[seriesKey]int
}

//mantra:hotpath budget=1
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("tsdb-%020d.seg", seq))
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if len(name) == len("tsdb-00000000000000000000.seg") &&
			name[:5] == "tsdb-" && filepath.Ext(name) == ".seg" {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

func segmentSeq(path string) uint64 {
	base := filepath.Base(path)
	var seq uint64
	fmt.Sscanf(base, "tsdb-%d.seg", &seq)
	return seq
}

type frame struct {
	target, metric string
	block          []byte
}

// scanFrames walks one segment's bytes, returning the decoded frames of
// the valid prefix and the offset at which that prefix ends. A bad
// magic yields offset 0; a bad frame (short, CRC mismatch, undecodable
// payload or block) ends the prefix there.
func scanFrames(data []byte) (int64, []frame) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, nil
	}
	off := len(segMagic)
	var frames []frame
	for {
		if off+frameHeader > len(data) {
			break
		}
		ln := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if ln == 0 || ln > maxFrameBytes || off+frameHeader+ln > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+ln]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		fr, ok := decodeFramePayload(payload)
		if !ok {
			break
		}
		frames = append(frames, fr)
		off += frameHeader + ln
	}
	return int64(off), frames
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, bool) {
	ln, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < ln {
		return "", nil, false
	}
	return string(b[n : n+int(ln)]), b[n+int(ln):], true
}

func decodeFramePayload(payload []byte) (frame, bool) {
	target, rest, ok := readString(payload)
	if !ok {
		return frame{}, false
	}
	metric, blk, ok := readString(rest)
	if !ok {
		return frame{}, false
	}
	if _, err := DecodeBlockInfo(blk); err != nil {
		return frame{}, false
	}
	return frame{target: target, metric: metric, block: blk}, true
}

// AttachDir starts mirroring sealed blocks under dir: existing segments
// are scanned (truncating a torn or corrupt tail and dropping the
// segments after it), and every sealed block already in memory that the
// repaired mirror lacks is re-appended — so after archive recovery the
// mirror converges back to the pre-crash state. syncEveryAppend fsyncs
// each frame; otherwise segments sync on rotation and Close.
func (st *Store) AttachDir(dir string, syncEveryAppend bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d := &dirWriter{dir: dir, sync: syncEveryAppend, written: make(map[seriesKey]int)}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var kept []string
	for i, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return err
		}
		valid, frames := scanFrames(data)
		for _, fr := range frames {
			d.written[seriesKey{fr.target, fr.metric}]++
		}
		if valid == 0 {
			// Unreadable magic: the segment carries nothing usable.
			if err := os.Remove(seg); err != nil {
				return err
			}
		} else {
			if valid < int64(len(data)) {
				if err := os.Truncate(seg, valid); err != nil {
					return err
				}
			}
			kept = append(kept, seg)
		}
		if valid < int64(len(data)) || valid == 0 {
			// Everything after a repaired tail is untrusted.
			for _, later := range segs[i+1:] {
				if err := os.Remove(later); err != nil {
					return err
				}
			}
			break
		}
	}
	if len(kept) > 0 {
		last := kept[len(kept)-1]
		fi, err := os.Stat(last)
		if err != nil {
			return err
		}
		d.seq = segmentSeq(last)
		if fi.Size() < DefaultSegmentBytes {
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			d.f = f
			d.size = fi.Size()
		} else {
			d.seq++
		}
	}
	st.dir = d
	st.reconcile()
	return d.err
}

// reconcile appends every in-memory sealed block the mirror is missing,
// in sorted series order so the mirror's frame order is deterministic.
func (st *Store) reconcile() {
	d := st.dir
	for _, target := range st.Targets() {
		tm := st.series[target]
		metrics := make([]string, 0, len(tm))
		for m := range tm {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			sr := tm[metric]
			have := d.written[seriesKey{target, metric}]
			for i := have; i < len(sr.blocks); i++ {
				d.appendBlock(target, metric, sr.blocks[i])
			}
		}
	}
}

func (d *dirWriter) appendBlock(target, metric string, blk []byte) {
	if d.err != nil {
		return
	}
	payload := appendString(nil, target)
	payload = appendString(payload, metric)
	payload = append(payload, blk...)
	d.writeFrame(payload)
	if d.err == nil {
		d.written[seriesKey{target, metric}]++
	}
}

// writeFrame frames and appends one payload, computing the CRC it is
// framed with; a failed or short write truncates the segment back to
// the last frame boundary and detaches the writer.
func (d *dirWriter) writeFrame(payload []byte) {
	if d.f == nil {
		if d.err = d.openSegment(); d.err != nil {
			return
		}
	}
	if d.size >= DefaultSegmentBytes {
		if d.err = d.rotate(); d.err != nil {
			return
		}
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := d.f.Write(hdr[:]); err != nil {
		_ = d.f.Truncate(d.size)
		d.err = err
		return
	}
	if _, err := d.f.Write(payload); err != nil {
		_ = d.f.Truncate(d.size)
		d.err = err
		return
	}
	d.size += int64(frameHeader + len(payload))
	if d.sync {
		if err := d.f.Sync(); err != nil {
			d.err = err
		}
	}
}

//mantra:hotpath budget=1
func (d *dirWriter) openSegment() error {
	f, err := os.OpenFile(segmentPath(d.dir, d.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	//mantralint:allow waltaint the fixed segment magic precedes the CRC-framed stream, exactly as in the WAL
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	d.f = f
	d.size = int64(len(segMagic))
	return nil
}

// rotate seals the current segment — sync+close is its durability
// point — and opens the next.
func (d *dirWriter) rotate() error {
	if err := d.f.Sync(); err != nil {
		return err
	}
	if err := d.f.Close(); err != nil {
		return err
	}
	d.f = nil
	d.seq++
	return d.openSegment()
}

// PersistErr reports the first persistence error, nil while the mirror
// is healthy or when no directory is attached.
func (st *Store) PersistErr() error {
	if st.dir == nil {
		return nil
	}
	return st.dir.err
}

// CloseDir syncs and closes the mirror; the store keeps serving from
// memory.
func (st *Store) CloseDir() error {
	d := st.dir
	st.dir = nil
	if d == nil || d.f == nil {
		return nil
	}
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// Open loads a mirror directory cold, read-only: every sealed block of
// the valid segment prefix, with sparse index and tiers rebuilt. The
// unsealed heads are not here — they live in the WAL — so an opened
// store answers queries over sealed history only.
func Open(dir string) (*Store, error) {
	st := New()
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
scan:
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return nil, err
		}
		valid, frames := scanFrames(data)
		for _, fr := range frames {
			if err := st.loadBlock(fr.target, fr.metric, fr.block); err != nil {
				return nil, err
			}
		}
		if valid < int64(len(data)) {
			break scan
		}
	}
	return st, nil
}

// loadBlock grafts one sealed block onto a series, rebuilding index and
// tiers.
func (st *Store) loadBlock(target, metric string, blk []byte) error {
	info, err := DecodeBlockInfo(blk)
	if err != nil {
		return err
	}
	pts, err := DecodeBlock(blk)
	if err != nil {
		return err
	}
	sr := st.seriesFor(target, metric)
	sr.blocks = append(sr.blocks, blk)
	sr.infos = append(sr.infos, info)
	for _, pt := range pts {
		sr.addToTiers(pt)
		sr.total++
	}
	return nil
}
