// Store: per-(target, metric) compressed series with downsampling
// tiers, transfer/checkpoint state, and an optional persistence sink
// for sealed blocks (persist.go).
package tsdb

import "sort"

// Bucket is one downsample-tier entry: the summary of ten (tier 10) or
// a hundred (tier 100) consecutive points. Aggregate fields cover value
// points; Gaps counts gap markers that fell in the bucket.
type Bucket struct {
	FirstT int64
	LastT  int64
	Count  int
	Gaps   int
	Min    float64
	Max    float64
	Sum    float64
	First  float64
	Last   float64
}

// Tier sizes: a tier-10 bucket summarizes 10 raw points, a tier-100
// bucket 100. Bucket boundaries are fixed multiples of the absolute
// point index, so two stores that ingested the same points hold the
// same buckets regardless of seal or transfer history.
const (
	Tier10  = 10
	Tier100 = 100
)

// series is one (target, metric) stream: sealed blocks with their
// sparse-index entries, the unsealed head, and the downsample tiers.
type series struct {
	blocks [][]byte
	infos  []BlockInfo
	head   []Point
	total  int // points ever appended (blocks + head)
	t10    []Bucket
	t100   []Bucket
}

// Store holds every compressed series. Driver-goroutine owned, like
// process.Processor: writers run between cycles, HTTP readers rely on
// the same quiescence contract as /series.
type Store struct {
	series map[string]map[string]*series

	// persistence (persist.go); nil dir means memory-only.
	dir *dirWriter
}

// New returns an empty, memory-only store.
func New() *Store {
	return &Store{series: make(map[string]map[string]*series)}
}

func (st *Store) seriesFor(target, metric string) *series {
	tm := st.series[target]
	if tm == nil {
		tm = make(map[string]*series)
		st.series[target] = tm
	}
	sr := tm[metric]
	if sr == nil {
		sr = &series{}
		tm[metric] = sr
	}
	return sr
}

func (st *Store) lookup(target, metric string) *series {
	tm := st.series[target]
	if tm == nil {
		return nil
	}
	return tm[metric]
}

// Append records one value point. Timestamps are unixnano and must be
// appended in nondecreasing order per series (Mantra's cycle clock
// guarantees this; the codec itself tolerates anything).
//
//mantra:hotpath
func (st *Store) Append(target, metric string, t int64, v float64) {
	st.appendPoint(target, metric, Point{T: t, V: v})
}

// AppendGap records a failed-collection marker.
func (st *Store) AppendGap(target, metric string, t int64) {
	st.appendPoint(target, metric, Point{T: t, Gap: true})
}

func (st *Store) appendPoint(target, metric string, pt Point) {
	sr := st.seriesFor(target, metric)
	sr.head = append(sr.head, pt)
	sr.addToTiers(pt)
	sr.total++
	if len(sr.head) >= BlockPoints {
		st.seal(target, metric, sr)
	}
}

// seal encodes the head into a block, indexes it, and hands it to the
// persistence sink when one is attached.
func (st *Store) seal(target, metric string, sr *series) {
	blk := EncodeBlock(sr.head)
	info, err := DecodeBlockInfo(blk)
	if err != nil {
		// Self-encoded blocks always decode; reaching here is a codec
		// bug, and dropping the block would silently lose data.
		panic("tsdb: sealed block failed to decode: " + err.Error())
	}
	sr.blocks = append(sr.blocks, blk)
	sr.infos = append(sr.infos, info)
	sr.head = nil
	if st.dir != nil {
		st.dir.appendBlock(target, metric, blk)
	}
}

// addToTiers folds one point into the open tier buckets. The point's
// absolute index is sr.total (pre-increment).
func (sr *series) addToTiers(pt Point) {
	if sr.total/Tier10 == len(sr.t10) {
		sr.t10 = append(sr.t10, Bucket{})
	}
	foldBucket(&sr.t10[len(sr.t10)-1], pt)
	if sr.total/Tier100 == len(sr.t100) {
		sr.t100 = append(sr.t100, Bucket{})
	}
	foldBucket(&sr.t100[len(sr.t100)-1], pt)
}

func foldBucket(b *Bucket, pt Point) {
	if b.Count+b.Gaps == 0 {
		b.FirstT = pt.T
	}
	b.LastT = pt.T
	if pt.Gap {
		b.Gaps++
		return
	}
	if b.Count == 0 {
		b.Min, b.Max, b.First = pt.V, pt.V, pt.V
	} else {
		if pt.V < b.Min {
			b.Min = pt.V
		}
		if pt.V > b.Max {
			b.Max = pt.V
		}
	}
	b.Count++
	b.Sum += pt.V
	b.Last = pt.V
}

// Targets returns every target with at least one series, sorted.
func (st *Store) Targets() []string {
	out := make([]string, 0, len(st.series))
	for t := range st.series {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of points (values and gaps) stored for one
// series, 0 when unseen.
func (st *Store) Len(target, metric string) int {
	sr := st.lookup(target, metric)
	if sr == nil {
		return 0
	}
	return sr.total
}

// CompressedBytes returns the in-memory size of one series: sealed
// block bytes plus a raw-width bound (17 bytes: timestamp, value, gap
// flag) for the unsealed head. The number compression ratios are
// quoted against; 0 when unseen.
func (st *Store) CompressedBytes(target, metric string) int {
	sr := st.lookup(target, metric)
	if sr == nil {
		return 0
	}
	n := 0
	for _, blk := range sr.blocks {
		n += len(blk)
	}
	return n + 17*len(sr.head)
}

// Materialize decodes one series back into its full point run, nil
// when the series is unseen.
func (st *Store) Materialize(target, metric string) ([]Point, error) {
	sr := st.lookup(target, metric)
	if sr == nil {
		return nil, nil
	}
	out := make([]Point, 0, sr.total)
	for _, blk := range sr.blocks {
		pts, err := DecodeBlock(blk)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return append(out, sr.head...), nil
}

// SeriesState is the exportable form of one compressed series. Sealed
// block payloads are immutable after seal, so exports share them and
// deep-copy only the head.
//
//mantra:codec pair=tsdb-seriesstate magic=segMagic shape=6b5f29a7f673acb4
type SeriesState struct {
	Blocks [][]byte
	Head   []Point
}

// TargetState is one target's store state: the shard-handoff transfer
// unit, carried inside process.TargetState.
//
//mantra:codec pair=tsdb-targetstate magic=segMagic shape=389ba660b3a8f696
type TargetState struct {
	Target string
	Series map[string]*SeriesState
}

// State is the whole-store export, carried inside process.State into
// archive checkpoints.
//
//mantra:codec pair=tsdb-state magic=segMagic shape=1057fa7b204766b7
type State struct {
	Targets map[string]*TargetState
}

// ExportTarget copies one target's series state, nil when unseen.
//
//mantra:statetransfer component=tsdb seam=export
func (st *Store) ExportTarget(target string) *TargetState {
	tm := st.series[target]
	if tm == nil {
		return nil
	}
	out := &TargetState{Target: target, Series: make(map[string]*SeriesState, len(tm))}
	for metric, sr := range tm {
		out.Series[metric] = &SeriesState{
			Blocks: append([][]byte(nil), sr.blocks...),
			Head:   append([]Point(nil), sr.head...),
		}
	}
	return out
}

// ImportTarget replaces one target's series state, leaving other
// targets untouched; nil removes the target. Sparse-index entries and
// tier buckets are rebuilt from the imported blocks.
//
//mantra:statetransfer component=tsdb seam=import
func (st *Store) ImportTarget(target string, ts *TargetState) error {
	delete(st.series, target)
	if ts == nil {
		return nil
	}
	tm := make(map[string]*series, len(ts.Series))
	for metric, ss := range ts.Series {
		sr := &series{}
		for _, blk := range ss.Blocks {
			pts, err := DecodeBlock(blk)
			if err != nil {
				return err
			}
			info, err := DecodeBlockInfo(blk)
			if err != nil {
				return err
			}
			sr.blocks = append(sr.blocks, blk)
			sr.infos = append(sr.infos, info)
			for _, pt := range pts {
				sr.addToTiers(pt)
				sr.total++
			}
		}
		for _, pt := range ss.Head {
			sr.head = append(sr.head, pt)
			sr.addToTiers(pt)
			sr.total++
		}
		tm[metric] = sr
	}
	st.series[target] = tm
	return nil
}

// Export copies the whole store's state.
//
//mantra:statetransfer component=tsdb seam=export
func (st *Store) Export() *State {
	out := &State{Targets: make(map[string]*TargetState, len(st.series))}
	for target := range st.series {
		out.Targets[target] = st.ExportTarget(target)
	}
	return out
}

// Import replaces the whole store's state; nil just clears it.
//
//mantra:statetransfer component=tsdb seam=import
func (st *Store) Import(s *State) error {
	st.series = make(map[string]map[string]*series)
	if s == nil {
		return nil
	}
	for target, ts := range s.Targets {
		if err := st.ImportTarget(target, ts); err != nil {
			return err
		}
	}
	return nil
}

// Remove drops one target's series.
//
//mantra:statetransfer component=tsdb seam=remove
func (st *Store) Remove(target string) {
	delete(st.series, target)
}
